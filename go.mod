module flextm

go 1.22
