// Bank: a transfer workload that demonstrates atomicity end to end on every
// TM system in the repository. Threads move money between accounts; the
// total must be conserved no matter which runtime executes the transfers.
// It also shows transactions that overflow the L1 (audits read every
// account) exercising the overflow-table path.
package main

import (
	"fmt"

	"flextm/internal/baselines/cgl"
	"flextm/internal/baselines/tl2"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

const (
	accounts  = 64
	initial   = 1000
	threads   = 8
	transfers = 400
)

func run(name string, mk func(sys *tmesi.System) tmapi.Runtime) {
	sys := tmesi.New(tmesi.DefaultConfig())
	rt := mk(sys)
	base := sys.Alloc().Alloc(accounts * memory.LineWords)
	acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
	for i := 0; i < accounts; i++ {
		sys.Image().WriteWord(acct(i), initial)
	}

	engine := sim.NewEngine()
	var audits int
	for t := 0; t < threads; t++ {
		coreID := t
		engine.Spawn("teller", 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, coreID)
			r := th.Rand()
			for n := 0; n < transfers; n++ {
				if n%100 == 99 {
					// Periodic audit: a large read-only transaction that
					// sums every account (overflows small read sets).
					var total uint64
					th.Atomic(func(tx tmapi.Txn) {
						total = 0
						for i := 0; i < accounts; i++ {
							total += tx.Load(acct(i))
						}
					})
					if total != accounts*initial {
						panic(fmt.Sprintf("%s: audit saw inconsistent total %d", name, total))
					}
					audits++
					continue
				}
				from, to := r.Intn(accounts), r.Intn(accounts)
				amount := uint64(1 + r.Intn(50))
				th.Atomic(func(tx tmapi.Txn) {
					f := tx.Load(acct(from))
					if f < amount {
						return
					}
					tx.Store(acct(from), f-amount)
					tx.Store(acct(to), tx.Load(acct(to))+amount)
				})
			}
		})
	}
	engine.Run()

	var total uint64
	for i := 0; i < accounts; i++ {
		total += sys.ReadWordRaw(acct(i))
	}
	st := rt.Stats()
	fmt.Printf("%-14s total=%d (want %d)  commits=%d aborts=%d  audits=%d  cycles=%d\n",
		name, total, accounts*initial, st.Commits, st.Aborts, audits, engine.MaxTime())
	if total != accounts*initial {
		panic(name + ": money not conserved")
	}
}

func main() {
	run("FlexTM(Lazy)", func(s *tmesi.System) tmapi.Runtime { return core.New(s, core.Lazy, cm.NewPolka()) })
	run("FlexTM(Eager)", func(s *tmesi.System) tmapi.Runtime { return core.New(s, core.Eager, cm.NewPolka()) })
	run("TL2", func(s *tmesi.System) tmapi.Runtime { return tl2.New(s) })
	run("CGL", func(s *tmesi.System) tmapi.Runtime { return cgl.New(s) })
	fmt.Println("all systems conserved the total: atomicity holds end to end")
}
