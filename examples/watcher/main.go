// Watcher: uses FlexTM's signatures and alert-on-update for something other
// than transactions — the FlexWatcher memory debugger of Section 8. The
// program plants a buffer overflow, a memory leak, and an invariant
// violation, and the watcher catches all three with hardware-filtered
// monitoring instead of per-access instrumentation.
package main

import (
	"fmt"

	"flextm/internal/flexwatcher"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

func main() {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	engine := sim.NewEngine()

	engine.Spawn("buggy-program", 0, func(ctx *sim.Ctx) {
		w := flexwatcher.New(sys, 0)
		p := flexwatcher.NewProg(sys, ctx, 0, w)

		// 1. Buffer overflow: a 16-word buffer with a guarded pad.
		buf := sys.Alloc().Alloc(16 + memory.LineWords)
		guard := w.GuardBuffer(buf, 16)
		for i := 0; i < 20; i++ {
			p.Store(buf+memory.Addr(i%16), uint64(i)) // in bounds
		}
		p.Store(guard, 0xDEAD) // one element too far

		// 2. Memory leak: two objects, one forgotten.
		used := sys.Alloc().Alloc(memory.LineWords)
		forgotten := sys.Alloc().Alloc(memory.LineWords)
		w.TrackObject(used, memory.LineWords)
		w.TrackObject(forgotten, memory.LineWords)
		start := p.Now()
		for i := 0; i < 32; i++ {
			p.Load(used)
			p.Work(200)
		}

		// 3. Invariant: a counter that must stay below 100.
		counterAddr := sys.Alloc().Alloc(memory.LineWords)
		w.WatchLocalInvariant(counterAddr, func(v uint64) bool { return v < 100 })
		for i := 0; i < 5; i++ {
			p.Store(counterAddr, uint64(i*30)) // 120 on the last iteration
		}

		fmt.Printf("buffer overflows detected : %d\n", w.Count(flexwatcher.BufferOverflow))
		fmt.Printf("invariant violations      : %d\n", w.Count(flexwatcher.InvariantViolation))
		for _, obj := range w.Leaked(start) {
			fmt.Printf("leak candidate            : object at %#x (never touched)\n", uint64(obj))
		}
	})
	engine.Run()

	fmt.Println()
	fmt.Println("Table 4(b) reproduction (slowdowns vs uninstrumented):")
	rows, err := flexwatcher.Table4(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(flexwatcher.PrintTable4(rows))
}
