// Quickstart: build a 16-core FlexTM machine, run a handful of threads that
// transactionally increment a shared counter, and print what the hardware
// saw. This is the smallest end-to-end use of the public API:
//
//	machine  := tmesi.New(tmesi.DefaultConfig())
//	runtime  := core.New(machine, core.Lazy, cm.NewPolka())
//	engine   := sim.NewEngine()
//	thread   := runtime.Bind(ctx, coreID)
//	thread.Atomic(func(tx tmapi.Txn) { ... tx.Load / tx.Store ... })
package main

import (
	"fmt"

	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

func main() {
	sys := tmesi.New(tmesi.DefaultConfig())
	rt := core.New(sys, core.Lazy, cm.NewPolka())

	counter := sys.Alloc().Alloc(1)

	const threads, increments = 8, 1000
	engine := sim.NewEngine()
	for i := 0; i < threads; i++ {
		coreID := i
		engine.Spawn(fmt.Sprintf("worker-%d", i), 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, coreID)
			for n := 0; n < increments; n++ {
				th.Atomic(func(tx tmapi.Txn) {
					tx.Store(counter, tx.Load(counter)+1)
				})
			}
		})
	}
	engine.Run()

	stats := rt.Stats()
	fmt.Printf("final counter : %d (expected %d)\n", sys.ReadWordRaw(counter), threads*increments)
	fmt.Printf("commits       : %d\n", stats.Commits)
	fmt.Printf("aborts        : %d (%.2f per commit)\n", stats.Aborts, stats.AbortRate())
	fmt.Printf("makespan      : %d cycles\n", engine.MaxTime())
	m := sys.Stats()
	fmt.Printf("hardware      : %d threatened responses, %d flash commits, %d flash aborts\n",
		m.ThreatenedResponses, m.FlashCommits, m.FlashAborts)
}
