// Timeslice: transactions unbounded in time (Section 5). Twelve software
// threads share four cores under a quantum scheduler; transactions are
// routinely suspended mid-flight — their signatures summarized at the
// directory, speculative lines parked in overflow tables — and resume to
// commit. Conflicts with suspended transactions are caught by the summary
// signatures and resolved through the conflict management table.
package main

import (
	"fmt"

	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/memory"
	"flextm/internal/osmodel"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

const (
	cores          = 4
	threadsPerCore = 3
	transfers      = 50
	accounts       = 16
	initial        = 1000
	quantum        = 2500
)

func main() {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = cores
	sys := tmesi.New(cfg)
	rt := core.New(sys, core.Lazy, cm.NewPolka())
	manager := osmodel.New(sys, rt)
	engine := sim.NewEngine()
	sched := osmodel.NewScheduler(manager, rt, engine, quantum)

	base := sys.Alloc().Alloc(accounts * memory.LineWords)
	acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
	for i := 0; i < accounts; i++ {
		sys.Image().WriteWord(acct(i), initial)
	}

	seed := uint64(1)
	for c := 0; c < cores; c++ {
		for k := 0; k < threadsPerCore; k++ {
			s := seed
			seed++
			sched.Spawn(c, func(th tmapi.Thread) {
				r := sim.NewRand(s)
				for j := 0; j < transfers; j++ {
					from, to := r.Intn(accounts), r.Intn(accounts)
					amount := uint64(1 + r.Intn(25))
					th.Atomic(func(tx tmapi.Txn) {
						f := tx.Load(acct(from))
						if f < amount {
							return
						}
						tx.Store(acct(from), f-amount)
						tx.Store(acct(to), tx.Load(acct(to))+amount)
					})
					th.Work(400)
				}
			})
		}
	}

	if blocked := sched.Run(); blocked != 0 {
		panic(fmt.Sprintf("%d threads never finished", blocked))
	}

	var total uint64
	for i := 0; i < accounts; i++ {
		total += sys.ReadWordRaw(acct(i))
	}
	st := rt.Stats()
	ms := sys.Stats()
	fmt.Printf("software threads : %d on %d cores (quantum %d cycles)\n",
		cores*threadsPerCore, cores, quantum)
	fmt.Printf("total            : %d (expected %d) — conserved across context switches\n",
		total, accounts*initial)
	fmt.Printf("commits          : %d, aborts %d\n", st.Commits, st.Aborts)
	fmt.Printf("virtualization   : %d summary-signature traps, %d lines parked in OTs, %d alerts\n",
		ms.SummaryTraps, ms.Overflows, ms.Alerts)
	fmt.Printf("makespan         : %d cycles\n", engine.MaxTime())
	if total != accounts*initial {
		panic("invariant violated")
	}
}
