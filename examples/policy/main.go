// Policy: the paper's headline argument in one program — the same hardware
// under different software policies. It runs the contended RandomGraph
// workload with eager and lazy conflict management and with four different
// contention managers, showing how FlexTM leaves those choices to software.
package main

import (
	"fmt"

	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

const (
	threads = 16
	ops     = 200
)

func run(mode core.Mode, mgr cm.Manager) (throughput float64, abortRate float64) {
	sys := tmesi.New(tmesi.DefaultConfig())
	rt := core.New(sys, mode, mgr)
	env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
	w := workloads.NewRandomGraph()
	w.Setup(env)

	engine := sim.NewEngine()
	for i := 0; i < threads; i++ {
		coreID := i
		engine.Spawn("worker", 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, coreID)
			for n := 0; n < ops; n++ {
				w.Op(th)
			}
		})
	}
	engine.Run()
	if err := w.Verify(env); err != nil {
		panic(err)
	}
	st := rt.Stats()
	return float64(st.Commits) / float64(engine.MaxTime()) * 1e6, st.AbortRate()
}

func main() {
	fmt.Printf("RandomGraph, %d threads: one hardware substrate, software-chosen policy\n\n", threads)
	fmt.Printf("%-8s %-12s %14s %14s\n", "mode", "manager", "txn/Mcycle", "aborts/commit")
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		for _, mgr := range []cm.Manager{cm.NewPolka(), cm.NewKarma(), cm.NewGreedy(), cm.NewTimestamp(), cm.Timid{}, cm.Aggressive{}} {
			thr, ar := run(mode, mgr)
			fmt.Printf("%-8s %-12s %14.1f %14.2f\n", mode, mgr.Name(), thr, ar)
		}
	}
	fmt.Println("\nLazy + Polka maximizes concurrency under contention, as in Figure 5(d);")
	fmt.Println("the policy changed, the hardware did not.")
}
