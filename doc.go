// Package flextm is a Go reproduction of "Flexible Decoupled Transactional
// Memory Support" (Shriraman, Dwarkadas & Scott, ISCA 2008; UR TR #925).
//
// The repository contains a deterministic simulator of the paper's 16-core
// CMP with the TMESI coherence protocol (internal/tmesi), FlexTM's
// decoupled hardware primitives — access signatures, conflict summary
// tables, alert-on-update, programmable data isolation, overflow tables —
// the FlexTM software runtime with eager and lazy conflict management
// (internal/core), the baseline TM systems of the paper's evaluation
// (internal/baselines: CGL, RSTM, TL2, RTM-F), the seven benchmarks of
// Table 3(b) (internal/workloads), OS virtualization of transactions
// across context switches (internal/osmodel), the FlexWatcher memory
// debugger (internal/flexwatcher), and an area model for Table 2
// (internal/area).
//
// The benchmarks in bench_test.go and the cmd/paperbench tool regenerate
// every table and figure of the paper's evaluation; see DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
package flextm
