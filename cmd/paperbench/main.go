// Command paperbench regenerates every table and figure of the paper's
// evaluation (Sections 6-8):
//
//	paperbench -fig 4         Figure 4  (throughput/scalability, 7 workloads)
//	paperbench -fig 5         Figure 5a-d (eager vs lazy)
//	paperbench -fig 5mp       Figure 5e,f (multiprogramming with Prime)
//	paperbench -fig overflow  Section 7.3 overflow/victim-buffer ablation
//	paperbench -fig chaos     fault-injection campaign (robustness, not in paper)
//	paperbench -fig govern    resilience-governor A/B: governed vs ungoverned
//	                          twins under randomized chaos (not in paper)
//	paperbench -fig oracle    serializability oracle: clean sweep must pass,
//	                          broken W-R variant must be caught (not in paper)
//	paperbench -table 2       Table 2 (area estimation)
//	paperbench -table 4       Table 4b (FlexWatcher slowdowns)
//	paperbench -all           everything
//
// -quick shrinks the sweep for a fast smoke run; -ops and -threads tune the
// full one. -metrics collects per-mechanism telemetry and prints a compact
// digest under each data point; -json emits one JSON object per data point
// on stdout (the human tables move to stderr); -trace-out FILE writes a
// Chrome trace_event timeline of a dedicated traced run.
//
// -parallel N executes sweep cells on N worker goroutines (0 = all CPUs)
// with results gathered in deterministic serial order, so every artifact —
// tables, -json stream, -bench-out, causal digests — is byte-identical to
// a serial run. -cache DIR keeps a content-addressed cell cache: a warm
// re-run replays every cell from disk without simulating (-cache-clear
// empties the store first). SIGINT stops the sweep at the next cell
// boundary, flushes the partial -bench-out artifact, and exits 130.
//
// Perf artifacts: -bench-out FILE records every data point of the selected
// figures into a canonical BENCH_*.json artifact (schema flextm-bench/v1,
// byte-stable because the simulator is deterministic), and
//
//	paperbench -compare OLD.json NEW.json
//
// flags regressions between two artifacts (throughput drops and abort-rate
// growth beyond -threshold, vanished cells, and schema version skew),
// exiting non-zero when any are found; metrics recorded in only one of the
// two artifacts are reported as gaps. CI records a quick-sweep artifact per
// change and compares it against the checked-in baseline.
//
// Observation (internal/observatory): -http ADDR serves the live
// observatory while the sweeps run, and
//
//	paperbench -quick -fig 4 -bench-out BENCH_pr.json -report report.html
//
// writes a self-contained HTML run report — per-interval time series,
// conflict graph, pathology verdicts, telemetry tables, and (when the
// -report-baseline artifact is readable) the BENCH comparison.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"flextm/internal/area"
	"flextm/internal/benchfmt"
	"flextm/internal/causal"
	"flextm/internal/conflictgraph"
	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/flexwatcher"
	"flextm/internal/harness"
	"flextm/internal/observatory"
	"flextm/internal/sim"
	"flextm/internal/stress"
	"flextm/internal/sweepexec"
	cellcache "flextm/internal/sweepexec/cache"
	"flextm/internal/telemetry"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
	"flextm/internal/workloads"
)

// out receives the human-readable tables; stdout normally, stderr under
// -json so the JSON stream stays machine-parseable.
var out io.Writer = os.Stdout

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 4, 5, 5mp, overflow, sig, cm, logtm, chaos, govern, oracle, causal")
	table := flag.String("table", "", "table to regenerate: 2, 4")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "small sweep for a fast smoke run")
	ops := flag.Int("ops", harness.DefaultOps, "operations per thread per data point")
	threadList := flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
	metrics := flag.Bool("metrics", false, "collect per-mechanism telemetry; print a compact digest per data point")
	jsonOut := flag.Bool("json", false, "emit one JSON object per data point on stdout; tables move to stderr")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event timeline of a dedicated FlexTM(Lazy) RBTree run to FILE")
	benchOut := flag.String("bench-out", "", "record every data point into a canonical BENCH_*.json perf artifact at FILE")
	benchLabel := flag.String("bench-label", "", "free-form label stored in the -bench-out artifact")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json artifacts (paperbench -compare OLD NEW); exit non-zero on regressions")
	threshold := flag.Float64("threshold", 0.10, "relative worsening tolerated by -compare before a cell is flagged")
	httpAddr := flag.String("http", "", "serve the live observatory on ADDR while the sweeps run (/metrics, /snapshot.json, ...)")
	obsInterval := flag.Uint64("obs-interval", 0, "observation sampling interval in simulated cycles (0 = auto)")
	reportOut := flag.String("report", "", "write a self-contained HTML run report of a dedicated observed run to FILE")
	reportBaseline := flag.String("report-baseline", "BENCH_baseline.json", "baseline artifact for the -report BENCH comparison (section skipped when unreadable)")
	parallel := flag.Int("parallel", 1, "worker goroutines for sweep cells (1 = serial, 0 = all CPUs); output is byte-identical to serial")
	cacheDir := flag.String("cache", "", "content-addressed cell cache directory; hits replay cells without simulating")
	cacheClear := flag.Bool("cache-clear", false, "clear the -cache store before running")
	benchNotes := flag.String("bench-note", "", "comma-separated key=value notes stored in the -bench-out artifact")
	flag.Parse()

	if *compare {
		compareArtifacts(flag.Args(), *threshold)
		return
	}

	if *jsonOut {
		out = os.Stderr
	}

	sc := harness.SweepConfig{
		Machine: tmesi.DefaultConfig(),
		Ops:     *ops,
		Verify:  true,
		Metrics: *metrics || *jsonOut,
	}
	sc.Parallel = *parallel
	if *parallel == 0 {
		sc.Parallel = -1 // sweepexec maps non-positive workers to GOMAXPROCS
	}
	var store *cellcache.Store
	if *cacheDir != "" {
		var err error
		store, err = cellcache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		if *cacheClear {
			if err := store.Clear(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cell cache %s cleared\n", store.Dir())
		}
		sc.Cache = store
	} else if *cacheClear {
		fatal(fmt.Errorf("-cache-clear needs -cache DIR"))
	}
	// SIGINT/SIGTERM close the stop channel: in-flight cells finish, the
	// sweep returns sweepexec.ErrStopped, and fatal flushes what was emitted
	// before exiting 130. A second signal kills the process outright.
	stopCh := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		signal.Stop(sigCh)
		close(stopCh)
	}()
	sc.Stop = stopCh
	var bench *benchfmt.Artifact
	if *benchOut != "" {
		// Artifact cells carry the attribution split and pathology summary,
		// so recording forces telemetry and the flight recorder on.
		sc.Metrics = true
		sc.Flight = true
		bench = benchfmt.New(*benchLabel, 0)
		for _, kv := range strings.Split(*benchNotes, ",") {
			if kv = strings.TrimSpace(kv); kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				fatal(fmt.Errorf("bad -bench-note %q: want key=value", kv))
			}
			if bench.Notes == nil {
				bench.Notes = map[string]string{}
			}
			bench.Notes[k] = v
		}
		flushPartial = func() {
			if err := bench.WriteFile(*benchOut); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: partial artifact:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "== bench artifact (partial): %d cells -> %s ==\n", len(bench.Cells), *benchOut)
		}
	}
	for _, part := range strings.Split(*threadList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad -threads: %w", err))
		}
		sc.Threads = append(sc.Threads, n)
	}
	if *quick {
		sc.Threads = []int{1, 4, 16}
		sc.Ops = 80
	}
	if *httpAddr != "" {
		bus := observatory.NewBus()
		sc.Observe = observatory.NewPump(observatory.Config{
			Interval: sim.Time(*obsInterval), Bus: bus,
		})
		srv := observatory.NewServer(bus)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observatory http://%s (/metrics /snapshot.json /conflictgraph.dot /flight /debug/pprof/)\n", addr)
	}

	if *httpAddr != "" && sc.Parallel != 1 {
		fmt.Fprintln(os.Stderr, "observatory active: sweeps forced serial (-parallel ignored)")
	}

	enc := json.NewEncoder(os.Stdout)
	// currentFig names the figure whose sweep is running, so bench-artifact
	// cells key on (figure, system, workload, threads). Cells may execute on
	// several workers, but results are always emitted — and OnResult fired —
	// on this goroutine in serial order, so a variable suffices.
	currentFig := ""
	sc.OnResult = func(res harness.Result) {
		if *metrics && res.Telemetry != nil {
			fmt.Fprintf(out, "  .. %s/%s@%d: %s\n",
				res.System, res.Workload, res.Threads, telemetry.Compact(*res.Telemetry))
		}
		if *jsonOut {
			if err := enc.Encode(newJSONPoint(res)); err != nil {
				fatal(err)
			}
		}
		if bench != nil {
			bench.Ops = sc.Ops
			bench.Add(newBenchCell(currentFig, res, sc.Machine.Cores))
		}
	}

	ran := false
	if *all || *fig == "4" {
		ran = true
		currentFig = "fig4"
		figure4(sc)
	}
	if *all || *fig == "5" {
		ran = true
		currentFig = "fig5"
		figure5(sc)
	}
	if *all || *fig == "5mp" {
		ran = true
		currentFig = "fig5mp"
		figure5mp(sc)
	}
	if *all || *fig == "overflow" {
		ran = true
		currentFig = "overflow"
		overflow(sc)
	}
	if *all || *fig == "sig" {
		ran = true
		currentFig = "sig"
		sigAblation(sc)
	}
	if *all || *fig == "cm" {
		ran = true
		currentFig = "cm"
		cmAblation(sc)
	}
	if *all || *fig == "logtm" {
		ran = true
		currentFig = "logtm"
		logtmComparison(sc)
	}
	if *all || *fig == "chaos" {
		ran = true
		chaosCampaign(sc.Parallel, *quick, *jsonOut, enc)
	}
	if *all || *fig == "govern" {
		ran = true
		governCampaign(sc.Parallel, *quick, *jsonOut, enc)
	}
	if *all || *fig == "oracle" {
		ran = true
		oracleSweep(*quick, sc.Parallel)
	}
	if *all || *fig == "causal" {
		ran = true
		currentFig = "causal"
		causalFigure(sc)
	}
	if *all || *table == "2" {
		ran = true
		fmt.Fprintln(out, "== Table 2: area estimation (65nm) ==")
		fmt.Fprintln(out, area.Table())
	}
	if *all || *table == "4" {
		ran = true
		table4(sc)
	}
	if *traceOut != "" {
		ran = true
		currentFig = "timeline"
		writeTimeline(sc, *traceOut)
	}
	if *reportOut != "" {
		ran = true
		currentFig = "report"
		writeReport(sc, *reportOut, *reportBaseline, bench, *threshold, sim.Time(*obsInterval))
	}
	if !ran && !*cacheClear {
		flag.Usage()
		os.Exit(2)
	}
	if bench != nil {
		if err := bench.WriteFile(*benchOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "== bench artifact: %d cells -> %s ==\n", len(bench.Cells), *benchOut)
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "cell %s\n", store.Stats())
	}
}

// writeReport runs one dedicated observed FlexTM(Lazy)/RBTree point at the
// sweep's largest thread count with a frame-retaining pump, then renders
// the run as a self-contained HTML report. When a bench artifact was
// recorded this invocation and the baseline artifact is readable, the
// report embeds their comparison.
func writeReport(sc harness.SweepConfig, path, baselinePath string, bench *benchfmt.Artifact, threshold float64, iv sim.Time) {
	threads := 1
	for _, th := range sc.Threads {
		if th > threads {
			threads = th
		}
	}
	if iv == 0 {
		// Finer than the watch default: the report's charts want a few dozen
		// points out of a single paper-scale run.
		iv = 20_000
	}
	f, _ := workloads.ByName("RBTree")
	pump := observatory.NewPump(observatory.Config{Interval: iv, Retain: true})
	res, err := harness.Run(harness.RunConfig{
		System: harness.FlexTMLazy, Workload: f, Threads: threads,
		OpsPerThread: sc.Ops, Machine: sc.Machine, Verify: sc.Verify,
		Observe: pump,
		// Flight on with deep rings: the report's FlightQL drill-down
		// appendix queries the complete end-of-run stream.
		Flight: true, FlightPerCore: 1 << 17,
	})
	if err != nil {
		fatal(err)
	}
	if sc.OnResult != nil {
		sc.OnResult(res)
	}
	d := observatory.ReportData{
		Title:   fmt.Sprintf("FlexTM run report — %s / %s @ %d threads", res.System, res.Workload, res.Threads),
		Frames:  pump.Frames(),
		Command: fmt.Sprintf("paperbench -report %s -ops %d", path, sc.Ops),
	}
	if fin := pump.Final(); fin != nil {
		d.Meta = fin.Meta
	}
	if res.Flight != nil {
		d.FlightRecs = res.Flight.Snapshot()
	}
	if bench != nil {
		d.Bench = bench
		if base, err := benchfmt.ReadFile(baselinePath); err == nil {
			cres := benchfmt.Compare(base, bench, threshold)
			d.Compare = &cres
			d.BaselineLabel = baselinePath
		} else {
			fmt.Fprintf(out, "report: baseline %s unreadable, comparison section skipped (%v)\n", baselinePath, err)
		}
	}
	file, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := observatory.WriteHTMLReport(file, d); err != nil {
		file.Close()
		fatal(err)
	}
	if err := file.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "== report: %d frames from %s/%s@%d -> %s ==\n",
		len(d.Frames), res.System, res.Workload, res.Threads, path)
}

// newBenchCell converts one sweep data point into an artifact cell.
func newBenchCell(figure string, res harness.Result, cores int) benchfmt.Cell {
	c := benchfmt.Cell{
		Figure:     figure,
		System:     string(res.System),
		Workload:   res.Workload,
		Threads:    res.Threads,
		Commits:    res.Commits,
		Aborts:     res.Aborts,
		Cycles:     uint64(res.Cycles),
		Throughput: res.Throughput,
	}
	if res.Commits > 0 {
		c.AbortRate = float64(res.Aborts) / float64(res.Commits)
	}
	if res.Telemetry != nil {
		a := res.Telemetry.Attribution()
		c.Attribution = &a
	}
	if res.Flight != nil {
		recs := res.Flight.Snapshot()
		rep := conflictgraph.Analyze(recs, conflictgraph.Options{Cores: cores})
		if counts := rep.PathologyCounts(); len(counts) > 0 {
			c.Pathologies = counts
		}
		if crep := causal.Analyze(recs, causal.Options{Cores: cores, TopBlame: 3}); crep != nil {
			cp := &benchfmt.CriticalPath{
				PathCycles: crep.PathCycles,
				Makespan:   uint64(crep.Makespan),
				Coverage:   crep.Coverage,
			}
			for _, b := range crep.Blame {
				cp.TopBlame = append(cp.TopBlame, benchfmt.BlameEntry{
					Line: uint64(b.Line), Cycles: b.Cycles, FPCycles: b.FPCycles,
				})
			}
			c.CriticalPath = cp
		}
	}
	return c
}

// compareArtifacts implements -compare OLD NEW. The flag package stops
// parsing at the first positional argument, so a trailing `-threshold X`
// (the natural way to type the command) arrives here rather than in the
// parsed flag — accept it instead of failing on arg count.
func compareArtifacts(args []string, threshold float64) {
	var paths []string
	for i := 0; i < len(args); i++ {
		if a := strings.TrimLeft(args[i], "-"); a != args[i] && a == "threshold" && i+1 < len(args) {
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				fatal(fmt.Errorf("-threshold %q: %v", args[i+1], err))
			}
			threshold = v
			i++
			continue
		}
		paths = append(paths, args[i])
	}
	args = paths
	if len(args) != 2 {
		fatal(fmt.Errorf("-compare needs exactly two artifact paths, got %d", len(args)))
	}
	oldArt, err := benchfmt.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	newArt, err := benchfmt.ReadFile(args[1])
	if err != nil {
		fatal(err)
	}
	res := benchfmt.Compare(oldArt, newArt, threshold)
	res.Print(os.Stdout)
	if !res.Ok() {
		os.Exit(1)
	}
}

// jsonPoint is the machine-readable form of one data point.
type jsonPoint struct {
	System          string                 `json:"system"`
	Workload        string                 `json:"workload"`
	Threads         int                    `json:"threads"`
	Commits         uint64                 `json:"commits"`
	Aborts          uint64                 `json:"aborts"`
	Cycles          uint64                 `json:"cycles"`
	Throughput      float64                `json:"throughput"`
	MedianConflicts int                    `json:"medianConflicts"`
	MaxConflicts    int                    `json:"maxConflicts"`
	Machine         tmesi.Stats            `json:"machine"`
	Telemetry       map[string]uint64      `json:"telemetry,omitempty"`
	Attribution     *telemetry.Attribution `json:"attribution,omitempty"`
}

func newJSONPoint(res harness.Result) jsonPoint {
	p := jsonPoint{
		System:          string(res.System),
		Workload:        res.Workload,
		Threads:         res.Threads,
		Commits:         res.Commits,
		Aborts:          res.Aborts,
		Cycles:          uint64(res.Cycles),
		Throughput:      res.Throughput,
		MedianConflicts: res.MedianConflicts,
		MaxConflicts:    res.MaxConflicts,
		Machine:         res.Machine,
	}
	if res.Telemetry != nil {
		p.Telemetry = res.Telemetry.Totals()
		a := res.Telemetry.Attribution()
		p.Attribution = &a
	}
	return p
}

// writeTimeline runs one traced FlexTM(Lazy) RBTree point at the sweep's
// largest thread count and dumps the per-core timeline as Chrome
// trace_event JSON.
func writeTimeline(sc harness.SweepConfig, path string) {
	threads := 1
	for _, th := range sc.Threads {
		if th > threads {
			threads = th
		}
	}
	f, _ := workloads.ByName("RBTree")
	rec := trace.NewRecorder()
	res, err := harness.Run(harness.RunConfig{
		System: harness.FlexTMLazy, Workload: f, Threads: threads,
		OpsPerThread: sc.Ops, Machine: sc.Machine, Verify: sc.Verify,
		Tracer: rec, Metrics: sc.Metrics, Flight: sc.Flight,
	})
	if err != nil {
		fatal(err)
	}
	if sc.OnResult != nil {
		sc.OnResult(res)
	}
	file, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := trace.WriteChrome(file, rec.Events()); err != nil {
		file.Close()
		fatal(err)
	}
	if err := file.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "== timeline: %d events from FlexTM(Lazy)/RBTree@%d -> %s ==\n",
		len(rec.Events()), threads, path)
}

// flushPartial, when set, writes the bench artifact recorded so far. fatal
// calls it on an interrupted sweep so a SIGINT still lands the partial
// artifact on disk before the conventional 130 exit.
var flushPartial func()

func fatal(err error) {
	if errors.Is(err, sweepexec.ErrStopped) {
		if flushPartial != nil {
			flushPartial()
		}
		fmt.Fprintln(os.Stderr, "paperbench: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

func figure4(sc harness.SweepConfig) {
	plots, err := harness.Figure4(sc)
	if err != nil {
		fatal(err)
	}
	harness.PrintPlots(out, "Figure 4: throughput normalized to 1-thread CGL", plots, sc.Threads)
	fmt.Fprintln(out)
}

func figure5(sc harness.SweepConfig) {
	plots, err := harness.Figure5(sc)
	if err != nil {
		fatal(err)
	}
	harness.PrintPlots(out, "Figure 5a-d: eager vs lazy, normalized to 1-thread FlexTM(Eager)", plots, sc.Threads)
	fmt.Fprintln(out)
}

func figure5mp(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Figure 5e,f: multiprogramming with Prime (normalized to isolated 1-thread runs) ==")
	appThreads := []int{2, 4, 8, 12}
	for _, name := range []string{"RandomGraph", "LFUCache"} {
		f, _ := workloads.ByName(name)
		pts, err := harness.Multiprogram(sc, f, appThreads)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "\n[Prime + %s]\n%-16s %10s %10s %10s\n", name, "mode", "appThreads", "appNorm", "primeNorm")
		for _, p := range pts {
			fmt.Fprintf(out, "%-16s %10d %10.2f %10.2f\n", p.Mode, p.AppThreads, p.AppNorm, p.PrimeNorm)
		}
	}
	fmt.Fprintln(out)
}

func overflow(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Section 7.3: overflow (OT) cost vs unbounded victim buffer ==")
	res, err := harness.OverflowAblation(sc, []string{"RandomGraph", "RBTree", "HashTable"}, 8)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "%-14s %10s %10s\n", "workload", "overflows", "slowdown")
	for _, r := range res {
		fmt.Fprintf(out, "%-14s %10d %9.2f%%\n", r.Workload, r.Overflows, (r.Slowdown-1)*100)
	}
	fmt.Fprintln(out)
}

func sigAblation(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Ablation: signature width (FlexTM(Lazy), Vacation-Low, 8 threads) ==")
	res, err := harness.SignatureAblation(sc, "Vacation-Low", 8, []int{256, 512, 1024, 2048, 4096})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "%-8s %14s %14s %14s %14s\n",
		"bits", "txn/Mcycle", "aborts/commit", "observed FP", "analytic FP")
	for _, r := range res {
		fmt.Fprintf(out, "%-8d %14.1f %14.2f %13.4f%% %13.4f%%\n",
			r.Bits, r.Throughput, r.AbortRate, r.ObservedFP*100, r.PredictedFP*100)
	}
	fmt.Fprintln(out)
}

func cmAblation(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Ablation: contention managers (RandomGraph, 8 threads) ==")
	res, err := harness.ManagerAblation(sc, "RandomGraph", 8)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "%-8s %-12s %14s %14s\n", "mode", "manager", "txn/Mcycle", "aborts/commit")
	for _, r := range res {
		fmt.Fprintf(out, "%-8s %-12s %14.1f %14.2f\n", r.Mode, r.Manager, r.Throughput, r.AbortRate)
	}
	fmt.Fprintln(out)
}

func logtmComparison(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Extension: FlexTM vs alternative HTM designs (normalized to 1-thread CGL) ==")
	names := []string{"RBTree", "RandomGraph", "HashTable"}
	systems := []harness.SystemName{harness.FlexTMEager, harness.FlexTMLazy, harness.LogTM, harness.Bulk}
	factories := make([]workloads.Factory, len(names))
	for i, name := range names {
		factories[i], _ = workloads.ByName(name)
	}
	ex := sc.Exec()
	bases := make([]float64, len(names))
	err := sweepexec.Map(ex, len(names),
		func(i int) (float64, error) { return sc.BaselineCell(factories[i]) },
		func(i int, base float64) error { bases[i] = base; return nil })
	if err != nil {
		fatal(err)
	}
	// One flat grid: workload-major, then system, then thread count. The
	// emit callback runs in index order, so the table prints exactly as the
	// serial nested loops did.
	perWorkload := len(systems) * len(sc.Threads)
	err = sweepexec.Map(ex, len(names)*perWorkload,
		func(i int) (harness.Result, error) {
			w, r := i/perWorkload, i%perWorkload
			return sc.RunCell(harness.RunConfig{
				System: systems[r/len(sc.Threads)], Workload: factories[w],
				Threads: sc.Threads[r%len(sc.Threads)],
				OpsPerThread: sc.Ops, Machine: sc.Machine, Verify: true,
				Metrics: sc.Metrics, Flight: sc.Flight,
			})
		},
		func(i int, res harness.Result) error {
			w, r := i/perWorkload, i%perWorkload
			col := r % len(sc.Threads)
			if r == 0 {
				fmt.Fprintf(out, "\n[%s]\n%-16s", names[w], "system")
				for _, th := range sc.Threads {
					fmt.Fprintf(out, "%8d", th)
				}
				fmt.Fprintln(out)
			}
			if col == 0 {
				fmt.Fprintf(out, "%-16s", systems[r/len(sc.Threads)])
			}
			if sc.OnResult != nil {
				sc.OnResult(res)
			}
			fmt.Fprintf(out, "%8.2f", res.Throughput/bases[w])
			if col == len(sc.Threads)-1 {
				fmt.Fprintln(out)
			}
			return nil
		})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(out)
}

// chaosCampaign sweeps every fault class x rate x mode, asserting the
// conservation/consistency/isolation invariants in every cell. The campaign
// is deterministic: same spec, same fault schedule, same table. Any
// violation makes the run exit non-zero.
func chaosCampaign(parallel int, quick, jsonOut bool, enc *json.Encoder) {
	spec := harness.DefaultChaosSpec()
	spec.Parallel = parallel
	if quick {
		spec.Threads = 5
		spec.Rounds = 25
		spec.Rates = []float64{0.10}
	}
	fmt.Fprintln(out, "== Chaos: fault-injection campaign (invariants under injected faults) ==")
	res := harness.ChaosCampaign(spec)
	fmt.Fprintf(out, "%-16s %6s %-6s %9s %8s %6s %6s %9s  %s\n",
		"class", "rate", "mode", "commits", "aborts", "escal", "trips", "injected", "verdict")
	for _, c := range res.Cells {
		verdict := "ok"
		if len(c.Violations) > 0 {
			verdict = strings.Join(c.Violations, "; ")
		}
		fmt.Fprintf(out, "%-16s %6.2f %-6s %9d %8d %6d %6d %9d  %s\n",
			c.Class, c.Rate, c.Mode, c.Commits, c.Aborts, c.Escalations,
			c.WatchdogTrips, c.Injected, verdict)
		if jsonOut {
			if err := enc.Encode(c); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintln(out)
	if !res.Ok() {
		fatal(fmt.Errorf("chaos campaign: %d invariant violations", res.Violations))
	}
}

// governCampaign is the closed-loop resilience A/B: a randomized governed
// chaos soak (harness.Soak) where every cell runs twice — with the governor
// and as an ungoverned twin — all oracle- and conservation-checked. The
// table contrasts the two sides per cell and reports the governor's
// transition count and final ladder level; non-convergence or any invariant
// violation exits non-zero.
func governCampaign(parallel int, quick, jsonOut bool, enc *json.Encoder) {
	sc := harness.SoakConfig{Seed: 1, Parallel: parallel}
	if quick {
		sc.Cells = 3
		sc.Rounds = 20
	}
	fmt.Fprintln(out, "== Govern: governed vs ungoverned twins under randomized chaos ==")
	res := harness.Soak(sc)
	fmt.Fprintf(out, "%-9s %8s %8s %6s | %8s %8s %6s | %5s %5s  %s\n",
		"cell", "commits", "aborts", "escal", "commits", "aborts", "escal", "steps", "level", "verdict")
	fmt.Fprintf(out, "%-9s %25s | %25s |\n", "", "governed", "ungoverned twin")
	for i, c := range res.Cells {
		verdict := "ok"
		if len(c.Failures) > 0 {
			verdict = strings.Join(c.Failures, "; ")
		}
		fmt.Fprintf(out, "%-9s %8d %8d %6d | %8d %8d %6d | %5d %5d  %s\n",
			fmt.Sprintf("soak-%d", i), c.Commits, c.Aborts, c.Escalations,
			c.TwinCommits, c.TwinAborts, c.TwinEscalations,
			c.GovTransitions, c.GovFinalLevel, verdict)
		fmt.Fprintf(out, "  schedule %s\n", c.Schedule)
		if jsonOut {
			if err := enc.Encode(c); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintln(out)
	if !res.Ok() {
		fatal(fmt.Errorf("govern campaign: %d failed checks", res.Failures))
	}
}

// oracleSweep is the serializability acceptance gate. Phase 1: a bounded
// seed sweep of the schedule explorer — both conflict-management modes, all
// seven fault classes, tiny cache forcing overflow-table commits — where the
// unmodified protocol must produce only serializable histories. Phase 2 is
// the sensitivity check: the same explorer over the intentionally broken
// variant (commit-time W-R aborts disabled, Figure 3 line 2 skipped) must
// detect a violation and shrink it to a minimal replayable schedule. A
// passing phase 2 is what certifies that phase 1's silence means something.
func oracleSweep(quick bool, parallel int) {
	seeds := 16
	if quick {
		seeds = 4
	}
	workers := parallel
	if workers == 0 {
		workers = 1
	}
	fmt.Fprintln(out, "== Oracle: serializability under schedule exploration ==")
	var fc fault.Config
	for cl := fault.Class(0); cl < fault.NumClasses; cl++ {
		fc = fc.WithRate(cl, 0.05)
	}
	failed := false
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		base := stress.DefaultConfig(1)
		base.Mode = mode
		base.TinyCache = true
		base.Faults = fc
		res := stress.ExploreParallel(base, seeds, workers)
		verdict := "ok"
		if len(res.Failures) > 0 {
			failed = true
			verdict = fmt.Sprintf("%d FAILURES", len(res.Failures))
		}
		fmt.Fprintf(out, "%-8s %3d seeds x 7 fault classes: %s\n", mode, res.Runs, verdict)
		for _, f := range res.Failures {
			shrunk := stress.Shrink(f.Config, 64)
			fmt.Fprintf(out, "  schedule %s (shrunk from %s)\n", shrunk.Schedule, f.Schedule)
			if shrunk.RunErr != "" {
				fmt.Fprintln(out, "  run error:", shrunk.RunErr)
			}
			if shrunk.Report != nil {
				shrunk.Report.Print(out)
			}
		}
	}

	// Sensitivity: the broken variant must be caught.
	base := stress.DefaultConfig(1)
	base.Mode = core.Lazy
	base.BreakWR = true
	res := stress.ExploreParallel(base, 8, workers)
	if len(res.Failures) == 0 {
		failed = true
		fmt.Fprintln(out, "broken W-R variant: NOT DETECTED (oracle is blind)")
	} else {
		shrunk := stress.Shrink(res.Failures[0].Config, 64)
		fmt.Fprintf(out, "broken W-R variant: detected in %d/%d seeds; shrunk witness %s\n",
			len(res.Failures), res.Runs, shrunk.Schedule)
		if shrunk.Report != nil {
			shrunk.Report.Print(out)
		}
		if !shrunk.Failed() {
			failed = true
			fmt.Fprintln(out, "broken W-R variant: shrink lost the failure")
		}
	}
	fmt.Fprintln(out)
	if failed {
		fatal(fmt.Errorf("oracle sweep failed"))
	}
}

// causalFigure sweeps a contention-heavy pair of workloads over both
// conflict-management modes, reconstructing the attempt DAG of every cell
// and tabulating how much of its makespan the critical path explains and
// which lines that path blames. The cells land in the bench artifact (via
// OnResult / newBenchCell) with their criticalPath digests attached.
func causalFigure(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Causal: critical path vs makespan (top-3 blame lines per cell) ==")
	fmt.Fprintf(out, "%-14s %-14s %7s %12s %12s %8s  %s\n",
		"system", "workload", "threads", "path(cyc)", "makespan", "cover", "top blame (share of path)")
	names := []string{"RBTree", "RandomGraph"}
	systems := []harness.SystemName{harness.FlexTMEager, harness.FlexTMLazy}
	factories := make([]workloads.Factory, len(names))
	for i, name := range names {
		factories[i], _ = workloads.ByName(name)
	}
	perWorkload := len(systems) * len(sc.Threads)
	err := sweepexec.Map(sc.Exec(), len(names)*perWorkload,
		func(i int) (harness.Result, error) {
			w, r := i/perWorkload, i%perWorkload
			return sc.RunCell(harness.RunConfig{
				System: systems[r/len(sc.Threads)], Workload: factories[w],
				Threads: sc.Threads[r%len(sc.Threads)],
				OpsPerThread: sc.Ops, Machine: sc.Machine, Verify: true,
				Metrics: sc.Metrics, Flight: true,
			})
		},
		func(i int, res harness.Result) error {
			if sc.OnResult != nil {
				sc.OnResult(res)
			}
			rep := causal.Analyze(res.Flight.Snapshot(),
				causal.Options{Cores: sc.Machine.Cores, TopBlame: 3})
			if rep == nil {
				return nil
			}
			blame := ""
			for i, b := range rep.Blame {
				if i > 0 {
					blame += "  "
				}
				blame += fmt.Sprintf("0x%x %.0f%%", b.Line, b.Share*100)
				if b.FPCycles > 0 {
					blame += fmt.Sprintf(" (fp %.0f%%)", float64(b.FPCycles)/float64(b.Cycles)*100)
				}
			}
			fmt.Fprintf(out, "%-14s %-14s %7d %12d %12d %7.1f%%  %s\n",
				res.System, res.Workload, res.Threads, rep.PathCycles,
				uint64(rep.Makespan), rep.Coverage*100, blame)
			return nil
		})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(out)
}

func table4(sc harness.SweepConfig) {
	fmt.Fprintln(out, "== Table 4b: FlexWatcher vs Discover slowdowns ==")
	cfg := sc.Machine
	cfg.Cores = 2
	rows, err := flexwatcher.Table4(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(out, flexwatcher.PrintTable4(rows))
	fmt.Fprintln(out)
}
