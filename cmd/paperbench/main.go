// Command paperbench regenerates every table and figure of the paper's
// evaluation (Sections 6-8):
//
//	paperbench -fig 4         Figure 4  (throughput/scalability, 7 workloads)
//	paperbench -fig 5         Figure 5a-d (eager vs lazy)
//	paperbench -fig 5mp       Figure 5e,f (multiprogramming with Prime)
//	paperbench -fig overflow  Section 7.3 overflow/victim-buffer ablation
//	paperbench -table 2       Table 2 (area estimation)
//	paperbench -table 4       Table 4b (FlexWatcher slowdowns)
//	paperbench -all           everything
//
// -quick shrinks the sweep for a fast smoke run; -ops and -threads tune the
// full one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flextm/internal/area"
	"flextm/internal/flexwatcher"
	"flextm/internal/harness"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 4, 5, 5mp, overflow, sig, cm, logtm")
	table := flag.String("table", "", "table to regenerate: 2, 4")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "small sweep for a fast smoke run")
	ops := flag.Int("ops", harness.DefaultOps, "operations per thread per data point")
	threadList := flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
	flag.Parse()

	sc := harness.SweepConfig{
		Machine: tmesi.DefaultConfig(),
		Ops:     *ops,
		Verify:  true,
	}
	for _, part := range strings.Split(*threadList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad -threads: %w", err))
		}
		sc.Threads = append(sc.Threads, n)
	}
	if *quick {
		sc.Threads = []int{1, 4, 16}
		sc.Ops = 80
	}

	ran := false
	if *all || *fig == "4" {
		ran = true
		figure4(sc)
	}
	if *all || *fig == "5" {
		ran = true
		figure5(sc)
	}
	if *all || *fig == "5mp" {
		ran = true
		figure5mp(sc)
	}
	if *all || *fig == "overflow" {
		ran = true
		overflow(sc)
	}
	if *all || *fig == "sig" {
		ran = true
		sigAblation(sc)
	}
	if *all || *fig == "cm" {
		ran = true
		cmAblation(sc)
	}
	if *all || *fig == "logtm" {
		ran = true
		logtmComparison(sc)
	}
	if *all || *table == "2" {
		ran = true
		fmt.Println("== Table 2: area estimation (65nm) ==")
		fmt.Println(area.Table())
	}
	if *all || *table == "4" {
		ran = true
		table4(sc)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

func figure4(sc harness.SweepConfig) {
	plots, err := harness.Figure4(sc)
	if err != nil {
		fatal(err)
	}
	harness.PrintPlots(os.Stdout, "Figure 4: throughput normalized to 1-thread CGL", plots, sc.Threads)
	fmt.Println()
}

func figure5(sc harness.SweepConfig) {
	plots, err := harness.Figure5(sc)
	if err != nil {
		fatal(err)
	}
	harness.PrintPlots(os.Stdout, "Figure 5a-d: eager vs lazy, normalized to 1-thread FlexTM(Eager)", plots, sc.Threads)
	fmt.Println()
}

func figure5mp(sc harness.SweepConfig) {
	fmt.Println("== Figure 5e,f: multiprogramming with Prime (normalized to isolated 1-thread runs) ==")
	appThreads := []int{2, 4, 8, 12}
	for _, name := range []string{"RandomGraph", "LFUCache"} {
		f, _ := workloads.ByName(name)
		pts, err := harness.Multiprogram(sc, f, appThreads)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n[Prime + %s]\n%-16s %10s %10s %10s\n", name, "mode", "appThreads", "appNorm", "primeNorm")
		for _, p := range pts {
			fmt.Printf("%-16s %10d %10.2f %10.2f\n", p.Mode, p.AppThreads, p.AppNorm, p.PrimeNorm)
		}
	}
	fmt.Println()
}

func overflow(sc harness.SweepConfig) {
	fmt.Println("== Section 7.3: overflow (OT) cost vs unbounded victim buffer ==")
	res, err := harness.OverflowAblation(sc, []string{"RandomGraph", "RBTree", "HashTable"}, 8)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-14s %10s %10s\n", "workload", "overflows", "slowdown")
	for _, r := range res {
		fmt.Printf("%-14s %10d %9.2f%%\n", r.Workload, r.Overflows, (r.Slowdown-1)*100)
	}
	fmt.Println()
}

func sigAblation(sc harness.SweepConfig) {
	fmt.Println("== Ablation: signature width (FlexTM(Lazy), Vacation-Low, 8 threads) ==")
	res, err := harness.SignatureAblation(sc, "Vacation-Low", 8, []int{256, 512, 1024, 2048, 4096})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %14s %14s\n", "bits", "txn/Mcycle", "aborts/commit")
	for _, r := range res {
		fmt.Printf("%-8d %14.1f %14.2f\n", r.Bits, r.Throughput, r.AbortRate)
	}
	fmt.Println()
}

func cmAblation(sc harness.SweepConfig) {
	fmt.Println("== Ablation: contention managers (RandomGraph, 8 threads) ==")
	res, err := harness.ManagerAblation(sc, "RandomGraph", 8)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %-12s %14s %14s\n", "mode", "manager", "txn/Mcycle", "aborts/commit")
	for _, r := range res {
		fmt.Printf("%-8s %-12s %14.1f %14.2f\n", r.Mode, r.Manager, r.Throughput, r.AbortRate)
	}
	fmt.Println()
}

func logtmComparison(sc harness.SweepConfig) {
	fmt.Println("== Extension: FlexTM vs alternative HTM designs (normalized to 1-thread CGL) ==")
	for _, name := range []string{"RBTree", "RandomGraph", "HashTable"} {
		f, _ := workloads.ByName(name)
		base, err := harness.Baseline(f, sc.Machine, sc.Ops)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n[%s]\n%-16s", name, "system")
		for _, th := range sc.Threads {
			fmt.Printf("%8d", th)
		}
		fmt.Println()
		for _, sys := range []harness.SystemName{harness.FlexTMEager, harness.FlexTMLazy, harness.LogTM, harness.Bulk} {
			fmt.Printf("%-16s", sys)
			for _, th := range sc.Threads {
				res, err := harness.Run(harness.RunConfig{
					System: sys, Workload: f, Threads: th,
					OpsPerThread: sc.Ops, Machine: sc.Machine, Verify: true,
				})
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%8.2f", res.Throughput/base)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func table4(sc harness.SweepConfig) {
	fmt.Println("== Table 4b: FlexWatcher vs Discover slowdowns ==")
	cfg := sc.Machine
	cfg.Cores = 2
	rows, err := flexwatcher.Table4(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(flexwatcher.PrintTable4(rows))
	fmt.Println()
}
