// Command flextm runs a single experiment: one workload on one TM system at
// one thread count, printing throughput, abort rates, conflict degrees, and
// machine counters.
//
//	flextm -workload RBTree -system 'FlexTM(Lazy)' -threads 8 -ops 500
//	flextm -list
package main

import (
	"flag"
	"fmt"
	"os"

	"flextm/internal/harness"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
	"flextm/internal/workloads"
)

func main() {
	workload := flag.String("workload", "RBTree", "workload name (see -list)")
	system := flag.String("system", "FlexTM(Lazy)", "TM system: CGL, FlexTM(Eager), FlexTM(Lazy), RTM-F, RSTM, TL2")
	threads := flag.Int("threads", 8, "number of threads (<= cores)")
	ops := flag.Int("ops", harness.DefaultOps, "operations per thread")
	cores := flag.Int("cores", 16, "cores in the simulated CMP")
	verify := flag.Bool("verify", true, "check structural invariants after the run")
	traceStats := flag.Bool("tracestats", false, "print a transaction-level trace summary (FlexTM systems)")
	metrics := flag.Bool("metrics", false, "collect per-mechanism telemetry and print counter + cycle-attribution tables")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON timeline to FILE (open in chrome://tracing or Perfetto)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, f := range workloads.All() {
			fmt.Println(f.Name)
		}
		return
	}

	f, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "flextm: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	machine := tmesi.DefaultConfig()
	machine.Cores = *cores

	var rec *trace.Recorder
	if *traceStats || *traceOut != "" {
		rec = trace.NewRecorder()
	}
	res, err := harness.Run(harness.RunConfig{
		System:       harness.SystemName(*system),
		Workload:     f,
		Threads:      *threads,
		OpsPerThread: *ops,
		Machine:      machine,
		Verify:       *verify,
		Tracer:       rec,
		Metrics:      *metrics,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}

	fmt.Printf("workload    %s\nsystem      %s\nthreads     %d\n", res.Workload, res.System, res.Threads)
	fmt.Printf("commits     %d\naborts      %d (%.2f per commit)\n",
		res.Commits, res.Aborts, float64(res.Aborts)/float64(max(res.Commits, 1)))
	fmt.Printf("cycles      %d\nthroughput  %.2f txn/Mcycle\n", res.Cycles, res.Throughput)
	fmt.Printf("conflicts   median %d, max %d (per committed txn)\n", res.MedianConflicts, res.MaxConflicts)
	if rec != nil {
		fmt.Println("-- trace summary --")
		rec.Summarize().Print(os.Stdout)
	}
	m := res.Machine
	fmt.Printf("machine     L1 %.1f%% hit, %d L2 misses, %d threatened, %d exposed-read, %d overflows, %d alerts\n",
		100*float64(m.L1Hits)/float64(max(m.L1Hits+m.L1Misses, 1)),
		m.L2Misses, m.ThreatenedResponses, m.ExposedReadResponses, m.Overflows, m.Alerts)
	if res.Telemetry != nil {
		fmt.Println("-- telemetry --")
		res.Telemetry.Print(os.Stdout)
		fmt.Println("-- cycle attribution --")
		res.Telemetry.PrintAttribution(os.Stdout)
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(1)
		}
		fmt.Printf("trace       %d events -> %s\n", len(rec.Events()), *traceOut)
	}
}

// writeChromeTrace dumps the recorded timeline in Chrome trace_event JSON.
func writeChromeTrace(path string, rec *trace.Recorder) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(out, rec.Events()); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
