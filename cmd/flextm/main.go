// Command flextm runs a single experiment: one workload on one TM system at
// one thread count, printing throughput, abort rates, conflict degrees, and
// machine counters.
//
//	flextm -workload RBTree -system 'FlexTM(Lazy)' -threads 8 -ops 500
//	flextm -workload RBTree -faults 'commit-race:0.3,alert-loss:0.1' -fault-seed 7
//	flextm -workload LFUCache -threads 16 -profile
//	flextm -workload RBTree -profile -profile-dot graph.dot -profile-json profile.json
//	flextm -list
//
// Live observation (internal/observatory):
//
//	flextm -workload RBTree -threads 16 -http :8080    serve /metrics, /snapshot.json,
//	                                                   /conflictgraph.dot, /flight, pprof
//	flextm -workload RBTree -threads 16 -watch         one line per interval + sparklines
//	flextm -livelock -watch                            watch an abort cycle surface live
//
// When an observed run (or one writing artifacts) receives SIGINT/SIGQUIT,
// the next pump tick flushes partial artifacts — flight-recorder profile,
// telemetry tables, the Chrome trace written so far — before exiting 130.
//
// Serializability oracle (internal/oracle + internal/stress):
//
//	flextm -workload RBTree -oracle            oracle-check the workload run
//	flextm -stress 32 -seed 1                  explore 32 stress seeds
//	flextm -stress 8 -broken                   broken protocol: must fail
//	flextm -schedule 's1,t2,r3,o1,a2,lazy'     replay one stress schedule
//
// Stress and replay runs exit non-zero on any serializability violation
// (unless -broken asked for one, where finding it is the success).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flextm/internal/causal"
	"flextm/internal/conflictgraph"
	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/flightql"
	"flextm/internal/governor"
	"flextm/internal/harness"
	"flextm/internal/observatory"
	"flextm/internal/sim"
	"flextm/internal/stress"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
	"flextm/internal/workloads"
)

func main() {
	workload := flag.String("workload", "RBTree", "workload name (see -list)")
	system := flag.String("system", "FlexTM(Lazy)", "TM system: CGL, FlexTM(Eager), FlexTM(Lazy), RTM-F, RSTM, TL2")
	threads := flag.Int("threads", 8, "number of threads (<= cores)")
	ops := flag.Int("ops", harness.DefaultOps, "operations per thread")
	cores := flag.Int("cores", 16, "cores in the simulated CMP")
	verify := flag.Bool("verify", true, "check structural invariants after the run")
	traceStats := flag.Bool("tracestats", false, "print a transaction-level trace summary (FlexTM systems)")
	metrics := flag.Bool("metrics", false, "collect per-mechanism telemetry and print counter + cycle-attribution tables")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON timeline to FILE (open in chrome://tracing or Perfetto)")
	faults := flag.String("faults", "", "fault injection spec, e.g. 'commit-race:0.3,alert-loss:0.1' or 'all:0.05' (classes: "+faultClassList()+")")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-schedule seed; same seed + config replays the identical campaign")
	profile := flag.Bool("profile", false, "record a flight-recorder history and print the conflict-graph contention profile")
	profileDOT := flag.String("profile-dot", "", "write the conflict graph in Graphviz DOT form to FILE (implies -profile)")
	profileJSON := flag.String("profile-json", "", "write the full conflict-graph report as JSON to FILE (implies -profile)")
	causalOn := flag.Bool("causal", false, "reconstruct the attempt DAG and print the makespan critical path with per-line blame")
	causalJSON := flag.String("causal-json", "", "write the causal report (critical path, blame, wasted-work ledger) as JSON to FILE (implies -causal)")
	causalDOT := flag.String("causal-dot", "", "write the critical path in Graphviz DOT form to FILE (implies -causal)")
	oracleOn := flag.Bool("oracle", false, "attach the serializability oracle to the run and print its verdict (FlexTM systems)")
	stressN := flag.Int("stress", 0, "run N seeds of the oracle-checked stress explorer instead of a workload")
	stressParallel := flag.Int("parallel", 1, "with -stress: worker goroutines for the explorer (1 = serial, 0 = all CPUs); results identical to serial")
	seed := flag.Uint64("seed", 1, "base seed for -stress")
	broken := flag.Bool("broken", false, "with -stress: disable the commit-time W-R aborts (the oracle must catch the break)")
	schedule := flag.String("schedule", "", "replay one stress schedule string (as printed by -stress failures)")
	list := flag.Bool("list", false, "list workloads and exit")
	httpAddr := flag.String("http", "", "serve the live observatory on ADDR (e.g. :8080): /metrics, /snapshot.json, /conflictgraph.dot, /flight, /debug/pprof/")
	watch := flag.Bool("watch", false, "print one digest line per sampling interval, with sparkline trends and live pathology flags")
	obsInterval := flag.Uint64("obs-interval", 0, "observation sampling interval in simulated cycles (0 = auto)")
	linger := flag.Duration("linger", 0, "keep the -http server up for DUR after the run ends (scrape window)")
	livelock := flag.Bool("livelock", false, "run the dueling-livelock probe instead of a workload (pairs with -watch)")
	govern := flag.Bool("govern", false, "attach the closed-loop resilience governor (FlexTM systems; with -livelock the probe must self-heal)")
	governLadder := flag.String("govern-ladder", "", "governor mitigation ladder spec, e.g. 'cm:Polka,backoff:3,admit:auto,sig:4,serialize' (default: built-in ladder)")
	governLog := flag.String("govern-log", "", "write the governor transition log to FILE after the run")
	var queryExprs queryList
	flag.Var(&queryExprs, "query", "FlightQL query over the run's flight records (repeatable), e.g. 'filter kind == cm-stall | group by line agg sum(dur) | top 5 by sum(dur)'; implies the flight recorder")
	queryOut := flag.String("query-out", "", "write all -query results as one canonical JSON document to FILE (byte-stable per seed)")
	flag.Parse()
	if *profileDOT != "" || *profileJSON != "" {
		*profile = true
	}
	if *causalJSON != "" || *causalDOT != "" {
		*causalOn = true
	}
	causalCfg := causalArtifacts{on: *causalOn, jsonPath: *causalJSON, dotPath: *causalDOT}
	// Parse every query up front: a typo should fail before a long run, not
	// after it.
	queryCfg, err := newQueryConfig(queryExprs, *queryOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(2)
	}

	if *list {
		for _, f := range workloads.All() {
			fmt.Println(f.Name)
		}
		return
	}
	if *schedule != "" {
		replaySchedule(*schedule)
		return
	}
	if *stressN > 0 {
		runStress(*stressN, *seed, *system, *faults, *faultSeed, *broken, *stressParallel)
		return
	}

	// Observation plane. The pump is created whenever there is something to
	// observe or something to flush on interrupt; it rides the simulation as
	// its own thread (harness.RunConfig.Observe), so sampling is
	// deterministic and cannot perturb the run.
	obsOn := *httpAddr != "" || *watch || *livelock || *metrics || *profile || *causalOn || *traceOut != ""
	var (
		bus            *observatory.Bus
		pump           *observatory.Pump
		flushArtifacts func(*observatory.Frame)
	)
	if obsOn {
		bus = observatory.NewBus()
		iv := sim.Time(*obsInterval)
		if iv == 0 {
			iv = observatory.DefaultInterval
			if *livelock {
				// The duel lives and dies within a few tens of thousands of
				// cycles; sample finely enough to catch the cycle forming.
				iv = 1000
				if *govern {
					// The governed probe's tuning (watchdog budget, hysteresis)
					// assumes its tested reaction period.
					iv = harness.GovernedLivelockInterval
				}
			}
		}
		pump = observatory.NewPump(observatory.Config{
			Interval: iv,
			Bus:      bus,
			OnFlush: func(fr *observatory.Frame) {
				fmt.Fprintln(os.Stderr, "\nflextm: interrupted — flushing partial artifacts")
				if flushArtifacts != nil {
					flushArtifacts(fr)
				}
				os.Exit(130)
			},
		})
		// SIGINT/SIGQUIT: ask the pump to flush on its next tick, which runs
		// inside the simulation — the only place artifacts can be written
		// without racing the run. If the simulation is wedged and never
		// ticks again, give up after a grace period.
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGQUIT)
		go func() {
			<-sigc
			pump.RequestFlush()
			time.Sleep(3 * time.Second)
			fmt.Fprintln(os.Stderr, "flextm: no pump tick within 3s of the signal — exiting without flush")
			os.Exit(130)
		}()
	}
	var srv *observatory.Server
	if *httpAddr != "" {
		srv = observatory.NewServer(bus)
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observatory http://%s (/metrics /snapshot.json /conflictgraph.dot /flight /debug/pprof/)\n", addr)
	}
	var watchDone chan struct{}
	if *watch {
		ch, _ := bus.Subscribe(4096)
		watchDone = make(chan struct{})
		wa := observatory.NewWatcher(os.Stdout)
		wa.AttachBus(bus)
		go func() {
			wa.Run(ch)
			close(watchDone)
		}()
	}
	lingerPhase := func() {
		if srv == nil || *linger <= 0 {
			return
		}
		signal.Reset(os.Interrupt, syscall.SIGQUIT)
		fmt.Fprintf(os.Stderr, "observatory lingering %s for scrapes (Ctrl-C to exit)\n", *linger)
		time.Sleep(*linger)
		srv.Close()
	}

	// The governor. With -livelock the probe's tested configuration is the
	// base; a -govern-ladder spec overrides the rung sequence either way.
	var gov *governor.Governor
	if *govern {
		gcfg := governor.Config{Cooldown: -1}
		if *livelock {
			gcfg = harness.GovernedLivelockConfig()
		}
		if *governLadder != "" {
			ladder, err := governor.ParseLadder(*governLadder)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flextm:", err)
				os.Exit(2)
			}
			gcfg.Ladder = ladder
		}
		gov = governor.New(gcfg)
	}

	if *livelock {
		if gov != nil {
			runGovernedLivelock(*seed, gov, pump, watchDone, *governLog, causalCfg, queryCfg)
		} else {
			runLivelock(*seed, pump, watchDone, causalCfg, queryCfg)
		}
		lingerPhase()
		return
	}

	f, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "flextm: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	machine := tmesi.DefaultConfig()
	machine.Cores = *cores

	var rec *trace.Recorder
	if *traceStats || *traceOut != "" {
		rec = trace.NewRecorder()
	}
	var faultCfg fault.Config
	if *faults != "" {
		var err error
		faultCfg, err = fault.ParseSpec(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(2)
		}
	}
	// What an interrupted run leaves behind: the Chrome trace written so
	// far, the telemetry tables, and the windowed contention profile (plus
	// its DOT/JSON forms when those were requested). Runs inside the
	// simulation via the pump's OnFlush, so nothing here races the workers.
	flushArtifacts = func(fr *observatory.Frame) {
		if *traceOut != "" && rec != nil {
			if err := writeChromeTrace(*traceOut, rec); err == nil {
				fmt.Fprintf(os.Stderr, "trace       partial -> %s\n", *traceOut)
			}
		}
		fmt.Fprintln(os.Stderr, "-- telemetry at interrupt --")
		fr.Cum.Print(os.Stderr)
		fr.Cum.PrintAttribution(os.Stderr)
		if fr.Report != nil {
			fmt.Fprintln(os.Stderr, "-- contention profile at interrupt (window) --")
			fr.Report.Print(os.Stderr)
			if *profileDOT != "" {
				if err := writeDOT(*profileDOT, fr.Report); err == nil {
					fmt.Fprintf(os.Stderr, "graph       partial -> %s\n", *profileDOT)
				}
			}
			if *profileJSON != "" {
				if err := writeReportJSON(*profileJSON, fr.Report); err == nil {
					fmt.Fprintf(os.Stderr, "profile     partial -> %s\n", *profileJSON)
				}
			}
		}
		if fr.Causal != nil {
			fmt.Fprintln(os.Stderr, "-- causal critical path at interrupt (window) --")
			fr.Causal.Print(os.Stderr)
			if *causalDOT != "" {
				if err := writeCausalDOT(*causalDOT, fr.Causal); err == nil {
					fmt.Fprintf(os.Stderr, "causal      partial graph -> %s\n", *causalDOT)
				}
			}
			if *causalJSON != "" {
				if err := writeCausalJSON(*causalJSON, fr.Causal); err == nil {
					fmt.Fprintf(os.Stderr, "causal      partial report -> %s\n", *causalJSON)
				}
			}
		}
	}
	res, err := harness.Run(harness.RunConfig{
		System:       harness.SystemName(*system),
		Workload:     f,
		Threads:      *threads,
		OpsPerThread: *ops,
		Machine:      machine,
		Verify:       *verify,
		Tracer:       rec,
		Metrics:      *metrics,
		Flight:       *profile || *causalOn || queryCfg.on(),
		Faults:       faultCfg,
		Oracle:       *oracleOn,
		Observe:      pump,
		Govern:       gov,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	waitWatch(watchDone)

	fmt.Printf("workload    %s\nsystem      %s\nthreads     %d\n", res.Workload, res.System, res.Threads)
	fmt.Printf("commits     %d\naborts      %d (%.2f per commit)\n",
		res.Commits, res.Aborts, float64(res.Aborts)/float64(max(res.Commits, 1)))
	fmt.Printf("cycles      %d\nthroughput  %.2f txn/Mcycle\n", res.Cycles, res.Throughput)
	fmt.Printf("conflicts   median %d, max %d (per committed txn)\n", res.MedianConflicts, res.MaxConflicts)
	if res.Escalations > 0 || *faults != "" {
		fmt.Printf("escalations %d (serialized-irrevocable fallback commits)\n", res.Escalations)
	}
	if fr := res.FaultReport; fr != nil {
		fmt.Printf("faults      %d injected of %d rolls (seed %d)\n", fr.Total, rollTotal(*fr), *faultSeed)
		for _, cl := range fault.Classes() {
			name := cl.String()
			if fr.Rolls[name] > 0 || fr.Fired[name] > 0 {
				fmt.Printf("  %-16s %d/%d\n", name, fr.Fired[name], fr.Rolls[name])
			}
		}
	}
	if rec != nil {
		fmt.Println("-- trace summary --")
		rec.Summarize().Print(os.Stdout)
	}
	m := res.Machine
	fmt.Printf("machine     L1 %.1f%% hit, %d L2 misses, %d threatened, %d exposed-read, %d overflows, %d alerts\n",
		100*float64(m.L1Hits)/float64(max(m.L1Hits+m.L1Misses, 1)),
		m.L2Misses, m.ThreatenedResponses, m.ExposedReadResponses, m.Overflows, m.Alerts)
	// Gate on the flag, not the snapshot: an attached observatory forces
	// telemetry on, and that must not change the default output.
	if *metrics && res.Telemetry != nil {
		fmt.Println("-- telemetry --")
		res.Telemetry.Print(os.Stdout)
		fmt.Println("-- cycle attribution --")
		res.Telemetry.PrintAttribution(os.Stdout)
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(1)
		}
		fmt.Printf("trace       %d events -> %s\n", len(rec.Events()), *traceOut)
	}
	if *profile {
		rep := conflictgraph.Analyze(res.Flight.Snapshot(),
			conflictgraph.Options{Cores: machine.Cores})
		fmt.Println("-- contention profile --")
		rep.Print(os.Stdout)
		if *profileDOT != "" {
			if err := writeDOT(*profileDOT, rep); err != nil {
				fmt.Fprintln(os.Stderr, "flextm:", err)
				os.Exit(1)
			}
			fmt.Printf("graph       -> %s\n", *profileDOT)
		}
		if *profileJSON != "" {
			if err := writeReportJSON(*profileJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "flextm:", err)
				os.Exit(1)
			}
			fmt.Printf("profile     -> %s\n", *profileJSON)
		}
	}
	if *causalOn {
		emitCausal(causalCfg, res.Flight.Snapshot(), machine.Cores)
	}
	if queryCfg.on() {
		queryCfg.emit(res.Flight.Snapshot(), machine.Cores)
	}
	if gov != nil {
		printGovernor(gov)
		if err := writeGovLog(*governLog, gov); err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(1)
		}
	}
	if rep := res.OracleReport; rep != nil {
		fmt.Println("-- serializability oracle --")
		rep.Print(os.Stdout)
		if !rep.Ok() {
			os.Exit(1)
		}
	} else if *oracleOn {
		fmt.Fprintf(os.Stderr, "flextm: -oracle ignored: %s is not a FlexTM runtime\n", *system)
	}
	lingerPhase()
}

// waitWatch gives the watch goroutine a moment to drain its channel and
// print the Final frame; the bus never blocks publishers, so the main
// goroutine must not exit the instant the run does.
func waitWatch(done chan struct{}) {
	if done == nil {
		return
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
}

// runLivelock runs the dueling-livelock probe under the observation plane:
// the classic demonstration that the watch mode flags an abort cycle while
// the duel is still running, before the watchdog trips.
func runLivelock(seed uint64, pump *observatory.Pump, watchDone chan struct{}, causalCfg causalArtifacts, queryCfg queryConfig) {
	rep, out, err := harness.ObservedLivelockProbe(seed, pump)
	waitWatch(watchDone)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	fmt.Printf("livelock    commits %d, aborts %d, escalations %d (watchdog dump: %v)\n",
		out.Commits, out.Aborts, out.Escalations, out.Dumped)
	rep.Print(os.Stdout)
	emitCausal(causalCfg, out.Recs, 0)
	if queryCfg.on() {
		queryCfg.emit(out.Recs, 0)
	}
	if !rep.Has(conflictgraph.AbortCycle) {
		fmt.Fprintln(os.Stderr, "flextm: livelock probe did not produce an abort cycle")
		os.Exit(1)
	}
}

// runGovernedLivelock runs the same duel under the resilience governor with
// a loosened watchdog: the ladder, not the watchdog, must break the cycle,
// and by run end every rung must have unwound. Either failing exits 1.
func runGovernedLivelock(seed uint64, gov *governor.Governor, pump *observatory.Pump, watchDone chan struct{}, logPath string, causalCfg causalArtifacts, queryCfg queryConfig) {
	rep, out, err := harness.GovernedLivelockProbe(seed, gov, pump)
	waitWatch(watchDone)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	fmt.Printf("livelock    commits %d, aborts %d, escalations %d, watchdog trips %d\n",
		out.Commits, out.Aborts, out.Escalations, out.Trips)
	printGovernor(gov)
	if err := writeGovLog(logPath, gov); err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
	emitCausal(causalCfg, out.Recs, 0)
	if queryCfg.on() {
		queryCfg.emit(out.Recs, 0)
	}
	if out.Trips > 0 {
		fmt.Fprintf(os.Stderr, "flextm: watchdog tripped %d times; the ladder should have resolved the duel\n", out.Trips)
		os.Exit(1)
	}
	if gov.Level() != 0 {
		fmt.Fprintf(os.Stderr, "flextm: governor stuck at level %d; mitigations did not unwind\n", gov.Level())
		os.Exit(1)
	}
}

// printGovernor renders the run's closed-loop summary and transition log.
func printGovernor(gov *governor.Governor) {
	fmt.Printf("governor    level %d/%d, %d transitions, last state %s\n",
		gov.Level(), len(gov.Config().Ladder), len(gov.Transitions()), gov.LastState())
	if log := gov.TransitionLog(); log != "" {
		fmt.Println("-- governor transitions --")
		fmt.Print(log)
	}
}

// writeGovLog dumps the transition log for CI artifacts and bit-compares.
func writeGovLog(path string, gov *governor.Governor) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte(gov.TransitionLog()), 0o644)
}

// runStress sweeps the oracle-checked schedule explorer. In normal runs any
// failure exits non-zero after shrinking it to a minimal replayable
// schedule; with broken=true the logic inverts — the protocol is
// deliberately damaged, and NOT detecting a violation is the failure.
func runStress(n int, seed uint64, system, faults string, faultSeed uint64, broken bool, parallel int) {
	if parallel < 0 {
		parallel = 1
	}
	base := stress.DefaultConfig(seed)
	if harness.SystemName(system) == harness.FlexTMEager {
		base.Mode = core.Eager
	}
	base.BreakWR = broken
	base.TinyCache = true
	if faults != "" {
		fc, err := fault.ParseSpec(faults, faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(2)
		}
		base.Faults = fc
	}
	fmt.Printf("stress      %d seeds from %d, mode %s, broken=%v\n", n, seed, base.Mode, broken)
	res := stress.ExploreParallel(base, n, parallel)
	fmt.Printf("explored    %d runs, %d failures\n", res.Runs, len(res.Failures))
	if len(res.Failures) == 0 {
		if broken {
			fmt.Fprintln(os.Stderr, "flextm: broken protocol variant escaped the oracle")
			os.Exit(1)
		}
		return
	}
	shrunk := stress.Shrink(res.Failures[0].Config, 64)
	fmt.Printf("schedule    %s (shrunk from %s)\n", shrunk.Schedule, res.Failures[0].Schedule)
	if shrunk.RunErr != "" {
		fmt.Println("run error  ", shrunk.RunErr)
	}
	if shrunk.Report != nil {
		shrunk.Report.Print(os.Stdout)
	}
	if !broken {
		os.Exit(1)
	}
}

// replaySchedule re-runs one stress schedule string and prints its verdict.
func replaySchedule(s string) {
	cfg, err := stress.ParseSchedule(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(2)
	}
	out := stress.Run(cfg)
	fmt.Printf("schedule    %s\ncommits     %d\naborts      %d\nescalations %d\ninjected    %d\ncycles      %d\n",
		out.Schedule, out.Commits, out.Aborts, out.Escalations, out.Injected, out.Cycles)
	if out.RunErr != "" {
		fmt.Println("run error  ", out.RunErr)
	}
	if out.Report != nil {
		out.Report.Print(os.Stdout)
	}
	if out.Failed() {
		os.Exit(1)
	}
}

// writeDOT dumps the conflict graph in Graphviz DOT form.
func writeDOT(path string, rep *conflictgraph.Report) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteDOT(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeReportJSON dumps the full structured report.
func writeReportJSON(path string, rep *conflictgraph.Report) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// queryList collects repeated -query flags.
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(s string) error {
	*q = append(*q, s)
	return nil
}

// queryConfig carries the parsed -query set to whichever run path ends up
// owning the flight records.
type queryConfig struct {
	exprs   []string
	parsed  []*flightql.Query
	outPath string
}

// newQueryConfig parses every -query expression up front.
func newQueryConfig(exprs []string, outPath string) (queryConfig, error) {
	if outPath != "" && len(exprs) == 0 {
		return queryConfig{}, fmt.Errorf("-query-out needs at least one -query")
	}
	cfg := queryConfig{exprs: exprs, outPath: outPath}
	for _, src := range exprs {
		q, err := flightql.Parse(src)
		if err != nil {
			return queryConfig{}, err
		}
		cfg.parsed = append(cfg.parsed, q)
	}
	return cfg, nil
}

func (c queryConfig) on() bool { return len(c.parsed) > 0 }

// emit runs the query set over the run's flight records, prints each result
// as a table, and — with -query-out — writes all results as one canonical
// JSON document (byte-stable per seed; the CI golden file). cores may be 0:
// replay then sizes the machine from the records.
func (c queryConfig) emit(recs []flight.Rec, cores int) {
	env := flightql.Env{Cores: cores}
	results := make([]flightql.QueryResult, 0, len(c.parsed))
	for i, q := range c.parsed {
		res, err := q.RunEnv(recs, env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flextm: query %q: %v\n", c.exprs[i], err)
			os.Exit(1)
		}
		fmt.Printf("-- query: %s --\n", c.exprs[i])
		res.WriteTable(os.Stdout)
		results = append(results, flightql.QueryResult{Query: c.exprs[i], Result: res})
	}
	if c.outPath == "" {
		return
	}
	out, err := os.Create(c.outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	if err := flightql.WriteResultsJSON(out, results); err != nil {
		out.Close()
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	if err := out.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "flextm:", err)
		os.Exit(1)
	}
	fmt.Printf("queries     %d results -> %s\n", len(results), c.outPath)
}

// causalArtifacts carries the -causal flag family to whichever run path
// ends up owning the flight records.
type causalArtifacts struct {
	on       bool
	jsonPath string
	dotPath  string
}

// emitCausal reconstructs the attempt DAG from the run's flight records,
// prints the critical-path report, and writes any requested artifacts.
// cores may be 0: Analyze then sizes the machine from the records.
func emitCausal(cfg causalArtifacts, recs []flight.Rec, cores int) {
	if !cfg.on {
		return
	}
	fmt.Println("-- causal critical path --")
	rep := causal.Analyze(recs, causal.Options{Cores: cores})
	if rep == nil {
		fmt.Println("(no flight records)")
		return
	}
	rep.Print(os.Stdout)
	if cfg.dotPath != "" {
		if err := writeCausalDOT(cfg.dotPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(1)
		}
		fmt.Printf("causal      graph -> %s\n", cfg.dotPath)
	}
	if cfg.jsonPath != "" {
		if err := writeCausalJSON(cfg.jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "flextm:", err)
			os.Exit(1)
		}
		fmt.Printf("causal      report -> %s\n", cfg.jsonPath)
	}
}

// writeCausalDOT dumps the attempt DAG with the critical path highlighted.
func writeCausalDOT(path string, rep *causal.Report) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	rep.WriteDOT(out)
	return out.Close()
}

// writeCausalJSON dumps the causal report in its canonical (byte-stable
// per seed) JSON form.
func writeCausalJSON(path string, rep *causal.Report) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeChromeTrace dumps the recorded timeline in Chrome trace_event JSON.
func writeChromeTrace(path string, rec *trace.Recorder) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(out, rec.Events()); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// faultClassList enumerates the injectable class names for -faults usage.
func faultClassList() string {
	s := ""
	for i, cl := range fault.Classes() {
		if i > 0 {
			s += ", "
		}
		s += cl.String()
	}
	return s
}

// rollTotal sums the per-class roll counts of a fault report.
func rollTotal(fr fault.Report) uint64 {
	var n uint64
	for _, v := range fr.Rolls {
		n += v
	}
	return n
}
