// Command omlint validates an OpenMetrics text exposition against the
// grammar checker in internal/observatory: metric/label name charsets,
// family typing and sample-suffix legality, label escaping, histogram
// bucket monotonicity, and the terminal # EOF. CI pipes a live scrape of
// `flextm -http .../metrics` through it.
//
//	curl -s http://127.0.0.1:8080/metrics | omlint
//	omlint scrape.txt
package main

import (
	"fmt"
	"io"
	"os"

	"flextm/internal/observatory"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "omlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	exp, err := observatory.ParseExposition(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	samples := 0
	for _, fam := range exp.Families {
		samples += len(fam.Samples)
	}
	fmt.Printf("omlint: %s: ok (%d families, %d samples)\n", name, len(exp.Families), samples)
}
