package flextm

// One benchmark per table and figure of the paper's evaluation. Each
// iteration runs a complete (reduced-size) experiment on the simulated
// machine and reports the paper's metric via b.ReportMetric:
//
//	BenchmarkFigure4    normalized throughput per workload/system/threads
//	BenchmarkFigure4Table   median/max conflict degrees at 8 and 16 threads
//	BenchmarkFigure5    eager-vs-lazy normalized throughput
//	BenchmarkFigure5MP  multiprogramming with Prime (Fig 5e,f)
//	BenchmarkTable2     area estimates
//	BenchmarkTable4     FlexWatcher vs Discover slowdowns
//	BenchmarkOverflow   Section 7.3 overflow ablation
//
// cmd/paperbench runs the full-size sweeps and prints the paper-style
// tables; these benches keep the experiments wired into `go test -bench`.

import (
	"fmt"
	"testing"

	"flextm/internal/area"
	"flextm/internal/flexwatcher"
	"flextm/internal/harness"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

const benchOps = 120

// benchSweep is the benchmark-scale variant of the canonical test sweep:
// same machine, more threads and ops.
func benchSweep() harness.SweepConfig {
	sc := harness.QuickSweep()
	sc.Threads = []int{1, 8, 16}
	sc.Ops = benchOps
	return sc
}

func BenchmarkFigure4(b *testing.B) {
	for _, wf := range workloads.All() {
		systems := []harness.SystemName{harness.CGL, harness.FlexTMEager, harness.RTMF, harness.RSTM}
		if wf.Name == "Vacation-Low" || wf.Name == "Vacation-High" {
			systems = []harness.SystemName{harness.CGL, harness.FlexTMEager, harness.TL2}
		}
		for _, sys := range systems {
			for _, th := range []int{1, 8, 16} {
				wf, sys, th := wf, sys, th
				b.Run(fmt.Sprintf("%s/%s/%dT", wf.Name, sys, th), func(b *testing.B) {
					base, err := harness.Baseline(wf, tmesi.DefaultConfig(), benchOps)
					if err != nil {
						b.Fatal(err)
					}
					var norm float64
					for i := 0; i < b.N; i++ {
						res, err := harness.Run(harness.RunConfig{
							System: sys, Workload: wf, Threads: th,
							OpsPerThread: benchOps, Machine: tmesi.DefaultConfig(),
							Verify: true,
						})
						if err != nil {
							b.Fatal(err)
						}
						norm = res.Throughput / base
					}
					b.ReportMetric(norm, "normTput")
				})
			}
		}
	}
}

func BenchmarkFigure4Table(b *testing.B) {
	for _, name := range []string{"HashTable", "RBTree", "LFUCache", "RandomGraph", "Vacation-Low", "Vacation-High", "Delaunay"} {
		for _, th := range []int{8, 16} {
			name, th := name, th
			b.Run(fmt.Sprintf("%s/%dT", name, th), func(b *testing.B) {
				wf, _ := workloads.ByName(name)
				var md, mx int
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(harness.RunConfig{
						System: harness.FlexTMEager, Workload: wf, Threads: th,
						OpsPerThread: benchOps, Machine: tmesi.DefaultConfig(), Verify: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					md, mx = res.MedianConflicts, res.MaxConflicts
				}
				b.ReportMetric(float64(md), "medianConflicts")
				b.ReportMetric(float64(mx), "maxConflicts")
			})
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for _, name := range []string{"RBTree", "Vacation-High", "LFUCache", "RandomGraph"} {
		for _, sys := range []harness.SystemName{harness.FlexTMEager, harness.FlexTMLazy} {
			name, sys := name, sys
			b.Run(fmt.Sprintf("%s/%s/16T", name, sys), func(b *testing.B) {
				wf, _ := workloads.ByName(name)
				base, err := harness.Run(harness.RunConfig{
					System: harness.FlexTMEager, Workload: wf, Threads: 1,
					OpsPerThread: benchOps, Machine: tmesi.DefaultConfig(), Verify: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				var norm float64
				for i := 0; i < b.N; i++ {
					res, err := harness.Run(harness.RunConfig{
						System: sys, Workload: wf, Threads: 16,
						OpsPerThread: benchOps, Machine: tmesi.DefaultConfig(), Verify: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					norm = res.Throughput / base.Throughput
				}
				b.ReportMetric(norm, "normTput")
			})
		}
	}
}

func BenchmarkFigure5MP(b *testing.B) {
	for _, name := range []string{"RandomGraph", "LFUCache"} {
		name := name
		b.Run("Prime+"+name, func(b *testing.B) {
			wf, _ := workloads.ByName(name)
			sc := benchSweep()
			sc.Ops = 80
			var eagerPrime, lazyPrime float64
			for i := 0; i < b.N; i++ {
				pts, err := harness.Multiprogram(sc, wf, []int{8})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					if p.Mode == harness.FlexTMEager {
						eagerPrime = p.PrimeNorm
					} else {
						lazyPrime = p.PrimeNorm
					}
				}
			}
			b.ReportMetric(eagerPrime, "primeNormEager")
			b.ReportMetric(lazyPrime, "primeNormLazy")
		})
	}
}

// BenchmarkSweepSerial and BenchmarkSweepParallel time the same
// Figure-5-shaped grid on one worker and on every CPU. The parallel run
// produces byte-identical plots (pinned by internal/sweepexec's identity
// tests); the measured speedup is recorded in BENCH_baseline.json's
// "sweepSpeedup" note whenever the baseline is regenerated.
func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, -1) }

func benchmarkSweep(b *testing.B, parallel int) {
	sc := benchSweep()
	sc.Parallel = parallel
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure5(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	var est area.Estimate
	for i := 0; i < b.N; i++ {
		for _, p := range area.All() {
			est = area.ForProcessor(p)
		}
	}
	b.ReportMetric(est.CorePct, "niagara2CorePct")
}

func BenchmarkTable4(b *testing.B) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	var rows []flexwatcher.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = flexwatcher.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.FlexWatcherX, r.Program+"_fxw_x")
	}
}

func BenchmarkOverflow(b *testing.B) {
	// The overflow ablation needs the full calibrated scale or its few
	// hundred overflow events drown in scheduling noise.
	sc := benchSweep()
	sc.Ops = 300
	var res []harness.OverflowResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.OverflowAblation(sc, []string{"RandomGraph"}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res) > 0 {
		b.ReportMetric((res[0].Slowdown-1)*100, "slowdownPct")
		b.ReportMetric(float64(res[0].Overflows), "overflows")
	}
}

func BenchmarkSignatureAblation(b *testing.B) {
	sc := benchSweep()
	sc.Ops = 80
	var res []harness.SigResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.SignatureAblation(sc, "RBTree", 8, []int{256, 2048})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.AbortRate, fmt.Sprintf("abortsPerCommit_%db", r.Bits))
	}
}

func BenchmarkManagerAblation(b *testing.B) {
	sc := benchSweep()
	sc.Ops = 60
	var res []harness.ManagerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.ManagerAblation(sc, "RandomGraph", 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		if r.Mode == "Eager" {
			b.ReportMetric(r.Throughput, r.Manager+"_tput")
		}
	}
}
