package area

import (
	"math"
	"strings"
	"testing"
)

// within checks got is within frac of want.
func within(got, want, frac float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= frac
}

func TestMeromMatchesPaper(t *testing.T) {
	e := ForProcessor(Merom())
	if !within(e.SignatureMM2, 0.033, 0.05) {
		t.Errorf("signature = %.4f mm2, paper 0.033", e.SignatureMM2)
	}
	if e.CSTRegisters != 3 {
		t.Errorf("CSTs = %d, paper 3", e.CSTRegisters)
	}
	if !within(e.OTCtrlMM2, 0.16, 0.1) {
		t.Errorf("OT ctrl = %.3f mm2, paper 0.16", e.OTCtrlMM2)
	}
	if e.StateBits != 2 {
		t.Errorf("state bits = %d, paper 2 (T,A)", e.StateBits)
	}
	if !within(e.CorePct, 0.6, 0.15) {
		t.Errorf("core increase = %.2f%%, paper 0.6%%", e.CorePct)
	}
	if !within(e.L1Pct, 0.35, 0.2) {
		t.Errorf("L1 increase = %.2f%%, paper 0.35%%", e.L1Pct)
	}
}

func TestPower6MatchesPaper(t *testing.T) {
	e := ForProcessor(Power6())
	if !within(e.SignatureMM2, 0.066, 0.05) {
		t.Errorf("signature = %.4f mm2, paper 0.066", e.SignatureMM2)
	}
	if e.CSTRegisters != 6 {
		t.Errorf("CSTs = %d, paper 6", e.CSTRegisters)
	}
	if !within(e.OTCtrlMM2, 0.24, 0.35) {
		t.Errorf("OT ctrl = %.3f mm2, paper 0.24", e.OTCtrlMM2)
	}
	if e.StateBits != 3 {
		t.Errorf("state bits = %d, paper 3 (T,A,ID)", e.StateBits)
	}
	if !within(e.CorePct, 0.59, 0.25) {
		t.Errorf("core increase = %.2f%%, paper 0.59%%", e.CorePct)
	}
	if !within(e.L1Pct, 0.29, 0.2) {
		t.Errorf("L1 increase = %.2f%%, paper 0.29%%", e.L1Pct)
	}
}

func TestNiagara2MatchesPaper(t *testing.T) {
	e := ForProcessor(Niagara2())
	if !within(e.SignatureMM2, 0.26, 0.05) {
		t.Errorf("signature = %.4f mm2, paper 0.26", e.SignatureMM2)
	}
	if e.CSTRegisters != 24 {
		t.Errorf("CSTs = %d, paper 24", e.CSTRegisters)
	}
	if !within(e.OTCtrlMM2, 0.035, 0.2) {
		t.Errorf("OT ctrl = %.3f mm2, paper 0.035", e.OTCtrlMM2)
	}
	if e.StateBits != 5 {
		t.Errorf("state bits = %d, paper 5 (T,A,3xID)", e.StateBits)
	}
	if !within(e.CorePct, 2.6, 0.25) {
		t.Errorf("core increase = %.2f%%, paper 2.6%%", e.CorePct)
	}
	// The paper reports 3.9%; our formula includes tag overhead, so allow
	// a wider band while requiring "a few percent".
	if e.L1Pct < 2 || e.L1Pct > 5 {
		t.Errorf("L1 increase = %.2f%%, paper 3.9%%", e.L1Pct)
	}
}

func TestOverheadsSmallOnOOOBigOnSMT(t *testing.T) {
	m, n := ForProcessor(Merom()), ForProcessor(Niagara2())
	if m.CorePct >= 1 {
		t.Errorf("Merom overhead %.2f%% should be well under 1%%", m.CorePct)
	}
	if n.CorePct <= m.CorePct {
		t.Error("Niagara-2's 8-way SMT should cost relatively more than Merom")
	}
}

func TestTableRenders(t *testing.T) {
	tab := Table()
	for _, want := range []string{"Merom", "Power6", "Niagara-2", "Signature", "OT controller"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}
