// Package area reproduces the complexity analysis of Section 6 (Table 2):
// analytical 65 nm area estimates of FlexTM's per-core additions —
// read/write signatures, conflict summary tables, the overflow-table
// controller, and the extra cache state bits — for three contemporary
// processors (Merom, Power6, Niagara-2).
//
// The paper derives processor component sizes from published die photos and
// FlexTM component sizes from CACTI 6. Here the published sizes are inputs
// (as in the paper) and the CACTI estimates are replaced by a calibrated
// SRAM-array model: a 2048-bit 4-banked dual-ported signature costs
// SigPairArea per hardware context, and the OT controller is dominated by
// its line-sized writeback/miss buffers at OTByteArea per byte.
package area

import "fmt"

// Model constants, calibrated at 65 nm to CACTI 6's output for the paper's
// structures (a 2x2048-bit banked signature = 0.033 mm^2; a 16-entry
// line-width buffer pair = 0.16 mm^2 on a 64 B-line machine).
const (
	// SigPairBitArea is mm^2 per signature bit (Rsig+Wsig pair, banked,
	// separate read/write ports).
	SigPairBitArea = 0.033 / 4096
	// OTByteArea is mm^2 per buffer byte of the overflow-table controller
	// (8 writeback + 8 miss entries plus MSHR/FSM overhead).
	OTByteArea = 0.16 / 1024
	// TagBits approximates the L1 tag+state overhead per line used when
	// converting extra state bits into an L1 area percentage.
	TagBits = 40
)

// Processor describes the published parameters of a target core
// (Table 2's "Actual Die" section).
type Processor struct {
	Name      string
	SMT       int // hardware contexts per core
	DieMM2    float64
	CoreMM2   float64
	L1DMM2    float64
	LineBytes int
	L2MM2     float64
}

// Merom, Power6, and Niagara2 return the paper's three case studies.
func Merom() Processor {
	return Processor{Name: "Merom", SMT: 1, DieMM2: 143, CoreMM2: 31.5, L1DMM2: 1.8, LineBytes: 64, L2MM2: 49.6}
}

// Power6 returns the Power6 parameters from Table 2.
func Power6() Processor {
	return Processor{Name: "Power6", SMT: 2, DieMM2: 340, CoreMM2: 53, L1DMM2: 2.6, LineBytes: 128, L2MM2: 126}
}

// Niagara2 returns the Niagara-2 parameters from Table 2.
func Niagara2() Processor {
	return Processor{Name: "Niagara-2", SMT: 8, DieMM2: 342, CoreMM2: 11.7, L1DMM2: 0.4, LineBytes: 16, L2MM2: 92}
}

// All returns the three processors in the paper's column order.
func All() []Processor { return []Processor{Merom(), Power6(), Niagara2()} }

// Estimate is the FlexTM add-on budget for one processor (Table 2's
// "CACTI Prediction" section).
type Estimate struct {
	Processor Processor

	SignatureMM2 float64 // Rsig+Wsig per context, all contexts
	CSTRegisters int     // full-map registers (3 per context)
	OTCtrlMM2    float64
	// StateBits is the per-line state overhead: T and A bits, plus owner
	// ID bits for SMT cores (log2 contexts).
	StateBits int

	CorePct float64 // % core area increase
	L1Pct   float64 // % L1 D-cache area increase
}

// SignatureBits is the evaluated signature width (Section 7.1).
const SignatureBits = 2048

// idBits returns the owner-ID bits required to tag a TMI line's hardware
// context.
func idBits(smt int) int {
	b := 0
	for 1<<uint(b) < smt {
		b++
	}
	return b
}

// ForProcessor computes the FlexTM add-on estimate.
func ForProcessor(p Processor) Estimate {
	e := Estimate{Processor: p}
	e.SignatureMM2 = float64(p.SMT) * 2 * SignatureBits * SigPairBitArea
	e.CSTRegisters = 3 * p.SMT
	// Buffer entries are sized by the L1 line: 8 writebacks + 8 misses.
	e.OTCtrlMM2 = float64(16*p.LineBytes) * OTByteArea
	e.StateBits = 2 + idBits(p.SMT) // T + A (+ ID on SMT)

	addOn := e.SignatureMM2 + e.OTCtrlMM2
	e.CorePct = addOn / p.CoreMM2 * 100
	lineBits := float64(p.LineBytes*8 + TagBits)
	e.L1Pct = float64(e.StateBits) / lineBits * 100
	return e
}

// Table renders the Table 2 reproduction as text.
func Table() string {
	s := fmt.Sprintf("%-22s", "Processor")
	ests := make([]Estimate, 0, 3)
	for _, p := range All() {
		ests = append(ests, ForProcessor(p))
		s += fmt.Sprintf("%12s", p.Name)
	}
	s += "\n"
	row := func(label string, f func(Estimate) string) {
		s += fmt.Sprintf("%-22s", label)
		for _, e := range ests {
			s += fmt.Sprintf("%12s", f(e))
		}
		s += "\n"
	}
	row("SMT (threads)", func(e Estimate) string { return fmt.Sprintf("%d", e.Processor.SMT) })
	row("Die (mm2)", func(e Estimate) string { return fmt.Sprintf("%.0f", e.Processor.DieMM2) })
	row("Core (mm2)", func(e Estimate) string { return fmt.Sprintf("%.1f", e.Processor.CoreMM2) })
	row("L1 D (mm2)", func(e Estimate) string { return fmt.Sprintf("%.1f", e.Processor.L1DMM2) })
	row("line size (bytes)", func(e Estimate) string { return fmt.Sprintf("%d", e.Processor.LineBytes) })
	row("Signature (mm2)", func(e Estimate) string { return fmt.Sprintf("%.3f", e.SignatureMM2) })
	row("CSTs (registers)", func(e Estimate) string { return fmt.Sprintf("%d", e.CSTRegisters) })
	row("OT controller (mm2)", func(e Estimate) string { return fmt.Sprintf("%.3f", e.OTCtrlMM2) })
	row("Extra state bits", func(e Estimate) string { return fmt.Sprintf("%d", e.StateBits) })
	row("% Core increase", func(e Estimate) string { return fmt.Sprintf("%.2f%%", e.CorePct) })
	row("% L1 D$ increase", func(e Estimate) string { return fmt.Sprintf("%.2f%%", e.L1Pct) })
	return s
}
