package cm

import (
	"testing"

	"flextm/internal/sim"
)

func TestPolkaAbortsLowerKarmaEnemyImmediately(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	dec, _ := p.OnConflict(Conflict{MyKarma: 10, EnemyKarma: 3, Attempt: 0}, r)
	if dec != AbortEnemy {
		t.Fatalf("decision = %v, want AbortEnemy against lower-karma enemy", dec)
	}
}

func TestPolkaWaitsForHigherKarmaEnemy(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	dec, wait := p.OnConflict(Conflict{MyKarma: 1, EnemyKarma: 5, Attempt: 0}, r)
	if dec != Wait {
		t.Fatalf("decision = %v, want Wait", dec)
	}
	if wait > p.Base {
		t.Fatalf("first backoff %d exceeds base window %d", wait, p.Base)
	}
}

func TestPolkaEventuallyAbortsEnemy(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	c := Conflict{MyKarma: 0, EnemyKarma: 1000}
	for a := 0; a <= p.MaxExp; a++ {
		c.Attempt = a
		if dec, _ := p.OnConflict(c, r); dec == AbortEnemy {
			return
		}
	}
	t.Fatal("Polka never aborted a stubborn enemy (livelock risk)")
}

func TestPolkaBackoffGrows(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(7)
	maxAt := func(attempt int) sim.Time {
		var m sim.Time
		for i := 0; i < 200; i++ {
			_, w := p.OnConflict(Conflict{MyKarma: 0, EnemyKarma: 100, Attempt: attempt}, r)
			if w > m {
				m = w
			}
		}
		return m
	}
	if maxAt(6) <= maxAt(0) {
		t.Fatal("backoff window does not grow with attempts")
	}
}

func TestTimidAlwaysSelf(t *testing.T) {
	r := sim.NewRand(1)
	dec, _ := Timid{}.OnConflict(Conflict{MyKarma: 100, EnemyKarma: 0}, r)
	if dec != AbortSelf {
		t.Fatalf("Timid decision = %v", dec)
	}
}

func TestAggressiveAlwaysEnemy(t *testing.T) {
	r := sim.NewRand(1)
	dec, _ := Aggressive{}.OnConflict(Conflict{MyKarma: 0, EnemyKarma: 100}, r)
	if dec != AbortEnemy {
		t.Fatalf("Aggressive decision = %v", dec)
	}
}

func TestKarmaAccumulatesViaAttempts(t *testing.T) {
	k := NewKarma()
	r := sim.NewRand(1)
	c := Conflict{MyKarma: 2, EnemyKarma: 5}
	c.Attempt = 0
	if dec, _ := k.OnConflict(c, r); dec != Wait {
		t.Fatal("Karma should wait while behind")
	}
	c.Attempt = 3
	if dec, _ := k.OnConflict(c, r); dec != AbortEnemy {
		t.Fatal("Karma should win after enough attempts")
	}
}

func TestRetryBackoffZeroOnFirstAbortForPolka(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	if w := p.RetryBackoff(0, r); w != 0 {
		t.Fatalf("backoff before any abort = %d", w)
	}
}

func TestManagerNames(t *testing.T) {
	for _, m := range []Manager{NewPolka(), Timid{}, Aggressive{}, NewKarma()} {
		if m.Name() == "" {
			t.Fatal("empty manager name")
		}
	}
}

func TestGreedyOlderWins(t *testing.T) {
	g := NewGreedy()
	r := sim.NewRand(1)
	if dec, _ := g.OnConflict(Conflict{MyStamp: 5, EnemyStamp: 9}, r); dec != AbortEnemy {
		t.Fatal("older requestor should abort younger enemy")
	}
	if dec, _ := g.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5}, r); dec != Wait {
		t.Fatal("younger requestor should wait for the elder")
	}
	if dec, _ := g.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5, Attempt: 99}, r); dec != AbortSelf {
		t.Fatal("younger requestor should eventually yield")
	}
	if dec, _ := g.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 0}, r); dec != AbortEnemy {
		t.Fatal("unknown enemy age: requestor wins")
	}
}

func TestTimestampPoliteness(t *testing.T) {
	ts := NewTimestamp()
	r := sim.NewRand(1)
	if dec, _ := ts.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5, Attempt: 3}, r); dec != Wait {
		t.Fatal("younger should wait behind elder")
	}
	if dec, _ := ts.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5, Attempt: 100}, r); dec != AbortSelf {
		t.Fatal("patience must be bounded")
	}
	if dec, _ := ts.OnConflict(Conflict{MyStamp: 5, EnemyStamp: 9}, r); dec != AbortEnemy {
		t.Fatal("older should abort younger")
	}
}

func TestRetryBackoffGrowsForAllManagers(t *testing.T) {
	r := sim.NewRand(5)
	for _, m := range []Manager{NewPolka(), Timid{}, Aggressive{}, NewKarma(), NewGreedy(), NewTimestamp()} {
		maxAt := func(aborts int) sim.Time {
			var mx sim.Time
			for i := 0; i < 200; i++ {
				if w := m.RetryBackoff(aborts, r); w > mx {
					mx = w
				}
			}
			return mx
		}
		if maxAt(6) <= maxAt(1)/2 {
			t.Errorf("%s: backoff window does not grow (1 abort max %d, 6 aborts max %d)",
				m.Name(), maxAt(1), maxAt(6))
		}
	}
}

func TestBackoffCapped(t *testing.T) {
	r := sim.NewRand(5)
	p := NewPolka()
	// Far past MaxExp the window must stop growing.
	a := sim.Time(0)
	for i := 0; i < 500; i++ {
		if w := p.RetryBackoff(100, r); w > a {
			a = w
		}
	}
	if a > p.Base<<uint(p.MaxExp) {
		t.Fatalf("backoff %d exceeds capped window %d", a, p.Base<<uint(p.MaxExp))
	}
}

// TestRetryBackoffNeverOverflows proves the satellite property: RetryBackoff
// cannot overflow sim.Time (or panic inside Intn) at abort counts >= 64, for
// the stock managers and for adversarially-parameterized ones. An overflowed
// shift would either panic (negative Intn bound) or return a wrapped-around
// "short" window that defeats backoff entirely.
func TestRetryBackoffNeverOverflows(t *testing.T) {
	r := sim.NewRand(13)
	const windowMax = sim.Time(1) << 62
	managers := []Manager{
		NewPolka(), Timid{}, Aggressive{}, NewKarma(), NewGreedy(), NewTimestamp(),
		// Adversarial parameters: giant bases and an absurd exponent cap.
		&Polka{Base: 1 << 40, MaxExp: 4096},
		&Polka{Base: 1 << 61, MaxExp: 64},
		&Polka{Base: 1<<63 + 5, MaxExp: 128},
		&Karma{Base: 1 << 60},
		&Greedy{Base: 1 << 45, MaxWait: 8},
		&Timestamp{Base: 1 << 45, Patience: 8},
	}
	for _, m := range managers {
		for _, aborts := range []int{64, 65, 100, 1000, 1 << 20, 1 << 30} {
			for i := 0; i < 32; i++ {
				w := m.RetryBackoff(aborts, r)
				if w > windowMax {
					t.Fatalf("%s: backoff %d at %d aborts exceeds 2^62 (overflow wrap)",
						m.Name(), w, aborts)
				}
			}
		}
	}
}

// TestBackoffShiftClampMonotone: beyond the shift cap the window must stop
// growing, not wrap; a 2^30-abort streak gets the same window as 64 aborts
// under a generous MaxExp.
func TestBackoffShiftClampMonotone(t *testing.T) {
	p := &Polka{Base: 2, MaxExp: 4096}
	maxAt := func(aborts int) sim.Time {
		r := sim.NewRand(21)
		var mx sim.Time
		for i := 0; i < 400; i++ {
			if w := p.RetryBackoff(aborts, r); w > mx {
				mx = w
			}
		}
		return mx
	}
	cap64, capHuge := maxAt(64), maxAt(1<<30)
	want := sim.Time(2) << backoffShiftCap
	if cap64 > want || capHuge > want {
		t.Fatalf("clamped windows exceed base<<cap: %d, %d > %d", cap64, capHuge, want)
	}
	// The capped window must still be large (no wrap-to-zero): with 400
	// samples of a uniform [0, 2^33] draw, the max is overwhelmingly > 2^31.
	if capHuge < 1<<31 {
		t.Fatalf("capped window suspiciously small: %d (wrap-around?)", capHuge)
	}
}

// TestRetryBackoffNeverZeroAfterAbort is the regression test for the
// zero-tick spin: with small bases the uniform draw lands on 0 often enough
// that Timid/Aggressive retry loops could re-attempt at zero delay and
// re-collide forever. Any post-abort backoff must be at least one tick.
func TestRetryBackoffNeverZeroAfterAbort(t *testing.T) {
	r := sim.NewRand(3)
	managers := []Manager{
		NewPolka(), Timid{}, Aggressive{}, NewKarma(), NewGreedy(), NewTimestamp(),
		&Polka{Base: 1, MaxExp: 1}, // worst case: window [0,1] is a coin flip
	}
	for _, m := range managers {
		for _, aborts := range []int{1, 2, 3, 8} {
			for i := 0; i < 400; i++ {
				if w := m.RetryBackoff(aborts, r); w == 0 {
					t.Fatalf("%s: zero-tick backoff at %d aborts (spin risk)", m.Name(), aborts)
				}
			}
		}
	}
	// The aborts==0 fast path (no abort yet, no delay owed) must survive the
	// clamp: Polka's first attempt starts immediately.
	p := NewPolka()
	if w := p.RetryBackoff(0, r); w != 0 {
		t.Fatalf("RetryBackoff(0) = %d, want 0", w)
	}
}

func TestByNameRoundTrips(t *testing.T) {
	for _, name := range []string{"Polka", "Timid", "Aggressive", "Karma", "Greedy", "Timestamp"} {
		m, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		if m.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, ok := ByName("NoSuchPolicy"); ok {
		t.Fatal("ByName accepted an unknown policy")
	}
}

func TestAllManagersHandleZeroKarma(t *testing.T) {
	r := sim.NewRand(9)
	for _, m := range []Manager{NewPolka(), Timid{}, Aggressive{}, NewKarma(), NewGreedy(), NewTimestamp()} {
		// Must return a valid decision without panicking on zero-value input.
		dec, wait := m.OnConflict(Conflict{}, r)
		if dec != Wait && dec != AbortEnemy && dec != AbortSelf {
			t.Errorf("%s: invalid decision %v", m.Name(), dec)
		}
		_ = wait
	}
}
