package cm

import (
	"testing"

	"flextm/internal/sim"
)

func TestPolkaAbortsLowerKarmaEnemyImmediately(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	dec, _ := p.OnConflict(Conflict{MyKarma: 10, EnemyKarma: 3, Attempt: 0}, r)
	if dec != AbortEnemy {
		t.Fatalf("decision = %v, want AbortEnemy against lower-karma enemy", dec)
	}
}

func TestPolkaWaitsForHigherKarmaEnemy(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	dec, wait := p.OnConflict(Conflict{MyKarma: 1, EnemyKarma: 5, Attempt: 0}, r)
	if dec != Wait {
		t.Fatalf("decision = %v, want Wait", dec)
	}
	if wait > p.Base {
		t.Fatalf("first backoff %d exceeds base window %d", wait, p.Base)
	}
}

func TestPolkaEventuallyAbortsEnemy(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	c := Conflict{MyKarma: 0, EnemyKarma: 1000}
	for a := 0; a <= p.MaxExp; a++ {
		c.Attempt = a
		if dec, _ := p.OnConflict(c, r); dec == AbortEnemy {
			return
		}
	}
	t.Fatal("Polka never aborted a stubborn enemy (livelock risk)")
}

func TestPolkaBackoffGrows(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(7)
	maxAt := func(attempt int) sim.Time {
		var m sim.Time
		for i := 0; i < 200; i++ {
			_, w := p.OnConflict(Conflict{MyKarma: 0, EnemyKarma: 100, Attempt: attempt}, r)
			if w > m {
				m = w
			}
		}
		return m
	}
	if maxAt(6) <= maxAt(0) {
		t.Fatal("backoff window does not grow with attempts")
	}
}

func TestTimidAlwaysSelf(t *testing.T) {
	r := sim.NewRand(1)
	dec, _ := Timid{}.OnConflict(Conflict{MyKarma: 100, EnemyKarma: 0}, r)
	if dec != AbortSelf {
		t.Fatalf("Timid decision = %v", dec)
	}
}

func TestAggressiveAlwaysEnemy(t *testing.T) {
	r := sim.NewRand(1)
	dec, _ := Aggressive{}.OnConflict(Conflict{MyKarma: 0, EnemyKarma: 100}, r)
	if dec != AbortEnemy {
		t.Fatalf("Aggressive decision = %v", dec)
	}
}

func TestKarmaAccumulatesViaAttempts(t *testing.T) {
	k := NewKarma()
	r := sim.NewRand(1)
	c := Conflict{MyKarma: 2, EnemyKarma: 5}
	c.Attempt = 0
	if dec, _ := k.OnConflict(c, r); dec != Wait {
		t.Fatal("Karma should wait while behind")
	}
	c.Attempt = 3
	if dec, _ := k.OnConflict(c, r); dec != AbortEnemy {
		t.Fatal("Karma should win after enough attempts")
	}
}

func TestRetryBackoffZeroOnFirstAbortForPolka(t *testing.T) {
	p := NewPolka()
	r := sim.NewRand(1)
	if w := p.RetryBackoff(0, r); w != 0 {
		t.Fatalf("backoff before any abort = %d", w)
	}
}

func TestManagerNames(t *testing.T) {
	for _, m := range []Manager{NewPolka(), Timid{}, Aggressive{}, NewKarma()} {
		if m.Name() == "" {
			t.Fatal("empty manager name")
		}
	}
}

func TestGreedyOlderWins(t *testing.T) {
	g := NewGreedy()
	r := sim.NewRand(1)
	if dec, _ := g.OnConflict(Conflict{MyStamp: 5, EnemyStamp: 9}, r); dec != AbortEnemy {
		t.Fatal("older requestor should abort younger enemy")
	}
	if dec, _ := g.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5}, r); dec != Wait {
		t.Fatal("younger requestor should wait for the elder")
	}
	if dec, _ := g.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5, Attempt: 99}, r); dec != AbortSelf {
		t.Fatal("younger requestor should eventually yield")
	}
	if dec, _ := g.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 0}, r); dec != AbortEnemy {
		t.Fatal("unknown enemy age: requestor wins")
	}
}

func TestTimestampPoliteness(t *testing.T) {
	ts := NewTimestamp()
	r := sim.NewRand(1)
	if dec, _ := ts.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5, Attempt: 3}, r); dec != Wait {
		t.Fatal("younger should wait behind elder")
	}
	if dec, _ := ts.OnConflict(Conflict{MyStamp: 9, EnemyStamp: 5, Attempt: 100}, r); dec != AbortSelf {
		t.Fatal("patience must be bounded")
	}
	if dec, _ := ts.OnConflict(Conflict{MyStamp: 5, EnemyStamp: 9}, r); dec != AbortEnemy {
		t.Fatal("older should abort younger")
	}
}

func TestRetryBackoffGrowsForAllManagers(t *testing.T) {
	r := sim.NewRand(5)
	for _, m := range []Manager{NewPolka(), Timid{}, Aggressive{}, NewKarma(), NewGreedy(), NewTimestamp()} {
		maxAt := func(aborts int) sim.Time {
			var mx sim.Time
			for i := 0; i < 200; i++ {
				if w := m.RetryBackoff(aborts, r); w > mx {
					mx = w
				}
			}
			return mx
		}
		if maxAt(6) <= maxAt(1)/2 {
			t.Errorf("%s: backoff window does not grow (1 abort max %d, 6 aborts max %d)",
				m.Name(), maxAt(1), maxAt(6))
		}
	}
}

func TestBackoffCapped(t *testing.T) {
	r := sim.NewRand(5)
	p := NewPolka()
	// Far past MaxExp the window must stop growing.
	a := sim.Time(0)
	for i := 0; i < 500; i++ {
		if w := p.RetryBackoff(100, r); w > a {
			a = w
		}
	}
	if a > p.Base<<uint(p.MaxExp) {
		t.Fatalf("backoff %d exceeds capped window %d", a, p.Base<<uint(p.MaxExp))
	}
}

func TestAllManagersHandleZeroKarma(t *testing.T) {
	r := sim.NewRand(9)
	for _, m := range []Manager{NewPolka(), Timid{}, Aggressive{}, NewKarma(), NewGreedy(), NewTimestamp()} {
		// Must return a valid decision without panicking on zero-value input.
		dec, wait := m.OnConflict(Conflict{}, r)
		if dec != Wait && dec != AbortEnemy && dec != AbortSelf {
			t.Errorf("%s: invalid decision %v", m.Name(), dec)
		}
		_ = wait
	}
}
