// Package cm implements contention (conflict) managers. The paper uses the
// Polka manager of Scherer & Scott for every runtime in its evaluation;
// Timid, Aggressive, and Karma are provided for ablation studies.
//
// A manager is consulted in two situations:
//
//   - On an eager conflict (a Threatened or Exposed-Read response): it
//     decides whether the requestor waits, aborts the enemy, or aborts
//     itself, and how long to back off before re-examining the conflict.
//   - Between retries of an aborted transaction: it supplies a back-off
//     interval to break abort cycles.
package cm

import (
	"math/bits"

	"flextm/internal/sim"
)

// Decision is the manager's verdict on one conflict.
type Decision int

const (
	// Wait: back off and re-examine the enemy.
	Wait Decision = iota
	// AbortEnemy: abort the conflicting transaction.
	AbortEnemy
	// AbortSelf: abort the requesting transaction.
	AbortSelf
)

// Conflict describes one conflict event presented to a manager.
type Conflict struct {
	Me, Enemy           int // core ids
	MyKarma, EnemyKarma int // accesses performed by each transaction
	// MyStamp and EnemyStamp order transactions by age (smaller = older);
	// zero when the runtime does not track age.
	MyStamp, EnemyStamp uint64
	Attempt             int // 0-based count of Wait rounds already spent on this conflict
}

// Manager decides conflict outcomes.
type Manager interface {
	Name() string
	// OnConflict returns the decision and, for Wait, the back-off length.
	OnConflict(c Conflict, r *sim.Rand) (Decision, sim.Time)
	// RetryBackoff returns the delay before re-executing a transaction
	// that has aborted `aborts` times in a row.
	RetryBackoff(aborts int, r *sim.Rand) sim.Time
}

// backoffShiftCap bounds exponential window growth independently of the
// manager's MaxExp parameter: beyond ~2^32 cycles a backoff window is
// indistinguishable from a hang, and an adversarial (or buggy) MaxExp
// combined with a high abort count must never shift base into overflow.
const backoffShiftCap = 32

// backoff returns a randomized exponential delay: uniform in
// [0, base << min(n, max)]. The shift is additionally clamped so that
// base << shift can never overflow sim.Time (or the int handed to Intn),
// whatever base, max, and n the caller supplies.
func backoff(base sim.Time, n, max int, r *sim.Rand) sim.Time {
	const windowMax = sim.Time(1) << 62 // window+1 must fit a signed 64-bit int
	if base == 0 {
		base = 1
	}
	if base > windowMax {
		base = windowMax
	}
	if n < 0 {
		n = 0
	}
	if n > max {
		n = max
	}
	shift := uint(n)
	if shift > backoffShiftCap {
		shift = backoffShiftCap
	}
	if lim := 62 - bits.Len64(uint64(base)); lim < 0 {
		shift = 0
	} else if shift > uint(lim) {
		shift = uint(lim)
	}
	window := base << shift
	if window > windowMax {
		window = windowMax
	}
	d := sim.Time(r.Intn(int(window) + 1))
	if d == 0 {
		// A zero draw would let a retry loop spin at zero delay: the thread
		// re-attempts in the same virtual instant, and with a small base
		// (Timid/Aggressive use base 32, early attempts shift by 0-1) the
		// odds are high enough that dueling threads re-collide indefinitely.
		d = 1
	}
	return d
}

// ByName returns a fresh manager for the given policy name (as reported by
// Manager.Name). It is the factory the governor's ladder spec and CLI flags
// resolve through.
func ByName(name string) (Manager, bool) {
	switch name {
	case "Polka":
		return NewPolka(), true
	case "Timid":
		return Timid{}, true
	case "Aggressive":
		return Aggressive{}, true
	case "Karma":
		return NewKarma(), true
	case "Greedy":
		return NewGreedy(), true
	case "Timestamp":
		return NewTimestamp(), true
	}
	return nil, false
}

// Polka combines Karma's priority accumulation with randomized exponential
// back-off: a transaction that meets a higher-karma enemy backs off up to
// the karma difference times with exponentially growing intervals, then
// aborts the enemy anyway.
type Polka struct {
	// Base is the first back-off window (cycles).
	Base sim.Time
	// MaxExp caps the exponential growth.
	MaxExp int
}

// NewPolka returns a Polka manager with the customary parameters.
func NewPolka() *Polka { return &Polka{Base: 32, MaxExp: 10} }

// Name implements Manager.
func (p *Polka) Name() string { return "Polka" }

// OnConflict implements Manager.
func (p *Polka) OnConflict(c Conflict, r *sim.Rand) (Decision, sim.Time) {
	diff := c.EnemyKarma - c.MyKarma
	if c.Attempt >= diff || c.Attempt >= p.MaxExp {
		return AbortEnemy, 0
	}
	return Wait, backoff(p.Base, c.Attempt, p.MaxExp, r)
}

// RetryBackoff implements Manager.
func (p *Polka) RetryBackoff(aborts int, r *sim.Rand) sim.Time {
	if aborts == 0 {
		return 0
	}
	return backoff(p.Base, aborts, p.MaxExp, r)
}

// Timid always aborts itself: the simplest livelock-free-under-luck policy
// (the only one SigTM-style systems can express).
type Timid struct{}

// Name implements Manager.
func (Timid) Name() string { return "Timid" }

// OnConflict implements Manager.
func (Timid) OnConflict(Conflict, *sim.Rand) (Decision, sim.Time) { return AbortSelf, 0 }

// RetryBackoff implements Manager.
func (Timid) RetryBackoff(aborts int, r *sim.Rand) sim.Time {
	return backoff(32, aborts, 10, r)
}

// Aggressive always aborts the enemy immediately.
type Aggressive struct{}

// Name implements Manager.
func (Aggressive) Name() string { return "Aggressive" }

// OnConflict implements Manager.
func (Aggressive) OnConflict(Conflict, *sim.Rand) (Decision, sim.Time) { return AbortEnemy, 0 }

// RetryBackoff implements Manager.
func (Aggressive) RetryBackoff(aborts int, r *sim.Rand) sim.Time {
	return backoff(32, aborts, 10, r)
}

// Karma aborts the enemy only once its own karma exceeds the enemy's;
// otherwise it waits with linear back-off.
type Karma struct {
	Base sim.Time
}

// NewKarma returns a Karma manager.
func NewKarma() *Karma { return &Karma{Base: 64} }

// Name implements Manager.
func (k *Karma) Name() string { return "Karma" }

// OnConflict implements Manager.
func (k *Karma) OnConflict(c Conflict, r *sim.Rand) (Decision, sim.Time) {
	if c.MyKarma+c.Attempt >= c.EnemyKarma {
		return AbortEnemy, 0
	}
	return Wait, k.Base + sim.Time(r.Intn(int(k.Base)))
}

// RetryBackoff implements Manager.
func (k *Karma) RetryBackoff(aborts int, r *sim.Rand) sim.Time {
	return backoff(k.Base, aborts, 8, r)
}

// Greedy approximates the Greedy manager of Guerraoui et al.: the older
// transaction always wins. An older requestor aborts the enemy at once; a
// younger one waits, bounded, then aborts itself (preserving the elder).
type Greedy struct {
	Base    sim.Time
	MaxWait int
}

// NewGreedy returns a Greedy manager.
func NewGreedy() *Greedy { return &Greedy{Base: 48, MaxWait: 12} }

// Name implements Manager.
func (g *Greedy) Name() string { return "Greedy" }

// OnConflict implements Manager.
func (g *Greedy) OnConflict(c Conflict, r *sim.Rand) (Decision, sim.Time) {
	if c.EnemyStamp == 0 || c.MyStamp <= c.EnemyStamp {
		return AbortEnemy, 0 // we are older (or age is unknown): we win
	}
	if c.Attempt >= g.MaxWait {
		return AbortSelf, 0
	}
	return Wait, g.Base + sim.Time(r.Intn(int(g.Base)))
}

// RetryBackoff implements Manager.
func (g *Greedy) RetryBackoff(aborts int, r *sim.Rand) sim.Time {
	return backoff(g.Base, aborts, 8, r)
}

// Timestamp waits for older enemies and aborts younger ones, like Greedy,
// but keeps waiting indefinitely behind elders (LogTM-style politeness)
// with a livelock escape after a long patience window.
type Timestamp struct {
	Base     sim.Time
	Patience int
}

// NewTimestamp returns a Timestamp manager.
func NewTimestamp() *Timestamp { return &Timestamp{Base: 48, Patience: 30} }

// Name implements Manager.
func (t *Timestamp) Name() string { return "Timestamp" }

// OnConflict implements Manager.
func (t *Timestamp) OnConflict(c Conflict, r *sim.Rand) (Decision, sim.Time) {
	if c.EnemyStamp != 0 && c.MyStamp > c.EnemyStamp {
		// Enemy is older: defer, eventually yielding entirely.
		if c.Attempt >= t.Patience {
			return AbortSelf, 0
		}
		return Wait, t.Base + sim.Time(r.Intn(int(t.Base)))
	}
	return AbortEnemy, 0
}

// RetryBackoff implements Manager.
func (t *Timestamp) RetryBackoff(aborts int, r *sim.Rand) sim.Time {
	return backoff(t.Base, aborts, 8, r)
}
