package oracle

import (
	"fmt"
	"io"
	"sort"

	"flextm/internal/memory"
	"flextm/internal/sim"
)

// Options tunes the checker.
type Options struct {
	// MaxViolations bounds how many violations are materialized with full
	// witnesses (0 selects DefaultMaxViolations). Counting continues past
	// the bound.
	MaxViolations int
}

// DefaultMaxViolations is the default witness cap.
const DefaultMaxViolations = 8

// Violation kinds.
const (
	// VStaleRead: a committed transaction observed a version that had
	// already been overwritten by a committed writer before the read
	// executed — the lost-update anomaly the W-R CST machinery exists to
	// prevent.
	VStaleRead = "stale-read"
	// VFutureRead: a committed transaction observed a value before the
	// transaction that wrote it committed — a dirty read of speculative
	// data that PDI's TMI isolation should have made impossible.
	VFutureRead = "future-read"
	// VPhantomValue: a committed read observed a value no committed (or
	// initial) version of the address ever held — torn data or a dirty
	// read of a write that later aborted.
	VPhantomValue = "phantom-value"
	// VInternalRead: a transaction's read of its own pending write
	// returned the wrong value — broken speculative versioning.
	VInternalRead = "internal-read"
	// VCycle: the direct serialization graph contains a cycle — no serial
	// order of the committed transactions explains the observed values.
	VCycle = "dsr-cycle"
)

// Edge is one dependency in the direct serialization graph.
type Edge struct {
	From int `json:"from"` // txn IDs (commit order)
	To   int `json:"to"`
	// Kind is "WR" (To read From's write), "WW" (To overwrote From), or
	// "RW" (From read the version To overwrote: anti-dependency).
	Kind string      `json:"kind"`
	Addr memory.Addr `json:"addr"`
	// CST names the conflict-summary-table bits that should have made the
	// protocol observe (and arbitrate) this dependency.
	CST string `json:"cst"`
}

// WitnessTxn is one transaction of a violation witness, restricted to the
// operations on the addresses involved — a minimal history fragment.
type WitnessTxn struct {
	ID        int      `json:"id"`
	Core      int      `json:"core"`
	BeginSeq  uint64   `json:"beginSeq"`
	CommitSeq uint64   `json:"commitSeq"`
	CommitAt  sim.Time `json:"commitAt"`
	NT        bool     `json:"nt,omitempty"`
	Ops       []Op     `json:"ops"`
}

// Violation is one detected serializability failure with its witness.
type Violation struct {
	Kind    string       `json:"kind"`
	Summary string       `json:"summary"`
	Edges   []Edge       `json:"edges,omitempty"`
	Witness []WitnessTxn `json:"witness,omitempty"`
}

// Report is the checker's verdict over one history.
type Report struct {
	// Txns is the number of committed transactions analyzed (singleton
	// non-transactional accesses included).
	Txns int `json:"txns"`
	// Reads and Writes count the committed operations checked.
	Reads  int `json:"reads"`
	Writes int `json:"writes"`
	// Aborted counts discarded attempts seen in the log.
	Aborted int `json:"aborted"`
	// Truncated counts attempts still open at the end of the log (a live
	// run cut short, or a damaged log) — tolerated, not violations.
	Truncated int `json:"truncated,omitempty"`
	// Violations carries up to Options.MaxViolations witnesses;
	// TotalViolations keeps counting past the cap.
	Violations      []Violation `json:"violations,omitempty"`
	TotalViolations int         `json:"totalViolations"`
	// Malformed notes structural problems with the log itself (ops outside
	// a transaction, commits without begins, non-monotone stamps). The
	// checker reports them and carries on; it never panics.
	Malformed []string `json:"malformed,omitempty"`
}

// Ok reports whether the history is serializable as far as the checker can
// tell (malformed-log notes do not fail a report on their own).
func (r *Report) Ok() bool { return r.TotalViolations == 0 }

// Print writes a human-readable summary.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "oracle: %d committed txns (%d reads, %d writes), %d aborted attempts",
		r.Txns, r.Reads, r.Writes, r.Aborted)
	if r.Truncated > 0 {
		fmt.Fprintf(w, ", %d truncated", r.Truncated)
	}
	fmt.Fprintln(w)
	for _, m := range r.Malformed {
		fmt.Fprintf(w, "  malformed: %s\n", m)
	}
	if r.TotalViolations == 0 {
		fmt.Fprintln(w, "  serializable: no violations")
		return
	}
	fmt.Fprintf(w, "  VIOLATIONS: %d (showing %d)\n", r.TotalViolations, len(r.Violations))
	for i := range r.Violations {
		v := &r.Violations[i]
		fmt.Fprintf(w, "  [%s] %s\n", v.Kind, v.Summary)
		for _, e := range v.Edges {
			fmt.Fprintf(w, "    edge T%d -%s-> T%d (addr %d): %s\n", e.From, e.Kind, e.To, e.Addr, e.CST)
		}
		for _, t := range v.Witness {
			tag := ""
			if t.NT {
				tag = " nt"
			}
			fmt.Fprintf(w, "    T%d core=%d commitSeq=%d%s:\n", t.ID, t.Core, t.CommitSeq, tag)
			for _, op := range t.Ops {
				fmt.Fprintf(w, "      seq=%-6d %-8s addr=%d val=%d\n", op.Seq, op.Kind, op.Addr, op.Val)
			}
		}
	}
}

// txn is one committed transaction reconstructed from the log.
type txn struct {
	id        int
	core      int
	nt        bool
	beginSeq  uint64
	commitSeq uint64
	commitAt  sim.Time
	ops       []Op // reads and writes, in log order
}

// lastOwnWrite returns the transaction's most recent write to a strictly
// before sequence stamp s, if any.
func (t *txn) lastOwnWrite(a memory.Addr, s uint64) (uint64, bool) {
	var v uint64
	found := false
	for i := range t.ops {
		op := &t.ops[i]
		if op.Seq >= s {
			break
		}
		if (op.Kind == OpWrite || op.Kind == OpNTWrite) && op.Addr == a {
			v, found = op.Val, true
		}
	}
	return v, found
}

// finalWrites returns the last written value per address — the version the
// commit published.
func (t *txn) finalWrites() map[memory.Addr]uint64 {
	out := make(map[memory.Addr]uint64)
	for i := range t.ops {
		op := &t.ops[i]
		if op.Kind == OpWrite || op.Kind == OpNTWrite {
			out[op.Addr] = op.Val
		}
	}
	return out
}

// version is one committed value of an address.
type version struct {
	writer    int // txn id; -1 for the initial value
	val       uint64
	commitSeq uint64 // 0 for the initial value
}

// checker carries the state of one Check invocation.
type checker struct {
	opt      Options
	rep      *Report
	txns     []*txn
	chains   map[memory.Addr][]version
	initial  map[memory.Addr]uint64
	inferred map[memory.Addr]bool
	edges    map[[2]int][]Edge // adjacency with labels, deduped by (from,to,kind,addr)
	edgeSeen map[string]bool
	adj      map[int][]int
}

// Check analyzes a history and returns the verdict. It never panics on
// malformed input: structural problems are reported in Report.Malformed and
// the analysis continues with what can be salvaged.
func Check(h History, opt Options) *Report {
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = DefaultMaxViolations
	}
	c := &checker{
		opt:      opt,
		rep:      &Report{},
		chains:   make(map[memory.Addr][]version),
		initial:  make(map[memory.Addr]uint64),
		inferred: make(map[memory.Addr]bool),
		edges:    make(map[[2]int][]Edge),
		edgeSeen: make(map[string]bool),
		adj:      make(map[int][]int),
	}
	for a, v := range h.Initial {
		c.initial[a] = v
	}
	c.collect(h.Ops)
	c.buildChains()
	c.resolveReads()
	c.findCycles()
	return c.rep
}

// collect reconstructs committed transactions from the raw op stream. Log
// order is authoritative; the recorded Seq stamps are cross-checked and the
// ops re-stamped by position when they disagree, so a damaged log cannot
// break the ordering logic downstream.
func (c *checker) collect(ops []Op) {
	malformed := func(format string, args ...interface{}) {
		if len(c.rep.Malformed) < 32 {
			c.rep.Malformed = append(c.rep.Malformed, fmt.Sprintf(format, args...))
		}
	}
	var lastSeq uint64
	restamped := false
	for i := range ops {
		if ops[i].Seq <= lastSeq {
			restamped = true
		}
		lastSeq = ops[i].Seq
	}
	if restamped {
		malformed("non-monotone sequence stamps: re-stamped by log position")
		// Re-stamp a copy: Check is a pure function of the history, and
		// callers (schedule replay, the fuzzer's determinism cross-check)
		// rely on the input surviving untouched.
		fixed := make([]Op, len(ops))
		copy(fixed, ops)
		for i := range fixed {
			fixed[i].Seq = uint64(i) + 1
		}
		ops = fixed
	}

	open := make(map[int]*txn) // per-core attempt in flight
	var committed []*txn
	for i := range ops {
		op := ops[i]
		switch op.Kind {
		case OpBegin:
			if open[op.Core] != nil {
				malformed("core %d: begin at seq %d with an attempt already open (previous discarded)", op.Core, op.Seq)
				c.rep.Aborted++
			}
			open[op.Core] = &txn{core: op.Core, beginSeq: op.Seq}
		case OpRead, OpWrite:
			t := open[op.Core]
			if t == nil {
				malformed("core %d: %s at seq %d outside any transaction (skipped)", op.Core, op.Kind, op.Seq)
				continue
			}
			t.ops = append(t.ops, op)
		case OpCommit:
			t := open[op.Core]
			if t == nil {
				malformed("core %d: commit at seq %d without a begin (skipped)", op.Core, op.Seq)
				continue
			}
			t.commitSeq = op.Seq
			t.commitAt = op.At
			committed = append(committed, t)
			open[op.Core] = nil
		case OpAbort:
			if open[op.Core] == nil {
				malformed("core %d: abort at seq %d without a begin (skipped)", op.Core, op.Seq)
				continue
			}
			open[op.Core] = nil
			c.rep.Aborted++
		case OpNTRead, OpNTWrite:
			// A singleton transaction: strong isolation serializes the
			// access at its own instant, independent of any open attempt.
			committed = append(committed, &txn{
				core: op.Core, nt: true,
				beginSeq: op.Seq, commitSeq: op.Seq, commitAt: op.At,
				ops: []Op{op},
			})
		default:
			malformed("unknown op kind %d at seq %d (skipped)", op.Kind, op.Seq)
		}
	}
	for _, t := range open {
		if t != nil {
			c.rep.Truncated++
		}
	}
	sort.SliceStable(committed, func(i, j int) bool { return committed[i].commitSeq < committed[j].commitSeq })
	for i, t := range committed {
		t.id = i
	}
	c.txns = committed
	c.rep.Txns = len(committed)
	for _, t := range committed {
		for i := range t.ops {
			switch t.ops[i].Kind {
			case OpRead, OpNTRead:
				c.rep.Reads++
			case OpWrite, OpNTWrite:
				c.rep.Writes++
			}
		}
	}
}

// buildChains derives the per-address version order. Version order is
// commit order: CAS-Commit publishes a transaction's whole write set
// atomically (flash commit), and the engine's one-thread-at-a-time
// execution makes commit instants totally ordered, so the order is
// physically exact, not an approximation.
func (c *checker) buildChains() {
	for a, v := range c.initial {
		c.chains[a] = []version{{writer: -1, val: v}}
	}
	for _, t := range c.txns {
		for a, v := range t.finalWrites() {
			if _, ok := c.chains[a]; !ok {
				// No registered initial value: leave a placeholder the
				// inference step may fill in from an early read.
				c.chains[a] = []version{{writer: -1, val: 0}}
				c.inferred[a] = false // unknown until a pre-version read fixes it
			}
			c.chains[a] = append(c.chains[a], version{writer: t.id, val: v, commitSeq: t.commitSeq})
		}
	}
	// Infer unknown initial values from the earliest read of each address
	// that precedes its first committed write: nothing else can have
	// produced that value in a well-formed history.
	for _, t := range c.txns {
		for i := range t.ops {
			op := &t.ops[i]
			if op.Kind != OpRead && op.Kind != OpNTRead {
				continue
			}
			chain, ok := c.chains[op.Addr]
			if !ok {
				// Address only ever read: its initial value is whatever the
				// first read saw (conflicting later reads become phantom
				// violations via the normal path).
				c.chains[op.Addr] = []version{{writer: -1, val: op.Val}}
				c.initial[op.Addr] = op.Val
				c.inferred[op.Addr] = true
				continue
			}
			if _, registered := c.initial[op.Addr]; registered {
				continue
			}
			if done := c.inferred[op.Addr]; done {
				continue
			}
			firstCommit := uint64(0)
			if len(chain) > 1 {
				firstCommit = chain[1].commitSeq
			}
			if firstCommit == 0 || op.Seq < firstCommit {
				chain[0].val = op.Val
				c.initial[op.Addr] = op.Val
				c.inferred[op.Addr] = true
			}
		}
	}
	// W→W edges along each chain; adjacent committers suffice for cycle
	// detection (the rest are implied by transitivity). Addresses are
	// visited in sorted order: edge insertion order decides adjacency
	// order, and with it which witness cycle findCycles reports — ranging
	// over the map here would randomize the report between runs.
	addrs := make([]memory.Addr, 0, len(c.chains))
	for a := range c.chains {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		chain := c.chains[a]
		for i := 2; i < len(chain); i++ {
			from, to := chain[i-1].writer, chain[i].writer
			if from == to {
				continue
			}
			c.addEdge(Edge{From: from, To: to, Kind: "WW", Addr: a,
				CST: c.cstHint("WW", from, to)})
		}
	}
}

// currentAt returns the index in chain of the version visible at sequence
// stamp s (the latest version whose commit precedes s).
func currentAt(chain []version, s uint64) int {
	idx := 0
	for i := 1; i < len(chain); i++ {
		if chain[i].commitSeq < s {
			idx = i
		} else {
			break
		}
	}
	return idx
}

// resolveReads maps every committed read to the version it observed,
// accumulating W→R and R→W edges and reporting single-read anomalies.
func (c *checker) resolveReads() {
	for _, t := range c.txns {
		for i := range t.ops {
			op := &t.ops[i]
			if op.Kind != OpRead && op.Kind != OpNTRead {
				continue
			}
			c.rep.Reads += 0
			if own, ok := t.lastOwnWrite(op.Addr, op.Seq); ok {
				if own != op.Val {
					c.violate(Violation{
						Kind: VInternalRead,
						Summary: fmt.Sprintf("T%d (core %d) read %d at addr %d but its own pending write was %d: broken speculative versioning",
							t.id, t.core, op.Val, op.Addr, own),
						Witness: c.witness([]int{t.id}, []memory.Addr{op.Addr}),
					})
				}
				continue
			}
			chain := c.chains[op.Addr]
			if chain == nil {
				// Read of an address with neither writes nor an initial
				// value; chains inference created one for read-only
				// addresses, so this only happens for damaged logs.
				continue
			}
			expIdx := currentAt(chain, op.Seq)
			if chain[expIdx].val == op.Val {
				c.dependOn(t, op, chain, expIdx)
				continue
			}
			// Mismatch against the version physically current at the read:
			// find which version the value actually came from.
			stale, future := -1, -1
			for j := range chain {
				if chain[j].val != op.Val {
					continue
				}
				if j <= expIdx {
					stale = j // keep the latest stale candidate
				} else if future == -1 {
					future = j // keep the earliest future candidate
				}
			}
			switch {
			case stale >= 0:
				v := Violation{
					Kind: VStaleRead,
					Summary: fmt.Sprintf("T%d (core %d) read addr %d = %d (version of T%d) after T%d had already committed %d: lost update",
						t.id, t.core, op.Addr, op.Val, chain[stale].writer, chain[expIdx].writer, chain[expIdx].val),
				}
				c.dependOn(t, op, chain, stale)
				v.Edges = c.edgesTouching(t.id, op.Addr)
				v.Witness = c.witness(append(c.writersOf(chain, stale, expIdx), t.id), []memory.Addr{op.Addr})
				c.violate(v)
			case future >= 0:
				rel := "before its writer committed"
				if chain[future].commitSeq > t.commitSeq {
					rel = "from a writer that committed after the reader"
				}
				v := Violation{
					Kind: VFutureRead,
					Summary: fmt.Sprintf("T%d (core %d) read addr %d = %d %s (T%d): dirty read of speculative data",
						t.id, t.core, op.Addr, op.Val, rel, chain[future].writer),
				}
				c.dependOn(t, op, chain, future)
				v.Edges = c.edgesTouching(t.id, op.Addr)
				v.Witness = c.witness([]int{chain[future].writer, t.id}, []memory.Addr{op.Addr})
				c.violate(v)
			default:
				c.violate(Violation{
					Kind: VPhantomValue,
					Summary: fmt.Sprintf("T%d (core %d) read addr %d = %d, a value no committed or initial version ever held (expected %d from T%d)",
						t.id, t.core, op.Addr, op.Val, chain[expIdx].val, chain[expIdx].writer),
					Witness: c.witness([]int{t.id}, []memory.Addr{op.Addr}),
				})
			}
		}
	}
}

// dependOn records the W→R edge from the version's writer and the R→W
// anti-dependency toward the next version's writer.
func (c *checker) dependOn(t *txn, op *Op, chain []version, idx int) {
	if w := chain[idx].writer; w >= 0 && w != t.id {
		c.addEdge(Edge{From: w, To: t.id, Kind: "WR", Addr: op.Addr,
			CST: c.cstHint("WR", w, t.id)})
	}
	if idx+1 < len(chain) {
		if w := chain[idx+1].writer; w >= 0 && w != t.id {
			c.addEdge(Edge{From: t.id, To: w, Kind: "RW", Addr: op.Addr,
				CST: c.cstHint("RW", t.id, w)})
		}
	}
}

// writersOf lists the distinct writer txns of chain[lo..hi].
func (c *checker) writersOf(chain []version, lo, hi int) []int {
	var ids []int
	seen := map[int]bool{}
	for j := lo; j <= hi && j < len(chain); j++ {
		if w := chain[j].writer; w >= 0 && !seen[w] {
			seen[w] = true
			ids = append(ids, w)
		}
	}
	return ids
}

// cstHint names the CST bits that should have surfaced the dependency, in
// the paper's terms (Figure 1's CST exchange and Figure 3's commit rule).
func (c *checker) cstHint(kind string, from, to int) string {
	cf, ct := c.coreOf(from), c.coreOf(to)
	switch kind {
	case "WR":
		return fmt.Sprintf("writer core %d's W-R should name reader core %d; the writer's commit must abort or scrub the reader", cf, ct)
	case "RW":
		return fmt.Sprintf("reader core %d's R-W names writer core %d, whose W-R names the reader: the writer's CAS-Commit must abort the live reader (Figure 3, line 2)", cf, ct)
	case "WW":
		return fmt.Sprintf("cores %d and %d hold each other's W-W bits; the first CAS-Commit must abort the other speculative writer", cf, ct)
	}
	return ""
}

func (c *checker) coreOf(id int) int {
	if id >= 0 && id < len(c.txns) {
		return c.txns[id].core
	}
	return -1
}

// addEdge inserts a labeled, deduplicated DSR edge.
func (c *checker) addEdge(e Edge) {
	if e.From == e.To {
		return
	}
	key := fmt.Sprintf("%d>%d:%s:%d", e.From, e.To, e.Kind, e.Addr)
	if c.edgeSeen[key] {
		return
	}
	c.edgeSeen[key] = true
	k := [2]int{e.From, e.To}
	if len(c.edges[k]) == 0 {
		c.adj[e.From] = append(c.adj[e.From], e.To)
	}
	c.edges[k] = append(c.edges[k], e)
}

// edgesTouching returns the recorded edges incident to txn id on addr.
func (c *checker) edgesTouching(id int, a memory.Addr) []Edge {
	var out []Edge
	for _, es := range c.edges {
		for _, e := range es {
			if e.Addr == a && (e.From == id || e.To == id) {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// findCycles runs Tarjan's SCC over the DSR graph and reports one shortest
// witness cycle per non-trivial component.
func (c *checker) findCycles() {
	n := len(c.txns)
	if n == 0 {
		return
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	var sccs [][]int

	// Iterative Tarjan: violation-grade histories can chain thousands of
	// transactions, so recursion depth must not scale with history length.
	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(c.adj[v]) {
				w := c.adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					sccs = append(sccs, comp)
				} else if c.selfLoop(comp[0]) {
					sccs = append(sccs, comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}

	for _, comp := range sccs {
		cyc := c.shortestCycle(comp)
		if len(cyc) == 0 {
			continue
		}
		edges := make([]Edge, 0, len(cyc))
		addrs := map[memory.Addr]bool{}
		for i := range cyc {
			from, to := cyc[i], cyc[(i+1)%len(cyc)]
			es := c.edges[[2]int{from, to}]
			if len(es) == 0 {
				continue
			}
			edges = append(edges, es[0])
			addrs[es[0].Addr] = true
		}
		var as []memory.Addr
		for a := range addrs {
			as = append(as, a)
		}
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		c.violate(Violation{
			Kind: VCycle,
			Summary: fmt.Sprintf("direct-serialization-graph cycle over %d transactions (component of %d): no serial order explains the observed values",
				len(cyc), len(comp)),
			Edges:   edges,
			Witness: c.witness(cyc, as),
		})
	}
}

// selfLoop reports whether v has an edge to itself (impossible for deduped
// DSR edges, but kept for robustness against future edge sources).
func (c *checker) selfLoop(v int) bool {
	return len(c.edges[[2]int{v, v}]) > 0
}

// shortestCycle finds a minimal cycle inside one SCC via BFS from its
// smallest node, restricted to component members.
func (c *checker) shortestCycle(comp []int) []int {
	in := map[int]bool{}
	for _, v := range comp {
		in[v] = true
	}
	start := comp[0]
	for _, v := range comp {
		if v < start {
			start = v
		}
	}
	prev := map[int]int{start: -1}
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range c.adj[v] {
			if !in[w] {
				continue
			}
			if w == start {
				// Close the cycle: walk predecessors back to start.
				cyc := []int{v}
				for u := prev[v]; u != -1; u = prev[u] {
					cyc = append(cyc, u)
				}
				// Reverse into start-first order.
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				return cyc
			}
			if _, seen := prev[w]; !seen {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// witness materializes the minimal history fragment for the given txns,
// keeping only operations touching addrs (all ops when addrs is empty).
func (c *checker) witness(ids []int, addrs []memory.Addr) []WitnessTxn {
	keep := map[memory.Addr]bool{}
	for _, a := range addrs {
		keep[a] = true
	}
	seen := map[int]bool{}
	var out []WitnessTxn
	for _, id := range ids {
		if id < 0 || id >= len(c.txns) || seen[id] {
			continue
		}
		seen[id] = true
		t := c.txns[id]
		w := WitnessTxn{
			ID: t.id, Core: t.core, NT: t.nt,
			BeginSeq: t.beginSeq, CommitSeq: t.commitSeq, CommitAt: t.commitAt,
		}
		for i := range t.ops {
			if len(keep) == 0 || keep[t.ops[i].Addr] {
				w.Ops = append(w.Ops, t.ops[i])
			}
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// violate records a violation, materializing its witness only under the cap.
func (c *checker) violate(v Violation) {
	c.rep.TotalViolations++
	if len(c.rep.Violations) < c.opt.MaxViolations {
		c.rep.Violations = append(c.rep.Violations, v)
	}
}
