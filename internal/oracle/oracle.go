// Package oracle is a history-level serializability oracle for the FlexTM
// runtime. It has two halves:
//
//   - a Recorder, hooked into the runtime behind a nil=disabled interface
//     (mirroring internal/flight and internal/telemetry), that logs every
//     transactional operation of every attempt — reads with the value the
//     processor actually observed, writes with the value stored, and
//     begin/commit/abort boundaries — stamped with a global sequence number
//     that is exact because the sim engine resumes one thread at a time; and
//
//   - an offline checker (check.go) that reconstructs the direct
//     serialization graph of the committed history (W→R dependencies from
//     observed values, W→W from version order, R→W anti-dependencies) and
//     reports every cycle or single-read anomaly as a minimal witness
//     history: which transactions, which lines, and which CST bits should
//     have caught it.
//
// FlexTM's central claim is that distributed commit via CSTs — no commit
// token, no write-set broadcast — still yields serializable execution under
// both Eager and Lazy conflict resolution, with Bloom false positives, OT
// spills, and lost alerts in play. The oracle turns that claim into a
// machine-checkable property of every run: internal/stress drives randomized
// schedules through it, and the chaos campaign and LivelockProbe run with it
// enabled.
package oracle

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
)

// OpKind classifies one logged operation.
type OpKind uint8

// Operation kinds. NT variants are ordinary (non-transactional) accesses;
// the checker models each as a singleton committed transaction, which is
// exactly the strong-isolation contract (Section 3.5 of the paper).
const (
	// OpBegin opens a transaction attempt on Core.
	OpBegin OpKind = iota
	// OpRead is a transactional load: Val is the value the processor
	// observed.
	OpRead
	// OpWrite is a transactional store: Val is the new (speculative) value.
	OpWrite
	// OpCommit seals the attempt: its writes became globally visible at
	// this instant (CAS-Commit's flash commit).
	OpCommit
	// OpAbort discards the attempt: none of its writes ever became visible.
	OpAbort
	// OpNTRead is an ordinary load outside (or alongside) any transaction.
	OpNTRead
	// OpNTWrite is an ordinary store; strong isolation serializes it
	// against every transaction.
	OpNTWrite

	NumOpKinds
)

var opNames = [NumOpKinds]string{
	OpBegin:   "begin",
	OpRead:    "read",
	OpWrite:   "write",
	OpCommit:  "commit",
	OpAbort:   "abort",
	OpNTRead:  "nt-read",
	OpNTWrite: "nt-write",
}

// String returns the kind's stable kebab-case name.
func (k OpKind) String() string {
	if k < NumOpKinds {
		return opNames[k]
	}
	return "op(?)"
}

// Op is one logged operation. Seq is a globally unique, monotonically
// increasing stamp: the engine runs exactly one simulated thread at a time,
// so Seq totally orders the run's operations (virtual-time ties included).
type Op struct {
	Seq  uint64      `json:"seq"`
	At   sim.Time    `json:"at"`
	Core int         `json:"core"`
	Kind OpKind      `json:"kind"`
	Addr memory.Addr `json:"addr,omitempty"`
	Val  uint64      `json:"val,omitempty"`
}

// History is a complete operation log plus the initial memory values known
// to the producer. Aborted attempts are retained (the checker skips their
// effects but tolerates their presence), so a History is a faithful record
// of what the hardware did, not just of what survived.
type History struct {
	Ops []Op
	// Initial maps addresses to their pre-run values. Addresses absent here
	// are inferred by the checker from the earliest read that precedes any
	// committed write.
	Initial map[memory.Addr]uint64
}

// Recorder logs operations. It is owned by the single-threaded simulation
// and needs no locking. A nil *Recorder is valid and disabled: every method
// returns immediately, so instrumentation sites call unconditionally.
type Recorder struct {
	ops     []Op
	seq     uint64
	initial map[memory.Addr]uint64
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder {
	return &Recorder{initial: make(map[memory.Addr]uint64)}
}

// Enabled reports whether the recorder stores anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SetInitial registers the pre-run value of a word, sharpening the
// checker's version chains (unregistered addresses fall back to inference).
func (r *Recorder) SetInitial(a memory.Addr, v uint64) {
	if r == nil {
		return
	}
	r.initial[a] = v
}

func (r *Recorder) rec(core int, at sim.Time, k OpKind, a memory.Addr, v uint64) {
	if r == nil {
		return
	}
	r.seq++
	r.ops = append(r.ops, Op{Seq: r.seq, At: at, Core: core, Kind: k, Addr: a, Val: v})
}

// Begin logs the start of a transaction attempt on core.
func (r *Recorder) Begin(core int, at sim.Time) { r.rec(core, at, OpBegin, 0, 0) }

// Read logs a transactional load and the value it observed.
func (r *Recorder) Read(core int, at sim.Time, a memory.Addr, v uint64) {
	r.rec(core, at, OpRead, a, v)
}

// Write logs a transactional store of v.
func (r *Recorder) Write(core int, at sim.Time, a memory.Addr, v uint64) {
	r.rec(core, at, OpWrite, a, v)
}

// Commit logs a successful CAS-Commit: the attempt's writes became visible
// at this instant. Call it before the next synchronization point so the
// stamp falls inside the committing thread's engine turn.
func (r *Recorder) Commit(core int, at sim.Time) { r.rec(core, at, OpCommit, 0, 0) }

// Abort logs a discarded attempt.
func (r *Recorder) Abort(core int, at sim.Time) { r.rec(core, at, OpAbort, 0, 0) }

// NTRead logs an ordinary (non-transactional) load.
func (r *Recorder) NTRead(core int, at sim.Time, a memory.Addr, v uint64) {
	r.rec(core, at, OpNTRead, a, v)
}

// NTWrite logs an ordinary (non-transactional) store.
func (r *Recorder) NTWrite(core int, at sim.Time, a memory.Addr, v uint64) {
	r.rec(core, at, OpNTWrite, a, v)
}

// Len returns the number of logged operations (0 when nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.ops)
}

// History freezes the log. The returned History shares no state with the
// recorder, so the run may continue recording afterwards.
func (r *Recorder) History() History {
	if r == nil {
		return History{}
	}
	h := History{
		Ops:     append([]Op(nil), r.ops...),
		Initial: make(map[memory.Addr]uint64, len(r.initial)),
	}
	for a, v := range r.initial {
		h.Initial[a] = v
	}
	return h
}
