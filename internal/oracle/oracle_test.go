package oracle

import (
	"bytes"
	"encoding/json"
	"testing"

	"flextm/internal/memory"
)

// hb builds histories fluently for tests. Each call appends one op with an
// auto-incremented sequence stamp (At mirrors Seq; the checker only uses
// order).
type hb struct {
	h History
}

func newHB() *hb {
	return &hb{h: History{Initial: make(map[memory.Addr]uint64)}}
}

func (b *hb) init(a memory.Addr, v uint64) *hb {
	b.h.Initial[a] = v
	return b
}

func (b *hb) op(core int, k OpKind, a memory.Addr, v uint64) *hb {
	seq := uint64(len(b.h.Ops) + 1)
	b.h.Ops = append(b.h.Ops, Op{Seq: seq, At: seq, Core: core, Kind: k, Addr: a, Val: v})
	return b
}

func (b *hb) begin(core int) *hb                          { return b.op(core, OpBegin, 0, 0) }
func (b *hb) read(core int, a memory.Addr, v uint64) *hb  { return b.op(core, OpRead, a, v) }
func (b *hb) write(core int, a memory.Addr, v uint64) *hb { return b.op(core, OpWrite, a, v) }
func (b *hb) commit(core int) *hb                         { return b.op(core, OpCommit, 0, 0) }
func (b *hb) abort(core int) *hb                          { return b.op(core, OpAbort, 0, 0) }

func check(t *testing.T, h History) *Report {
	t.Helper()
	rep := Check(h, Options{})
	var buf bytes.Buffer
	rep.Print(&buf)
	t.Logf("report:\n%s", buf.String())
	return rep
}

func hasKind(rep *Report, kind string) bool {
	for _, v := range rep.Violations {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func TestCleanSerialHistory(t *testing.T) {
	// Two transactions incrementing the same counter back-to-back, plus a
	// reader: the textbook serializable history.
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 0).write(0, 100, 1).commit(0).
		begin(1).read(1, 100, 1).write(1, 100, 2).commit(1).
		begin(2).read(2, 100, 2).commit(2).
		h
	rep := check(t, h)
	if !rep.Ok() {
		t.Fatalf("clean history flagged: %+v", rep.Violations)
	}
	if rep.Txns != 3 || rep.Reads != 3 || rep.Writes != 2 {
		t.Fatalf("counts = %d txns %d reads %d writes", rep.Txns, rep.Reads, rep.Writes)
	}
}

func TestInterleavedSerializable(t *testing.T) {
	// Overlapping in real time but serializable: T0 and T1 touch disjoint
	// addresses; T2 reads both after.
	h := newHB().init(1, 10).init(2, 20).
		begin(0).begin(1).
		read(0, 1, 10).read(1, 2, 20).
		write(0, 1, 11).write(1, 2, 21).
		commit(0).commit(1).
		begin(2).read(2, 1, 11).read(2, 2, 21).commit(2).
		h
	if rep := check(t, h); !rep.Ok() {
		t.Fatalf("disjoint interleaving flagged: %+v", rep.Violations)
	}
}

func TestLostUpdateStaleRead(t *testing.T) {
	// T1 reads the pre-T0 value after T0 committed, then overwrites: the
	// lost-update anomaly. Must surface as a stale read and a DSR cycle
	// (T0 -WW-> T1 and T1 -RW-> T0).
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 0).write(0, 100, 1).commit(0).
		begin(1).read(1, 100, 0). // stale: 1 was committed before this read
		write(1, 100, 10).commit(1).
		h
	rep := check(t, h)
	if rep.Ok() {
		t.Fatal("lost update not detected")
	}
	if !hasKind(rep, VStaleRead) {
		t.Fatalf("no stale-read violation: %+v", rep.Violations)
	}
	if !hasKind(rep, VCycle) {
		t.Fatalf("no dsr-cycle violation: %+v", rep.Violations)
	}
	// The stale-read witness must include both transactions and the line.
	for _, v := range rep.Violations {
		if v.Kind != VStaleRead {
			continue
		}
		if len(v.Witness) < 2 {
			t.Fatalf("stale-read witness has %d txns, want >= 2", len(v.Witness))
		}
		if len(v.Edges) == 0 {
			t.Fatal("stale-read violation carries no edges")
		}
		for _, e := range v.Edges {
			if e.CST == "" {
				t.Fatalf("edge %+v missing CST hint", e)
			}
		}
	}
}

func TestWriteSkewCycle(t *testing.T) {
	// Classic write skew: T0 reads A,B writes A; T1 reads A,B writes B;
	// both read the initial snapshot, both commit. Each anti-depends on
	// the other: pure RW-RW cycle with no stale read (every read saw the
	// version current at its own instant? No — here reads precede both
	// commits, so each read IS current; only the cycle flags it).
	h := newHB().init(1, 5).init(2, 5).
		begin(0).begin(1).
		read(0, 1, 5).read(0, 2, 5).
		read(1, 1, 5).read(1, 2, 5).
		write(0, 1, 0).write(1, 2, 0).
		commit(0).commit(1).
		h
	rep := check(t, h)
	if !hasKind(rep, VCycle) {
		t.Fatalf("write skew not detected as dsr-cycle: %+v", rep.Violations)
	}
	// Write skew has no single-read anomaly: reads were current when made.
	if hasKind(rep, VStaleRead) || hasKind(rep, VFutureRead) || hasKind(rep, VPhantomValue) {
		t.Fatalf("write skew misdiagnosed with a read anomaly: %+v", rep.Violations)
	}
}

func TestDirtyReadFutureRead(t *testing.T) {
	// T1 observes T0's write before T0 commits (PDI leak): future read.
	h := newHB().init(100, 0).
		begin(0).write(0, 100, 7).
		begin(1).read(1, 100, 7). // T0 has not committed yet
		commit(1).
		commit(0).
		h
	rep := check(t, h)
	if !hasKind(rep, VFutureRead) {
		t.Fatalf("dirty read not detected: %+v", rep.Violations)
	}
}

func TestPhantomValue(t *testing.T) {
	// A committed read of a value nothing ever wrote.
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 42).commit(0).
		h
	rep := check(t, h)
	if !hasKind(rep, VPhantomValue) {
		t.Fatalf("phantom value not detected: %+v", rep.Violations)
	}
}

func TestInternalReadMismatch(t *testing.T) {
	// A transaction reads back its own pending write and sees the wrong
	// value: broken speculative versioning.
	h := newHB().init(100, 0).
		begin(0).write(0, 100, 3).read(0, 100, 9).commit(0).
		h
	rep := check(t, h)
	if !hasKind(rep, VInternalRead) {
		t.Fatalf("internal-read mismatch not detected: %+v", rep.Violations)
	}
}

func TestOwnWriteReadBack(t *testing.T) {
	// Reading back one's own pending write is fine and creates no edges.
	h := newHB().init(100, 0).
		begin(0).write(0, 100, 3).read(0, 100, 3).write(0, 100, 4).commit(0).
		h
	if rep := check(t, h); !rep.Ok() {
		t.Fatalf("own-write read-back flagged: %+v", rep.Violations)
	}
}

func TestAbortedAttemptDiscarded(t *testing.T) {
	// An aborted attempt's writes must not enter the version order, and
	// its reads must not be checked.
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 0).write(0, 100, 99).abort(0).
		begin(1).read(1, 100, 0).write(1, 100, 1).commit(1).
		h
	rep := check(t, h)
	if !rep.Ok() {
		t.Fatalf("aborted attempt polluted the analysis: %+v", rep.Violations)
	}
	if rep.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", rep.Aborted)
	}
}

func TestRetryAfterAbort(t *testing.T) {
	// The standard retry shape: attempt aborts (having observed a value
	// that then changed), retry observes the new value and commits.
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 0).
		begin(1).read(1, 100, 0).write(1, 100, 1).commit(1).
		abort(0).
		begin(0).read(0, 100, 1).write(0, 100, 2).commit(0).
		h
	if rep := check(t, h); !rep.Ok() {
		t.Fatalf("retry history flagged: %+v", rep.Violations)
	}
}

func TestInferredInitialValue(t *testing.T) {
	// No Initial map at all: the first pre-write read fixes version 0.
	h := newHB().
		begin(0).read(0, 100, 7).write(0, 100, 8).commit(0).
		begin(1).read(1, 100, 8).commit(1).
		h
	h.Initial = nil
	if rep := check(t, h); !rep.Ok() {
		t.Fatalf("inference failed: %+v", rep.Violations)
	}
}

func TestNonTxAccessesAreSingletons(t *testing.T) {
	// NT write then a transaction reading it, then an NT read of the
	// transaction's write: strong isolation as singleton txns.
	h := newHB().init(100, 0).
		op(0, OpNTWrite, 100, 5).
		begin(1).read(1, 100, 5).write(1, 100, 6).commit(1).
		op(0, OpNTRead, 100, 6).
		h
	rep := check(t, h)
	if !rep.Ok() {
		t.Fatalf("NT history flagged: %+v", rep.Violations)
	}
	if rep.Txns != 3 {
		t.Fatalf("Txns = %d, want 3 (two singletons + one txn)", rep.Txns)
	}
}

func TestTruncatedLogTolerated(t *testing.T) {
	// A log cut mid-transaction: the open attempt is counted as truncated,
	// not treated as committed or flagged.
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 0).write(0, 100, 1).commit(0).
		begin(1).read(1, 100, 1).write(1, 100, 2).
		h
	rep := check(t, h)
	if !rep.Ok() {
		t.Fatalf("truncated log flagged: %+v", rep.Violations)
	}
	if rep.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", rep.Truncated)
	}
}

func TestMalformedLogNeverPanics(t *testing.T) {
	// Structurally broken logs: orphan ops, double begins, commits without
	// begins, non-monotone stamps, unknown kinds. Must report, not panic.
	h := History{Ops: []Op{
		{Seq: 5, Core: 0, Kind: OpCommit},
		{Seq: 4, Core: 1, Kind: OpRead, Addr: 9, Val: 1},
		{Seq: 3, Core: 0, Kind: OpBegin},
		{Seq: 3, Core: 0, Kind: OpBegin},
		{Seq: 2, Core: 2, Kind: OpAbort},
		{Seq: 1, Core: 0, Kind: OpKind(200), Addr: 1, Val: 1},
		{Seq: 0, Core: 0, Kind: OpWrite, Addr: 2, Val: 2},
	}}
	rep := Check(h, Options{})
	if len(rep.Malformed) == 0 {
		t.Fatal("no malformed notes for a structurally broken log")
	}
}

func TestViolationCap(t *testing.T) {
	// Many independent phantom reads: witnesses capped, count exact. The
	// initial values are registered so the reads cannot be explained away
	// as inferred version-0 values.
	b := newHB()
	for i := 0; i < 20; i++ {
		b.init(memory.Addr(100+i), 0).begin(0).read(0, memory.Addr(100+i), 42).commit(0)
	}
	rep := Check(b.h, Options{MaxViolations: 3})
	if len(rep.Violations) != 3 {
		t.Fatalf("materialized %d violations, want 3", len(rep.Violations))
	}
	if rep.TotalViolations != 20 {
		t.Fatalf("TotalViolations = %d, want 20", rep.TotalViolations)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Begin(0, 0)
	r.Read(0, 0, 1, 2)
	r.Write(0, 0, 1, 2)
	r.Commit(0, 0)
	r.Abort(0, 0)
	r.NTRead(0, 0, 1, 2)
	r.NTWrite(0, 0, 1, 2)
	r.SetInitial(1, 2)
	if r.Enabled() || r.Len() != 0 {
		t.Fatal("nil recorder not inert")
	}
	h := r.History()
	if len(h.Ops) != 0 {
		t.Fatal("nil recorder produced ops")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.SetInitial(100, 0)
	r.Begin(0, 10)
	r.Read(0, 11, 100, 0)
	r.Write(0, 12, 100, 1)
	r.Commit(0, 13)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	h := r.History()
	rep := Check(h, Options{})
	if !rep.Ok() {
		t.Fatalf("recorded history flagged: %+v", rep.Violations)
	}
	// Seq stamps must be strictly increasing.
	for i := 1; i < len(h.Ops); i++ {
		if h.Ops[i].Seq <= h.Ops[i-1].Seq {
			t.Fatalf("non-monotone recorder stamps at %d", i)
		}
	}
	// The frozen history must not alias the recorder.
	r.Begin(1, 20)
	if len(h.Ops) != 4 {
		t.Fatal("History aliases recorder storage")
	}
}

func TestReportJSONComposable(t *testing.T) {
	// Reports must serialize cleanly for composition with the profiler's
	// artifact output.
	h := newHB().init(100, 0).
		begin(0).read(0, 100, 0).write(0, 100, 1).commit(0).
		begin(1).read(1, 100, 0).write(1, 100, 9).commit(1).
		h
	rep := Check(h, Options{})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.TotalViolations != rep.TotalViolations {
		t.Fatalf("round-trip lost violations: %d != %d", back.TotalViolations, rep.TotalViolations)
	}
}
