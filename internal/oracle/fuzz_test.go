package oracle

import (
	"encoding/json"
	"testing"

	"flextm/internal/memory"
	"flextm/internal/sim"
)

// decodeHistory turns an arbitrary byte stream into a History. Each op is
// two bytes: the first packs kind (high 3 bits, mod NumOpKinds+1 so one
// value doubles as "register an initial value" instead of an op) and core
// (low 3 bits); the second packs the address (high nibble) and value (low
// nibble). Seq normally increments but the value byte occasionally perturbs
// it backwards, exercising the checker's non-monotone re-stamping path. The
// tiny address/value spaces maximize collisions — the interesting regime
// for a dependency checker.
func decodeHistory(data []byte) History {
	h := History{Initial: map[memory.Addr]uint64{}}
	seq := uint64(1)
	for pc := 0; pc+1 < len(data); pc += 2 {
		sel := int(data[pc] >> 5)
		core := int(data[pc] & 0x07)
		addr := memory.Addr(data[pc+1] >> 4)
		val := uint64(data[pc+1] & 0x0F)
		if sel >= int(NumOpKinds) {
			h.Initial[addr] = val
			continue
		}
		if data[pc+1] == 0xA5 { // occasional Seq regression
			seq -= min(seq, 3)
		}
		h.Ops = append(h.Ops, Op{
			Seq: seq, At: sim.Time(seq * 10), Core: core,
			Kind: OpKind(sel), Addr: addr, Val: val,
		})
		seq++
	}
	return h
}

// FuzzOracleHistory feeds the checker arbitrary — including structurally
// nonsensical — histories. The contract under test is report-never-panic:
// whatever the log looks like (aborts without begins, duplicate commits,
// regressing sequence numbers, reads of unwritten addresses), Check must
// return a structurally consistent Report, and must do so deterministically.
func FuzzOracleHistory(f *testing.F) {
	// begin(0) write read commit; begin(1) read commit
	f.Add([]byte{0x00, 0x00, 0x40, 0x17, 0x20, 0x17, 0x60, 0x00, 0x01, 0x00, 0x21, 0x17, 0x61, 0x00})
	// orphan commit/abort, then ops from a core that never began
	f.Add([]byte{0x60, 0x00, 0x80, 0x00, 0x22, 0x33, 0x43, 0x44})
	// seq regression marker mid-stream
	f.Add([]byte{0x00, 0x00, 0x40, 0xA5, 0x20, 0xA5, 0x60, 0x00})
	// nt ops interleaved with a truncated txn
	f.Add([]byte{0xA0, 0x12, 0xC1, 0x34, 0x02, 0x00, 0x42, 0x56})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		rep := Check(h, Options{MaxViolations: 4})
		if rep == nil {
			t.Fatal("Check returned nil report")
		}
		if rep.Ok() != (rep.TotalViolations == 0) {
			t.Fatalf("Ok() = %v with TotalViolations = %d", rep.Ok(), rep.TotalViolations)
		}
		if len(rep.Violations) > 4 {
			t.Fatalf("materialized %d violations, cap is 4", len(rep.Violations))
		}
		if rep.TotalViolations < len(rep.Violations) {
			t.Fatalf("TotalViolations %d < materialized %d", rep.TotalViolations, len(rep.Violations))
		}
		for _, v := range rep.Violations {
			if v.Kind == "" || v.Summary == "" {
				t.Fatalf("violation with empty kind/summary: %+v", v)
			}
		}
		if rep.Truncated < 0 || rep.Txns < 0 {
			t.Fatalf("negative counts: truncated=%d txns=%d", rep.Truncated, rep.Txns)
		}
		// The checker is a pure function of the history: same input, same
		// report, byte for byte. Replayed witnesses depend on this.
		again := Check(h, Options{MaxViolations: 4})
		j1, err1 := json.Marshal(rep)
		j2, err2 := json.Marshal(again)
		if err1 != nil || err2 != nil {
			t.Fatalf("report not marshalable: %v / %v", err1, err2)
		}
		if string(j1) != string(j2) {
			t.Fatalf("nondeterministic report:\n%s\n%s", j1, j2)
		}
	})
}
