// Package flight is an always-on, near-zero-overhead flight recorder for
// the FlexTM machine: one fixed-size binary ring buffer per core, holding
// plain structs (no interface boxing, no per-event allocation) and
// overwriting the oldest records when full. Instrumentation sites record
// unconditionally through nil-safe methods, mirroring internal/telemetry
// and internal/fault, so a detached recorder costs one predictable branch.
//
// The recorder captures the events the conflict-graph analyzer
// (internal/conflictgraph) needs to *explain* aborts rather than merely
// count them: transaction begin/commit/abort, CST set/clear with the
// conflict type (R-W/W-R/W-W) and peer core, contention-manager kills,
// AOU alerts, overflow-table spills, CAS-Commit refusals, and
// watchdog/escalation events. On a watchdog trip — or on demand via
// `flextm -profile` — the rings are snapshotted and analyzed post mortem.
package flight

import (
	"fmt"
	"sort"

	"flextm/internal/memory"
	"flextm/internal/sim"
)

// Kind classifies one recorded event.
type Kind uint8

// Event kinds. Aux carries kind-specific detail (see each comment).
const (
	// TxnBegin: a transaction attempt started on Core.
	TxnBegin Kind = iota
	// TxnCommit: the attempt committed. Aux=1 when inside the serialized
	// fallback.
	TxnCommit
	// TxnAbort: the attempt aborted (any cause).
	TxnAbort
	// AbortEnemy: Core CASed Peer's status word to aborted (eager CM verdict
	// or the lazy commit loop of Figure 3).
	AbortEnemy
	// AbortSelf: the contention manager told Core to abort itself; Peer is
	// the enemy it yielded to.
	AbortSelf
	// CSTSet: the protocol set conflict bits between Core (the requestor)
	// and Peer (the responder). Aux is the cst.Kind recorded in the
	// requestor's table (R-W, W-R, or W-W); Line is the conflicting line.
	CSTSet
	// CSTClear: software cleared Core's conflict bits for Peer (-1 means a
	// commit-time copy-and-clear of the whole W-R/W-W registers).
	CSTClear
	// AOUAlert: an alert-on-update trap was delivered to Core for Line.
	AOUAlert
	// OTSpill: Core spilled the speculative Line to its overflow table.
	OTSpill
	// CommitRefused: Core's CAS-Commit returned CommitCSTFail (non-empty
	// W-R/W-W, or an injected commit race).
	CommitRefused
	// WatchdogTrip: Core's liveness watchdog tripped; Aux is the consecutive
	// abort count, clamped to 255.
	WatchdogTrip
	// Escalate: Core entered the serialized-irrevocable fallback.
	Escalate
	// GovStep: the resilience governor moved on its mitigation ladder.
	// Peer is the level it left, Aux the level it entered (Core is the
	// governor's home core, 0).
	GovStep
	// CMStall: the contention manager held Core for Dur cycles behind Peer
	// (the enemy it waited on); Line is the conflicting line.
	CMStall
	// Backoff: Core sat out Dur cycles of post-abort retry back-off. Aux is
	// the consecutive-abort count, clamped to 255.
	Backoff

	NumKinds
)

var kindNames = [NumKinds]string{
	TxnBegin:      "begin",
	TxnCommit:     "commit",
	TxnAbort:      "abort",
	AbortEnemy:    "abort-enemy",
	AbortSelf:     "abort-self",
	CSTSet:        "cst-set",
	CSTClear:      "cst-clear",
	AOUAlert:      "aou-alert",
	OTSpill:       "ot-spill",
	CommitRefused: "commit-refused",
	WatchdogTrip:  "watchdog-trip",
	Escalate:      "escalate",
	GovStep:       "governor-step",
	CMStall:       "cm-stall",
	Backoff:       "backoff",
}

// AuxFP is set in Aux, alongside the kind-specific low bits, when the
// conflict behind the record was a signature false positive (Bloom aliasing
// detected by audit mode, or an injected fault.SigFalsePos). It applies to
// CSTSet, AbortEnemy, AbortSelf, and CMStall records; mask with AuxMask to
// recover the low operand (e.g. the cst.Kind of a CSTSet).
const (
	AuxFP   uint8 = 0x80
	AuxMask uint8 = 0x7f
)

// String returns the kind's stable kebab-case name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rec is one recorded event. It is a fixed-size value type: recording one
// is two index computations and a struct store, with no allocation and no
// boxing.
type Rec struct {
	At   sim.Time        // virtual time of the enclosing operation
	Dur  sim.Time        // sub-phase duration (CMStall, Backoff); 0 otherwise
	Line memory.LineAddr // line operand (0 when not applicable)
	Seq  uint64          // global record order (ties in At are common)
	Core int16           // the core the event happened on
	Peer int16           // the other core (-1 when not applicable)
	Kind Kind
	Aux  uint8 // kind-specific operand (cst.Kind, abort count, FP bit, ...)
}

// Recorder is the per-core ring store. A nil *Recorder is valid and means
// "disabled": Rec returns immediately.
type Recorder struct {
	rings   [][]Rec
	written []uint64 // total records ever written per core
	lost    []uint64 // highest Seq overwritten by wrap-around, per core
	seq     uint64
	// restoredLost counts records that were already gone (overwritten
	// before the source snapshot) when this recorder was rebuilt by
	// Restore; Overwritten folds it in so a restored recorder reports the
	// same loss the live one did.
	restoredLost uint64
}

// DefaultPerCore is the default ring capacity per core: deep enough to hold
// the full conflict history of the paper-scale runs, small enough (40 B per
// record) to stay resident.
const DefaultPerCore = 4096

// New returns a recorder with perCore ring slots for each of cores cores.
// perCore <= 0 selects DefaultPerCore.
func New(cores, perCore int) *Recorder {
	if perCore <= 0 {
		perCore = DefaultPerCore
	}
	r := &Recorder{
		rings:   make([][]Rec, cores),
		written: make([]uint64, cores),
		lost:    make([]uint64, cores),
	}
	for i := range r.rings {
		r.rings[i] = make([]Rec, perCore)
	}
	return r
}

// Enabled reports whether the recorder stores anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Rec records one event on core. The oldest record of that core's ring is
// overwritten when full. Safe (and free) on a nil recorder.
func (r *Recorder) Rec(core int, at sim.Time, k Kind, peer int, aux uint8, line memory.LineAddr) {
	r.RecDur(core, at, k, peer, aux, line, 0)
}

// RecDur records one event carrying a sub-phase duration (CMStall, Backoff).
// Safe (and free) on a nil recorder.
func (r *Recorder) RecDur(core int, at sim.Time, k Kind, peer int, aux uint8, line memory.LineAddr, dur sim.Time) {
	if r == nil {
		return
	}
	ring := r.rings[core]
	n := r.written[core]
	r.written[core] = n + 1
	r.seq++
	slot := &ring[n%uint64(len(ring))]
	if n >= uint64(len(ring)) {
		// Slots are overwritten in Seq order, so the record being evicted
		// carries the highest lost Seq for this core so far.
		r.lost[core] = slot.Seq
	}
	*slot = Rec{
		At: at, Dur: dur, Line: line, Seq: r.seq,
		Core: int16(core), Peer: int16(peer), Kind: k, Aux: aux,
	}
}

// Written returns the total number of records ever recorded.
func (r *Recorder) Written() uint64 {
	if r == nil {
		return 0
	}
	var t uint64
	for _, n := range r.written {
		t += n
	}
	return t
}

// Overwritten returns how many records have been lost to ring wrap-around;
// a non-zero value means Snapshot covers only the most recent interval.
// For a recorder rebuilt by Restore, the count includes the records the
// original recorder had already lost before its snapshot was taken.
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	t := r.restoredLost
	for i, n := range r.written {
		if size := uint64(len(r.rings[i])); n > size {
			t += n - size
		}
	}
	return t
}

// Snapshot returns a copy of every live record across all rings, sorted by
// record order (Seq, which refines At). The rings are left untouched, so a
// watchdog dump does not disturb a later end-of-run profile.
func (r *Recorder) Snapshot() []Rec {
	if r == nil {
		return nil
	}
	var out []Rec
	for i, ring := range r.rings {
		n := r.written[i]
		if n > uint64(len(ring)) {
			n = uint64(len(ring))
		}
		out = append(out, ring[:n]...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// SnapshotSince returns the live records with Seq > seq, sorted by record
// order: the incremental form of Snapshot, used by the observatory pump to
// pull only the window recorded since its previous sample. The returned
// slice is always Seq-monotone; gap reports whether any record with
// Seq > seq has already been lost to ring wrap-around (a stale cursor), in
// which case the slice covers only the surviving suffix of the interval.
func (r *Recorder) SnapshotSince(seq uint64) (out []Rec, gap bool) {
	if r == nil {
		return nil, false
	}
	for i, ring := range r.rings {
		if r.lost[i] > seq {
			gap = true
		}
		n := r.written[i]
		if n > uint64(len(ring)) {
			n = uint64(len(ring))
		}
		for _, rec := range ring[:n] {
			if rec.Seq > seq {
				out = append(out, rec)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, gap
}

// Restore rebuilds a recorder from a previously captured Snapshot, for
// consumers that analyze a run post mortem (conflictgraph, causal) without
// having run it — the sweep cell cache's rehydration path. The restored
// recorder's Snapshot returns exactly the given records; records lost to
// ring wrap-around before the original snapshot are gone for good, which
// is also what a live recorder would report. The loss itself is preserved,
// not dropped: sequence numbers are globally contiguous from 1, so any
// hole up to the highest Seq is a record the original recorder overwrote.
// The restored recorder counts the holes in Overwritten and seeds its gap
// watermarks with the highest missing Seq, so SnapshotSince reports a gap
// for exactly the cursors the live recorder would have flagged. Records
// naming a core outside [0, cores) are dropped rather than trusted — the
// input may come from disk.
func Restore(cores int, recs []Rec) *Recorder {
	counts := make([]uint64, cores)
	var maxSeq, valid uint64
	seen := make(map[uint64]bool, len(recs))
	for _, rec := range recs {
		if int(rec.Core) < 0 || int(rec.Core) >= cores {
			continue
		}
		counts[rec.Core]++
		valid++
		seen[rec.Seq] = true
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	r := &Recorder{
		rings:   make([][]Rec, cores),
		written: make([]uint64, cores),
		lost:    make([]uint64, cores),
		seq:     maxSeq,
	}
	if maxSeq > valid {
		r.restoredLost = maxSeq - valid
		// A lost record's core died with it, so the per-core watermarks
		// cannot be reconstructed exactly; what SnapshotSince needs is the
		// global property "some record with Seq > cursor is gone", which
		// holds for precisely the cursors below the highest missing Seq.
		var lost uint64
		for s := maxSeq; s >= 1; s-- {
			if !seen[s] {
				lost = s
				break
			}
		}
		for i := range r.lost {
			r.lost[i] = lost
		}
	}
	for i := range r.rings {
		n := counts[i]
		if n == 0 {
			// Keep every ring recordable: RecDur indexes modulo its length.
			n = 1
		}
		r.rings[i] = make([]Rec, n)
	}
	for _, rec := range recs {
		if int(rec.Core) < 0 || int(rec.Core) >= cores {
			continue
		}
		ring := r.rings[rec.Core]
		ring[r.written[rec.Core]%uint64(len(ring))] = rec
		r.written[rec.Core]++
	}
	return r
}

// Reset discards all records (the rings stay allocated).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.written {
		r.written[i] = 0
		r.lost[i] = 0
	}
	r.seq = 0
	r.restoredLost = 0
}
