package flight

import (
	"testing"

	"flextm/internal/memory"
	"flextm/internal/sim"
)

func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	r.Rec(0, 1, TxnBegin, -1, 0, 0) // must not panic
	if r.Written() != 0 || r.Overwritten() != 0 {
		t.Fatal("nil recorder reports records")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", snap)
	}
	r.Reset() // must not panic

	allocs := testing.AllocsPerRun(1000, func() {
		r.Rec(0, 1, TxnBegin, -1, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder Rec allocates %.1f per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		r.RecDur(0, 1, CMStall, 1, 0, 0x40, 25)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder RecDur allocates %.1f per op, want 0", allocs)
	}
}

func TestRecDurCarriesDuration(t *testing.T) {
	r := New(1, 8)
	r.RecDur(0, 100, CMStall, 1, AuxFP, 0x40, 37)
	r.Rec(0, 200, TxnAbort, -1, 0, 0)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d records, want 2", len(snap))
	}
	if snap[0].Dur != 37 || snap[0].Aux&AuxFP == 0 {
		t.Fatalf("stall record = %+v, want Dur 37 with the FP bit", snap[0])
	}
	if snap[1].Dur != 0 {
		t.Fatalf("plain Rec carries Dur %d, want 0", snap[1].Dur)
	}
}

func TestRecIsAllocationFree(t *testing.T) {
	r := New(2, 64)
	var at sim.Time
	allocs := testing.AllocsPerRun(10000, func() {
		at++
		r.Rec(1, at, CSTSet, 0, 2, memory.LineAddr(at))
	})
	if allocs > 1 {
		t.Fatalf("enabled Rec allocates %.1f per op, want <= 1", allocs)
	}
	if allocs != 0 {
		t.Logf("enabled Rec allocates %.1f per op (budget is 1)", allocs)
	}
}

func TestRingWrapKeepsNewestRecords(t *testing.T) {
	const size = 8
	r := New(1, size)
	for i := 0; i < 20; i++ {
		r.Rec(0, sim.Time(i), TxnBegin, -1, 0, 0)
	}
	if got := r.Written(); got != 20 {
		t.Fatalf("Written = %d, want 20", got)
	}
	if got := r.Overwritten(); got != 20-size {
		t.Fatalf("Overwritten = %d, want %d", got, 20-size)
	}
	snap := r.Snapshot()
	if len(snap) != size {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), size)
	}
	// The survivors must be exactly the newest `size` records, in order.
	for i, rec := range snap {
		want := sim.Time(20 - size + i)
		if rec.At != want {
			t.Fatalf("snap[%d].At = %d, want %d", i, rec.At, want)
		}
	}
}

func TestSnapshotMergesCoresBySeq(t *testing.T) {
	r := New(3, 16)
	// Interleave records across cores; Seq must reconstruct the global order.
	order := []int{2, 0, 1, 1, 0, 2, 0}
	for i, core := range order {
		r.Rec(core, sim.Time(100), TxnBegin, -1, uint8(i), 0)
	}
	snap := r.Snapshot()
	if len(snap) != len(order) {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), len(order))
	}
	for i, rec := range snap {
		if int(rec.Core) != order[i] || rec.Aux != uint8(i) {
			t.Fatalf("snap[%d] = core %d aux %d, want core %d aux %d",
				i, rec.Core, rec.Aux, order[i], i)
		}
		if i > 0 && rec.Seq <= snap[i-1].Seq {
			t.Fatalf("Seq not strictly increasing at %d: %d <= %d", i, rec.Seq, snap[i-1].Seq)
		}
	}
}

func TestSnapshotIsNonDestructive(t *testing.T) {
	r := New(1, 8)
	r.Rec(0, 1, TxnBegin, -1, 0, 0)
	r.Rec(0, 2, TxnCommit, -1, 0, 0)
	first := r.Snapshot()
	second := r.Snapshot()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("snapshots = %d/%d records, want 2/2", len(first), len(second))
	}
	// Mutating the snapshot must not corrupt the rings.
	first[0].Kind = TxnAbort
	if got := r.Snapshot()[0].Kind; got != TxnBegin {
		t.Fatalf("ring record changed through snapshot: %v", got)
	}
}

func TestResetClearsButKeepsCapacity(t *testing.T) {
	r := New(2, 4)
	for i := 0; i < 10; i++ {
		r.Rec(i%2, sim.Time(i), TxnAbort, -1, 0, 0)
	}
	r.Reset()
	if r.Written() != 0 || r.Overwritten() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
	r.Rec(0, 1, TxnBegin, -1, 0, 0)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Seq != 1 {
		t.Fatalf("post-Reset record = %+v, want Seq restarted at 1", snap)
	}
}

func TestDefaultPerCore(t *testing.T) {
	r := New(1, 0)
	for i := 0; i < DefaultPerCore+5; i++ {
		r.Rec(0, sim.Time(i), TxnBegin, -1, 0, 0)
	}
	if got := r.Overwritten(); got != 5 {
		t.Fatalf("Overwritten = %d, want 5 (ring capacity should be DefaultPerCore)", got)
	}
}

func TestKindStringsAreStable(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("Kind(%d) has no name: %q", k, s)
		}
	}
	if s := NumKinds.String(); s != "Kind(15)" {
		t.Fatalf("out-of-range Kind String = %q", s)
	}
}

func BenchmarkRec(b *testing.B) {
	r := New(4, DefaultPerCore)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Rec(i&3, sim.Time(i), CSTSet, (i+1)&3, 1, memory.LineAddr(i))
	}
}

func BenchmarkRecNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Rec(i&3, sim.Time(i), CSTSet, (i+1)&3, 1, memory.LineAddr(i))
	}
}
