package flight

import "testing"

// TestRestoreRoundTripsSnapshot: with no wrap-around, Restore is lossless —
// the restored recorder's Snapshot is record-for-record identical and it
// reports no loss.
func TestRestoreRoundTripsSnapshot(t *testing.T) {
	r := New(2, 16)
	for i := 0; i < 6; i++ {
		r.Rec(i%2, 0, TxnBegin, -1, 0, 0)
	}
	snap := r.Snapshot()
	got := Restore(2, snap)
	if got.Overwritten() != 0 {
		t.Fatalf("lossless restore reports Overwritten = %d", got.Overwritten())
	}
	back := got.Snapshot()
	if len(back) != len(snap) {
		t.Fatalf("restored snapshot = %d records, want %d", len(back), len(snap))
	}
	for i := range snap {
		if back[i] != snap[i] {
			t.Fatalf("record %d: restored %+v != original %+v", i, back[i], snap[i])
		}
	}
	if _, gap := got.SnapshotSince(0); gap {
		t.Fatal("lossless restore flags a gap")
	}
}

// TestRestoreAfterWrapSurfacesGap is the regression test for the silent-drop
// bug: wrap a live recorder, restore its snapshot, and the restored recorder
// must report the same loss the live one did — through Overwritten AND
// through SnapshotSince's gap watermarks, which Restore previously left at
// zero so stale cursors looked clean.
func TestRestoreAfterWrapSurfacesGap(t *testing.T) {
	r := New(2, 4)
	for i := 0; i < 10; i++ {
		r.Rec(i%2, 0, TxnAbort, -1, 0, 0)
	}
	lost := r.Overwritten()
	if lost == 0 {
		t.Fatal("fixture never wrapped")
	}
	snap := r.Snapshot()
	got := Restore(2, snap)

	if got.Overwritten() != lost {
		t.Fatalf("restored Overwritten = %d, live recorder reported %d", got.Overwritten(), lost)
	}

	liveRecs, liveGap := r.SnapshotSince(0)
	restRecs, restGap := got.SnapshotSince(0)
	if !liveGap || !restGap {
		t.Fatalf("stale cursor 0: live gap=%v restored gap=%v, want both true", liveGap, restGap)
	}
	if len(liveRecs) != len(restRecs) {
		t.Fatalf("since 0: live %d records, restored %d", len(liveRecs), len(restRecs))
	}

	// Find the highest missing Seq: the watermark both recorders must agree
	// on. Seqs are contiguous from 1, so every absent one is a lost record.
	seen := make(map[uint64]bool, len(snap))
	var maxSeq uint64
	for _, rec := range snap {
		seen[rec.Seq] = true
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	var highestMissing uint64
	for s := maxSeq; s >= 1; s-- {
		if !seen[s] {
			highestMissing = s
			break
		}
	}
	if highestMissing == 0 {
		t.Fatal("fixture has no holes despite wrap-around")
	}
	// A cursor strictly below the highest missing Seq has lost something;
	// a cursor at or past it is clean. Both recorders must say so.
	if _, gap := got.SnapshotSince(highestMissing - 1); !gap {
		t.Fatalf("restored cursor %d (below highest missing %d) not flagged", highestMissing-1, highestMissing)
	}
	if _, gap := r.SnapshotSince(highestMissing - 1); !gap {
		t.Fatalf("live cursor %d (below highest missing %d) not flagged", highestMissing-1, highestMissing)
	}
	if _, gap := got.SnapshotSince(highestMissing); gap {
		t.Fatalf("restored recorder flags fresh cursor %d", highestMissing)
	}
	if _, gap := r.SnapshotSince(highestMissing); gap {
		t.Fatalf("live recorder flags fresh cursor %d", highestMissing)
	}
}

// TestRestoreGapAgreesWithLiveAcrossCursors sweeps every cursor value and
// checks the restored recorder's gap verdict matches the live recorder's.
// Cores wrap at different depths so the per-core watermarks genuinely
// differ on the live side.
func TestRestoreGapAgreesWithLiveAcrossCursors(t *testing.T) {
	r := New(2, 4)
	// Core 0 wraps hard, core 1 not at all.
	for i := 0; i < 9; i++ {
		r.Rec(0, 0, TxnCommit, -1, 0, 0)
	}
	r.Rec(1, 0, TxnCommit, -1, 0, 0)
	snap := r.Snapshot()
	got := Restore(2, snap)
	if got.Overwritten() != r.Overwritten() {
		t.Fatalf("Overwritten: restored %d, live %d", got.Overwritten(), r.Overwritten())
	}
	for cursor := uint64(0); cursor <= 10; cursor++ {
		_, liveGap := r.SnapshotSince(cursor)
		_, restGap := got.SnapshotSince(cursor)
		if liveGap != restGap {
			t.Fatalf("cursor %d: live gap=%v, restored gap=%v", cursor, liveGap, restGap)
		}
	}
}

// TestRestoreResetClearsRestoredLoss: Reset on a restored recorder discards
// the inherited loss along with the records.
func TestRestoreResetClearsRestoredLoss(t *testing.T) {
	r := New(1, 2)
	for i := 0; i < 5; i++ {
		r.Rec(0, 0, TxnAbort, -1, 0, 0)
	}
	got := Restore(1, r.Snapshot())
	if got.Overwritten() == 0 {
		t.Fatal("fixture did not inherit loss")
	}
	got.Reset()
	if got.Overwritten() != 0 {
		t.Fatalf("post-Reset Overwritten = %d, want 0", got.Overwritten())
	}
	if _, gap := got.SnapshotSince(0); gap {
		t.Fatal("post-Reset gap still flagged")
	}
}
