package flight

import "testing"

func TestSnapshotSinceFiltersBySeq(t *testing.T) {
	r := New(2, 16)
	for i := 0; i < 6; i++ {
		r.Rec(i%2, 0, TxnBegin, -1, 0, 0)
	}
	all := r.Snapshot()
	if len(all) != 6 {
		t.Fatalf("snapshot = %d records", len(all))
	}
	since := r.SnapshotSince(all[2].Seq)
	if len(since) != 3 {
		t.Fatalf("since seq %d = %d records, want 3", all[2].Seq, len(since))
	}
	for i, rec := range since {
		if rec.Seq != all[3+i].Seq {
			t.Fatalf("since[%d].Seq = %d, want %d (sorted, strictly after)", i, rec.Seq, all[3+i].Seq)
		}
	}
	// Zero returns everything; the newest seq returns nothing.
	if got := len(r.SnapshotSince(0)); got != 6 {
		t.Fatalf("since 0 = %d records, want 6", got)
	}
	if got := len(r.SnapshotSince(all[5].Seq)); got != 0 {
		t.Fatalf("since newest = %d records, want 0", got)
	}
}

func TestSnapshotSinceIncrementalPullsCoverEverything(t *testing.T) {
	// The observatory pump's access pattern: pull, record more, pull again
	// from the last seen seq. The union must equal one big snapshot.
	r := New(2, 32)
	var pulled []Rec
	var last uint64
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			r.Rec(i%2, 0, TxnCommit, -1, 0, 0)
		}
		fresh := r.SnapshotSince(last)
		if len(fresh) != 5 {
			t.Fatalf("round %d pulled %d records, want 5", round, len(fresh))
		}
		last = fresh[len(fresh)-1].Seq
		pulled = append(pulled, fresh...)
	}
	full := r.Snapshot()
	if len(pulled) != len(full) {
		t.Fatalf("incremental pulls = %d records, full snapshot = %d", len(pulled), len(full))
	}
	for i := range full {
		if pulled[i].Seq != full[i].Seq {
			t.Fatalf("record %d: incremental seq %d != full seq %d", i, pulled[i].Seq, full[i].Seq)
		}
	}
}

func TestSnapshotSinceAfterRingWrap(t *testing.T) {
	r := New(1, 4)
	for i := 0; i < 10; i++ {
		r.Rec(0, 0, TxnAbort, -1, 0, 0)
	}
	// Records 1-6 are overwritten; asking for "since 2" can only return
	// what survives in the ring.
	got := r.SnapshotSince(2)
	if len(got) != 4 {
		t.Fatalf("post-wrap since = %d records, want ring capacity 4", len(got))
	}
	if got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("post-wrap window = seq %d..%d, want 7..10", got[0].Seq, got[3].Seq)
	}
}

func TestSnapshotSinceNilRecorder(t *testing.T) {
	var r *Recorder
	if got := r.SnapshotSince(0); got != nil {
		t.Fatalf("nil recorder since = %v", got)
	}
}
