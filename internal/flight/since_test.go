package flight

import "testing"

func TestSnapshotSinceFiltersBySeq(t *testing.T) {
	r := New(2, 16)
	for i := 0; i < 6; i++ {
		r.Rec(i%2, 0, TxnBegin, -1, 0, 0)
	}
	all := r.Snapshot()
	if len(all) != 6 {
		t.Fatalf("snapshot = %d records", len(all))
	}
	since, gap := r.SnapshotSince(all[2].Seq)
	if len(since) != 3 {
		t.Fatalf("since seq %d = %d records, want 3", all[2].Seq, len(since))
	}
	if gap {
		t.Fatal("gap flagged with nothing overwritten")
	}
	for i, rec := range since {
		if rec.Seq != all[3+i].Seq {
			t.Fatalf("since[%d].Seq = %d, want %d (sorted, strictly after)", i, rec.Seq, all[3+i].Seq)
		}
	}
	// Zero returns everything; the newest seq returns nothing.
	if got, _ := r.SnapshotSince(0); len(got) != 6 {
		t.Fatalf("since 0 = %d records, want 6", len(got))
	}
	if got, _ := r.SnapshotSince(all[5].Seq); len(got) != 0 {
		t.Fatalf("since newest = %d records, want 0", len(got))
	}
}

func TestSnapshotSinceIncrementalPullsCoverEverything(t *testing.T) {
	// The observatory pump's access pattern: pull, record more, pull again
	// from the last seen seq. The union must equal one big snapshot.
	r := New(2, 32)
	var pulled []Rec
	var last uint64
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			r.Rec(i%2, 0, TxnCommit, -1, 0, 0)
		}
		fresh, gap := r.SnapshotSince(last)
		if len(fresh) != 5 {
			t.Fatalf("round %d pulled %d records, want 5", round, len(fresh))
		}
		if gap {
			t.Fatalf("round %d flagged a gap with no wrap-around", round)
		}
		last = fresh[len(fresh)-1].Seq
		pulled = append(pulled, fresh...)
	}
	full := r.Snapshot()
	if len(pulled) != len(full) {
		t.Fatalf("incremental pulls = %d records, full snapshot = %d", len(pulled), len(full))
	}
	for i := range full {
		if pulled[i].Seq != full[i].Seq {
			t.Fatalf("record %d: incremental seq %d != full seq %d", i, pulled[i].Seq, full[i].Seq)
		}
	}
}

func TestSnapshotSinceAfterRingWrap(t *testing.T) {
	r := New(1, 4)
	for i := 0; i < 10; i++ {
		r.Rec(0, 0, TxnAbort, -1, 0, 0)
	}
	// Records 1-6 are overwritten; asking for "since 2" can only return
	// what survives in the ring, and the loss must be flagged.
	got, gap := r.SnapshotSince(2)
	if len(got) != 4 {
		t.Fatalf("post-wrap since = %d records, want ring capacity 4", len(got))
	}
	if got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("post-wrap window = seq %d..%d, want 7..10", got[0].Seq, got[3].Seq)
	}
	if !gap {
		t.Fatal("records 3..6 were lost after the cursor, but gap not flagged")
	}
}

func TestSnapshotSinceWrapDuringPull(t *testing.T) {
	// The stale-cursor case a causal reconstruction hits: a reader takes a
	// cursor, the writer wraps the ring past it mid-pull, and the reader
	// resumes. The resumed slice must stay Seq-monotone and the loss must
	// be flagged; a later pull from a fresh cursor must be gap-free again.
	r := New(2, 4)
	for i := 0; i < 3; i++ {
		r.Rec(0, 0, TxnBegin, -1, 0, 0)
		r.Rec(1, 0, TxnBegin, -1, 0, 0)
	}
	first, gap := r.SnapshotSince(0)
	if gap || len(first) != 6 {
		t.Fatalf("pre-wrap pull = %d records gap=%v, want 6 records no gap", len(first), gap)
	}
	cursor := first[2].Seq // reader paused mid-stream: 3 records still unread

	// The writer laps both rings while the reader is away: every unread
	// record (seq 4..6) is overwritten.
	for i := 0; i < 10; i++ {
		r.Rec(i%2, 0, TxnAbort, -1, 0, 0)
	}

	resumed, gap := r.SnapshotSince(cursor)
	if !gap {
		t.Fatal("unread records were overwritten mid-pull, but gap not flagged")
	}
	if len(resumed) == 0 {
		t.Fatal("resumed pull returned nothing despite live records")
	}
	for i, rec := range resumed {
		if rec.Seq <= cursor {
			t.Fatalf("resumed[%d].Seq = %d, not after cursor %d", i, rec.Seq, cursor)
		}
		if i > 0 && rec.Seq <= resumed[i-1].Seq {
			t.Fatalf("resumed slice not Seq-monotone at %d: %d <= %d", i, rec.Seq, resumed[i-1].Seq)
		}
	}
	// The surviving suffix must be contiguous up to the newest record.
	if last := resumed[len(resumed)-1].Seq; last != first[5].Seq+10 {
		t.Fatalf("resumed slice ends at seq %d, want newest %d", last, first[5].Seq+10)
	}

	// A cursor at the head of the resumed slice has no further loss.
	if _, gap := r.SnapshotSince(resumed[len(resumed)-1].Seq); gap {
		t.Fatal("fresh cursor still reports a gap")
	}
}

func TestSnapshotSinceNilRecorder(t *testing.T) {
	var r *Recorder
	got, gap := r.SnapshotSince(0)
	if got != nil || gap {
		t.Fatalf("nil recorder since = %v gap=%v", got, gap)
	}
}
