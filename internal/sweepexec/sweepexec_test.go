package sweepexec

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapEmitsInOrder: whatever the worker count, emit sees every index
// exactly once, in strictly increasing order, with the matching value.
func TestMapEmitsInOrder(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			const n = 200
			next := 0
			err := Map(Exec{Workers: w}, n,
				func(i int) (int, error) {
					// Finish later cells faster so out-of-order completion is
					// the common case, not a fluke.
					if i%7 == 0 {
						runtime.Gosched()
					}
					return i * i, nil
				},
				func(i, v int) error {
					if i != next {
						t.Errorf("emit(%d) out of order, want %d", i, next)
					}
					if v != i*i {
						t.Errorf("emit(%d) = %d, want %d", i, v, i*i)
					}
					next++
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if next != n {
				t.Fatalf("emitted %d of %d cells", next, n)
			}
		})
	}
}

// TestMapSharedSinkNeedsNoLocking: emit writes to a plain shared slice and
// map with no synchronization of its own. Run under -race, this pins the
// contract that emit is serialized on the calling goroutine.
func TestMapSharedSinkNeedsNoLocking(t *testing.T) {
	const n = 500
	var sink []int
	seen := map[int]bool{}
	err := Map(Exec{Workers: 8}, n,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			sink = append(sink, v)
			seen[v] = true
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink) != n || len(seen) != n {
		t.Fatalf("sink %d, seen %d, want %d", len(sink), len(seen), n)
	}
}

// TestMapReturnsLowestIndexError: several cells fail; Map reports the
// error the serial loop would have hit first, and emit stops before it.
func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			boom := func(i int) error { return fmt.Errorf("cell %d failed", i) }
			var emitted []int
			err := Map(Exec{Workers: w}, 64,
				func(i int) (int, error) {
					if i == 9 || i == 33 || i == 50 {
						return 0, boom(i)
					}
					return i, nil
				},
				func(i, v int) error { emitted = append(emitted, i); return nil })
			if err == nil || err.Error() != "cell 9 failed" {
				t.Fatalf("err = %v, want cell 9's", err)
			}
			for _, i := range emitted {
				if i >= 9 {
					t.Fatalf("emitted cell %d at/after the failed cell", i)
				}
			}
		})
	}
}

// TestMapEmitErrorStopsSweep: an emit failure aborts the sweep with that
// error and no further emissions.
func TestMapEmitErrorStopsSweep(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, w := range []int{1, 8} {
		var emitted int
		err := Map(Exec{Workers: w}, 100,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				if i == 5 {
					return sentinel
				}
				emitted++
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", w, err)
		}
		if emitted != 5 {
			t.Fatalf("workers=%d: emitted %d cells, want 5", w, emitted)
		}
	}
}

// TestMapStopMidSweep: closing Stop mid-run yields ErrStopped, and the
// cells emitted before the stop are a clean prefix.
func TestMapStopMidSweep(t *testing.T) {
	for _, w := range []int{1, 4} {
		stop := make(chan struct{})
		next := 0
		err := Map(Exec{Workers: w, Stop: stop}, 1000,
			func(i int) (int, error) {
				if i == 20 {
					close(stop)
				}
				return i, nil
			},
			func(i, v int) error {
				if i != next {
					t.Fatalf("workers=%d: emit(%d) out of order", w, i)
				}
				next++
				return nil
			})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("workers=%d: err = %v, want ErrStopped", w, err)
		}
		if next >= 1000 {
			t.Fatalf("workers=%d: sweep ran to completion despite stop", w)
		}
	}
}

// TestMapStopAtCompletion: a Stop that closes only as the final cell is
// emitted reports a complete sweep (nil), not ErrStopped — matching the
// serial loop, which polls the channel only before running a cell. This
// is the SIGINT-lands-as-the-sweep-finishes path: paperbench must not
// label a complete bench artifact as partial and exit 130.
func TestMapStopAtCompletion(t *testing.T) {
	const n = 50
	for _, w := range []int{1, 4} {
		stop := make(chan struct{})
		emitted := 0
		err := Map(Exec{Workers: w, Stop: stop}, n,
			func(i int) (int, error) { return i, nil },
			func(i, v int) error {
				emitted++
				if i == n-1 {
					close(stop)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: err = %v for a completed sweep", w, err)
		}
		if emitted != n {
			t.Fatalf("workers=%d: emitted %d of %d cells", w, emitted, n)
		}
	}
}

// TestMapStopBeforeStart: an already-closed Stop runs nothing.
func TestMapStopBeforeStart(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	var ran atomic.Int64
	err := Map(Exec{Workers: 4, Stop: stop}, 50,
		func(i int) (int, error) { ran.Add(1); return i, nil },
		nil)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells ran after pre-closed stop", ran.Load())
	}
}

// TestMapPanicPropagates: a worker panic resurfaces on the calling
// goroutine with the original value, after the pool has drained.
func TestMapPanicPropagates(t *testing.T) {
	for _, w := range []int{1, 8} {
		func() {
			defer func() {
				pv := recover()
				if pv != "cell 13 exploded" {
					t.Fatalf("workers=%d: recovered %v", w, pv)
				}
			}()
			_ = Map(Exec{Workers: w}, 64,
				func(i int) (int, error) {
					if i == 13 {
						panic("cell 13 exploded")
					}
					return i, nil
				}, nil)
			t.Fatalf("workers=%d: Map returned instead of panicking", w)
		}()
	}
}

// TestMapLeaksNoGoroutines: the pool joins every worker before returning,
// on the success, error, stop, and panic paths alike.
func TestMapLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	// Success path.
	_ = Map(Exec{Workers: 8}, 200, func(i int) (int, error) { return i, nil }, nil)
	// Error path.
	_ = Map(Exec{Workers: 8}, 200, func(i int) (int, error) {
		if i == 50 {
			return 0, errors.New("x")
		}
		return i, nil
	}, nil)
	// Stop path.
	stop := make(chan struct{})
	_ = Map(Exec{Workers: 8, Stop: stop}, 200, func(i int) (int, error) {
		if i == 10 {
			close(stop)
		}
		return i, nil
	}, nil)
	// Panic path.
	func() {
		defer func() { _ = recover() }()
		_ = Map(Exec{Workers: 8}, 200, func(i int) (int, error) { panic("x") }, nil)
	}()
	// The runtime needs a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after maps", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestMapZeroAndNegativeCells: degenerate grids are a no-op.
func TestMapZeroAndNegativeCells(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := false
		err := Map(Exec{Workers: 4}, n,
			func(i int) (int, error) { called = true; return 0, nil },
			func(i, v int) error { called = true; return nil })
		if err != nil || called {
			t.Fatalf("n=%d: err=%v called=%v", n, err, called)
		}
	}
}

// TestWorkersResolution: worker-count clamping.
func TestWorkersResolution(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},   // never more workers than cells
		{0, 10, runtime.GOMAXPROCS(0)},
		{-1, 10, runtime.GOMAXPROCS(0)},
		{8, 0, 1}, // empty grid still resolves to a sane pool
	}
	for _, c := range cases {
		e := Exec{Workers: c.workers}
		got := e.workers(c.n)
		want := c.want
		if want > c.n && c.n >= 1 {
			want = c.n
		}
		if got != want {
			t.Errorf("Exec{Workers:%d}.workers(%d) = %d, want %d", c.workers, c.n, got, want)
		}
	}
}
