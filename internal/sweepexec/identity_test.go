package sweepexec_test

// The determinism contract, pinned: every figure-level sweep in the tree
// must produce byte-identical artifacts whether it runs serially or on 2
// or 8 workers. Each case runs the figure at the quick test scale with
// telemetry and the flight recorder attached, folds the figure's return
// value AND the full OnResult stream (flight records and causal critical
// paths included) into one canonical JSON blob, and bytes.Equal-compares
// the serial blob against each parallel one. The campaign-shaped sweeps
// (chaos, soak, stress) are compared structurally, governor transition
// logs included.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"flextm/internal/causal"
	"flextm/internal/harness"
	"flextm/internal/stress"
	"flextm/internal/workloads"
)

var workerCounts = []int{2, 8}

// skipHeavy bows out of the expensive full-figure matrix in race builds
// (the pool tests carry the race coverage; identity is byte comparison)
// and under -short.
func skipHeavy(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("identity matrix skipped under -race: byte comparison, race coverage lives in the pool tests")
	}
	if testing.Short() {
		t.Skip("identity matrix skipped in -short mode")
	}
}

// runFigure executes one figure at the given worker count and returns the
// canonical encoding of everything it produced.
func runFigure(t *testing.T, parallel int, run func(harness.SweepConfig) (any, error)) []byte {
	t.Helper()
	sc := harness.QuickSweep()
	sc.Parallel = parallel
	sc.Metrics = true
	sc.Flight = true
	var stream []map[string]any
	sc.OnResult = func(res harness.Result) {
		p := map[string]any{
			"system": res.System, "workload": res.Workload, "threads": res.Threads,
			"commits": res.Commits, "aborts": res.Aborts, "cycles": res.Cycles,
			"throughput": res.Throughput, "machine": res.Machine,
			"medianConflicts": res.MedianConflicts, "maxConflicts": res.MaxConflicts,
		}
		if res.Telemetry != nil {
			p["telemetry"] = res.Telemetry.Totals()
		}
		if res.Flight != nil {
			recs := res.Flight.Snapshot()
			p["flight"] = recs
			if rep := causal.Analyze(recs, causal.Options{Cores: sc.Machine.Cores, TopBlame: 3}); rep != nil {
				p["causal"] = rep
			}
		}
		stream = append(stream, p)
	}
	v, err := run(sc)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(map[string]any{"value": v, "stream": stream})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestEveryFigureBitIdenticalUnderParallelism(t *testing.T) {
	skipHeavy(t)
	figures := []struct {
		name string
		run  func(harness.SweepConfig) (any, error)
	}{
		{"fig4", func(sc harness.SweepConfig) (any, error) { return harness.Figure4(sc) }},
		{"fig5", func(sc harness.SweepConfig) (any, error) { return harness.Figure5(sc) }},
		{"fig5mp", func(sc harness.SweepConfig) (any, error) {
			f, _ := workloads.ByName("RandomGraph")
			return harness.Multiprogram(sc, f, []int{2, 4})
		}},
		{"overflow", func(sc harness.SweepConfig) (any, error) {
			return harness.OverflowAblation(sc, []string{"RandomGraph"}, 4)
		}},
		{"sig", func(sc harness.SweepConfig) (any, error) {
			return harness.SignatureAblation(sc, "RBTree", 4, []int{256, 1024})
		}},
		{"cm", func(sc harness.SweepConfig) (any, error) {
			return harness.ManagerAblation(sc, "RandomGraph", 4)
		}},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			serial := runFigure(t, 1, fig.run)
			for _, w := range workerCounts {
				if got := runFigure(t, w, fig.run); !bytes.Equal(serial, got) {
					t.Errorf("parallel=%d artifact differs from serial (%d vs %d bytes)",
						w, len(got), len(serial))
				}
			}
		})
	}
}

// TestChaosCampaignBitIdentical: the fault campaign's full result —
// per-cell commit/abort/escalation/injection counts and violation lists —
// is identical at any worker count.
func TestChaosCampaignBitIdentical(t *testing.T) {
	skipHeavy(t)
	t.Parallel()
	spec := harness.DefaultChaosSpec()
	spec.Threads = 5
	spec.Rounds = 15
	spec.Rates = []float64{0.10}
	serial := harness.ChaosCampaign(spec)
	for _, w := range workerCounts {
		pspec := spec
		pspec.Parallel = w
		if got := harness.ChaosCampaign(pspec); !reflect.DeepEqual(serial, got) {
			t.Errorf("parallel=%d chaos result differs from serial", w)
		}
	}
}

// TestSoakBitIdentical: the governed soak — including every cell's
// governor transition log, the most ordering-sensitive artifact in the
// tree — is identical at any worker count.
func TestSoakBitIdentical(t *testing.T) {
	skipHeavy(t)
	t.Parallel()
	cfg := harness.SoakConfig{Seed: 1, Cells: 3, Rounds: 15}
	serial := harness.Soak(cfg)
	for _, w := range workerCounts {
		pcfg := cfg
		pcfg.Parallel = w
		got := harness.Soak(pcfg)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("parallel=%d soak result differs from serial", w)
		}
		for i := range got.Cells {
			if got.Cells[i].GovLog != serial.Cells[i].GovLog {
				t.Errorf("parallel=%d cell %d transition log differs", w, i)
			}
		}
	}
}

// TestStressExploreBitIdentical: the schedule explorer finds the same
// failures in the same seed order at any worker count — for both the
// clean protocol and the deliberately broken one. Compared via canonical
// JSON: the oracle report keeps unexported scratch state that DeepEqual
// would inspect, but the replayable artifact is its encoding.
func TestStressExploreBitIdentical(t *testing.T) {
	t.Parallel()
	encode := func(r stress.ExploreResult) []byte {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, broken := range []bool{false, true} {
		base := stress.DefaultConfig(1)
		base.BreakWR = broken
		serial := encode(stress.Explore(base, 12))
		for _, w := range workerCounts {
			got := encode(stress.ExploreParallel(base, 12, w))
			if !bytes.Equal(serial, got) {
				t.Errorf("broken=%v parallel=%d explore result differs from serial", broken, w)
			}
		}
	}
}

// TestFigureErrorsMatchSerial: a failing grid reports the same error
// string at any worker count (the lowest-index failure, exactly as the
// serial loop would phrase it).
func TestFigureErrorsMatchSerial(t *testing.T) {
	t.Parallel()
	run := func(parallel int) string {
		sc := harness.QuickSweep()
		sc.Parallel = parallel
		sc.Threads = []int{1, 999} // oversubscribes the 16-core machine
		_, err := harness.Figure5(sc)
		if err == nil {
			t.Fatal("oversubscribed sweep succeeded")
		}
		return err.Error()
	}
	serial := run(1)
	for _, w := range workerCounts {
		if got := run(w); got != serial {
			t.Errorf("parallel=%d error %q, serial %q", w, got, serial)
		}
	}
	if serial == "" {
		t.Fatal(fmt.Errorf("empty error"))
	}
}
