// Package cache is the content-addressed cell cache behind `paperbench
// -cache`: one file per sweep cell, keyed by the hash of the cell's full
// canonical configuration plus a code schema version. Because every cell
// is a deterministic function of its configuration, a hit IS the
// simulation — re-running an unchanged grid touches no simulator code at
// all, and any code change that alters results must bump the schema
// version, which changes every key and invalidates the whole store.
//
// The store is defensive by construction: a corrupted, truncated, or
// stale-schema entry is a miss (the cell re-simulates and overwrites it),
// never an error. A nil *Store is a valid always-miss cache, so callers
// wire it unconditionally and pay nothing when caching is off.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxEntries bounds the store: past it, the oldest entries (by
// file modification time) are evicted on Put. Generous relative to the
// full figure suite (a few hundred cells) so eviction only matters for
// long-lived stores accumulating many configurations.
const DefaultMaxEntries = 8192

// Store is an on-disk content-addressed cache. The zero value and the nil
// pointer are valid always-miss stores. All methods are safe for
// concurrent use: a parallel sweep (`-parallel` + `-cache`) shares one
// Store across every worker goroutine.
type Store struct {
	dir        string
	maxEntries atomic.Int64

	hits, misses, puts, evictions, corrupt atomic.Uint64

	// count approximates the number of live entries: seeded by a walk at
	// Open, incremented per Put (overwrites drift it upward), and
	// re-synchronized by every eviction pass. Only the eviction threshold
	// reads it, so drift costs at most an early pass, never a missed
	// bound — and Put stays O(1) instead of walking the store each time.
	count atomic.Int64
	// evictMu serializes the full list/sort/remove eviction pass.
	evictMu sync.Mutex
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Corrupt counts entries that existed but failed decoding or the
	// integrity digest — each also counted as a miss.
	Corrupt uint64 `json:"corrupt"`
}

func (s Stats) String() string {
	return fmt.Sprintf("cache: %d hits, %d misses (%d corrupt), %d puts, %d evictions",
		s.Hits, s.Misses, s.Corrupt, s.Puts, s.Evictions)
}

// Open creates (if needed) and opens a store rooted at dir. The one-time
// entry walk seeds the eviction count, so a reopened store still evicts
// on the first Put past the bound.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: %w", err)
	}
	s := &Store{dir: dir}
	s.maxEntries.Store(DefaultMaxEntries)
	if entries, err := s.list(); err == nil {
		s.count.Store(int64(len(entries)))
	}
	return s, nil
}

// SetMaxEntries overrides the eviction bound (<= 0 restores the default).
func (s *Store) SetMaxEntries(n int) {
	if n <= 0 {
		n = DefaultMaxEntries
	}
	s.maxEntries.Store(int64(n))
}

// max reads the eviction bound (zero-value Stores fall to the default).
func (s *Store) max() int64 {
	if m := s.maxEntries.Load(); m > 0 {
		return m
	}
	return DefaultMaxEntries
}

// Key derives the content address for one cell: the hex sha256 of the
// schema version and the cell configuration's canonical JSON.
// encoding/json is canonical for our config types — struct fields emit in
// declaration order and map keys sort — so equal configurations always
// collide and any changed field, however deep, produces a fresh key.
func Key(schema string, config any) (string, error) {
	cfg, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("cellcache: key: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(schema))
	h.Write([]byte{0})
	h.Write(cfg)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// envelope is the on-disk entry format. Digest covers Payload alone, so a
// flipped bit anywhere in the value fails closed as a miss.
type envelope struct {
	Schema  string          `json:"schema"`
	Digest  string          `json:"digest"`
	Payload json.RawMessage `json:"payload"`
}

func (s *Store) path(key string) string {
	// Shard by the first byte of the hash to keep directory listings sane
	// for large stores.
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get decodes the entry for key into value and reports whether it was a
// clean hit. Every failure mode — absent file, unreadable file, malformed
// JSON, schema skew, digest mismatch, payload/value shape mismatch — is a
// miss.
func (s *Store) Get(key, schema string, value any) bool {
	if s == nil || s.dir == "" {
		return false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false
	}
	if env.Schema != schema || env.Digest != payloadDigest(env.Payload) {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(env.Payload, value); err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Put stores value under key. Failures are returned but safe to ignore: a
// failed Put only costs a future miss.
func (s *Store) Put(key, schema string, value any) error {
	if s == nil || s.dir == "" {
		return nil
	}
	payload, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("cellcache: put: %w", err)
	}
	env := envelope{Schema: schema, Digest: payloadDigest(payload), Payload: payload}
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("cellcache: put: %w", err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cellcache: put: %w", err)
	}
	// Write-then-rename so a crash mid-write leaves no half-entry for a
	// future Get to read (it would be caught by the digest anyway).
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cellcache: put: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cellcache: put: %w", err)
	}
	s.puts.Add(1)
	if s.count.Add(1) > s.max() {
		return s.evict()
	}
	return nil
}

// evict trims the store to maxEntries, oldest-modified first. One pass
// runs at a time: concurrent Puts that trip the threshold queue behind
// evictMu, find the store already trimmed, and return without removing
// anything.
func (s *Store) evict() error {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	max := int(s.max())
	entries, err := s.list()
	if err != nil {
		return err
	}
	s.count.Store(int64(len(entries)))
	if len(entries) <= max {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	var firstErr error
	for _, e := range entries[:len(entries)-max] {
		if err := os.Remove(e.path); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			s.evictions.Add(1)
			s.count.Add(-1)
		}
	}
	return firstErr
}

type entry struct {
	path  string
	mtime time.Time
}

// list walks the store's entry files.
func (s *Store) list() ([]entry, error) {
	var out []entry
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			out = append(out, entry{
				path:  filepath.Join(s.dir, sh.Name(), f.Name()),
				mtime: info.ModTime(),
			})
		}
	}
	return out, nil
}

// Len counts live entries (test/diagnostic helper).
func (s *Store) Len() int {
	if s == nil || s.dir == "" {
		return 0
	}
	entries, err := s.list()
	if err != nil {
		return 0
	}
	return len(entries)
}

// Clear removes every entry, keeping the store directory itself.
func (s *Store) Clear() error {
	if s == nil || s.dir == "" {
		return nil
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("cellcache: clear: %w", err)
	}
	for _, sh := range shards {
		if err := os.RemoveAll(filepath.Join(s.dir, sh.Name())); err != nil {
			return fmt.Errorf("cellcache: clear: %w", err)
		}
	}
	s.count.Store(0)
	return nil
}

// Stats snapshots the store's counters. Nil-safe.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}

// Dir reports the store root ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func payloadDigest(p []byte) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}
