package cache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type payload struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Tput  float64 `json:"tput"`
}

const schema = "test-cell/v1"

func mustKey(t *testing.T, sch string, cfg any) string {
	t.Helper()
	k, err := Key(sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "RBTree", Count: 42, Tput: 3.25}
	key := mustKey(t, schema, map[string]any{"workload": "RBTree", "threads": 8})

	var out payload
	if s.Get(key, schema, &out) {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, schema, in); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, schema, &out) {
		t.Fatal("miss after Put")
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestSchemaBumpInvalidates: a new code schema version must turn every
// existing entry into a miss — both through the key (different hash) and
// through the envelope check (same key, skewed schema).
func TestSchemaBumpInvalidates(t *testing.T) {
	s, _ := Open(t.TempDir())
	cfg := map[string]int{"threads": 4}
	oldKey := mustKey(t, "cell/v1", cfg)
	newKey := mustKey(t, "cell/v2", cfg)
	if oldKey == newKey {
		t.Fatal("schema bump did not change the key")
	}
	if err := s.Put(oldKey, "cell/v1", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(newKey, "cell/v2", &out) {
		t.Fatal("v2 key hit a v1 entry")
	}
	// Same key, different schema in the envelope: fail closed as a miss.
	if s.Get(oldKey, "cell/v2", &out) {
		t.Fatal("schema-skewed entry decoded as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("schema skew not counted as corrupt: %+v", st)
	}
}

// TestCorruptedEntryFallsBackToMiss: any damaged entry — truncated,
// bit-flipped payload, or garbage — is a miss, never an error, and a
// fresh Put repairs it.
func TestCorruptedEntryFallsBackToMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	in := payload{Name: "LFUCache", Count: 7}
	key := mustKey(t, schema, 1234)
	if err := s.Put(key, schema, in); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")

	corruptions := map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":    func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)/2] ^= 0x40; return c },
		"not-json":    func([]byte) []byte { return []byte("not json at all") },
		"wrong-shape": func([]byte) []byte { return []byte(`{"schema":"` + schema + `","digest":"x","payload":[1,2]}`) },
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, corrupt(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			before := s.Stats()
			var out payload
			if s.Get(key, schema, &out) {
				t.Fatal("corrupted entry returned a hit")
			}
			after := s.Stats()
			if after.Corrupt != before.Corrupt+1 || after.Misses != before.Misses+1 {
				t.Fatalf("corruption not counted: before %+v after %+v", before, after)
			}
			// The cell re-runs live and overwrites: store must recover.
			if err := s.Put(key, schema, in); err != nil {
				t.Fatal(err)
			}
			if !s.Get(key, schema, &out) || out != in {
				t.Fatalf("store did not recover after overwrite: %+v", out)
			}
		})
	}
}

// TestEvictionDropsOldest: past the entry bound, Put evicts the
// oldest-modified entries first.
func TestEvictionDropsOldest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.SetMaxEntries(3)
	keys := make([]string, 5)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i] = mustKey(t, schema, i)
		if err := s.Put(keys[i], schema, payload{Count: i}); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes: filesystem timestamp granularity would
		// otherwise tie every entry written in the same instant.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, keys[i][:2], keys[i]+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("len = %d after eviction, want 3", got)
	}
	var out payload
	for i, key := range keys {
		hit := s.Get(key, schema, &out)
		wantHit := i >= 2 // 0 and 1 are the oldest two of the five
		if hit != wantHit {
			t.Errorf("entry %d: hit=%v, want %v", i, hit, wantHit)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions counted: %+v", st)
	}
}

// TestStoreConcurrentPutsAndGets: one Store is shared by every sweep
// worker when -parallel combines with -cache, so Get/Put — and the
// eviction passes concurrent Puts trip — must be safe from many
// goroutines at once. Run under -race (the CI test job), this pins the
// store's thread-safety contract; the counter sums pin that no update
// was lost.
func TestStoreConcurrentPutsAndGets(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 40
		bound   = 32
	)
	s.SetMaxEntries(bound)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k, err := Key(schema, [2]int{g, i})
				if err != nil {
					t.Error(err)
					return
				}
				var out payload
				s.Get(k, schema, &out)
				if err := s.Put(k, schema, payload{Name: "cell", Count: g*perW + i}); err != nil {
					t.Error(err)
					return
				}
				s.Get(k, schema, &out)
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Puts != workers*perW {
		t.Fatalf("puts = %d, want %d: %+v", st.Puts, workers*perW, st)
	}
	// Every Get bumps exactly one of hits/misses, whatever the interleaving
	// with concurrent evictions.
	if got := st.Hits + st.Misses; got != 2*workers*perW {
		t.Fatalf("hits+misses = %d, want %d: %+v", got, 2*workers*perW, st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-entry bound after %d puts: %+v", bound, workers*perW, st)
	}
	// The count is approximate under concurrency (a racing Put can land
	// just after a pass lists the store), so the bound holds to within one
	// straggler per worker.
	if got := s.Len(); got > bound+workers {
		t.Fatalf("len = %d, eviction never enforced the %d-entry bound", got, bound)
	}
}

// TestReopenSeedsEvictionCount: a store reopened over an existing
// directory knows how many entries it already holds, so the first Put
// past the bound still triggers eviction.
func TestReopenSeedsEvictionCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(mustKey(t, schema, i), schema, payload{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetMaxEntries(3)
	if err := s2.Put(mustKey(t, schema, 99), schema, payload{Count: 99}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != 3 {
		t.Fatalf("len = %d after the reopened store's first over-bound put, want 3", got)
	}
	if st := s2.Stats(); st.Evictions == 0 {
		t.Fatalf("reopened store never evicted: %+v", st)
	}
}

func TestClearKeepsRoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := mustKey(t, schema, "x")
	if err := s.Put(key, schema, payload{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after clear", s.Len())
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("clear removed the store root: %v", err)
	}
	// The store stays usable.
	if err := s.Put(key, schema, payload{Count: 9}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Get(key, schema, &out) || out.Count != 9 {
		t.Fatal("store unusable after clear")
	}
}

// TestNilStoreAlwaysMisses: the nil store is the caching-off mode; every
// operation is a cheap no-op.
func TestNilStoreAlwaysMisses(t *testing.T) {
	var s *Store
	var out payload
	if s.Get("abcd", schema, &out) {
		t.Fatal("nil store hit")
	}
	if err := s.Put("abcd", schema, payload{}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dir() != "" {
		t.Fatal("nil store has contents")
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

// TestKeyCanonical: equal configurations always produce equal keys; any
// changed field or schema produces a different one.
func TestKeyCanonical(t *testing.T) {
	type cfg struct {
		Workload string `json:"workload"`
		Threads  int    `json:"threads"`
	}
	a := mustKey(t, schema, cfg{"RBTree", 8})
	b := mustKey(t, schema, cfg{"RBTree", 8})
	if a != b {
		t.Fatal("equal configs produced different keys")
	}
	if c := mustKey(t, schema, cfg{"RBTree", 16}); c == a {
		t.Fatal("changed field kept the key")
	}
	if c := mustKey(t, schema+"x", cfg{"RBTree", 8}); c == a {
		t.Fatal("changed schema kept the key")
	}
	if _, err := Key(schema, func() {}); err == nil {
		t.Fatal("unencodable config produced a key")
	}
}
