package cache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

type payload struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Tput  float64 `json:"tput"`
}

const schema = "test-cell/v1"

func mustKey(t *testing.T, sch string, cfg any) string {
	t.Helper()
	k, err := Key(sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "RBTree", Count: 42, Tput: 3.25}
	key := mustKey(t, schema, map[string]any{"workload": "RBTree", "threads": 8})

	var out payload
	if s.Get(key, schema, &out) {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, schema, in); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, schema, &out) {
		t.Fatal("miss after Put")
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestSchemaBumpInvalidates: a new code schema version must turn every
// existing entry into a miss — both through the key (different hash) and
// through the envelope check (same key, skewed schema).
func TestSchemaBumpInvalidates(t *testing.T) {
	s, _ := Open(t.TempDir())
	cfg := map[string]int{"threads": 4}
	oldKey := mustKey(t, "cell/v1", cfg)
	newKey := mustKey(t, "cell/v2", cfg)
	if oldKey == newKey {
		t.Fatal("schema bump did not change the key")
	}
	if err := s.Put(oldKey, "cell/v1", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(newKey, "cell/v2", &out) {
		t.Fatal("v2 key hit a v1 entry")
	}
	// Same key, different schema in the envelope: fail closed as a miss.
	if s.Get(oldKey, "cell/v2", &out) {
		t.Fatal("schema-skewed entry decoded as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("schema skew not counted as corrupt: %+v", st)
	}
}

// TestCorruptedEntryFallsBackToMiss: any damaged entry — truncated,
// bit-flipped payload, or garbage — is a miss, never an error, and a
// fresh Put repairs it.
func TestCorruptedEntryFallsBackToMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	in := payload{Name: "LFUCache", Count: 7}
	key := mustKey(t, schema, 1234)
	if err := s.Put(key, schema, in); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")

	corruptions := map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip":    func(b []byte) []byte { c := append([]byte{}, b...); c[len(c)/2] ^= 0x40; return c },
		"not-json":    func([]byte) []byte { return []byte("not json at all") },
		"wrong-shape": func([]byte) []byte { return []byte(`{"schema":"` + schema + `","digest":"x","payload":[1,2]}`) },
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, corrupt(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			before := s.Stats()
			var out payload
			if s.Get(key, schema, &out) {
				t.Fatal("corrupted entry returned a hit")
			}
			after := s.Stats()
			if after.Corrupt != before.Corrupt+1 || after.Misses != before.Misses+1 {
				t.Fatalf("corruption not counted: before %+v after %+v", before, after)
			}
			// The cell re-runs live and overwrites: store must recover.
			if err := s.Put(key, schema, in); err != nil {
				t.Fatal(err)
			}
			if !s.Get(key, schema, &out) || out != in {
				t.Fatalf("store did not recover after overwrite: %+v", out)
			}
		})
	}
}

// TestEvictionDropsOldest: past the entry bound, Put evicts the
// oldest-modified entries first.
func TestEvictionDropsOldest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.SetMaxEntries(3)
	keys := make([]string, 5)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i] = mustKey(t, schema, i)
		if err := s.Put(keys[i], schema, payload{Count: i}); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes: filesystem timestamp granularity would
		// otherwise tie every entry written in the same instant.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, keys[i][:2], keys[i]+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("len = %d after eviction, want 3", got)
	}
	var out payload
	for i, key := range keys {
		hit := s.Get(key, schema, &out)
		wantHit := i >= 2 // 0 and 1 are the oldest two of the five
		if hit != wantHit {
			t.Errorf("entry %d: hit=%v, want %v", i, hit, wantHit)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions counted: %+v", st)
	}
}

func TestClearKeepsRoot(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := mustKey(t, schema, "x")
	if err := s.Put(key, schema, payload{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after clear", s.Len())
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("clear removed the store root: %v", err)
	}
	// The store stays usable.
	if err := s.Put(key, schema, payload{Count: 9}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Get(key, schema, &out) || out.Count != 9 {
		t.Fatal("store unusable after clear")
	}
}

// TestNilStoreAlwaysMisses: the nil store is the caching-off mode; every
// operation is a cheap no-op.
func TestNilStoreAlwaysMisses(t *testing.T) {
	var s *Store
	var out payload
	if s.Get("abcd", schema, &out) {
		t.Fatal("nil store hit")
	}
	if err := s.Put("abcd", schema, payload{}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dir() != "" {
		t.Fatal("nil store has contents")
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

// TestKeyCanonical: equal configurations always produce equal keys; any
// changed field or schema produces a different one.
func TestKeyCanonical(t *testing.T) {
	type cfg struct {
		Workload string `json:"workload"`
		Threads  int    `json:"threads"`
	}
	a := mustKey(t, schema, cfg{"RBTree", 8})
	b := mustKey(t, schema, cfg{"RBTree", 8})
	if a != b {
		t.Fatal("equal configs produced different keys")
	}
	if c := mustKey(t, schema, cfg{"RBTree", 16}); c == a {
		t.Fatal("changed field kept the key")
	}
	if c := mustKey(t, schema+"x", cfg{"RBTree", 8}); c == a {
		t.Fatal("changed schema kept the key")
	}
	if _, err := Key(schema, func() {}); err == nil {
		t.Fatal("unencodable config produced a key")
	}
}
