// Package sweepexec is the parallel sweep engine: it shards a grid of
// fully independent, deterministic simulation cells across a bounded pool
// of OS-thread-backed goroutines while delivering every result to the
// caller in submission order. Because each cell of a paper sweep is a
// seeded, byte-stable simulation with no shared state, parallel execution
// is free of nondeterminism: the only ordered things in a sweep are the
// result callbacks, and Map serializes exactly those. A sweep run with
// Workers=1 and one with Workers=N produce byte-identical artifacts — the
// contract pinned by identity_test.go.
//
// The shape is deliberate: workers *compute*, the calling goroutine
// *emits*. Progress sinks, bench-artifact recorders, and -json encoders
// never need their own locking, and the emitted stream is the serial
// stream.
package sweepexec

import (
	"errors"
	"runtime"
	"sync"
)

// ErrStopped is returned by Map when the Exec's Stop channel closed before
// every cell ran. Results completed before the stop were already emitted in
// order, so callers can flush partial artifacts (the SIGINT path of
// cmd/paperbench).
var ErrStopped = errors.New("sweepexec: sweep stopped")

// Exec configures one sweep execution.
type Exec struct {
	// Workers is the number of concurrent cells: 1 runs serially on the
	// calling goroutine (no pool, bit-for-bit the classic loop), <= 0
	// selects GOMAXPROCS.
	Workers int
	// Stop, when non-nil, cancels the sweep once closed: no new cells are
	// scheduled, in-flight cells finish and are emitted if contiguous, and
	// Map returns ErrStopped.
	Stop <-chan struct{}
}

// workers resolves the pool size for a grid of n cells.
func (e Exec) workers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// stopped polls the cancellation channel.
func (e Exec) stopped() bool {
	select {
	case <-e.Stop:
		return true
	default:
		return false
	}
}

// slot is one cell's parked outcome, waiting for in-order emission.
type slot[T any] struct {
	v    T
	err  error
	pv   any // recovered panic value
	pan  bool
	done bool
}

// Map runs fn(i) for every i in [0, n) on the pool and calls emit(i, v) in
// strictly increasing i order on the calling goroutine. fn must be safe to
// call concurrently from multiple goroutines; emit never is called
// concurrently and never out of order, so it may touch shared sinks freely.
// emit may be nil.
//
// Error semantics match the serial loop: the returned error is the
// lowest-index fn error (cells after it may have executed — they are
// side-effect-free simulations — but were not emitted), or the first emit
// error. A panic in fn resurfaces on the calling goroutine after the pool
// drains. All goroutines are joined before Map returns, whatever the path
// out.
func Map[T any](e Exec, n int, fn func(int) (T, error), emit func(int, T) error) error {
	if n <= 0 {
		return nil
	}
	if e.workers(n) == 1 {
		return mapSerial(e, n, fn, emit)
	}
	return mapParallel(e, n, fn, emit)
}

// mapSerial is the Workers=1 fast path: no goroutines, no locks, identical
// control flow to the classic nested sweep loop.
func mapSerial[T any](e Exec, n int, fn func(int) (T, error), emit func(int, T) error) error {
	for i := 0; i < n; i++ {
		if e.stopped() {
			return ErrStopped
		}
		v, err := fn(i)
		if err != nil {
			return err
		}
		if emit != nil {
			if err := emit(i, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func mapParallel[T any](e Exec, n int, fn func(int) (T, error), emit func(int, T) error) error {
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		slots  = make([]slot[T], n)
		next   int  // next index to hand to a worker
		halt   bool // stop scheduling (error, panic, emit failure, or Stop)
		active int  // workers still running
		wg     sync.WaitGroup
	)
	w := e.workers(n)
	active = w
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				active--
				cond.Broadcast()
				mu.Unlock()
			}()
			for {
				mu.Lock()
				if halt || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e.stopped() {
					// i was claimed but will never run: the hole makes the
					// collector stop at the completed prefix.
					mu.Lock()
					halt = true
					cond.Broadcast()
					mu.Unlock()
					return
				}
				s := runCell(fn, i)
				mu.Lock()
				slots[i] = s
				if s.err != nil || s.pan {
					halt = true
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	// Collector: the calling goroutine emits the contiguous done prefix.
	var firstErr error
	stoppedEarly := false
	mu.Lock()
	for i := 0; i < n; i++ {
		for !slots[i].done && active > 0 {
			cond.Wait()
		}
		if !slots[i].done {
			// A hole: scheduling halted before cell i ran (Stop, or an
			// earlier-index error already captured below).
			stoppedEarly = true
			break
		}
		s := slots[i]
		if s.pan || s.err != nil {
			firstErr = s.err
			if s.pan {
				// Re-panic after the pool drains, with the original value.
				mu.Unlock()
				wg.Wait()
				panic(s.pv)
			}
			break
		}
		if emit != nil {
			mu.Unlock()
			err := emit(i, s.v)
			mu.Lock()
			if err != nil {
				firstErr = err
				halt = true
				break
			}
		}
	}
	halt = true
	cond.Broadcast()
	mu.Unlock()
	wg.Wait()

	switch {
	case firstErr != nil:
		return firstErr
	case stoppedEarly:
		// ErrStopped only when a cell actually went unrun: a Stop that
		// closes after the last cell was emitted is a complete sweep,
		// exactly as the serial loop (which polls only before running a
		// cell) would report it.
		return ErrStopped
	}
	return nil
}

// runCell invokes one cell, converting a panic into a parked value so the
// collector can resurface it on the caller's stack.
func runCell[T any](fn func(int) (T, error), i int) (s slot[T]) {
	defer func() {
		s.done = true
		if pv := recover(); pv != nil {
			s.pan, s.pv = true, pv
		}
	}()
	s.v, s.err = fn(i)
	return
}
