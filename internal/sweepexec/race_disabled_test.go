//go:build !race

package sweepexec_test

const raceEnabled = false
