//go:build race

package sweepexec_test

// raceEnabled mirrors the -race build flag so the identity matrix — pure
// byte comparison, ~6x slower under the detector, and already covered for
// data races by the pool tests in sweepexec_test.go — can skip itself in
// race builds.
const raceEnabled = true
