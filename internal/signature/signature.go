// Package signature implements the Bloom-filter access signatures used by
// FlexTM to summarize transactional read and write sets (Section 3.1 of the
// paper, after Bulk and LogTM-SE).
//
// The hardware configuration matches the paper's evaluation setup: a
// 2048-bit filter partitioned into 4 banks, each indexed by an independent
// H3-class hash of the line address. Signatures are conservative: Member may
// report false positives but never false negatives, so a miss proves the
// address was not inserted.
package signature

import (
	"math"
	"math/bits"

	"flextm/internal/memory"
)

// Default hardware parameters from Table 2 / Section 7.1 of the paper.
const (
	// DefaultBits is the total signature width in bits.
	DefaultBits = 2048
	// DefaultBanks is the number of independently hashed banks.
	DefaultBanks = 4
)

// Config describes a signature's geometry.
type Config struct {
	Bits  int // total width; must be a multiple of 64*Banks
	Banks int // number of banks (hash functions)
}

// DefaultConfig returns the paper's 2048-bit, 4-banked geometry.
func DefaultConfig() Config { return Config{Bits: DefaultBits, Banks: DefaultBanks} }

// Sig is a Bloom-filter signature over cache-line addresses. The zero value
// is not usable; call New.
type Sig struct {
	cfg      Config
	bankBits int
	words    []uint64 // Bits/64 words, bank-major
	inserts  int
	// audit, when non-nil, shadows the inserted set precisely so membership
	// tests can be split into true hits and Bloom false positives (the
	// telemetry layer's empirical FP accounting). Hardware has no such
	// shadow; it exists purely for measurement and is off by default.
	audit map[memory.LineAddr]struct{}
}

// New returns an empty signature with the given geometry.
func New(cfg Config) *Sig {
	if cfg.Banks <= 0 || cfg.Bits <= 0 || cfg.Bits%(64*cfg.Banks) != 0 {
		panic("signature: invalid config")
	}
	bankBits := cfg.Bits / cfg.Banks
	if bankBits&(bankBits-1) != 0 {
		panic("signature: bank size must be a power of two")
	}
	return &Sig{cfg: cfg, bankBits: bankBits, words: make([]uint64, cfg.Bits/64)}
}

// NewDefault returns an empty signature with the paper's geometry.
func NewDefault() *Sig { return New(DefaultConfig()) }

// h3 mixes a line address with a per-bank constant. The multiply-xorshift
// construction approximates the H3 hash family used in hardware signature
// studies; what matters for fidelity is independence across banks.
var bankSalts = [...]uint64{
	0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9, 0x27D4EB2F165667C5,
	0x85EBCA77C2B2AE63, 0xFF51AFD7ED558CCD, 0xC4CEB9FE1A85EC53, 0x2545F4914F6CDD1D,
}

func h3(l memory.LineAddr, bank int) uint64 {
	x := uint64(l) * bankSalts[bank%len(bankSalts)]
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return x
}

func (s *Sig) bit(l memory.LineAddr, bank int) (word, mask int) {
	h := h3(l, bank) & uint64(s.bankBits-1)
	idx := bank*s.bankBits + int(h)
	return idx / 64, idx % 64
}

// Insert adds a line address to the signature (the paper's "insert [%r],Sig"
// instruction, Table 4a).
func (s *Sig) Insert(l memory.LineAddr) {
	for b := 0; b < s.cfg.Banks; b++ {
		w, m := s.bit(l, b)
		s.words[w] |= 1 << m
	}
	s.inserts++
	if s.audit != nil {
		s.audit[l] = struct{}{}
	}
}

// Member reports whether l may have been inserted (the paper's "member"
// instruction). False positives are possible; false negatives are not.
func (s *Sig) Member(l memory.LineAddr) bool {
	for b := 0; b < s.cfg.Banks; b++ {
		w, m := s.bit(l, b)
		if s.words[w]&(1<<m) == 0 {
			return false
		}
	}
	return true
}

// Clear zeroes the signature (the paper's "clear" instruction; in hardware a
// flash clear).
func (s *Sig) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.inserts = 0
	if s.audit != nil {
		clear(s.audit)
	}
}

// Union ORs other into s. The OS uses this to build the summary signatures
// (RSsig/WSsig) installed at the directory when a transaction is suspended
// (Section 5). Geometries must match.
func (s *Sig) Union(other *Sig) {
	if s.cfg != other.cfg {
		panic("signature: Union of mismatched geometries")
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
	s.inserts += other.inserts
	if s.audit != nil && other.audit != nil {
		for l := range other.audit {
			s.audit[l] = struct{}{}
		}
	}
}

// CopyFrom overwrites s with other's contents (used when the OS restores a
// rescheduled transaction's signatures to the core, Section 5).
func (s *Sig) CopyFrom(other *Sig) {
	if s.cfg != other.cfg {
		panic("signature: CopyFrom mismatched geometries")
	}
	copy(s.words, other.words)
	s.inserts = other.inserts
	if s.audit != nil {
		clear(s.audit)
		for l := range other.audit {
			s.audit[l] = struct{}{}
		}
	}
}

// Clone returns an independent copy of s (audit mode included).
func (s *Sig) Clone() *Sig {
	n := New(s.cfg)
	if s.audit != nil {
		n.EnableAudit()
	}
	n.CopyFrom(s)
	return n
}

// Rehash returns a signature with geometry cfg holding exactly the lines in
// s's precise shadow set — the software half of a live widen/rehash: the
// runtime reads the shadow set (measurement state the hardware models as a
// victim structure) and re-inserts every member into the new filter, so the
// result has no false negatives even mid-transaction. It panics when audit
// is off, because without ground truth a narrower-to-wider rehash could
// silently drop members (the Bloom bits alone cannot be enumerated).
func (s *Sig) Rehash(cfg Config) *Sig {
	if s.audit == nil {
		panic("signature: Rehash requires audit mode (no precise member set)")
	}
	n := New(cfg)
	n.EnableAudit()
	for l := range s.audit {
		n.Insert(l)
	}
	return n
}

// EnableAudit switches on the precise shadow set. Only lines inserted after
// the call are shadowed, so callers should enable it while the signature is
// empty (FlexTM enables it at telemetry attach, before any transaction).
func (s *Sig) EnableAudit() {
	if s.audit == nil {
		s.audit = make(map[memory.LineAddr]struct{})
	}
}

// AuditEnabled reports whether the precise shadow set is maintained.
func (s *Sig) AuditEnabled() bool { return s.audit != nil }

// Inserted reports ground truth: whether l was actually inserted since the
// last Clear. Only meaningful with audit enabled; a true Member result with
// a false Inserted result is a Bloom false positive.
func (s *Sig) Inserted(l memory.LineAddr) bool {
	_, ok := s.audit[l]
	return ok
}

// Distinct returns the number of distinct lines inserted since the last
// Clear when audit is enabled; otherwise it falls back to the Insert-call
// count (an upper bound).
func (s *Sig) Distinct() int {
	if s.audit != nil {
		return len(s.audit)
	}
	return s.inserts
}

// PredictedFPR returns the analytic false-positive estimate for the
// signature's current occupancy (FalsePositiveRate at Distinct()
// insertions).
func (s *Sig) PredictedFPR() float64 {
	return FalsePositiveRate(s.cfg, s.Distinct())
}

// Empty reports whether no address has been inserted since the last Clear.
func (s *Sig) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits (occupancy).
func (s *Sig) PopCount() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Inserts returns the number of Insert calls since the last Clear
// (an upper bound on distinct lines inserted).
func (s *Sig) Inserts() int { return s.inserts }

// ReadHash returns the concatenated per-bank hash of l (the paper's
// "read-hash" instruction), useful to software that wants to reuse the
// hardware hash, e.g. for overflow-table indexing.
func (s *Sig) ReadHash(l memory.LineAddr) uint64 {
	var h uint64
	for b := 0; b < s.cfg.Banks; b++ {
		h = h<<16 | (h3(l, b) & uint64(s.bankBits-1))
	}
	return h
}

// FalsePositiveRate estimates the probability that Member returns true for
// an address never inserted, given n distinct insertions, using the standard
// partitioned-Bloom-filter formula. Used by the signature-width ablation.
func FalsePositiveRate(cfg Config, n int) float64 {
	bankBits := float64(cfg.Bits / cfg.Banks)
	p := 1 - math.Pow(1-1/bankBits, float64(n))
	return math.Pow(p, float64(cfg.Banks))
}

// Intersects reports whether the two signatures may share an inserted
// address. A false result is definitive: inserting the same line sets the
// same bit positions in both filters, so a zero bitwise AND proves the
// inserted sets are disjoint. A true result may be a false positive.
func (s *Sig) Intersects(other *Sig) bool {
	if s.cfg != other.cfg {
		panic("signature: Intersects with mismatched geometries")
	}
	for i, w := range s.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}
