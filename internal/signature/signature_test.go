package signature

import (
	"testing"
	"testing/quick"

	"flextm/internal/memory"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(lines []uint32) bool {
		s := NewDefault()
		for _, l := range lines {
			s.Insert(memory.LineAddr(l))
		}
		for _, l := range lines {
			if !s.Member(memory.LineAddr(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySignatureHasNoMembers(t *testing.T) {
	s := NewDefault()
	for l := memory.LineAddr(0); l < 10000; l++ {
		if s.Member(l) {
			t.Fatalf("empty signature claims membership of %d", l)
		}
	}
	if !s.Empty() {
		t.Fatal("Empty() = false on fresh signature")
	}
}

func TestClearRemovesAll(t *testing.T) {
	s := NewDefault()
	for l := memory.LineAddr(0); l < 100; l++ {
		s.Insert(l)
	}
	s.Clear()
	if !s.Empty() || s.PopCount() != 0 || s.Inserts() != 0 {
		t.Fatal("Clear left residue")
	}
	if s.Member(42) {
		t.Fatal("cleared signature claims membership")
	}
}

func TestFalsePositivesAreRareAtPaperScale(t *testing.T) {
	// The paper's transactions read ~100 lines; with a 2048-bit 4-banked
	// filter the false-positive rate should be well under 1%.
	s := NewDefault()
	for l := memory.LineAddr(0); l < 100; l++ {
		s.Insert(l * 3)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		l := memory.LineAddr(1<<32 + i)
		if s.Member(l) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.01 {
		t.Fatalf("false positive rate %.4f too high for 100 inserts", rate)
	}
	pred := FalsePositiveRate(DefaultConfig(), 100)
	if rate > pred*5+0.001 {
		t.Fatalf("measured FP rate %.5f far above analytic %.5f", rate, pred)
	}
}

func TestUnionIsSuperset(t *testing.T) {
	f := func(a, b []uint16) bool {
		sa, sb := NewDefault(), NewDefault()
		for _, l := range a {
			sa.Insert(memory.LineAddr(l))
		}
		for _, l := range b {
			sb.Insert(memory.LineAddr(l))
		}
		u := sa.Clone()
		u.Union(sb)
		for _, l := range a {
			if !u.Member(memory.LineAddr(l)) {
				return false
			}
		}
		for _, l := range b {
			if !u.Member(memory.LineAddr(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := NewDefault()
	s.Insert(1)
	c := s.Clone()
	c.Insert(2)
	if s.Member(2) && !anotherBankCollision(s, 2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Member(1) || !c.Member(2) {
		t.Fatal("clone lost contents")
	}
}

// anotherBankCollision reports whether l is a false positive in s, which is
// astronomically unlikely with one insert but keeps the test honest.
func anotherBankCollision(s *Sig, l memory.LineAddr) bool {
	return s.Member(l)
}

func TestBanksUseIndependentHashes(t *testing.T) {
	s := NewDefault()
	s.Insert(12345)
	// With 4 independent banks a single insert sets exactly 4 bits (unless
	// two banks map to the same global position, impossible here since banks
	// are disjoint bit ranges).
	if got := s.PopCount(); got != 4 {
		t.Fatalf("PopCount after one insert = %d, want 4", got)
	}
}

func TestFalsePositiveRateMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	prev := 0.0
	for n := 0; n <= 1000; n += 100 {
		r := FalsePositiveRate(cfg, n)
		if r < prev {
			t.Fatalf("FP rate not monotonic at n=%d", n)
		}
		prev = r
	}
	if FalsePositiveRate(cfg, 0) != 0 {
		t.Fatal("FP rate with 0 inserts should be 0")
	}
}

func TestWiderSignatureFewerFalsePositives(t *testing.T) {
	narrow := FalsePositiveRate(Config{Bits: 256, Banks: 4}, 200)
	wide := FalsePositiveRate(Config{Bits: 4096, Banks: 4}, 200)
	if wide >= narrow {
		t.Fatalf("wide FP %.4f >= narrow FP %.4f", wide, narrow)
	}
}

func TestReadHashDeterministic(t *testing.T) {
	s := NewDefault()
	if s.ReadHash(77) != s.ReadHash(77) {
		t.Fatal("ReadHash not deterministic")
	}
	if s.ReadHash(77) == s.ReadHash(78) {
		t.Fatal("ReadHash collides on adjacent lines (suspicious)")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Bits: 0, Banks: 4},
		{Bits: 2048, Banks: 0},
		{Bits: 100, Banks: 4},    // not a multiple of 64*banks
		{Bits: 64 * 3, Banks: 1}, // bank size not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCopyFromOverwrites(t *testing.T) {
	a, b := NewDefault(), NewDefault()
	a.Insert(1)
	b.Insert(2)
	a.CopyFrom(b)
	if !a.Member(2) {
		t.Fatal("CopyFrom did not copy contents")
	}
	if a.Member(1) {
		t.Fatal("CopyFrom did not overwrite prior contents")
	}
}

func TestIntersectsSoundness(t *testing.T) {
	// Property: disjoint inserted sets may report Intersects (false
	// positive), but common members must always report true, and a false
	// result must imply genuinely disjoint sets.
	f := func(a, b []uint16) bool {
		sa, sb := NewDefault(), NewDefault()
		inA := map[memory.LineAddr]bool{}
		for _, l := range a {
			sa.Insert(memory.LineAddr(l))
			inA[memory.LineAddr(l)] = true
		}
		common := false
		for _, l := range b {
			sb.Insert(memory.LineAddr(l))
			if inA[memory.LineAddr(l)] {
				common = true
			}
		}
		got := sa.Intersects(sb)
		if common && !got {
			return false // missed a real intersection: unsound
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectsDisjointUsuallyFalse(t *testing.T) {
	sa, sb := NewDefault(), NewDefault()
	for i := 0; i < 10; i++ {
		sa.Insert(memory.LineAddr(i))
		sb.Insert(memory.LineAddr(1000 + i))
	}
	if sa.Intersects(sb) {
		t.Skip("rare aliasing between small disjoint sets; acceptable")
	}
}

func BenchmarkInsert(b *testing.B) {
	s := NewDefault()
	for i := 0; i < b.N; i++ {
		s.Insert(memory.LineAddr(i))
	}
}

func BenchmarkMember(b *testing.B) {
	s := NewDefault()
	for i := 0; i < 100; i++ {
		s.Insert(memory.LineAddr(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Member(memory.LineAddr(i % 200))
	}
}

func BenchmarkIntersects(b *testing.B) {
	sa, sb := NewDefault(), NewDefault()
	for i := 0; i < 50; i++ {
		sa.Insert(memory.LineAddr(i))
		sb.Insert(memory.LineAddr(i + 1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.Intersects(sb)
	}
}
