package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flextm/internal/memory"
)

// validGeometries is a spread of legal configs: New requires Bits to be a
// multiple of 64*Banks and each bank to be a power-of-two bits wide.
var validGeometries = []Config{
	{Bits: 64, Banks: 1},
	{Bits: 128, Banks: 2},
	{Bits: 256, Banks: 2},
	{Bits: 256, Banks: 4},
	{Bits: 512, Banks: 8},
	{Bits: 1024, Banks: 4},
	{Bits: DefaultBits, Banks: DefaultBanks},
}

func TestSignatureNoFalseNegatives(t *testing.T) {
	// Property: for any inserted set under any valid geometry, Member must
	// hit every inserted line. Signatures are conservative summaries; a
	// false negative would let a conflicting access slip past CST
	// construction entirely, which is a correctness (not precision) bug.
	f := func(geoPick uint8, tags []uint32) bool {
		cfg := validGeometries[int(geoPick)%len(validGeometries)]
		s := New(cfg)
		inserted := map[memory.LineAddr]bool{}
		for _, tg := range tags {
			l := memory.LineAddr(tg)
			s.Insert(l)
			inserted[l] = true
			// Membership must hold immediately after the insert...
			if !s.Member(l) {
				return false
			}
		}
		// ...and still hold after every subsequent insert (bits only OR in).
		for l := range inserted {
			if !s.Member(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureUnionNoFalseNegatives(t *testing.T) {
	// Property: Union (the OS summary-signature path, Section 5) preserves
	// membership of everything inserted into either operand.
	f := func(geoPick uint8, a, b []uint32) bool {
		cfg := validGeometries[int(geoPick)%len(validGeometries)]
		sa, sb := New(cfg), New(cfg)
		for _, tg := range a {
			sa.Insert(memory.LineAddr(tg))
		}
		for _, tg := range b {
			sb.Insert(memory.LineAddr(tg))
		}
		sa.Union(sb)
		for _, tg := range append(append([]uint32{}, a...), b...) {
			if !sa.Member(memory.LineAddr(tg)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureFalsePositiveRateWithinBound(t *testing.T) {
	// The -fig sig ablation plots FalsePositiveRate as the analytic model;
	// this test pins the implementation to it: the observed FP rate over a
	// large probe set must stay within 2x of the model (plus a small
	// absolute epsilon so near-zero rates don't fail on a handful of
	// unlucky probes). A rate far above the bound means the H3 mixing is
	// broken or banks are correlated; far below would mean the model (and
	// the paper-figure curve built from it) no longer describes the
	// hardware we simulate.
	const probes = 20000
	cases := []struct {
		name string
		cfg  Config
		n    int
	}{
		{"default/n=8", DefaultConfig(), 8},
		{"default/n=32", DefaultConfig(), 32},
		{"default/n=128", DefaultConfig(), 128},
		{"256x2/n=32", Config{Bits: 256, Banks: 2}, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5197A7))
			s := New(tc.cfg)
			s.EnableAudit()
			for s.Distinct() < tc.n {
				s.Insert(memory.LineAddr(rng.Uint64() >> 1))
			}
			fp, tried := 0, 0
			for tried < probes {
				l := memory.LineAddr(rng.Uint64() >> 1)
				if s.Inserted(l) {
					continue // probe only genuine non-members
				}
				tried++
				if s.Member(l) {
					fp++
				}
			}
			got := float64(fp) / float64(tried)
			want := FalsePositiveRate(tc.cfg, tc.n)
			if bound := 2*want + 0.002; got > bound {
				t.Fatalf("observed FP rate %.5f (%d/%d) exceeds bound %.5f (2x analytic %.5f)",
					got, fp, tried, bound, want)
			}
			// Sanity in the other direction for the dense cases: a filter
			// whose Member never false-positives at meaningful occupancy
			// isn't a Bloom filter (probably hashing into too few bits).
			if want > 0.01 && got < want/4 {
				t.Fatalf("observed FP rate %.5f implausibly below analytic %.5f", got, want)
			}
		})
	}
}

func TestSignatureIntersectsDisjointIsDefinitive(t *testing.T) {
	// Property: Intersects returning false proves the inserted sets are
	// disjoint — shared lines set identical bit positions in both filters.
	f := func(a, b []uint32) bool {
		sa, sb := New(DefaultConfig()), New(DefaultConfig())
		as := map[memory.LineAddr]bool{}
		for _, tg := range a {
			l := memory.LineAddr(tg)
			sa.Insert(l)
			as[l] = true
		}
		shared := false
		for _, tg := range b {
			l := memory.LineAddr(tg)
			sb.Insert(l)
			if as[l] {
				shared = true
			}
		}
		if shared && !sa.Intersects(sb) {
			return false // a real overlap must be reported
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
