package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// Vacation implements the travel-reservation workload of Workload-Set 2
// (after STAMP's vacation, via SigTM): an in-memory database whose tables —
// cars, flights, rooms — are red-black trees, plus a customer table.
// Client transactions either query relations (read-only) or make
// reservations (read-write), streaming ~100 entries through the trees.
//
// Two contention modes, as in Table 3(b):
//
//	Low  — 90% of relations queried, read-only tasks dominate
//	High — 10% of relations queried (hot subset), 50/50 read-only/read-write
type Vacation struct {
	high      bool
	tables    [3]rbt // cars, flights, rooms
	customers rbt
	alloc     *memory.Allocator
}

// Database scale.
const (
	vacRelations    = 256 // rows per table
	vacCustomers    = 128
	vacQueriesPerTx = 10
	vacInitialSeats = 100
)

// Row values pack (available << 16) | price.
func packRow(avail, price uint64) uint64 { return avail<<16 | price }
func rowAvail(v uint64) uint64           { return v >> 16 }
func rowPrice(v uint64) uint64           { return v & 0xFFFF }

// NewVacation returns an unconfigured Vacation; call Setup. high selects
// the high-contention configuration.
func NewVacation(high bool) *Vacation { return &Vacation{high: high} }

// Name implements Workload.
func (w *Vacation) Name() string {
	if w.high {
		return "Vacation-High"
	}
	return "Vacation-Low"
}

// Setup implements Workload: populate the three relation tables and the
// customer balances.
func (w *Vacation) Setup(env *Env) {
	w.alloc = env.Alloc
	a := access{tx: envTxn{env}, alloc: env.Alloc}
	for t := range w.tables {
		w.tables[t] = newRBT(env)
		for id := uint64(0); id < vacRelations; id++ {
			w.tables[t].insert(a, id, packRow(vacInitialSeats, 50+id%100))
		}
	}
	w.customers = newRBT(env)
	for id := uint64(0); id < vacCustomers; id++ {
		w.customers.insert(a, id, 0)
	}
}

// queryRange returns the span of row ids tasks touch: the whole table in
// low contention, a hot 10% in high contention.
func (w *Vacation) queryRange() int {
	if w.high {
		return vacRelations / 10
	}
	return vacRelations * 9 / 10
}

// readOnlyFraction reflects the task mixes of Table 3(b): read-only tasks
// dominate in low contention; 50/50 in high.
func (w *Vacation) readOnlyFraction() float64 {
	if w.high {
		return 0.5
	}
	return 0.9
}

// Op implements Workload: one client task.
func (w *Vacation) Op(th tmapi.Thread) {
	r := th.Rand()
	rng := w.queryRange()
	readOnly := r.Float64() < w.readOnlyFraction()
	table := w.tables[r.Intn(len(w.tables))]
	var ids [vacQueriesPerTx]uint64
	for i := range ids {
		ids[i] = uint64(r.Intn(rng))
	}
	customer := uint64(r.Intn(vacCustomers))

	th.Atomic(func(tx tmapi.Txn) {
		th.Work(500) // ~10 tree queries of instruction work
		a := access{tx: tx, alloc: w.alloc}
		// Query phase: stream the candidate rows through the tree, finding
		// the cheapest one with availability.
		bestID, bestPrice := uint64(0), uint64(1<<62)
		found := false
		for _, id := range ids {
			v, ok := table.lookup(a, id)
			if !ok {
				continue
			}
			if rowAvail(v) > 0 && rowPrice(v) < bestPrice {
				bestID, bestPrice, found = id, rowPrice(v), true
			}
		}
		if readOnly || !found {
			return
		}
		// Reservation: decrement availability, charge the customer.
		v, _ := table.lookup(a, bestID)
		if rowAvail(v) == 0 {
			return
		}
		table.update(a, bestID, packRow(rowAvail(v)-1, rowPrice(v)))
		bal, _ := w.customers.lookup(a, customer)
		w.customers.update(a, customer, bal+bestPrice)
	})
}

// Verify implements Workload: tree invariants hold, no row oversold, and
// the money conserves — total customer spend equals the sum over rows of
// (initial - available) * price.
func (w *Vacation) Verify(env *Env) error {
	var owed uint64
	for t := range w.tables {
		if _, err := verifyRBT(env, w.tables[t].root); err != nil {
			return fmt.Errorf("vacation table %d: %w", t, err)
		}
		for id := uint64(0); id < vacRelations; id++ {
			v, ok := readRBT(env, w.tables[t].root, id)
			if !ok {
				return fmt.Errorf("vacation: row %d missing from table %d", id, t)
			}
			if rowAvail(v) > vacInitialSeats {
				return fmt.Errorf("vacation: row %d oversold (avail %d)", id, rowAvail(v))
			}
			owed += (vacInitialSeats - rowAvail(v)) * rowPrice(v)
		}
	}
	if _, err := verifyRBT(env, w.customers.root); err != nil {
		return fmt.Errorf("vacation customers: %w", err)
	}
	var spent uint64
	for id := uint64(0); id < vacCustomers; id++ {
		bal, ok := readRBT(env, w.customers.root, id)
		if !ok {
			return fmt.Errorf("vacation: customer %d missing", id)
		}
		spent += bal
	}
	if spent != owed {
		return fmt.Errorf("vacation: customers spent %d but tables sold %d", spent, owed)
	}
	return nil
}

// readRBT is a zero-cost committed-state lookup for verification.
func readRBT(env *Env, rootPtr memory.Addr, key uint64) (uint64, bool) {
	n := memory.Addr(env.Read(rootPtr))
	for n != 0 {
		k := env.Read(n + rbKey)
		switch {
		case key == k:
			return env.Read(n + rbVal), true
		case key < k:
			n = memory.Addr(env.Read(n + rbLeft))
		default:
			n = memory.Addr(env.Read(n + rbRight))
		}
	}
	return 0, false
}
