package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// Prime is the CPU-intensive background application of the paper's
// multiprogramming experiment (Figure 5e,f): it factorizes integers by
// trial division, touching essentially no shared memory. Its throughput
// measures how much useful work the machine extracts around a
// non-scalable transactional workload.
type Prime struct {
	counter memory.Addr // per-core completion counters (one line each)
	next    uint64
}

// primeWorkCycles approximates the compute time of one factorization.
const primeWorkCycles = 4000

// NewPrime returns an unconfigured Prime; call Setup.
func NewPrime() *Prime { return &Prime{next: 1_000_003} }

// Name implements Workload.
func (w *Prime) Name() string { return "Prime" }

// Setup implements Workload.
func (w *Prime) Setup(env *Env) {
	w.counter = env.Alloc.Alloc(64 * memory.LineWords)
}

// Op implements Workload: factor one number (pure compute) and bump the
// core-private completion counter.
func (w *Prime) Op(th tmapi.Thread) {
	n := w.next + uint64(th.Core())*2 + uint64(th.Rand().Intn(1000))*2 + 1
	// Model trial division: constant cycles per candidate divisor.
	divisors := 0
	for d := uint64(3); d*d <= n && divisors < 64; d += 2 {
		divisors++
	}
	th.Work(primeWorkCycles + uint64(divisors)*8)
	c := w.counter + memory.Addr((th.Core()%64)*memory.LineWords)
	th.Store(c, th.Load(c)+1)
}

// Chunk runs a fixed slice of factoring work; the multiprogramming
// experiment calls it when a transactional thread yields the CPU after an
// abort.
func (w *Prime) Chunk(th tmapi.Thread) {
	th.Work(primeWorkCycles)
	c := w.counter + memory.Addr((th.Core()%64)*memory.LineWords)
	th.Store(c, th.Load(c)+1)
}

// Completed returns the total factorizations recorded.
func (w *Prime) Completed(env *Env) uint64 {
	var total uint64
	for i := 0; i < 64; i++ {
		total += env.Read(w.counter + memory.Addr(i*memory.LineWords))
	}
	return total
}

// Verify implements Workload.
func (w *Prime) Verify(env *Env) error {
	if w.Completed(env) == 0 {
		return fmt.Errorf("prime: no work completed")
	}
	return nil
}

var _ Workload = (*Prime)(nil)
