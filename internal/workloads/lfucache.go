package workloads

import (
	"fmt"
	"math"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// LFUCache simulates a web cache, following the paper's description: a
// large (2048-entry) array index plus a smaller (255-entry) priority heap
// ordered by page access frequency. Page accesses follow a Zipf
// distribution, so transactions collide on the hottest heap entries and the
// workload does not scale (Figure 4c); lazy conflict management merely
// keeps it from degrading (Figure 5c).
type LFUCache struct {
	index memory.Addr // pageCount words: heap slot + 1, or 0 if not cached
	heap  memory.Addr // heapSize entries, one line each: word0 page, word1 freq
	cdf   []float64
}

// Geometry from Table 3(b).
const (
	lfuPages    = 2048
	lfuHeapSize = 255
)

const (
	heapPage = iota
	heapFreq
)

// NewLFUCache returns an unconfigured LFUCache; call Setup.
func NewLFUCache() *LFUCache { return &LFUCache{} }

// Name implements Workload.
func (w *LFUCache) Name() string { return "LFUCache" }

// Setup implements Workload: the heap starts filled with the first pages at
// frequency 0, and the Zipf CDF (p(i) ∝ i^-2) is precomputed.
func (w *LFUCache) Setup(env *Env) {
	w.index = env.Alloc.Alloc(lfuPages)
	w.heap = env.Alloc.Alloc(lfuHeapSize * memory.LineWords)
	for i := 0; i < lfuHeapSize; i++ {
		env.Write(w.heapSlot(i)+heapPage, uint64(i))
		env.Write(w.heapSlot(i)+heapFreq, 0)
		env.Write(w.index+memory.Addr(i), uint64(i+1))
	}
	w.cdf = make([]float64, lfuPages)
	sum := 0.0
	for i := 1; i <= lfuPages; i++ {
		sum += 1 / math.Pow(float64(i), 2)
		w.cdf[i-1] = sum
	}
	for i := range w.cdf {
		w.cdf[i] /= sum
	}
}

func (w *LFUCache) heapSlot(i int) memory.Addr {
	return w.heap + memory.Addr(i*memory.LineWords)
}

// zipfPage samples a page id with p(i) ∝ i^-2 via binary search on the CDF.
func (w *LFUCache) zipfPage(f float64) int {
	lo, hi := 0, lfuPages-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Op implements Workload: access one page; on a hit, bump its frequency and
// sift it down; on a miss, evict the root (least frequently used) and
// install the new page with frequency 1.
func (w *LFUCache) Op(th tmapi.Thread) {
	page := uint64(w.zipfPage(th.Rand().Float64()))
	th.Atomic(func(tx tmapi.Txn) {
		th.Work(80) // index lookup + heap bookkeeping instructions
		slot := tx.Load(w.index + memory.Addr(page))
		if slot != 0 {
			i := int(slot - 1)
			f := tx.Load(w.heapSlot(i) + heapFreq)
			tx.Store(w.heapSlot(i)+heapFreq, f+1)
			w.siftDown(tx, i)
			return
		}
		// Miss: replace the LFU page at the heap root.
		victim := tx.Load(w.heapSlot(0) + heapPage)
		tx.Store(w.index+memory.Addr(victim), 0)
		tx.Store(w.heapSlot(0)+heapPage, page)
		tx.Store(w.heapSlot(0)+heapFreq, 1)
		tx.Store(w.index+memory.Addr(page), 1)
		w.siftDown(tx, 0)
	})
}

// siftDown restores the min-heap-by-frequency property from index i,
// keeping the page index in sync as entries swap.
func (w *LFUCache) siftDown(tx tmapi.Txn, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		fmin := tx.Load(w.heapSlot(min) + heapFreq)
		if l < lfuHeapSize {
			if fl := tx.Load(w.heapSlot(l) + heapFreq); fl < fmin {
				min, fmin = l, fl
			}
		}
		if r < lfuHeapSize {
			if fr := tx.Load(w.heapSlot(r) + heapFreq); fr < fmin {
				min = r
			}
		}
		if min == i {
			return
		}
		pi := tx.Load(w.heapSlot(i) + heapPage)
		pm := tx.Load(w.heapSlot(min) + heapPage)
		fi := tx.Load(w.heapSlot(i) + heapFreq)
		fm := tx.Load(w.heapSlot(min) + heapFreq)
		tx.Store(w.heapSlot(i)+heapPage, pm)
		tx.Store(w.heapSlot(i)+heapFreq, fm)
		tx.Store(w.heapSlot(min)+heapPage, pi)
		tx.Store(w.heapSlot(min)+heapFreq, fi)
		tx.Store(w.index+memory.Addr(pm), uint64(i+1))
		tx.Store(w.index+memory.Addr(pi), uint64(min+1))
		i = min
	}
}

// Verify implements Workload: heap property holds and the index agrees
// with heap contents.
func (w *LFUCache) Verify(env *Env) error {
	for i := 0; i < lfuHeapSize; i++ {
		f := env.Read(w.heapSlot(i) + heapFreq)
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < lfuHeapSize {
				if fc := env.Read(w.heapSlot(c) + heapFreq); fc < f {
					return fmt.Errorf("lfucache: heap violation at %d (%d > child %d)", i, f, fc)
				}
			}
		}
		page := env.Read(w.heapSlot(i) + heapPage)
		if got := env.Read(w.index + memory.Addr(page)); got != uint64(i+1) {
			return fmt.Errorf("lfucache: index[%d]=%d, heap slot is %d", page, got, i+1)
		}
	}
	cached := 0
	for p := 0; p < lfuPages; p++ {
		if env.Read(w.index+memory.Addr(p)) != 0 {
			cached++
		}
	}
	if cached != lfuHeapSize {
		return fmt.Errorf("lfucache: %d pages cached, want %d", cached, lfuHeapSize)
	}
	return nil
}
