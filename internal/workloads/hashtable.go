package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// HashTable is the paper's HashTable benchmark: transactions look up,
// insert, or delete (1/3 each) a value in 0..255 in a 256-bucket table with
// overflow chains. Conflicts are rare, so it scales nearly linearly.
type HashTable struct {
	buckets memory.Addr // 256 bucket-head words, one per cache line
	alloc   *memory.Allocator
}

// Hash-table geometry from Table 3(b).
const (
	htBuckets  = 256
	htKeyRange = 256
)

// Chain node layout: word 0 = key, word 1 = value, word 2 = next.
const (
	htKey = iota
	htVal
	htNext
)

// NewHashTable returns an unconfigured HashTable; call Setup.
func NewHashTable() *HashTable { return &HashTable{} }

// Name implements Workload.
func (h *HashTable) Name() string { return "HashTable" }

// Setup implements Workload: allocates the bucket array and warms it with
// half the key range, as the paper's single-threaded warm-up does.
func (h *HashTable) Setup(env *Env) {
	h.alloc = env.Alloc
	h.buckets = env.Alloc.Alloc(htBuckets * memory.LineWords)
	a := access{tx: envTxn{env}, alloc: env.Alloc}
	for k := uint64(0); k < htKeyRange; k += 2 {
		h.insert(a.tx, k, k*10)
	}
}

func (h *HashTable) bucketOf(key uint64) memory.Addr {
	return h.buckets + memory.Addr((key%htBuckets)*memory.LineWords)
}

func (h *HashTable) lookup(tx tmapi.Txn, key uint64) (uint64, bool) {
	n := memory.Addr(tx.Load(h.bucketOf(key)))
	for n != 0 {
		if tx.Load(n+htKey) == key {
			return tx.Load(n + htVal), true
		}
		n = memory.Addr(tx.Load(n + htNext))
	}
	return 0, false
}

func (h *HashTable) insert(tx tmapi.Txn, key, val uint64) bool {
	head := h.bucketOf(key)
	n := memory.Addr(tx.Load(head))
	for m := n; m != 0; m = memory.Addr(tx.Load(m + htNext)) {
		if tx.Load(m+htKey) == key {
			return false
		}
	}
	fresh := h.alloc.Alloc(memory.LineWords)
	tx.Store(fresh+htKey, key)
	tx.Store(fresh+htVal, val)
	tx.Store(fresh+htNext, uint64(n))
	tx.Store(head, uint64(fresh))
	return true
}

func (h *HashTable) remove(tx tmapi.Txn, key uint64) bool {
	head := h.bucketOf(key)
	prev := memory.Addr(0)
	n := memory.Addr(tx.Load(head))
	for n != 0 {
		if tx.Load(n+htKey) == key {
			next := tx.Load(n + htNext)
			if prev == 0 {
				tx.Store(head, next)
			} else {
				tx.Store(prev+htNext, next)
			}
			return true
		}
		prev = n
		n = memory.Addr(tx.Load(n + htNext))
	}
	return false
}

// Op implements Workload: one lookup/insert/delete transaction.
func (h *HashTable) Op(th tmapi.Thread) {
	r := th.Rand()
	key := uint64(r.Intn(htKeyRange))
	op := r.Intn(3)
	th.Atomic(func(tx tmapi.Txn) {
		th.Work(60) // hashing and compare instructions (1-IPC cores)
		switch op {
		case 0:
			h.lookup(tx, key)
		case 1:
			h.insert(tx, key, key*10)
		default:
			h.remove(tx, key)
		}
	})
}

// Verify implements Workload: every chained key hashes to its bucket and
// appears at most once.
func (h *HashTable) Verify(env *Env) error {
	for b := 0; b < htBuckets; b++ {
		head := h.buckets + memory.Addr(b*memory.LineWords)
		seen := map[uint64]bool{}
		steps := 0
		for n := memory.Addr(env.Read(head)); n != 0; n = memory.Addr(env.Read(n + htNext)) {
			if steps++; steps > 1<<16 {
				return fmt.Errorf("hashtable: cycle in bucket %d", b)
			}
			k := env.Read(n + htKey)
			if int(k%htBuckets) != b {
				return fmt.Errorf("hashtable: key %d in bucket %d", k, b)
			}
			if seen[k] {
				return fmt.Errorf("hashtable: duplicate key %d", k)
			}
			seen[k] = true
		}
	}
	return nil
}
