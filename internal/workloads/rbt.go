package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// rbt is a red-black tree in simulated memory, used by both the RBTree
// benchmark and Vacation's database tables. Nodes are 256 bytes (4 cache
// lines), matching the paper's RBTree configuration; field layout:
//
//	word 0: key
//	word 1: value
//	word 2: color (0 = red, 1 = black)
//	word 3: left child (0 = nil)
//	word 4: right child
//	word 5: parent
//
// All traversal and mutation goes through a tmapi.Txn, so the tree is
// transactional on every runtime. Deleted nodes are leaked rather than
// freed: recycling an address while a doomed transaction still references
// it would corrupt the structure, and the paper's runs are finite.
type rbt struct {
	root memory.Addr // address of the word holding the root pointer
}

const (
	rbKey = iota
	rbVal
	rbColor
	rbLeft
	rbRight
	rbParent
)

const (
	red   = 0
	black = 1
)

// nodeWords is the allocation size of one node: 256 bytes.
const nodeWords = 4 * memory.LineWords

// newRBT allocates an empty tree (root pointer word) via env.
func newRBT(env *Env) rbt {
	r := rbt{root: env.Alloc.Alloc(memory.LineWords)}
	env.Write(r.root, 0)
	return r
}

// access bundles a transaction view with the allocator for mutating ops.
type access struct {
	tx    tmapi.Txn
	alloc *memory.Allocator
}

func (a access) get(n memory.Addr, f int) uint64      { return a.tx.Load(n + memory.Addr(f)) }
func (a access) set(n memory.Addr, f int, v uint64)   { a.tx.Store(n+memory.Addr(f), v) }
func (a access) ptr(n memory.Addr, f int) memory.Addr { return memory.Addr(a.get(n, f)) }

// lookup returns the value for key and whether it was found.
func (t rbt) lookup(a access, key uint64) (uint64, bool) {
	n := memory.Addr(a.tx.Load(t.root))
	for n != 0 {
		k := a.get(n, rbKey)
		switch {
		case key == k:
			return a.get(n, rbVal), true
		case key < k:
			n = a.ptr(n, rbLeft)
		default:
			n = a.ptr(n, rbRight)
		}
	}
	return 0, false
}

// insert adds key->val if absent; it returns false (and updates nothing)
// when the key already exists.
func (t rbt) insert(a access, key, val uint64) bool {
	var parent memory.Addr
	n := memory.Addr(a.tx.Load(t.root))
	for n != 0 {
		parent = n
		k := a.get(n, rbKey)
		switch {
		case key == k:
			return false
		case key < k:
			n = a.ptr(n, rbLeft)
		default:
			n = a.ptr(n, rbRight)
		}
	}
	fresh := a.alloc.Alloc(nodeWords)
	a.set(fresh, rbKey, key)
	a.set(fresh, rbVal, val)
	a.set(fresh, rbColor, red)
	a.set(fresh, rbLeft, 0)
	a.set(fresh, rbRight, 0)
	a.set(fresh, rbParent, uint64(parent))
	if parent == 0 {
		a.tx.Store(t.root, uint64(fresh))
	} else if key < a.get(parent, rbKey) {
		a.set(parent, rbLeft, uint64(fresh))
	} else {
		a.set(parent, rbRight, uint64(fresh))
	}
	t.insertFixup(a, fresh)
	return true
}

// update sets the value of an existing key, returning false if absent.
func (t rbt) update(a access, key, val uint64) bool {
	n := memory.Addr(a.tx.Load(t.root))
	for n != 0 {
		k := a.get(n, rbKey)
		switch {
		case key == k:
			a.set(n, rbVal, val)
			return true
		case key < k:
			n = a.ptr(n, rbLeft)
		default:
			n = a.ptr(n, rbRight)
		}
	}
	return false
}

func (t rbt) rotateLeft(a access, x memory.Addr) {
	y := a.ptr(x, rbRight)
	yl := a.ptr(y, rbLeft)
	a.set(x, rbRight, uint64(yl))
	if yl != 0 {
		a.set(yl, rbParent, uint64(x))
	}
	xp := a.ptr(x, rbParent)
	a.set(y, rbParent, uint64(xp))
	switch {
	case xp == 0:
		a.tx.Store(t.root, uint64(y))
	case a.ptr(xp, rbLeft) == x:
		a.set(xp, rbLeft, uint64(y))
	default:
		a.set(xp, rbRight, uint64(y))
	}
	a.set(y, rbLeft, uint64(x))
	a.set(x, rbParent, uint64(y))
}

func (t rbt) rotateRight(a access, x memory.Addr) {
	y := a.ptr(x, rbLeft)
	yr := a.ptr(y, rbRight)
	a.set(x, rbLeft, uint64(yr))
	if yr != 0 {
		a.set(yr, rbParent, uint64(x))
	}
	xp := a.ptr(x, rbParent)
	a.set(y, rbParent, uint64(xp))
	switch {
	case xp == 0:
		a.tx.Store(t.root, uint64(y))
	case a.ptr(xp, rbRight) == x:
		a.set(xp, rbRight, uint64(y))
	default:
		a.set(xp, rbLeft, uint64(y))
	}
	a.set(y, rbRight, uint64(x))
	a.set(x, rbParent, uint64(y))
}

func (t rbt) insertFixup(a access, z memory.Addr) {
	for {
		zp := a.ptr(z, rbParent)
		if zp == 0 || a.get(zp, rbColor) == black {
			break
		}
		zpp := a.ptr(zp, rbParent) // grandparent exists: parent is red, root is black
		if zp == a.ptr(zpp, rbLeft) {
			y := a.ptr(zpp, rbRight) // uncle
			if y != 0 && a.get(y, rbColor) == red {
				a.set(zp, rbColor, black)
				a.set(y, rbColor, black)
				a.set(zpp, rbColor, red)
				z = zpp
				continue
			}
			if z == a.ptr(zp, rbRight) {
				z = zp
				t.rotateLeft(a, z)
				zp = a.ptr(z, rbParent)
				zpp = a.ptr(zp, rbParent)
			}
			a.set(zp, rbColor, black)
			a.set(zpp, rbColor, red)
			t.rotateRight(a, zpp)
		} else {
			y := a.ptr(zpp, rbLeft)
			if y != 0 && a.get(y, rbColor) == red {
				a.set(zp, rbColor, black)
				a.set(y, rbColor, black)
				a.set(zpp, rbColor, red)
				z = zpp
				continue
			}
			if z == a.ptr(zp, rbLeft) {
				z = zp
				t.rotateRight(a, z)
				zp = a.ptr(z, rbParent)
				zpp = a.ptr(zp, rbParent)
			}
			a.set(zp, rbColor, black)
			a.set(zpp, rbColor, red)
			t.rotateLeft(a, zpp)
		}
	}
	rootN := memory.Addr(a.tx.Load(t.root))
	// Write the root's color only when it changed: an unconditional store
	// here would put the root's line in every inserter's write set and
	// serialize the whole tree.
	if a.get(rootN, rbColor) != black {
		a.set(rootN, rbColor, black)
	}
}

// transplant replaces subtree u with subtree v.
func (t rbt) transplant(a access, u, v memory.Addr) {
	up := a.ptr(u, rbParent)
	switch {
	case up == 0:
		a.tx.Store(t.root, uint64(v))
	case u == a.ptr(up, rbLeft):
		a.set(up, rbLeft, uint64(v))
	default:
		a.set(up, rbRight, uint64(v))
	}
	if v != 0 {
		a.set(v, rbParent, uint64(up))
	}
}

func (t rbt) minimum(a access, n memory.Addr) memory.Addr {
	for {
		l := a.ptr(n, rbLeft)
		if l == 0 {
			return n
		}
		n = l
	}
}

// remove deletes key, returning false if absent. It follows CLRS with a
// parent-tracked nil (since node 0 carries no parent field).
func (t rbt) remove(a access, key uint64) bool {
	z := memory.Addr(a.tx.Load(t.root))
	for z != 0 {
		k := a.get(z, rbKey)
		if key == k {
			break
		}
		if key < k {
			z = a.ptr(z, rbLeft)
		} else {
			z = a.ptr(z, rbRight)
		}
	}
	if z == 0 {
		return false
	}

	y := z
	yColor := a.get(y, rbColor)
	var x, xParent memory.Addr
	switch {
	case a.ptr(z, rbLeft) == 0:
		x = a.ptr(z, rbRight)
		xParent = a.ptr(z, rbParent)
		t.transplant(a, z, x)
	case a.ptr(z, rbRight) == 0:
		x = a.ptr(z, rbLeft)
		xParent = a.ptr(z, rbParent)
		t.transplant(a, z, x)
	default:
		y = t.minimum(a, a.ptr(z, rbRight))
		yColor = a.get(y, rbColor)
		x = a.ptr(y, rbRight)
		if a.ptr(y, rbParent) == z {
			xParent = y
		} else {
			xParent = a.ptr(y, rbParent)
			t.transplant(a, y, x)
			zr := a.ptr(z, rbRight)
			a.set(y, rbRight, uint64(zr))
			a.set(zr, rbParent, uint64(y))
		}
		t.transplant(a, z, y)
		zl := a.ptr(z, rbLeft)
		a.set(y, rbLeft, uint64(zl))
		a.set(zl, rbParent, uint64(y))
		a.set(y, rbColor, a.get(z, rbColor))
	}
	if yColor == black {
		t.removeFixup(a, x, xParent)
	}
	return true
}

func (t rbt) removeFixup(a access, x, xParent memory.Addr) {
	for x != memory.Addr(a.tx.Load(t.root)) && (x == 0 || a.get(x, rbColor) == black) {
		if xParent == 0 {
			break
		}
		if x == a.ptr(xParent, rbLeft) {
			w := a.ptr(xParent, rbRight)
			if a.get(w, rbColor) == red {
				a.set(w, rbColor, black)
				a.set(xParent, rbColor, red)
				t.rotateLeft(a, xParent)
				w = a.ptr(xParent, rbRight)
			}
			wl, wr := a.ptr(w, rbLeft), a.ptr(w, rbRight)
			if (wl == 0 || a.get(wl, rbColor) == black) && (wr == 0 || a.get(wr, rbColor) == black) {
				a.set(w, rbColor, red)
				x = xParent
				xParent = a.ptr(x, rbParent)
			} else {
				if wr == 0 || a.get(wr, rbColor) == black {
					if wl != 0 {
						a.set(wl, rbColor, black)
					}
					a.set(w, rbColor, red)
					t.rotateRight(a, w)
					w = a.ptr(xParent, rbRight)
				}
				a.set(w, rbColor, a.get(xParent, rbColor))
				a.set(xParent, rbColor, black)
				if wr2 := a.ptr(w, rbRight); wr2 != 0 {
					a.set(wr2, rbColor, black)
				}
				t.rotateLeft(a, xParent)
				x = memory.Addr(a.tx.Load(t.root))
				xParent = 0
			}
		} else {
			w := a.ptr(xParent, rbLeft)
			if a.get(w, rbColor) == red {
				a.set(w, rbColor, black)
				a.set(xParent, rbColor, red)
				t.rotateRight(a, xParent)
				w = a.ptr(xParent, rbLeft)
			}
			wl, wr := a.ptr(w, rbLeft), a.ptr(w, rbRight)
			if (wl == 0 || a.get(wl, rbColor) == black) && (wr == 0 || a.get(wr, rbColor) == black) {
				a.set(w, rbColor, red)
				x = xParent
				xParent = a.ptr(x, rbParent)
			} else {
				if wl == 0 || a.get(wl, rbColor) == black {
					if wr != 0 {
						a.set(wr, rbColor, black)
					}
					a.set(w, rbColor, red)
					t.rotateLeft(a, w)
					w = a.ptr(xParent, rbLeft)
				}
				a.set(w, rbColor, a.get(xParent, rbColor))
				a.set(xParent, rbColor, black)
				if wl2 := a.ptr(w, rbLeft); wl2 != 0 {
					a.set(wl2, rbColor, black)
				}
				t.rotateRight(a, xParent)
				x = memory.Addr(a.tx.Load(t.root))
				xParent = 0
			}
		}
	}
	if x != 0 && a.get(x, rbColor) != black {
		a.set(x, rbColor, black)
	}
}

// verifyRBT walks the committed image and checks BST order, red-red
// violations, and black-height balance. It returns the key count.
func verifyRBT(env *Env, rootPtr memory.Addr) (int, error) {
	root := memory.Addr(env.Read(rootPtr))
	if root == 0 {
		return 0, nil
	}
	if env.Read(root+rbColor) != black {
		return 0, fmt.Errorf("rbt: root is red")
	}
	count := 0
	var walk func(n memory.Addr, lo, hi uint64, haveLo, haveHi bool) (int, error)
	walk = func(n memory.Addr, lo, hi uint64, haveLo, haveHi bool) (int, error) {
		if n == 0 {
			return 1, nil
		}
		count++
		if count > 1<<22 {
			return 0, fmt.Errorf("rbt: cycle detected")
		}
		k := env.Read(n + rbKey)
		if haveLo && k <= lo {
			return 0, fmt.Errorf("rbt: order violation at key %d", k)
		}
		if haveHi && k >= hi {
			return 0, fmt.Errorf("rbt: order violation at key %d", k)
		}
		c := env.Read(n + rbColor)
		l, r := memory.Addr(env.Read(n+rbLeft)), memory.Addr(env.Read(n+rbRight))
		if c == red {
			for _, ch := range []memory.Addr{l, r} {
				if ch != 0 && env.Read(ch+rbColor) == red {
					return 0, fmt.Errorf("rbt: red-red violation at key %d", k)
				}
			}
		}
		bl, err := walk(l, lo, k, haveLo, true)
		if err != nil {
			return 0, err
		}
		br, err := walk(r, k, hi, true, haveHi)
		if err != nil {
			return 0, err
		}
		if bl != br {
			return 0, fmt.Errorf("rbt: black-height mismatch at key %d (%d vs %d)", k, bl, br)
		}
		if c == black {
			bl++
		}
		return bl, nil
	}
	_, err := walk(root, 0, 0, false, false)
	return count, err
}
