package workloads

import (
	"testing"

	"flextm/internal/baselines/rstm"
	"flextm/internal/baselines/tl2"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// runWorkload executes ops operations per thread of workload w on runtime
// rt and returns the env for verification.
func runWorkload(t *testing.T, mkRT func(*tmesi.System) tmapi.Runtime, w Workload, threads, ops int) *Env {
	t.Helper()
	cfg := tmesi.DefaultConfig()
	sys := tmesi.New(cfg)
	rt := mkRT(sys)
	env := &Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
	w.Setup(env)
	e := sim.NewEngine()
	for i := 0; i < threads; i++ {
		coreID := i
		e.Spawn(w.Name(), 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, coreID)
			for j := 0; j < ops; j++ {
				w.Op(th)
			}
		})
	}
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%s on %s: %d threads blocked", w.Name(), rt.Name(), blocked)
	}
	return env
}

func flexLazy(sys *tmesi.System) tmapi.Runtime  { return core.New(sys, core.Lazy, cm.NewPolka()) }
func flexEager(sys *tmesi.System) tmapi.Runtime { return core.New(sys, core.Eager, cm.NewPolka()) }

func TestAllWorkloadsSingleThreaded(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			w := f.New()
			env := runWorkload(t, flexLazy, w, 1, 150)
			if err := w.Verify(env); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllWorkloadsConcurrentLazy(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			w := f.New()
			env := runWorkload(t, flexLazy, w, 8, 60)
			if err := w.Verify(env); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllWorkloadsConcurrentEager(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			w := f.New()
			env := runWorkload(t, flexEager, w, 6, 40)
			if err := w.Verify(env); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRBTreeOnSoftwareTMs(t *testing.T) {
	for name, mk := range map[string]func(*tmesi.System) tmapi.Runtime{
		"TL2":  func(s *tmesi.System) tmapi.Runtime { return tl2.New(s) },
		"RSTM": func(s *tmesi.System) tmapi.Runtime { return rstm.New(s, cm.NewPolka()) },
	} {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			w := NewRBTree()
			env := runWorkload(t, mk, w, 6, 40)
			if err := w.Verify(env); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVacationHighSeesMoreConflictsThanLow(t *testing.T) {
	measure := func(high bool) float64 {
		cfg := tmesi.DefaultConfig()
		sys := tmesi.New(cfg)
		rt := core.New(sys, core.Lazy, cm.NewPolka())
		w := NewVacation(high)
		env := &Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
		w.Setup(env)
		e := sim.NewEngine()
		for i := 0; i < 8; i++ {
			coreID := i
			e.Spawn("v", 0, func(ctx *sim.Ctx) {
				th := rt.Bind(ctx, coreID)
				for j := 0; j < 60; j++ {
					w.Op(th)
				}
			})
		}
		e.Run()
		if err := w.Verify(env); err != nil {
			t.Fatal(err)
		}
		return rt.Stats().AbortRate()
	}
	low, high := measure(false), measure(true)
	if high <= low {
		t.Fatalf("abort rates: high=%.3f low=%.3f; high contention should conflict more", high, low)
	}
}

func TestPrimeCompletesWork(t *testing.T) {
	cfg := tmesi.DefaultConfig()
	sys := tmesi.New(cfg)
	rt := core.New(sys, core.Lazy, cm.NewPolka())
	w := NewPrime()
	env := &Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
	w.Setup(env)
	e := sim.NewEngine()
	for i := 0; i < 4; i++ {
		coreID := i
		e.Spawn("p", 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, coreID)
			for j := 0; j < 25; j++ {
				w.Op(th)
			}
		})
	}
	e.Run()
	if got := w.Completed(env); got != 100 {
		t.Fatalf("Completed = %d, want 100", got)
	}
	if err := w.Verify(env); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("RBTree"); !ok {
		t.Fatal("RBTree not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom workload found")
	}
}

func TestLFUCacheSerializesHotPages(t *testing.T) {
	w := NewLFUCache()
	env := runWorkload(t, flexLazy, w, 8, 50)
	if err := w.Verify(env); err != nil {
		t.Fatal(err)
	}
	// Total frequency recorded equals the number of hit operations; at
	// minimum it must be positive and consistent with the heap.
	var totalFreq uint64
	for i := 0; i < lfuHeapSize; i++ {
		totalFreq += env.Read(w.heapSlot(i) + heapFreq)
	}
	if totalFreq == 0 {
		t.Fatal("no cache activity recorded")
	}
}
