package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// Delaunay models the paper's Delaunay triangulation benchmark (Scott et
// al., IISWC 2007): the solve is fundamentally data parallel — each thread
// triangulates its own geometric region, spending less than 5% of its time
// in transactions — and memory-bandwidth bound; transactions only "stitch"
// the seams between adjacent regions.
//
// The model: each Op streams through a private region of memory (the
// sequential solver, plain loads/stores that generate real cache and
// memory traffic), then runs one short transaction appending a stitched
// edge to the seam ledger shared with the neighboring region.
type Delaunay struct {
	regions memory.Addr // per-core private work areas
	seams   memory.Addr // per-seam line: word0 = count, word1 = checksum
	alloc   *memory.Allocator
}

// Delaunay model parameters.
const (
	dlRegionLines = 64 // private lines streamed per operation
	dlSeams       = 64
	dlMaxCores    = 64
)

// NewDelaunay returns an unconfigured Delaunay; call Setup.
func NewDelaunay() *Delaunay { return &Delaunay{} }

// Name implements Workload.
func (w *Delaunay) Name() string { return "Delaunay" }

// Setup implements Workload.
func (w *Delaunay) Setup(env *Env) {
	w.alloc = env.Alloc
	w.regions = env.Alloc.Alloc(dlMaxCores * dlRegionLines * memory.LineWords)
	w.seams = env.Alloc.Alloc(dlSeams * memory.LineWords)
}

func (w *Delaunay) region(core int) memory.Addr {
	return w.regions + memory.Addr((core%dlMaxCores)*dlRegionLines*memory.LineWords)
}

func (w *Delaunay) seam(i int) memory.Addr {
	return w.seams + memory.Addr((i%dlSeams)*memory.LineWords)
}

// Op implements Workload: a bandwidth-bound private phase, then one small
// stitch transaction on a seam shared with a neighbor region.
func (w *Delaunay) Op(th tmapi.Thread) {
	r := th.Rand()
	base := w.region(th.Core())
	// Private triangulation: stream the region, read-modify-write.
	for i := 0; i < dlRegionLines; i++ {
		a := base + memory.Addr(i*memory.LineWords)
		v := th.Load(a)
		th.Work(4) // geometric computation between memory touches
		th.Store(a, v+1)
	}
	// Stitch one seam edge transactionally.
	seam := w.seam(th.Core() + r.Intn(2)) // shared with one neighbor
	edge := r.Uint64() >> 32
	th.Atomic(func(tx tmapi.Txn) {
		tx.Store(seam+0, tx.Load(seam+0)+1)
		tx.Store(seam+1, tx.Load(seam+1)+edge)
	})
}

// Verify implements Workload: at least one seam was stitched (per-seam
// counts are checked against commits by the harness tests).
func (w *Delaunay) Verify(env *Env) error {
	total := uint64(0)
	for i := 0; i < dlSeams; i++ {
		total += env.Read(w.seam(i) + 0)
	}
	if total == 0 {
		return fmt.Errorf("delaunay: no seams stitched")
	}
	return nil
}
