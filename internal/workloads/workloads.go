// Package workloads implements the seven benchmarks of the paper's
// evaluation (Table 3b): HashTable, RBTree, LFUCache, RandomGraph,
// Delaunay, Vacation (low/high contention), and the Prime background
// application used in the multiprogramming experiments. Every workload is
// written against tmapi.Txn/Thread, so the same code runs on FlexTM and all
// baseline systems.
//
// All benchmark data lives in simulated memory; Setup initializes it
// through the committed image at zero simulated cost (the paper's warm-up
// phase), and Verify checks structural invariants of the committed state
// after a run.
package workloads

import (
	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// Env gives workloads zero-cost access to simulated memory for setup and
// verification.
type Env struct {
	Image *memory.Image
	Alloc *memory.Allocator
	// Raw, when set, reads the coherent view of memory (committed values
	// may still sit in an L1 M line that has not been written back).
	// Verification must use it; tmesi.System.ReadWordRaw fits.
	Raw func(memory.Addr) uint64
}

// Read returns the committed word at a, preferring the coherent view.
func (e *Env) Read(a memory.Addr) uint64 {
	if e.Raw != nil {
		return e.Raw(a)
	}
	return e.Image.ReadWord(a)
}

// Write sets the committed word at a.
func (e *Env) Write(a memory.Addr, v uint64) { e.Image.WriteWord(a, v) }

// Workload is one benchmark.
type Workload interface {
	// Name identifies the workload in output.
	Name() string
	// Setup allocates and initializes the data structure (warm-up).
	Setup(env *Env)
	// Op performs one timed operation (usually one transaction) on th.
	Op(th tmapi.Thread)
	// Verify checks structural invariants of the committed state after a
	// run; it returns nil if the structure is intact.
	Verify(env *Env) error
}

// Factory builds a fresh workload instance (workloads carry per-run state
// such as base addresses).
type Factory struct {
	Name string
	New  func() Workload
}

// All returns factories for every workload in Workload-Set 1 and 2.
func All() []Factory {
	return []Factory{
		{Name: "HashTable", New: func() Workload { return NewHashTable() }},
		{Name: "RBTree", New: func() Workload { return NewRBTree() }},
		{Name: "LFUCache", New: func() Workload { return NewLFUCache() }},
		{Name: "RandomGraph", New: func() Workload { return NewRandomGraph() }},
		{Name: "Delaunay", New: func() Workload { return NewDelaunay() }},
		{Name: "Vacation-Low", New: func() Workload { return NewVacation(false) }},
		{Name: "Vacation-High", New: func() Workload { return NewVacation(true) }},
	}
}

// ByName returns the factory for a workload, or false.
func ByName(name string) (Factory, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// envTxn adapts an Env to tmapi.Txn for zero-cost setup: the same
// data-structure code that runs transactionally also builds the initial
// state directly in the committed image.
type envTxn struct{ env *Env }

// Load implements tmapi.Txn.
func (t envTxn) Load(a memory.Addr) uint64 { return t.env.Read(a) }

// Store implements tmapi.Txn.
func (t envTxn) Store(a memory.Addr, v uint64) { t.env.Write(a, v) }

// Abort implements tmapi.Txn; setup never aborts.
func (t envTxn) Abort() { panic("workloads: Abort during setup") }

var _ tmapi.Txn = envTxn{}
