package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// RBTree is the paper's RBTree benchmark: transactions look up, insert, or
// remove (1/3 each) values in 0..4095; at steady state the tree holds about
// 2048 keys. Nodes are 256 bytes. Rebalancing makes writers touch paths up
// the tree, so eager management hurts at high thread counts (Figure 5a).
type RBTree struct {
	tree  rbt
	alloc *memory.Allocator
}

const rbKeyRange = 4096

// NewRBTree returns an unconfigured RBTree; call Setup.
func NewRBTree() *RBTree { return &RBTree{} }

// Name implements Workload.
func (w *RBTree) Name() string { return "RBTree" }

// Setup implements Workload: warm to ~half occupancy.
func (w *RBTree) Setup(env *Env) {
	w.alloc = env.Alloc
	w.tree = newRBT(env)
	a := access{tx: envTxn{env}, alloc: env.Alloc}
	for k := uint64(0); k < rbKeyRange; k += 2 {
		w.tree.insert(a, k, k)
	}
}

// Op implements Workload.
func (w *RBTree) Op(th tmapi.Thread) {
	r := th.Rand()
	key := uint64(r.Intn(rbKeyRange))
	op := r.Intn(3)
	th.Atomic(func(tx tmapi.Txn) {
		th.Work(180) // ~11-level traversal + rebalance instructions
		a := access{tx: tx, alloc: w.alloc}
		switch op {
		case 0:
			w.tree.lookup(a, key)
		case 1:
			w.tree.insert(a, key, key)
		default:
			w.tree.remove(a, key)
		}
	})
}

// Verify implements Workload: full red-black invariant check.
func (w *RBTree) Verify(env *Env) error {
	n, err := verifyRBT(env, w.tree.root)
	if err != nil {
		return err
	}
	if n > rbKeyRange {
		return fmt.Errorf("rbtree: %d keys exceed key range", n)
	}
	return nil
}

var _ Workload = (*RBTree)(nil)
var _ = memory.LineWords
