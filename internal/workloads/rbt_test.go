package workloads

import (
	"testing"

	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// newEnv returns a standalone Env (no timing) for direct structure tests.
func newEnv() *Env {
	return &Env{Image: memory.NewImage(), Alloc: memory.NewAllocator()}
}

func TestRBTAgainstMapOracle(t *testing.T) {
	env := newEnv()
	tree := newRBT(env)
	a := access{tx: envTxn{env}, alloc: env.Alloc}
	oracle := map[uint64]uint64{}
	r := sim.NewRand(12345)

	for step := 0; step < 20000; step++ {
		key := uint64(r.Intn(512))
		switch r.Intn(3) {
		case 0: // insert
			_, had := oracle[key]
			ok := tree.insert(a, key, key*3)
			if ok == had {
				t.Fatalf("step %d: insert(%d) = %v, oracle had=%v", step, key, ok, had)
			}
			if !had {
				oracle[key] = key * 3
			}
		case 1: // remove
			_, had := oracle[key]
			ok := tree.remove(a, key)
			if ok != had {
				t.Fatalf("step %d: remove(%d) = %v, oracle had=%v", step, key, ok, had)
			}
			delete(oracle, key)
		default: // lookup
			v, ok := tree.lookup(a, key)
			ov, had := oracle[key]
			if ok != had || (ok && v != ov) {
				t.Fatalf("step %d: lookup(%d) = (%d,%v), oracle (%d,%v)", step, key, v, ok, ov, had)
			}
		}
		if step%500 == 0 {
			if n, err := verifyRBT(env, tree.root); err != nil {
				t.Fatalf("step %d: %v", step, err)
			} else if n != len(oracle) {
				t.Fatalf("step %d: tree has %d keys, oracle %d", step, n, len(oracle))
			}
		}
	}
	if n, err := verifyRBT(env, tree.root); err != nil || n != len(oracle) {
		t.Fatalf("final: n=%d err=%v oracle=%d", n, err, len(oracle))
	}
}

func TestRBTUpdate(t *testing.T) {
	env := newEnv()
	tree := newRBT(env)
	a := access{tx: envTxn{env}, alloc: env.Alloc}
	if tree.update(a, 5, 50) {
		t.Fatal("update of absent key succeeded")
	}
	tree.insert(a, 5, 1)
	if !tree.update(a, 5, 50) {
		t.Fatal("update of present key failed")
	}
	if v, _ := tree.lookup(a, 5); v != 50 {
		t.Fatalf("value = %d, want 50", v)
	}
}

func TestRBTAscendingDescendingInsert(t *testing.T) {
	for name, order := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(1000 - i) },
	} {
		env := newEnv()
		tree := newRBT(env)
		a := access{tx: envTxn{env}, alloc: env.Alloc}
		for i := 0; i < 1000; i++ {
			tree.insert(a, order(i), 0)
		}
		if n, err := verifyRBT(env, tree.root); err != nil || n != 1000 {
			t.Fatalf("%s: n=%d err=%v", name, n, err)
		}
	}
}

func TestRBTDrainToEmpty(t *testing.T) {
	env := newEnv()
	tree := newRBT(env)
	a := access{tx: envTxn{env}, alloc: env.Alloc}
	for i := 0; i < 256; i++ {
		tree.insert(a, uint64(i), 0)
	}
	for i := 0; i < 256; i++ {
		if !tree.remove(a, uint64(i)) {
			t.Fatalf("remove(%d) failed", i)
		}
		if _, err := verifyRBT(env, tree.root); err != nil {
			t.Fatalf("after remove(%d): %v", i, err)
		}
	}
	if env.Read(tree.root) != 0 {
		t.Fatal("tree not empty after removing everything")
	}
}

func TestHashTablePrimitivesOracle(t *testing.T) {
	env := newEnv()
	h := NewHashTable()
	h.Setup(env)
	tx := envTxn{env}
	oracle := map[uint64]bool{}
	for k := uint64(0); k < htKeyRange; k += 2 {
		oracle[k] = true
	}
	r := sim.NewRand(99)
	for step := 0; step < 5000; step++ {
		key := uint64(r.Intn(htKeyRange))
		switch r.Intn(3) {
		case 0:
			if _, ok := h.lookup(tx, key); ok != oracle[key] {
				t.Fatalf("step %d: lookup(%d) = %v", step, key, ok)
			}
		case 1:
			if ok := h.insert(tx, key, 1); ok == oracle[key] {
				t.Fatalf("step %d: insert(%d) = %v", step, key, ok)
			}
			oracle[key] = true
		default:
			if ok := h.remove(tx, key); ok != oracle[key] {
				t.Fatalf("step %d: remove(%d) = %v", step, key, ok)
			}
			delete(oracle, key)
		}
	}
	if err := h.Verify(env); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSamplingIsSkewed(t *testing.T) {
	env := newEnv()
	w := NewLFUCache()
	w.Setup(env)
	r := sim.NewRand(7)
	counts := make([]int, lfuPages)
	for i := 0; i < 100000; i++ {
		counts[w.zipfPage(r.Float64())]++
	}
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("zipf not monotone: p0=%d p1=%d p10=%d", counts[0], counts[1], counts[10])
	}
	// p(1)/p(2) should be ~4 (i^-2).
	ratio := float64(counts[0]) / float64(counts[1]+1)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("p(1)/p(2) = %.2f, want ~4", ratio)
	}
	// The head dominates: top-8 pages take most of the mass.
	head := 0
	for i := 0; i < 8; i++ {
		head += counts[i]
	}
	if head < 80000 {
		t.Fatalf("top-8 pages got %d/100000 accesses; distribution too flat", head)
	}
}

var _ = tmesi.DefaultConfig
