package workloads

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/tmapi"
)

// RandomGraph is the paper's pathological workload: transactions insert or
// delete vertices (50% each) in an undirected graph kept as adjacency
// lists. Each new vertex links to up to 4 random existing neighbors, and
// finding them scans the vertex table, so the average transaction reads
// ~80 cache lines and writes ~15, conflicting almost always. Under eager
// management it livelocks at high thread counts (Figure 4d); lazy
// management gives it a flat curve (Figure 5d).
type RandomGraph struct {
	verts memory.Addr // slot table: one line per slot
	alloc *memory.Allocator
}

// Vertex-slot layout: word 0 = active flag, word 1 = adjacency-list head,
// word 2 = degree. Edge-node layout: word 0 = neighbor slot+1, word 1 = next.
// rgSlots is sized so transactions read ~80 lines, as in the paper.
const rgSlots = 96

const (
	vActive = 0
	vAdj    = 1
	vDegree = 2
)

const (
	eNbr  = 0
	eNext = 1
)

// NewRandomGraph returns an unconfigured RandomGraph; call Setup.
func NewRandomGraph() *RandomGraph { return &RandomGraph{} }

// Name implements Workload.
func (w *RandomGraph) Name() string { return "RandomGraph" }

// Setup implements Workload: start with half the slots active, no edges.
func (w *RandomGraph) Setup(env *Env) {
	w.alloc = env.Alloc
	w.verts = env.Alloc.Alloc(rgSlots * memory.LineWords)
	for i := 0; i < rgSlots; i += 2 {
		env.Write(w.slot(i)+vActive, 1)
	}
}

func (w *RandomGraph) slot(i int) memory.Addr {
	return w.verts + memory.Addr(i*memory.LineWords)
}

// Op implements Workload: insert or delete a random vertex.
func (w *RandomGraph) Op(th tmapi.Thread) {
	r := th.Rand()
	target := r.Intn(rgSlots)
	insert := r.Intn(2) == 0
	// Neighbor candidates are chosen up front so retries are deterministic
	// within the attempt (the scan re-reads live state each time).
	var wants [4]int
	for i := range wants {
		wants[i] = r.Intn(rgSlots)
	}
	th.Atomic(func(tx tmapi.Txn) {
		th.Work(320) // table scans and list manipulation instructions
		if insert {
			w.insertVertex(tx, target, wants)
		} else {
			w.deleteVertex(tx, target)
		}
	})
}

// insertVertex activates slot target (if inactive) and connects it to up
// to 4 active vertices at or after the wanted indices (a scan that reads
// much of the table, as the paper's workload does).
func (w *RandomGraph) insertVertex(tx tmapi.Txn, target int, wants [4]int) {
	if tx.Load(w.slot(target)+vActive) != 0 {
		return
	}
	tx.Store(w.slot(target)+vActive, 1)
	tx.Store(w.slot(target)+vAdj, 0)
	tx.Store(w.slot(target)+vDegree, 0)
	linked := map[int]bool{target: true}
	for _, want := range wants {
		// Scan forward for an active vertex.
		for off := 0; off < rgSlots; off++ {
			cand := (want + off) % rgSlots
			if linked[cand] {
				continue
			}
			if tx.Load(w.slot(cand)+vActive) != 0 {
				w.addEdge(tx, target, cand)
				w.addEdge(tx, cand, target)
				linked[cand] = true
				break
			}
		}
	}
}

func (w *RandomGraph) addEdge(tx tmapi.Txn, from, to int) {
	head := w.slot(from) + vAdj
	e := w.alloc.Alloc(memory.LineWords)
	tx.Store(e+eNbr, uint64(to+1))
	tx.Store(e+eNext, tx.Load(head))
	tx.Store(head, uint64(e))
	tx.Store(w.slot(from)+vDegree, tx.Load(w.slot(from)+vDegree)+1)
}

// deleteVertex removes the vertex at slot target and unlinks it from every
// neighbor's adjacency list.
func (w *RandomGraph) deleteVertex(tx tmapi.Txn, target int) {
	if tx.Load(w.slot(target)+vActive) == 0 {
		return
	}
	for e := memory.Addr(tx.Load(w.slot(target) + vAdj)); e != 0; e = memory.Addr(tx.Load(e + eNext)) {
		nbr := int(tx.Load(e+eNbr)) - 1
		w.removeEdge(tx, nbr, target)
	}
	tx.Store(w.slot(target)+vActive, 0)
	tx.Store(w.slot(target)+vAdj, 0)
	tx.Store(w.slot(target)+vDegree, 0)
}

func (w *RandomGraph) removeEdge(tx tmapi.Txn, from, to int) {
	head := w.slot(from) + vAdj
	prev := memory.Addr(0)
	for e := memory.Addr(tx.Load(head)); e != 0; e = memory.Addr(tx.Load(e + eNext)) {
		if int(tx.Load(e+eNbr))-1 == to {
			next := tx.Load(e + eNext)
			if prev == 0 {
				tx.Store(head, next)
			} else {
				tx.Store(prev+eNext, next)
			}
			tx.Store(w.slot(from)+vDegree, tx.Load(w.slot(from)+vDegree)-1)
			return
		}
		prev = e
	}
}

// Verify implements Workload: adjacency symmetry (undirected), edges only
// between active vertices, and degree counters match list lengths.
func (w *RandomGraph) Verify(env *Env) error {
	adj := make(map[int]map[int]int, rgSlots)
	for i := 0; i < rgSlots; i++ {
		active := env.Read(w.slot(i)+vActive) != 0
		if !active {
			if env.Read(w.slot(i)+vAdj) != 0 {
				return fmt.Errorf("randomgraph: inactive vertex %d has edges", i)
			}
			continue
		}
		adj[i] = map[int]int{}
		n, steps := memory.Addr(env.Read(w.slot(i)+vAdj)), 0
		for ; n != 0; n = memory.Addr(env.Read(n + eNext)) {
			if steps++; steps > 1<<16 {
				return fmt.Errorf("randomgraph: adjacency cycle at vertex %d", i)
			}
			nbr := int(env.Read(n+eNbr)) - 1
			adj[i][nbr]++
		}
		if got := env.Read(w.slot(i) + vDegree); got != uint64(steps) {
			return fmt.Errorf("randomgraph: vertex %d degree %d, list length %d", i, got, steps)
		}
	}
	for u, ns := range adj {
		for v, cnt := range ns {
			if _, ok := adj[v]; !ok {
				return fmt.Errorf("randomgraph: edge %d-%d to inactive vertex", u, v)
			}
			if adj[v][u] != cnt {
				return fmt.Errorf("randomgraph: asymmetric edge %d-%d (%d vs %d)", u, v, cnt, adj[v][u])
			}
		}
	}
	return nil
}
