package flightql

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"flextm/internal/replay"
)

// Result is a query's output: exactly one of the payload fields is set,
// named by Kind. The encoding is canonical for a given input: struct fields
// in declaration order, slices in their deterministic sort order, no maps —
// so the same query over the same records produces byte-identical JSON
// (the property the flightql-smoke CI job byte-diffs).
type Result struct {
	Kind    string              `json:"kind"` // records, groups, count, state, lines, cores, assert
	Records []RecView           `json:"records,omitempty"`
	Groups  []Group             `json:"groups,omitempty"`
	Count   *uint64             `json:"count,omitempty"`
	State   *replay.State       `json:"state,omitempty"`
	Lines   []replay.LineState  `json:"lines,omitempty"`
	Cores   []replay.CoreState  `json:"cores,omitempty"`
	Assert  *AssertResult       `json:"assert,omitempty"`
}

// RecView is one flight record rendered for output: kind by name, the FP
// bit split from the masked Aux operand, lines in hex.
type RecView struct {
	Seq  uint64 `json:"seq"`
	At   uint64 `json:"at"`
	Dur  uint64 `json:"dur,omitempty"`
	Core int    `json:"core"`
	Peer int    `json:"peer"`
	Kind string `json:"kind"`
	Aux  uint8  `json:"aux"`
	FP   bool   `json:"fp,omitempty"`
	Line string `json:"line,omitempty"`
}

// Group is one aggregation bucket. Count is always computed; the other
// aggregates appear only when the query asked for them.
type Group struct {
	Key     []KeyPart    `json:"key"`
	Count   uint64       `json:"count"`
	SumDur  *uint64      `json:"sumDur,omitempty"`
	MeanDur *float64     `json:"meanDur,omitempty"`
	MaxDur  *uint64      `json:"maxDur,omitempty"`
	HistDur []HistBucket `json:"histDur,omitempty"`
}

// KeyPart is one field of a group key, with its display rendering.
type KeyPart struct {
	Field string `json:"field"`
	Value string `json:"value"`
}

// HistBucket is one power-of-two histogram bucket: N durations were <= Le
// (and above the previous bucket's bound). Only non-empty buckets appear.
type HistBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// AssertResult is an expect stage's verdict.
type AssertResult struct {
	Expr string  `json:"expr"`
	Got  float64 `json:"got"`
	Pass bool    `json:"pass"`
}

// WriteJSON writes the result as canonical indented JSON, newline
// terminated. Byte-stable for a given query + record stream.
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// QueryResult pairs a query's source with its result, for multi-query
// canonical documents (flextm -query-out, the CI golden file).
type QueryResult struct {
	Query  string  `json:"query"`
	Result *Result `json:"result"`
}

// WriteResultsJSON writes a set of query results as one canonical indented
// JSON document, newline terminated. Byte-stable for a given query set +
// record stream.
func WriteResultsJSON(w io.Writer, rs []QueryResult) error {
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteTable writes the result as an aligned human-readable table.
func (r *Result) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	switch r.Kind {
	case "count":
		fmt.Fprintf(tw, "count\t%d\n", *r.Count)
	case "assert":
		verdict := "FAIL"
		if r.Assert.Pass {
			verdict = "PASS"
		}
		fmt.Fprintf(tw, "%s\texpect %s\tgot %g\n", verdict, r.Assert.Expr, r.Assert.Got)
	case "records":
		fmt.Fprintln(tw, "seq\tat\tdur\tcore\tpeer\tkind\taux\tfp\tline")
		for _, rec := range r.Records {
			fp := ""
			if rec.FP {
				fp = "fp"
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\t%d\t%s\t%s\n",
				rec.Seq, rec.At, rec.Dur, rec.Core, rec.Peer, rec.Kind, rec.Aux, fp, rec.Line)
		}
	case "groups":
		if len(r.Groups) == 0 {
			fmt.Fprintln(tw, "no groups")
			return
		}
		var hdr []string
		for _, kp := range r.Groups[0].Key {
			hdr = append(hdr, kp.Field)
		}
		hdr = append(hdr, "count")
		g0 := r.Groups[0]
		if g0.SumDur != nil {
			hdr = append(hdr, "sum(dur)")
		}
		if g0.MeanDur != nil {
			hdr = append(hdr, "mean(dur)")
		}
		if g0.MaxDur != nil {
			hdr = append(hdr, "max(dur)")
		}
		if g0.HistDur != nil {
			hdr = append(hdr, "hist(dur)")
		}
		fmt.Fprintln(tw, strings.Join(hdr, "\t"))
		for _, g := range r.Groups {
			var row []string
			for _, kp := range g.Key {
				row = append(row, kp.Value)
			}
			row = append(row, fmt.Sprintf("%d", g.Count))
			if g.SumDur != nil {
				row = append(row, fmt.Sprintf("%d", *g.SumDur))
			}
			if g.MeanDur != nil {
				row = append(row, fmt.Sprintf("%.1f", *g.MeanDur))
			}
			if g.MaxDur != nil {
				row = append(row, fmt.Sprintf("%d", *g.MaxDur))
			}
			if g.HistDur != nil {
				var hb []string
				for _, b := range g.HistDur {
					hb = append(hb, fmt.Sprintf("<=%d:%d", b.Le, b.N))
				}
				row = append(row, strings.Join(hb, " "))
			}
			fmt.Fprintln(tw, strings.Join(row, "\t"))
		}
	case "state":
		st := r.State
		fmt.Fprintf(tw, "state at cycle %d\t(%d records folded, gov level %d)\n",
			st.Cycle, st.Records, st.GovLevel)
		writeCores(tw, st.Cores)
		writeLines(tw, st.Lines)
	case "cores":
		writeCores(tw, r.Cores)
	case "lines":
		writeLines(tw, r.Lines)
	}
}

func writeCores(w io.Writer, cores []replay.CoreState) {
	fmt.Fprintln(w, "core\tstatus\tattempt\tconsec-aborts\tsig-lines\tcommits\taborts\tescalations\ttrips")
	for _, c := range cores {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			c.Core, c.Status, c.Attempt, c.ConsecAborts, c.SigLines,
			c.Commits, c.Aborts, c.Escalations, c.Trips)
	}
}

func writeLines(w io.Writer, lines []replay.LineState) {
	if len(lines) == 0 {
		fmt.Fprintln(w, "no lines")
		return
	}
	fmt.Fprintln(w, "line\tlast-writer\twriters\treaders\tconflicts")
	for _, l := range lines {
		fmt.Fprintf(w, "0x%x\t%d\t%s\t%s\t%d\n",
			l.Line, l.LastWriter, intList(l.Writers), intList(l.Readers), l.Conflicts)
	}
}

func intList(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}
