package flightql

import "flextm/internal/flight"

// TB is the subset of testing.TB that Assert needs; an interface so this
// package does not import testing into non-test binaries.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Assert runs a query whose final stage is `expect` against a record stream
// and fails the test when the expectation does not hold. It lets harness
// and acceptance tests state invariants as queries instead of hand-rolled
// record walks:
//
//	flightql.Assert(t, out.Recs, "filter kind == watchdog-trip | expect count == 0")
func Assert(t TB, recs []flight.Rec, query string) {
	t.Helper()
	res, err := Run(query, recs)
	if err != nil {
		t.Fatalf("flightql.Assert: %v\n  query: %s", err, query)
		return
	}
	if res.Assert == nil {
		t.Fatalf("flightql.Assert: query has no expect stage: %s", query)
		return
	}
	if !res.Assert.Pass {
		t.Fatalf("flightql.Assert failed: expect %s, got %g\n  query: %s",
			res.Assert.Expr, res.Assert.Got, query)
	}
}
