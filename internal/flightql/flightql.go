// Package flightql is a small, deterministic query language over flight
// records and replayed machine state. A query is a pipeline of stages
// separated by '|':
//
//	filter kind == abort-enemy && core == 3
//	filter at >= 1000 && at <= 3000 | group by line agg count, sum(dur)
//	filter kind == cst-set | group by line | top 3 by count
//	filter kind == commit | expect count == 80
//	at cycle 48210 show lines where writers > 1
//
// Stages:
//
//	filter EXPR                    keep records matching EXPR
//	group by F[,F...] [agg A,...]  aggregate records per key (count, sum(dur),
//	                               mean(dur), max(dur), hist(dur))
//	top K by AGG                   keep the K heaviest groups
//	count                          collapse to a scalar count
//	expect AGG OP N                assert an aggregate (powers flightql.Assert)
//	at cycle N show state|cores|lines [where EXPR]
//	                               replay the (possibly filtered) stream to
//	                               cycle N and show reconstructed state
//
// Record fields: core, peer, kind, line, aux, fp, seq, at (alias cycle),
// dur. Replayed line fields: line, writers, readers, last-writer,
// conflicts. Replayed core fields: core, status, attempt, consec-aborts,
// sig-lines, commits, aborts, escalations, trips. Kind and status compare
// against their kebab-case names (filter kind == cst-set); line literals
// may be hex (0x40).
//
// Evaluation is pure and deterministic: the same query over the same
// records yields byte-identical canonical JSON (WriteJSON). The engine only
// reads snapshotted data — nothing here runs on the record hot path.
package flightql

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"flextm/internal/flight"
	"flextm/internal/replay"
	"flextm/internal/sim"
)

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPipe
	tLParen
	tRParen
	tLBrack
	tRBrack
	tComma
	tOp  // == != < <= > >=
	tAnd // &&
	tOr  // ||
	tNot // !
)

type token struct {
	kind tokKind
	text string
	num  int64
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isAlpha(c):
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tIdent, text: src[i:j], pos: i})
			i = j
		case c >= '0' && c <= '9', c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && (isHexDigit(src[j]) || src[j] == 'x' || src[j] == 'X') {
				j++
			}
			n, err := strconv.ParseInt(src[i:j], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("flightql: bad number %q at offset %d", src[i:j], i)
			}
			toks = append(toks, token{kind: tNumber, text: src[i:j], num: n, pos: i})
			i = j
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(src) && src[j] != c {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("flightql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tIdent, text: src[i+1 : j], pos: i})
			i = j + 1
		case c == '|':
			if i+1 < len(src) && src[i+1] == '|' {
				toks = append(toks, token{kind: tOr, text: "||", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tPipe, text: "|", pos: i})
				i++
			}
		case c == '&':
			if i+1 < len(src) && src[i+1] == '&' {
				toks = append(toks, token{kind: tAnd, text: "&&", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("flightql: stray '&' at offset %d", i)
			}
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tOp, text: "==", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("flightql: stray '=' at offset %d (use ==)", i)
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tOp, text: "!=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tNot, text: "!", pos: i})
				i++
			}
		case c == '<', c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tOp, text: src[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tOp, text: src[i : i+1], pos: i})
				i++
			}
		case c == '(':
			toks = append(toks, token{kind: tLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tRParen, text: ")", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tLBrack, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tRBrack, text: "]", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tComma, text: ",", pos: i})
			i++
		default:
			return nil, fmt.Errorf("flightql: unexpected %q at offset %d", string(c), i)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Identifiers may contain '-' so kind names (abort-enemy) and line-state
// fields (last-writer) lex as single tokens; the grammar has no arithmetic,
// so this is unambiguous.
func isIdentChar(c byte) bool {
	return isAlpha(c) || c == '-' || (c >= '0' && c <= '9')
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// ---------------------------------------------------------------------------
// Expressions

type literal struct {
	num   int64
	ident string
	isNum bool
}

func (l literal) String() string {
	if l.isNum {
		return strconv.FormatInt(l.num, 10)
	}
	return l.ident
}

type expr interface {
	eval(get getter) (bool, error)
}

type getter func(field string) (int64, bool)

type binExpr struct {
	and  bool
	l, r expr
}

func (e *binExpr) eval(g getter) (bool, error) {
	lv, err := e.l.eval(g)
	if err != nil {
		return false, err
	}
	if e.and && !lv {
		return false, nil
	}
	if !e.and && lv {
		return true, nil
	}
	return e.r.eval(g)
}

type notExpr struct{ e expr }

func (e *notExpr) eval(g getter) (bool, error) {
	v, err := e.e.eval(g)
	return !v, err
}

type cmpExpr struct {
	field string
	op    string // ==, !=, <, <=, >, >=, in
	lit   literal
	set   []literal // op == "in"
}

func (e *cmpExpr) eval(g getter) (bool, error) {
	fv, ok := g(e.field)
	if !ok {
		return false, fmt.Errorf("flightql: unknown field %q here", e.field)
	}
	resolve := func(l literal) (int64, error) { return resolveLiteral(e.field, l) }
	if e.op == "in" {
		for _, l := range e.set {
			lv, err := resolve(l)
			if err != nil {
				return false, err
			}
			if fv == lv {
				return true, nil
			}
		}
		return false, nil
	}
	lv, err := resolve(e.lit)
	if err != nil {
		return false, err
	}
	switch e.op {
	case "==":
		return fv == lv, nil
	case "!=":
		return fv != lv, nil
	case "<":
		return fv < lv, nil
	case "<=":
		return fv <= lv, nil
	case ">":
		return fv > lv, nil
	case ">=":
		return fv >= lv, nil
	}
	return false, fmt.Errorf("flightql: bad operator %q", e.op)
}

// resolveLiteral maps an identifier literal to the numeric domain of the
// field it is compared against: kind names for kind, status names for
// status, true/false for fp.
func resolveLiteral(field string, l literal) (int64, error) {
	if l.isNum {
		return l.num, nil
	}
	switch field {
	case "kind":
		if k, ok := kindByName(l.ident); ok {
			return int64(k), nil
		}
		return 0, fmt.Errorf("flightql: unknown record kind %q", l.ident)
	case "status":
		switch l.ident {
		case "idle":
			return int64(replay.Idle), nil
		case "running":
			return int64(replay.Running), nil
		case "aborted":
			return int64(replay.Aborted), nil
		case "serialized":
			return int64(replay.Serialized), nil
		}
		return 0, fmt.Errorf("flightql: unknown status %q", l.ident)
	case "fp":
		switch l.ident {
		case "true":
			return 1, nil
		case "false":
			return 0, nil
		}
		return 0, fmt.Errorf("flightql: fp compares against true/false, not %q", l.ident)
	}
	return 0, fmt.Errorf("flightql: field %q needs a numeric literal, got %q", field, l.ident)
}

func kindByName(name string) (flight.Kind, bool) {
	for k := flight.Kind(0); k < flight.NumKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Field getters

var recFields = fieldSet("core", "peer", "kind", "line", "aux", "fp", "seq", "at", "cycle", "dur")
var lineFields = fieldSet("line", "writers", "readers", "last-writer", "conflicts")
var coreFields = fieldSet("core", "status", "attempt", "consec-aborts", "sig-lines",
	"commits", "aborts", "escalations", "trips")

func fieldSet(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func recGetter(r *flight.Rec) getter {
	return func(f string) (int64, bool) {
		switch f {
		case "core":
			return int64(r.Core), true
		case "peer":
			return int64(r.Peer), true
		case "kind":
			return int64(r.Kind), true
		case "line":
			return int64(r.Line), true
		case "aux":
			return int64(r.Aux & flight.AuxMask), true
		case "fp":
			if r.Aux&flight.AuxFP != 0 {
				return 1, true
			}
			return 0, true
		case "seq":
			return int64(r.Seq), true
		case "at", "cycle":
			return int64(r.At), true
		case "dur":
			return int64(r.Dur), true
		}
		return 0, false
	}
}

func lineGetter(l *replay.LineState) getter {
	return func(f string) (int64, bool) {
		switch f {
		case "line":
			return int64(l.Line), true
		case "writers":
			return int64(len(l.Writers)), true
		case "readers":
			return int64(len(l.Readers)), true
		case "last-writer":
			return int64(l.LastWriter), true
		case "conflicts":
			return int64(l.Conflicts), true
		}
		return 0, false
	}
}

func coreGetter(c *replay.CoreState) getter {
	return func(f string) (int64, bool) {
		switch f {
		case "core":
			return int64(c.Core), true
		case "status":
			return int64(c.Status), true
		case "attempt":
			return int64(c.Attempt), true
		case "consec-aborts":
			return int64(c.ConsecAborts), true
		case "sig-lines":
			return int64(c.SigLines), true
		case "commits":
			return int64(c.Commits), true
		case "aborts":
			return int64(c.Aborts), true
		case "escalations":
			return int64(c.Escalations), true
		case "trips":
			return int64(c.Trips), true
		}
		return 0, false
	}
}

// ---------------------------------------------------------------------------
// Aggregates

type aggKind int

const (
	aggCount aggKind = iota
	aggSum
	aggMean
	aggMax
	aggHist
)

func (a aggKind) String() string {
	switch a {
	case aggSum:
		return "sum(dur)"
	case aggMean:
		return "mean(dur)"
	case aggMax:
		return "max(dur)"
	case aggHist:
		return "hist(dur)"
	}
	return "count"
}

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tIdent || t.text != word {
		return fmt.Errorf("flightql: expected %q at offset %d, got %q", word, t.pos, t.text)
	}
	return nil
}

// Query is a parsed pipeline, ready to run any number of times.
type Query struct {
	src    string
	stages []stage
}

// Source returns the original query text.
func (q *Query) Source() string { return q.src }

// Parse compiles a query. The returned Query is immutable and safe for
// concurrent Run calls.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q := &Query{src: src}
	for {
		st, err := p.parseStage()
		if err != nil {
			return nil, err
		}
		q.stages = append(q.stages, st)
		t := p.next()
		if t.kind == tEOF {
			break
		}
		if t.kind != tPipe {
			return nil, fmt.Errorf("flightql: expected '|' or end of query at offset %d, got %q", t.pos, t.text)
		}
	}
	return q, nil
}

func (p *parser) parseStage() (stage, error) {
	t := p.next()
	if t.kind != tIdent {
		return nil, fmt.Errorf("flightql: expected a stage keyword at offset %d", t.pos)
	}
	switch t.text {
	case "filter":
		e, err := p.parseExpr(recFields)
		if err != nil {
			return nil, err
		}
		return &filterStage{e}, nil
	case "group":
		return p.parseGroup()
	case "top":
		return p.parseTop()
	case "count":
		return &countStage{}, nil
	case "expect":
		return p.parseExpect()
	case "at":
		return p.parseAt()
	}
	return nil, fmt.Errorf("flightql: unknown stage %q at offset %d", t.text, t.pos)
}

func (p *parser) parseGroup() (stage, error) {
	if err := p.expectIdent("by"); err != nil {
		return nil, err
	}
	g := &groupStage{}
	for {
		t := p.next()
		if t.kind != tIdent || !recFields[t.text] || t.text == "cycle" {
			return nil, fmt.Errorf("flightql: group by: bad field %q at offset %d", t.text, t.pos)
		}
		g.fields = append(g.fields, t.text)
		if p.cur().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind == tIdent && p.cur().text == "agg" {
		p.next()
		for {
			a, err := p.parseAgg()
			if err != nil {
				return nil, err
			}
			g.aggs = append(g.aggs, a)
			if p.cur().kind == tComma {
				p.next()
				continue
			}
			break
		}
	} else {
		g.aggs = []aggKind{aggCount}
	}
	return g, nil
}

func (p *parser) parseAgg() (aggKind, error) {
	t := p.next()
	if t.kind != tIdent {
		return 0, fmt.Errorf("flightql: expected an aggregate at offset %d", t.pos)
	}
	var a aggKind
	switch t.text {
	case "count":
		return aggCount, nil
	case "sum":
		a = aggSum
	case "mean":
		a = aggMean
	case "max":
		a = aggMax
	case "hist":
		a = aggHist
	default:
		return 0, fmt.Errorf("flightql: unknown aggregate %q at offset %d", t.text, t.pos)
	}
	if p.next().kind != tLParen {
		return 0, fmt.Errorf("flightql: %s needs (dur)", t.text)
	}
	if err := p.expectIdent("dur"); err != nil {
		return 0, err
	}
	if p.next().kind != tRParen {
		return 0, fmt.Errorf("flightql: %s needs (dur)", t.text)
	}
	return a, nil
}

func (p *parser) parseTop() (stage, error) {
	t := p.next()
	if t.kind != tNumber || t.num <= 0 {
		return nil, fmt.Errorf("flightql: top needs a positive count at offset %d", t.pos)
	}
	if err := p.expectIdent("by"); err != nil {
		return nil, err
	}
	a, err := p.parseAgg()
	if err != nil {
		return nil, err
	}
	if a == aggHist {
		return nil, fmt.Errorf("flightql: cannot rank by hist(dur)")
	}
	return &topStage{k: int(t.num), by: a}, nil
}

func (p *parser) parseExpect() (stage, error) {
	a, err := p.parseAgg()
	if err != nil {
		return nil, err
	}
	if a == aggHist {
		return nil, fmt.Errorf("flightql: cannot expect hist(dur)")
	}
	t := p.next()
	if t.kind != tOp {
		return nil, fmt.Errorf("flightql: expect needs a comparison at offset %d", t.pos)
	}
	n := p.next()
	if n.kind != tNumber {
		return nil, fmt.Errorf("flightql: expect compares against a number, got %q", n.text)
	}
	return &expectStage{agg: a, op: t.text, want: n.num}, nil
}

func (p *parser) parseAt() (stage, error) {
	if err := p.expectIdent("cycle"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tNumber || t.num < 0 {
		return nil, fmt.Errorf("flightql: at cycle needs a cycle number, got %q", t.text)
	}
	if err := p.expectIdent("show"); err != nil {
		return nil, err
	}
	s := p.next()
	st := &atStage{cycle: sim.Time(t.num)}
	var fields map[string]bool
	switch {
	case s.kind == tIdent && s.text == "state":
		st.show = showState
	case s.kind == tIdent && s.text == "cores":
		st.show = showCores
		fields = coreFields
	case s.kind == tIdent && s.text == "lines":
		st.show = showLines
		fields = lineFields
	default:
		return nil, fmt.Errorf("flightql: at cycle N show state|cores|lines, got %q", s.text)
	}
	if p.cur().kind == tIdent && p.cur().text == "where" {
		if st.show == showState {
			return nil, fmt.Errorf("flightql: 'where' applies to show cores|lines, not show state")
		}
		p.next()
		e, err := p.parseExpr(fields)
		if err != nil {
			return nil, err
		}
		st.where = e
	}
	return st, nil
}

func (p *parser) parseExpr(fields map[string]bool) (expr, error) {
	return p.parseOr(fields)
}

func (p *parser) parseOr(fields map[string]bool) (expr, error) {
	l, err := p.parseAnd(fields)
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tOr {
		p.next()
		r, err := p.parseAnd(fields)
		if err != nil {
			return nil, err
		}
		l = &binExpr{and: false, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd(fields map[string]bool) (expr, error) {
	l, err := p.parseUnary(fields)
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tAnd {
		p.next()
		r, err := p.parseUnary(fields)
		if err != nil {
			return nil, err
		}
		l = &binExpr{and: true, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary(fields map[string]bool) (expr, error) {
	switch p.cur().kind {
	case tNot:
		p.next()
		e, err := p.parseUnary(fields)
		if err != nil {
			return nil, err
		}
		return &notExpr{e}, nil
	case tLParen:
		p.next()
		e, err := p.parseExpr(fields)
		if err != nil {
			return nil, err
		}
		if p.next().kind != tRParen {
			return nil, fmt.Errorf("flightql: missing ')'")
		}
		return e, nil
	}
	return p.parseCmp(fields)
}

func (p *parser) parseCmp(fields map[string]bool) (expr, error) {
	f := p.next()
	if f.kind != tIdent {
		return nil, fmt.Errorf("flightql: expected a field name at offset %d, got %q", f.pos, f.text)
	}
	if !fields[f.text] {
		return nil, fmt.Errorf("flightql: unknown field %q at offset %d", f.text, f.pos)
	}
	op := p.next()
	if op.kind == tIdent && op.text == "in" {
		if p.next().kind != tLBrack {
			return nil, fmt.Errorf("flightql: 'in' needs [v, ...]")
		}
		e := &cmpExpr{field: f.text, op: "in"}
		for {
			l, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			e.set = append(e.set, l)
			t := p.next()
			if t.kind == tComma {
				continue
			}
			if t.kind == tRBrack {
				break
			}
			return nil, fmt.Errorf("flightql: 'in' list: expected ',' or ']' at offset %d", t.pos)
		}
		return e, nil
	}
	if op.kind != tOp {
		return nil, fmt.Errorf("flightql: expected a comparison after %q at offset %d", f.text, op.pos)
	}
	l, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	// Surface bad kind/status names at parse time, not per record.
	if _, err := resolveLiteral(f.text, l); err != nil {
		return nil, err
	}
	return &cmpExpr{field: f.text, op: op.text, lit: l}, nil
}

func (p *parser) parseLiteral() (literal, error) {
	t := p.next()
	switch t.kind {
	case tNumber:
		return literal{num: t.num, isNum: true}, nil
	case tIdent:
		return literal{ident: t.text}, nil
	}
	return literal{}, fmt.Errorf("flightql: expected a literal at offset %d, got %q", t.pos, t.text)
}

// ---------------------------------------------------------------------------
// Stages

// value is the pipeline's intermediate state: exactly one of the fields is
// live after each stage.
type value struct {
	recs   []flight.Rec
	groups []Group
	count  *uint64
	state  *replay.State
	lines  []replay.LineState
	cores  []replay.CoreState
	assert *AssertResult
	// recsLive distinguishes "records stage produced zero records" from
	// "no records in the pipeline".
	recsLive bool
}

type stage interface {
	apply(v *value, env *Env) error
}

type filterStage struct{ e expr }

func (s *filterStage) apply(v *value, env *Env) error {
	if !v.recsLive {
		return fmt.Errorf("flightql: filter needs records (use it before group/at stages)")
	}
	var out []flight.Rec
	for i := range v.recs {
		ok, err := s.e.eval(recGetter(&v.recs[i]))
		if err != nil {
			return err
		}
		if ok {
			out = append(out, v.recs[i])
		}
	}
	v.recs = out
	return nil
}

type groupStage struct {
	fields []string
	aggs   []aggKind
}

type groupAcc struct {
	key    []KeyPart
	nums   []int64
	count  uint64
	sumDur uint64
	maxDur uint64
	hist   map[int]uint64
}

func (s *groupStage) apply(v *value, env *Env) error {
	if !v.recsLive {
		return fmt.Errorf("flightql: group by needs records")
	}
	wantHist := false
	for _, a := range s.aggs {
		if a == aggHist {
			wantHist = true
		}
	}
	accs := map[string]*groupAcc{}
	for i := range v.recs {
		r := &v.recs[i]
		g := recGetter(r)
		var kb strings.Builder
		parts := make([]KeyPart, len(s.fields))
		nums := make([]int64, len(s.fields))
		for fi, f := range s.fields {
			n, _ := g(f)
			nums[fi] = n
			parts[fi] = KeyPart{Field: f, Value: displayValue(f, n)}
			kb.WriteString(parts[fi].Value)
			kb.WriteByte(0)
		}
		acc := accs[kb.String()]
		if acc == nil {
			acc = &groupAcc{key: parts, nums: nums}
			if wantHist {
				acc.hist = map[int]uint64{}
			}
			accs[kb.String()] = acc
		}
		acc.count++
		d := uint64(r.Dur)
		acc.sumDur += d
		if d > acc.maxDur {
			acc.maxDur = d
		}
		if wantHist {
			acc.hist[bits.Len64(d)]++
		}
	}
	list := make([]*groupAcc, 0, len(accs))
	for _, a := range accs {
		list = append(list, a)
	}
	sort.Slice(list, func(i, j int) bool {
		for k := range list[i].nums {
			if list[i].nums[k] != list[j].nums[k] {
				return list[i].nums[k] < list[j].nums[k]
			}
		}
		return false
	})
	v.groups = make([]Group, 0, len(list))
	for _, a := range list {
		grp := Group{Key: a.key, Count: a.count}
		for _, ag := range s.aggs {
			switch ag {
			case aggSum:
				sum := a.sumDur
				grp.SumDur = &sum
			case aggMean:
				m := 0.0
				if a.count > 0 {
					m = float64(a.sumDur) / float64(a.count)
				}
				grp.MeanDur = &m
			case aggMax:
				mx := a.maxDur
				grp.MaxDur = &mx
			case aggHist:
				var ks []int
				for b := range a.hist {
					ks = append(ks, b)
				}
				sort.Ints(ks)
				for _, b := range ks {
					up := uint64(0)
					if b > 0 {
						up = 1<<uint(b) - 1
					}
					grp.HistDur = append(grp.HistDur, HistBucket{Le: up, N: a.hist[b]})
				}
			}
		}
		v.groups = append(v.groups, grp)
	}
	v.recs, v.recsLive = nil, false
	return nil
}

// displayValue renders a field value for group keys and tables: kind names,
// hex lines, true/false fp, decimal otherwise.
func displayValue(field string, n int64) string {
	switch field {
	case "kind":
		return flight.Kind(n).String()
	case "line":
		return fmt.Sprintf("0x%x", uint64(n))
	case "fp":
		if n != 0 {
			return "true"
		}
		return "false"
	case "status":
		return replay.Status(n).String()
	}
	return strconv.FormatInt(n, 10)
}

type topStage struct {
	k  int
	by aggKind
}

func (s *topStage) apply(v *value, env *Env) error {
	if v.groups == nil {
		return fmt.Errorf("flightql: top needs groups (put it after group by)")
	}
	rank := func(g *Group) float64 {
		switch s.by {
		case aggSum:
			if g.SumDur != nil {
				return float64(*g.SumDur)
			}
		case aggMean:
			if g.MeanDur != nil {
				return *g.MeanDur
			}
		case aggMax:
			if g.MaxDur != nil {
				return float64(*g.MaxDur)
			}
		default:
			return float64(g.Count)
		}
		return -1 // aggregate not computed by the group stage
	}
	for i := range v.groups {
		if s.by != aggCount && rank(&v.groups[i]) < 0 {
			return fmt.Errorf("flightql: top by %s needs 'agg %s' in the group stage", s.by, s.by)
		}
	}
	sort.SliceStable(v.groups, func(i, j int) bool {
		ri, rj := rank(&v.groups[i]), rank(&v.groups[j])
		if ri != rj {
			return ri > rj
		}
		return false // stable: keep the group stage's key order for ties
	})
	if len(v.groups) > s.k {
		v.groups = v.groups[:s.k]
	}
	return nil
}

type countStage struct{}

func (s *countStage) apply(v *value, env *Env) error {
	n, err := pipelineCount(v)
	if err != nil {
		return err
	}
	*v = value{count: &n}
	return nil
}

func pipelineCount(v *value) (uint64, error) {
	switch {
	case v.recsLive:
		return uint64(len(v.recs)), nil
	case v.groups != nil:
		return uint64(len(v.groups)), nil
	case v.lines != nil:
		return uint64(len(v.lines)), nil
	case v.cores != nil:
		return uint64(len(v.cores)), nil
	case v.count != nil:
		return *v.count, nil
	}
	return 0, fmt.Errorf("flightql: nothing to count here")
}

type expectStage struct {
	agg  aggKind
	op   string
	want int64
}

func (s *expectStage) apply(v *value, env *Env) error {
	var got float64
	switch s.agg {
	case aggCount:
		n, err := pipelineCount(v)
		if err != nil {
			return err
		}
		got = float64(n)
	default:
		if !v.recsLive {
			return fmt.Errorf("flightql: expect %s needs records", s.agg)
		}
		var sum, max uint64
		for i := range v.recs {
			d := uint64(v.recs[i].Dur)
			sum += d
			if d > max {
				max = d
			}
		}
		switch s.agg {
		case aggSum:
			got = float64(sum)
		case aggMax:
			got = float64(max)
		case aggMean:
			if len(v.recs) > 0 {
				got = float64(sum) / float64(len(v.recs))
			}
		}
	}
	want := float64(s.want)
	var pass bool
	switch s.op {
	case "==":
		pass = got == want
	case "!=":
		pass = got != want
	case "<":
		pass = got < want
	case "<=":
		pass = got <= want
	case ">":
		pass = got > want
	case ">=":
		pass = got >= want
	}
	*v = value{assert: &AssertResult{
		Expr: fmt.Sprintf("%s %s %d", s.agg, s.op, s.want),
		Got:  got,
		Pass: pass,
	}}
	return nil
}

type showKind int

const (
	showState showKind = iota
	showCores
	showLines
)

type atStage struct {
	cycle sim.Time
	show  showKind
	where expr
}

func (s *atStage) apply(v *value, env *Env) error {
	if !v.recsLive {
		return fmt.Errorf("flightql: at cycle needs records (it replays the stream)")
	}
	st := replay.At(v.recs, env.Cores, s.cycle)
	*v = value{}
	switch s.show {
	case showState:
		v.state = st
	case showCores:
		for i := range st.Cores {
			if s.where != nil {
				ok, err := s.where.eval(coreGetter(&st.Cores[i]))
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			v.cores = append(v.cores, st.Cores[i])
		}
		if v.cores == nil {
			v.cores = []replay.CoreState{}
		}
	case showLines:
		for i := range st.Lines {
			if s.where != nil {
				ok, err := s.where.eval(lineGetter(&st.Lines[i]))
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			v.lines = append(v.lines, st.Lines[i])
		}
		if v.lines == nil {
			v.lines = []replay.LineState{}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Running

// Env parameterizes a run.
type Env struct {
	// Cores sizes replay's per-core tables (0 derives it from the records).
	Cores int
}

// Run executes the pipeline over a record stream (flight Snapshot order).
func (q *Query) Run(recs []flight.Rec) (*Result, error) {
	return q.RunEnv(recs, Env{})
}

// RunEnv is Run with an explicit environment.
func (q *Query) RunEnv(recs []flight.Rec, env Env) (*Result, error) {
	v := &value{recs: recs, recsLive: true}
	for _, st := range q.stages {
		if err := st.apply(v, &env); err != nil {
			return nil, err
		}
	}
	return v.result(), nil
}

// Run parses and executes src in one step.
func Run(src string, recs []flight.Rec) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return q.Run(recs)
}

func (v *value) result() *Result {
	switch {
	case v.assert != nil:
		return &Result{Kind: "assert", Assert: v.assert}
	case v.count != nil:
		return &Result{Kind: "count", Count: v.count}
	case v.state != nil:
		return &Result{Kind: "state", State: v.state}
	case v.lines != nil:
		return &Result{Kind: "lines", Lines: v.lines}
	case v.cores != nil:
		return &Result{Kind: "cores", Cores: v.cores}
	case v.groups != nil:
		return &Result{Kind: "groups", Groups: v.groups}
	}
	out := &Result{Kind: "records", Records: []RecView{}}
	for i := range v.recs {
		out.Records = append(out.Records, recView(&v.recs[i]))
	}
	return out
}

func recView(r *flight.Rec) RecView {
	rv := RecView{
		Seq:  r.Seq,
		At:   uint64(r.At),
		Dur:  uint64(r.Dur),
		Core: int(r.Core),
		Peer: int(r.Peer),
		Kind: r.Kind.String(),
		Aux:  r.Aux & flight.AuxMask,
		FP:   r.Aux&flight.AuxFP != 0,
	}
	if r.Line != 0 {
		rv.Line = fmt.Sprintf("0x%x", uint64(r.Line))
	}
	return rv
}
