package flightql

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/sim"
)

type stream struct {
	recs []flight.Rec
}

func (s *stream) add(at sim.Time, core int, k flight.Kind, peer int, aux uint8, line memory.LineAddr, dur sim.Time) {
	s.recs = append(s.recs, flight.Rec{
		At: at, Dur: dur, Line: line, Seq: uint64(len(s.recs) + 1),
		Core: int16(core), Peer: int16(peer), Kind: k, Aux: aux,
	})
}

func duelStream() []flight.Rec {
	var s stream
	s.add(10, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(12, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 0, flight.CSTSet, 1, uint8(cst.WW), 0x40, 0)
	s.add(22, 1, flight.CSTSet, 0, uint8(cst.RW)|flight.AuxFP, 0x80, 0)
	s.add(24, 0, flight.CMStall, 1, 0, 0x40, 30)
	s.add(25, 0, flight.AbortEnemy, 1, 0, 0x40, 0)
	s.add(30, 1, flight.TxnAbort, -1, 0, 0, 0)
	s.add(40, 1, flight.Backoff, -1, 1, 0, 35)
	s.add(50, 0, flight.TxnCommit, -1, 0, 0, 0)
	s.add(60, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(70, 1, flight.CMStall, 0, 0, 0x40, 12)
	s.add(80, 1, flight.TxnCommit, -1, 0, 0, 0)
	return s.recs
}

func TestFilterByKindAndCore(t *testing.T) {
	res, err := Run("filter kind == cm-stall && core == 1", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "records" || len(res.Records) != 1 {
		t.Fatalf("got %+v", res)
	}
	r := res.Records[0]
	if r.Seq != 11 || r.Dur != 12 || r.Line != "0x40" {
		t.Fatalf("record = %+v", r)
	}
}

func TestFilterWindowAndFP(t *testing.T) {
	res, err := Run("filter at >= 20 && at <= 25 && fp == true", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Kind != "cst-set" || !res.Records[0].FP {
		t.Fatalf("got %+v", res.Records)
	}
}

func TestFilterInListAndNot(t *testing.T) {
	res, err := Run("filter kind in [begin, commit] && !(core == 0)", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("want 3 records (core 1 begins+commit), got %d", len(res.Records))
	}
}

func TestGroupByKind(t *testing.T) {
	res, err := Run("group by kind", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "groups" {
		t.Fatalf("kind = %s", res.Kind)
	}
	// Groups sort by the key's numeric value: kind enum order.
	want := map[string]uint64{"begin": 3, "commit": 2, "abort": 1, "abort-enemy": 1, "cst-set": 2, "cm-stall": 2, "backoff": 1}
	if len(res.Groups) != len(want) {
		t.Fatalf("groups = %+v", res.Groups)
	}
	for _, g := range res.Groups {
		if want[g.Key[0].Value] != g.Count {
			t.Fatalf("group %s count = %d, want %d", g.Key[0].Value, g.Count, want[g.Key[0].Value])
		}
	}
}

func TestGroupAggregatesAndTop(t *testing.T) {
	res, err := Run("filter kind == cm-stall | group by line agg count, sum(dur), mean(dur), max(dur) | top 1 by sum(dur)", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %+v", res.Groups)
	}
	g := res.Groups[0]
	if g.Key[0].Value != "0x40" || g.Count != 2 || *g.SumDur != 42 || *g.MaxDur != 30 || *g.MeanDur != 21 {
		t.Fatalf("group = %+v sum=%d", g, *g.SumDur)
	}
}

func TestTopRequiresComputedAggregate(t *testing.T) {
	if _, err := Run("group by kind | top 2 by sum(dur)", duelStream()); err == nil {
		t.Fatal("top by an aggregate the group stage did not compute should error")
	}
}

func TestHistogramBuckets(t *testing.T) {
	res, err := Run("filter kind == cm-stall | group by kind agg hist(dur)", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	// Durations 30 and 12: buckets <=31 and <=15.
	if len(g.HistDur) != 2 || g.HistDur[0].Le != 15 || g.HistDur[1].Le != 31 {
		t.Fatalf("hist = %+v", g.HistDur)
	}
}

func TestCountAndExpect(t *testing.T) {
	res, err := Run("filter kind == abort | count", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "count" || *res.Count != 1 {
		t.Fatalf("got %+v", res)
	}
	res, err = Run("filter kind == commit | expect count == 2", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Assert == nil || !res.Assert.Pass {
		t.Fatalf("expect failed: %+v", res.Assert)
	}
	res, err = Run("filter kind == cm-stall | expect sum(dur) == 41", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Assert.Pass || res.Assert.Got != 42 {
		t.Fatalf("bad-sum expect: %+v", res.Assert)
	}
}

func TestAtCycleState(t *testing.T) {
	res, err := Run("at cycle 45 show state", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "state" || res.State == nil {
		t.Fatalf("got %+v", res)
	}
	if res.State.Cores[0].Status.String() != "running" || res.State.Cores[1].Status.String() != "aborted" {
		t.Fatalf("cores = %+v", res.State.Cores)
	}
}

func TestAtCycleLinesWhere(t *testing.T) {
	res, err := Run("at cycle 100 show lines where writers > 1", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "lines" || len(res.Lines) != 1 || res.Lines[0].Line != 0x40 {
		t.Fatalf("got %+v", res.Lines)
	}
	// Both lines exist without the predicate.
	res, err = Run("at cycle 100 show lines", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 2 {
		t.Fatalf("got %+v", res.Lines)
	}
}

func TestAtCycleCoresWhereStatus(t *testing.T) {
	res, err := Run("at cycle 45 show cores where status == aborted", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || res.Cores[0].Core != 1 {
		t.Fatalf("got %+v", res.Cores)
	}
}

func TestFilteredReplayComposes(t *testing.T) {
	// Replay over a filtered stream: only core 1's records.
	res, err := Run("filter core == 1 | at cycle 100 show cores where commits > 0", duelStream())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 || res.Cores[0].Core != 1 || res.Cores[0].Commits != 1 {
		t.Fatalf("got %+v", res.Cores)
	}
}

func TestJSONByteStability(t *testing.T) {
	queries := []string{
		"group by core, kind agg count, sum(dur)",
		"at cycle 100 show state",
		"filter kind == cst-set | group by line | top 2 by count",
	}
	for _, q := range queries {
		var a, b bytes.Buffer
		r1, err := Run(q, duelStream())
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		r2, err := Run(q, duelStream())
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if err := r1.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := r2.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("query %q not byte-stable:\n%s\n---\n%s", q, a.String(), b.String())
		}
	}
}

func TestTableRendering(t *testing.T) {
	for _, q := range []string{
		"filter kind == cm-stall",
		"group by kind",
		"count",
		"at cycle 45 show state",
		"at cycle 45 show lines",
		"filter kind == commit | expect count == 2",
	} {
		res, err := Run(q, duelStream())
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var b bytes.Buffer
		res.WriteTable(&b)
		if b.Len() == 0 {
			t.Fatalf("%s: empty table", q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"filter bogus == 1",
		"filter kind == not-a-kind",
		"filter core = 1",
		"group by",
		"group by dur | top 0 by count",
		"top 3 by count",
		"expect hist(dur) == 1",
		"at cycle -5 show state",
		"at cycle 10 show state where core == 0",
		"filter kind == begin | filter-together",
		"filter fp == maybe",
	} {
		if _, err := Run(q, duelStream()); err == nil {
			t.Fatalf("query %q should not parse/run", q)
		}
	}
}

func TestAssertHelper(t *testing.T) {
	Assert(t, duelStream(), "filter kind == watchdog-trip | expect count == 0")
	Assert(t, duelStream(), "filter kind == commit | expect count == 2")

	ft := &fakeTB{}
	Assert(ft, duelStream(), "filter kind == commit | expect count == 99")
	if !ft.failed {
		t.Fatal("failing expectation did not fail the test")
	}
	ft = &fakeTB{}
	Assert(ft, duelStream(), "filter kind == commit")
	if !ft.failed || !strings.Contains(ft.msg, "no expect stage") {
		t.Fatalf("missing-expect query not rejected: %q", ft.msg)
	}
}

type fakeTB struct {
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}
