package flexwatcher

import (
	"testing"

	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// raceFixture: a shared counter protected by a lock, an observer thread
// that holds the lock around its critical sections, and a mutator thread
// that either respects the lock or races.
func raceFixture(t *testing.T, mutatorRespectsLock bool) int {
	t.Helper()
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	lock := sys.Alloc().Alloc(memory.LineWords)
	counter := sys.Alloc().Alloc(memory.LineWords)

	acquire := func(ctx *sim.Ctx, core int) {
		for {
			if sys.Load(ctx, core, lock).Val == 0 {
				if _, ok := sys.CAS(ctx, core, lock, 0, uint64(core)+1); ok {
					return
				}
			}
			ctx.Advance(50)
		}
	}
	release := func(ctx *sim.Ctx, core int) { sys.Store(ctx, core, lock, 0) }

	var d *RaceDetector
	e := sim.NewEngine()
	e.Spawn("observer", 0, func(ctx *sim.Ctx) {
		d = NewRaceDetector(sys, 0)
		d.WatchShared(ctx, counter, "counter")
		for i := 0; i < 20; i++ {
			acquire(ctx, 0)
			d.EnterCritical(ctx)
			v := sys.Load(ctx, 0, counter).Val
			ctx.Advance(300) // critical-section work
			sys.Store(ctx, 0, counter, v+1)
			d.ExitCritical(ctx)
			release(ctx, 0)
			ctx.Advance(200)
		}
	})
	e.Spawn("mutator", 0, func(ctx *sim.Ctx) {
		ctx.Advance(137)
		for i := 0; i < 20; i++ {
			if mutatorRespectsLock {
				acquire(ctx, 1)
			}
			v := sys.Load(ctx, 1, counter).Val
			sys.Store(ctx, 1, counter, v+1)
			if mutatorRespectsLock {
				release(ctx, 1)
			}
			ctx.Advance(173)
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	return d.Races()
}

func TestRaceDetectorCatchesUnlockedWriter(t *testing.T) {
	if races := raceFixture(t, false); races == 0 {
		t.Fatal("racy mutator went undetected")
	}
}

func TestRaceDetectorSilentUnderDiscipline(t *testing.T) {
	if races := raceFixture(t, true); races != 0 {
		t.Fatalf("%d false race reports for a lock-respecting mutator", races)
	}
}

func TestRaceDetectorRearmsAfterAlert(t *testing.T) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	x := sys.Alloc().Alloc(memory.LineWords)
	var d *RaceDetector
	e := sim.NewEngine()
	e.Spawn("observer", 0, func(ctx *sim.Ctx) {
		d = NewRaceDetector(sys, 0)
		d.WatchShared(ctx, x, "x")
		d.EnterCritical(ctx)
		for i := 0; i < 5; i++ {
			ctx.Advance(1000)
			ctx.Sync()
			d.Poll(ctx)
		}
		d.ExitCritical(ctx)
	})
	e.Spawn("mutator", 0, func(ctx *sim.Ctx) {
		for i := 0; i < 3; i++ {
			ctx.Advance(900)
			sys.Store(ctx, 1, x, uint64(i))
		}
	})
	e.Run()
	if d.Races() < 3 {
		t.Fatalf("races = %d, want >= 3 (watchpoint must re-arm)", d.Races())
	}
}
