// Package flexwatcher implements FlexWatcher (Section 8 of the paper): a
// memory-monitoring tool built from FlexTM's non-transactional primitives.
// It demonstrates the decoupling claim — the same signatures and
// alert-on-update hardware that accelerate transactions also implement
// debugger watchpoints:
//
//   - AOU precisely monitors cache-block-aligned regions (invariant checks);
//   - signatures give unbounded monitoring with false positives (buffer
//     overflow and leak detection), via the Table 4(a) interface: insert,
//     member, activate, clear.
//
// On a watch hit the hardware effects an alert into a software handler,
// which disambiguates (the signature is conservative) and runs the
// registered check.
package flexwatcher

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// Event classifies a detected memory bug.
type Event int

// Bug kinds from Table 4(b).
const (
	// BufferOverflow: a write landed in a guard zone past a heap buffer.
	BufferOverflow Event = iota
	// InvariantViolation: a watched variable broke its predicate.
	InvariantViolation
	// LeakTouch: a tracked heap object was accessed (its timestamp
	// refreshes; objects never touched again are leak candidates).
	LeakTouch
)

// Report is one detection.
type Report struct {
	Event Event
	Addr  memory.Addr
	At    sim.Time
}

// Watcher drives FlexTM's monitoring hardware for one core.
type Watcher struct {
	sys  *tmesi.System
	core int

	// Disambiguation tables: the signature is conservative, so the
	// handler checks precise membership in software.
	guards     map[memory.LineAddr]memory.Addr // guard line -> owning buffer
	tracked    map[memory.LineAddr]memory.Addr // leak-tracked line -> object
	invariants map[memory.LineAddr]func(v uint64) bool

	lastTouch map[memory.Addr]sim.Time // leak timestamps per object
	Reports   []Report

	// HandlerCycles is the software cost charged per alert.
	HandlerCycles sim.Time
}

// New returns a watcher for core on sys. Monitoring is off until the first
// watch is registered (the Table 4a "activate" instruction).
func New(sys *tmesi.System, core int) *Watcher {
	return &Watcher{
		sys:           sys,
		core:          core,
		guards:        make(map[memory.LineAddr]memory.Addr),
		tracked:       make(map[memory.LineAddr]memory.Addr),
		invariants:    make(map[memory.LineAddr]func(uint64) bool),
		lastTouch:     make(map[memory.Addr]sim.Time),
		HandlerCycles: 60,
	}
}

// GuardBuffer pads a heap buffer with one guard line and watches it for
// modification (the paper's BO recipe: "pad all heap allocated buffers with
// 64 bytes and watch padded locations"). It returns the guard address.
func (w *Watcher) GuardBuffer(buf memory.Addr, words int) memory.Addr {
	guard := buf + memory.Addr(words)
	// Round up to the next full line so the guard covers its own line.
	if guard%memory.LineWords != 0 {
		guard += memory.LineWords - guard%memory.LineWords
	}
	w.sys.WatchInsert(w.core, guard, true)
	w.guards[guard.Line()] = buf
	w.activate()
	return guard
}

// TrackObject registers a heap object for leak detection: every access
// refreshes its timestamp (the paper's ML recipe).
func (w *Watcher) TrackObject(obj memory.Addr, words int) {
	for l := obj.Line(); l <= (obj + memory.Addr(words-1)).Line(); l++ {
		// All accesses refresh the timestamp: watch reads and writes.
		w.sys.WatchInsert(w.core, l.WordOf(0), false)
		w.sys.WatchInsert(w.core, l.WordOf(0), true)
		w.tracked[l] = obj
	}
	w.activate()
}

// WatchLocalInvariant monitors local writes to addr's line via the
// signature path and asserts check after each one (the IV recipe for
// single-threaded programs, which modify the variable themselves).
func (w *Watcher) WatchLocalInvariant(addr memory.Addr, check func(v uint64) bool) {
	w.sys.WatchInsert(w.core, addr, true)
	w.invariants[addr.Line()] = check
	w.activate()
}

// WatchInvariant ALoads the cache block of addr and asserts check on every
// alerted access (the paper's IV recipe).
func (w *Watcher) WatchInvariant(ctx *sim.Ctx, addr memory.Addr, check func(v uint64) bool) {
	w.sys.ALoad(ctx, w.core, addr)
	w.invariants[addr.Line()] = check
}

func (w *Watcher) activate() { w.sys.SetSigWatch(w.core, true) }

// Deactivate turns local access monitoring off.
func (w *Watcher) Deactivate() { w.sys.SetSigWatch(w.core, false) }

// Leaked returns tracked objects not touched since the given time: leak
// candidates.
func (w *Watcher) Leaked(since sim.Time) []memory.Addr {
	var out []memory.Addr
	seen := map[memory.Addr]bool{}
	for _, obj := range w.tracked {
		if seen[obj] {
			continue
		}
		seen[obj] = true
		if w.lastTouch[obj] <= since {
			out = append(out, obj)
		}
	}
	return out
}

// handleHit is the user-level alert handler: it disambiguates the
// conservative signature hit and records real events.
func (w *Watcher) handleHit(ctx *sim.Ctx, a memory.Addr, write bool) {
	ctx.Advance(w.HandlerCycles)
	line := a.Line()
	if buf, ok := w.guards[line]; ok && write {
		w.Reports = append(w.Reports, Report{Event: BufferOverflow, Addr: a, At: ctx.Now()})
		_ = buf
		return
	}
	if obj, ok := w.tracked[line]; ok {
		w.lastTouch[obj] = ctx.Now()
		w.Reports = append(w.Reports, Report{Event: LeakTouch, Addr: a, At: ctx.Now()})
		return
	}
	if check, ok := w.invariants[line]; ok && write {
		v := w.sys.ReadWordRaw(line.WordOf(0))
		if !check(v) {
			w.Reports = append(w.Reports, Report{Event: InvariantViolation, Addr: a, At: ctx.Now()})
		}
	}
}

// handleAlert services an AOU alert (invariant watching).
func (w *Watcher) handleAlert(ctx *sim.Ctx, line memory.LineAddr) {
	ctx.Advance(w.HandlerCycles)
	check, ok := w.invariants[line]
	if !ok {
		return
	}
	v := w.sys.Load(ctx, w.core, line.WordOf(0)).Val
	if !check(v) {
		w.Reports = append(w.Reports, Report{Event: InvariantViolation, Addr: line.WordOf(0), At: ctx.Now()})
	}
	// Re-arm the watchpoint.
	w.sys.ALoad(ctx, w.core, line.WordOf(0))
}

// Count returns the number of reports of the given kind.
func (w *Watcher) Count(e Event) int {
	n := 0
	for _, r := range w.Reports {
		if r.Event == e {
			n++
		}
	}
	return n
}

// Prog is the execution harness for a monitored program: every load and
// store goes through the machine, and watch hits or alerts trap into the
// watcher's handlers — the FlexWatcher execution mode of Table 4(b).
type Prog struct {
	sys  *tmesi.System
	ctx  *sim.Ctx
	core int
	w    *Watcher

	// Instrument selects a Discover-style software instrumentation mode
	// instead: every access pays shadow-memory checks in software, with no
	// hardware assist. Used as the comparison column of Table 4(b).
	Instrument bool
	shadow     memory.Addr
}

// NewProg returns an execution harness on core. w may be nil (baseline
// uninstrumented run).
func NewProg(sys *tmesi.System, ctx *sim.Ctx, core int, w *Watcher) *Prog {
	return &Prog{sys: sys, ctx: ctx, core: core, w: w,
		shadow: sys.Alloc().Alloc(4096)}
}

// discoverCheck models binary-instrumentation overhead: per-access
// instrumentation stubs (call, spill, shadow-memory lookup, bounds check,
// return) cost on the order of a hundred instructions in tools of this
// class, which is what produces the 17-75x slowdowns in Table 4(b).
func (p *Prog) discoverCheck(a memory.Addr) {
	sh := p.shadow + memory.Addr(uint64(a)%4096)
	p.sys.Load(p.ctx, p.core, sh)
	p.ctx.Advance(95) // inserted stub instructions
}

// Load performs a monitored load.
func (p *Prog) Load(a memory.Addr) uint64 {
	if p.Instrument {
		p.discoverCheck(a)
	}
	res := p.sys.Load(p.ctx, p.core, a)
	p.dispatch(res, a, false)
	return res.Val
}

// Store performs a monitored store.
func (p *Prog) Store(a memory.Addr, v uint64) {
	if p.Instrument {
		p.discoverCheck(a)
	}
	res := p.sys.Store(p.ctx, p.core, a, v)
	p.dispatch(res, a, true)
}

// Work advances computation time.
func (p *Prog) Work(d sim.Time) { p.ctx.Advance(d) }

// Now returns the thread clock.
func (p *Prog) Now() sim.Time { return p.ctx.Now() }

func (p *Prog) dispatch(res tmesi.OpResult, a memory.Addr, write bool) {
	if p.w == nil {
		return
	}
	if res.WatchHit {
		p.w.handleHit(p.ctx, a, write)
	}
	if line, ok := p.sys.TakeAlert(p.core); ok {
		p.w.handleAlert(p.ctx, line)
	}
}
