package flexwatcher

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// RaceDetector demonstrates the alert-on-update hardware applied to data-race
// detection, one of the non-transactional uses the paper's TR version
// proposes for FlexTM components (debugging/fault tolerance). The tool
// ALoads variables that a locking discipline says may only change while the
// observing thread does NOT hold the protecting lock; an alert that arrives
// while the lock is held means some other thread wrote the variable without
// acquiring it — a data race, caught by hardware with zero per-access
// software checks.
type RaceDetector struct {
	sys  *tmesi.System
	core int

	watched map[memory.LineAddr]string
	inCrit  bool
	Reports []RaceReport
	// HandlerCycles is the software cost per alert.
	HandlerCycles sim.Time
}

// RaceReport records one detected race.
type RaceReport struct {
	Variable string
	At       sim.Time
}

// NewRaceDetector returns a detector for the thread on core.
func NewRaceDetector(sys *tmesi.System, core int) *RaceDetector {
	return &RaceDetector{
		sys:           sys,
		core:          core,
		watched:       make(map[memory.LineAddr]string),
		HandlerCycles: 60,
	}
}

// WatchShared registers a lock-protected variable: remote modification
// while this thread is inside the critical section is a race.
func (d *RaceDetector) WatchShared(ctx *sim.Ctx, addr memory.Addr, name string) {
	d.sys.ALoad(ctx, d.core, addr)
	d.watched[addr.Line()] = name
}

// EnterCritical marks the start of this thread's critical section (called
// right after its lock acquire).
func (d *RaceDetector) EnterCritical(ctx *sim.Ctx) {
	d.drain(ctx) // alerts before this point were outside the section
	d.inCrit = true
}

// ExitCritical marks the end of the critical section (called right before
// the lock release).
func (d *RaceDetector) ExitCritical(ctx *sim.Ctx) {
	d.Poll(ctx)
	d.inCrit = false
}

// Poll consumes pending alerts; alerts on watched lines while inside the
// critical section are races. Watchpoints re-arm automatically.
func (d *RaceDetector) Poll(ctx *sim.Ctx) {
	for {
		line, ok := d.sys.TakeAlert(d.core)
		if !ok {
			return
		}
		ctx.Advance(d.HandlerCycles)
		name, watched := d.watched[line]
		if watched && d.inCrit {
			d.Reports = append(d.Reports, RaceReport{Variable: name, At: ctx.Now()})
		}
		if watched {
			d.sys.ALoad(ctx, d.core, line.WordOf(0)) // re-arm
		}
	}
}

// drain discards alerts that arrived outside any critical section (benign
// under the discipline) while re-arming the watchpoints.
func (d *RaceDetector) drain(ctx *sim.Ctx) {
	was := d.inCrit
	d.inCrit = false
	d.Poll(ctx)
	d.inCrit = was
}

// Races returns the number of reports.
func (d *RaceDetector) Races() int { return len(d.Reports) }
