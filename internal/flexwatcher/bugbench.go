package flexwatcher

import (
	"fmt"

	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// Program is one BugBench-style test program with a planted memory bug
// (Table 4b). Run executes the program through the given harness; Watch
// registers the FlexWatcher recipe for its bug class.
type Program struct {
	Name string
	Bug  string // BO (buffer overflow), ML (memory leak), IV (invariant violation)
	// Iterations scales run length.
	Iterations int
	// setup allocates program state; run executes one iteration.
	setup func(p *Prog, w *Watcher) *progState
	run   func(p *Prog, st *progState, i int)
}

// progState carries per-program addresses.
type progState struct {
	bufs    []memory.Addr
	bufLen  int
	extra   memory.Addr
	invAddr memory.Addr
}

// Programs returns the five Table 4(b) analogues. Each plants the paper's
// bug class with an access profile chosen to mirror the original's
// malloc count and memory-access density.
func Programs() []Program {
	return []Program{
		{
			// bc: arithmetic on heap arrays; dense memory traffic, rare
			// off-by-N writes past the array end.
			Name: "BC-BO", Bug: "BO", Iterations: 3000,
			setup: func(p *Prog, w *Watcher) *progState {
				st := &progState{bufLen: 32}
				for i := 0; i < 8; i++ {
					buf := p.sys.Alloc().Alloc(st.bufLen + memory.LineWords)
					if w != nil {
						w.GuardBuffer(buf, st.bufLen)
					}
					st.bufs = append(st.bufs, buf)
				}
				return st
			},
			run: func(p *Prog, st *progState, i int) {
				buf := st.bufs[i%len(st.bufs)]
				idx := i % st.bufLen
				if i%200 == 199 {
					idx = st.bufLen + i%4 // overflow into the guard
				}
				p.Store(buf+memory.Addr(idx), uint64(i))
				p.Load(buf + memory.Addr((idx*7)%st.bufLen))
			},
		},
		{
			// gzip: window-buffer compression; compute between accesses.
			Name: "Gzip-BO", Bug: "BO", Iterations: 3000,
			setup: func(p *Prog, w *Watcher) *progState {
				st := &progState{bufLen: 128}
				buf := p.sys.Alloc().Alloc(st.bufLen + memory.LineWords)
				if w != nil {
					w.GuardBuffer(buf, st.bufLen)
				}
				st.bufs = []memory.Addr{buf}
				return st
			},
			run: func(p *Prog, st *progState, i int) {
				buf := st.bufs[0]
				idx := (i * 13) % st.bufLen
				if i%500 == 499 {
					idx = st.bufLen + 1
				}
				v := p.Load(buf + memory.Addr((idx*5)%st.bufLen))
				p.Work(12) // deflate computation
				p.Store(buf+memory.Addr(idx), v+1)
			},
		},
		{
			// gzip invariant: the output count must stay under the buffer
			// size; the planted bug pushes it over.
			Name: "Gzip-IV", Bug: "IV", Iterations: 3000,
			setup: func(p *Prog, w *Watcher) *progState {
				st := &progState{invAddr: p.sys.Alloc().Alloc(memory.LineWords)}
				if w != nil {
					w.WatchLocalInvariant(st.invAddr, func(v uint64) bool { return v < 4096 })
				}
				return st
			},
			run: func(p *Prog, st *progState, i int) {
				v := p.Load(st.invAddr)
				p.Work(10)
				// The counter advances only at block boundaries; most
				// iterations just read it, so the watchpoint fires rarely.
				if i%25 != 24 {
					return
				}
				if i%1000 == 999 {
					v = 5000 // invariant violation
				} else {
					v = (v + 25) % 4000
				}
				p.Store(st.invAddr, v)
			},
		},
		{
			// man: many small string buffers, frequent off-by-one writes.
			Name: "Man", Bug: "BO", Iterations: 3000,
			setup: func(p *Prog, w *Watcher) *progState {
				st := &progState{bufLen: 8}
				for i := 0; i < 48; i++ {
					buf := p.sys.Alloc().Alloc(st.bufLen + memory.LineWords)
					if w != nil {
						w.GuardBuffer(buf, st.bufLen)
					}
					st.bufs = append(st.bufs, buf)
				}
				return st
			},
			run: func(p *Prog, st *progState, i int) {
				buf := st.bufs[i%len(st.bufs)]
				n := st.bufLen
				if i%100 == 99 {
					n = st.bufLen + 1 // strcpy off-by-one
				}
				for j := 0; j < n; j++ {
					p.Store(buf+memory.Addr(j), uint64(j))
				}
			},
		},
		{
			// squid: leak detection — every tracked-object access traps to
			// refresh its timestamp, the costliest recipe (2.5x in the
			// paper).
			Name: "Squid", Bug: "ML", Iterations: 3000,
			setup: func(p *Prog, w *Watcher) *progState {
				st := &progState{bufLen: memory.LineWords}
				for i := 0; i < 32; i++ {
					obj := p.sys.Alloc().Alloc(st.bufLen)
					if w != nil {
						w.TrackObject(obj, st.bufLen)
					}
					st.bufs = append(st.bufs, obj)
				}
				st.extra = p.sys.Alloc().Alloc(512)
				return st
			},
			run: func(p *Prog, st *progState, i int) {
				if i%4 == 0 {
					// Touch a cached object (half of them are "forgotten"
					// and never touched: the leak).
					obj := st.bufs[i%(len(st.bufs)/2)]
					p.Load(obj)
				} else {
					p.Store(st.extra+memory.Addr(i%512), uint64(i))
				}
				p.Work(6)
			},
		},
	}
}

// Mode selects how a program is executed.
type Mode int

// Execution modes of Table 4(b).
const (
	// Plain: no monitoring.
	Plain Mode = iota
	// WithFlexWatcher: signatures + AOU monitoring.
	WithFlexWatcher
	// WithDiscover: binary-instrumentation-style software checks on every
	// access (the tool the paper compares against).
	WithDiscover
)

// RunProgram executes prog once in the given mode on a fresh machine and
// returns elapsed cycles, the watcher (nil unless WithFlexWatcher), and an
// error if the planted bug went undetected.
func RunProgram(prog Program, mode Mode, machine tmesi.Config) (sim.Time, *Watcher, error) {
	sys := tmesi.New(machine)
	e := sim.NewEngine()
	var elapsed sim.Time
	var w *Watcher
	var detectErr error
	e.Spawn(prog.Name, 0, func(ctx *sim.Ctx) {
		p := NewProg(sys, ctx, 0, nil)
		switch mode {
		case WithFlexWatcher:
			w = New(sys, 0)
			p.w = w
		case WithDiscover:
			p.Instrument = true
		}
		st := prog.setup(p, w)
		start := ctx.Now()
		for i := 0; i < prog.Iterations; i++ {
			prog.run(p, st, i)
		}
		elapsed = ctx.Now() - start
		if mode == WithFlexWatcher {
			detectErr = checkDetection(prog, w, st, start)
		}
	})
	if blocked := e.Run(); blocked != 0 {
		return 0, nil, fmt.Errorf("flexwatcher: program blocked")
	}
	return elapsed, w, detectErr
}

func checkDetection(prog Program, w *Watcher, st *progState, start sim.Time) error {
	switch prog.Bug {
	case "BO":
		if w.Count(BufferOverflow) == 0 {
			return fmt.Errorf("%s: planted buffer overflow undetected", prog.Name)
		}
	case "IV":
		if w.Count(InvariantViolation) == 0 {
			return fmt.Errorf("%s: planted invariant violation undetected", prog.Name)
		}
	case "ML":
		if len(w.Leaked(start)) == 0 {
			return fmt.Errorf("%s: leaked objects not identified", prog.Name)
		}
	}
	return nil
}

// Row is one line of the Table 4(b) reproduction.
type Row struct {
	Program      string
	Bug          string
	FlexWatcherX float64 // slowdown vs plain
	DiscoverX    float64
	Detections   int
}

// Table4 runs every program in all three modes and reports slowdowns.
func Table4(machine tmesi.Config) ([]Row, error) {
	var rows []Row
	for _, prog := range Programs() {
		plain, _, err := RunProgram(prog, Plain, machine)
		if err != nil {
			return nil, err
		}
		fxw, w, err := RunProgram(prog, WithFlexWatcher, machine)
		if err != nil {
			return nil, err
		}
		dis, _, err := RunProgram(prog, WithDiscover, machine)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Program:      prog.Name,
			Bug:          prog.Bug,
			FlexWatcherX: float64(fxw) / float64(plain),
			DiscoverX:    float64(dis) / float64(plain),
			Detections:   len(w.Reports),
		})
	}
	return rows, nil
}

// PrintTable4 renders rows as text.
func PrintTable4(rows []Row) string {
	s := fmt.Sprintf("%-10s %-4s %14s %12s\n", "Program", "Bug", "FlexWatcher", "Discover")
	for _, r := range rows {
		s += fmt.Sprintf("%-10s %-4s %13.2fx %11.2fx\n", r.Program, r.Bug, r.FlexWatcherX, r.DiscoverX)
	}
	return s
}
