package flexwatcher

import (
	"strings"
	"testing"

	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

func machine() tmesi.Config {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	return cfg
}

func TestGuardDetectsOverflow(t *testing.T) {
	sys := tmesi.New(machine())
	e := sim.NewEngine()
	e.Spawn("prog", 0, func(ctx *sim.Ctx) {
		w := New(sys, 0)
		p := NewProg(sys, ctx, 0, w)
		buf := sys.Alloc().Alloc(16 + memory.LineWords)
		guard := w.GuardBuffer(buf, 16)
		for i := 0; i < 16; i++ {
			p.Store(buf+memory.Addr(i), 1) // in bounds: no reports
		}
		if w.Count(BufferOverflow) != 0 {
			t.Errorf("false overflow report on in-bounds writes")
		}
		p.Store(guard+1, 0xBAD) // past the end
		if w.Count(BufferOverflow) != 1 {
			t.Errorf("overflow not detected")
		}
		// Reads of the guard are not modification.
		p.Load(guard + 1)
		if w.Count(BufferOverflow) != 1 {
			t.Errorf("read of guard misreported as overflow")
		}
	})
	e.Run()
}

func TestLeakDetection(t *testing.T) {
	sys := tmesi.New(machine())
	e := sim.NewEngine()
	e.Spawn("prog", 0, func(ctx *sim.Ctx) {
		w := New(sys, 0)
		p := NewProg(sys, ctx, 0, w)
		live := sys.Alloc().Alloc(memory.LineWords)
		leaked := sys.Alloc().Alloc(memory.LineWords)
		w.TrackObject(live, memory.LineWords)
		w.TrackObject(leaked, memory.LineWords)
		start := ctx.Now()
		for i := 0; i < 50; i++ {
			p.Load(live)
			p.Work(100)
		}
		lost := w.Leaked(start)
		if len(lost) != 1 || lost[0] != leaked {
			t.Errorf("Leaked = %v, want [%d]", lost, leaked)
		}
	})
	e.Run()
}

func TestLocalInvariantViolation(t *testing.T) {
	sys := tmesi.New(machine())
	e := sim.NewEngine()
	e.Spawn("prog", 0, func(ctx *sim.Ctx) {
		w := New(sys, 0)
		p := NewProg(sys, ctx, 0, w)
		x := sys.Alloc().Alloc(memory.LineWords)
		w.WatchLocalInvariant(x, func(v uint64) bool { return v < 100 })
		p.Store(x, 50)
		if w.Count(InvariantViolation) != 0 {
			t.Error("false violation")
		}
		p.Store(x, 500)
		if w.Count(InvariantViolation) != 1 {
			t.Error("violation missed")
		}
	})
	e.Run()
}

func TestRemoteInvariantViaAOU(t *testing.T) {
	sys := tmesi.New(machine())
	x := sys.Alloc().Alloc(memory.LineWords)
	sys.Image().WriteWord(x, 1)
	var w *Watcher
	e := sim.NewEngine()
	e.Spawn("watcher", 0, func(ctx *sim.Ctx) {
		w = New(sys, 0)
		p := NewProg(sys, ctx, 0, w)
		w.WatchInvariant(ctx, x, func(v uint64) bool { return v != 0 })
		for i := 0; i < 50; i++ {
			p.Work(100)
			p.Load(x + 7) // same line; keeps polling alerts
		}
	})
	e.Spawn("mutator", 0, func(ctx *sim.Ctx) {
		ctx.Advance(1000)
		sys.Store(ctx, 1, x, 0) // remote write breaks the invariant
	})
	e.Run()
	if w.Count(InvariantViolation) == 0 {
		t.Fatal("remote invariant violation not caught via AOU")
	}
}

func TestAllProgramsDetectTheirBugs(t *testing.T) {
	for _, prog := range Programs() {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			_, _, err := RunProgram(prog, WithFlexWatcher, machine())
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTable4SlowdownShape(t *testing.T) {
	rows, err := Table4(machine())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.FlexWatcherX < 1.0 {
			t.Errorf("%s: FlexWatcher speedup?! %.2fx", r.Program, r.FlexWatcherX)
		}
		if r.FlexWatcherX > 4 {
			t.Errorf("%s: FlexWatcher slowdown %.2fx too large (paper: 1.05-2.5x)",
				r.Program, r.FlexWatcherX)
		}
		// The paper only reports Discover for the BO programs (N/A for
		// Gzip-IV and Squid); there it is an order of magnitude worse.
		if r.Bug == "BO" && r.DiscoverX < 8*r.FlexWatcherX {
			t.Errorf("%s: Discover (%.2fx) not an order of magnitude worse than FlexWatcher (%.2fx)",
				r.Program, r.DiscoverX, r.FlexWatcherX)
		}
	}
	out := PrintTable4(rows)
	if !strings.Contains(out, "Squid") {
		t.Fatal("table output incomplete")
	}
}
