// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models a chip multiprocessor as a set of hardware threads, each
// executed by a Go goroutine that is resumed one at a time in virtual-time
// order. A thread runs uninterrupted between synchronization points (memory
// operations); at each such point it yields control back to the engine, which
// resumes the thread with the smallest virtual clock. Ties are broken by
// thread id, so a simulation is bit-deterministic for a given configuration
// and seed.
//
// Because exactly one thread (or the engine) runs at any instant, simulated
// machine state needs no locking: every structure in the memory system is
// touched only by the currently-resumed thread.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in processor cycles.
type Time = uint64

// Ctx is the execution context of one simulated hardware thread. All methods
// must be called from the goroutine running the thread's body.
type Ctx struct {
	id     int
	name   string
	now    Time
	engine *Engine
	resume chan struct{}
	// state flags, owned by the engine/running thread (never concurrent)
	finished bool
	blocked  bool
	inHeap   bool
	// descheduleReq is set by another thread (e.g. an OS scheduler model) to
	// ask this thread to park at its next synchronization point.
	descheduleReq bool
	parkNotify    func(*Ctx)
}

// ID returns the thread's identifier (also its heap tie-breaker).
func (c *Ctx) ID() int { return c.id }

// Name returns the thread's diagnostic name.
func (c *Ctx) Name() string { return c.name }

// Now returns the thread's local virtual clock.
func (c *Ctx) Now() Time { return c.now }

// Done reports whether the thread can make no further progress on its own:
// it has finished, or it is blocked waiting for another thread. Observer
// threads (e.g. the observatory pump) use it to stop sampling once every
// worker is done, so a perpetual observer cannot keep the engine alive.
func (c *Ctx) Done() bool { return c.finished || c.blocked }

// Advance moves the thread's local clock forward by d cycles without
// yielding. Use it for computation that touches no shared simulated state.
func (c *Ctx) Advance(d Time) { c.now += d }

// Sync yields to the engine until this thread is globally the earliest
// runnable thread. Call it immediately before touching shared simulated
// state (the memory system calls it on every operation).
func (c *Ctx) Sync() {
	if c.descheduleReq {
		c.park()
	}
	c.yield()
}

// Block parks the thread indefinitely; another thread must call
// Engine.Unblock to make it runnable again. The thread's clock is advanced
// to the unblock time if that is later.
func (c *Ctx) Block() {
	c.blocked = true
	c.yield()
}

// park honors a pending deschedule request: it notifies the requester and
// blocks until rescheduled.
func (c *Ctx) park() {
	c.descheduleReq = false
	notify := c.parkNotify
	c.parkNotify = nil
	if notify != nil {
		notify(c)
	}
	c.Block()
}

// yield hands control to the engine. If the thread is not blocked it is
// reinserted into the run queue first.
func (c *Ctx) yield() {
	if !c.blocked {
		c.engine.push(c)
	}
	c.engine.yieldCh <- c
	<-c.resume
}

// Engine is a discrete-event scheduler over a set of simulated threads.
type Engine struct {
	threads []*Ctx
	ready   ctxHeap
	yieldCh chan *Ctx
	running bool
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{yieldCh: make(chan *Ctx)}
}

// Spawn creates a simulated thread that will run body starting at virtual
// time start. The body does not begin executing until Run is called.
func (e *Engine) Spawn(name string, start Time, body func(*Ctx)) *Ctx {
	if e.running {
		panic("sim: Spawn while engine is running")
	}
	c := &Ctx{
		id:     len(e.threads),
		name:   name,
		now:    start,
		engine: e,
		resume: make(chan struct{}),
	}
	e.threads = append(e.threads, c)
	go func() {
		<-c.resume
		body(c)
		c.finished = true
		e.yieldCh <- c
	}()
	e.push(c)
	return c
}

// Unblock makes a blocked thread runnable again no earlier than time at.
// It must be called from a running simulated thread or before Run.
func (e *Engine) Unblock(c *Ctx, at Time) {
	if !c.blocked {
		panic(fmt.Sprintf("sim: Unblock(%s): thread is not blocked", c.name))
	}
	c.blocked = false
	if c.now < at {
		c.now = at
	}
	e.push(c)
}

// RequestPark asks thread c to park at its next synchronization point.
// notify, if non-nil, runs in c's goroutine just before it blocks; use it to
// save state and to learn the park time. If c is the calling thread the park
// happens at its next Sync.
func (e *Engine) RequestPark(c *Ctx, notify func(*Ctx)) {
	if c.finished || c.blocked {
		return
	}
	c.descheduleReq = true
	c.parkNotify = notify
}

// Run executes threads in virtual-time order until every thread has finished
// or blocked. It returns the number of threads left blocked (0 means all ran
// to completion).
func (e *Engine) Run() int {
	e.running = true
	defer func() { e.running = false }()
	for e.ready.Len() > 0 {
		c := e.pop()
		c.resume <- struct{}{}
		<-e.yieldCh
	}
	blocked := 0
	for _, c := range e.threads {
		if c.blocked && !c.finished {
			blocked++
		}
	}
	return blocked
}

// MaxTime returns the largest local clock across all threads: the makespan
// of the simulation.
func (e *Engine) MaxTime() Time {
	var m Time
	for _, c := range e.threads {
		if c.now > m {
			m = c.now
		}
	}
	return m
}

// Threads returns the threads spawned so far, in id order.
func (e *Engine) Threads() []*Ctx { return e.threads }

func (e *Engine) push(c *Ctx) {
	if c.inHeap {
		panic(fmt.Sprintf("sim: thread %s pushed twice", c.name))
	}
	c.inHeap = true
	heap.Push(&e.ready, c)
}

func (e *Engine) pop() *Ctx {
	c := heap.Pop(&e.ready).(*Ctx)
	c.inHeap = false
	return c
}

// ctxHeap orders threads by (now, id).
type ctxHeap []*Ctx

func (h ctxHeap) Len() int { return len(h) }
func (h ctxHeap) Less(i, j int) bool {
	if h[i].now != h[j].now {
		return h[i].now < h[j].now
	}
	return h[i].id < h[j].id
}
func (h ctxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ctxHeap) Push(x interface{}) { *h = append(*h, x.(*Ctx)) }
func (h *ctxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
