package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Each simulated thread owns one so that results are
// reproducible regardless of scheduling of the host goroutines.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since xorshift has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
