package sim

import (
	"testing"
	"testing/quick"
)

func TestSingleThreadRunsToCompletion(t *testing.T) {
	e := NewEngine()
	var steps int
	e.Spawn("solo", 0, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.Advance(5)
			c.Sync()
			steps++
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("blocked = %d, want 0", blocked)
	}
	if steps != 10 {
		t.Fatalf("steps = %d, want 10", steps)
	}
	if got := e.MaxTime(); got != 50 {
		t.Fatalf("MaxTime = %d, want 50", got)
	}
}

func TestThreadsInterleaveInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	// Thread 0 ticks every 10 cycles, thread 1 every 3: events must appear
	// in global time order with ties broken by id.
	e.Spawn("slow", 0, func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.Advance(10)
			c.Sync()
			order = append(order, 0)
		}
	})
	e.Spawn("fast", 0, func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.Advance(3)
			c.Sync()
			order = append(order, 1)
		}
	})
	e.Run()
	// Reconstruct event times and check monotonicity.
	t0, t1 := 0, 0
	prev := -1
	for _, id := range order {
		var at int
		if id == 0 {
			t0 += 10
			at = t0
		} else {
			t1 += 3
			at = t1
		}
		if at < prev {
			t.Fatalf("events out of order: time %d after %d", at, prev)
		}
		prev = at
	}
	if t0 != 30 || t1 != 30 {
		t.Fatalf("threads incomplete: t0=%d t1=%d", t0, t1)
	}
}

func TestTieBrokenByID(t *testing.T) {
	e := NewEngine()
	var first int = -1
	for i := 0; i < 4; i++ {
		id := i
		e.Spawn("t", 0, func(c *Ctx) {
			c.Sync()
			if first == -1 {
				first = id
			}
		})
	}
	e.Run()
	if first != 0 {
		t.Fatalf("first = %d, want 0 (lowest id wins ties)", first)
	}
}

func TestBlockUnblock(t *testing.T) {
	e := NewEngine()
	var c0 *Ctx
	var resumedAt Time
	c0 = e.Spawn("sleeper", 0, func(c *Ctx) {
		c.Block()
		resumedAt = c.Now()
	})
	e.Spawn("waker", 0, func(c *Ctx) {
		c.Advance(100)
		c.Sync()
		e.Unblock(c0, c.Now())
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("blocked = %d, want 0", blocked)
	}
	if resumedAt != 100 {
		t.Fatalf("resumedAt = %d, want 100", resumedAt)
	}
}

func TestRunReportsPermanentlyBlocked(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", 0, func(c *Ctx) { c.Block() })
	if blocked := e.Run(); blocked != 1 {
		t.Fatalf("blocked = %d, want 1", blocked)
	}
}

func TestRequestParkStopsThreadAtSync(t *testing.T) {
	e := NewEngine()
	var target *Ctx
	var parkedAt Time
	var progress int
	target = e.Spawn("victim", 0, func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Advance(1)
			c.Sync()
			progress++
		}
	})
	e.Spawn("os", 0, func(c *Ctx) {
		c.Advance(10)
		c.Sync()
		e.RequestPark(target, func(v *Ctx) { parkedAt = v.Now() })
		c.Advance(50)
		c.Sync()
		e.Unblock(target, c.Now())
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("blocked = %d, want 0", blocked)
	}
	if progress != 100 {
		t.Fatalf("progress = %d, want 100 (thread must finish after resume)", progress)
	}
	if parkedAt < 10 || parkedAt > 12 {
		t.Fatalf("parkedAt = %d, want shortly after 10", parkedAt)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var trace []int
		for i := 0; i < 8; i++ {
			id := i
			r := NewRand(uint64(id + 1))
			e.Spawn("t", 0, func(c *Ctx) {
				for j := 0; j < 50; j++ {
					c.Advance(Time(1 + r.Intn(20)))
					c.Sync()
					trace = append(trace, id)
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandDistribution(t *testing.T) {
	r := NewRand(42)
	var buckets [10]int
	for i := 0; i < 10000; i++ {
		buckets[r.Intn(10)]++
	}
	for i, n := range buckets {
		if n < 700 || n > 1300 {
			t.Fatalf("bucket %d has %d hits; distribution badly skewed", i, n)
		}
	}
}

func TestRandZeroSeedIsUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestRandFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
