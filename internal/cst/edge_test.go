package cst

import "testing"

// TestVecEdgeOps pins the bit-level edge semantics the protocol leans on:
// Set and Clear are idempotent, Clear of an unset bit is a no-op, and the
// boundary processors (0 and 63) behave like the middle ones. The W-R scrub
// of Section 3.6 clears bits on remote tables without knowing whether the
// remote already copy-and-cleared them, so redundant clears must be harmless.
func TestVecEdgeOps(t *testing.T) {
	cases := []struct {
		name  string
		build func(v *Vec)
		want  []int
	}{
		{"double set is single set", func(v *Vec) { v.Set(5); v.Set(5) }, []int{5}},
		{"clear unset is no-op", func(v *Vec) { v.Set(5); v.Clear(9) }, []int{5}},
		{"double clear", func(v *Vec) { v.Set(5); v.Clear(5); v.Clear(5) }, nil},
		{"set after clear resurrects", func(v *Vec) { v.Set(5); v.Clear(5); v.Set(5) }, []int{5}},
		{"boundary proc 0", func(v *Vec) { v.Set(0); v.Set(0); v.Clear(63) }, []int{0}},
		{"boundary proc 63", func(v *Vec) { v.Set(63); v.Clear(0); v.Set(63) }, []int{63}},
		{"interleaved", func(v *Vec) {
			v.Set(1)
			v.Set(2)
			v.Clear(1)
			v.Set(3)
			v.Clear(1) // scrub again: already gone
		}, []int{2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var v Vec
			tc.build(&v)
			if v.Count() != len(tc.want) {
				t.Fatalf("Count = %d, want %d (procs %v)", v.Count(), len(tc.want), v.Procs())
			}
			for _, p := range tc.want {
				if !v.Has(p) {
					t.Fatalf("missing proc %d (procs %v)", p, v.Procs())
				}
			}
		})
	}
}

// TestCopyAndClearEdge covers the Figure 3 line-1 primitive's corner cases:
// copy-and-clear of an empty register yields empty (the eager fast path),
// and a second copy-and-clear with no intervening sets yields empty — the
// instruction must not latch stale state.
func TestCopyAndClearEdge(t *testing.T) {
	var v Vec
	if old := v.CopyAndClear(); !old.Empty() {
		t.Fatalf("CopyAndClear of empty = %v", old.Procs())
	}
	v.Set(4)
	first := v.CopyAndClear()
	if !first.Has(4) || first.Count() != 1 {
		t.Fatalf("first CopyAndClear = %v", first.Procs())
	}
	if second := v.CopyAndClear(); !second.Empty() {
		t.Fatalf("second CopyAndClear = %v, want empty", second.Procs())
	}
}

// TestScrubVsCopyAndClearOrdering models the race between a committing
// reader scrubbing its bit from a writer's W-R (Section 3.6) and the writer
// concurrently starting its own Commit() (Figure 3 line 1). Whichever order
// the simulator serializes them in, the register must end empty and the
// writer's local snapshot decides whether the reader gets an (absorbable)
// abort — the scrub must never resurrect a bit or corrupt neighbors.
func TestScrubVsCopyAndClearOrdering(t *testing.T) {
	const reader, other = 2, 7
	t.Run("scrub first", func(t *testing.T) {
		var wr Vec
		wr.Set(reader)
		wr.Set(other)
		wr.Clear(reader) // reader commits, scrubs itself before writer's line 1
		snap := wr.CopyAndClear()
		if snap.Has(reader) {
			t.Fatal("scrubbed reader still in writer's commit snapshot")
		}
		if !snap.Has(other) || snap.Count() != 1 {
			t.Fatalf("snapshot = %v, want [%d]", snap.Procs(), other)
		}
		if !wr.Empty() {
			t.Fatalf("register not empty after copy-and-clear: %v", wr.Procs())
		}
	})
	t.Run("copy-and-clear first", func(t *testing.T) {
		var wr Vec
		wr.Set(reader)
		wr.Set(other)
		snap := wr.CopyAndClear() // writer's line 1 wins the race
		if !snap.Has(reader) {
			t.Fatal("pre-scrub snapshot must still name the reader")
		}
		wr.Clear(reader) // late scrub hits an already-clear register: no-op
		if !wr.Empty() {
			t.Fatalf("late scrub left bits: %v", wr.Procs())
		}
	})
}

// TestTableKindIsolation checks that operations on one register never bleed
// into the others: the three CSTs are architecturally separate registers and
// Enemies() must see exactly W-R|W-W regardless of R-W churn.
func TestTableKindIsolation(t *testing.T) {
	cases := []struct {
		name    string
		ops     func(tb *Table)
		enemies []int
		rw      []int
	}{
		{"rw only", func(tb *Table) { tb.Set(RW, 1); tb.Set(RW, 1) }, nil, []int{1}},
		{"scrub one kind", func(tb *Table) {
			tb.Set(WR, 3)
			tb.Set(WW, 3)
			tb.Set(RW, 3)
			tb.Get(WR).Clear(3) // scrub W-R; W-W and R-W must survive
		}, []int{3}, []int{3}},
		{"copy-and-clear one kind", func(tb *Table) {
			tb.Set(WR, 1)
			tb.Set(WW, 2)
			tb.Get(WW).CopyAndClear()
		}, []int{1}, nil},
		{"clear all then repopulate", func(tb *Table) {
			tb.Set(WR, 1)
			tb.ClearAll()
			tb.ClearAll() // flash clear is idempotent too
			tb.Set(WW, 4)
		}, []int{4}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tb Table
			tc.ops(&tb)
			e := tb.Enemies()
			if e.Count() != len(tc.enemies) {
				t.Fatalf("Enemies = %v, want %v", e.Procs(), tc.enemies)
			}
			for _, p := range tc.enemies {
				if !e.Has(p) {
					t.Fatalf("Enemies = %v, want %v", e.Procs(), tc.enemies)
				}
			}
			got := tb.Get(RW)
			if got.Count() != len(tc.rw) {
				t.Fatalf("R-W = %v, want %v", got.Procs(), tc.rw)
			}
			for _, p := range tc.rw {
				if !got.Has(p) {
					t.Fatalf("R-W = %v, want %v", got.Procs(), tc.rw)
				}
			}
		})
	}
}
