// Package cst implements FlexTM's Conflict Summary Tables (Section 3.2 of
// the paper).
//
// Unlike Bulk- or LogTM-style systems, FlexTM tracks conflicts on a
// processor-by-processor basis rather than line-by-line: each processor has
// three full-map bit vectors, one bit per other processor:
//
//	R-W — a local read  conflicted with a remote write
//	W-R — a local write conflicted with a remote read
//	W-W — a local write conflicted with a remote write
//
// The tables are first-class, software-readable registers. The lazy Commit()
// routine of Figure 3 copy-and-clears W-R and W-W and aborts exactly the
// transactions named there, which is what lets FlexTM commit and abort with
// purely local operations.
package cst

import (
	"fmt"
	"math/bits"
	"strings"
)

// Kind names one of the three conflict summary tables.
type Kind int

const (
	// RW records local-read / remote-write conflicts.
	RW Kind = iota
	// WR records local-write / remote-read conflicts.
	WR
	// WW records local-write / remote-write conflicts.
	WW
	numKinds
)

// String returns the paper's name for the table.
func (k Kind) String() string {
	switch k {
	case RW:
		return "R-W"
	case WR:
		return "W-R"
	case WW:
		return "W-W"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Vec is one full-map bit vector, one bit per processor. It supports up to
// 64 processors, which covers the paper's 16-way CMP with room to spare.
type Vec uint64

// Set sets the bit for processor p.
func (v *Vec) Set(p int) { *v |= 1 << uint(p) }

// Clear clears the bit for processor p.
func (v *Vec) Clear(p int) { *v &^= 1 << uint(p) }

// Has reports whether processor p's bit is set.
func (v Vec) Has(p int) bool { return v&(1<<uint(p)) != 0 }

// Empty reports whether no bits are set.
func (v Vec) Empty() bool { return v == 0 }

// Count returns the number of set bits (the number of conflicting
// processors; the metric in Figure 4's conflicting-transactions table).
func (v Vec) Count() int { return bits.OnesCount64(uint64(v)) }

// Procs returns the set processors in ascending order.
func (v Vec) Procs() []int {
	var ps []int
	for w := uint64(v); w != 0; {
		p := bits.TrailingZeros64(w)
		ps = append(ps, p)
		w &^= 1 << uint(p)
	}
	return ps
}

// CopyAndClear atomically returns the vector's value and zeroes it — the
// paper's clruw-style "copy and clear" instruction used in line 1 of the
// Commit() routine. (In the simulator one simulated thread runs at a time,
// so plain code is atomic.)
func (v *Vec) CopyAndClear() Vec {
	old := *v
	*v = 0
	return old
}

// Table is the full per-processor conflict state: the three CST registers.
type Table struct {
	vec [numKinds]Vec
}

// Get returns a pointer to the register of the given kind.
func (t *Table) Get(k Kind) *Vec { return &t.vec[k] }

// Set sets processor p's bit in the register of kind k.
func (t *Table) Set(k Kind, p int) { t.vec[k].Set(p) }

// Has reports whether processor p's bit is set in the register of kind k.
func (t *Table) Has(k Kind, p int) bool { return t.vec[k].Has(p) }

// ClearAll zeroes all three registers (flash clear at commit/abort).
func (t *Table) ClearAll() {
	for i := range t.vec {
		t.vec[i] = 0
	}
}

// Enemies returns W-R | W-W: the processors a committing transaction must
// abort to serialize (Figure 3, line 2).
func (t *Table) Enemies() Vec { return t.vec[WR] | t.vec[WW] }

// ConflictDegree returns the number of distinct processors in W-R | W-W,
// the statistic reported in the table at the end of Figure 4.
func (t *Table) ConflictDegree() int { return t.Enemies().Count() }

// Snapshot returns a copy of the three registers (for context-switch save).
func (t *Table) Snapshot() Table { return *t }

// Restore overwrites the registers from a snapshot.
func (t *Table) Restore(s Table) { *t = s }

// String formats the table for diagnostics.
func (t *Table) String() string {
	var b strings.Builder
	for k := Kind(0); k < numKinds; k++ {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, t.vec[k].Procs())
	}
	return b.String()
}
