package cst

import (
	"testing"
	"testing/quick"
)

func TestVecSetClearHas(t *testing.T) {
	var v Vec
	if !v.Empty() {
		t.Fatal("zero Vec not empty")
	}
	v.Set(3)
	v.Set(15)
	if !v.Has(3) || !v.Has(15) || v.Has(4) {
		t.Fatal("Set/Has mismatch")
	}
	if v.Count() != 2 {
		t.Fatalf("Count = %d, want 2", v.Count())
	}
	v.Clear(3)
	if v.Has(3) || !v.Has(15) {
		t.Fatal("Clear removed wrong bit")
	}
}

func TestVecProcsSorted(t *testing.T) {
	var v Vec
	for _, p := range []int{9, 1, 63, 0} {
		v.Set(p)
	}
	got := v.Procs()
	want := []int{0, 1, 9, 63}
	if len(got) != len(want) {
		t.Fatalf("Procs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Procs = %v, want %v", got, want)
		}
	}
}

func TestCopyAndClear(t *testing.T) {
	var v Vec
	v.Set(2)
	v.Set(7)
	old := v.CopyAndClear()
	if !old.Has(2) || !old.Has(7) || old.Count() != 2 {
		t.Fatal("CopyAndClear returned wrong snapshot")
	}
	if !v.Empty() {
		t.Fatal("CopyAndClear left bits behind")
	}
}

func TestVecRoundTrip(t *testing.T) {
	f := func(procs []uint8) bool {
		var v Vec
		set := map[int]bool{}
		for _, p := range procs {
			pp := int(p % 64)
			v.Set(pp)
			set[pp] = true
		}
		if v.Count() != len(set) {
			return false
		}
		for _, p := range v.Procs() {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableEnemies(t *testing.T) {
	var tb Table
	tb.Set(WR, 1)
	tb.Set(WW, 2)
	tb.Set(RW, 3) // R-W does not force aborts at commit
	e := tb.Enemies()
	if !e.Has(1) || !e.Has(2) || e.Has(3) {
		t.Fatalf("Enemies = %v", e.Procs())
	}
	if tb.ConflictDegree() != 2 {
		t.Fatalf("ConflictDegree = %d, want 2", tb.ConflictDegree())
	}
}

func TestTableClearAll(t *testing.T) {
	var tb Table
	tb.Set(RW, 0)
	tb.Set(WR, 1)
	tb.Set(WW, 2)
	tb.ClearAll()
	for k := Kind(0); k < numKinds; k++ {
		if !tb.Get(k).Empty() {
			t.Fatalf("%v not cleared", k)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	var tb Table
	tb.Set(WW, 5)
	snap := tb.Snapshot()
	tb.ClearAll()
	tb.Set(RW, 1)
	tb.Restore(snap)
	if !tb.Has(WW, 5) || tb.Has(RW, 1) {
		t.Fatal("Restore did not reinstate snapshot exactly")
	}
}

func TestKindString(t *testing.T) {
	if RW.String() != "R-W" || WR.String() != "W-R" || WW.String() != "W-W" {
		t.Fatal("Kind names do not match the paper")
	}
}

func TestTableString(t *testing.T) {
	var tb Table
	tb.Set(RW, 1)
	if s := tb.String(); s == "" {
		t.Fatal("String empty")
	}
}
