package observatory

import (
	"strings"
	"testing"

	"flextm/internal/conflictgraph"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty series = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("flat series = %q, want lowest level", got)
	}
	got := sparkline([]float64{0, 50, 100})
	if []rune(got)[0] != '▁' || []rune(got)[2] != '█' {
		t.Fatalf("ramp = %q, want min..max levels", got)
	}
}

func TestWatcherDigestLine(t *testing.T) {
	var buf strings.Builder
	wa := NewWatcher(&buf)
	wa.Observe(fullFrame())
	line := buf.String()
	for _, want := range []string{"obs[  0]", "commits", "aborts", "fp"} {
		if !strings.Contains(line, want) {
			t.Errorf("digest %q missing %q", line, want)
		}
	}
}

func TestWatcherFlagsNewPathologiesOnce(t *testing.T) {
	// A frame whose windowed report carries a pathology (the end-to-end
	// livelock path is covered in internal/harness; here the report is
	// synthesized to pin the flag format and the one-shot (new!) marker).
	sick := &Frame{Report: &conflictgraph.Report{Pathologies: []conflictgraph.Pathology{
		{Kind: conflictgraph.AbortCycle, Cores: []int{0, 1}, Count: 3},
	}}}
	var buf strings.Builder
	wa := NewWatcher(&buf)
	if got := wa.pathologyFlags(&Frame{}); got != "" {
		t.Fatalf("no-report frame flags = %q", got)
	}
	first := wa.pathologyFlags(sick)
	if !strings.Contains(first, "!abort-cycle x3") || !strings.Contains(first, "(new!)") {
		t.Fatalf("first detection = %q", first)
	}
	again := wa.pathologyFlags(sick)
	if !strings.Contains(again, "!abort-cycle x3") || strings.Contains(again, "(new!)") {
		t.Fatalf("repeat detection = %q, want flag without (new!)", again)
	}
}

func TestWatcherAnnotatesGovernorAndDrops(t *testing.T) {
	bus := NewBus()
	_, cancel := bus.Subscribe(1)
	defer cancel()
	var buf strings.Builder
	wa := NewWatcher(&buf)
	wa.AttachBus(bus)

	f0 := &Frame{Index: 0, Gov: &GovSample{Level: 0, Rungs: 5, State: "healthy"}}
	wa.Observe(f0)
	if line := buf.String(); !strings.Contains(line, "gov L0/5 healthy") || strings.Contains(line, "raise!") {
		t.Fatalf("quiet governed line = %q", line)
	}

	buf.Reset()
	wa.Observe(&Frame{Index: 1, Gov: &GovSample{Level: 1, Rungs: 5, State: "contended", Transitions: 1}})
	if line := buf.String(); !strings.Contains(line, "gov L1/5 contended (raise!)") {
		t.Fatalf("raise line = %q", line)
	}

	// Overflow the one-slot subscriber so the bus refuses a delivery.
	bus.Publish(f0)
	bus.Publish(f0)
	buf.Reset()
	wa.Observe(&Frame{Index: 2, Gov: &GovSample{Level: 0, Rungs: 5, State: "healthy", Transitions: 2}})
	line := buf.String()
	if !strings.Contains(line, "(lower!)") {
		t.Fatalf("lower line = %q", line)
	}
	if !strings.Contains(line, "dropped=1") {
		t.Fatalf("drop count missing from %q", line)
	}
	// Ungoverned frames stay unannotated, and a stable drop count goes quiet.
	buf.Reset()
	wa.Observe(&Frame{Index: 3})
	if line := buf.String(); strings.Contains(line, "gov ") || strings.Contains(line, "dropped=") {
		t.Fatalf("ungoverned quiet line = %q", line)
	}
}

func TestWatcherRunStopsOnFinal(t *testing.T) {
	var buf strings.Builder
	wa := NewWatcher(&buf)
	ch := make(chan *Frame, 3)
	ch <- &Frame{Index: 0}
	ch <- &Frame{Index: 1, Final: true}
	// Not closed: Run must return on the Final frame, not on channel close,
	// because the bus never closes subscriber channels.
	wa.Run(ch)
	out := buf.String()
	if !strings.Contains(out, "obs[  0]") || !strings.Contains(out, "obs[end]") {
		t.Fatalf("watch output:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("printed %d lines, want 2", got)
	}
}

func TestFmtCycles(t *testing.T) {
	cases := map[uint64]string{
		0: "0c", 999: "999c", 1000: "1kc", 310_000: "310kc",
		1_250_000: "1.25Mc", 42_000_000: "42Mc",
	}
	for v, want := range cases {
		if got := fmtCycles(v); got != want {
			t.Errorf("fmtCycles(%d) = %q, want %q", v, got, want)
		}
	}
}
