// Self-contained HTML run report: the shareable artifact of one observed
// run. Everything is inlined — styles, SVG time-series charts of the
// per-interval rates, an SVG conflict graph, the final telemetry tables,
// pathology verdicts, and (when available) the BENCH artifact comparison —
// so the file stands alone in a browser, a CI artifact store, or an email.
//
// Charts follow the repo's data-viz conventions: a validated placeholder
// palette declared once as CSS custom properties (with a selected dark
// mode, not an automatic flip), one series per chart (the title names it,
// so no legend box), thin 2px lines, recessive hairline grids, native
// <title> tooltips on enlarged hover targets, and a table view of every
// series for accessibility.

package observatory

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"sort"
	"strings"

	"flextm/internal/benchfmt"
	"flextm/internal/causal"
	"flextm/internal/conflictgraph"
	"flextm/internal/flight"
	"flextm/internal/flightql"
	"flextm/internal/telemetry"
)

// ReportData is everything the HTML report embeds.
type ReportData struct {
	Title string
	Meta  Meta
	// Frames is the run's interval series (pump with Config.Retain); the
	// last frame is treated as final state.
	Frames []*Frame
	// Bench, if non-nil, is the artifact recorded alongside the run.
	Bench *benchfmt.Artifact
	// Compare, if non-nil, is the comparison against a baseline artifact;
	// BaselineLabel names the baseline file.
	Compare       *benchfmt.CompareResult
	BaselineLabel string
	// FlightRecs, when non-empty, is the run's end-of-run flight stream;
	// the report appends a FlightQL drill-down appendix executed over it,
	// each canned query shown with its copy-pasteable source.
	FlightRecs []flight.Rec
	// Command reproduces the report.
	Command string
}

// Final returns the last frame (nil when the run produced none).
func (d ReportData) Final() *Frame {
	if len(d.Frames) == 0 {
		return nil
	}
	return d.Frames[len(d.Frames)-1]
}

// WriteHTMLReport renders the report.
func WriteHTMLReport(w io.Writer, d ReportData) error {
	if d.Title == "" {
		d.Title = "FlexTM run report"
	}
	v := reportView{Data: d}
	f := d.Final()
	if f != nil {
		v.Tiles = buildTiles(f)
		v.Charts = buildCharts(d.Frames)
		v.Graph = conflictGraphSVG(f.Report)
		v.Causal = buildCausal(f.Causal)
		v.Pathologies = buildPathologies(f.Report)
		v.Totals = buildTotals(f.Cum)
		v.Attribution = buildAttribution(f.Cum)
		v.Intervals = buildIntervalRows(d.Frames)
	}
	if d.Compare != nil {
		var notes map[string]string
		if d.Bench != nil {
			notes = d.Bench.Notes
		}
		v.Compare = buildCompare(*d.Compare, d.BaselineLabel, notes)
	}
	if len(d.FlightRecs) > 0 && f != nil {
		v.Queries = buildQueries(d.FlightRecs, d.Meta.Cores, uint64(f.End))
	}
	return reportTmpl.Execute(w, v)
}

// buildQueries executes the drill-down appendix: a canned FlightQL set that
// answers the questions a reader of the charts asks next — which lines the
// contention lives on, who killed whom, and what the reconstructed machine
// state looked like at the end of the run. Each entry carries its query
// source so the reader can re-run or refine it with `flextm -query`.
func buildQueries(recs []flight.Rec, cores int, end uint64) []queryRow {
	canned := []struct{ title, q string }{
		{"Event mix", "group by kind"},
		{"Conflict hot lines", "filter kind == cst-set | group by line agg count | top 5 by count"},
		{"Stall cost by line", "filter kind == cm-stall | group by line agg count, sum(dur), max(dur) | top 5 by sum(dur)"},
		{"Kills by killer core", "filter kind == abort-enemy | group by core agg count"},
		{"Reconstructed cores at end of run", fmt.Sprintf("at cycle %d show cores", end)},
		{"Multi-writer lines at end of run", fmt.Sprintf("at cycle %d show lines where writers > 1", end)},
	}
	env := flightql.Env{Cores: cores}
	out := make([]queryRow, 0, len(canned))
	for _, c := range canned {
		row := queryRow{Title: c.title, Query: c.q}
		q, err := flightql.Parse(c.q)
		if err != nil {
			row.Table = fmt.Sprintf("query error: %v", err)
			out = append(out, row)
			continue
		}
		res, err := q.RunEnv(recs, env)
		if err != nil {
			row.Table = fmt.Sprintf("query error: %v", err)
			out = append(out, row)
			continue
		}
		var b strings.Builder
		res.WriteTable(&b)
		row.Table = b.String()
		out = append(out, row)
	}
	return out
}

// --- view model ---

type reportView struct {
	Data        ReportData
	Tiles       []tile
	Charts      []chart
	Graph       template.HTML
	Causal      *causalView
	Pathologies []pathologyView
	Attribution *attributionView
	Totals      []totalRow
	Intervals   []intervalRow
	Compare     *compareView
	Queries     []queryRow
}

type tile struct {
	Label, Value, Detail string
}

type chart struct {
	Title string
	SVG   template.HTML
}

type pathologyView struct {
	Kind, Class, Detail string
	Count               uint64
}

type causalView struct {
	Summary string
	Wasted  string
	Blame   []blameRow
}

type blameRow struct {
	Line          string
	Cycles        uint64
	Share, FPShow string
}

type attributionView struct {
	SVG  template.HTML
	Rows []attrRow
}

type attrRow struct {
	Component, Class string
	Cycles           uint64
	Share            string
}

type totalRow struct {
	Name  string
	Value uint64
}

type intervalRow struct {
	Index                  int
	End                    string
	Commits, Aborts        uint64
	CommitRate, AbortRatio string
	SigFP                  string
	Pathologies            string
}

type compareView struct {
	Baseline    string
	Summary     string
	Regressions []string
	Gaps        []string
	// Notes are the recorded artifact's -bench-note key=value pairs, sorted
	// by key — the context (machine, branch, intent) a reader needs to judge
	// whether the comparison is apples-to-apples.
	Notes []noteRow
	Ok    bool
}

type noteRow struct {
	Key, Value string
}

type queryRow struct {
	Title, Query string
	Table        string
}

func buildTiles(f *Frame) []tile {
	commits := f.Cum.Total(telemetry.CtrTxnCommits)
	aborts := f.Cum.Total(telemetry.CtrTxnAborts)
	ratio := 0.0
	if commits+aborts > 0 {
		ratio = float64(aborts) / float64(commits+aborts)
	}
	obs, pred := f.Cum.SigFPRates()
	tiles := []tile{
		{"Commits", fmt.Sprintf("%d", commits), fmt.Sprintf("over %s", fmtCycles(uint64(f.End)))},
		{"Aborts", fmt.Sprintf("%d", aborts), fmt.Sprintf("%.1f%% of attempts", ratio*100)},
		{"Sig FP rate", fmt.Sprintf("%.4f", obs), fmt.Sprintf("analytic %.4f", pred)},
		{"CST scrubs", fmt.Sprintf("%d", f.Cum.Total(telemetry.CtrCSTClear)+f.Cum.Total(telemetry.CtrCSTCopyClear)),
			fmt.Sprintf("%d set", f.Cum.Total(telemetry.CtrCSTSet))},
		{"OT spills", fmt.Sprintf("%d", f.Cum.Total(telemetry.CtrOTSpill)),
			fmt.Sprintf("%d walks", f.Cum.Total(telemetry.CtrOTWalkHit)+f.Cum.Total(telemetry.CtrOTWalkFalse))},
		{"Escalations", fmt.Sprintf("%d", f.Cum.Total(telemetry.CtrEscalation)),
			fmt.Sprintf("%d watchdog trips", f.Cum.Total(telemetry.CtrWatchdogTrip))},
	}
	return tiles
}

func buildCharts(frames []*Frame) []chart {
	xs := make([]float64, 0, len(frames))
	commit := make([]float64, 0, len(frames))
	abortR := make([]float64, 0, len(frames))
	fp := make([]float64, 0, len(frames))
	for _, f := range frames {
		xs = append(xs, float64(f.End)/1e6)
		commit = append(commit, f.CommitRate())
		abortR = append(abortR, f.AbortRatio())
		fp = append(fp, f.SigFPRate())
	}
	return []chart{
		{"Commit rate (txn/Mcycle per interval)", lineChartSVG(xs, commit, "--series-1", "%.0f")},
		{"Abort ratio (aborts per attempt, per interval)", lineChartSVG(xs, abortR, "--series-2", "%.2f")},
		{"Signature false-positive rate (per interval)", lineChartSVG(xs, fp, "--series-3", "%.3f")},
	}
}

func buildCausal(rep *causal.Report) *causalView {
	if rep == nil || len(rep.Path) == 0 {
		return nil
	}
	v := &causalView{
		Summary: fmt.Sprintf("critical path %d cycles over %d segments — %.1f%% of the window's %d-cycle makespan, ending at the last commit (t=%d)",
			rep.PathCycles, len(rep.Path), rep.Coverage*100, rep.Makespan, uint64(rep.LastCommitAt)),
		Wasted: fmt.Sprintf("%d cycles were burned in %d aborted attempts", rep.WastedCycles, rep.Aborts),
	}
	for _, b := range rep.Blame {
		fp := "—"
		if b.Cycles > 0 && b.FPCycles > 0 {
			fp = fmt.Sprintf("%.0f%%", float64(b.FPCycles)/float64(b.Cycles)*100)
		}
		v.Blame = append(v.Blame, blameRow{
			Line:   fmt.Sprintf("0x%x", b.Line),
			Cycles: b.Cycles,
			Share:  fmt.Sprintf("%.1f%%", b.Share*100),
			FPShow: fp,
		})
	}
	return v
}

func buildPathologies(rep *conflictgraph.Report) []pathologyView {
	if rep == nil {
		return nil
	}
	var out []pathologyView
	for _, p := range rep.Pathologies {
		class := "status-warning"
		switch p.Kind {
		case conflictgraph.AbortCycle:
			class = "status-critical"
		case conflictgraph.StarvationChain:
			class = "status-serious"
		}
		out = append(out, pathologyView{
			Kind: string(p.Kind), Class: class, Detail: p.Detail, Count: p.Count,
		})
	}
	return out
}

func buildTotals(s telemetry.Snapshot) []totalRow {
	totals := s.Totals()
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]totalRow, 0, len(names))
	for _, n := range names {
		out = append(out, totalRow{Name: n, Value: totals[n]})
	}
	return out
}

func buildAttribution(s telemetry.Snapshot) *attributionView {
	a := s.Attribution()
	total := a.Total()
	if total == 0 {
		return nil
	}
	rows := []struct {
		name, slot string
		v          uint64
	}{
		{"useful work", "--series-1", a.Useful},
		{"stall-wait", "--series-2", a.Stall},
		{"aborted work", "--series-3", a.Aborted},
		{"commit overhead", "--series-4", a.CommitOv},
	}
	// One horizontal stacked bar, 2px surface gaps between segments.
	const width, height = 640.0, 36.0
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img" aria-label="cycle attribution">`, width, height)
	x := 0.0
	for _, r := range rows {
		wseg := float64(r.v) / float64(total) * width
		fmt.Fprintf(&b, `<rect x="%.1f" y="0" width="%.1f" height="%g" rx="4" fill="var(%s)"><title>%s: %d cycles (%.1f%%)</title></rect>`,
			x+1, math.Max(wseg-2, 0), height, r.slot, template.HTMLEscapeString(r.name), r.v, float64(r.v)/float64(total)*100)
		x += wseg
	}
	b.WriteString(`</svg>`)
	view := &attributionView{SVG: template.HTML(b.String())}
	for _, r := range rows {
		view.Rows = append(view.Rows, attrRow{
			Component: r.name, Class: r.slot, Cycles: r.v,
			Share: fmt.Sprintf("%.1f%%", float64(r.v)/float64(total)*100),
		})
	}
	return view
}

func buildIntervalRows(frames []*Frame) []intervalRow {
	out := make([]intervalRow, 0, len(frames))
	for _, f := range frames {
		var pk []string
		counts := f.Pathologies()
		for k := range counts {
			pk = append(pk, k)
		}
		sort.Strings(pk)
		out = append(out, intervalRow{
			Index:       f.Index,
			End:         fmtCycles(uint64(f.End)),
			Commits:     f.Delta.Total(telemetry.CtrTxnCommits),
			Aborts:      f.Delta.Total(telemetry.CtrTxnAborts),
			CommitRate:  fmt.Sprintf("%.1f", f.CommitRate()),
			AbortRatio:  fmt.Sprintf("%.3f", f.AbortRatio()),
			SigFP:       fmt.Sprintf("%.4f", f.SigFPRate()),
			Pathologies: strings.Join(pk, " "),
		})
	}
	return out
}

func buildCompare(res benchfmt.CompareResult, baseline string, notes map[string]string) *compareView {
	v := &compareView{Baseline: baseline, Ok: res.Ok()}
	v.Summary = fmt.Sprintf("compared %d cells, %d new, %d improved, %d regression(s)",
		res.Compared, len(res.NewCells), res.Improvements, len(res.Regressions))
	for _, r := range res.Regressions {
		v.Regressions = append(v.Regressions, r.String())
	}
	v.Gaps = append(v.Gaps, res.MetricGaps...)
	keys := make([]string, 0, len(notes))
	for k := range notes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v.Notes = append(v.Notes, noteRow{Key: k, Value: notes[k]})
	}
	return v
}

// --- SVG generators ---

// lineChartSVG renders one series as an SVG line chart with hairline
// grids, four y ticks, and per-point hover targets carrying native
// tooltips. colorVar is the CSS custom property of the series color.
func lineChartSVG(xs, ys []float64, colorVar, yFmt string) template.HTML {
	if len(xs) < 2 {
		return template.HTML(`<p class="muted">not enough intervals to chart</p>`)
	}
	const (
		w, h        = 640.0, 200.0
		left, right = 52.0, 10.0
		top, bottom = 10.0, 24.0
	)
	pw, ph := w-left-right, h-top-bottom
	xmin, xmax := xs[0], xs[len(xs)-1]
	if xmax <= xmin {
		xmax = xmin + 1
	}
	ymin, ymax := 0.0, ys[0]
	for _, y := range ys {
		if y > ymax {
			ymax = y
		}
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	ymax *= 1.05 // headroom so the peak is not clipped against the frame
	px := func(x float64) float64 { return left + (x-xmin)/(xmax-xmin)*pw }
	py := func(y float64) float64 { return top + ph - (y-ymin)/(ymax-ymin)*ph }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img">`, w, h)
	// Grid and y ticks.
	for i := 0; i <= 4; i++ {
		yv := ymin + (ymax-ymin)*float64(i)/4
		yy := py(yv)
		fmt.Fprintf(&b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="var(--grid)" stroke-width="1"/>`, left, yy, w-right, yy)
		fmt.Fprintf(&b, `<text x="%g" y="%.1f" text-anchor="end" class="tick">`+yFmt+`</text>`, left-6, yy+4, yv)
	}
	// X axis labels: first, middle, last (in Mcycles).
	for _, xi := range []int{0, len(xs) / 2, len(xs) - 1} {
		fmt.Fprintf(&b, `<text x="%.1f" y="%g" text-anchor="middle" class="tick">%.2fMc</text>`, px(xs[xi]), h-6, xs[xi])
	}
	// Baseline.
	fmt.Fprintf(&b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="var(--axis)" stroke-width="1"/>`, left, top+ph, w-right, top+ph)
	// The series.
	var pts strings.Builder
	for i := range xs {
		fmt.Fprintf(&pts, "%.1f,%.1f ", px(xs[i]), py(ys[i]))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="var(%s)" stroke-width="2" stroke-linejoin="round"/>`,
		strings.TrimSpace(pts.String()), colorVar)
	// Hover targets: invisible enlarged circles with native tooltips.
	for i := range xs {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="9" fill="transparent" class="hover-dot" data-color="%s"><title>t=%.2fMc  `+yFmt+`</title></circle>`,
			px(xs[i]), py(ys[i]), colorVar, xs[i], ys[i])
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// conflictGraphSVG lays the report's cores on a circle: gray edges are CST
// conflicts (width by log count), red edges are kills. Cores in an abort
// cycle get a critical ring, starved cores a serious ring — always paired
// with the pathology list below, never color alone.
func conflictGraphSVG(rep *conflictgraph.Report) template.HTML {
	if rep == nil {
		return template.HTML(`<p class="muted">no flight recorder attached</p>`)
	}
	var active []conflictgraph.CoreStats
	for _, cs := range rep.PerCore {
		if cs.Commits+cs.Aborts+cs.Kills > 0 {
			active = append(active, cs)
		}
	}
	if len(active) == 0 {
		return template.HTML(`<p class="muted">no recorded transactional activity</p>`)
	}
	inCycle := map[int]bool{}
	starved := map[int]bool{}
	for _, p := range rep.Pathologies {
		switch p.Kind {
		case conflictgraph.AbortCycle:
			for _, c := range p.Cores {
				inCycle[c] = true
			}
		case conflictgraph.StarvationChain:
			if len(p.Cores) > 0 {
				starved[p.Cores[0]] = true
			}
		}
	}
	const w, h = 640.0, 360.0
	cx, cy, r := w/2, h/2, math.Min(w, h)/2-52
	pos := map[int][2]float64{}
	for i, cs := range active {
		a := 2*math.Pi*float64(i)/float64(len(active)) - math.Pi/2
		pos[cs.Core] = [2]float64{cx + r*math.Cos(a), cy + r*math.Sin(a)}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="100%%" role="img" aria-label="conflict graph">`, w, h)
	maxConf := uint64(1)
	for _, e := range rep.Edges {
		if e.Total() > maxConf {
			maxConf = e.Total()
		}
	}
	for _, e := range rep.Edges {
		p1, ok1 := pos[e.From]
		p2, ok2 := pos[e.To]
		if !ok1 || !ok2 {
			continue
		}
		wd := 1 + 2*math.Log1p(float64(e.Total()))/math.Log1p(float64(maxConf))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--axis)" stroke-width="%.1f" opacity="0.7"><title>conflicts %d→%d: R-W %d, W-R %d, W-W %d</title></line>`,
			p1[0], p1[1], p2[0], p2[1], wd, e.From, e.To, e.RW, e.WR, e.WW)
	}
	for _, e := range rep.AbortEdges {
		p1, ok1 := pos[e.Killer]
		p2, ok2 := pos[e.Victim]
		if !ok1 || !ok2 {
			continue
		}
		// Offset kill edges slightly so reciprocal kills stay visible.
		dx, dy := p2[0]-p1[0], p2[1]-p1[1]
		l := math.Hypot(dx, dy)
		if l == 0 {
			l = 1
		}
		ox, oy := -dy/l*4, dx/l*4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="var(--status-critical)" stroke-width="2" marker-end="url(#arr)"><title>kills %d→%d: %d</title></line>`,
			p1[0]+ox, p1[1]+oy, p2[0]+ox, p2[1]+oy, e.Killer, e.Victim, e.Kills)
	}
	b.WriteString(`<defs><marker id="arr" viewBox="0 0 8 8" refX="7" refY="4" markerWidth="6" markerHeight="6" orient="auto"><path d="M0,0 L8,4 L0,8 z" fill="var(--status-critical)"/></marker></defs>`)
	for _, cs := range active {
		p := pos[cs.Core]
		ring := "var(--axis)"
		switch {
		case inCycle[cs.Core]:
			ring = "var(--status-critical)"
		case starved[cs.Core]:
			ring = "var(--status-serious)"
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="17" fill="var(--surface-1)" stroke="%s" stroke-width="2"><title>core %d: %d commits, %d aborts, %d kills</title></circle>`,
			p[0], p[1], ring, cs.Core, cs.Commits, cs.Aborts, cs.Kills)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" class="node-label">c%d</text>`, p[0], p[1]+4, cs.Core)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" class="tick">%dc/%da</text>`, p[0], p[1]+30, cs.Commits, cs.Aborts)
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// --- template ---

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Data.Title}}</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a; --series-4: #eda100;
  --status-good: #0ca30c; --status-warning: #fab219; --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70; --series-4: #c98500;
  }
}
body { margin: 0; font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
.viz-root { background: var(--page); color: var(--text-primary); padding: 24px; min-height: 100vh; }
.wrap { max-width: 960px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--text-primary); }
.sub, .muted { color: var(--text-secondary); font-size: 13px; }
.card { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 14px 16px; margin-top: 8px; }
.tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(140px, 1fr)); gap: 8px; margin-top: 12px; }
.tile { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 10px 12px; }
.tile .label { font-size: 12px; color: var(--text-secondary); }
.tile .value { font-size: 22px; margin: 2px 0; }
.tile .detail { font-size: 11px; color: var(--muted); }
table { border-collapse: collapse; font-size: 13px; width: 100%; }
th { text-align: left; color: var(--text-secondary); font-weight: 500; border-bottom: 1px solid var(--axis); padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; font-variant-numeric: tabular-nums; }
.tick { font-size: 10px; fill: var(--muted); }
.node-label { font-size: 11px; fill: var(--text-primary); }
.dot { display: inline-block; width: 10px; height: 10px; border-radius: 3px; margin-right: 6px; vertical-align: baseline; }
.status { display: inline-block; padding: 1px 8px; border-radius: 10px; font-size: 12px; color: #fff; margin-right: 8px; }
.status-critical { background: var(--status-critical); }
.status-serious { background: var(--status-serious); }
.status-warning { background: var(--status-warning); color: #0b0b0b; }
.status-good { background: var(--status-good); }
ul.pathologies { list-style: none; padding: 0; margin: 0; }
ul.pathologies li { margin: 6px 0; font-size: 13px; }
details { margin-top: 8px; }
summary { cursor: pointer; font-size: 13px; color: var(--text-secondary); }
code { font-size: 12px; background: var(--surface-1); border: 1px solid var(--border); border-radius: 4px; padding: 1px 5px; }
.hover-dot:hover { fill: var(--text-primary); fill-opacity: 0.25; }
pre.query-out { font-size: 12px; overflow-x: auto; background: var(--page); border: 1px solid var(--border); border-radius: 6px; padding: 8px 10px; }
</style>
</head>
<body>
<div class="viz-root"><div class="wrap">
<h1>{{.Data.Title}}</h1>
<p class="sub">{{.Data.Meta.System}} / {{.Data.Meta.Workload}} — {{.Data.Meta.Threads}} threads on {{.Data.Meta.Cores}} cores{{with .Data.Command}} · <code>{{.}}</code>{{end}}</p>

{{if not .Data.Frames}}<p class="muted">The run produced no observation frames.</p>{{else}}
<div class="tiles">{{range .Tiles}}<div class="tile"><div class="label">{{.Label}}</div><div class="value">{{.Value}}</div><div class="detail">{{.Detail}}</div></div>{{end}}</div>

{{range .Charts}}
<h2>{{.Title}}</h2>
<div class="card">{{.SVG}}</div>
{{end}}

{{with .Attribution}}
<h2>Cycle attribution</h2>
<div class="card">{{.SVG}}
<table><tr><th></th><th>component</th><th>cycles</th><th>share</th></tr>
{{range .Rows}}<tr><td><span class="dot" style="background: var({{.Class}})"></span></td><td>{{.Component}}</td><td>{{.Cycles}}</td><td>{{.Share}}</td></tr>{{end}}
</table></div>
{{end}}

<h2>Conflict graph (final window)</h2>
<div class="card">{{.Graph}}</div>

{{with .Causal}}
<h2>Critical path (final window)</h2>
<div class="card">
<p class="sub">{{.Summary}}</p>
<p class="sub">{{.Wasted}}</p>
{{if .Blame}}<table><tr><th>blamed line</th><th>cycles</th><th>share of critical path</th><th>from false positives</th></tr>
{{range .Blame}}<tr><td><code>{{.Line}}</code></td><td>{{.Cycles}}</td><td>{{.Share}}</td><td>{{.FPShow}}</td></tr>{{end}}
</table>{{else}}<p class="muted">no attributable contention cost on the path</p>{{end}}
</div>
{{end}}

<h2>Pathology verdicts</h2>
<div class="card">
{{if .Pathologies}}<ul class="pathologies">{{range .Pathologies}}<li><span class="status {{.Class}}">{{.Kind}}</span>{{.Detail}}</li>{{end}}</ul>
{{else}}<p class="muted"><span class="status status-good">clean</span>no contention pathologies detected in the final window</p>{{end}}
</div>

{{with .Compare}}
<h2>BENCH comparison vs {{.Baseline}}</h2>
<div class="card">
<p class="sub">{{if .Ok}}<span class="status status-good">ok</span>{{else}}<span class="status status-critical">regressions</span>{{end}}{{.Summary}}</p>
{{if .Notes}}<table><tr><th>note</th><th>value</th></tr>{{range .Notes}}<tr><td>{{.Key}}</td><td>{{.Value}}</td></tr>{{end}}</table>{{end}}
{{if .Regressions}}<table><tr><th>regression</th></tr>{{range .Regressions}}<tr><td>{{.}}</td></tr>{{end}}</table>{{end}}
{{if .Gaps}}<p class="sub">metric gaps (present in only one artifact):</p><table>{{range .Gaps}}<tr><td>{{.}}</td></tr>{{end}}</table>{{end}}
</div>
{{end}}

{{if .Queries}}
<h2>FlightQL drill-down</h2>
<div class="card">
<p class="sub">Canned queries over the run's flight stream. Re-run or refine any of them with <code>flextm -query 'EXPR'</code> on the same seed — the simulator is deterministic, so the answers reproduce.</p>
{{range .Queries}}
<details><summary>{{.Title}} — <code>{{.Query}}</code></summary>
<pre class="query-out">{{.Table}}</pre>
</details>
{{end}}
</div>
{{end}}

<h2>Data</h2>
<div class="card">
<details open><summary>Per-interval series ({{len .Intervals}} intervals)</summary>
<table><tr><th>#</th><th>t</th><th>commits</th><th>aborts</th><th>rate/Mc</th><th>abort ratio</th><th>sig FP</th><th>pathologies</th></tr>
{{range .Intervals}}<tr><td>{{.Index}}</td><td>{{.End}}</td><td>{{.Commits}}</td><td>{{.Aborts}}</td><td>{{.CommitRate}}</td><td>{{.AbortRatio}}</td><td>{{.SigFP}}</td><td>{{.Pathologies}}</td></tr>{{end}}
</table></details>
<details><summary>Final telemetry totals ({{len .Totals}} counters)</summary>
<table><tr><th>counter</th><th>total</th></tr>
{{range .Totals}}<tr><td>{{.Name}}</td><td>{{.Value}}</td></tr>{{end}}
</table></details>
</div>
{{end}}

<p class="muted" style="margin-top: 24px">Generated by <code>paperbench -report</code> — FlexTM observatory. The simulator is deterministic: the same command regenerates this exact report.</p>
</div></div>
</body>
</html>
`))
