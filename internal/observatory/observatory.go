// Package observatory is the live observation plane over the batch
// instrumentation the repo already has: it turns telemetry counters
// (internal/telemetry) and the flight recorder (internal/flight) — both of
// which could previously only be inspected after a run ended — into a
// streaming system an operator can watch while the run is still going.
//
// Three pieces compose:
//
//   - Pump: a sampling loop that runs as a dedicated simulated thread,
//     waking every Config.Interval virtual cycles, diffing the cumulative
//     telemetry snapshot against the previous sample, pulling the flight
//     records written since then, and running the conflict-graph classifier
//     incrementally over a sliding window — so pathologies (abort cycles,
//     starvation chains, friendly fire) surface as they emerge, not in a
//     post-mortem dump.
//   - Frame: the immutable product of one pump tick — cumulative and
//     per-interval snapshots, derived rates, the windowed conflict-graph
//     report, and the recent flight records. Frames are never mutated after
//     publication, which is what makes concurrent consumers safe.
//   - Bus: a lock-free publication path. Publish stores the latest frame in
//     an atomic cell and fans it out to subscriber channels without
//     blocking (slow subscribers drop frames, counted). HTTP handlers and
//     watch printers read frames from the bus; they never touch the
//     registry or the recorder, which stay owned by the simulation.
//
// The pump is attached per run (harness.RunConfig.Observe); the bus and any
// servers or watchers outlive individual runs, so one observatory can watch
// a whole sweep. A nil *Pump or *Bus is the disabled state, mirroring the
// telemetry/flight discipline: every method nil-checks and the hot path
// pays nothing when observation is off.
package observatory

import (
	"sync"
	"sync/atomic"

	"flextm/internal/causal"
	"flextm/internal/conflictgraph"
	"flextm/internal/flight"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// Meta identifies the run a frame was sampled from.
type Meta struct {
	System   string `json:"system"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	Cores    int    `json:"cores"`
}

// Frame is one published observation: everything a consumer needs, frozen.
type Frame struct {
	Meta  Meta
	Index int // interval ordinal within the run, 0-based
	Final bool

	Start, End sim.Time // the interval [Start, End]

	// Cum is the cumulative telemetry snapshot at End; Delta is Cum minus
	// the previous frame's Cum (the per-interval activity).
	Cum   telemetry.Snapshot
	Delta telemetry.Snapshot

	// Recent is the sliding window of flight records the report was
	// computed over (bounded by Config.Window); Report is the windowed
	// conflict-graph analysis, nil when the run has no flight recorder.
	// FlightGap flags that ring wrap-around overwrote records between this
	// frame's pull and the previous one (the window has a hole).
	Recent    []flight.Rec
	Report    *conflictgraph.Report
	FlightGap bool

	// Causal is the windowed attempt-DAG analysis (critical path and blame),
	// nil when the run has no flight recorder.
	Causal *causal.Report

	// Gov is the resilience governor's annotation — the ladder level and
	// health classification in force while this interval ran. Nil on
	// ungoverned runs. Filled by the pump's annotator before publication,
	// so consumers see it as part of the immutable frame.
	Gov *GovSample
}

// GovSample is the governor's per-frame annotation (see internal/governor;
// the type lives here so the observatory does not depend on its consumer).
type GovSample struct {
	Level       int    `json:"level"`
	Rungs       int    `json:"rungs"`
	State       string `json:"state"`
	Transitions int    `json:"transitions"`
}

// IntervalCycles returns the interval's virtual-time width.
func (f *Frame) IntervalCycles() uint64 {
	if f == nil || f.End <= f.Start {
		return 0
	}
	return f.End - f.Start
}

// CommitRate returns the interval's committed transactions per million
// cycles.
func (f *Frame) CommitRate() float64 {
	w := f.IntervalCycles()
	if w == 0 {
		return 0
	}
	return float64(f.Delta.Total(telemetry.CtrTxnCommits)) / float64(w) * 1e6
}

// AbortRatio returns the interval's aborted attempts over all attempts
// (in [0,1]; 0 when the interval saw no attempts).
func (f *Frame) AbortRatio() float64 {
	c := f.Delta.Total(telemetry.CtrTxnCommits)
	a := f.Delta.Total(telemetry.CtrTxnAborts)
	if c+a == 0 {
		return 0
	}
	return float64(a) / float64(c+a)
}

// SigFPRate returns the interval's observed signature false-positive rate.
func (f *Frame) SigFPRate() float64 {
	obs, _ := f.Delta.SigFPRates()
	return obs
}

// Pathologies returns the windowed report's per-kind pathology counts
// (empty when no report or none detected).
func (f *Frame) Pathologies() map[string]uint64 {
	if f == nil || f.Report == nil {
		return nil
	}
	return f.Report.PathologyCounts()
}

// DefaultInterval is the default sampling period in virtual cycles: fine
// enough to resolve the onset of a pathology, coarse enough that a
// paper-scale run produces tens of frames, not thousands.
const DefaultInterval sim.Time = 100_000

// DefaultWindow is the default flight-record window the incremental
// classifier runs over.
const DefaultWindow = 16384

// Config parameterizes a pump.
type Config struct {
	// Interval is the sampling period in virtual cycles (<=0 selects
	// DefaultInterval).
	Interval sim.Time
	// Window caps the sliding flight-record window (<=0 selects
	// DefaultWindow).
	Window int
	// Bus, if non-nil, receives every frame the pump produces.
	Bus *Bus
	// Retain keeps every produced frame in memory for post-run retrieval
	// via Frames (the HTML report generator's collection mode).
	Retain bool
	// OnFlush, if non-nil, runs inside the simulation on the first tick
	// after RequestFlush — the race-free place to write partial artifacts
	// when the process is being interrupted.
	OnFlush func(*Frame)
}

// Pump samples one run. It is bound to a machine's telemetry registry and
// flight recorder by the harness (Bind) and ticked from a dedicated
// simulated thread, so all its mutable state is owned by the simulation;
// the only cross-goroutine entry points are RequestFlush (an atomic flag)
// and the bus it publishes to.
type Pump struct {
	cfg Config

	tel  *telemetry.Registry
	fl   *flight.Recorder
	meta Meta

	prev    telemetry.Snapshot
	prevAt  sim.Time
	lastSeq uint64
	recent  []flight.Rec
	index   int

	frames   []*Frame
	flushReq atomic.Bool
	annot    func(*Frame)
}

// SetAnnotator registers a hook that may decorate each frame (e.g. the
// governor's ladder state) after it is built but before it is retained or
// published. It runs inside the simulation, on the pump's thread.
func (p *Pump) SetAnnotator(fn func(*Frame)) {
	if p == nil {
		return
	}
	p.annot = fn
}

// NewPump returns a pump with the given configuration.
func NewPump(cfg Config) *Pump {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	return &Pump{cfg: cfg}
}

// Interval returns the sampling period.
func (p *Pump) Interval() sim.Time {
	if p == nil {
		return DefaultInterval
	}
	return p.cfg.Interval
}

// Bus returns the bus frames are published to (nil when none).
func (p *Pump) Bus() *Bus {
	if p == nil {
		return nil
	}
	return p.cfg.Bus
}

// Bind points the pump at one run's instrumentation and resets its
// interval state. The same pump may be re-bound run after run (a sweep);
// retained frames accumulate across runs, distinguished by their Meta.
func (p *Pump) Bind(tel *telemetry.Registry, fl *flight.Recorder, meta Meta) {
	if p == nil {
		return
	}
	p.tel, p.fl, p.meta = tel, fl, meta
	p.prev = telemetry.Snapshot{}
	p.prevAt = 0
	p.lastSeq = 0
	p.recent = nil
	p.index = 0
}

// Tick samples one interval ending at now and publishes the frame. It must
// run inside the simulation (it reads live instrumentation). Safe and free
// on a nil pump.
func (p *Pump) Tick(now sim.Time) *Frame {
	return p.sample(now, false)
}

// Finish publishes the run's final frame (Final=true) at now.
func (p *Pump) Finish(now sim.Time) *Frame {
	return p.sample(now, true)
}

func (p *Pump) sample(now sim.Time, final bool) *Frame {
	if p == nil {
		return nil
	}
	cum := p.tel.Snapshot()
	f := &Frame{
		Meta:  p.meta,
		Index: p.index,
		Final: final,
		Start: p.prevAt,
		End:   now,
		Cum:   cum,
		Delta: cum.Diff(p.prev),
	}
	if p.fl.Enabled() {
		fresh, gap := p.fl.SnapshotSince(p.lastSeq)
		f.FlightGap = gap
		if n := len(fresh); n > 0 {
			p.lastSeq = fresh[n-1].Seq
		}
		p.recent = append(p.recent, fresh...)
		if over := len(p.recent) - p.cfg.Window; over > 0 {
			p.recent = append(p.recent[:0], p.recent[over:]...)
		}
		// Copy the window into the frame: p.recent keeps sliding, the
		// frame must not.
		f.Recent = append([]flight.Rec(nil), p.recent...)
		f.Report = conflictgraph.Analyze(f.Recent, conflictgraph.Options{Cores: p.meta.Cores})
		f.Causal = causal.Analyze(f.Recent, causal.Options{Cores: p.meta.Cores})
	}
	p.prev = cum
	p.prevAt = now
	p.index++
	if p.annot != nil {
		p.annot(f)
	}
	if p.cfg.Retain {
		p.frames = append(p.frames, f)
	}
	p.cfg.Bus.Publish(f)
	if p.flushReq.CompareAndSwap(true, false) && p.cfg.OnFlush != nil {
		p.cfg.OnFlush(f)
	}
	return f
}

// RequestFlush asks the pump to invoke Config.OnFlush with the next frame
// it produces. Unlike every other pump method it is safe to call from any
// goroutine — it is how a signal handler reaches into the simulation
// without racing it.
func (p *Pump) RequestFlush() {
	if p == nil {
		return
	}
	p.flushReq.Store(true)
}

// Frames returns the retained frames (Config.Retain). Call only after the
// run has finished.
func (p *Pump) Frames() []*Frame {
	if p == nil {
		return nil
	}
	return p.frames
}

// Final returns the last retained frame, nil when none.
func (p *Pump) Final() *Frame {
	if p == nil || len(p.frames) == 0 {
		return nil
	}
	return p.frames[len(p.frames)-1]
}

// Bus fans frames out to subscribers. The publish path is lock-free: the
// latest frame lives in an atomic cell, the subscriber list is copy-on-write
// (writers swap a fresh slice under a mutex; Publish only atomically loads
// it), and channel sends never block — a full subscriber drops the frame
// and the drop is counted.
type Bus struct {
	latest    atomic.Pointer[Frame]
	subs      atomic.Pointer[[]chan *Frame]
	mu        sync.Mutex // serializes Subscribe/cancel (list writers only)
	published atomic.Uint64
	dropped   atomic.Uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Publish stores f as the latest frame and offers it to every subscriber
// without blocking. Safe and free on a nil bus; a nil frame is ignored.
func (b *Bus) Publish(f *Frame) {
	if b == nil || f == nil {
		return
	}
	b.latest.Store(f)
	b.published.Add(1)
	if subs := b.subs.Load(); subs != nil {
		for _, ch := range *subs {
			select {
			case ch <- f:
			default:
				b.dropped.Add(1)
			}
		}
	}
}

// Latest returns the most recently published frame (nil before the first).
func (b *Bus) Latest() *Frame {
	if b == nil {
		return nil
	}
	return b.latest.Load()
}

// Published returns how many frames have been published.
func (b *Bus) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Dropped returns how many frame deliveries were refused by full
// subscriber channels.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Subscribe registers a subscriber with the given channel buffer and
// returns its channel plus a cancel function. The channel is never closed
// (a racing Publish may still hold the old list); consumers stop on cancel,
// on a Final frame, or on their own signal.
func (b *Bus) Subscribe(buf int) (<-chan *Frame, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan *Frame, buf)
	b.mu.Lock()
	old := b.subs.Load()
	var next []chan *Frame
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, ch)
	b.subs.Store(&next)
	b.mu.Unlock()

	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		cur := b.subs.Load()
		if cur == nil {
			return
		}
		pruned := make([]chan *Frame, 0, len(*cur))
		for _, c := range *cur {
			if c != ch {
				pruned = append(pruned, c)
			}
		}
		b.subs.Store(&pruned)
	}
	return ch, cancel
}
