package observatory

import (
	"regexp"
	"strings"
	"testing"

	"flextm/internal/benchfmt"
	"flextm/internal/flight"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// reportFixture builds a multi-frame ReportData by ticking a pump over a
// synthetic run, plus a bench artifact and self-comparison.
func reportFixture() ReportData {
	tel := telemetry.New(2)
	p := NewPump(Config{Interval: 1000, Retain: true})
	p.Bind(tel, nil, Meta{System: "FlexTM(Lazy)", Workload: "RBTree", Threads: 2, Cores: 2})
	for i := 1; i <= 5; i++ {
		tel.Add(0, telemetry.CtrTxnCommits, uint64(10*i))
		tel.Add(0, telemetry.CtrTxnAborts, uint64(i))
		tel.Add(0, telemetry.CtrCycUseful, uint64(500*i))
		p.Tick(sim.Time(1000 * i))
	}
	p.Finish(5500)

	a := benchfmt.New("test", 100)
	a.Add(benchfmt.Cell{Figure: "fig4", System: "FlexTM(Lazy)", Workload: "RBTree",
		Threads: 2, Commits: 150, Throughput: 27.3})
	cmp := benchfmt.Compare(a, a, 0.1)
	return ReportData{
		Meta: p.Final().Meta, Frames: p.Frames(),
		Bench: a, Compare: &cmp, BaselineLabel: "BENCH_baseline.json",
		Command: "paperbench -report out.html",
	}
}

func TestHTMLReportRenders(t *testing.T) {
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, reportFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "FlexTM run report",
		"Commit rate", "Abort ratio", "Signature false-positive",
		"Cycle attribution", "Per-interval series", "BENCH comparison",
		"prefers-color-scheme", "<svg", "polyline",
		"paperbench -report out.html",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// One row per frame (5 ticks + final) in the interval table.
	if !strings.Contains(out, "Per-interval series (6 intervals)") {
		t.Error("interval table does not cover all 6 frames")
	}
}

// TestHTMLReportRendersBenchNotes: -bench-note key=value pairs recorded in
// the artifact must appear in the compare card, sorted by key — previously
// they were stored but never rendered.
func TestHTMLReportRendersBenchNotes(t *testing.T) {
	d := reportFixture()
	d.Bench.Notes = map[string]string{"machine": "ci-runner", "branch": "main"}
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"machine", "ci-runner", "branch", "main"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare card missing note content %q", want)
		}
	}
	if strings.Index(out, "branch") > strings.Index(out, "machine") {
		t.Error("notes not sorted by key")
	}
}

// TestHTMLReportQueryDrilldown: a report fed flight records appends the
// FlightQL appendix, with each canned query's source and rendered table.
func TestHTMLReportQueryDrilldown(t *testing.T) {
	d := reportFixture()
	d.FlightRecs = []flight.Rec{
		{At: 10, Seq: 1, Core: 0, Peer: -1, Kind: flight.TxnBegin},
		{At: 20, Seq: 2, Core: 0, Peer: 1, Kind: flight.CMStall, Dur: 30, Line: 0x40},
		{At: 40, Seq: 3, Core: 0, Peer: -1, Kind: flight.TxnCommit},
	}
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"FlightQL drill-down",
		"group by kind",
		"filter kind == cm-stall",
		"show cores",
		"flextm -query",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("drill-down missing %q", want)
		}
	}
	// Without records the section is absent.
	d.FlightRecs = nil
	buf.Reset()
	if err := WriteHTMLReport(&buf, d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "FlightQL drill-down") {
		t.Error("drill-down rendered without flight records")
	}
}

func TestHTMLReportIsSelfContained(t *testing.T) {
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, reportFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The acceptance criterion: no external fetches of any kind — the file
	// must render from disk with networking off.
	for _, bad := range []*regexp.Regexp{
		regexp.MustCompile(`src\s*=\s*["']https?:`),
		regexp.MustCompile(`href\s*=\s*["']https?:`),
		regexp.MustCompile(`@import`),
		regexp.MustCompile(`url\(\s*["']?https?:`),
	} {
		if loc := bad.FindString(out); loc != "" {
			t.Errorf("external reference in report: %q", loc)
		}
	}
}

func TestHTMLReportEscapesMetadata(t *testing.T) {
	d := reportFixture()
	d.Title = `<script>alert("xss")</script>`
	d.Frames[len(d.Frames)-1].Meta.Workload = `<img onerror=x>`
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `<script>alert`) || strings.Contains(out, `<img onerror`) {
		t.Fatal("report does not escape run metadata")
	}
}

func TestHTMLReportEmptyRun(t *testing.T) {
	// No frames at all (run produced nothing): still a valid document, no
	// panic on nil Final.
	var buf strings.Builder
	if err := WriteHTMLReport(&buf, ReportData{Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Fatal("empty report lost its title")
	}
}
