package observatory

import (
	"testing"

	"flextm/internal/flight"
	"flextm/internal/telemetry"
)

// snap1 builds a one-core snapshot with the given counter values.
func snap1(set map[telemetry.Counter]uint64) telemetry.Snapshot {
	s := telemetry.Snapshot{Cores: make([]telemetry.CoreSnapshot, 1)}
	for c, v := range set {
		s.Cores[0].Counters[c] = v
	}
	return s
}

func TestFrameDerivedRates(t *testing.T) {
	f := &Frame{
		Start: 1_000_000, End: 2_000_000,
		Delta: snap1(map[telemetry.Counter]uint64{
			telemetry.CtrTxnCommits: 100,
			telemetry.CtrTxnAborts:  25,
		}),
	}
	if w := f.IntervalCycles(); w != 1_000_000 {
		t.Fatalf("interval width = %d, want 1000000", w)
	}
	if r := f.CommitRate(); r != 100 {
		t.Fatalf("commit rate = %f, want 100 per Mc", r)
	}
	if r := f.AbortRatio(); r != 0.2 {
		t.Fatalf("abort ratio = %f, want 0.2", r)
	}
}

func TestFrameRatesDegenerateInputs(t *testing.T) {
	empty := &Frame{Start: 5, End: 5}
	if empty.IntervalCycles() != 0 || empty.CommitRate() != 0 || empty.AbortRatio() != 0 {
		t.Fatalf("zero-width frame produced non-zero rates")
	}
	var nilFrame *Frame
	if nilFrame.IntervalCycles() != 0 {
		t.Fatal("nil frame has non-zero width")
	}
	if nilFrame.Pathologies() != nil {
		t.Fatal("nil frame has pathologies")
	}
}

// The acceptance criterion from the issue: when observation is off (nil
// pump, nil bus — the disabled state every call site uses), the hot path
// must not allocate.
func TestDisabledObservationIsAllocationFree(t *testing.T) {
	var p *Pump
	var b *Bus
	f := &Frame{}
	if n := testing.AllocsPerRun(1000, func() {
		p.Tick(12345)
		p.Finish(99999)
		p.RequestFlush()
		_ = p.Interval()
		_ = p.Frames()
		_ = p.Final()
		b.Publish(f)
		_ = b.Latest()
		_ = b.Published()
		_ = b.Dropped()
	}); n != 0 {
		t.Fatalf("disabled observation allocates %.1f times per event, want 0", n)
	}
}

func TestPumpTicksDiffAndAccumulate(t *testing.T) {
	tel := telemetry.New(2)
	fl := flight.New(2, 64)
	p := NewPump(Config{Interval: 1000, Retain: true})
	p.Bind(tel, fl, Meta{System: "FlexTM(Eager)", Workload: "unit", Threads: 2, Cores: 2})

	tel.Add(0, telemetry.CtrTxnCommits, 10)
	fl.Rec(0, 500, flight.TxnBegin, -1, 0, 0)
	f0 := p.Tick(1000)
	if f0.Index != 0 || f0.Start != 0 || f0.End != 1000 {
		t.Fatalf("first frame bounds: %+v", f0)
	}
	if got := f0.Delta.Total(telemetry.CtrTxnCommits); got != 10 {
		t.Fatalf("first delta commits = %d, want 10", got)
	}
	if len(f0.Recent) != 1 {
		t.Fatalf("first window = %d records, want 1", len(f0.Recent))
	}

	tel.Add(1, telemetry.CtrTxnCommits, 5)
	f1 := p.Tick(2000)
	if f1.Index != 1 || f1.Start != 1000 || f1.End != 2000 {
		t.Fatalf("second frame bounds: %+v", f1)
	}
	if got := f1.Delta.Total(telemetry.CtrTxnCommits); got != 5 {
		t.Fatalf("second delta commits = %d, want 5 (diff, not cumulative)", got)
	}
	if got := f1.Cum.Total(telemetry.CtrTxnCommits); got != 15 {
		t.Fatalf("second cum commits = %d, want 15", got)
	}

	fin := p.Finish(2500)
	if !fin.Final {
		t.Fatal("Finish frame not marked Final")
	}
	if got := len(p.Frames()); got != 3 {
		t.Fatalf("retained %d frames, want 3", got)
	}
	if p.Final() != fin {
		t.Fatal("Final() is not the last retained frame")
	}
}

func TestPumpWindowSlides(t *testing.T) {
	tel := telemetry.New(1)
	fl := flight.New(1, 256)
	p := NewPump(Config{Interval: 100, Window: 8})
	p.Bind(tel, fl, Meta{Cores: 1})
	for i := 0; i < 20; i++ {
		fl.Rec(0, 0, flight.TxnBegin, -1, 0, 0)
	}
	f := p.Tick(100)
	if len(f.Recent) != 8 {
		t.Fatalf("window = %d records, want cap 8", len(f.Recent))
	}
	// The window keeps the newest records.
	if f.Recent[len(f.Recent)-1].Seq != 20 {
		t.Fatalf("window tail seq = %d, want 20", f.Recent[len(f.Recent)-1].Seq)
	}
	// Frames are immutable: a later tick must not mutate an older frame's
	// window in place.
	tail := f.Recent[0].Seq
	for i := 0; i < 8; i++ {
		fl.Rec(0, 0, flight.TxnCommit, -1, 0, 0)
	}
	p.Tick(200)
	if f.Recent[0].Seq != tail {
		t.Fatal("earlier frame's window was mutated by a later tick")
	}
}

func TestPumpRebindResetsIntervalState(t *testing.T) {
	tel := telemetry.New(1)
	p := NewPump(Config{Interval: 100, Retain: true})
	p.Bind(tel, nil, Meta{Workload: "first"})
	tel.Add(0, telemetry.CtrTxnCommits, 7)
	p.Tick(100)

	tel2 := telemetry.New(1)
	p.Bind(tel2, nil, Meta{Workload: "second"})
	tel2.Add(0, telemetry.CtrTxnCommits, 3)
	f := p.Tick(100)
	if f.Index != 0 {
		t.Fatalf("rebound pump index = %d, want 0", f.Index)
	}
	if got := f.Delta.Total(telemetry.CtrTxnCommits); got != 3 {
		t.Fatalf("rebound delta = %d, want 3 (stale prev snapshot leaked)", got)
	}
	// Retained frames span both runs, distinguished by Meta.
	fr := p.Frames()
	if len(fr) != 2 || fr[0].Meta.Workload != "first" || fr[1].Meta.Workload != "second" {
		t.Fatalf("retained frames across rebind: %+v", fr)
	}
}

func TestPumpFlushRequestFiresOnceInsideTick(t *testing.T) {
	tel := telemetry.New(1)
	var flushed []*Frame
	p := NewPump(Config{Interval: 100, OnFlush: func(f *Frame) { flushed = append(flushed, f) }})
	p.Bind(tel, nil, Meta{})
	p.Tick(100)
	if len(flushed) != 0 {
		t.Fatal("OnFlush fired without RequestFlush")
	}
	p.RequestFlush()
	f := p.Tick(200)
	if len(flushed) != 1 || flushed[0] != f {
		t.Fatalf("OnFlush fired %d times, want once with the tick's frame", len(flushed))
	}
	p.Tick(300)
	if len(flushed) != 1 {
		t.Fatal("OnFlush re-fired without a new request")
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	if b.Latest() != nil {
		t.Fatal("fresh bus has a latest frame")
	}
	ch, cancel := b.Subscribe(4)
	defer cancel()

	f0 := &Frame{Index: 0}
	f1 := &Frame{Index: 1}
	b.Publish(f0)
	b.Publish(f1)
	if b.Latest() != f1 {
		t.Fatal("Latest is not the most recent publish")
	}
	if b.Published() != 2 {
		t.Fatalf("published = %d, want 2", b.Published())
	}
	if got := <-ch; got != f0 {
		t.Fatalf("subscriber got frame %d first, want 0", got.Index)
	}
	if got := <-ch; got != f1 {
		t.Fatalf("subscriber got frame %d second, want 1", got.Index)
	}
	// nil publishes are ignored, not delivered.
	b.Publish(nil)
	if b.Published() != 2 {
		t.Fatal("nil frame counted as published")
	}
}

func TestBusDropsForSlowSubscribers(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	b.Publish(&Frame{Index: 0})
	b.Publish(&Frame{Index: 1}) // buffer full: dropped, not blocked
	b.Publish(&Frame{Index: 2})
	if b.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", b.Dropped())
	}
	if got := <-ch; got.Index != 0 {
		t.Fatalf("survivor frame = %d, want 0", got.Index)
	}
	// The latest cell still has the newest frame regardless of drops.
	if b.Latest().Index != 2 {
		t.Fatal("Latest lost to subscriber backpressure")
	}
}

func TestBusCancelUnsubscribes(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	cancel()
	b.Publish(&Frame{})
	select {
	case <-ch:
		t.Fatal("cancelled subscriber still receives")
	default:
	}
	if b.Dropped() != 0 {
		t.Fatal("publish to no subscribers counted a drop")
	}
}
