package observatory

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"flextm/internal/flight"
	"flextm/internal/telemetry"
)

// fullFrame builds a frame with every exported family populated: counters,
// histograms, signature accounting, and a flight window for the pathology
// gauge.
func fullFrame() *Frame {
	tel := telemetry.New(2)
	fl := flight.New(2, 64)
	tel.Add(0, telemetry.CtrTxnCommits, 40)
	tel.Add(0, telemetry.CtrTxnAborts, 10)
	tel.Add(1, telemetry.CtrCycUseful, 9000)
	tel.Add(1, telemetry.CtrCycStall, 500)
	tel.Add(0, telemetry.CtrSigFalsePos, 3)
	tel.Add(0, telemetry.CtrSigTrueNeg, 97)
	tel.Add(0, telemetry.CtrSigPredFPpm, 2_000_000)
	tel.Observe(0, telemetry.HistCommitCycles, 120)
	tel.Observe(0, telemetry.HistCommitCycles, 3000)
	tel.Observe(1, telemetry.HistCMWaitCycles, 64)
	fl.Rec(0, 100, flight.TxnBegin, -1, 0, 0)
	fl.Rec(0, 200, flight.TxnCommit, -1, 0, 0)

	p := NewPump(Config{Interval: 1000})
	p.Bind(tel, fl, Meta{System: "FlexTM(Eager)", Workload: "unit", Threads: 2, Cores: 2})
	return p.Tick(1000)
}

func TestOpenMetricsExpositionValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, fullFrame(), nil); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	// The families the issue names: commits, aborts, cycle attribution,
	// signature false positives.
	for _, name := range []string{
		"flextm_txn_commits", "flextm_txn_aborts",
		"flextm_attribution_cycles",
		"flextm_sig_false_pos", "flextm_sig_fp_rate_observed",
		"flextm_run", "flextm_window_pathologies",
		"flextm_hist_commit_cycles",
	} {
		if exp.Family(name) == nil {
			t.Errorf("family %q missing from exposition", name)
		}
	}
	if fam := exp.Family("flextm_txn_commits"); fam != nil {
		if fam.Type != "counter" {
			t.Errorf("flextm_txn_commits type = %q, want counter", fam.Type)
		}
		if len(fam.Samples) != 1 || fam.Samples[0].Value != 40 {
			t.Errorf("flextm_txn_commits samples = %+v", fam.Samples)
		}
	}
	if fam := exp.Family("flextm_hist_commit_cycles"); fam != nil && fam.Type != "histogram" {
		t.Errorf("flextm_hist_commit_cycles type = %q, want histogram", fam.Type)
	}
	// Attribution is one family labeled by component.
	if fam := exp.Family("flextm_attribution_cycles"); fam != nil {
		seen := map[string]bool{}
		for _, s := range fam.Samples {
			if c, ok := s.Label("component"); ok {
				seen[c] = true
			}
		}
		for _, c := range []string{"useful", "stall", "aborted", "commit_overhead"} {
			if !seen[c] {
				t.Errorf("attribution component %q missing", c)
			}
		}
	}
}

// The observability-of-the-observer satellite: a bus with refused
// deliveries exports its drop count, and a governed frame exports the
// governor sample — both through the omlint grammar checker.
func TestOpenMetricsExportsBusDropsAndGovernorSample(t *testing.T) {
	bus := NewBus()
	_, cancel := bus.Subscribe(1) // capacity 1: the second publish is refused
	defer cancel()
	f := fullFrame()
	f.Gov = &GovSample{Level: 2, Rungs: 5, State: "abort-cycling", Transitions: 3}
	bus.Publish(f)
	bus.Publish(f)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, f, bus); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	fam := exp.Family("flextm_observatory_dropped_frames")
	if fam == nil {
		t.Fatal("flextm_observatory_dropped_frames missing")
	}
	if fam.Type != "counter" {
		t.Errorf("dropped-frames type = %q, want counter", fam.Type)
	}
	if len(fam.Samples) != 1 || fam.Samples[0].Name != "flextm_observatory_dropped_frames_total" ||
		fam.Samples[0].Value != float64(bus.Dropped()) || bus.Dropped() == 0 {
		t.Errorf("dropped-frames samples = %+v (bus.Dropped() = %d)", fam.Samples, bus.Dropped())
	}
	for name, want := range map[string]float64{
		"flextm_governor_level":       2,
		"flextm_governor_rungs":       5,
		"flextm_governor_transitions": 3,
	} {
		fam := exp.Family(name)
		if fam == nil {
			t.Errorf("family %q missing", name)
			continue
		}
		if len(fam.Samples) != 1 || fam.Samples[0].Value != want {
			t.Errorf("%s samples = %+v, want value %g", name, fam.Samples, want)
		}
	}
	if fam := exp.Family("flextm_governor_state"); fam == nil {
		t.Error("flextm_governor_state missing")
	} else if st, _ := fam.Samples[0].Label("state"); st != "abort-cycling" {
		t.Errorf("governor state label = %q", st)
	}
	// An ungoverned frame exports no governor families.
	buf.Reset()
	if err := WriteOpenMetrics(&buf, fullFrame(), nil); err != nil {
		t.Fatal(err)
	}
	exp, err = ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Family("flextm_governor_level") != nil || exp.Family("flextm_observatory_dropped_frames") != nil {
		t.Error("ungoverned/bus-less exposition leaked governor or bus families")
	}
}

func TestOpenMetricsNilFrameIsValidAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Fatalf("nil-frame exposition = %q, want bare # EOF", got)
	}
	if err := CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// The escaping satellite: arbitrary run metadata must round-trip through
// the writer's label escaping and the grammar checker's unescaping. The
// property is quick-checked so the adversarial cases (backslashes, quotes,
// newlines, embedded label syntax) are machine-generated, not hand-picked.
func TestOpenMetricsLabelEscapingRoundTrips(t *testing.T) {
	prop := func(system, workload string) bool {
		f := &Frame{Meta: Meta{System: system, Workload: workload, Threads: 4, Cores: 16}}
		var buf bytes.Buffer
		if err := WriteOpenMetrics(&buf, f, nil); err != nil {
			return false
		}
		exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("exposition rejected for system=%q workload=%q: %v", system, workload, err)
			return false
		}
		fam := exp.Family("flextm_run")
		if fam == nil || len(fam.Samples) != 1 {
			return false
		}
		gotSys, _ := fam.Samples[0].Label("system")
		gotWl, _ := fam.Samples[0].Label("workload")
		return gotSys == system && gotWl == workload
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
	// The classic adversarial values, pinned in case quick's generator
	// misses them.
	for _, v := range []string{`a\b`, `say "hi"`, "two\nlines", `\`, `"`, `\n`, `x",evil="y`, ""} {
		if !prop(v, v) {
			t.Errorf("escaping does not round-trip %q", v)
		}
	}
}

func TestOpenMetricsHistogramBucketsAreCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, fullFrame(), nil); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fam := exp.Family("flextm_hist_commit_cycles")
	if fam == nil {
		t.Fatal("no commit-cycles histogram family")
	}
	var inf, count float64
	haveSum := false
	for _, s := range fam.Samples {
		switch s.Name {
		case "flextm_hist_commit_cycles_bucket":
			if le, _ := s.Label("le"); le == "+Inf" {
				inf = s.Value
			}
		case "flextm_hist_commit_cycles_count":
			count = s.Value
		case "flextm_hist_commit_cycles_sum":
			haveSum = true
		}
	}
	if inf != 2 || count != 2 || !haveSum {
		t.Fatalf("histogram shape wrong: +Inf=%g count=%g sum-present=%v, want 2/2/true", inf, count, haveSum)
	}
}

func TestParserRejectsMalformedExpositions(t *testing.T) {
	cases := map[string]string{
		"missing EOF":           "# TYPE x gauge\nx 1\n",
		"counter without total": "# TYPE c counter\nc 1\n# EOF\n",
		"bad label escape":      "# TYPE g gauge\ng{l=\"a\\t\"} 1\n# EOF\n",
		"undeclared family":     "nope_total 1\n# EOF\n",
		"type after samples":    "# TYPE g gauge\ng 1\n# TYPE g counter\n# EOF\n",
		"duplicate label":       "# TYPE g gauge\ng{a=\"1\",a=\"2\"} 1\n# EOF\n",
		"bad value":             "# TYPE g gauge\ng one\n# EOF\n",
		"blank line":            "# TYPE g gauge\n\ng 1\n# EOF\n",
		"content after EOF":     "# EOF\n# TYPE g gauge\n",
		"non-monotone buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 9\n# EOF\n",
		"missing +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 9\n# EOF\n",
		"duplicate TYPE":      "# TYPE g gauge\n# TYPE g gauge\ng 1\n# EOF\n",
		"duplicate HELP":      "# HELP g one\n# TYPE g gauge\n# HELP g two\ng 1\n# EOF\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}

func TestParserAcceptsMinimalValidExposition(t *testing.T) {
	in := "# HELP g a gauge\n# TYPE g gauge\ng{l=\"v\"} 1.5\n# EOF\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Families) != 1 || exp.Family("g").Samples[0].Value != 1.5 {
		t.Fatalf("parse = %+v", exp.Families)
	}
}
