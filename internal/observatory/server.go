// The observatory HTTP server: OpenMetrics at /metrics, the latest frame
// as JSON at /snapshot.json, a live conflict graph at /conflictgraph.dot,
// the latest flight-record window at /flight, and net/http/pprof under
// /debug/pprof/. Handlers only ever read immutable frames off the bus, so
// they are safe against the running simulation by construction.

package observatory

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"flextm/internal/flightql"
	"flextm/internal/telemetry"
)

// Server serves the observation plane over HTTP.
type Server struct {
	bus *Bus
	mux *http.ServeMux
	ln  net.Listener
	srv *http.Server
}

// NewServer returns a server reading frames from bus.
func NewServer(bus *Bus) *Server {
	s := &Server{bus: bus, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/snapshot.json", s.handleSnapshot)
	s.mux.HandleFunc("/conflictgraph.dot", s.handleDOT)
	s.mux.HandleFunc("/flight", s.handleFlight)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's routing handler (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "flextm observatory")
	if f := s.bus.Latest(); f != nil {
		fmt.Fprintf(w, "run: %s / %s @ %d threads (%d cores), interval %d, t=%d\n",
			f.Meta.System, f.Meta.Workload, f.Meta.Threads, f.Meta.Cores, f.Index, f.End)
	} else {
		fmt.Fprintln(w, "run: no frame published yet")
	}
	fmt.Fprintln(w, "\nendpoints:")
	fmt.Fprintln(w, "  /metrics            OpenMetrics exposition (Prometheus-scrapable)")
	fmt.Fprintln(w, "  /snapshot.json      latest frame: totals, interval rates, pathologies")
	fmt.Fprintln(w, "  /conflictgraph.dot  live conflict graph (Graphviz DOT)")
	fmt.Fprintln(w, "  /flight             latest flight-record window (JSON)")
	fmt.Fprintln(w, "  /query?q=EXPR       FlightQL over the latest flight window (canonical JSON)")
	fmt.Fprintln(w, "  /debug/pprof/       Go runtime profiles")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	WriteOpenMetrics(w, s.bus.Latest(), s.bus)
}

// SnapshotJSON is the machine-readable view of a frame served at
// /snapshot.json.
type SnapshotJSON struct {
	Meta           Meta                  `json:"meta"`
	Index          int                   `json:"index"`
	Final          bool                  `json:"final"`
	Start          uint64                `json:"start"`
	End            uint64                `json:"end"`
	Totals         map[string]uint64     `json:"totals"`
	IntervalTotals map[string]uint64     `json:"intervalTotals,omitempty"`
	Attribution    telemetry.Attribution `json:"attribution"`
	CommitRate     float64               `json:"intervalCommitRate"`
	AbortRatio     float64               `json:"intervalAbortRatio"`
	SigFPObserved  float64               `json:"sigFPObserved"`
	SigFPPredicted float64               `json:"sigFPPredicted"`
	Pathologies    map[string]uint64     `json:"pathologies,omitempty"`
	WindowRecords  int                   `json:"windowRecords"`
	BusPublished   uint64                `json:"busPublished"`
	BusDropped     uint64                `json:"busDropped"`
}

// NewSnapshotJSON builds the /snapshot.json view of a frame.
func NewSnapshotJSON(f *Frame, bus *Bus) SnapshotJSON {
	obs, pred := f.Cum.SigFPRates()
	return SnapshotJSON{
		Meta:           f.Meta,
		Index:          f.Index,
		Final:          f.Final,
		Start:          uint64(f.Start),
		End:            uint64(f.End),
		Totals:         f.Cum.Totals(),
		IntervalTotals: f.Delta.Totals(),
		Attribution:    f.Cum.Attribution(),
		CommitRate:     f.CommitRate(),
		AbortRatio:     f.AbortRatio(),
		SigFPObserved:  obs,
		SigFPPredicted: pred,
		Pathologies:    f.Pathologies(),
		WindowRecords:  len(f.Recent),
		BusPublished:   bus.Published(),
		BusDropped:     bus.Dropped(),
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	f := s.bus.Latest()
	if f == nil {
		http.Error(w, `{"error":"no frame published yet"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(NewSnapshotJSON(f, s.bus))
}

func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	f := s.bus.Latest()
	if f == nil || f.Report == nil {
		http.Error(w, "no conflict-graph report yet (flight recorder detached?)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	f.Report.WriteDOT(w)
}

// flightRecJSON is one flight record with its kind spelled out.
type flightRecJSON struct {
	At   uint64 `json:"at"`
	Seq  uint64 `json:"seq"`
	Core int    `json:"core"`
	Peer int    `json:"peer"`
	Kind string `json:"kind"`
	Aux  uint8  `json:"aux"`
	Line uint64 `json:"line"`
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := s.bus.Latest()
	if f == nil {
		http.Error(w, `{"error":"no frame published yet"}`, http.StatusServiceUnavailable)
		return
	}
	out := make([]flightRecJSON, len(f.Recent))
	for i, rec := range f.Recent {
		out[i] = flightRecJSON{
			At: uint64(rec.At), Seq: rec.Seq, Core: int(rec.Core), Peer: int(rec.Peer),
			Kind: rec.Kind.String(), Aux: rec.Aux, Line: uint64(rec.Line),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Meta    Meta            `json:"meta"`
		End     uint64          `json:"end"`
		Records []flightRecJSON `json:"records"`
	}{f.Meta, uint64(f.End), out})
}

// handleQuery runs one FlightQL query (?q=EXPR) over the latest frame's
// flight window and returns the canonical JSON result. The window is the
// pump's record retention, not the full run — cursor-style scoping (filter
// at >= N) composes inside the query itself. ?format=table returns the
// aligned text rendering instead.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("q")
	if src == "" {
		http.Error(w, `{"error":"missing ?q=EXPR"}`, http.StatusBadRequest)
		return
	}
	q, err := flightql.Parse(src)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	f := s.bus.Latest()
	if f == nil {
		http.Error(w, `{"error":"no frame published yet"}`, http.StatusServiceUnavailable)
		return
	}
	res, err := q.RunEnv(f.Recent, flightql.Env{Cores: f.Meta.Cores})
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusUnprocessableEntity)
		return
	}
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		res.WriteTable(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	res.WriteJSON(w)
}
