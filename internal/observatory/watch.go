// Terminal watch mode: one line per sampling interval with the numbers an
// operator triages by (interval commits/aborts, commit rate, abort ratio,
// signature FP rate), sparkline trends of the commit rate and abort ratio
// over the trailing intervals, and pathology flags the moment the
// incremental classifier detects them — before the watchdog trips, which
// is the whole point of watching live.

package observatory

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"flextm/internal/telemetry"
)

// sparkRunes are the eight block-element levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vs scaled to the series' own [min,max] range; a flat
// series renders as its lowest level.
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// WatchTrail is how many trailing intervals the sparklines cover.
const WatchTrail = 24

// Watcher prints a refreshing digest of a frame stream.
type Watcher struct {
	w           io.Writer
	commitRates []float64
	abortRatios []float64
	// seen tracks pathology kinds already flagged, so the (new!) marker
	// fires only on first detection.
	seen map[string]bool
	// bus, when attached, lets the digest report the observation plane's
	// own losses (refused frame deliveries).
	bus          *Bus
	lastDropped  uint64
	lastGovLevel int
	lastGovSteps int
}

// NewWatcher returns a watcher printing to w.
func NewWatcher(w io.Writer) *Watcher {
	return &Watcher{w: w, seen: map[string]bool{}}
}

// AttachBus points the watcher at the bus feeding it, so the digest can
// surface dropped frame deliveries as they happen.
func (wa *Watcher) AttachBus(b *Bus) { wa.bus = b }

// Observe prints one digest line for the frame.
func (wa *Watcher) Observe(f *Frame) {
	if f == nil {
		return
	}
	wa.commitRates = append(wa.commitRates, f.CommitRate())
	wa.abortRatios = append(wa.abortRatios, f.AbortRatio())
	if n := len(wa.commitRates) - WatchTrail; n > 0 {
		wa.commitRates = wa.commitRates[n:]
		wa.abortRatios = wa.abortRatios[n:]
	}

	tag := fmt.Sprintf("obs[%3d]", f.Index)
	if f.Final {
		tag = "obs[end]"
	}
	fmt.Fprintf(wa.w, "%s t=%-8s commits %5d (%7.1f/Mc) aborts %5d (ratio %.2f) fp %.4f  c%s a%s%s%s%s%s\n",
		tag, fmtCycles(uint64(f.End)),
		f.Delta.Total(telemetry.CtrTxnCommits), f.CommitRate(),
		f.Delta.Total(telemetry.CtrTxnAborts), f.AbortRatio(), f.SigFPRate(),
		sparkline(wa.commitRates), sparkline(wa.abortRatios),
		wa.govFlags(f), wa.blameFlags(f), wa.dropFlags(), wa.pathologyFlags(f))
}

// blameFlags renders the interval's dominant critical-path blame line from
// the windowed causal analysis ("which line is the makespan waiting on").
func (wa *Watcher) blameFlags(f *Frame) string {
	if f.Causal == nil {
		return ""
	}
	b := f.Causal.TopBlame()
	if b == nil || b.Cycles == 0 {
		return ""
	}
	s := fmt.Sprintf("  blame 0x%x %.0f%%", b.Line, b.Share*100)
	if b.FPCycles > 0 {
		s += fmt.Sprintf(" (fp %.0f%%)", float64(b.FPCycles)/float64(b.Cycles)*100)
	}
	if f.FlightGap {
		s += " gap!"
	}
	return s
}

// govFlags renders the governor annotation on governed runs: the ladder
// level in force and the interval's health state, with a step marker the
// moment a transition lands.
func (wa *Watcher) govFlags(f *Frame) string {
	g := f.Gov
	if g == nil {
		return ""
	}
	step := ""
	if g.Transitions != wa.lastGovSteps {
		dir := "raise"
		if g.Level < wa.lastGovLevel {
			dir = "lower"
		}
		step = fmt.Sprintf(" (%s!)", dir)
	}
	wa.lastGovSteps = g.Transitions
	wa.lastGovLevel = g.Level
	return fmt.Sprintf("  gov L%d/%d %s%s", g.Level, g.Rungs, g.State, step)
}

// dropFlags surfaces newly refused frame deliveries on the attached bus.
func (wa *Watcher) dropFlags() string {
	if wa.bus == nil {
		return ""
	}
	d := wa.bus.Dropped()
	if d == wa.lastDropped {
		return ""
	}
	wa.lastDropped = d
	return fmt.Sprintf("  dropped=%d", d)
}

// pathologyFlags renders the frame's detected pathologies, marking kinds
// seen for the first time.
func (wa *Watcher) pathologyFlags(f *Frame) string {
	counts := f.Pathologies()
	if len(counts) == 0 {
		return ""
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		fresh := ""
		if !wa.seen[k] {
			wa.seen[k] = true
			fresh = " (new!)"
		}
		fmt.Fprintf(&b, "  !%s x%d%s", k, counts[k], fresh)
	}
	return b.String()
}

// Run consumes frames until a Final frame arrives, printing each.
func (wa *Watcher) Run(ch <-chan *Frame) {
	for f := range ch {
		wa.Observe(f)
		if f != nil && f.Final {
			return
		}
	}
}

// fmtCycles renders a cycle count compactly (1.25Mc, 310kc, 999c).
func fmtCycles(v uint64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.0fMc", float64(v)/1e6)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fMc", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.0fkc", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dc", v)
	}
}
