package observatory

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serverFixture(t *testing.T) (*Server, *Bus) {
	t.Helper()
	bus := NewBus()
	return NewServer(bus), bus
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr
}

func TestMetricsEndpointServesValidOpenMetrics(t *testing.T) {
	srv, bus := serverFixture(t)

	// Before any frame: still a valid (empty) exposition, never an error —
	// a scraper that arrives early must not flap.
	rr := get(t, srv.Handler(), "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("pre-frame /metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type = %q", ct)
	}
	if err := CheckExposition(rr.Body); err != nil {
		t.Fatalf("pre-frame exposition invalid: %v", err)
	}

	bus.Publish(fullFrame())
	rr = get(t, srv.Handler(), "/metrics")
	exp, err := ParseExposition(rr.Body)
	if err != nil {
		t.Fatalf("live exposition invalid: %v", err)
	}
	if exp.Family("flextm_txn_commits") == nil {
		t.Fatal("live scrape has no commit counter")
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	srv, bus := serverFixture(t)
	if rr := get(t, srv.Handler(), "/snapshot.json"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-frame /snapshot.json status = %d, want 503", rr.Code)
	}
	bus.Publish(fullFrame())
	rr := get(t, srv.Handler(), "/snapshot.json")
	if rr.Code != http.StatusOK {
		t.Fatalf("/snapshot.json status = %d", rr.Code)
	}
	var snap SnapshotJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if snap.Meta.System != "FlexTM(Eager)" || snap.Totals["txn-commits"] != 40 {
		t.Fatalf("snapshot content: %+v", snap)
	}
	if snap.BusPublished != 1 {
		t.Fatalf("busPublished = %d, want 1", snap.BusPublished)
	}
}

func TestDOTAndFlightEndpoints(t *testing.T) {
	srv, bus := serverFixture(t)
	for _, path := range []string{"/conflictgraph.dot", "/flight"} {
		if rr := get(t, srv.Handler(), path); rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("pre-frame %s status = %d, want 503", path, rr.Code)
		}
	}
	bus.Publish(fullFrame())
	rr := get(t, srv.Handler(), "/conflictgraph.dot")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "digraph") {
		t.Fatalf("/conflictgraph.dot status=%d body=%q", rr.Code, rr.Body.String())
	}
	rr = get(t, srv.Handler(), "/flight")
	var fj struct {
		Records []struct {
			Kind string `json:"kind"`
		} `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &fj); err != nil {
		t.Fatalf("/flight is not JSON: %v", err)
	}
	if len(fj.Records) != 2 || fj.Records[0].Kind != "begin" {
		t.Fatalf("/flight records = %+v", fj.Records)
	}
}

func TestIndexListsEndpoints(t *testing.T) {
	srv, bus := serverFixture(t)
	rr := get(t, srv.Handler(), "/")
	for _, want := range []string{"/metrics", "/snapshot.json", "/conflictgraph.dot", "/flight", "/debug/pprof/"} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("index does not mention %s", want)
		}
	}
	if rr := get(t, srv.Handler(), "/nope"); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rr.Code)
	}
	bus.Publish(fullFrame())
	if body := get(t, srv.Handler(), "/").Body.String(); !strings.Contains(body, "FlexTM(Eager)") {
		t.Error("index does not identify the live run")
	}
}

// TestQueryEndpoint: /query?q= runs FlightQL over the latest frame's flight
// window, returning canonical JSON (or a table with ?format=table), and maps
// the three failure modes to distinct statuses: no q (400), bad query (400
// with the parse error), no frame yet (503).
func TestQueryEndpoint(t *testing.T) {
	srv, bus := serverFixture(t)

	if rr := get(t, srv.Handler(), "/query"); rr.Code != http.StatusBadRequest {
		t.Fatalf("missing q status = %d, want 400", rr.Code)
	}
	if rr := get(t, srv.Handler(), "/query?q=filter+bogus+%3D%3D+1"); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad query status = %d, want 400", rr.Code)
	}
	if rr := get(t, srv.Handler(), "/query?q=count"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-frame status = %d, want 503", rr.Code)
	}

	bus.Publish(fullFrame())
	rr := get(t, srv.Handler(), "/query?q=filter+kind+%3D%3D+commit+%7C+count")
	if rr.Code != http.StatusOK {
		t.Fatalf("/query status = %d: %s", rr.Code, rr.Body.String())
	}
	var res struct {
		Kind  string  `json:"kind"`
		Count *uint64 `json:"count"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &res); err != nil {
		t.Fatalf("result is not JSON: %v\n%s", err, rr.Body.String())
	}
	if res.Kind != "count" || res.Count == nil || *res.Count != 1 {
		t.Fatalf("result = %+v, want count 1 (the fixture's one commit)", res)
	}
	// Replay composes over the served window too.
	rr = get(t, srv.Handler(), "/query?q=at+cycle+1000+show+cores+where+commits+%3E+0")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `"core": 0`) {
		t.Fatalf("replay query: status %d body %s", rr.Code, rr.Body.String())
	}
	// Table form.
	rr = get(t, srv.Handler(), "/query?q=group+by+kind&format=table")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "commit") {
		t.Fatalf("table form: status %d body %q", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("table content type = %q", ct)
	}
}

func TestServerStartAndClose(t *testing.T) {
	srv, bus := serverFixture(t)
	bus.Publish(fullFrame())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := CheckExposition(resp.Body); err != nil {
		t.Fatalf("scrape over TCP invalid: %v", err)
	}
}
