// A small OpenMetrics text-format parser, strict enough to catch the bugs
// an exporter can actually have: bad metric or label names, broken label
// escaping, unparsable values, counter samples without the `_total`
// suffix, histogram families with non-monotone buckets or a missing +Inf
// bucket, and a missing terminal `# EOF`. It is the acceptance check
// behind `cmd/omlint` and the quick-check tests that pit the writer's
// escaping against this parser's unescaping.

package observatory

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one parsed label.
type Label struct {
	Name, Value string
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label and whether it was present.
func (s Sample) Label(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Family is one metric family: TYPE/HELP metadata plus its samples.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
	// typeSet/helpSet record that the metadata line was seen, so a second
	// one for the same family is rejected instead of silently overwriting.
	typeSet, helpSet bool
}

// Exposition is a parsed OpenMetrics text exposition.
type Exposition struct {
	Families []*Family
	byName   map[string]*Family
}

// Family returns the named family, nil when absent.
func (e *Exposition) Family(name string) *Family {
	return e.byName[name]
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true,
	"info": true, "stateset": true, "unknown": true, "gaugehistogram": true,
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// sampleSuffixes maps a family type to the sample-name suffixes it allows
// (empty string = the bare family name).
func sampleSuffixes(typ string) []string {
	switch typ {
	case "counter":
		return []string{"_total", "_created"}
	case "histogram":
		return []string{"_bucket", "_count", "_sum", "_created"}
	case "gaugehistogram":
		return []string{"_bucket", "_gcount", "_gsum"}
	case "summary":
		return []string{"", "_count", "_sum", "_created"}
	case "info":
		return []string{"_info"}
	default: // gauge, stateset, unknown
		return []string{""}
	}
}

// ParseExposition parses (and thereby validates) an OpenMetrics text
// exposition.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{byName: map[string]*Family{}}
	var cur *Family
	sawEOF := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			return nil, fmt.Errorf("line %d: blank line is not allowed", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			fam := exp.byName[name]
			if fam == nil {
				fam = &Family{Name: name, Type: "unknown"}
				exp.byName[name] = fam
				exp.Families = append(exp.Families, fam)
			}
			switch kind {
			case "TYPE":
				if !validTypes[rest] {
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, rest)
				}
				if len(fam.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				if fam.typeSet {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				fam.typeSet = true
				fam.Type = rest
			case "HELP":
				if fam.helpSet {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				fam.helpSet = true
				fam.Help = rest
			}
			cur = fam
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(exp, cur, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q belongs to no declared family", lineNo, s.Name)
		}
		ok := false
		for _, suf := range sampleSuffixes(fam.Type) {
			if s.Name == fam.Name+suf {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("line %d: sample name %q is not legal for %s family %q",
				lineNo, s.Name, fam.Type, fam.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("missing terminal # EOF")
	}
	for _, fam := range exp.Families {
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return exp, nil
}

// CheckExposition validates an exposition, discarding the parse.
func CheckExposition(r io.Reader) error {
	_, err := ParseExposition(r)
	return err
}

// familyOf resolves the family a sample belongs to: the current family if
// the name matches one of its legal sample names, else an exact-name
// lookup (for families declared earlier).
func familyOf(exp *Exposition, cur *Family, sample string) *Family {
	if cur != nil {
		for _, suf := range sampleSuffixes(cur.Type) {
			if sample == cur.Name+suf {
				return cur
			}
		}
	}
	if fam := exp.byName[sample]; fam != nil {
		return fam
	}
	// A suffixed sample of an earlier family.
	for _, suf := range []string{"_total", "_created", "_bucket", "_count", "_sum", "_info", "_gcount", "_gsum"} {
		if strings.HasSuffix(sample, suf) {
			if fam := exp.byName[strings.TrimSuffix(sample, suf)]; fam != nil {
				return fam
			}
		}
	}
	return nil
}

// parseComment splits "# TYPE name rest" / "# HELP name rest".
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "# ")
	if body == line {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	parts := strings.SplitN(body, " ", 3)
	if len(parts) < 2 {
		return "", "", "", fmt.Errorf("malformed metadata line %q", line)
	}
	kind = parts[0]
	if kind != "TYPE" && kind != "HELP" && kind != "UNIT" {
		return "", "", "", fmt.Errorf("unknown metadata keyword %q", kind)
	}
	name = parts[1]
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("bad metric name %q", name)
	}
	if len(parts) == 3 {
		rest = parts[2]
	}
	if kind == "HELP" {
		rest, err = unescape(rest, false)
		if err != nil {
			return "", "", "", err
		}
	}
	return kind, name, rest, nil
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Split(rest, " ")
	if len(fields) < 1 || len(fields) > 2 || fields[0] == "" {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a {name="value",...} label set, returning the tail
// after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	seen := map[string]bool{}
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := s[i:j]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		if seen[name] {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		seen[name] = true
		j++ // past '='
		if j >= len(s) || s[j] != '"' {
			return nil, "", fmt.Errorf("label %q value is not quoted", name)
		}
		j++
		var b strings.Builder
		for {
			if j >= len(s) {
				return nil, "", fmt.Errorf("unterminated value for label %q", name)
			}
			c := s[j]
			if c == '"' {
				break
			}
			if c == '\\' {
				if j+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[j+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("illegal escape \\%c in label %q", s[j+1], name)
				}
				j += 2
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("raw newline in label %q", name)
			}
			b.WriteByte(c)
			j++
		}
		labels = append(labels, Label{Name: name, Value: b.String()})
		j++ // past closing quote
		if j < len(s) && s[j] == ',' {
			i = j + 1
			continue
		}
		i = j
	}
}

// unescape reverses HELP/label escaping. quoted selects label rules
// (\" is legal).
func unescape(s string, quoted bool) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		i++
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case '"':
			if !quoted {
				return "", fmt.Errorf("illegal escape \\\" in %q", s)
			}
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("illegal escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}

// checkHistogram validates bucket structure: every _bucket carries le, the
// counts are monotone in le order as written, and a +Inf bucket exists
// matching _count.
func checkHistogram(fam *Family) error {
	var last float64
	var haveLast, haveInf bool
	var infCount, count float64
	var haveCount bool
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Label("le")
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", fam.Name)
			}
			if le == "+Inf" {
				haveInf = true
				infCount = s.Value
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam.Name, le)
			}
			if haveLast && s.Value < last {
				return fmt.Errorf("histogram %s: non-monotone buckets", fam.Name)
			}
			last, haveLast = s.Value, true
		case fam.Name + "_count":
			count, haveCount = s.Value, true
		}
	}
	if !haveInf {
		return fmt.Errorf("histogram %s: missing +Inf bucket", fam.Name)
	}
	if haveCount && infCount != count {
		return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", fam.Name, infCount, count)
	}
	return nil
}
