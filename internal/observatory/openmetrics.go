// OpenMetrics text exposition of a frame: every telemetry counter as a
// counter family, the cycle attribution as a labeled counter, the cycle
// histograms as power-of-two-bucketed histogram families, and the derived
// per-interval rates as gauges. The output follows the OpenMetrics text
// format (bare family name in TYPE, `_total` sample suffix on counters,
// terminal `# EOF`), which Prometheus scrapes natively; omlint.go holds the
// matching grammar checker used by tests and CI.

package observatory

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"flextm/internal/telemetry"
)

// counterHelp is the HELP line for a telemetry counter family. Kept short:
// the authoritative descriptions live on the telemetry.Counter constants.
func counterHelp(c telemetry.Counter) string {
	return fmt.Sprintf("FlexTM telemetry counter %q summed across cores.", c.String())
}

// metricName converts a telemetry kebab-case name into a legal metric name.
func metricName(s string) string {
	return strings.ReplaceAll(s, "-", "_")
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func escapeLabel(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are legal).
func escapeHelp(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// WriteOpenMetrics writes the frame as an OpenMetrics exposition. A nil
// frame (no sample published yet) yields a valid, empty exposition. bus, if
// non-nil, contributes the observation plane's own health: how many frame
// deliveries its subscribers refused.
func WriteOpenMetrics(w io.Writer, f *Frame, bus *Bus) error {
	bw := bufio.NewWriter(w)
	if bus != nil {
		counter(bw, "flextm_observatory_dropped_frames",
			"Frame deliveries refused by full observatory subscriber channels.", bus.Dropped())
	}
	if f != nil {
		// Run identity.
		fmt.Fprintf(bw, "# HELP flextm_run %s\n", escapeHelp("Identity of the observed run."))
		fmt.Fprintf(bw, "# TYPE flextm_run info\n")
		fmt.Fprintf(bw, "flextm_run_info{system=\"%s\",workload=\"%s\",threads=\"%d\",cores=\"%d\"} 1\n",
			escapeLabel(f.Meta.System), escapeLabel(f.Meta.Workload), f.Meta.Threads, f.Meta.Cores)

		// Observation-plane gauges.
		gauge(bw, "flextm_virtual_time_cycles", "Virtual time of the latest snapshot.", float64(f.End))
		gauge(bw, "flextm_interval_index", "Ordinal of the latest sampling interval within the run.", float64(f.Index))
		gauge(bw, "flextm_interval_cycles", "Virtual-time width of the latest sampling interval.", float64(f.IntervalCycles()))
		gauge(bw, "flextm_interval_commit_rate", "Committed transactions per million cycles over the latest interval.", f.CommitRate())
		gauge(bw, "flextm_interval_abort_ratio", "Aborted attempts over all attempts in the latest interval.", f.AbortRatio())
		gauge(bw, "flextm_interval_sig_fp_rate", "Observed signature false-positive rate over the latest interval.", f.SigFPRate())

		// Cumulative derived rates.
		obs, pred := f.Cum.SigFPRates()
		gauge(bw, "flextm_sig_fp_rate_observed", "Observed signature false-positive rate over the whole run.", obs)
		gauge(bw, "flextm_sig_fp_rate_predicted", "Mean analytic signature false-positive prediction over the whole run.", pred)

		// Every telemetry counter, machine total.
		for c := telemetry.Counter(0); c < telemetry.NumCounters; c++ {
			counter(bw, "flextm_"+metricName(c.String()), counterHelp(c), f.Cum.Total(c))
		}

		// Cycle attribution as one labeled family.
		a := f.Cum.Attribution()
		name := "flextm_attribution_cycles"
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp("Cycle attribution of transactional execution, by component."))
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		for _, row := range []struct {
			component string
			v         uint64
		}{
			{"useful", a.Useful}, {"stall", a.Stall}, {"aborted", a.Aborted}, {"commit_overhead", a.CommitOv},
		} {
			fmt.Fprintf(bw, "%s_total{component=\"%s\"} %d\n", name, row.component, row.v)
		}

		// Cycle histograms. The hist_ prefix keeps these families disjoint
		// from the counters: telemetry names counters and histograms in
		// separate namespaces ("cm-wait-cycles" is both), OpenMetrics has
		// only one.
		for h := telemetry.HistID(0); h < telemetry.NumHists; h++ {
			histogram(bw, "flextm_hist_"+metricName(h.String()), f.Cum.Hist(h))
		}

		// Resilience-governor sample, present only on governed runs.
		if f.Gov != nil {
			gauge(bw, "flextm_governor_level", "Mitigation-ladder level in force during the latest interval.", float64(f.Gov.Level))
			gauge(bw, "flextm_governor_rungs", "Total rungs in the configured mitigation ladder.", float64(f.Gov.Rungs))
			gauge(bw, "flextm_governor_transitions", "Ladder transitions recorded so far in the run.", float64(f.Gov.Transitions))
			name := "flextm_governor_state"
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp("Latest interval health classification (1 = current state)."))
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s{state=\"%s\"} 1\n", name, escapeLabel(f.Gov.State))
		}

		// Windowed causal analysis: critical path and dominant blame.
		if f.Causal != nil {
			c := f.Causal
			gauge(bw, "flextm_causal_path_cycles", "Critical-path length over the sliding flight-record window.", float64(c.PathCycles))
			gauge(bw, "flextm_causal_makespan_cycles", "Makespan of the sliding flight-record window.", float64(c.Makespan))
			gauge(bw, "flextm_causal_coverage", "Critical-path cycles over window makespan (0..1).", c.Coverage)
			gauge(bw, "flextm_causal_wasted_cycles", "Cycles spent in aborted attempts within the window.", float64(c.WastedCycles))
			gauge(bw, "flextm_causal_flight_gap", "1 when ring wrap-around punched a hole in the window since the last pull.", b2f(f.FlightGap))
			if len(c.Blame) > 0 {
				name := "flextm_causal_blame_cycles"
				fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp("Critical-path cycles blamed on a line (fp distinguishes false-positive share)."))
				fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
				for _, b := range c.Blame {
					fmt.Fprintf(bw, "%s{line=\"0x%x\",fp=\"false\"} %d\n", name, b.Line, b.Cycles-b.FPCycles)
					fmt.Fprintf(bw, "%s{line=\"0x%x\",fp=\"true\"} %d\n", name, b.Line, b.FPCycles)
				}
			}
		}

		// Windowed pathology counts from the incremental classifier.
		if f.Report != nil {
			name := "flextm_window_pathologies"
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp("Pathology instances detected in the sliding flight-record window."))
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			counts := f.Report.PathologyCounts()
			for _, kind := range []string{"abort-cycle", "starvation-chain", "friendly-fire"} {
				fmt.Fprintf(bw, "%s{kind=\"%s\"} %d\n", name, kind, counts[kind])
			}
		}
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	fmt.Fprintf(w, "%s %g\n", name, v)
}

func counter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	fmt.Fprintf(w, "%s_total %d\n", name, v)
}

// histogram writes one power-of-two-bucketed cycle histogram. Bucket i of
// telemetry.Hist holds values of bit length i, i.e. v <= 2^i - 1, which is
// exactly a cumulative `le` boundary.
func histogram(w io.Writer, name string, h telemetry.Hist) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp("Cycle histogram (power-of-two buckets)."))
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	// Find the highest non-empty bucket so the family stays compact.
	top := 0
	for i, n := range h.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, uint64(1)<<uint(i)-1, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
}
