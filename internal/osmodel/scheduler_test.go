package osmodel

import (
	"testing"

	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// schedFixture builds a small machine plus scheduler.
func schedFixture(mode core.Mode, cores int, quantum sim.Time) (*tmesi.System, *core.Runtime, *Scheduler, *sim.Engine) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = cores
	sys := tmesi.New(cfg)
	rt := core.New(sys, mode, cm.NewPolka())
	m := New(sys, rt)
	e := sim.NewEngine()
	return sys, rt, NewScheduler(m, rt, e, quantum), e
}

func TestSchedulerTimeslicesMoreThreadsThanCores(t *testing.T) {
	const cores, threadsPerCore, incs = 2, 3, 15
	sys, rt, sched, _ := schedFixture(core.Lazy, cores, 3000)
	x := sys.Alloc().Alloc(1)
	for c := 0; c < cores; c++ {
		for k := 0; k < threadsPerCore; k++ {
			sched.Spawn(c, func(th tmapi.Thread) {
				for j := 0; j < incs; j++ {
					th.Atomic(func(tx tmapi.Txn) {
						tx.Store(x, tx.Load(x)+1)
					})
					th.Work(500)
				}
			})
		}
	}
	if blocked := sched.Run(); blocked != 0 {
		t.Fatalf("%d threads never finished", blocked)
	}
	want := uint64(cores * threadsPerCore * incs)
	if v := sys.ReadWordRaw(x); v != want {
		t.Fatalf("counter = %d, want %d", v, want)
	}
	if s := rt.Stats(); s.Commits != want {
		t.Fatalf("commits = %d, want %d", s.Commits, want)
	}
}

func TestSchedulerTransactionsSurviveQuanta(t *testing.T) {
	// A transaction longer than the quantum must be suspended and resumed
	// (possibly several times) and still commit.
	sys, _, sched, _ := schedFixture(core.Lazy, 1, 1500)
	x := sys.Alloc().Alloc(1)
	sched.Spawn(0, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 42)
			for i := 0; i < 10; i++ {
				tx.Load(x)
				th.Work(800) // ~8000 cycles inside the txn, quantum 1500
			}
		})
	})
	sched.Spawn(0, func(th tmapi.Thread) {
		for i := 0; i < 20; i++ {
			th.Work(400)
			th.Atomic(func(tx tmapi.Txn) { tx.Load(x) })
		}
	})
	if blocked := sched.Run(); blocked != 0 {
		t.Fatalf("%d threads never finished", blocked)
	}
	if v := sys.ReadWordRaw(x); v != 42 {
		t.Fatalf("x = %d, want 42", v)
	}
	if sys.Stats().SummaryTraps == 0 {
		t.Log("note: no summary traps (reader may have missed the suspended window)")
	}
}

func TestSchedulerBankInvariantUnderTimeslicing(t *testing.T) {
	const cores, threadsPerCore, transfers, accounts, initial = 4, 2, 12, 8, 200
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		sys, rt, sched, _ := schedFixture(mode, cores, 2500)
		base := sys.Alloc().Alloc(accounts * memory.LineWords)
		acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
		for i := 0; i < accounts; i++ {
			sys.Image().WriteWord(acct(i), initial)
		}
		seed := uint64(1)
		for c := 0; c < cores; c++ {
			for k := 0; k < threadsPerCore; k++ {
				s := seed
				seed++
				sched.Spawn(c, func(th tmapi.Thread) {
					r := sim.NewRand(s)
					for j := 0; j < transfers; j++ {
						from, to := r.Intn(accounts), r.Intn(accounts)
						amt := uint64(r.Intn(10))
						th.Atomic(func(tx tmapi.Txn) {
							f := tx.Load(acct(from))
							if f < amt {
								return
							}
							tx.Store(acct(from), f-amt)
							tx.Store(acct(to), tx.Load(acct(to))+amt)
						})
						th.Work(300)
					}
				})
			}
		}
		if blocked := sched.Run(); blocked != 0 {
			t.Fatalf("%v: %d threads never finished", mode, blocked)
		}
		var total uint64
		for i := 0; i < accounts; i++ {
			total += sys.ReadWordRaw(acct(i))
		}
		if total != accounts*initial {
			t.Fatalf("%v: total = %d, want %d", mode, total, accounts*initial)
		}
		if s := rt.Stats(); s.Commits != cores*threadsPerCore*transfers {
			t.Fatalf("%v: commits = %d, want %d", mode, s.Commits, cores*threadsPerCore*transfers)
		}
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	runOnce := func() (uint64, sim.Time) {
		sys, rt, sched, e := schedFixture(core.Lazy, 2, 2000)
		x := sys.Alloc().Alloc(1)
		for c := 0; c < 2; c++ {
			for k := 0; k < 2; k++ {
				sched.Spawn(c, func(th tmapi.Thread) {
					for j := 0; j < 10; j++ {
						th.Atomic(func(tx tmapi.Txn) { tx.Store(x, tx.Load(x)+1) })
						th.Work(700)
					}
				})
			}
		}
		sched.Run()
		_ = rt
		return sys.ReadWordRaw(x), e.MaxTime()
	}
	v1, t1 := runOnce()
	v2, t2 := runOnce()
	if v1 != v2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", v1, t1, v2, t2)
	}
}
