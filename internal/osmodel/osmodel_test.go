package osmodel

import (
	"testing"

	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// fixture builds a machine, runtime, and OS manager.
func fixture(mode core.Mode) (*tmesi.System, *core.Runtime, *Manager) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 4
	sys := tmesi.New(cfg)
	rt := core.New(sys, mode, cm.NewPolka())
	return sys, rt, New(sys, rt)
}

// parkDuring runs victim on core 0 and an OS script that parks it the first
// time it reaches a sync point after osDelay, runs between(), then resumes
// it resumeDelay cycles later (possibly on another core via resumeCore).
func parkDuring(t *testing.T, sys *tmesi.System, rt *core.Runtime, m *Manager,
	victim func(th tmapi.Thread), osDelay, resumeDelay sim.Time,
	between func(ctx *sim.Ctx)) {
	t.Helper()
	e := sim.NewEngine()
	var vctx *sim.Ctx
	var susp *Suspended
	vctx = e.Spawn("victim", 0, func(ctx *sim.Ctx) {
		victim(rt.Bind(ctx, 0))
	})
	e.Spawn("os", 0, func(ctx *sim.Ctx) {
		ctx.Advance(osDelay)
		ctx.Sync()
		e.RequestPark(vctx, func(v *sim.Ctx) {
			susp = m.Suspend(v, 0)
		})
		ctx.Advance(resumeDelay)
		ctx.Sync()
		if between != nil {
			between(ctx)
		}
		if susp != nil {
			m.Resume(ctx, 0, susp)
		}
		e.Unblock(vctx, ctx.Now())
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
}

func TestSuspendResumeTransparent(t *testing.T) {
	sys, rt, m := fixture(core.Lazy)
	x := sys.Alloc().Alloc(1)
	victim := func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 5)
			// Plenty of sync points for the park to land on.
			for i := 0; i < 50; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	}
	parkDuring(t, sys, rt, m, victim, 500, 5000, nil)
	if v := sys.ReadWordRaw(x); v != 5 {
		t.Fatalf("x = %d, want 5 (suspended txn must still commit)", v)
	}
	if s := rt.Stats(); s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if m.SuspendedCount() != 0 {
		t.Fatal("CMT not drained")
	}
}

func TestSuspendedStateInvisibleWhileParked(t *testing.T) {
	sys, rt, m := fixture(core.Lazy)
	x := sys.Alloc().Alloc(1)
	sys.Image().WriteWord(x, 1)
	victim := func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 99)
			for i := 0; i < 50; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	}
	sawDuringSuspend := uint64(0)
	parkDuring(t, sys, rt, m, victim, 500, 8000, func(ctx *sim.Ctx) {
		sawDuringSuspend = sys.Load(ctx, 2, x).Val
	})
	if sawDuringSuspend != 1 {
		t.Fatalf("reader saw %d during suspension, want committed 1", sawDuringSuspend)
	}
	if v := sys.ReadWordRaw(x); v != 99 {
		t.Fatalf("x = %d after resume+commit, want 99", v)
	}
}

func TestLazyCommitAbortsSuspendedConflictor(t *testing.T) {
	sys, rt, m := fixture(core.Lazy)
	x := sys.Alloc().Alloc(1)
	e := sim.NewEngine()
	var vctx *sim.Ctx
	var susp *Suspended
	ready := false
	vctx = e.Spawn("victim", 0, func(ctx *sim.Ctx) {
		th := rt.Bind(ctx, 0)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, tx.Load(x)+1)
			ready = true
			for i := 0; i < 40; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	})
	e.Spawn("os+writer", 0, func(ctx *sim.Ctx) {
		for !ready {
			ctx.Advance(200)
			ctx.Sync()
		}
		e.RequestPark(vctx, func(v *sim.Ctx) { susp = m.Suspend(v, 0) })
		ctx.Advance(1000)
		ctx.Sync()
		// A running transaction on core 1 writes x while the victim is
		// suspended: the summary signatures must catch the conflict, and
		// the writer's commit must abort the suspended transaction.
		th := rt.Bind(ctx, 1)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, tx.Load(x)+1)
		})
		if susp != nil {
			m.Resume(ctx, 0, susp)
			e.Unblock(vctx, ctx.Now())
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	// Both increments must survive: the suspended txn was aborted by the
	// writer's commit and retried after resume.
	if v := sys.ReadWordRaw(x); v != 2 {
		t.Fatalf("x = %d, want 2 (no lost update through suspension)", v)
	}
	s := rt.Stats()
	if s.Commits != 2 {
		t.Fatalf("commits = %d, want 2", s.Commits)
	}
	if s.Aborts == 0 {
		t.Fatal("suspended conflictor was never aborted")
	}
	if sys.Stats().SummaryTraps == 0 {
		t.Fatal("summary signatures never consulted")
	}
}

func TestEagerTrapAbortsSuspendedImmediately(t *testing.T) {
	sys, rt, m := fixture(core.Eager)
	x := sys.Alloc().Alloc(1)
	e := sim.NewEngine()
	var vctx *sim.Ctx
	var susp *Suspended
	ready := false
	vctx = e.Spawn("victim", 0, func(ctx *sim.Ctx) {
		th := rt.Bind(ctx, 0)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, tx.Load(x)+1)
			ready = true
			for i := 0; i < 40; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	})
	e.Spawn("os+reader", 0, func(ctx *sim.Ctx) {
		for !ready {
			ctx.Advance(200)
			ctx.Sync()
		}
		e.RequestPark(vctx, func(v *sim.Ctx) { susp = m.Suspend(v, 0) })
		ctx.Advance(1000)
		ctx.Sync()
		th := rt.Bind(ctx, 1)
		th.Atomic(func(tx tmapi.Txn) { tx.Load(x) }) // summary hit -> abort suspended
		if susp != nil {
			m.Resume(ctx, 0, susp)
			e.Unblock(vctx, ctx.Now())
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	if v := sys.ReadWordRaw(x); v != 1 {
		t.Fatalf("x = %d, want 1", v)
	}
	s := rt.Stats()
	if s.Aborts == 0 {
		t.Fatal("eager mode should have aborted the suspended transaction (no convoying)")
	}
	if s.Commits != 2 {
		t.Fatalf("commits = %d, want 2", s.Commits)
	}
}

func TestMigrationAbortsAndRestarts(t *testing.T) {
	sys, rt, m := fixture(core.Lazy)
	x := sys.Alloc().Alloc(1)
	e := sim.NewEngine()
	var vctx *sim.Ctx
	var susp *Suspended
	vctx = e.Spawn("victim", 0, func(ctx *sim.Ctx) {
		th := rt.Bind(ctx, 0)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 7)
			for i := 0; i < 40; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	})
	e.Spawn("os", 0, func(ctx *sim.Ctx) {
		ctx.Advance(500)
		ctx.Sync()
		e.RequestPark(vctx, func(v *sim.Ctx) { susp = m.Suspend(v, 0) })
		ctx.Advance(1000)
		ctx.Sync()
		if susp != nil {
			// "Migrate" to core 2: FlexTM's policy is abort-and-restart.
			// The thread itself still runs with core-0 bindings in this
			// model, so resume it there after the abort.
			m.Resume(ctx, 2, susp)
			e.Unblock(vctx, ctx.Now())
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	if v := sys.ReadWordRaw(x); v != 7 {
		t.Fatalf("x = %d, want 7 (restart must still commit)", v)
	}
	if s := rt.Stats(); s.Aborts == 0 {
		t.Fatal("migration did not abort the transaction")
	}
}

func TestNoTrapWithoutOverlap(t *testing.T) {
	sys, rt, m := fixture(core.Lazy)
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	victim := func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 5)
			for i := 0; i < 40; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	}
	parkDuring(t, sys, rt, m, victim, 500, 5000, func(ctx *sim.Ctx) {
		sys.Load(ctx, 2, y) // disjoint line: must not trap
	})
	if sys.Stats().SummaryTraps != 0 {
		t.Fatalf("SummaryTraps = %d on a disjoint access", sys.Stats().SummaryTraps)
	}
}

func TestAnotherThreadUsesCoreWhileSuspended(t *testing.T) {
	sys, rt, m := fixture(core.Lazy)
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	e := sim.NewEngine()
	var vctx *sim.Ctx
	var susp *Suspended
	vctx = e.Spawn("victim", 0, func(ctx *sim.Ctx) {
		th := rt.Bind(ctx, 0)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 11)
			for i := 0; i < 40; i++ {
				tx.Load(x)
				th.Work(50)
			}
		})
	})
	e.Spawn("os", 0, func(ctx *sim.Ctx) {
		ctx.Advance(500)
		ctx.Sync()
		e.RequestPark(vctx, func(v *sim.Ctx) { susp = m.Suspend(v, 0) })
		ctx.Advance(500)
		ctx.Sync()
		// A different thread runs a transaction on core 0 while the victim
		// is suspended (the point of virtualization).
		other := rt.Bind(ctx, 0)
		other.Atomic(func(tx tmapi.Txn) { tx.Store(y, 22) })
		if susp != nil {
			m.Resume(ctx, 0, susp)
			e.Unblock(vctx, ctx.Now())
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	if sys.ReadWordRaw(x) != 11 || sys.ReadWordRaw(y) != 22 {
		t.Fatalf("x=%d y=%d, want 11/22", sys.ReadWordRaw(x), sys.ReadWordRaw(y))
	}
	if s := rt.Stats(); s.Commits != 2 {
		t.Fatalf("commits = %d, want 2", s.Commits)
	}
}

var _ = memory.Addr(0)

func TestSuspendDuringAbortTeardownCleansCore(t *testing.T) {
	// Regression: a thread preempted inside its abort handler has a dead
	// descriptor (CurrentTSW == 0) but the hardware is still in
	// transactional mode. Suspend must finish the flash on its behalf, or
	// the next thread's BeginTxn panics on an already-active core.
	sys, rt, m := fixture(core.Lazy)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(ctx *sim.Ctx) {
		sys.BeginTxn(0) // hardware active, no live runtime descriptor
		sys.TStore(ctx, 0, 4242, 7)
		if s := m.Suspend(ctx, 0); s != nil {
			t.Error("Suspend of a descriptor-less core should return nil")
		}
		if sys.TxnActive(0) {
			t.Error("Suspend left the core in transactional mode")
		}
		if sys.ReadWordRaw(4242) != 0 {
			t.Error("speculative state leaked through the teardown")
		}
		// The core is clean: a fresh transaction must work.
		th := rt.Bind(ctx, 0)
		th.Atomic(func(tx tmapi.Txn) { tx.Store(4242, 9) })
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	if v := sys.ReadWordRaw(4242); v != 9 {
		t.Fatalf("x = %d, want 9", v)
	}
}
