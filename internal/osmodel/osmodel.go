// Package osmodel implements the operating-system side of FlexTM's
// virtualization story (Section 5): transactions extend across context
// switches because their hardware state — signatures, CSTs, speculative
// lines, overflow table — is saved to virtual memory, summarized at the
// directory, and manipulated by software handlers.
//
// The pieces:
//
//   - Suspend unions the victim's Rsig/Wsig into the directory's summary
//     signatures (RSsig/WSsig), moves its TMI lines into its overflow
//     table, saves signatures/CSTs/OT, and issues the abort instruction so
//     the core is clean for the next thread.
//   - The L2 consults the summary signatures on every L1 miss; on a hit it
//     traps into this package's handler, which walks the conflict
//     management table (CMT), tests the saved per-thread signatures, and
//     either updates saved CSTs (lazy) or aborts the suspended transaction
//     (eager — avoiding LogTM-SE-style convoying).
//   - Committing transactions whose CSTs name a processor also peruse the
//     CMT for that processor and abort matching suspended transactions.
//   - Resume reinstalls the saved state on the same core and virtualizes
//     AOU by raising an alert so the thread re-examines and re-ALoads its
//     status word. Migration to a different core aborts and restarts.
package osmodel

import (
	"flextm/internal/core"
	"flextm/internal/cst"
	"flextm/internal/memory"
	"flextm/internal/signature"
	"flextm/internal/sim"
	"flextm/internal/tmesi"
)

// Suspended is one descheduled transaction: a CMT entry.
type Suspended struct {
	HomeCore int
	TSW      memory.Addr
	Saved    *tmesi.SavedTxn
	handle   core.TxnHandle
}

// Manager is the OS-level virtualization state for one machine.
type Manager struct {
	sys   *tmesi.System
	rt    *core.Runtime
	eager bool

	// cmt is the conflict management table: active transaction list per
	// processor id, including suspended ones.
	cmt map[int][]*Suspended
}

// New returns a manager wired to sys and the FlexTM runtime rt. Eager mode
// resolves conflicts with suspended transactions by aborting the suspended
// side immediately.
func New(sys *tmesi.System, rt *core.Runtime) *Manager {
	m := &Manager{
		sys:   sys,
		rt:    rt,
		eager: rt.Mode() == core.Eager,
		cmt:   make(map[int][]*Suspended),
	}
	rt.SetOnAbortEnemy(m.abortSuspendedOn)
	return m
}

// Suspend saves core's transactional state (the thread being descheduled is
// parked at an operation boundary; ctx is its context, so the trap cost is
// charged to it). It returns nil when no transaction is live on the core.
func (m *Manager) Suspend(ctx *sim.Ctx, coreID int) *Suspended {
	tsw := m.rt.CurrentTSW(coreID)
	if tsw == 0 || !m.sys.TxnActive(coreID) {
		if m.sys.TxnActive(coreID) {
			// The thread was preempted inside its abort handler: the
			// descriptor is already dead but the hardware flash has not
			// happened yet. Finish the teardown so the next thread finds
			// a clean core; the thread's own AbortFlash on resume will
			// see an inactive core and skip.
			m.sys.AbortFlash(ctx, coreID)
		}
		return nil
	}
	s := &Suspended{
		HomeCore: coreID,
		TSW:      tsw,
		Saved:    m.sys.SaveTxnState(ctx, coreID),
		handle:   m.rt.DetachTxn(coreID),
	}
	m.cmt[coreID] = append(m.cmt[coreID], s)
	m.refreshSummary()
	debugf("t=%d SUSPEND core=%d tsw=%d", ctx.Now(), coreID, tsw)
	return s
}

// Resume reinstates s on coreID. Rescheduling to the home core restores the
// saved hardware state; migration aborts the transaction (FlexTM's simple
// policy, since lazy versioning does not re-acquire written lines). Either
// way an alert is raised so the thread re-examines its status word.
func (m *Manager) Resume(ctx *sim.Ctx, coreID int, s *Suspended) {
	m.dropCMT(s)
	if coreID != s.HomeCore {
		// Migration: abort and restart.
		m.sys.ForceWord(s.TSW, core.TSWAborted)
		if s.Saved.OT != nil {
			s.Saved.OT.Discard()
		}
	} else {
		m.sys.RestoreTxnState(ctx, coreID, s.Saved)
		m.rt.AttachTxn(ctx, coreID, s.handle)
	}
	m.refreshSummary()
	m.sys.RaiseAlert(coreID, s.TSW)
	debugf("t=%d RESUME core=%d tsw=%d tswval=%d", ctx.Now(), coreID, s.TSW, m.sys.ReadWordRaw(s.TSW))
}

func (m *Manager) dropCMT(s *Suspended) {
	list := m.cmt[s.HomeCore]
	for i, e := range list {
		if e == s {
			m.cmt[s.HomeCore] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Suspended returns the number of CMT entries (for tests and diagnostics).
func (m *Manager) SuspendedCount() int {
	n := 0
	for _, l := range m.cmt {
		n += len(l)
	}
	return n
}

// refreshSummary recomputes RSsig/WSsig over all suspended transactions and
// installs them (with the trap handler) at the directory.
func (m *Manager) refreshSummary() {
	if m.SuspendedCount() == 0 {
		m.sys.InstallSummary(nil, nil, nil)
		return
	}
	rs := signature.New(m.sys.Config().Sig)
	ws := signature.New(m.sys.Config().Sig)
	for _, list := range m.cmt {
		for _, s := range list {
			rs.Union(s.Saved.Rsig)
			ws.Union(s.Saved.Wsig)
		}
	}
	m.sys.InstallSummary(rs, ws, m.trap)
}

// trap is the software handler the L2 invokes when an L1 miss hits the
// summary signatures. It mimics the hardware's per-thread behavior against
// the saved state.
func (m *Manager) trap(requestor int, line memory.LineAddr, write bool) []tmesi.Conflict {
	var out []tmesi.Conflict
	for home, list := range m.cmt {
		for _, s := range list {
			if m.sys.ReadWordRaw(s.TSW) != core.TSWActive {
				continue // already committed/aborted: no conflict
			}
			wHit := s.Saved.Wsig.Member(line)
			rHit := s.Saved.Rsig.Member(line)
			if !wHit && !(write && rHit) {
				continue
			}
			if m.eager {
				// Conflict management: FlexTM can abort suspended peers,
				// so running transactions never convoy behind them.
				m.sys.ForceWord(s.TSW, core.TSWAborted)
				if s.Saved.OT != nil {
					s.Saved.OT.Discard()
				}
				continue
			}
			// Lazy: record the conflict in both parties' CSTs, exactly as
			// the hardware would have.
			reqCST := m.sys.CST(requestor)
			if wHit {
				if write {
					reqCST.Set(cst.WW, home)
					s.Saved.CST.Set(cst.WW, requestor)
				} else {
					reqCST.Set(cst.RW, home)
					s.Saved.CST.Set(cst.WR, requestor)
				}
				out = append(out, tmesi.Conflict{Responder: home, Msg: tmesi.Threatened, Line: line, Suspended: true})
			} else {
				reqCST.Set(cst.WR, home)
				s.Saved.CST.Set(cst.RW, requestor)
				out = append(out, tmesi.Conflict{Responder: home, Msg: tmesi.ExposedRead, Line: line, Suspended: true})
			}
		}
	}
	return out
}

// abortSuspendedOn is the commit-time CMT perusal (Section 5): when a
// committing transaction aborts the processor named in its CSTs, suspended
// transactions from that processor must die too.
func (m *Manager) abortSuspendedOn(th *core.Thread, enemy int) {
	for _, s := range m.cmt[enemy] {
		debugf("t=%d core=%d ABORT-SUSPENDED home=%d tsw=%d", th.Ctx().Now(), th.Core(), enemy, s.TSW)
		m.sys.CAS(th.Ctx(), th.Core(), s.TSW, core.TSWActive, core.TSWAborted)
	}
}

// debugf forwards to core.TraceFn for combined debugging traces.
func debugf(format string, args ...interface{}) {
	if core.TraceFn != nil {
		core.TraceFn(format, args...)
	}
}
