package osmodel

import (
	"fmt"

	"flextm/internal/core"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
)

// Scheduler timeslices more software threads than the machine has cores,
// using the Manager's suspend/resume machinery: at every quantum the
// running thread on each core is parked (its transactional state saved and
// summarized at the directory per Section 5) and the next thread with
// affinity for that core is resumed. Transactions routinely survive
// multiple context switches; conflicts with suspended transactions are
// caught by the summary signatures.
//
// Threads keep core affinity, so suspended transactions resume on their
// home core and never take the migration abort.
type Scheduler struct {
	m       *Manager
	rt      *core.Runtime
	engine  *sim.Engine
	quantum sim.Time

	queues  [][]*swThread // per core, round-robin order
	pending int
}

type swThread struct {
	ctx     *sim.Ctx
	core    int
	started bool
	done    bool
	parked  bool
	susp    *Suspended
}

// NewScheduler returns a quantum-based scheduler over the manager's
// machine and runtime.
func NewScheduler(m *Manager, rt *core.Runtime, engine *sim.Engine, quantum sim.Time) *Scheduler {
	return &Scheduler{
		m:       m,
		rt:      rt,
		engine:  engine,
		quantum: quantum,
		queues:  make([][]*swThread, m.sys.Config().Cores),
	}
}

// Spawn registers a software thread with affinity for coreID. The first
// thread of a core starts immediately; later ones wait for their slice.
// body receives the thread's FlexTM binding.
func (s *Scheduler) Spawn(coreID int, body func(th tmapi.Thread)) {
	t := &swThread{core: coreID}
	first := len(s.queues[coreID]) == 0
	s.queues[coreID] = append(s.queues[coreID], t)
	s.pending++
	t.ctx = s.engine.Spawn(fmt.Sprintf("sw-%d-%d", coreID, len(s.queues[coreID])), 0,
		func(ctx *sim.Ctx) {
			if !first {
				t.parked = true
				ctx.Block() // wait for the first slice
			}
			t.started = true
			body(s.rt.BindThread(ctx, coreID))
			t.done = true
			s.pending--
		})
	if !first {
		t.started = false
	}
}

// Run drives the machine: it spawns the OS coroutine and runs the engine to
// completion, returning the number of threads that failed to finish (0 on
// success).
func (s *Scheduler) Run() int {
	s.engine.Spawn("os-scheduler", 0, func(ctx *sim.Ctx) {
		for s.pending > 0 {
			ctx.Advance(s.quantum)
			ctx.Sync()
			for coreID := range s.queues {
				s.rotate(ctx, coreID)
			}
		}
	})
	blocked := s.engine.Run()
	// The OS thread itself exits when all workers are done; anything still
	// blocked is a scheduling failure.
	return blocked
}

// rotate preempts the running thread on coreID (if any) and resumes the
// next runnable one.
func (s *Scheduler) rotate(ctx *sim.Ctx, coreID int) {
	q := s.queues[coreID]
	runnable := 0
	for _, t := range q {
		if !t.done {
			runnable++
		}
	}
	if runnable <= 1 {
		s.ensureSomeoneRuns(ctx, coreID)
		return
	}

	// Find the currently running thread (started, not parked, not done).
	var cur *swThread
	for _, t := range q {
		if t.started && !t.parked && !t.done {
			cur = t
			break
		}
	}
	if cur != nil {
		parkedAt := sim.Time(0)
		parked := false
		s.engine.RequestPark(cur.ctx, func(v *sim.Ctx) {
			cur.susp = s.m.Suspend(v, coreID)
			cur.parked = true
			parkedAt = v.Now()
			parked = true
		})
		// Wait (in virtual time) until the victim actually parks; it may
		// finish instead, which is just as good.
		for !parked && !cur.done {
			ctx.Advance(50)
			ctx.Sync()
		}
		_ = parkedAt
	}
	s.ensureSomeoneRuns(ctx, coreID)
}

// ensureSomeoneRuns resumes the next parked, unfinished thread on coreID if
// no thread is currently running there.
func (s *Scheduler) ensureSomeoneRuns(ctx *sim.Ctx, coreID int) {
	q := s.queues[coreID]
	for _, t := range q {
		if t.started && !t.parked && !t.done {
			return // someone is running
		}
	}
	// Round-robin: rotate the queue so the next parked thread wakes.
	for i, t := range q {
		if t.done || !t.parked {
			continue
		}
		if t.susp != nil {
			s.m.Resume(ctx, coreID, t.susp)
			t.susp = nil
		}
		t.parked = false
		t.started = true
		s.engine.Unblock(t.ctx, ctx.Now())
		// Move it to the back for fairness.
		s.queues[coreID] = append(append(append([]*swThread{}, q[:i]...), q[i+1:]...), t)
		return
	}
}
