package stress

import (
	"bytes"
	"fmt"
	"testing"

	"flextm/internal/core"
	"flextm/internal/fault"
)

// allFaults returns a config with every fault class enabled at rate.
func allFaults(rate float64) fault.Config {
	var fc fault.Config
	for cl := fault.Class(0); cl < fault.NumClasses; cl++ {
		fc = fc.WithRate(cl, rate)
	}
	return fc
}

// TestCleanSweepBothModes is the acceptance sweep: the unmodified protocol
// must pass the oracle under both conflict-management modes with all seven
// fault classes enabled, across a spread of seeds, with the tiny cache
// forcing TMI evictions into the overflow table at commit.
func TestCleanSweepBothModes(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		t.Run(mode.String(), func(t *testing.T) {
			base := DefaultConfig(1)
			base.Mode = mode
			base.TinyCache = true
			base.Faults = allFaults(0.05)
			res := Explore(base, seeds)
			for _, f := range res.Failures {
				var buf bytes.Buffer
				if f.Report != nil {
					f.Report.Print(&buf)
				}
				t.Errorf("schedule %s failed: runErr=%q\n%s", f.Schedule, f.RunErr, buf.String())
			}
			if res.Runs != seeds {
				t.Fatalf("ran %d seeds, want %d", res.Runs, seeds)
			}
		})
	}
}

// TestBrokenVariantDetectedAndShrunk is the negative acceptance probe: with
// the W-R commit aborts disabled (Figure 3, line 2 skipped), the explorer
// must find a serializability violation, and Shrink must reduce it to a
// smaller replayable schedule whose oracle report carries a witness.
func TestBrokenVariantDetectedAndShrunk(t *testing.T) {
	base := DefaultConfig(1)
	base.Mode = core.Lazy
	base.BreakWR = true
	res := Explore(base, 8)
	if len(res.Failures) == 0 {
		t.Fatal("explorer missed the disabled-W-R protocol break across 8 seeds")
	}
	first := res.Failures[0]
	if first.Report == nil || first.Report.Ok() {
		t.Fatalf("failure without oracle violations: %+v", first.RunErr)
	}

	shrunk := Shrink(first.Config, 48)
	if !shrunk.Failed() {
		t.Fatal("shrink lost the failure")
	}
	if shrunk.Report == nil || len(shrunk.Report.Violations) == 0 {
		t.Fatal("shrunk outcome has no materialized witness")
	}
	w := shrunk.Report.Violations[0]
	if len(w.Witness) == 0 {
		t.Fatalf("violation %q has an empty witness history", w.Kind)
	}
	// The shrunk config must not be larger than the original in any axis.
	a, b := shrunk.Config, first.Config
	if a.Threads > b.Threads || a.Rounds > b.Rounds || a.Accounts > b.Accounts || a.OpsPerTxn > b.OpsPerTxn {
		t.Fatalf("shrink grew the config: %+v -> %+v", b, a)
	}
	t.Logf("shrunk schedule: %s (%d violations)", shrunk.Schedule, shrunk.Report.TotalViolations)

	// The schedule string must replay to the same verdict.
	cfg, err := ParseSchedule(shrunk.Schedule)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", shrunk.Schedule, err)
	}
	replay := Run(cfg)
	if !replay.Failed() {
		t.Fatalf("replayed schedule %q did not fail", shrunk.Schedule)
	}
	if replay.Report.TotalViolations != shrunk.Report.TotalViolations {
		t.Fatalf("replay found %d violations, original %d",
			replay.Report.TotalViolations, shrunk.Report.TotalViolations)
	}
}

// TestRunDeterministic: identical configs must yield bit-identical
// outcomes; the replay contract rests on it.
func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Faults = allFaults(0.08)
	cfg.TinyCache = true
	a, b := Run(cfg), Run(cfg)
	if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Cycles != b.Cycles ||
		a.Injected != b.Injected || a.Escalations != b.Escalations {
		t.Fatalf("non-deterministic run: %+v vs %+v", a, b)
	}
	if a.Report.TotalViolations != b.Report.TotalViolations {
		t.Fatalf("non-deterministic verdict: %d vs %d",
			a.Report.TotalViolations, b.Report.TotalViolations)
	}
}

// TestScheduleRoundTrip: Schedule and ParseSchedule must invert each other
// for representative configs.
func TestScheduleRoundTrip(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(7),
		{Seed: 9, Threads: 3, Rounds: 10, OpsPerTxn: 2, Accounts: 4,
			Mode: core.Eager, TinyCache: true, BreakWR: true, Quantum: 2500,
			Faults: allFaults(0.025)},
	}
	for _, cfg := range cfgs {
		s := cfg.Schedule()
		back, err := ParseSchedule(s)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", s, err)
		}
		if back.Schedule() != s {
			t.Fatalf("round trip drifted: %q -> %q", s, back.Schedule())
		}
	}
	if _, err := ParseSchedule(""); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := ParseSchedule("s1,zork"); err == nil {
		t.Fatal("junk token accepted")
	}
	if _, err := ParseSchedule("s1,f:no-such-class:10"); err == nil {
		t.Fatal("unknown fault class accepted")
	}
}

// TestPreemptStormOracleChecked: the OS preemption storm (suspend/resume
// with summary-signature arbitration) must preserve serializability.
func TestPreemptStormOracleChecked(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Mode = core.Lazy
	cfg.Faults = fault.Config{}.WithRate(fault.Preempt, 0.3)
	cfg.Quantum = 1500
	out := Run(cfg)
	if out.Failed() {
		var buf bytes.Buffer
		out.Report.Print(&buf)
		t.Fatalf("preempt storm broke the run: %s\n%s", out.RunErr, buf.String())
	}
	if out.Injected == 0 {
		t.Fatal("storm injected nothing; the schedule never preempted")
	}
}

// TestGovernedScheduleMitigatesDuringFaults is the fault+governor
// interaction satellite: under injected CST-corrupting faults (commit-race
// CST-read refusals plus sig-fp spurious CST bits), the governor must fire
// at least one mitigation mid-schedule, the run must stay serializable and
// conserved, and the whole closed loop must be replayable bit-for-bit from
// the schedule string.
func TestGovernedScheduleMitigatesDuringFaults(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Governed = true
	cfg.Faults = fault.Config{}.
		WithRate(fault.CommitRace, 0.5).
		WithRate(fault.SigFalsePos, 0.2)

	// The schedule string carries the governed flag.
	back, err := ParseSchedule(cfg.Schedule())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Governed || back.Schedule() != cfg.Schedule() {
		t.Fatalf("governed schedule does not round-trip: %q -> %q", cfg.Schedule(), back.Schedule())
	}

	out := Run(cfg)
	if out.Failed() {
		var buf bytes.Buffer
		out.Report.Print(&buf)
		t.Fatalf("governed fault run failed: %s\n%s", out.RunErr, buf.String())
	}
	if out.GovTransitions == 0 {
		t.Fatalf("no mitigation fired during the fault storm (schedule %q)\ncommits=%d aborts=%d",
			out.Schedule, out.Commits, out.Aborts)
	}
	if out.GovLog == "" {
		t.Fatal("governed run produced no transition log")
	}
	if out.GovFinalLevel != 0 {
		t.Fatalf("governor did not converge: final level %d\n%s", out.GovFinalLevel, out.GovLog)
	}

	// Replay from the schedule string: the control loop is part of the
	// replay contract, transition log included.
	replay := Run(back)
	if replay.GovLog != out.GovLog || replay.GovTransitions != out.GovTransitions ||
		replay.GovFinalLevel != out.GovFinalLevel ||
		replay.Commits != out.Commits || replay.Aborts != out.Aborts ||
		replay.Cycles != out.Cycles || replay.Injected != out.Injected {
		t.Fatalf("replay diverged:\n--- run\n%+v\n%s\n--- replay\n%+v\n%s",
			outSummary(out), out.GovLog, outSummary(replay), replay.GovLog)
	}

	// The same seed ungoverned: attaching the governor must not be able to
	// break the oracle either way, and the ungoverned twin gives the A/B
	// contrast that the mitigations actually engaged.
	ungov := cfg
	ungov.Governed = false
	u := Run(ungov)
	if u.Failed() {
		t.Fatalf("ungoverned twin failed: %s", u.RunErr)
	}
	if u.GovTransitions != 0 || u.GovLog != "" {
		t.Fatal("ungoverned run carries governor state")
	}
}

func outSummary(o Outcome) string {
	return fmt.Sprintf("commits=%d aborts=%d esc=%d cycles=%d inj=%d govT=%d govL=%d",
		o.Commits, o.Aborts, o.Escalations, o.Cycles, o.Injected, o.GovTransitions, o.GovFinalLevel)
}
