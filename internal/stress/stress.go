// Package stress is a seed-driven schedule explorer for the FlexTM
// protocol, built on the serializability oracle (internal/oracle). Each
// seed deterministically generates a small multi-thread program — transfer
// races, opposite-order duels, read-only scans, write-skew pairs, wide
// updates that evict TMI lines into the overflow table at commit, and
// non-transactional probes — and a fault schedule (internal/fault), runs it
// through the deterministic sim engine, and checks the committed history
// for serializability.
//
// Because the whole run is a pure function of its Config, a failing seed is
// a replayable artifact: Config.Schedule() renders it as a compact string
// (`flextm -oracle -schedule <s>` replays it), and Shrink greedily reduces
// a failing configuration — fewer threads, rounds, accounts, fault classes
// — while it keeps failing, yielding a minimal witness schedule to go with
// the oracle's minimal witness history.
package stress

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/governor"
	"flextm/internal/memory"
	"flextm/internal/observatory"
	"flextm/internal/oracle"
	"flextm/internal/osmodel"
	"flextm/internal/sim"
	"flextm/internal/sweepexec"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// Config fixes one stress run completely: the same Config reproduces the
// same program, schedule, fault sequence, and verdict, bit for bit.
type Config struct {
	Seed      uint64
	Threads   int
	Rounds    int // operations per thread
	OpsPerTxn int // scales scan widths and hold times inside transactions
	Accounts  int // shared conservation cells (one line each)
	Mode      core.Mode
	// Faults carries per-class injection rates; the injector's seed is
	// derived from Seed, so Faults.Seed is ignored.
	Faults fault.Config
	// TinyCache shrinks the L1 so speculative (TMI) lines are evicted into
	// the overflow table mid-transaction — the commit-time OT walk races
	// the issue asks the explorer to exercise.
	TinyCache bool
	// BreakWR disables the commit-time abort of W-R-named enemies
	// (core.SetWRAborts(false)): the intentionally broken protocol variant
	// the oracle must catch.
	BreakWR bool
	// Quantum is the preempt-storm tick, used when Faults enables
	// fault.Preempt (0 selects DefaultQuantum).
	Quantum sim.Time
	// MaxViolations caps materialized oracle witnesses (0 = oracle default).
	MaxViolations int
	// Governed attaches the resilience governor (fixed ladder and
	// thresholds, GovInterval sampling): mitigations then fire mid-schedule,
	// interleaved deterministically with the fault injector. Schedule token
	// "gov".
	Governed bool
}

// GovInterval is the observation/governor sampling tick on governed stress
// runs. Fixed, so a schedule string pins the whole control loop.
const GovInterval sim.Time = 5000

// GovCalmTail is how many empty intervals the observation and governor
// threads run past the last worker: enough for a fully raised default
// ladder (5 rungs x (cooldown 1 + lower-after 2)) to unwind completely.
const GovCalmTail = 24

// govConfig is the governed stress cell's controller: stock ladder, but
// hair-trigger hysteresis so short CI-sized schedules still exercise raises.
func govConfig() governor.Config {
	return governor.Config{RaiseAfter: 1, LowerAfter: 2, Cooldown: 1}
}

// DefaultQuantum is the preempt-storm tick when Config.Quantum is zero.
const DefaultQuantum = 3000

// initialBalance is each account's starting value; transfers guard against
// underflow so the shared sum is conserved by construction.
const initialBalance = 100

// DefaultConfig is a contended but quick cell: small enough for CI sweeps,
// racy enough that schedules genuinely interleave.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:      seed,
		Threads:   4,
		Rounds:    25,
		OpsPerTxn: 3,
		Accounts:  8,
		Mode:      core.Lazy,
	}
}

// stressLiveness bounds floundering tightly so fault storms terminate fast;
// escalation is part of the protocol surface under test.
func stressLiveness() core.Liveness {
	return core.Liveness{MaxConsecAborts: 24, MaxStallCycles: 4_000_000, MaxCommitRetries: 64}
}

// Outcome is one run's verdict.
type Outcome struct {
	Config   Config
	Schedule string

	Commits     uint64
	Aborts      uint64
	Escalations uint64
	Injected    uint64
	Cycles      sim.Time

	// Report is the oracle's verdict over the run's operation log.
	Report *oracle.Report
	// RunErr records run-level failures independent of the oracle: blocked
	// threads or a broken conservation sum.
	RunErr string

	// Governed-run extras (zero on ungoverned runs): the transition count,
	// the final ladder level, and the canonical transition log.
	GovTransitions int
	GovFinalLevel  int
	GovLog         string
}

// Failed reports whether the run violated anything — serializability, the
// conservation invariant, or liveness.
func (o *Outcome) Failed() bool {
	return o.RunErr != "" || (o.Report != nil && !o.Report.Ok())
}

// Run executes one configuration and checks its history.
func Run(cfg Config) Outcome {
	if cfg.Threads < 2 {
		cfg.Threads = 2
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	if cfg.OpsPerTxn < 1 {
		cfg.OpsPerTxn = 1
	}
	if cfg.Accounts < 2 {
		cfg.Accounts = 2
	}
	out := Outcome{Config: cfg, Schedule: cfg.Schedule()}

	mc := tmesi.DefaultConfig()
	mc.Cores = cfg.Threads
	if cfg.TinyCache {
		mc.L1 = cache.Config{Sets: 4, Ways: 2, VictimSize: 2}
	}
	sys := tmesi.New(mc)
	if cfg.Governed {
		// The governor classifies from telemetry deltas and flight records,
		// and signature widening needs audit mode — all passive, so the
		// worker schedule itself is unchanged by attaching them.
		sys.SetTelemetry(telemetry.New(mc.Cores))
		sys.SetFlight(flight.New(mc.Cores, 0))
	}
	var inj *fault.Injector
	if cfg.Faults.Any() {
		fc := cfg.Faults
		fc.Seed = cfg.Seed*0x9E3779B97F4A7C15 + 0xA5A5
		inj = fault.NewInjector(fc)
		sys.SetFaultInjector(inj)
	}
	rt := core.New(sys, cfg.Mode, cm.NewPolka())
	rt.SetLiveness(stressLiveness())
	rt.SetWRAborts(!cfg.BreakWR)
	orc := oracle.NewRecorder()
	rt.SetOracle(orc)

	// Shared state: conservation accounts, write-skew cells (one per
	// thread; serializability is their only invariant), and per-thread
	// private lines probed non-transactionally.
	account := allocLines(sys, orc, cfg.Accounts, initialBalance)
	skew := allocLines(sys, orc, cfg.Threads, 0)
	private := allocLines(sys, orc, cfg.Threads, 0)

	e := sim.NewEngine()
	workerCtx := make([]*sim.Ctx, cfg.Threads)
	done := make([]bool, cfg.Threads)
	doneCount := 0
	for ti := 0; ti < cfg.Threads; ti++ {
		id := ti
		workerCtx[id] = e.Spawn(fmt.Sprintf("stress-%d", id), 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, id)
			r := sim.NewRand(cfg.Seed*0x1000193 + uint64(id)*0x10001 + 7)
			for n := 0; n < cfg.Rounds; n++ {
				stressOp(th, r, cfg, id, account, skew, private[id])
			}
			done[id] = true
			doneCount++
		})
	}
	if inj != nil && cfg.Faults.Rates[fault.Preempt] > 0 {
		quantum := cfg.Quantum
		if quantum == 0 {
			quantum = DefaultQuantum
		}
		spawnPreemptStorm(e, sys, rt, inj, quantum, workerCtx, done, &doneCount)
	}
	var gov *governor.Governor
	if cfg.Governed {
		bus := observatory.NewBus()
		pump := observatory.NewPump(observatory.Config{Interval: GovInterval, Bus: bus})
		pump.Bind(sys.Telemetry(), sys.Flight(), observatory.Meta{
			System: "FlexTM(" + cfg.Mode.String() + ")", Workload: "stress",
			Threads: cfg.Threads, Cores: mc.Cores,
		})
		gov = governor.New(govConfig())
		gov.Bind(rt, cfg.Threads)
		pump.SetAnnotator(gov.Annotate)
		// Pump before governor: at every shared tick the frame is published
		// before the governor reads it (equal-time threads resume in spawn
		// order). Both run GovCalmTail intervals past the last worker's
		// finish: those empty intervals classify healthy, so any rungs still
		// raised at the end of the schedule are guaranteed to unwind.
		e.Spawn("observatory", 0, func(ctx *sim.Ctx) {
			for tail := GovCalmTail; tail > 0; {
				if doneCount >= cfg.Threads {
					tail--
				}
				ctx.Advance(GovInterval)
				ctx.Sync()
				pump.Tick(ctx.Now())
			}
			pump.Finish(ctx.Now())
		})
		e.Spawn("governor", 0, func(ctx *sim.Ctx) {
			for tail := GovCalmTail; tail > 0; {
				if doneCount >= cfg.Threads {
					tail--
				}
				ctx.Advance(GovInterval)
				ctx.Sync()
				gov.Observe(bus.Latest())
			}
		})
	}
	if blocked := e.Run(); blocked != 0 {
		out.RunErr = fmt.Sprintf("%d threads blocked: liveness budget exceeded without escalation", blocked)
	}

	var total uint64
	for _, a := range account {
		total += sys.ReadWordRaw(a)
	}
	if want := uint64(cfg.Accounts) * initialBalance; total != want && out.RunErr == "" {
		out.RunErr = fmt.Sprintf("conservation: account sum = %d, want %d", total, want)
	}

	st := rt.Stats()
	out.Commits = st.Commits
	out.Aborts = st.Aborts
	out.Escalations = st.Escalations
	if inj != nil {
		out.Injected = inj.Injected()
	}
	out.Cycles = e.MaxTime()
	if gov != nil {
		out.GovTransitions = len(gov.Transitions())
		out.GovFinalLevel = gov.Level()
		out.GovLog = gov.TransitionLog()
	}
	out.Report = oracle.Check(orc.History(), oracle.Options{MaxViolations: cfg.MaxViolations})
	return out
}

// allocLines allocates n one-line cells, writes their initial value into
// the memory image, and registers it with the oracle.
func allocLines(sys *tmesi.System, orc *oracle.Recorder, n int, initial uint64) []memory.Addr {
	out := make([]memory.Addr, n)
	for i := range out {
		out[i] = sys.Alloc().Alloc(memory.LineWords)
		if initial != 0 {
			sys.Image().WriteWord(out[i], initial)
		}
		orc.SetInitial(out[i], initial)
	}
	return out
}

// stressOp performs one seed-drawn operation. The mix is aimed at the races
// the issue names: commit/abort duels, TMI eviction at commit (wide updates
// under TinyCache), alert reordering (all transactional ops under the fault
// injector), write skew (the canonical CST W-R test), and strong-isolation
// interleavings.
func stressOp(th tmapi.Thread, r *sim.Rand, cfg Config, id int,
	account, skew []memory.Addr, priv memory.Addr) {
	n := len(account)
	switch r.Intn(8) {
	case 0: // guarded transfer: the conservation workhorse
		from, to := r.Intn(n), r.Intn(n)
		amt := uint64(r.Intn(5))
		th.Atomic(func(tx tmapi.Txn) {
			f := tx.Load(account[from])
			if f < amt {
				return
			}
			tx.Store(account[from], f-amt)
			tx.Store(account[to], tx.Load(account[to])+amt)
		})
	case 1: // opposite-order duel: threads of opposite parity deadlock-dance
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			j = (j + 1) % n
		}
		if id%2 == 1 {
			i, j = j, i
		}
		hold := sim.Time(50 * cfg.OpsPerTxn)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(account[i], tx.Load(account[i]))
			th.Work(hold)
			tx.Store(account[j], tx.Load(account[j]))
			th.Work(hold)
		})
	case 2: // read-only scan: must always observe a conserved snapshot
		width := n
		if w := 2 + cfg.OpsPerTxn; w < n {
			width = w
		}
		start := r.Intn(n)
		th.Atomic(func(tx tmapi.Txn) {
			for k := 0; k < width; k++ {
				tx.Load(account[(start+k)%n])
			}
		})
	case 3: // write skew: read a neighbor's cell, hold, write our own from it
		src := skew[(id+1+r.Intn(len(skew)-1))%len(skew)]
		hold := sim.Time(100 * cfg.OpsPerTxn)
		th.Atomic(func(tx tmapi.Txn) {
			v := tx.Load(src)
			th.Work(hold)
			tx.Store(skew[id], v+1)
			th.Work(hold)
		})
	case 4: // wide net-zero ripple: TMI eviction + OT walk pressure at commit
		th.Atomic(func(tx tmapi.Txn) {
			for k := 0; k < n; k++ {
				tx.Store(account[k], tx.Load(account[k])+1)
			}
			for k := 0; k < n; k++ {
				tx.Store(account[k], tx.Load(account[k])-1)
			}
		})
	case 5: // strong isolation: NT probe of shared and private state
		th.Load(account[r.Intn(n)])
		th.Store(priv, th.Load(priv)+1)
	case 6: // nested transfer with occasional user abort of the inner txn
		from, to := r.Intn(n), r.Intn(n)
		drop := r.Intn(4) == 0
		th.Atomic(func(tx tmapi.Txn) {
			f := tx.Load(account[from])
			if f == 0 {
				return
			}
			tx.Store(account[from], f-1)
			th.Atomic(func(inner tmapi.Txn) {
				if drop {
					drop = false
					inner.Abort()
				}
				inner.Store(account[to], inner.Load(account[to])+1)
			})
		})
	default: // compute: shifts every subsequent interleaving
		th.Work(sim.Time(r.Intn(400)))
	}
}

// spawnPreemptStorm mirrors the chaos campaign's OS preemption driver:
// every quantum it rolls the injector and, on a hit, parks a victim core
// (summarizing its transactional state via the OS model) for an
// injector-chosen hold, then resumes it.
func spawnPreemptStorm(e *sim.Engine, sys *tmesi.System, rt *core.Runtime,
	inj *fault.Injector, quantum sim.Time, workerCtx []*sim.Ctx, done []bool, doneCount *int) {
	m := osmodel.New(sys, rt)
	threads := len(workerCtx)
	e.Spawn("preempt-storm", 0, func(ctx *sim.Ctx) {
		for *doneCount < threads {
			ctx.Advance(quantum)
			ctx.Sync()
			if !inj.Fire(-1, fault.Preempt) {
				continue
			}
			victim := int(inj.Amount(fault.Preempt, uint64(threads))) - 1
			if done[victim] {
				continue
			}
			var susp *osmodel.Suspended
			parked := false
			e.RequestPark(workerCtx[victim], func(v *sim.Ctx) {
				susp = m.Suspend(v, victim)
				parked = true
			})
			for !parked && !done[victim] {
				ctx.Advance(50)
				ctx.Sync()
			}
			if !parked {
				continue
			}
			hold := sim.Time(inj.Amount(fault.Preempt, 4*uint64(quantum)))
			ctx.Advance(hold)
			ctx.Sync()
			if susp != nil {
				m.Resume(ctx, victim, susp)
			}
			e.Unblock(workerCtx[victim], ctx.Now())
		}
	})
}

// ExploreResult summarizes a seed sweep.
type ExploreResult struct {
	Runs     int
	Failures []Outcome
}

// Explore runs seeds base.Seed .. base.Seed+n-1 of one configuration and
// collects the failing outcomes.
func Explore(base Config, n int) ExploreResult {
	return ExploreParallel(base, n, 1)
}

// ExploreParallel is Explore with the seed cells sharded across workers
// goroutines (1 serial, <= 0 GOMAXPROCS). Each run is a pure function of
// its Config, so the collected failures — order included — are identical
// to the serial sweep's at any worker count.
func ExploreParallel(base Config, n, workers int) ExploreResult {
	res := ExploreResult{Runs: n}
	// Run never errors (failures are data) and there is no stop channel,
	// so Map cannot fail.
	_ = sweepexec.Map(sweepexec.Exec{Workers: workers}, n,
		func(i int) (Outcome, error) {
			cfg := base
			cfg.Seed = base.Seed + uint64(i)
			return Run(cfg), nil
		},
		func(i int, out Outcome) error {
			if out.Failed() {
				res.Failures = append(res.Failures, out)
			}
			return nil
		})
	return res
}

// Shrink greedily minimizes a failing configuration: each step tries a set
// of reductions (halve threads/rounds/accounts/per-txn work, drop one fault
// class, drop the tiny cache) and adopts the first that still fails, until
// none does or budget runs are spent. The result is the smallest failing
// outcome found — its Schedule string plus the oracle's witness history are
// the replayable artifact.
func Shrink(cfg Config, budget int) Outcome {
	if budget <= 0 {
		budget = 64
	}
	best := Run(cfg)
	if !best.Failed() {
		return best
	}
	for budget > 0 {
		improved := false
		for _, cand := range reductions(best.Config) {
			if budget == 0 {
				break
			}
			budget--
			if out := Run(cand); out.Failed() {
				best = out
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return best
}

// reductions proposes strictly smaller variants of cfg, most aggressive
// first.
func reductions(cfg Config) []Config {
	var out []Config
	add := func(c Config) { out = append(out, c) }
	if cfg.Threads > 2 {
		c := cfg
		c.Threads = cfg.Threads / 2
		if c.Threads < 2 {
			c.Threads = 2
		}
		add(c)
	}
	if cfg.Rounds > 1 {
		c := cfg
		c.Rounds = cfg.Rounds / 2
		add(c)
	}
	if cfg.Accounts > 2 {
		c := cfg
		c.Accounts = cfg.Accounts / 2
		if c.Accounts < 2 {
			c.Accounts = 2
		}
		add(c)
	}
	if cfg.OpsPerTxn > 1 {
		c := cfg
		c.OpsPerTxn = cfg.OpsPerTxn / 2
		add(c)
	}
	for cl := fault.Class(0); cl < fault.NumClasses; cl++ {
		if cfg.Faults.Rates[cl] > 0 {
			c := cfg
			c.Faults.Rates[cl] = 0
			add(c)
		}
	}
	if cfg.TinyCache {
		c := cfg
		c.TinyCache = false
		add(c)
	}
	return out
}

// Schedule renders the configuration as a compact, comma-separated replay
// string: "s7,t4,r25,o3,a8,lazy,tiny,broken,gov,q3000,f:sig-fp:250". Rates are
// basis points (1/100 of a percent). ParseSchedule inverts it.
func (c Config) Schedule() string {
	parts := []string{
		"s" + strconv.FormatUint(c.Seed, 10),
		"t" + strconv.Itoa(c.Threads),
		"r" + strconv.Itoa(c.Rounds),
		"o" + strconv.Itoa(c.OpsPerTxn),
		"a" + strconv.Itoa(c.Accounts),
		strings.ToLower(c.Mode.String()),
	}
	if c.TinyCache {
		parts = append(parts, "tiny")
	}
	if c.BreakWR {
		parts = append(parts, "broken")
	}
	if c.Governed {
		parts = append(parts, "gov")
	}
	if c.Quantum != 0 {
		parts = append(parts, "q"+strconv.FormatUint(uint64(c.Quantum), 10))
	}
	var classes []int
	for cl := 0; cl < int(fault.NumClasses); cl++ {
		if c.Faults.Rates[cl] > 0 {
			classes = append(classes, cl)
		}
	}
	sort.Ints(classes)
	for _, cl := range classes {
		bp := int(c.Faults.Rates[cl]*10000 + 0.5)
		parts = append(parts, fmt.Sprintf("f:%s:%d", fault.Class(cl), bp))
	}
	return strings.Join(parts, ",")
}

// ParseSchedule reverses Config.Schedule.
func ParseSchedule(s string) (Config, error) {
	var c Config
	c.Mode = core.Eager
	seen := false
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		seen = true
		switch {
		case tok == "eager":
			c.Mode = core.Eager
		case tok == "lazy":
			c.Mode = core.Lazy
		case tok == "tiny":
			c.TinyCache = true
		case tok == "broken":
			c.BreakWR = true
		case tok == "gov":
			c.Governed = true
		case strings.HasPrefix(tok, "f:"):
			rest := tok[2:]
			i := strings.LastIndex(rest, ":")
			if i < 0 {
				return c, fmt.Errorf("stress: bad fault token %q (want f:<class>:<bp>)", tok)
			}
			cl, err := fault.ParseClass(rest[:i])
			if err != nil {
				return c, fmt.Errorf("stress: %v", err)
			}
			bp, err := strconv.Atoi(rest[i+1:])
			if err != nil || bp < 0 || bp > 10000 {
				return c, fmt.Errorf("stress: bad basis points in %q", tok)
			}
			c.Faults.Rates[cl] = float64(bp) / 10000
		default:
			if len(tok) < 2 {
				return c, fmt.Errorf("stress: bad schedule token %q", tok)
			}
			v, err := strconv.ParseUint(tok[1:], 10, 64)
			if err != nil {
				return c, fmt.Errorf("stress: bad schedule token %q", tok)
			}
			switch tok[0] {
			case 's':
				c.Seed = v
			case 't':
				c.Threads = int(v)
			case 'r':
				c.Rounds = int(v)
			case 'o':
				c.OpsPerTxn = int(v)
			case 'a':
				c.Accounts = int(v)
			case 'q':
				c.Quantum = sim.Time(v)
			default:
				return c, fmt.Errorf("stress: bad schedule token %q", tok)
			}
		}
	}
	if !seen {
		return c, fmt.Errorf("stress: empty schedule")
	}
	return c, nil
}
