package tmapi

import "testing"

func TestAbortRate(t *testing.T) {
	s := Stats{Commits: 100, Aborts: 50}
	if got := s.AbortRate(); got != 0.5 {
		t.Fatalf("AbortRate = %v, want 0.5", got)
	}
	if (Stats{}).AbortRate() != 0 {
		t.Fatal("AbortRate with no commits should be 0")
	}
}

func TestMedianMaxConflicts(t *testing.T) {
	cases := []struct {
		degrees []int
		md, mx  int
	}{
		{nil, 0, 0},
		{[]int{0, 0, 0}, 0, 0},
		{[]int{1, 2, 3}, 2, 3},
		{[]int{0, 0, 5}, 0, 5},
		{[]int{4}, 4, 4},
		{[]int{1, 1, 2, 2}, 1, 2}, // lower median for even counts
	}
	for _, c := range cases {
		s := Stats{ConflictDegrees: c.degrees}
		md, mx := s.MedianMaxConflicts()
		if md != c.md || mx != c.mx {
			t.Errorf("degrees %v: got (%d,%d), want (%d,%d)", c.degrees, md, mx, c.md, c.mx)
		}
	}
}

func TestMedianMaxConflictsClampsHugeDegrees(t *testing.T) {
	s := Stats{ConflictDegrees: []int{1000}}
	md, mx := s.MedianMaxConflicts()
	if mx != 1000 || md != 64 {
		t.Fatalf("got (%d,%d)", md, mx)
	}
}

func TestAbortErrorIsError(t *testing.T) {
	var err error = AbortError{}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}
