// Package tmapi defines the runtime-agnostic interface between workloads
// and transactional-memory runtimes. The paper's workloads (Table 3b) are
// written once against Txn/Thread and run unmodified on FlexTM, RTM-F,
// RSTM, TL2, and CGL, exactly as the evaluation requires.
package tmapi

import (
	"flextm/internal/memory"
	"flextm/internal/sim"
)

// Txn is the view a transaction body has of memory. Loads and stores are
// transactional: their effects are isolated until commit and are rolled
// back on abort.
type Txn interface {
	// Load returns the word at a with transactional semantics.
	Load(a memory.Addr) uint64
	// Store writes the word at a with transactional semantics.
	Store(a memory.Addr, v uint64)
	// Abort aborts the current transaction and retries it from the top.
	Abort()
}

// Thread is one simulated application thread, bound to a core for the
// duration of a run.
type Thread interface {
	// Atomic executes body as a transaction, retrying on aborts until it
	// commits. Nested calls follow the subsumption model: an inner Atomic
	// merges into the outer transaction.
	Atomic(body func(t Txn))
	// Load performs an ordinary (non-transactional) load.
	Load(a memory.Addr) uint64
	// Store performs an ordinary (non-transactional) store.
	Store(a memory.Addr, v uint64)
	// Work advances the thread's clock by d cycles of computation.
	Work(d sim.Time)
	// Rand returns the thread's deterministic random source.
	Rand() *sim.Rand
	// Core returns the core the thread runs on.
	Core() int
	// Ctx returns the simulation context.
	Ctx() *sim.Ctx
}

// Runtime is a TM system: it binds threads to cores and reports statistics.
type Runtime interface {
	// Name identifies the system in output ("FlexTM", "TL2", ...).
	Name() string
	// Bind attaches a simulated thread running on core to the runtime.
	// Seeds derive from the core id so runs are deterministic.
	Bind(ctx *sim.Ctx, core int) Thread
	// Stats returns cumulative runtime statistics.
	Stats() Stats
}

// Stats aggregates transaction outcomes across a run.
type Stats struct {
	Commits uint64
	Aborts  uint64
	// Escalations counts Atomic sections that tripped the liveness watchdog
	// and were finished in serialized-irrevocable fallback mode. Only
	// runtimes with an escalation path (FlexTM) populate it.
	Escalations uint64
	// ConflictDegrees has one entry per committed transaction: the number
	// of distinct processors it had to resolve conflicts with (the metric
	// of Figure 4's table). Only FlexTM populates it.
	ConflictDegrees []int
}

// AbortRate returns aborts per commit.
func (s Stats) AbortRate() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}

// MedianMaxConflicts returns the median and maximum conflict degree over
// committed transactions (the Md/Mx columns of Figure 4's table).
func (s Stats) MedianMaxConflicts() (md, mx int) {
	if len(s.ConflictDegrees) == 0 {
		return 0, 0
	}
	// Counting sort: degrees are tiny (0..63).
	var buckets [65]int
	for _, d := range s.ConflictDegrees {
		if d > mx {
			mx = d
		}
		if d > 64 {
			d = 64
		}
		buckets[d]++
	}
	half := (len(s.ConflictDegrees) + 1) / 2
	cum := 0
	for d, n := range buckets {
		cum += n
		if cum >= half {
			md = d
			break
		}
	}
	return md, mx
}

// AbortError is the sentinel carried by the panic that unwinds a
// transaction body on abort. Runtimes recover it in their retry loops;
// anything else is re-panicked.
type AbortError struct {
	// UserRequested distinguishes Txn.Abort from conflict-induced aborts.
	UserRequested bool
}

// Error implements error for diagnostics; AbortError normally never
// escapes a runtime.
func (a AbortError) Error() string { return "transaction aborted" }
