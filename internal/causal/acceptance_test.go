// Acceptance tests against live runs, in an external package because
// harness transitively imports causal (via observatory).
package causal_test

import (
	"bytes"
	"testing"

	"flextm/internal/causal"
	"flextm/internal/governor"
	"flextm/internal/harness"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// TestLivelockBlameNamesContendedLine is the tentpole acceptance criterion:
// on the dueling-livelock cell the causal report must name one of the
// duel's two contended lines as top blame, and the critical path must cover
// at least 60% of the makespan.
func TestLivelockBlameNamesContendedLine(t *testing.T) {
	g := governor.New(harness.GovernedLivelockConfig())
	_, out, err := harness.GovernedLivelockProbe(1, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := causal.Analyze(out.Recs, causal.Options{})
	if rep == nil || len(rep.Path) == 0 {
		t.Fatal("no critical path from the livelock probe")
	}
	tb := rep.TopBlame()
	if tb == nil {
		t.Fatal("no blame entries")
	}
	if tb.Line != uint64(out.LineA) && tb.Line != uint64(out.LineB) {
		t.Fatalf("top blame line 0x%x is neither duel line (0x%x / 0x%x)\nblame: %+v",
			tb.Line, out.LineA, out.LineB, rep.Blame)
	}
	if rep.Coverage < 0.6 {
		t.Fatalf("critical path covers %.1f%% of makespan, want >= 60%%", rep.Coverage*100)
	}
}

// TestLivelockReportByteStable: two same-seed probes must render a
// byte-identical causal JSON report (the CI smoke job's cmp relies on it).
func TestLivelockReportByteStable(t *testing.T) {
	render := func() []byte {
		g := governor.New(harness.GovernedLivelockConfig())
		_, out, err := harness.GovernedLivelockProbe(1, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := causal.Analyze(out.Recs, causal.Options{}).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed rendered different causal JSON (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTracedRunIsBitIdenticalToUntraced: attaching the flight recorder (the
// causal tracer's only input) must not change what the run computes — the
// recording path spends no simulated time and draws no randomness.
func TestTracedRunIsBitIdenticalToUntraced(t *testing.T) {
	f, _ := workloads.ByName("RBTree")
	run := func(flightOn bool) harness.Result {
		res, err := harness.Run(harness.RunConfig{
			System: harness.FlexTMLazy, Workload: f, Threads: 4,
			OpsPerThread: 60, Machine: tmesi.DefaultConfig(), Verify: true,
			Flight: flightOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, traced := run(false), run(true)
	if plain.Commits != traced.Commits || plain.Aborts != traced.Aborts || plain.Cycles != traced.Cycles {
		t.Fatalf("tracing changed the run: commits %d/%d aborts %d/%d cycles %d/%d",
			plain.Commits, traced.Commits, plain.Aborts, traced.Aborts, plain.Cycles, traced.Cycles)
	}
	if plain.Machine != traced.Machine {
		t.Fatalf("tracing changed machine counters:\n%+v\nvs\n%+v", plain.Machine, traced.Machine)
	}
}
