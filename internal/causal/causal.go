// Package causal reconstructs a per-transaction-attempt DAG from flight
// records and answers the question the aggregate counters cannot: *why did
// this run take exactly as long as it did?*
//
// Nodes are transaction attempts (begin → commit/abort, with stall, backoff
// and serialized sub-phases). Edges are:
//
//   - kill:  killer attempt → victim attempt, labeled with the conflicting
//     line and whether the conflict was a signature false positive,
//   - retry: an aborted attempt → the next attempt of the same logical
//     transaction on the same core (the gap between them is back-off),
//   - seq:   a committed attempt → its core's next attempt (program order).
//
// On the DAG the analyzer computes the makespan critical path — the
// contiguous cost-weighted chain of spans and waits that ends at the last
// commit — plus per-line blame totals ("line 0x40 cost 31% of the critical
// path, 60% of that from false positives"), per killer→victim pair totals,
// and a wasted-work ledger charging every aborted attempt's cycles to its
// killer.
//
// The tracer is purely offline: it consumes the flight recorder's passive
// records, so traced and untraced runs are bit-identical by construction,
// and a nil recorder costs zero allocations per event (the flight
// package's discipline). Analysis itself is deterministic: same records in,
// byte-identical report out.
package causal

import (
	"fmt"
	"io"
	"sort"

	"flextm/internal/flight"
	"flextm/internal/sim"
)

// Options parameterizes Analyze.
type Options struct {
	// Cores sizes the per-core attempt tables (0 derives it from the
	// records).
	Cores int
	// Makespan overrides the coverage denominator; 0 derives it from the
	// record window (first to last record timestamp).
	Makespan sim.Time
	// TopBlame caps the blame table (<=0 selects 10).
	TopBlame int
}

// Outcome classifies how an attempt ended.
type Outcome uint8

const (
	// Open: the window ended before the attempt did.
	Open Outcome = iota
	// Committed: the attempt CAS-committed.
	Committed
	// Aborted: the attempt died (remote kill, self-abort, or alert).
	Aborted
)

func (o Outcome) String() string {
	switch o {
	case Committed:
		return "commit"
	case Aborted:
		return "abort"
	}
	return "open"
}

// stall is one contention-manager wait inside an attempt.
type stall struct {
	At   sim.Time
	Dur  sim.Time
	Line uint64
	FP   bool
}

// Attempt is one node of the DAG: a single transaction attempt on a core.
type Attempt struct {
	Core    int      `json:"core"`
	Index   int      `json:"index"` // per-core ordinal within the window
	Start   sim.Time `json:"start"`
	End     sim.Time `json:"end"`
	Outcome Outcome  `json:"-"`

	Serialized bool     `json:"serialized,omitempty"` // committed inside the fallback
	Stall      sim.Time `json:"stall,omitempty"`      // CM wait cycles inside the span
	Backoff    sim.Time `json:"backoff,omitempty"`    // retry back-off after an abort

	// Abort lineage, meaningful when Outcome == Aborted.
	KillerCore  int      `json:"killerCore"`            // -1 when unattributed
	KillerIndex int      `json:"killerIndex"`           // killer's attempt ordinal
	KillAt      sim.Time `json:"killAt,omitempty"`      // when the killer CASed us
	KillLine    uint64   `json:"killLine,omitempty"`    // the conflicting line
	KillFP      bool     `json:"killFP,omitempty"`      // conflict was a signature false positive
	SelfKill    bool     `json:"selfKill,omitempty"`    // CM abort-self verdict (yielded to KillerCore)

	stalls []stall
}

// PathSeg is one chronological segment of the critical path. Segments are
// contiguous in time: each starts where the previous one ends. Edge names
// the dependency linking this segment to the previous (earlier) one.
type PathSeg struct {
	Core    int      `json:"core"`
	Attempt int      `json:"attempt"`
	Start   sim.Time `json:"start"`
	End     sim.Time `json:"end"`
	// Kind: "span" (committed work), "serialized" (committed in the
	// fallback), "aborted" (work thrown away), "backoff" (post-abort
	// retry wait), "idle" (between a commit and the next begin), "open"
	// (attempt truncated by the window).
	Kind string `json:"kind"`
	// Edge into this segment from the previous one: "kill", "retry",
	// "seq", or "" for the chain's first segment.
	Edge string `json:"edge,omitempty"`
	Line uint64 `json:"line,omitempty"` // blamed line (aborted/backoff segments)
	FP   bool   `json:"fp,omitempty"`   // that conflict was a false positive
}

// Dur returns the segment's width in cycles.
func (s PathSeg) Dur() uint64 { return uint64(s.End - s.Start) }

// Blame is one line's share of the critical path.
type Blame struct {
	Line     uint64  `json:"line"`
	Cycles   uint64  `json:"cycles"`
	FPCycles uint64  `json:"fpCycles"`
	Share    float64 `json:"share"` // Cycles / PathCycles
}

// PairBlame aggregates kill damage per killer→victim core pair (the
// workload-site proxy: which duel costs the most).
type PairBlame struct {
	Killer int    `json:"killer"`
	Victim int    `json:"victim"`
	Kills  uint64 `json:"kills"`
	Cycles uint64 `json:"cycles"` // wasted cycles in the victims' dead attempts
}

// Waste is one killer's row of the wasted-work ledger.
type Waste struct {
	Killer int    `json:"killer"` // -1 collects unattributed aborts
	Kills  uint64 `json:"kills"`
	Cycles uint64 `json:"cycles"`
}

// Report is the full causal analysis of one record window.
type Report struct {
	Cores    int      `json:"cores"`
	WinStart sim.Time `json:"winStart"`
	WinEnd   sim.Time `json:"winEnd"`
	Makespan uint64   `json:"makespan"`

	Attempts int `json:"attempts"`
	Commits  int `json:"commits"`
	Aborts   int `json:"aborts"`

	// The critical path: contiguous segments ending at the last commit.
	LastCommitAt sim.Time  `json:"lastCommitAt"`
	PathStart    sim.Time  `json:"pathStart"`
	PathCycles   uint64    `json:"pathCycles"`
	Coverage     float64   `json:"coverage"` // PathCycles / Makespan
	Path         []PathSeg `json:"path"`

	Blame  []Blame     `json:"blame,omitempty"`
	Pairs  []PairBlame `json:"pairs,omitempty"`
	Wasted []Waste     `json:"wasted,omitempty"`
	// WastedCycles totals every aborted attempt's span in the window.
	WastedCycles uint64 `json:"wastedCycles"`

	// PerCore holds the reconstructed attempt DAG nodes, for renderers.
	PerCore [][]Attempt `json:"-"`
}

// Analyze reconstructs the attempt DAG from one window of flight records
// and computes its critical path and blame tables. Returns nil when the
// window is empty. Deterministic: the same records produce a byte-identical
// report.
func Analyze(recs []flight.Rec, opts Options) *Report {
	if len(recs) == 0 {
		return nil
	}
	n := opts.Cores
	for _, r := range recs {
		if int(r.Core) >= n {
			n = int(r.Core) + 1
		}
		if int(r.Peer) >= n {
			n = int(r.Peer) + 1
		}
	}

	winStart, winEnd := recs[0].At, recs[0].At
	for _, r := range recs {
		if r.At < winStart {
			winStart = r.At
		}
		if r.At > winEnd {
			winEnd = r.At
		}
	}

	rep := &Report{Cores: n, WinStart: winStart, WinEnd: winEnd}

	// ---- Pass 1: reconstruct attempts. ----
	attempts := make([][]Attempt, n)
	open := make([]int, n) // index+1 of the open attempt, 0 = none
	synth := func(c int, at sim.Time) *Attempt {
		attempts[c] = append(attempts[c], Attempt{
			Core: c, Index: len(attempts[c]), Start: at, KillerCore: -1,
		})
		open[c] = len(attempts[c])
		return &attempts[c][open[c]-1]
	}
	ensureOpen := func(c int, at sim.Time) *Attempt {
		if open[c] != 0 {
			return &attempts[c][open[c]-1]
		}
		// Window truncation: an event for an attempt whose begin was
		// overwritten. Synthesize the node so lineage still resolves.
		return synth(c, at)
	}
	// openOnly returns the core's open attempt; when there is none it
	// synthesizes one only for a truncated stream head (no history for the
	// core yet). A kill or stall aimed at a core with a *closed* history is
	// a failed CAS on an already-dead attempt and must not invent nodes.
	openOnly := func(c int, at sim.Time) *Attempt {
		if open[c] != 0 {
			return &attempts[c][open[c]-1]
		}
		if len(attempts[c]) == 0 {
			return synth(c, at)
		}
		return nil
	}
	// Latest conflicting line per core pair, for attributing lazy
	// commit-loop kills whose AbortEnemy record carries no line.
	type lineFP struct {
		line uint64
		fp   bool
	}
	lastConflict := map[[2]int]lineFP{}
	pairKey := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}

	for _, r := range recs {
		c := int(r.Core)
		if c < 0 || c >= n {
			continue
		}
		switch r.Kind {
		case flight.TxnBegin:
			if open[c] != 0 {
				// Missing terminator (overwritten record): close as open.
				a := &attempts[c][open[c]-1]
				a.End = r.At
			}
			attempts[c] = append(attempts[c], Attempt{
				Core: c, Index: len(attempts[c]), Start: r.At, KillerCore: -1,
			})
			open[c] = len(attempts[c])
		case flight.TxnCommit:
			a := ensureOpen(c, r.At)
			a.End = r.At
			a.Outcome = Committed
			a.Serialized = r.Aux&flight.AuxMask != 0
			open[c] = 0
		case flight.TxnAbort:
			a := ensureOpen(c, r.At)
			a.End = r.At
			a.Outcome = Aborted
			open[c] = 0
		case flight.AbortEnemy:
			v := int(r.Peer)
			if v < 0 || v >= n {
				continue
			}
			a := openOnly(v, r.At)
			if a == nil || a.KillAt != 0 || a.SelfKill {
				continue // only the first CAS on an attempt lands
			}
			a.KillerCore = c
			a.KillerIndex = len(attempts[c]) - 1 // killer's current attempt
			a.KillAt = r.At
			a.KillLine = uint64(r.Line)
			a.KillFP = r.Aux&flight.AuxFP != 0
			if a.KillLine == 0 {
				// Lazy commit-loop kill: the CST register names only the
				// core; charge the pair's most recent conflicting line.
				if lf, ok := lastConflict[pairKey(c, v)]; ok {
					a.KillLine, a.KillFP = lf.line, lf.fp
				}
			}
		case flight.AbortSelf:
			a := openOnly(c, r.At)
			if a == nil || a.KillAt != 0 || a.SelfKill {
				continue
			}
			a.SelfKill = true
			a.KillerCore = int(r.Peer)
			if a.KillerCore >= 0 && a.KillerCore < n {
				a.KillerIndex = len(attempts[a.KillerCore]) - 1
			}
			a.KillAt = r.At
			a.KillLine = uint64(r.Line)
			a.KillFP = r.Aux&flight.AuxFP != 0
			if a.KillLine == 0 && a.KillerCore >= 0 {
				if lf, ok := lastConflict[pairKey(c, a.KillerCore)]; ok {
					a.KillLine, a.KillFP = lf.line, lf.fp
				}
			}
		case flight.CMStall:
			a := openOnly(c, r.At)
			if a == nil {
				continue
			}
			a.Stall += r.Dur
			a.stalls = append(a.stalls, stall{
				At: r.At, Dur: r.Dur,
				Line: uint64(r.Line), FP: r.Aux&flight.AuxFP != 0,
			})
		case flight.Backoff:
			// Back-off follows the abort that closed the attempt: charge
			// the core's most recent closed attempt.
			if m := len(attempts[c]); m > 0 && open[c] == 0 {
				attempts[c][m-1].Backoff += r.Dur
			}
		case flight.CSTSet:
			p := int(r.Peer)
			if p >= 0 && p < n && r.Line != 0 {
				lastConflict[pairKey(c, p)] = lineFP{
					line: uint64(r.Line), fp: r.Aux&flight.AuxFP != 0,
				}
			}
		}
	}
	// Close attempts truncated by the window's end.
	for c := range attempts {
		if open[c] != 0 {
			a := &attempts[c][open[c]-1]
			a.End = winEnd
			a.Outcome = Open
		}
	}
	rep.PerCore = attempts

	var last *Attempt
	for c := range attempts {
		for i := range attempts[c] {
			a := &attempts[c][i]
			rep.Attempts++
			switch a.Outcome {
			case Committed:
				rep.Commits++
				if last == nil || a.End > last.End {
					last = a
				}
			case Aborted:
				rep.Aborts++
			}
		}
	}

	// ---- Wasted-work ledger (all aborted attempts, path or not). ----
	waste := map[int]*Waste{}
	pairs := map[[2]int]*PairBlame{}
	for c := range attempts {
		for i := range attempts[c] {
			a := &attempts[c][i]
			if a.Outcome != Aborted {
				continue
			}
			dead := uint64(a.End - a.Start)
			rep.WastedCycles += dead
			k := a.KillerCore
			wr := waste[k]
			if wr == nil {
				wr = &Waste{Killer: k}
				waste[k] = wr
			}
			wr.Kills++
			wr.Cycles += dead
			if k >= 0 {
				key := [2]int{k, c}
				pb := pairs[key]
				if pb == nil {
					pb = &PairBlame{Killer: k, Victim: c}
					pairs[key] = pb
				}
				pb.Kills++
				pb.Cycles += dead
			}
		}
	}
	for _, wr := range waste {
		rep.Wasted = append(rep.Wasted, *wr)
	}
	sort.Slice(rep.Wasted, func(i, j int) bool {
		a, b := rep.Wasted[i], rep.Wasted[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		return a.Killer < b.Killer
	})
	for _, pb := range pairs {
		rep.Pairs = append(rep.Pairs, *pb)
	}
	sort.Slice(rep.Pairs, func(i, j int) bool {
		a, b := rep.Pairs[i], rep.Pairs[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Killer != b.Killer {
			return a.Killer < b.Killer
		}
		return a.Victim < b.Victim
	})

	// ---- Critical path: backward walk from the last commit. ----
	makespan := opts.Makespan
	if makespan <= 0 {
		makespan = winEnd - winStart
	}
	rep.Makespan = uint64(makespan)
	if last == nil {
		return rep
	}
	rep.LastCommitAt = last.End

	segKind := func(a *Attempt) string {
		switch a.Outcome {
		case Committed:
			if a.Serialized {
				return "serialized"
			}
			return "span"
		case Aborted:
			return "aborted"
		}
		return "open"
	}
	attemptAt := func(core, idx int) *Attempt {
		if core < 0 || core >= n || idx < 0 || idx >= len(attempts[core]) {
			return nil
		}
		return &attempts[core][idx]
	}

	var walk []PathSeg // latest-first; reversed below
	cur, enter := last, last.End
	// The walk revisits an attempt at most with strictly earlier entry
	// times (mutual kills), so 4x the node count bounds it comfortably.
	for guard := 0; guard <= 4*rep.Attempts+8; guard++ {
		from := cur.Start
		jump := false
		if cur.Outcome == Aborted && !cur.SelfKill && cur.KillerCore >= 0 &&
			cur.KillAt != 0 && cur.KillAt <= enter {
			if k := attemptAt(cur.KillerCore, cur.KillerIndex); k != nil && k.Start <= cur.KillAt {
				// The victim's tail [KillAt, End] is abort-delivery lag; the
				// binding constraint before KillAt is the killer's progress.
				if cur.KillAt > from {
					from = cur.KillAt
				}
				jump = true
			}
		}
		seg := PathSeg{
			Core: cur.Core, Attempt: cur.Index,
			Start: from, End: enter, Kind: segKind(cur),
		}
		if cur.Outcome == Aborted {
			seg.Line, seg.FP = cur.KillLine, cur.KillFP
		}
		if jump {
			seg.Edge = "kill"
			walk = append(walk, seg)
			cur, enter = attemptAt(cur.KillerCore, cur.KillerIndex), cur.KillAt
			continue
		}
		var p *Attempt
		if cur.Index > 0 {
			p = &attempts[cur.Core][cur.Index-1]
		}
		if p == nil || p.End > cur.Start {
			walk = append(walk, seg)
			break
		}
		edge, gapKind := "seq", "idle"
		var gapLine uint64
		var gapFP bool
		if p.Outcome == Aborted {
			edge, gapKind = "retry", "backoff"
			gapLine, gapFP = p.KillLine, p.KillFP
		}
		seg.Edge = edge
		walk = append(walk, seg)
		if cur.Start > p.End {
			walk = append(walk, PathSeg{
				Core: p.Core, Attempt: p.Index,
				Start: p.End, End: cur.Start, Kind: gapKind, Edge: "seq",
				Line: gapLine, FP: gapFP,
			})
		}
		cur, enter = p, p.End
	}
	// Chronological order; the first segment carries no inbound edge.
	for i, j := 0, len(walk)-1; i < j; i, j = i+1, j-1 {
		walk[i], walk[j] = walk[j], walk[i]
	}
	if len(walk) > 0 {
		walk[0].Edge = ""
	}
	rep.Path = walk
	rep.PathStart = walk[0].Start
	rep.PathCycles = uint64(rep.LastCommitAt - rep.PathStart)
	if makespan > 0 {
		rep.Coverage = float64(rep.PathCycles) / float64(makespan)
	}

	// ---- Per-line blame from the path's segments. ----
	blame := map[uint64]*Blame{}
	charge := func(line uint64, fp bool, cycles uint64) {
		if cycles == 0 {
			return
		}
		b := blame[line]
		if b == nil {
			b = &Blame{Line: line}
			blame[line] = b
		}
		b.Cycles += cycles
		if fp {
			b.FPCycles += cycles
		}
	}
	for _, seg := range rep.Path {
		switch seg.Kind {
		case "aborted", "backoff":
			charge(seg.Line, seg.FP, seg.Dur())
		case "span", "serialized", "open":
			// Inside live spans, the cycles the CM spent stalled behind a
			// line are that line's fault.
			a := attemptAt(seg.Core, seg.Attempt)
			if a == nil {
				continue
			}
			for _, st := range a.stalls {
				if st.At > seg.Start && st.At <= seg.End {
					charge(st.Line, st.FP, uint64(st.Dur))
				}
			}
		}
	}
	for _, b := range blame {
		if rep.PathCycles > 0 {
			b.Share = float64(b.Cycles) / float64(rep.PathCycles)
		}
		rep.Blame = append(rep.Blame, *b)
	}
	sort.Slice(rep.Blame, func(i, j int) bool {
		a, b := rep.Blame[i], rep.Blame[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		return a.Line < b.Line
	})
	top := opts.TopBlame
	if top <= 0 {
		top = 10
	}
	if len(rep.Blame) > top {
		rep.Blame = rep.Blame[:top]
	}
	return rep
}

// TopBlame returns the heaviest blame entry, or nil when the path has no
// attributed cost.
func (r *Report) TopBlame() *Blame {
	if r == nil || len(r.Blame) == 0 {
		return nil
	}
	return &r.Blame[0]
}

// Print writes the human-readable report.
func (r *Report) Print(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, "causal: no records")
		return
	}
	fmt.Fprintf(w, "causal: window [%d,%d] makespan %d cycles, %d attempts (%d commits, %d aborts)\n",
		r.WinStart, r.WinEnd, r.Makespan, r.Attempts, r.Commits, r.Aborts)
	if len(r.Path) == 0 {
		fmt.Fprintln(w, "  no committed attempt in the window: no critical path")
		return
	}
	fmt.Fprintf(w, "  critical path: %d cycles (%.1f%% of makespan), %d segments, [%d → %d]\n",
		r.PathCycles, r.Coverage*100, len(r.Path), r.PathStart, r.LastCommitAt)
	for _, seg := range r.Path {
		edge := ""
		if seg.Edge != "" {
			edge = " ←" + seg.Edge
		}
		extra := ""
		if seg.Line != 0 {
			extra = fmt.Sprintf(" line 0x%x", seg.Line)
			if seg.FP {
				extra += " (false positive)"
			}
		}
		fmt.Fprintf(w, "    [%8d %8d] core %d attempt %d %-10s%s%s\n",
			seg.Start, seg.End, seg.Core, seg.Attempt, seg.Kind, extra, edge)
	}
	if len(r.Blame) > 0 {
		fmt.Fprintln(w, "  blame (share of critical path):")
		for _, b := range r.Blame {
			fpShare := 0.0
			if b.Cycles > 0 {
				fpShare = float64(b.FPCycles) / float64(b.Cycles)
			}
			name := fmt.Sprintf("line 0x%-8x", b.Line)
			if b.Line == 0 {
				name = "(unattributed) "
			}
			fmt.Fprintf(w, "    %s %8d cycles  %5.1f%%  (%.0f%% from false positives)\n",
				name, b.Cycles, b.Share*100, fpShare*100)
		}
	}
	if len(r.Wasted) > 0 {
		fmt.Fprintf(w, "  wasted work: %d cycles in aborted attempts\n", r.WastedCycles)
		for _, wr := range r.Wasted {
			who := fmt.Sprintf("core %d", wr.Killer)
			if wr.Killer < 0 {
				who = "unattributed"
			}
			fmt.Fprintf(w, "    %-12s killed %4d attempts, %8d cycles\n", who, wr.Kills, wr.Cycles)
		}
	}
}
