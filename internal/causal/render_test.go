package causal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flextm/internal/flight"
)

// killChain is the shared render fixture: core 1 kills core 0 once, core 0
// retries to the last commit.
func killChain() *Report {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 1, flight.AbortEnemy, 0, flight.AuxFP, 0x40, 0)
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	s.add(60, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(100, 0, flight.TxnCommit, -1, 0, 0, 0)
	return Analyze(s.recs, Options{Cores: 2})
}

func TestWriteDOTMarksCriticalPath(t *testing.T) {
	var buf bytes.Buffer
	killChain().WriteDOT(&buf)
	dot := buf.String()
	for _, want := range []string{
		"digraph causal", "critical path", "color=red",
		"kill 0x40 (FP)", "style=dashed", "blame:",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestWriteChromeHasFlowAndPathTrack(t *testing.T) {
	var buf bytes.Buffer
	if err := killChain().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
			ID    uint64  `json:"id"`
			BP    string  `json:"bp"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var flowS, flowF, pathSegs int
	var sID, fID uint64
	for _, e := range doc.TraceEvents {
		switch {
		case e.Phase == "s" && e.Cat == "abort-lineage":
			flowS++
			sID = e.ID
			if e.TID != 1 || e.TS != 20 {
				t.Errorf("flow start = %+v, want killer tid 1 at ts 20", e)
			}
		case e.Phase == "f" && e.Cat == "abort-lineage":
			flowF++
			fID = e.ID
			if e.TID != 0 || e.TS != 25 || e.BP != "e" {
				t.Errorf("flow finish = %+v, want victim tid 0 at ts 25 with bp e", e)
			}
		case e.Phase == "X" && e.PID == 2:
			pathSegs++
		}
	}
	if flowS != 1 || flowF != 1 || sID != fID || sID == 0 {
		t.Fatalf("flow pair: %d starts, %d finishes, ids %d/%d", flowS, flowF, sID, fID)
	}
	if pathSegs == 0 {
		t.Fatal("no critical-path track segments (pid 2)")
	}
}
