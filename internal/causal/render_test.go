package causal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flextm/internal/flight"
	"flextm/internal/trace"
)

// killChain is the shared render fixture: core 1 kills core 0 once, core 0
// retries to the last commit.
func killChain() *Report {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 1, flight.AbortEnemy, 0, flight.AuxFP, 0x40, 0)
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	s.add(60, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(100, 0, flight.TxnCommit, -1, 0, 0, 0)
	return Analyze(s.recs, Options{Cores: 2})
}

// TestWriteChromeCarriesStallDurations: Dur-bearing CMStall and Backoff
// flight records must fold into the rendered attempt spans — the stall
// cycles surface in the span's args and the timeline round-trips through
// trace.EncodeChrome without losing the durations.
func TestWriteChromeCarriesStallDurations(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(15, 0, flight.CMStall, 1, 0, 0x40, 30)
	s.add(20, 1, flight.AbortEnemy, 0, 0, 0x40, 0)
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(30, 0, flight.Backoff, -1, 1, 0, 35)
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	s.add(70, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(100, 0, flight.TxnCommit, -1, 0, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})

	// The fold itself: the aborted attempt on core 0 carries both the stall
	// and the post-abort back-off (charged to the attempt it followed).
	if got := rep.PerCore[0][0].Stall; got != 30 {
		t.Fatalf("attempt stall = %d, want 30 (CMStall Dur)", got)
	}
	if got := rep.PerCore[0][0].Backoff; got != 35 {
		t.Fatalf("attempt backoff = %d, want 35 (Backoff Dur)", got)
	}

	var buf bytes.Buffer
	if err := rep.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []trace.ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	stallSeen := false
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && e.Cat == "attempt" && e.TID == 0 && e.TS == 0 {
			if v, ok := e.Args["stall"].(float64); !ok || v != 30 {
				t.Fatalf("aborted span args = %+v, want stall 30", e.Args)
			}
			if e.Dur != 25 {
				t.Fatalf("aborted span dur = %v, want 25 (begin..abort)", e.Dur)
			}
			stallSeen = true
		}
	}
	if !stallSeen {
		t.Fatal("no attempt span carried the CM stall duration")
	}
	// The document must round-trip through EncodeChrome byte-identically —
	// the same guarantee trace pins for its own duration events.
	var second bytes.Buffer
	if err := trace.EncodeChrome(&second, doc.TraceEvents); err != nil {
		t.Fatal(err)
	}
	if buf.String() != second.String() {
		t.Fatal("causal chrome document not byte-stable through EncodeChrome")
	}
}

func TestWriteDOTMarksCriticalPath(t *testing.T) {
	var buf bytes.Buffer
	killChain().WriteDOT(&buf)
	dot := buf.String()
	for _, want := range []string{
		"digraph causal", "critical path", "color=red",
		"kill 0x40 (FP)", "style=dashed", "blame:",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestWriteChromeHasFlowAndPathTrack(t *testing.T) {
	var buf bytes.Buffer
	if err := killChain().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
			ID    uint64  `json:"id"`
			BP    string  `json:"bp"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var flowS, flowF, pathSegs int
	var sID, fID uint64
	for _, e := range doc.TraceEvents {
		switch {
		case e.Phase == "s" && e.Cat == "abort-lineage":
			flowS++
			sID = e.ID
			if e.TID != 1 || e.TS != 20 {
				t.Errorf("flow start = %+v, want killer tid 1 at ts 20", e)
			}
		case e.Phase == "f" && e.Cat == "abort-lineage":
			flowF++
			fID = e.ID
			if e.TID != 0 || e.TS != 25 || e.BP != "e" {
				t.Errorf("flow finish = %+v, want victim tid 0 at ts 25 with bp e", e)
			}
		case e.Phase == "X" && e.PID == 2:
			pathSegs++
		}
	}
	if flowS != 1 || flowF != 1 || sID != fID || sID == 0 {
		t.Fatalf("flow pair: %d starts, %d finishes, ids %d/%d", flowS, flowF, sID, fID)
	}
	if pathSegs == 0 {
		t.Fatal("no critical-path track segments (pid 2)")
	}
}
