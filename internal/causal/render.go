package causal

import (
	"encoding/json"
	"fmt"
	"io"

	"flextm/internal/trace"
)

// WriteJSON writes the report as indented JSON. The encoding is canonical
// for a given record window: struct fields in declaration order, slices in
// their deterministic sort order, no maps — so the same seed produces
// byte-identical output (the property CI byte-diffs).
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteDOT renders the attempt DAG's critical path as Graphviz: one node
// per on-path attempt segment, red critical-path edges (kill edges labeled
// with the blamed line, dashed when the conflict was a signature false
// positive), and a blame-table legend.
func (r *Report) WriteDOT(w io.Writer) {
	fmt.Fprintln(w, "digraph causal {")
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")
	if r == nil || len(r.Path) == 0 {
		fmt.Fprintln(w, "  empty [label=\"no critical path\"];")
		fmt.Fprintln(w, "}")
		return
	}
	fmt.Fprintf(w, "  label=\"critical path %d cycles (%.1f%% of makespan %d)\";\n",
		r.PathCycles, r.Coverage*100, r.Makespan)
	for i, seg := range r.Path {
		color := "black"
		switch seg.Kind {
		case "aborted":
			color = "firebrick"
		case "backoff", "idle":
			color = "gray50"
		case "serialized":
			color = "darkorange"
		}
		fmt.Fprintf(w, "  s%d [label=\"core %d att %d\\n%s %d cyc\\n[%d,%d]\", color=%s];\n",
			i, seg.Core, seg.Attempt, seg.Kind, seg.Dur(), seg.Start, seg.End, color)
		if i == 0 {
			continue
		}
		attrs := "color=red, penwidth=2"
		label := seg.Edge
		if seg.Edge == "kill" {
			if seg.Line != 0 {
				label = fmt.Sprintf("kill 0x%x", seg.Line)
			}
			if seg.FP {
				label += " (FP)"
				attrs += ", style=dashed"
			}
		}
		fmt.Fprintf(w, "  s%d -> s%d [label=\"%s\", %s];\n", i-1, i, label, attrs)
	}
	if len(r.Blame) > 0 {
		fmt.Fprint(w, "  legend [shape=plaintext, label=\"blame:")
		for _, b := range r.Blame {
			fmt.Fprintf(w, "\\nline 0x%x  %d cyc (%.0f%%)", b.Line, b.Cycles, b.Share*100)
		}
		fmt.Fprintln(w, "\"];")
	}
	fmt.Fprintln(w, "}")
}

// WriteChrome renders the attempt DAG into the Chrome trace_event format:
// an "X" span per attempt on its core's row, flow ("s"/"f") arrows for
// every kill edge, and a separate "critical path" row (pid 2) replaying
// the path's segments so the chain is visible as one contiguous track.
func (r *Report) WriteChrome(w io.Writer) error {
	if r == nil {
		return trace.EncodeChrome(w, nil)
	}
	var out []trace.ChromeEvent
	var flowID uint64
	for c := range r.PerCore {
		for i := range r.PerCore[c] {
			a := &r.PerCore[c][i]
			args := map[string]any{"stall": uint64(a.Stall)}
			if a.Outcome == Aborted {
				if a.KillLine != 0 {
					args["line"] = fmt.Sprintf("0x%x", a.KillLine)
				}
				args["fp"] = a.KillFP
				if a.KillerCore >= 0 {
					args["killer"] = a.KillerCore
				}
			}
			out = append(out, trace.ChromeEvent{
				Name: a.Outcome.String(), Cat: "attempt", Phase: "X",
				TS: float64(a.Start), Dur: float64(a.End - a.Start),
				PID: 1, TID: a.Core, Args: args,
			})
			if a.Outcome == Aborted && a.KillerCore >= 0 && !a.SelfKill && a.KillAt != 0 {
				flowID++
				out = append(out, trace.ChromeEvent{
					Name: "kill", Cat: "abort-lineage", Phase: "s",
					TS: float64(a.KillAt), PID: 1, TID: a.KillerCore, ID: flowID,
				})
				out = append(out, trace.ChromeEvent{
					Name: "kill", Cat: "abort-lineage", Phase: "f", BP: "e",
					TS: float64(a.End), PID: 1, TID: a.Core, ID: flowID,
				})
			}
		}
	}
	for _, seg := range r.Path {
		out = append(out, trace.ChromeEvent{
			Name: seg.Kind, Cat: "critical-path", Phase: "X",
			TS: float64(seg.Start), Dur: float64(seg.End - seg.Start),
			PID: 2, TID: 0,
			Args: map[string]any{"core": seg.Core, "attempt": seg.Attempt},
		})
	}
	for c := range r.PerCore {
		out = append(out, trace.ChromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
	}
	out = append(out, trace.ChromeEvent{
		Name: "thread_name", Phase: "M", PID: 2, TID: 0,
		Args: map[string]any{"name": "critical path"},
	})
	return trace.EncodeChrome(w, out)
}
