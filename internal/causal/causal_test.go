package causal

import (
	"bytes"
	"testing"

	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/sim"
)

// stream builds a record slice with sequential Seq numbers, mirroring what
// Recorder.Snapshot returns.
type stream struct {
	recs []flight.Rec
}

func (s *stream) add(at sim.Time, core int, k flight.Kind, peer int, aux uint8, line memory.LineAddr, dur sim.Time) {
	s.recs = append(s.recs, flight.Rec{
		At: at, Dur: dur, Line: line, Seq: uint64(len(s.recs) + 1),
		Core: int16(core), Peer: int16(peer), Kind: k, Aux: aux,
	})
}

func TestAnalyzeEmpty(t *testing.T) {
	if rep := Analyze(nil, Options{}); rep != nil {
		t.Fatalf("empty window produced a report: %+v", rep)
	}
}

// TestKillChainCriticalPath is the analyzer's core scenario: core 1 kills
// core 0's first attempt on line 0x40 (a signature false positive), core 0
// backs off and retries to the run's last commit. The critical path must be
// the contiguous chain killer-span → kill → victim-lag → backoff → retry,
// with the contested line blamed for the aborted and backoff cycles.
func TestKillChainCriticalPath(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 1, flight.AbortEnemy, 0, flight.AuxFP, 0x40, 0)
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(25, 0, flight.Backoff, -1, 1, 0, 35)
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	s.add(60, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(100, 0, flight.TxnCommit, -1, 0, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Attempts != 3 || rep.Commits != 2 || rep.Aborts != 1 {
		t.Fatalf("attempts/commits/aborts = %d/%d/%d, want 3/2/1", rep.Attempts, rep.Commits, rep.Aborts)
	}
	if rep.LastCommitAt != 100 || rep.PathStart != 10 || rep.PathCycles != 90 {
		t.Fatalf("path [%d,%d] = %d cycles, want [10,100] = 90", rep.PathStart, rep.LastCommitAt, rep.PathCycles)
	}
	// Contiguity: every segment starts where the previous ended.
	for i := 1; i < len(rep.Path); i++ {
		if rep.Path[i].Start != rep.Path[i-1].End {
			t.Fatalf("path not contiguous at segment %d: %+v", i, rep.Path)
		}
	}
	wantKinds := []string{"span", "aborted", "backoff", "span"}
	wantEdges := []string{"", "kill", "seq", "retry"}
	if len(rep.Path) != len(wantKinds) {
		t.Fatalf("path = %+v, want %d segments", rep.Path, len(wantKinds))
	}
	for i, seg := range rep.Path {
		if seg.Kind != wantKinds[i] || seg.Edge != wantEdges[i] {
			t.Fatalf("segment %d = %s/%q, want %s/%q (%+v)", i, seg.Kind, seg.Edge, wantKinds[i], wantEdges[i], rep.Path)
		}
	}
	// The kill jump hands [10,20] to the killer, [20,25] + backoff to 0x40.
	if rep.Path[0].Core != 1 || rep.Path[0].Start != 10 || rep.Path[0].End != 20 {
		t.Fatalf("killer segment = %+v, want core 1 [10,20]", rep.Path[0])
	}
	tb := rep.TopBlame()
	if tb == nil || tb.Line != 0x40 {
		t.Fatalf("top blame = %+v, want line 0x40", tb)
	}
	if want := uint64((25 - 20) + (60 - 25)); tb.Cycles != want {
		t.Fatalf("blame cycles = %d, want %d (aborted tail + backoff)", tb.Cycles, want)
	}
	if tb.FPCycles != tb.Cycles {
		t.Fatalf("FP cycles = %d of %d, want all (kill was a false positive)", tb.FPCycles, tb.Cycles)
	}
	// Wasted ledger: core 1 killed one attempt worth 25 cycles.
	if len(rep.Wasted) != 1 || rep.Wasted[0].Killer != 1 || rep.Wasted[0].Cycles != 25 {
		t.Fatalf("wasted = %+v, want core 1 / 25 cycles", rep.Wasted)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Killer != 1 || rep.Pairs[0].Victim != 0 || rep.Pairs[0].Kills != 1 {
		t.Fatalf("pairs = %+v, want 1→0 x1", rep.Pairs)
	}
}

// TestLazyKillLineAttribution: a commit-loop kill carries no line in its
// AbortEnemy record; the analyzer must charge the pair's most recent CST
// conflict line instead.
func TestLazyKillLineAttribution(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(5, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.CSTSet, 0, uint8(cst.WW)|flight.AuxFP, 0x77, 0)
	s.add(20, 1, flight.AbortEnemy, 0, 0, 0, 0) // lazy kill: no line
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})
	victim := rep.PerCore[0][0]
	if victim.KillLine != 0x77 || !victim.KillFP {
		t.Fatalf("lazy kill attribution = line 0x%x fp=%v, want 0x77 fp=true", victim.KillLine, victim.KillFP)
	}
}

// TestFailedCASInventsNoAttempt: an AbortEnemy record against a core whose
// attempt already closed (the second CAS of a parallel kill) must not
// synthesize a phantom attempt.
func TestFailedCASInventsNoAttempt(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 1, flight.AbortEnemy, 0, 0, 0x40, 0)
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(26, 1, flight.AbortEnemy, 0, 0, 0x80, 0) // CAS lost: victim already dead
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})
	if len(rep.PerCore[0]) != 1 {
		t.Fatalf("core 0 attempts = %+v, want 1 (failed CAS must not invent nodes)", rep.PerCore[0])
	}
	if got := rep.PerCore[0][0].KillLine; got != 0x40 {
		t.Fatalf("kill line = 0x%x, want 0x40 (first CAS wins)", got)
	}
}

// TestCMStallBlamedInsideSpan: stall cycles recorded inside an on-path
// committed span are charged to the stalling line.
func TestCMStallBlamedInsideSpan(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(30, 0, flight.CMStall, 1, 0, 0x99, 25)
	s.add(50, 0, flight.TxnCommit, -1, 0, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})
	tb := rep.TopBlame()
	if tb == nil || tb.Line != 0x99 || tb.Cycles != 25 {
		t.Fatalf("top blame = %+v, want line 0x99 / 25 cycles", tb)
	}
}

// TestTopBlameCap: the blame table honors Options.TopBlame.
func TestTopBlameCap(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	for i := 0; i < 5; i++ {
		s.add(sim.Time(10+i), 0, flight.CMStall, 1, 0, memory.LineAddr(0x10+i), sim.Time(20-i))
	}
	s.add(50, 0, flight.TxnCommit, -1, 0, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2, TopBlame: 2})
	if len(rep.Blame) != 2 {
		t.Fatalf("blame table = %+v, want 2 entries", rep.Blame)
	}
	if rep.Blame[0].Cycles < rep.Blame[1].Cycles {
		t.Fatalf("blame not sorted by cycles: %+v", rep.Blame)
	}
}

// TestReportJSONDeterministic: the same records render byte-identical JSON.
func TestReportJSONDeterministic(t *testing.T) {
	var s stream
	s.add(0, 0, flight.TxnBegin, -1, 0, 0, 0)
	s.add(10, 1, flight.TxnBegin, -1, 0, 0, 0)
	s.add(20, 1, flight.AbortEnemy, 0, 0, 0x40, 0)
	s.add(25, 0, flight.TxnAbort, -1, 0, 0, 0)
	s.add(40, 1, flight.TxnCommit, -1, 0, 0, 0)
	var a, b bytes.Buffer
	if err := Analyze(s.recs, Options{Cores: 2}).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(s.recs, Options{Cores: 2}).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same records rendered different JSON:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("empty JSON")
	}
}
