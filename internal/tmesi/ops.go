package tmesi

import (
	"flextm/internal/cache"
	"flextm/internal/cst"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// reqKind is the coherence request type of Figure 1.
type reqKind int

const (
	reqGETS  reqKind = iota // ordinary load miss
	reqGETST                // transactional load miss (GETS from a txn)
	reqGETX                 // ordinary store/CAS miss or upgrade
	reqTGETX                // transactional store miss or upgrade
)

func (k reqKind) write() bool         { return k == reqGETX || k == reqTGETX }
func (k reqKind) transactional() bool { return k == reqGETST || k == reqTGETX }

// TLoad performs a transactional load: it updates Rsig and, when the line
// is threatened by a remote speculative writer, caches the committed value
// in the TI state (Figure 1).
func (s *System) TLoad(ctx *sim.Ctx, core int, a memory.Addr) OpResult {
	ctx.Sync()
	s.now = ctx.Now()
	s.stats.TLoads++
	c := &s.cores[core]
	res := s.watchCheck(core, a, false)
	line := a.Line()
	lat := s.cfg.L1Hit

	if ln := c.l1.Lookup(line); ln != nil {
		s.stats.L1Hits++
		c.rsig.Insert(line)
		res.Val = ln.Data[a.Offset()]
		ctx.Advance(lat)
		return res
	}
	s.stats.L1Misses++

	if data, ok, otLat := s.otFetch(c, core, line); ok {
		lat += otLat + s.insertLine(c, core, cache.Line{Tag: line, State: cache.TMI, Data: data})
		c.rsig.Insert(line)
		res.Val = data[a.Offset()]
		ctx.Advance(lat)
		return res
	} else {
		lat += otLat
	}

	lat += s.l2Round() + s.drainStallLat(ctx, core, line)
	pr := s.probe(core, line, reqGETST)
	lat += pr.lat + s.fillLat(line)

	var data memory.LineData
	s.image.ReadLine(line, &data)
	st := cache.Exclusive
	if pr.threatened {
		st = cache.TI
		s.tel.Inc(core, telemetry.CtrTIEnter)
	} else if pr.copiesRemain {
		st = cache.Shared
	}
	lat += s.insertLine(c, core, cache.Line{Tag: line, State: st, Data: data})
	c.rsig.Insert(line)
	res.Val = data[a.Offset()]
	res.Conflicts = pr.conflicts
	ctx.Advance(lat)
	return res
}

// Load performs an ordinary (non-transactional) load. A threatened line's
// committed value is returned uncached, so the read serializes before the
// speculative writer (Section 3.5).
func (s *System) Load(ctx *sim.Ctx, core int, a memory.Addr) OpResult {
	ctx.Sync()
	s.now = ctx.Now()
	s.stats.Loads++
	c := &s.cores[core]
	res := s.watchCheck(core, a, false)
	line := a.Line()
	lat := s.cfg.L1Hit

	if ln := c.l1.Lookup(line); ln != nil {
		s.stats.L1Hits++
		res.Val = ln.Data[a.Offset()]
		ctx.Advance(lat)
		return res
	}
	s.stats.L1Misses++

	if data, ok, otLat := s.otFetch(c, core, line); ok {
		lat += otLat + s.insertLine(c, core, cache.Line{Tag: line, State: cache.TMI, Data: data})
		res.Val = data[a.Offset()]
		ctx.Advance(lat)
		return res
	} else {
		lat += otLat
	}

	lat += s.l2Round() + s.drainStallLat(ctx, core, line)
	pr := s.probe(core, line, reqGETS)
	lat += pr.lat + s.fillLat(line)

	var data memory.LineData
	s.image.ReadLine(line, &data)
	res.Val = data[a.Offset()]
	if !pr.threatened {
		st := cache.Exclusive
		if pr.copiesRemain {
			st = cache.Shared
		}
		lat += s.insertLine(c, core, cache.Line{Tag: line, State: st, Data: data})
	}
	ctx.Advance(lat)
	return res
}

// TStore performs a transactional store: the line moves to TMI in the local
// L1, Wsig is updated, and remote readers/writers observe Threatened
// responses on their subsequent coherence requests.
func (s *System) TStore(ctx *sim.Ctx, core int, a memory.Addr, v uint64) OpResult {
	ctx.Sync()
	s.now = ctx.Now()
	s.stats.TStores++
	c := &s.cores[core]
	res := s.watchCheck(core, a, true)
	line := a.Line()
	lat := s.cfg.L1Hit

	if ln := c.l1.Lookup(line); ln != nil {
		s.stats.L1Hits++
		switch ln.State {
		case cache.TMI:
			// Already speculative: silent upgrade.
		case cache.Modified:
			// First TStore to an M line writes the latest non-speculative
			// version back to the L2 so remote Loads stay correct.
			s.image.WriteLine(line, &ln.Data)
			s.l2.Touch(line)
			lat += s.netLat() + s.cfg.L2Hit
			ln.State = cache.TMI
			s.tel.Inc(core, telemetry.CtrTMIEnter)
		case cache.Exclusive:
			ln.State = cache.TMI // silent: directory already thinks E
			s.tel.Inc(core, telemetry.CtrTMIEnter)
		case cache.Shared, cache.TI:
			// Upgrade requires a TGETX so other sharers are invalidated
			// and conflicts are detected.
			lat += s.l2Round()
			pr := s.probe(core, line, reqTGETX)
			lat += pr.lat
			res.Conflicts = pr.conflicts
			ln.State = cache.TMI
			s.tel.Inc(core, telemetry.CtrTMIEnter)
		}
		ln.Data[a.Offset()] = v
		c.wsig.Insert(line)
		ctx.Advance(lat)
		return res
	}
	s.stats.L1Misses++

	if data, ok, otLat := s.otFetch(c, core, line); ok {
		data[a.Offset()] = v
		lat += otLat + s.insertLine(c, core, cache.Line{Tag: line, State: cache.TMI, Data: data})
		c.wsig.Insert(line)
		ctx.Advance(lat)
		return res
	} else {
		lat += otLat
	}

	lat += s.l2Round() + s.drainStallLat(ctx, core, line)
	pr := s.probe(core, line, reqTGETX)
	lat += pr.lat + s.fillLat(line)

	var data memory.LineData
	s.image.ReadLine(line, &data)
	data[a.Offset()] = v
	s.tel.Inc(core, telemetry.CtrTMIEnter)
	lat += s.insertLine(c, core, cache.Line{Tag: line, State: cache.TMI, Data: data})
	c.wsig.Insert(line)
	res.Conflicts = pr.conflicts
	ctx.Advance(lat)
	return res
}

// Store performs an ordinary store. If it conflicts with a remote
// transaction's read or write set, that transaction is aborted via the
// strong-isolation hook, so the store serializes before the (retried)
// transaction.
func (s *System) Store(ctx *sim.Ctx, core int, a memory.Addr, v uint64) OpResult {
	ctx.Sync()
	s.now = ctx.Now()
	s.stats.Stores++
	res := s.watchCheck(core, a, true)
	lat, ln := s.ensureExclusive(ctx, core, a.Line())
	ln.Data[a.Offset()] = v
	ctx.Advance(lat)
	return res
}

// CAS performs an ordinary atomic compare-and-swap, returning the previous
// value and whether the swap happened. The TM runtimes use it for status
// words, lock words, and version clocks.
func (s *System) CAS(ctx *sim.Ctx, core int, a memory.Addr, old, new uint64) (OpResult, bool) {
	ctx.Sync()
	s.now = ctx.Now()
	s.stats.Stores++
	res := s.watchCheck(core, a, true)
	lat, ln := s.ensureExclusive(ctx, core, a.Line())
	cur := ln.Data[a.Offset()]
	res.Val = cur
	ok := cur == old
	if ok {
		ln.Data[a.Offset()] = new
	}
	ctx.Advance(lat)
	return res, ok
}

// FetchAdd atomically adds delta to the word at a and returns the prior
// value (used by the TL2 baseline's global version clock).
func (s *System) FetchAdd(ctx *sim.Ctx, core int, a memory.Addr, delta uint64) uint64 {
	ctx.Sync()
	s.now = ctx.Now()
	s.stats.Stores++
	lat, ln := s.ensureExclusive(ctx, core, a.Line())
	old := ln.Data[a.Offset()]
	ln.Data[a.Offset()] = old + delta
	ctx.Advance(lat)
	return old
}

// ensureExclusive brings a.Line() into the local cache in M state,
// invalidating remote copies and applying strong isolation, and returns the
// resident line. The caller charges the returned latency.
func (s *System) ensureExclusive(ctx *sim.Ctx, core int, line memory.LineAddr) (sim.Time, *cache.Line) {
	c := &s.cores[core]
	lat := s.cfg.L1Hit
	if ln := c.l1.Lookup(line); ln != nil {
		s.stats.L1Hits++
		switch ln.State {
		case cache.Modified, cache.TMI:
			// TMI: an ordinary store inside a transaction to a line the
			// same transaction has TStored updates the speculative copy.
			return lat, ln
		case cache.Exclusive:
			ln.State = cache.Modified
			return lat, ln
		case cache.Shared, cache.TI:
			lat += s.l2Round()
			pr := s.probe(core, line, reqGETX)
			lat += pr.lat
			ln.State = cache.Modified
			return lat, ln
		}
	}
	s.stats.L1Misses++
	if data, ok, otLat := s.otFetch(c, core, line); ok {
		// Own overflowed speculative line: restore as TMI and write into it.
		lat += otLat + s.insertLine(c, core, cache.Line{Tag: line, State: cache.TMI, Data: data})
		return lat, c.l1.Lookup(line)
	} else {
		lat += otLat
	}
	lat += s.l2Round() + s.drainStallLat(ctx, core, line)
	pr := s.probe(core, line, reqGETX)
	lat += pr.lat + s.fillLat(line)
	var data memory.LineData
	s.image.ReadLine(line, &data)
	lat += s.insertLine(c, core, cache.Line{Tag: line, State: cache.Modified, Data: data})
	return lat, c.l1.Lookup(line)
}

// fpAux maps a false-positive verdict onto the flight-record Aux bit.
func fpAux(fp bool) uint8 {
	if fp {
		return flight.AuxFP
	}
	return 0
}

// probeResult summarizes one forwarding round.
type probeResult struct {
	conflicts    []Conflict
	threatened   bool
	copiesRemain bool // a valid remote copy remains after the round (S vs E)
	lat          sim.Time
}

// probe models the directory forwarding a request to the other L1
// controllers, which test their signatures and adjust their cache state per
// Figure 1, updating CSTs on both sides.
func (s *System) probe(core int, line memory.LineAddr, kind reqKind) probeResult {
	var pr probeResult
	c := &s.cores[core]
	probed := false

	for r := range s.cores {
		if r == core {
			continue
		}
		rc := &s.cores[r]
		rln := rc.l1.Lookup(line)
		sigW := rc.txnActive && rc.wsig.Member(line)
		sigR := rc.txnActive && rc.rsig.Member(line)
		// Injected Bloom aliasing: force the responder's write signature to
		// claim membership for a line it never inserted. Sound by the same
		// argument as a natural false positive — signatures are allowed to
		// over-approximate — so the protocol must absorb the spurious
		// Threatened response, CST bits, or strong-isolation abort.
		injW := false
		if rc.txnActive && !sigW && s.inj.Fire(core, fault.SigFalsePos) {
			sigW = true
			injW = true
			s.tel.Inc(r, telemetry.CtrFaultInjected)
		}
		if s.tel != nil && rc.txnActive {
			// Split this round's membership tests into true conflicts and
			// Bloom aliasing, attributed to the signature's owner.
			s.classifySig(r, rc.wsig, line, sigW)
			s.classifySig(r, rc.rsig, line, sigR)
		}
		if rln == nil && !sigW && !sigR {
			continue
		}
		// False-positive lineage for the causal tracer: an injected alias is
		// spurious by construction; otherwise audit mode (when enabled) gives
		// ground truth on whether the signature hit was Bloom aliasing.
		fpW := injW || (sigW && !injW && rc.wsig.AuditEnabled() && !rc.wsig.Inserted(line))
		fpR := sigR && rc.rsig.AuditEnabled() && !rc.rsig.Inserted(line)
		probed = true
		s.stats.Probes++
		s.tel.Inc(core, telemetry.CtrProbes)

		// Sticky sharers: a processor whose active transaction's signature
		// covers the line stays on the directory's sharer list even after
		// silently evicting its copy (Section 4.1), so a read miss must
		// not be granted Exclusive — a later silent E->TMI upgrade would
		// bypass conflict detection.
		if (kind == reqGETS || kind == reqGETST) && (sigR || sigW) {
			pr.copiesRemain = true
		}

		// Signature-based response and CST exchange (Figure 1's table).
		switch kind {
		case reqGETS, reqGETST:
			if sigW {
				pr.threatened = true
				s.stats.ThreatenedResponses++
				s.tel.Inc(core, telemetry.CtrThreatened)
				pr.conflicts = append(pr.conflicts, Conflict{Responder: r, Msg: Threatened, Line: line, FP: fpW})
				if kind == reqGETST {
					rc.table.Set(cst.WR, core)
					c.table.Set(cst.RW, r)
					s.tel.Inc(r, telemetry.CtrCSTSet)
					s.tel.Inc(core, telemetry.CtrCSTSet)
					s.fl.Rec(core, s.now, flight.CSTSet, r, uint8(cst.RW)|fpAux(fpW), line)
				}
			}
		case reqTGETX:
			if sigW {
				pr.threatened = true
				s.stats.ThreatenedResponses++
				s.tel.Inc(core, telemetry.CtrThreatened)
				pr.conflicts = append(pr.conflicts, Conflict{Responder: r, Msg: Threatened, Line: line, FP: fpW})
				rc.table.Set(cst.WW, core)
				c.table.Set(cst.WW, r)
				s.tel.Inc(r, telemetry.CtrCSTSet)
				s.tel.Inc(core, telemetry.CtrCSTSet)
				s.fl.Rec(core, s.now, flight.CSTSet, r, uint8(cst.WW)|fpAux(fpW), line)
			} else if sigR {
				s.stats.ExposedReadResponses++
				s.tel.Inc(core, telemetry.CtrExposedRead)
				pr.conflicts = append(pr.conflicts, Conflict{Responder: r, Msg: ExposedRead, Line: line, FP: fpR})
				rc.table.Set(cst.RW, core)
				c.table.Set(cst.WR, r)
				s.tel.Inc(r, telemetry.CtrCSTSet)
				s.tel.Inc(core, telemetry.CtrCSTSet)
				s.fl.Rec(core, s.now, flight.CSTSet, r, uint8(cst.WR)|fpAux(fpR), line)
			}
		case reqGETX:
			if sigW || sigR {
				s.stats.StrongIsolationAborts++
				s.tel.Inc(r, telemetry.CtrStrongIsoAbort)
				if s.strongIsolationHook != nil {
					s.strongIsolationHook(r)
				}
			}
		}

		// Cache-state action at the responder.
		if rln == nil {
			continue
		}
		switch kind {
		case reqGETS, reqGETST:
			switch rln.State {
			case cache.Modified:
				s.image.WriteLine(line, &rln.Data)
				s.l2.Touch(line)
				rln.State = cache.Shared
				pr.copiesRemain = true
			case cache.Exclusive:
				rln.State = cache.Shared
				pr.copiesRemain = true
			case cache.Shared:
				pr.copiesRemain = true
			case cache.TMI, cache.TI:
				// Speculative writers keep their copy; TI holders remain
				// sharers of the committed version.
				pr.copiesRemain = true
			}
		case reqTGETX:
			switch rln.State {
			case cache.Modified:
				s.image.WriteLine(line, &rln.Data)
				s.l2.Touch(line)
				s.invalidateLine(rc, r, rln)
			case cache.Exclusive, cache.Shared, cache.TI:
				s.invalidateLine(rc, r, rln)
			case cache.TMI:
				// Multiple owners: each speculative writer keeps its copy.
			}
		case reqGETX:
			if rln.State == cache.Modified {
				s.image.WriteLine(line, &rln.Data)
				s.l2.Touch(line)
			}
			// Strong isolation already doomed any speculative owner, so
			// even TMI copies are dropped.
			s.invalidateLine(rc, r, rln)
		}
	}

	// Summary-signature check for descheduled transactions (Section 5):
	// the L2 consults RSsig/WSsig on every L1 miss and traps to software on
	// a hit.
	if s.summaryHook != nil {
		hitW := s.summaryW != nil && s.summaryW.Member(line)
		hitR := s.summaryR != nil && s.summaryR.Member(line)
		if (hitW || hitR) && !kind.write() {
			// Cores Summary: the directory keeps descheduled processors on
			// the sharer list for lines their summary signatures cover, so
			// the line cannot be granted Exclusive — a silent E->M or
			// E->TMI upgrade would bypass the summary check.
			pr.copiesRemain = true
		}
		if hitW || (kind.write() && hitR) {
			s.stats.SummaryTraps++
			s.tel.Inc(core, telemetry.CtrSummaryTrap)
			pr.lat += s.cfg.TrapLat
			cs := s.summaryHook(core, line, kind.write())
			for _, cf := range cs {
				if cf.Msg == Threatened {
					pr.threatened = true
				}
			}
			pr.conflicts = append(pr.conflicts, cs...)
		}
	}

	if probed {
		pr.lat += s.probeRound()
		// Injected coherence delay: one responder's reply is late (queueing,
		// link contention), stretching the whole parallel round since the
		// requestor must collect every response.
		if s.inj.Fire(core, fault.CoherenceDelay) {
			pr.lat += sim.Time(s.inj.Amount(fault.CoherenceDelay, uint64(s.cfg.MemLat)))
			s.tel.Inc(core, telemetry.CtrFaultInjected)
		}
	}
	return pr
}

// invalidateLine drops a remote copy, firing an AOU alert if the line
// carried the A bit. owner is rc's core index (for telemetry attribution).
func (s *System) invalidateLine(rc *coreState, owner int, rln *cache.Line) {
	if rln.Alert {
		rc.alerts.MarkRemoved()
		if s.inj.Fire(owner, fault.AlertLoss) {
			// Injected alert loss: the invalidation happens but the trap is
			// dropped. The owner's doomed transaction keeps running until the
			// CAS-Commit backstop (the TSW check) discards it — the paper's
			// correctness argument does not depend on timely alert delivery.
			s.tel.Inc(owner, telemetry.CtrFaultInjected)
		} else {
			rc.alerts.Enqueue(rln.Tag)
			s.stats.Alerts++
			s.tel.Inc(owner, telemetry.CtrAlert)
			s.fl.Rec(owner, s.now, flight.AOUAlert, -1, 0, rln.Tag)
		}
	}
	rln.State = cache.Invalid
	rln.Alert = false
}

// otFetch checks the core's overflow table for line and fetches it back on
// a hit. It returns the extra latency of the Osig/table walk.
func (s *System) otFetch(c *coreState, core int, line memory.LineAddr) (memory.LineData, bool, sim.Time) {
	if c.ot == nil || !c.ot.MayContain(line) {
		return memory.LineData{}, false, 0
	}
	walkLat := s.cfg.OTAccess
	if s.inj.Fire(core, fault.OTStall) {
		// Injected walk stall: the controller's table walk contends with
		// other traffic (TLB refill, memory-controller occupancy).
		walkLat += sim.Time(s.inj.Amount(fault.OTStall, uint64(4*s.cfg.OTAccess)))
		s.tel.Inc(core, telemetry.CtrFaultInjected)
	}
	if data, ok := c.ot.LookupInvalidate(line); ok {
		s.stats.OTFetches++
		s.tel.Inc(core, telemetry.CtrOTWalkHit)
		return data, true, walkLat
	}
	// Osig false positive: the walk happened but found nothing.
	s.tel.Inc(core, telemetry.CtrOTWalkFalse)
	return memory.LineData{}, false, walkLat
}

// insertLine installs a line in core's L1, handling spills from the victim
// buffer: M lines write back, TMI lines overflow to the OT, others drop.
func (s *System) insertLine(c *coreState, core int, ln cache.Line) sim.Time {
	var lat sim.Time
	for _, v := range c.l1.Insert(ln) {
		sp := v.Line
		if sp.Alert {
			c.alerts.MarkRemoved()
			if s.inj.Fire(core, fault.AlertLoss) {
				// Injected alert loss on A-line eviction (see invalidateLine).
				s.tel.Inc(core, telemetry.CtrFaultInjected)
			} else {
				// Conservative: losing an alert-marked line raises the alert.
				c.alerts.Enqueue(sp.Tag)
				s.stats.Alerts++
				s.tel.Inc(core, telemetry.CtrAlert)
				s.fl.Rec(core, s.now, flight.AOUAlert, -1, 0, sp.Tag)
			}
		}
		switch sp.State {
		case cache.Modified:
			s.image.WriteLine(sp.Tag, &sp.Data)
			s.l2.Touch(sp.Tag)
		case cache.TMI:
			if c.ot == nil {
				// First overflow: trap to the OS to allocate the OT and
				// fill the controller registers.
				c.ot = overflowNew(s.cfg)
				s.stats.OTAllocs++
				s.tel.Inc(core, telemetry.CtrOTAlloc)
				lat += s.cfg.TrapLat
			}
			if c.ot.Insert(sp.Tag, sp.Tag, sp.Data) {
				lat += s.cfg.TrapLat // way overflow: OS expands the table
				s.tel.Inc(core, telemetry.CtrOTExpand)
			}
			lat += s.cfg.OTAccess
			s.stats.Overflows++
			s.tel.Inc(core, telemetry.CtrOTSpill)
			s.fl.Rec(core, s.now, flight.OTSpill, -1, 0, sp.Tag)
		}
	}
	return lat
}

// fillLat returns the latency beyond the L2 access needed to obtain the
// line's data (DRAM on an L2 tag miss).
func (s *System) fillLat(line memory.LineAddr) sim.Time {
	hit, _, _ := s.l2.Touch(line)
	if hit {
		return 0
	}
	s.stats.L2Misses++
	return s.cfg.MemLat
}

// drainStallLat stalls an access that targets a line covered by some other
// core's in-progress committed-OT copy-back (the request is NACKed until
// copy-back completes, Section 4.1).
func (s *System) drainStallLat(ctx *sim.Ctx, core int, line memory.LineAddr) sim.Time {
	var stall sim.Time
	for r := range s.cores {
		if r == core {
			continue
		}
		rc := &s.cores[r]
		if rc.drainSig != nil && rc.drainUntil > ctx.Now()+stall && rc.drainSig.Member(line) {
			stall = rc.drainUntil - ctx.Now()
		}
	}
	return stall
}

// watchCheck implements FlexWatcher's local access monitoring (Table 4a):
// with the signature activated, every local load tests the read signature
// and every local store the write signature, reporting a hit for the
// software handler.
func (s *System) watchCheck(core int, a memory.Addr, write bool) OpResult {
	c := &s.cores[core]
	if !c.sigWatch {
		return OpResult{}
	}
	line := a.Line()
	if write {
		if c.wsig.Member(line) {
			return OpResult{WatchHit: true}
		}
	} else if c.rsig.Member(line) {
		return OpResult{WatchHit: true}
	}
	return OpResult{}
}
