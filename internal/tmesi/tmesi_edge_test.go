package tmesi

import (
	"testing"

	"flextm/internal/cache"
	"flextm/internal/memory"
	"flextm/internal/sim"
)

func TestOrdinaryLoadOfOwnTMISeesSpeculative(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 100, 1)
		s.BeginTxn(0)
		s.TStore(ctx, 0, 100, 9)
		// An ordinary load on the same core reads the local (speculative)
		// copy; bypass instructions see the core's own cache.
		if v := s.Load(ctx, 0, 100).Val; v != 9 {
			t.Fatalf("own ordinary load = %d, want 9", v)
		}
	})
}

func TestStickySharerPreventsSilentUpgrade(t *testing.T) {
	// Regression companion for the eager-audit bug: a reader's cached copy
	// is invalidated (its signature still covers the line), then evicted
	// writers come and go; a later read miss by another core must get S,
	// not E, so its subsequent TStore still probes the reader.
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TLoad(ctx, 0, 4096) // reader: line in Rsig
		// Drop the cached copy via remote GETX-free path: simulate silent
		// eviction by filling the set (4 sets here, line 4096 maps with
		// others at stride 4*8 words).
		ctx.Advance(10000)
		ctx.Sync()
		// Reader still active; its rsig covers line 512 (=4096/8).
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.BeginTxn(1)
		res := s.TLoad(ctx, 1, 4096)
		_ = res
		if st := s.LineState(1, memory.Addr(4096).Line()); st == cache.Exclusive {
			t.Fatal("second reader granted E while a txn signature covers the line")
		}
		// The upgrade must therefore probe and report the exposed read.
		r2 := s.TStore(ctx, 1, 4096, 5)
		found := false
		for _, c := range r2.Conflicts {
			if c.Msg == ExposedRead && c.Responder == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("TStore conflicts = %+v, want Exposed-Read from core 0", r2.Conflicts)
		}
	})
}

func TestGETXInvalidatesTILines(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TStore(ctx, 0, 200, 9) // threatens the line
		ctx.Advance(10000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(500)
		s.BeginTxn(1)
		s.TLoad(ctx, 1, 200) // TI copy
		if st := s.LineState(1, memory.Addr(200).Line()); st != cache.TI {
			t.Fatalf("state %v, want TI", st)
		}
		ctx.Advance(5000)
		ctx.Sync()
		if st := s.LineState(1, memory.Addr(200).Line()); st != cache.Invalid {
			t.Fatalf("TI survived a remote GETX: %v", st)
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(2000)
		s.Store(ctx, 2, 200, 7) // ordinary store invalidates all copies
	})
}

func TestDrainWindowActuallyStalls(t *testing.T) {
	cfg := smallCfg()
	cfg.DrainPerLine = 500
	const tsw = memory.Addr(8)
	var accessLat sim.Time
	run(t, cfg, func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		for i := 0; i < 20; i++ {
			s.TStore(ctx, 0, memory.Addr(20000+i*memory.LineWords), 1)
		}
		s.CASCommit(ctx, 0, tsw, 1, 2)
	}, func(ctx *sim.Ctx, s *System) {
		// Arrive within the drain window of core 0's commit.
		for s.Stats().FlashCommits == 0 {
			ctx.Advance(200)
			ctx.Sync()
		}
		t0 := ctx.Now()
		s.Load(ctx, 1, 20000)
		accessLat = ctx.Now() - t0
	})
	if accessLat < 400 {
		t.Fatalf("access during copy-back took only %d cycles; NACK window not modeled", accessLat)
	}
}

func TestVictimBufferEvictionOfAlertLineRaisesAlert(t *testing.T) {
	cfg := smallCfg()
	cfg.L1 = cache.Config{Sets: 1, Ways: 1, VictimSize: 1}
	run(t, cfg, func(ctx *sim.Ctx, s *System) {
		s.ALoad(ctx, 0, 0)
		// Two more lines push the alerted line out of the 1-way set and
		// then out of the 1-entry victim buffer.
		s.Load(ctx, 0, memory.LineWords)
		s.Load(ctx, 0, 2*memory.LineWords)
		if _, ok := s.TakeAlert(0); !ok {
			t.Fatal("losing an alerted line must raise the alert (conservative AOU)")
		}
	})
}

func TestRaiseAlertSynthetic(t *testing.T) {
	s := New(smallCfg())
	s.RaiseAlert(2, 800)
	line, ok := s.TakeAlert(2)
	if !ok || line != memory.Addr(800).Line() {
		t.Fatalf("TakeAlert = (%v,%v)", line, ok)
	}
	if _, ok := s.TakeAlert(2); ok {
		t.Fatal("alert delivered twice")
	}
}

func TestAlertQueueDeliversMultiple(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.ALoad(ctx, 0, 1000)
		s.ALoad(ctx, 0, 2000)
		ctx.Advance(10000)
		ctx.Sync()
		got := map[memory.LineAddr]bool{}
		for {
			l, ok := s.TakeAlert(0)
			if !ok {
				break
			}
			got[l] = true
		}
		if len(got) != 2 {
			t.Fatalf("alerts delivered for %d lines, want 2", len(got))
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.Store(ctx, 1, 1000, 1)
		s.Store(ctx, 1, 2000, 1)
	})
}

func TestConcurrentFetchAdd(t *testing.T) {
	s := New(smallCfg())
	e := sim.NewEngine()
	for i := 0; i < 4; i++ {
		core := i
		e.Spawn("fa", 0, func(ctx *sim.Ctx) {
			for j := 0; j < 50; j++ {
				s.FetchAdd(ctx, core, 3000, 1)
			}
		})
	}
	e.Run()
	if v := s.ReadWordRaw(3000); v != 200 {
		t.Fatalf("counter = %d, want 200", v)
	}
}

func TestL2MissLatencyCharged(t *testing.T) {
	cfg := smallCfg()
	s := New(cfg)
	e := sim.NewEngine()
	e.Spawn("t", 0, func(ctx *sim.Ctx) {
		// Touch more distinct lines than the L2 holds (64 sets x 4 ways).
		misses0 := s.Stats().L2Misses
		for i := 0; i < 1000; i++ {
			s.Load(ctx, 0, memory.Addr(i*memory.LineWords))
		}
		if s.Stats().L2Misses-misses0 < 1000 {
			t.Errorf("cold pass: want >= 1000 L2 misses, got %d", s.Stats().L2Misses-misses0)
		}
		// Second pass over a small L2: capacity evictions cause re-misses.
		misses1 := s.Stats().L2Misses
		for i := 0; i < 1000; i++ {
			s.Load(ctx, 0, memory.Addr(i*memory.LineWords))
		}
		if s.Stats().L2Misses == misses1 {
			t.Error("second pass: expected L2 capacity misses on a 256-line L2")
		}
	})
	e.Run()
}

func TestBeginTxnTwicePanics(t *testing.T) {
	s := New(smallCfg())
	s.BeginTxn(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double BeginTxn did not panic")
		}
	}()
	s.BeginTxn(0)
}

func TestSummaryReadSigOnlyTrapsWrites(t *testing.T) {
	s := New(smallCfg())
	rs := s.Rsig(0).Clone()
	rs.Insert(memory.Addr(5000).Line())
	traps := 0
	s.InstallSummary(rs, nil, func(req int, line memory.LineAddr, write bool) []Conflict {
		traps++
		return nil
	})
	e := sim.NewEngine()
	e.Spawn("t", 0, func(ctx *sim.Ctx) {
		s.Load(ctx, 1, 5000) // read vs suspended read: no trap
		if traps != 0 {
			t.Error("read-read trapped")
		}
		s.Store(ctx, 1, 5000, 1) // write vs suspended read: trap
		if traps != 1 {
			t.Errorf("traps = %d, want 1", traps)
		}
	})
	e.Run()
}

func TestPageRemapPreservesSpeculativeState(t *testing.T) {
	// Section 4.1: a transaction TStores a line; the OS unmaps its page
	// (TMI lines flushed to the OT), remaps it to a new frame (tags and
	// signatures updated), and the transaction continues at the new
	// physical address, committing there.
	const tsw = memory.Addr(8)
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		oldA := memory.Addr(30000)
		newA := memory.Addr(40000)
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		s.TStore(ctx, 0, oldA, 77)

		// OS: unmap the old frame, remap to the new one.
		s.FlushTMIToOT(0, []memory.LineAddr{oldA.Line()})
		s.RemapLine(0, oldA.Line(), newA.Line())

		if !s.Wsig(0).Member(newA.Line()) {
			t.Fatal("Wsig not updated for the new frame")
		}
		// The speculative value is now reachable at the new address.
		if v := s.TLoad(ctx, 0, newA).Val; v != 77 {
			t.Fatalf("TLoad(new frame) = %d, want 77", v)
		}
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitOK {
			t.Fatalf("CASCommit = %v", out)
		}
		if v := s.ReadWordRaw(newA); v != 77 {
			t.Fatalf("committed value at new frame = %d", v)
		}
	})
}

func BenchmarkTLoadHit(b *testing.B) {
	s := New(DefaultConfig())
	e := sim.NewEngine()
	e.Spawn("b", 0, func(ctx *sim.Ctx) {
		s.BeginTxn(0)
		s.TLoad(ctx, 0, 100)
		for i := 0; i < b.N; i++ {
			s.TLoad(ctx, 0, 100)
		}
	})
	e.Run()
}

func BenchmarkTStoreCommitCycle(b *testing.B) {
	s := New(DefaultConfig())
	e := sim.NewEngine()
	e.Spawn("b", 0, func(ctx *sim.Ctx) {
		const tsw = memory.Addr(8)
		for i := 0; i < b.N; i++ {
			s.Store(ctx, 0, tsw, 1)
			s.BeginTxn(0)
			s.TStore(ctx, 0, 200, uint64(i))
			s.CASCommit(ctx, 0, tsw, 1, 2)
		}
	})
	e.Run()
}
