// Package tmesi implements the FlexTM memory system: a 16-core CMP with
// private L1 caches and a shared L2, running the TMESI directory coherence
// protocol of Figure 1 in the paper — MESI extended with the PDI states TMI
// and TI, Bloom-filter access signatures, conflict summary tables,
// alert-on-update, and hardware-filled overflow tables.
//
// The simulator is functional + timing: every operation is executed
// atomically at the granularity of one memory operation (the sim engine
// resumes one thread at a time in virtual-time order), which removes
// protocol transients while preserving all architectural behaviour the
// paper depends on — Threatened/Exposed-Read responses, CST updates on both
// requestor and responder, multiple concurrent TMI owners, flash
// commit/abort, and overflow spill/fetch. Directory forwarding is modeled
// as one parallel probe round filtered by cache residency and signatures;
// because FlexTM's sharer lists are deliberately conservative and sticky
// (Section 4.1), this yields identical conflict outcomes.
package tmesi

import (
	"fmt"

	"flextm/internal/aou"
	"flextm/internal/cache"
	"flextm/internal/cst"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/overflow"
	"flextm/internal/signature"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// Config fixes the machine geometry and latency model. Defaults follow
// Table 3(a) of the paper.
type Config struct {
	Cores int

	L1     cache.Config
	L2Sets int
	L2Ways int
	Sig    signature.Config
	OTSets int
	OTWays int

	// Latencies, in cycles.
	L1Hit        sim.Time // L1 access
	L2Hit        sim.Time // L2 bank access
	MemLat       sim.Time // DRAM access on L2 miss
	NetHop       sim.Time // one interconnect link
	NetHops      int      // hops from core to L2 (4-ary tree over 16 cores: 2)
	OTAccess     sim.Time // overflow-table walk by the controller
	TrapLat      sim.Time // entry into a software handler (alert, OT alloc, summary)
	DrainPerLine sim.Time // OT copy-back occupancy per line (delays conflicting peers)
}

// DefaultConfig returns the paper's 16-way CMP configuration.
func DefaultConfig() Config {
	return Config{
		Cores:        16,
		L1:           cache.DefaultL1Config(),
		L2Sets:       16384, // 8 MB, 8-way, 64 B lines
		L2Ways:       8,
		Sig:          signature.DefaultConfig(),
		OTSets:       overflow.DefaultSets,
		OTWays:       overflow.DefaultWays,
		L1Hit:        1,
		L2Hit:        20,
		MemLat:       250,
		NetHop:       1,
		NetHops:      2,
		OTAccess:     40,
		TrapLat:      50,
		DrainPerLine: 10,
	}
}

// ResponseMsg is the signature-based response type a responder appends to a
// forwarded request (Figure 1's table).
type ResponseMsg int

const (
	// Shared / Invalidated: no conflict.
	NoConflict ResponseMsg = iota
	// Threatened: the requested line hit the responder's write signature.
	Threatened
	// ExposedRead: the requested line hit the responder's read signature
	// (write requests only).
	ExposedRead
)

// String returns the paper's message name.
func (m ResponseMsg) String() string {
	switch m {
	case NoConflict:
		return "Shared/Invalidated"
	case Threatened:
		return "Threatened"
	case ExposedRead:
		return "Exposed-Read"
	}
	return fmt.Sprintf("ResponseMsg(%d)", int(m))
}

// Conflict describes one conflicting response received by the requestor of
// a coherence request. In eager mode the runtime passes these to the
// conflict manager; in lazy mode they have already been absorbed into the
// CSTs and can be ignored.
type Conflict struct {
	Responder int
	Msg       ResponseMsg
	Line      memory.LineAddr // the line whose access raised the conflict
	FP        bool            // the responder's signature hit was a Bloom false positive
	Suspended bool            // conflict found via the summary signatures (descheduled txn)
}

// OpResult is the outcome of one memory operation.
type OpResult struct {
	Val       uint64
	Conflicts []Conflict
	WatchHit  bool // local access hit an activated watch signature (FlexWatcher)
}

// Stats aggregates machine-level event counts.
type Stats struct {
	Loads, Stores         uint64
	TLoads, TStores       uint64
	L1Hits, L1Misses      uint64
	L2Misses              uint64
	Probes                uint64
	ThreatenedResponses   uint64
	ExposedReadResponses  uint64
	StrongIsolationAborts uint64
	Overflows             uint64 // TMI lines spilled to an OT
	OTFetches             uint64 // lines fetched back from an OT
	OTAllocs              uint64 // first-overflow traps
	Alerts                uint64 // AOU alerts delivered
	FlashCommits          uint64
	FlashAborts           uint64
	CASCommitCSTFails     uint64
	SummaryTraps          uint64
}

type coreState struct {
	l1        *cache.Cache
	rsig      *signature.Sig
	wsig      *signature.Sig
	table     cst.Table
	ot        *overflow.Table
	txnActive bool

	// AOU state: pending alerts and the count of A-marked lines.
	alerts aou.Unit

	// FlexWatcher: when true, every local access is tested against the
	// (activated) Rsig/Wsig and reports a WatchHit.
	sigWatch bool

	// Copy-back window: requests to lines in drainSig before drainUntil
	// stall behind the committed OT's copy-back.
	drainSig   *signature.Sig
	drainUntil sim.Time
}

// System is the simulated memory system shared by all cores.
type System struct {
	cfg   Config
	image *memory.Image
	alloc *memory.Allocator
	cores []coreState
	l2    *cache.TagCache
	stats Stats

	// tel is the per-mechanism telemetry registry; nil means disabled
	// (telemetry.Registry methods are nil-safe, so instrumentation sites
	// call unconditionally).
	tel *telemetry.Registry

	// fl is the flight recorder; nil means disabled (flight.Recorder
	// methods are nil-safe). now is the virtual time of the operation in
	// progress, stamped at each public op's entry so interior protocol
	// sites (probe, invalidateLine, insertLine) can timestamp records
	// without threading a ctx through.
	fl  *flight.Recorder
	now sim.Time

	// Summary signatures installed at the directory for descheduled
	// transactions (Section 5), plus the handler the L2 traps into.
	summaryR    *signature.Sig
	summaryW    *signature.Sig
	summaryHook func(requestor int, line memory.LineAddr, write bool) []Conflict

	// strongIsolationHook is invoked when a non-transactional access
	// conflicts with core's active transaction (Section 3.5); the TM
	// runtime uses it to abort the victim's transaction.
	strongIsolationHook func(victim int)

	// inj, when non-nil, rolls deterministic fault injections at the
	// protocol's risk points (see internal/fault). All sites call through
	// nil-safe methods, so a detached injector costs one branch.
	inj *fault.Injector
}

// New returns a memory system with the given configuration over a fresh
// committed image.
func New(cfg Config) *System {
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic("tmesi: core count must be in 1..64")
	}
	s := &System{
		cfg:   cfg,
		image: memory.NewImage(),
		alloc: memory.NewAllocator(),
		cores: make([]coreState, cfg.Cores),
		l2:    cache.NewTagCache(cfg.L2Sets, cfg.L2Ways),
	}
	for i := range s.cores {
		s.cores[i] = coreState{
			l1:   cache.New(cfg.L1),
			rsig: signature.New(cfg.Sig),
			wsig: signature.New(cfg.Sig),
		}
	}
	return s
}

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// Image exposes the committed memory image for zero-cost setup and
// verification (test/benchmark plumbing, not an architectural path).
func (s *System) Image() *memory.Image { return s.image }

// Alloc exposes the simulated heap allocator.
func (s *System) Alloc() *memory.Allocator { return s.alloc }

// Stats returns a snapshot of the machine counters.
func (s *System) Stats() Stats { return s.stats }

// SetTelemetry attaches (or, with nil, detaches) a telemetry registry. The
// registry must be sized for at least Config().Cores cores. Attaching also
// switches every access signature into audit mode so membership tests can
// be split into true conflicts and Bloom false positives; attach before
// running transactions so the shadow sets are complete.
func (s *System) SetTelemetry(r *telemetry.Registry) {
	s.tel = r
	if r == nil {
		return
	}
	for i := range s.cores {
		s.cores[i].rsig.EnableAudit()
		s.cores[i].wsig.EnableAudit()
	}
}

// Telemetry returns the attached registry (nil when telemetry is off).
func (s *System) Telemetry() *telemetry.Registry { return s.tel }

// SetFlight attaches (or, with nil, detaches) a flight recorder. The
// machine records protocol-level events (CST sets, alerts, OT spills,
// commit refusals) on it; the runtime layer adds transaction and
// conflict-management events on the same recorder.
func (s *System) SetFlight(r *flight.Recorder) { s.fl = r }

// Flight returns the attached flight recorder (nil when disabled).
func (s *System) Flight() *flight.Recorder { return s.fl }

// SetFaultInjector attaches (or, with nil, detaches) a fault injector.
// Attach before running transactions so the decision sequence — and with it
// the injected fault schedule — is a pure function of config and seed.
func (s *System) SetFaultInjector(inj *fault.Injector) { s.inj = inj }

// FaultInjector returns the attached injector (nil when faults are off).
func (s *System) FaultInjector() *fault.Injector { return s.inj }

// SetFaultImmunity exempts core from (or re-exposes it to) fault injection.
// The runtime's serialized fallback path sets it: escalated execution models
// software that has retreated to a defensive slow path, and exempting it
// guarantees forward progress even at injection rate 1. No-op without an
// injector.
func (s *System) SetFaultImmunity(core int, on bool) { s.inj.SetImmune(core, on) }

// classifySig records the outcome of one signature membership test against
// the precise shadow set: a true hit, a Bloom false positive, or a true
// negative — accumulating the analytic FP prediction at every
// ground-truth-negative test so observed and predicted rates are computed
// over the same population. Called only when telemetry is attached.
func (s *System) classifySig(owner int, sig *signature.Sig, line memory.LineAddr, member bool) {
	if !sig.AuditEnabled() {
		return
	}
	if sig.Inserted(line) {
		// No false negatives: member is necessarily true here.
		s.tel.Inc(owner, telemetry.CtrSigTruePos)
		return
	}
	s.tel.Add(owner, telemetry.CtrSigPredFPpm, uint64(sig.PredictedFPR()*1e6))
	if member {
		s.tel.Inc(owner, telemetry.CtrSigFalsePos)
	} else {
		s.tel.Inc(owner, telemetry.CtrSigTrueNeg)
	}
}

// CST returns core's conflict summary tables; they are software-visible
// registers in FlexTM.
func (s *System) CST(core int) *cst.Table { return &s.cores[core].table }

// Rsig returns core's read signature (software-visible).
func (s *System) Rsig(core int) *signature.Sig { return s.cores[core].rsig }

// Wsig returns core's write signature (software-visible).
func (s *System) Wsig(core int) *signature.Sig { return s.cores[core].wsig }

// OT returns core's overflow table, or nil if none has been allocated.
func (s *System) OT(core int) *overflow.Table { return s.cores[core].ot }

// TxnActive reports whether core is in transactional mode.
func (s *System) TxnActive(core int) bool { return s.cores[core].txnActive }

// SetStrongIsolationHook registers the runtime callback used to abort a
// transaction whose read/write set conflicts with a non-transactional
// access. The hook must not issue simulated memory operations; it should
// manipulate software state directly (e.g. via ForceWord).
func (s *System) SetStrongIsolationHook(h func(victim int)) { s.strongIsolationHook = h }

// InstallSummary installs (or, with nils, removes) the directory's summary
// signatures and the software handler the L2 traps into when an L1 miss
// hits them (Section 5).
func (s *System) InstallSummary(rs, ws *signature.Sig, hook func(requestor int, line memory.LineAddr, write bool) []Conflict) {
	s.summaryR, s.summaryW, s.summaryHook = rs, ws, hook
}

// WidenSignatures swaps every core's read and write signature to a new
// geometry, re-inserting each filter's precise member set so no conflict
// information is lost mid-transaction (Sig.Rehash). All cores change
// together — Intersects/Union/CopyFrom require matching geometries, so a
// partial widen would panic at the next cross-core test. It refuses (with
// an error, not a panic: the governor retries on its next tick) when audit
// mode is off (no ground truth to rehash from — practically, when telemetry
// is detached) or while OS summary signatures are installed (they were
// built in the old geometry and would mismatch every per-core test).
func (s *System) WidenSignatures(cfg signature.Config) error {
	if s.summaryR != nil || s.summaryW != nil {
		return fmt.Errorf("tmesi: cannot rehash signatures while summary signatures are installed")
	}
	for i := range s.cores {
		if !s.cores[i].rsig.AuditEnabled() || !s.cores[i].wsig.AuditEnabled() {
			return fmt.Errorf("tmesi: signature rehash requires audit mode (attach telemetry)")
		}
	}
	for i := range s.cores {
		s.cores[i].rsig = s.cores[i].rsig.Rehash(cfg)
		s.cores[i].wsig = s.cores[i].wsig.Rehash(cfg)
		s.tel.Inc(i, telemetry.CtrGovSigWiden)
	}
	// Future consumers of the geometry (overflow Osig construction, summary
	// building, width ablations) must see the new shape.
	s.cfg.Sig = cfg
	return nil
}

// BeginTxn puts core into transactional mode. Signatures and CSTs are
// expected to be clear (they are after CASCommit/AbortFlash).
func (s *System) BeginTxn(core int) {
	c := &s.cores[core]
	if c.txnActive {
		panic(fmt.Sprintf("tmesi: BeginTxn on core %d with active transaction", core))
	}
	c.txnActive = true
}

// netLat is the one-way core-to-L2 network latency.
func (s *System) netLat() sim.Time {
	return sim.Time(s.cfg.NetHops) * s.cfg.NetHop
}

// l2Round is the round-trip latency of an L1 miss serviced at the L2.
func (s *System) l2Round() sim.Time { return 2*s.netLat() + s.cfg.L2Hit }

// probeRound is the extra latency of one parallel forwarding round to other
// L1s (forward, tag/signature check, response).
func (s *System) probeRound() sim.Time { return 2*s.netLat() + s.cfg.L1Hit }

// LineState reports the L1 state of line in core's cache (Invalid if not
// resident). It exists for tests and diagnostics.
func (s *System) LineState(core int, line memory.LineAddr) cache.State {
	if ln := s.cores[core].l1.Lookup(line); ln != nil {
		return ln.State
	}
	return cache.Invalid
}
