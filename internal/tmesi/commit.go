package tmesi

import (
	"flextm/internal/cache"
	"flextm/internal/cst"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/overflow"
	"flextm/internal/signature"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
)

// CommitOutcome is the result of a CAS-Commit.
type CommitOutcome int

const (
	// CommitOK: the status word was swapped and all speculative state was
	// flash-committed.
	CommitOK CommitOutcome = iota
	// CommitAborted: the status word no longer held the expected value (an
	// enemy aborted us); speculative state was flash-discarded.
	CommitAborted
	// CommitCSTFail: W-R or W-W was non-zero (new conflicts arrived);
	// nothing changed and the software Commit() loop should re-run
	// (Figure 3, line 5).
	CommitCSTFail
)

// CASCommit implements the paper's CAS-Commit instruction on core's own
// transaction status word at address tsw. On success the controller
// atomically swaps the TSW, flash-commits TMI lines to M, drops TI lines,
// drains a committed overflow table, and clears signatures and CSTs.
func (s *System) CASCommit(ctx *sim.Ctx, core int, tsw memory.Addr, old, new uint64) CommitOutcome {
	return s.casCommit(ctx, core, tsw, old, new, true)
}

// CASCommitNoCST is CASCommit without the W-R/W-W emptiness check. RTM-style
// hardware (AOU + PDI only, no conflict summary tables) publishes its
// speculative state this way; conflict safety is software's responsibility.
func (s *System) CASCommitNoCST(ctx *sim.Ctx, core int, tsw memory.Addr, old, new uint64) CommitOutcome {
	return s.casCommit(ctx, core, tsw, old, new, false)
}

func (s *System) casCommit(ctx *sim.Ctx, core int, tsw memory.Addr, old, new uint64, checkCST bool) CommitOutcome {
	ctx.Sync()
	s.now = ctx.Now()
	c := &s.cores[core]
	lat, ln := s.ensureExclusive(ctx, core, tsw.Line())

	if ln.Data[tsw.Offset()] != old {
		// An enemy changed the TSW (aborted us): revert speculative lines.
		s.tel.Inc(core, telemetry.CtrCommitAborted)
		s.flashAbortLocked(c, core)
		ctx.Advance(lat)
		return CommitAborted
	}
	if checkCST && !c.table.Enemies().Empty() {
		// Unresolved W-R/W-W conflicts: hardware refuses the commit.
		s.stats.CASCommitCSTFails++
		s.tel.Inc(core, telemetry.CtrCommitCSTFail)
		s.fl.Rec(core, s.now, flight.CommitRefused, -1, 0, tsw.Line())
		ctx.Advance(lat)
		return CommitCSTFail
	}
	if checkCST && s.inj.Fire(core, fault.CommitRace) {
		// Injected CAS-Commit interleaving race: a conflicting response
		// arrives in the window between the CST read and the commit point,
		// so the instruction refuses exactly as if the CST had been set.
		// Software's Figure 3 loop must re-run; the runtime's commit-retry
		// budget bounds how long an (injected) streak can spin before the
		// attempt is converted into an abort and fed to the watchdog.
		s.stats.CASCommitCSTFails++
		s.tel.Inc(core, telemetry.CtrCommitCSTFail)
		s.tel.Inc(core, telemetry.CtrFaultInjected)
		s.fl.Rec(core, s.now, flight.CommitRefused, -1, 1, tsw.Line())
		ctx.Advance(lat)
		return CommitCSTFail
	}

	ln.Data[tsw.Offset()] = new
	s.stats.FlashCommits++
	s.tel.Inc(core, telemetry.CtrCommitOK)
	s.tel.Add(core, telemetry.CtrFlashCommitLines, uint64(len(c.l1.FlashCommit())))

	if c.ot != nil && c.ot.Count() == 0 {
		// Every overflowed line was fetched back before commit: nothing to
		// copy, but the Osig must still be scrubbed or its accumulated
		// bits would charge false table walks to every future miss.
		c.ot.Discard()
	}
	if c.ot != nil && c.ot.Count() > 0 {
		// Micro-coded copy-back: committed lines stream from the OT to
		// their natural locations. The committing core overlaps this with
		// useful work, but peers touching the drained lines stall behind
		// it (modeled by the drain window).
		n := c.ot.Count()
		c.ot.SetCommitted()
		s.tel.Add(core, telemetry.CtrOTDrainLine, uint64(n))
		drained := signature.New(s.cfg.Sig)
		c.ot.Drain(func(phys, logical memory.LineAddr, data memory.LineData) {
			s.image.WriteLine(phys, &data)
			s.l2.Touch(phys)
			drained.Insert(phys)
		})
		c.drainSig = drained
		c.drainUntil = ctx.Now() + lat + sim.Time(n)*s.cfg.DrainPerLine
		lat += s.cfg.OTAccess // controller kick-off; streaming is off the critical path
	}

	s.endTxn(c)
	ctx.Advance(lat)
	return CommitOK
}

// AbortFlash implements the abort instruction: it reverts all TMI and TI
// lines, clears the signatures, CSTs, and OT registers, and leaves
// transactional mode. The runtime invokes it from the abort handler.
func (s *System) AbortFlash(ctx *sim.Ctx, core int) {
	ctx.Sync()
	c := &s.cores[core]
	s.flashAbortLocked(c, core)
	ctx.Advance(s.cfg.L1Hit)
}

func (s *System) flashAbortLocked(c *coreState, core int) {
	s.stats.FlashAborts++
	s.tel.Add(core, telemetry.CtrFlashAbortLines, uint64(c.l1.FlashAbort()))
	if c.ot != nil {
		c.ot.Discard()
	}
	s.endTxn(c)
}

// endTxn clears the per-transaction hardware state.
func (s *System) endTxn(c *coreState) {
	c.rsig.Clear()
	c.wsig.Clear()
	c.table.ClearAll()
	c.txnActive = false
	if c.alerts.Marks() > 0 {
		c.l1.ClearAlerts()
	}
	c.alerts.Reset()
}

// ALoad marks the line holding a with the AOU 'A' bit, fetching it if
// absent; a subsequent remote invalidation or update delivers an alert
// (Section 3.4).
func (s *System) ALoad(ctx *sim.Ctx, core int, a memory.Addr) OpResult {
	res := s.Load(ctx, core, a)
	c := &s.cores[core]
	s.tel.Inc(core, telemetry.CtrALoad)
	if ln := c.l1.Lookup(a.Line()); ln != nil {
		if !ln.Alert {
			ln.Alert = true
			c.alerts.MarkAdded()
		}
	} else {
		// The line could not be cached (threatened): conservatively raise
		// the alert immediately so software re-examines the word.
		c.alerts.Enqueue(a.Line())
		s.stats.Alerts++
		s.tel.Inc(core, telemetry.CtrAlert)
		s.fl.Rec(core, s.now, flight.AOUAlert, -1, 0, a.Line())
	}
	return res
}

// AClear removes the A bit from the line holding a, if present.
func (s *System) AClear(core int, a memory.Addr) {
	c := &s.cores[core]
	if ln := c.l1.Lookup(a.Line()); ln != nil && ln.Alert {
		ln.Alert = false
		c.alerts.MarkRemoved()
	}
}

// TakeAlert consumes a pending AOU alert for core, returning the alerted
// line. The runtime polls it at operation boundaries, which models alert
// delivery at the next instruction edge.
func (s *System) TakeAlert(core int) (memory.LineAddr, bool) {
	c := &s.cores[core]
	if s.inj.Fire(core, fault.SpuriousAlert) {
		// Injected spurious delivery: either a duplicate of the last alert
		// (hardware re-raising a trap it already delivered) or an alert on
		// an unrelated line. Software must treat alerts as hints: re-examine
		// the status word and re-arm, never assume one alert == one event.
		s.tel.Inc(core, telemetry.CtrFaultInjected)
		s.stats.Alerts++
		if last, ok := c.alerts.LastDelivered(); ok {
			return last, true
		}
		return 0, true
	}
	return c.alerts.Take()
}

// AlertPending reports whether core has an undelivered alert.
func (s *System) AlertPending(core int) bool { return s.cores[core].alerts.Pending() }

// ForceWord performs a hardware-level coherent write used by trap handlers
// (strong isolation, OS virtualization): it invalidates every cached copy
// of the word's line — firing AOU alerts — and updates the committed image.
// It charges no latency; callers are inside an operation that already paid.
func (s *System) ForceWord(a memory.Addr, v uint64) {
	line := a.Line()
	for r := range s.cores {
		rc := &s.cores[r]
		if rln := rc.l1.Lookup(line); rln != nil {
			if rln.State == cache.Modified {
				s.image.WriteLine(line, &rln.Data)
			}
			s.invalidateLine(rc, r, rln)
		}
	}
	s.image.WriteWord(a, v)
}

// ReadWordRaw returns the current coherent value of a word without timing
// or state effects: it checks M/TMI copies first, then the image. Intended
// for handlers and assertions, not for the simulated-program path.
func (s *System) ReadWordRaw(a memory.Addr) uint64 {
	line := a.Line()
	for r := range s.cores {
		rc := &s.cores[r]
		if rln := rc.l1.Lookup(line); rln != nil && rln.State == cache.Modified {
			return rln.Data[a.Offset()]
		}
	}
	return s.image.ReadWord(a)
}

// SetSigWatch turns FlexWatcher-style local access monitoring on or off for
// core (Table 4a's "activate" instruction).
func (s *System) SetSigWatch(core int, on bool) { s.cores[core].sigWatch = on }

// WatchInsert adds a line to core's read or write signature for monitoring
// purposes (Table 4a's "insert" with Sig = Rsig or Wsig).
func (s *System) WatchInsert(core int, a memory.Addr, write bool) {
	c := &s.cores[core]
	if write {
		c.wsig.Insert(a.Line())
	} else {
		c.rsig.Insert(a.Line())
	}
}

// ClearSigs zeroes core's signatures (Table 4a's "clear").
func (s *System) ClearSigs(core int) {
	c := &s.cores[core]
	c.rsig.Clear()
	c.wsig.Clear()
}

// SaveTxnState captures the hardware transactional state of core for a
// context switch (Section 5): TMI lines move to the overflow table, and the
// signatures, CSTs, and OT are detached and returned. The core is left
// clean, as after an abort instruction, but the speculative state survives
// in the returned OT.
type SavedTxn struct {
	Rsig, Wsig *signature.Sig
	CST        cst.Table
	OT         *overflow.Table
}

// SaveTxnState implements the OS-visible deschedule sequence.
func (s *System) SaveTxnState(ctx *sim.Ctx, core int) *SavedTxn {
	c := &s.cores[core]
	// Move speculative lines into the OT so they survive the cache flush.
	for _, line := range c.l1.TMILines() {
		if c.ot == nil {
			c.ot = overflowNew(s.cfg)
			s.stats.OTAllocs++
		}
		if ln := c.l1.Lookup(line); ln != nil {
			c.ot.Insert(line, line, ln.Data)
			ln.State = cache.Invalid
		}
		s.stats.Overflows++
	}
	saved := &SavedTxn{
		Rsig: c.rsig.Clone(),
		Wsig: c.wsig.Clone(),
		CST:  c.table.Snapshot(),
		OT:   c.ot,
	}
	c.ot = nil
	// Abort instruction: revert remaining speculative lines (TI), clear
	// signatures and CSTs so the next thread starts clean.
	c.l1.FlashAbort()
	s.endTxn(c)
	ctx.Advance(s.cfg.TrapLat)
	return saved
}

// RestoreTxnState reinstates a saved transaction's hardware state on core
// (rescheduling to the same processor, Section 5). Speculative data remains
// in the OT and is fetched back on demand via the Osig.
func (s *System) RestoreTxnState(ctx *sim.Ctx, core int, saved *SavedTxn) {
	c := &s.cores[core]
	c.rsig.CopyFrom(saved.Rsig)
	c.wsig.CopyFrom(saved.Wsig)
	c.table.Restore(saved.CST)
	c.ot = saved.OT
	c.txnActive = true
	ctx.Advance(s.cfg.TrapLat)
}

func overflowNew(cfg Config) *overflow.Table {
	return overflow.New(cfg.OTSets, cfg.OTWays, cfg.Sig)
}

// RaiseAlert enqueues a synthetic AOU alert for core on a's line. The OS
// uses it to virtualize alert-on-update across context switches: a resumed
// thread must re-examine (and re-ALoad) its status word.
func (s *System) RaiseAlert(core int, a memory.Addr) {
	s.cores[core].alerts.Enqueue(a.Line())
	s.stats.Alerts++
	s.tel.Inc(core, telemetry.CtrAlert)
	s.fl.Rec(core, s.now, flight.AOUAlert, -1, 0, a.Line())
}

// RemapLine implements the OS side of a page remap for one line
// (Section 4.1, "Virtual Memory Paging"): when a logical page moves to a
// different physical frame, the OS tests each thread's Rsig, Wsig, and
// Osig for the old address and, where present, adds the new one (Bloom
// filters cannot delete) and retags overflow-table entries.
func (s *System) RemapLine(core int, oldLine, newLine memory.LineAddr) {
	c := &s.cores[core]
	if c.rsig.Member(oldLine) {
		c.rsig.Insert(newLine)
	}
	if c.wsig.Member(oldLine) {
		c.wsig.Insert(newLine)
	}
	if c.ot != nil {
		c.ot.RetagPhysical(oldLine, newLine)
	}
	// Invalidate any cached copy of the old frame: the mapping is gone.
	// TMI data has already been moved to the OT by the unmap flush.
	if ln := c.l1.Lookup(oldLine); ln != nil {
		s.invalidateLine(c, core, ln)
	}
}

// FlushTMIToOT moves core's speculative lines for the given page lines into
// its overflow table (the unmap step of Section 4.1: invalidations
// forwarded to the L1 push TMI lines to the OT where the OS can see them).
func (s *System) FlushTMIToOT(core int, lines []memory.LineAddr) {
	c := &s.cores[core]
	for _, line := range lines {
		ln := c.l1.Lookup(line)
		if ln == nil || ln.State != cache.TMI {
			continue
		}
		if c.ot == nil {
			c.ot = overflowNew(s.cfg)
			s.stats.OTAllocs++
		}
		c.ot.Insert(line, line, ln.Data)
		ln.State = cache.Invalid
		s.stats.Overflows++
	}
}
