package tmesi

import (
	"testing"

	"flextm/internal/cache"
	"flextm/internal/cst"
	"flextm/internal/memory"
	"flextm/internal/sim"
)

// smallCfg shrinks the caches so eviction/overflow paths are exercised.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.L1 = cache.Config{Sets: 4, Ways: 2, VictimSize: 2}
	cfg.L2Sets = 64
	cfg.L2Ways = 4
	cfg.OTSets = 8
	cfg.OTWays = 2
	return cfg
}

// run executes one scripted thread per function against a fresh system.
func run(t *testing.T, cfg Config, scripts ...func(ctx *sim.Ctx, s *System)) *System {
	t.Helper()
	s := New(cfg)
	e := sim.NewEngine()
	for i, f := range scripts {
		f := f
		e.Spawn("core", 0, func(ctx *sim.Ctx) { f(ctx, s) })
		_ = i
	}
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads left blocked", blocked)
	}
	return s
}

func TestStoreLoadSameCore(t *testing.T) {
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 100, 7)
		if v := s.Load(ctx, 0, 100).Val; v != 7 {
			t.Errorf("Load = %d, want 7", v)
		}
	})
	st := s.Stats()
	if st.L1Hits == 0 {
		t.Error("second access should hit in L1")
	}
}

func TestStoreVisibleAcrossCores(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 100, 42) // t=~some cycles; line M in core 0
		ctx.Advance(1000)
		ctx.Sync()
		// Meanwhile core 1 reads at t=500 (before) and t>1000 (after).
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(500)
		if v := s.Load(ctx, 1, 100).Val; v != 42 {
			t.Errorf("core1 Load = %d, want 42 (M line must be flushed on probe)", v)
		}
	})
}

func TestLoadLatencyModel(t *testing.T) {
	cfg := smallCfg()
	run(t, cfg, func(ctx *sim.Ctx, s *System) {
		t0 := ctx.Now()
		s.Load(ctx, 0, 100) // cold: L1 miss, L2 miss -> memory
		coldLat := ctx.Now() - t0
		t1 := ctx.Now()
		s.Load(ctx, 0, 100) // hit
		hitLat := ctx.Now() - t1
		if hitLat != cfg.L1Hit {
			t.Errorf("hit latency = %d, want %d", hitLat, cfg.L1Hit)
		}
		if coldLat < cfg.MemLat {
			t.Errorf("cold latency = %d, want >= %d (memory)", coldLat, cfg.MemLat)
		}
	})
}

func TestTStoreIsolation(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 200, 1) // committed value 1
		s.BeginTxn(0)
		s.TStore(ctx, 0, 200, 99)
		if v := s.TLoad(ctx, 0, 200).Val; v != 99 {
			t.Errorf("own TLoad = %d, want speculative 99", v)
		}
		ctx.Advance(2000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000) // after core0's TStore, before any commit
		if v := s.Load(ctx, 1, 200).Val; v != 1 {
			t.Errorf("remote ordinary Load = %d, want committed 1", v)
		}
		s.BeginTxn(1)
		res := s.TLoad(ctx, 1, 200)
		if res.Val != 1 {
			t.Errorf("remote TLoad = %d, want committed 1", res.Val)
		}
		if len(res.Conflicts) != 1 || res.Conflicts[0].Msg != Threatened || res.Conflicts[0].Responder != 0 {
			t.Errorf("TLoad conflicts = %+v, want Threatened by core 0", res.Conflicts)
		}
		if st := s.LineState(1, memory.Addr(200).Line()); st != cache.TI {
			t.Errorf("threatened TLoad cached in %v, want TI", st)
		}
	})
}

func TestThreatenedOrdinaryLoadUncached(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TStore(ctx, 0, 200, 99)
		ctx.Advance(2000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.Load(ctx, 1, 200)
		if st := s.LineState(1, memory.Addr(200).Line()); st != cache.Invalid {
			t.Errorf("threatened ordinary load cached the line in %v", st)
		}
	})
}

func TestCSTUpdatesOnConflicts(t *testing.T) {
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TStore(ctx, 0, 300, 5) // W(0)
		ctx.Advance(5000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.BeginTxn(1)
		s.TLoad(ctx, 1, 300)     // R(1) vs W(0): 1.R-W={0}, 0.W-R={1}
		s.TStore(ctx, 1, 301, 6) // same line! W(1) vs W(0): W-W both
	})
	if !s.CST(1).Has(cst.RW, 0) {
		t.Error("core1 R-W missing core0")
	}
	if !s.CST(0).Has(cst.WR, 1) {
		t.Error("core0 W-R missing core1")
	}
	if !s.CST(1).Has(cst.WW, 0) || !s.CST(0).Has(cst.WW, 1) {
		t.Error("W-W bits not set on both sides")
	}
}

func TestExposedReadConflict(t *testing.T) {
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TLoad(ctx, 0, 400) // R(0)
		ctx.Advance(5000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.BeginTxn(1)
		res := s.TStore(ctx, 1, 400, 9) // W(1) vs R(0)
		found := false
		for _, c := range res.Conflicts {
			if c.Msg == ExposedRead && c.Responder == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("TStore conflicts = %+v, want Exposed-Read from core 0", res.Conflicts)
		}
	})
	if !s.CST(1).Has(cst.WR, 0) || !s.CST(0).Has(cst.RW, 1) {
		t.Error("CSTs after exposed read wrong")
	}
}

func TestCommitPublishesSpeculativeState(t *testing.T) {
	const tsw = memory.Addr(8) // runtime metadata region
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1) // TSW = active
		s.BeginTxn(0)
		s.TStore(ctx, 0, 500, 77)
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitOK {
			t.Fatalf("CASCommit = %v, want OK", out)
		}
		if st := s.LineState(0, memory.Addr(500).Line()); st != cache.Modified {
			t.Errorf("committed line state %v, want M", st)
		}
		if s.TxnActive(0) {
			t.Error("txn still active after commit")
		}
		ctx.Advance(1000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(2000)
		if v := s.Load(ctx, 1, 500).Val; v != 77 {
			t.Errorf("remote load after commit = %d, want 77", v)
		}
	})
}

func TestCommitFailsWithEnemies(t *testing.T) {
	const tsw = memory.Addr(8)
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		s.TStore(ctx, 0, 500, 77)
		s.CST(0).Set(cst.WW, 1) // pretend core1 conflicted
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitCSTFail {
			t.Fatalf("CASCommit = %v, want CSTFail", out)
		}
		if !s.TxnActive(0) {
			t.Error("CST failure must not end the transaction")
		}
		// Software resolves the conflict (Figure 3 lines 1-3) and retries.
		s.CST(0).Get(cst.WW).CopyAndClear()
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitOK {
			t.Fatalf("retry CASCommit = %v, want OK", out)
		}
	})
}

func TestCommitAbortedWhenTSWChanged(t *testing.T) {
	const tsw = memory.Addr(8)
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		s.TStore(ctx, 0, 500, 77)
		s.ForceWord(tsw, 3) // enemy aborted us
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitAborted {
			t.Fatalf("CASCommit = %v, want Aborted", out)
		}
		if v := s.Load(ctx, 0, 500).Val; v != 0 {
			t.Errorf("speculative value survived abort: %d", v)
		}
	})
}

func TestAbortFlashDiscards(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 600, 10)
		s.BeginTxn(0)
		s.TStore(ctx, 0, 600, 20)
		s.AbortFlash(ctx, 0)
		if v := s.Load(ctx, 0, 600).Val; v != 10 {
			t.Errorf("value after abort = %d, want committed 10", v)
		}
		if !s.Wsig(0).Empty() || !s.Rsig(0).Empty() {
			t.Error("signatures not cleared by abort")
		}
	})
}

func TestAOUAlertOnRemoteWrite(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.ALoad(ctx, 0, 700)
		ctx.Advance(5000)
		ctx.Sync()
		if _, ok := s.TakeAlert(0); !ok {
			t.Error("no alert after remote write to ALoaded line")
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.Store(ctx, 1, 700, 1)
	})
}

func TestAOUNoAlertWithoutConflict(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.ALoad(ctx, 0, 700)
		ctx.Advance(5000)
		ctx.Sync()
		if _, ok := s.TakeAlert(0); ok {
			t.Error("spurious alert")
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.Load(ctx, 1, 700) // reads don't alert
	})
}

func TestAClearSuppressesAlert(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.ALoad(ctx, 0, 700)
		s.AClear(0, 700)
		ctx.Advance(5000)
		ctx.Sync()
		if _, ok := s.TakeAlert(0); ok {
			t.Error("alert fired after AClear")
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.Store(ctx, 1, 700, 1)
	})
}

func TestStrongIsolationAbortsConflictingTxn(t *testing.T) {
	var victims []int
	s := New(smallCfg())
	s.SetStrongIsolationHook(func(v int) { victims = append(victims, v) })
	e := sim.NewEngine()
	e.Spawn("txn", 0, func(ctx *sim.Ctx) {
		s.BeginTxn(0)
		s.TLoad(ctx, 0, 800)
		ctx.Advance(5000)
		ctx.Sync()
	})
	e.Spawn("plain", 0, func(ctx *sim.Ctx) {
		ctx.Advance(1000)
		s.Store(ctx, 1, 800, 5)
	})
	e.Run()
	if len(victims) != 1 || victims[0] != 0 {
		t.Fatalf("victims = %v, want [0]", victims)
	}
	if s.Stats().StrongIsolationAborts != 1 {
		t.Fatalf("StrongIsolationAborts = %d", s.Stats().StrongIsolationAborts)
	}
}

func TestOverflowSpillAndFetchBack(t *testing.T) {
	cfg := smallCfg()
	s := run(t, cfg, func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		// 4 sets x 2 ways + 2 victim entries = 10 lines capacity; write 20.
		for i := 0; i < 20; i++ {
			a := memory.Addr(10000 + i*memory.LineWords)
			s.TStore(ctx, 0, a, uint64(i))
		}
		// Every speculative value must still be readable.
		for i := 0; i < 20; i++ {
			a := memory.Addr(10000 + i*memory.LineWords)
			if v := s.TLoad(ctx, 0, a).Val; v != uint64(i) {
				t.Errorf("TLoad(%d) = %d after overflow, want %d", i, v, i)
			}
		}
	})
	if s.Stats().Overflows == 0 || s.Stats().OTFetches == 0 || s.Stats().OTAllocs != 1 {
		t.Fatalf("overflow stats = %+v", s.Stats())
	}
}

func TestOverflowCommitPublishesAll(t *testing.T) {
	const tsw = memory.Addr(8)
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		for i := 0; i < 20; i++ {
			s.TStore(ctx, 0, memory.Addr(10000+i*memory.LineWords), uint64(i+1))
		}
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitOK {
			t.Fatalf("CASCommit = %v", out)
		}
	})
	for i := 0; i < 20; i++ {
		a := memory.Addr(10000 + i*memory.LineWords)
		if v := s.Image().ReadWord(a); v != uint64(i+1) {
			// Lines still cached M are fine too; check coherent view.
			if v2 := s.ReadWordRaw(a); v2 != uint64(i+1) {
				t.Fatalf("word %d = %d after commit, want %d", i, v2, i+1)
			}
		}
	}
}

func TestOverflowAbortDiscardsAll(t *testing.T) {
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		for i := 0; i < 20; i++ {
			s.TStore(ctx, 0, memory.Addr(10000+i*memory.LineWords), 99)
		}
		s.AbortFlash(ctx, 0)
	})
	for i := 0; i < 20; i++ {
		if v := s.ReadWordRaw(memory.Addr(10000 + i*memory.LineWords)); v != 0 {
			t.Fatalf("speculative word %d leaked: %d", i, v)
		}
	}
	if ot := s.OT(0); ot != nil && ot.Count() != 0 {
		t.Fatal("OT not discarded on abort")
	}
}

func TestMultipleOwnersBothBuffer(t *testing.T) {
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TStore(ctx, 0, 900, 10)
		ctx.Advance(5000)
		ctx.Sync()
		if v := s.TLoad(ctx, 0, 900).Val; v != 10 {
			t.Errorf("core0 speculative value = %d, want 10", v)
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.BeginTxn(1)
		s.TStore(ctx, 1, 900, 20)
		if v := s.TLoad(ctx, 1, 900).Val; v != 20 {
			t.Errorf("core1 speculative value = %d, want 20", v)
		}
	})
	if s.LineState(0, memory.Addr(900).Line()) != cache.TMI {
		t.Error("core0 lost its TMI copy")
	}
	if s.LineState(1, memory.Addr(900).Line()) != cache.TMI {
		t.Error("core1 did not get a TMI copy")
	}
	if s.ReadWordRaw(900) != 0 {
		t.Error("speculative value leaked to committed state")
	}
}

func TestSummarySignatureTrap(t *testing.T) {
	cfg := smallCfg()
	s := New(cfg)
	ws := s.Wsig(0).Clone() // stand-in: empty then insert line
	ws.Insert(memory.Addr(1000).Line())
	var trapped []memory.LineAddr
	s.InstallSummary(nil, ws, func(req int, line memory.LineAddr, write bool) []Conflict {
		trapped = append(trapped, line)
		return []Conflict{{Responder: 3, Msg: Threatened, Suspended: true}}
	})
	e := sim.NewEngine()
	e.Spawn("t", 0, func(ctx *sim.Ctx) {
		s.BeginTxn(0)
		res := s.TLoad(ctx, 0, 1000)
		if len(res.Conflicts) == 0 || !res.Conflicts[0].Suspended {
			t.Errorf("conflicts = %+v, want suspended conflict", res.Conflicts)
		}
		if st := s.LineState(0, memory.Addr(1000).Line()); st != cache.TI {
			t.Errorf("line state %v, want TI (threatened by suspended txn)", st)
		}
	})
	e.Run()
	if len(trapped) != 1 || trapped[0] != memory.Addr(1000).Line() {
		t.Fatalf("trapped = %v", trapped)
	}
	if s.Stats().SummaryTraps != 1 {
		t.Fatalf("SummaryTraps = %d", s.Stats().SummaryTraps)
	}
}

func TestSaveRestoreTxnState(t *testing.T) {
	const tsw = memory.Addr(8)
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		s.TStore(ctx, 0, 1100, 55)
		s.CST(0).Set(cst.RW, 2)
		saved := s.SaveTxnState(ctx, 0)
		if s.TxnActive(0) || !s.Wsig(0).Empty() {
			t.Error("core not clean after save")
		}
		if s.ReadWordRaw(1100) != 0 {
			t.Error("speculative state leaked during save")
		}
		s.RestoreTxnState(ctx, 0, saved)
		if !s.TxnActive(0) || !s.CST(0).Has(cst.RW, 2) {
			t.Error("restore lost CST/mode")
		}
		if v := s.TLoad(ctx, 0, 1100).Val; v != 55 {
			t.Errorf("TLoad after restore = %d, want 55 (from OT)", v)
		}
		if out := s.CASCommit(ctx, 0, tsw, 1, 2); out != CommitOK {
			t.Fatalf("CASCommit after restore = %v", out)
		}
		if s.ReadWordRaw(1100) != 55 {
			t.Error("restored txn's commit lost data")
		}
	})
}

func TestDrainWindowStallsPeers(t *testing.T) {
	const tsw = memory.Addr(8)
	cfg := smallCfg()
	cfg.DrainPerLine = 100
	var commitDone sim.Time
	run(t, cfg, func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, tsw, 1)
		s.BeginTxn(0)
		for i := 0; i < 20; i++ {
			s.TStore(ctx, 0, memory.Addr(10000+i*memory.LineWords), 1)
		}
		s.CASCommit(ctx, 0, tsw, 1, 2)
		commitDone = ctx.Now()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(100000)
		ctx.Sync()
		// Well after commit: no stall.
		t0 := ctx.Now()
		s.Load(ctx, 1, 10000)
		if lat := ctx.Now() - t0; lat > 1000 {
			t.Errorf("late access stalled %d cycles", lat)
		}
		_ = commitDone
	})
}

func TestWatchHitOnActivatedSignature(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.WatchInsert(0, 1200, true)  // write watch
		s.WatchInsert(0, 1300, false) // read watch
		s.SetSigWatch(0, true)
		if !s.Store(ctx, 0, 1200, 1).WatchHit {
			t.Error("watched store did not hit")
		}
		if s.Load(ctx, 0, 1200).WatchHit {
			t.Error("load hit a write-only watch")
		}
		if !s.Load(ctx, 0, 1300).WatchHit {
			t.Error("watched load did not hit")
		}
		if s.Load(ctx, 0, 5000).WatchHit {
			t.Error("unwatched load hit")
		}
		s.SetSigWatch(0, false)
		if s.Store(ctx, 0, 1200, 2).WatchHit {
			t.Error("hit after deactivation")
		}
		s.ClearSigs(0)
		s.SetSigWatch(0, true)
		if s.Store(ctx, 0, 1200, 3).WatchHit {
			t.Error("hit after clear")
		}
	})
}

func TestCASSemantics(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 1300, 5)
		if _, ok := s.CAS(ctx, 0, 1300, 4, 9); ok {
			t.Error("CAS succeeded with wrong expected value")
		}
		res, ok := s.CAS(ctx, 0, 1300, 5, 9)
		if !ok || res.Val != 5 {
			t.Errorf("CAS failed: ok=%v val=%d", ok, res.Val)
		}
		if v := s.Load(ctx, 0, 1300).Val; v != 9 {
			t.Errorf("value after CAS = %d, want 9", v)
		}
	})
}

func TestFetchAdd(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 1400, 10)
		if old := s.FetchAdd(ctx, 0, 1400, 5); old != 10 {
			t.Errorf("FetchAdd returned %d, want 10", old)
		}
		if v := s.Load(ctx, 0, 1400).Val; v != 15 {
			t.Errorf("value = %d, want 15", v)
		}
	})
}

func TestExclusiveThenSharedStates(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Load(ctx, 0, 1500)
		if st := s.LineState(0, memory.Addr(1500).Line()); st != cache.Exclusive {
			t.Errorf("sole reader state %v, want E", st)
		}
		ctx.Advance(2000)
		ctx.Sync()
		if st := s.LineState(0, memory.Addr(1500).Line()); st != cache.Shared {
			t.Errorf("after remote read state %v, want S", st)
		}
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.Load(ctx, 1, 1500)
		if st := s.LineState(1, memory.Addr(1500).Line()); st != cache.Shared {
			t.Errorf("second reader state %v, want S", st)
		}
	})
}

func TestSilentEagerUpgradeFromMWritesBack(t *testing.T) {
	run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.Store(ctx, 0, 1600, 33) // M
		s.BeginTxn(0)
		s.TStore(ctx, 0, 1600, 44) // first TStore to M line: writeback
		// The committed image must hold the latest non-speculative value so
		// remote Loads during the transaction see 33.
		if v := s.Image().ReadWord(1600); v != 33 {
			t.Errorf("image = %d, want 33 after M->TMI writeback", v)
		}
	})
}

func TestDeterministicStats(t *testing.T) {
	mk := func() Stats {
		s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
			s.BeginTxn(0)
			for i := 0; i < 50; i++ {
				s.TStore(ctx, 0, memory.Addr(2000+i*8), uint64(i))
				s.TLoad(ctx, 0, memory.Addr(2000+((i*37)%50)*8))
			}
			s.AbortFlash(ctx, 0)
		}, func(ctx *sim.Ctx, s *System) {
			for i := 0; i < 50; i++ {
				s.Load(ctx, 1, memory.Addr(2000+i*16))
			}
		})
		return s.Stats()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", a, b)
	}
}
