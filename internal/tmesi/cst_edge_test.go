package tmesi

import (
	"testing"

	"flextm/internal/cst"
	"flextm/internal/memory"
	"flextm/internal/sim"
)

// checkNoSelfBits fails if any core's CST names the core itself. The probe
// loop skips the requester (a processor does not respond to its own request),
// so a self bit can only come from a bookkeeping bug — and the Commit()
// routine would then try to abort its own committing transaction.
func checkNoSelfBits(t *testing.T, s *System, cores int) {
	t.Helper()
	for c := 0; c < cores; c++ {
		for _, k := range []cst.Kind{cst.RW, cst.WR, cst.WW} {
			if s.CST(c).Has(k, c) {
				t.Errorf("core %d's %v names itself: %s", c, k, s.CST(c).String())
			}
		}
	}
}

// TestCSTNeverNamesSelf drives every conflict flavor — write/read, write/write,
// read/write — plus heavy same-core re-access (the requester's own signatures
// contain every probed line, the classic way to manufacture a self conflict)
// and checks no CST ever sets its own processor's bit.
func TestCSTNeverNamesSelf(t *testing.T) {
	cfg := smallCfg()
	s := run(t, cfg, func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		// Re-access our own read and write sets: rsig/wsig both contain
		// these lines when the later requests probe.
		for i := 0; i < 8; i++ {
			a := memory.Addr(600 + i*memory.LineWords)
			s.TStore(ctx, 0, a, uint64(i))
			s.TLoad(ctx, 0, a)
			s.TStore(ctx, 0, a, uint64(i)+1)
		}
		ctx.Advance(4000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.BeginTxn(1)
		s.TLoad(ctx, 1, 600)     // R vs W(0)
		s.TStore(ctx, 1, 608, 9) // W vs W(0)
		s.TLoad(ctx, 1, 608)     // read own speculative write
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(2000)
		s.BeginTxn(2)
		s.TStore(ctx, 2, 600, 3) // W vs W(0) and vs R(1)
		s.TLoad(ctx, 2, 600)
	})
	checkNoSelfBits(t, s, cfg.Cores)
	// The cross-core conflicts themselves must still have registered.
	if s.CST(1).Get(cst.RW).Empty() && s.CST(1).Get(cst.WW).Empty() {
		t.Error("core 1 saw no conflicts at all; the self-bit check proved nothing")
	}
}

// TestCSTScrubVsConcurrentCommit exercises the Section 3.6 scrub against a
// concurrent Figure 3 commit at the register level, through the system's
// software-visible CST interface: the committer's copy-and-clear snapshots
// the pre-scrub state, the late scrub is a no-op on the cleared register,
// and a scrub landing before the copy-and-clear removes the reader from the
// enemy set. Either serialization leaves the tables consistent.
func TestCSTScrubVsConcurrentCommit(t *testing.T) {
	s := run(t, smallCfg(), func(ctx *sim.Ctx, s *System) {
		s.BeginTxn(0)
		s.TStore(ctx, 0, 700, 1)
		ctx.Advance(4000)
		ctx.Sync()
	}, func(ctx *sim.Ctx, s *System) {
		ctx.Advance(1000)
		s.BeginTxn(1)
		s.TLoad(ctx, 1, 700) // Threatened: 0.W-R={1}, 1.R-W={0}
	})
	if !s.CST(0).Has(cst.WR, 1) || !s.CST(1).Has(cst.RW, 0) {
		t.Fatalf("setup conflict missing: core0 %s / core1 %s",
			s.CST(0).String(), s.CST(1).String())
	}

	// Serialization A: writer's commit copy-and-clears W-R first, then the
	// reader's scrub arrives late. The snapshot names the reader (who will
	// absorb the abort); the late scrub must be a harmless no-op.
	snap := s.CST(0).Get(cst.WR).CopyAndClear()
	if !snap.Has(1) {
		t.Fatal("commit snapshot lost the reader")
	}
	s.CST(0).Get(cst.WR).Clear(1) // reader's scrub, losing the race
	if !s.CST(0).Get(cst.WR).Empty() {
		t.Fatalf("late scrub left state: %s", s.CST(0).String())
	}

	// Serialization B: re-arm the bit, scrub first, then commit. The
	// snapshot must now be empty — the reader escapes the enemy set.
	s.CST(0).Set(cst.WR, 1)
	s.CST(0).Get(cst.WR).Clear(1) // reader's scrub wins the race
	if snap := s.CST(0).Get(cst.WR).CopyAndClear(); !snap.Empty() {
		t.Fatalf("post-scrub commit snapshot = %v, want empty", snap.Procs())
	}
	// The reader's own R-W is untouched by either serialization: the scrub
	// targets remote W-R registers only.
	if !s.CST(1).Has(cst.RW, 0) {
		t.Error("reader's R-W lost core 0")
	}
	checkNoSelfBits(t, s, smallCfg().Cores)
}
