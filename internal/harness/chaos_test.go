package harness

import (
	"reflect"
	"testing"

	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

func smallChaosSpec() ChaosSpec {
	spec := DefaultChaosSpec()
	spec.Threads = 5
	spec.Rounds = 25
	spec.Rates = []float64{0.10}
	return spec
}

// TestChaosCampaignInvariants runs every fault class (including the
// preemption storm) at the acceptance rate and requires every invariant to
// hold in every cell, with no thread stuck past its liveness budget.
func TestChaosCampaignInvariants(t *testing.T) {
	res := ChaosCampaign(smallChaosSpec())
	for _, cell := range res.Cells {
		for _, v := range cell.Violations {
			t.Errorf("%s@%.2f/%s: %s", cell.Class, cell.Rate, cell.Mode, v)
		}
		if cell.Injected == 0 {
			t.Errorf("%s@%.2f/%s: class never fired", cell.Class, cell.Rate, cell.Mode)
		}
		if cell.Commits == 0 {
			t.Errorf("%s@%.2f/%s: no commits", cell.Class, cell.Rate, cell.Mode)
		}
	}
	if !res.Ok() {
		t.Fatalf("%d invariant violations", res.Violations)
	}
}

// TestChaosCampaignDeterministic: the same spec must reproduce the entire
// campaign bit-for-bit — fault schedules, abort counts, escalation
// decisions, and cycle counts.
func TestChaosCampaignDeterministic(t *testing.T) {
	spec := smallChaosSpec()
	spec.Classes = []fault.Class{fault.CommitRace, fault.AlertLoss, fault.Preempt}
	a, b := ChaosCampaign(spec), ChaosCampaign(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical campaigns diverged:\n  run1 = %+v\n  run2 = %+v", a, b)
	}
}

// TestRunWithFaults wires fault injection through the standard harness
// entry point: a faulty run must still verify its workload and report the
// injector's activity.
func TestRunWithFaults(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	live := core.Liveness{MaxConsecAborts: 8, MaxStallCycles: 2_000_000, MaxCommitRetries: 16}
	res, err := Run(RunConfig{
		System:       FlexTMLazy,
		Workload:     f,
		Threads:      4,
		OpsPerThread: 50,
		Machine:      tmesi.DefaultConfig(),
		Verify:       true,
		Faults:       fault.Config{Seed: 5}.WithRate(fault.CommitRace, 0.5),
		Liveness:     &live,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultReport == nil || res.FaultReport.Total == 0 {
		t.Fatalf("fault report missing or empty: %+v", res.FaultReport)
	}
	if res.Commits == 0 {
		t.Fatal("no commits under fault injection")
	}
}
