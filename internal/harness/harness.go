// Package harness runs the paper's experiments: it instantiates a machine,
// a TM runtime, and a workload, executes a fixed number of operations per
// thread, and reports throughput normalized to single-thread coarse-grain
// locks — the metric of Figures 4 and 5.
package harness

import (
	"fmt"

	"flextm/internal/baselines/bulk"
	"flextm/internal/baselines/cgl"
	"flextm/internal/baselines/logtm"
	"flextm/internal/baselines/rstm"
	"flextm/internal/baselines/rtmf"
	"flextm/internal/baselines/tl2"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/governor"
	"flextm/internal/observatory"
	"flextm/internal/oracle"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
	"flextm/internal/workloads"
)

// SystemName identifies a runtime configuration.
type SystemName string

// The systems of the paper's evaluation (Section 7.2).
const (
	CGL         SystemName = "CGL"
	FlexTMEager SystemName = "FlexTM(Eager)"
	FlexTMLazy  SystemName = "FlexTM(Lazy)"
	RTMF        SystemName = "RTM-F"
	RSTM        SystemName = "RSTM"
	TL2         SystemName = "TL2"
	// LogTM is an extension baseline (eager versioning, stall-based
	// conflicts, no remote aborts) for the FlexTM-vs-LogTM comparison.
	LogTM SystemName = "LogTM"
	// Bulk is an extension baseline (lazy with a global commit token and
	// write-signature broadcast) demonstrating the serialized-commit cost
	// FlexTM's CSTs remove.
	Bulk SystemName = "Bulk"
)

// NewRuntime builds the named runtime over sys. All contended systems use
// the Polka contention manager, as in the paper.
func NewRuntime(name SystemName, sys *tmesi.System) (tmapi.Runtime, error) {
	switch name {
	case CGL:
		return cgl.New(sys), nil
	case FlexTMEager:
		return core.New(sys, core.Eager, cm.NewPolka()), nil
	case FlexTMLazy:
		return core.New(sys, core.Lazy, cm.NewPolka()), nil
	case RTMF:
		return rtmf.New(sys, cm.NewPolka()), nil
	case RSTM:
		return rstm.New(sys, cm.NewPolka()), nil
	case TL2:
		return tl2.New(sys), nil
	case LogTM:
		return logtm.New(sys), nil
	case Bulk:
		return bulk.New(sys), nil
	}
	return nil, fmt.Errorf("harness: unknown system %q", name)
}

// RunConfig describes one data point.
type RunConfig struct {
	System       SystemName
	Workload     workloads.Factory
	Threads      int
	OpsPerThread int
	Machine      tmesi.Config
	Verify       bool
	// WarmupOps is the total untimed operation count, divided among the
	// threads, before the measured region (defaults to DefaultWarmup).
	WarmupOps int
	// Tracer, if non-nil, records transaction-level events (FlexTM
	// systems only; other runtimes ignore it).
	Tracer *trace.Recorder
	// Metrics attaches a telemetry registry to the machine before the run;
	// the run's counter snapshot is returned in Result.Telemetry. Off by
	// default: instrumentation sites then see a nil registry and pay only a
	// branch.
	Metrics bool
	// Flight attaches a flight recorder to the machine before the run; the
	// recorder (rings intact) is returned in Result.Flight for post-mortem
	// conflict-graph analysis. Off by default, like Metrics.
	Flight bool
	// FlightPerCore overrides the ring depth per core (0 selects
	// flight.DefaultPerCore).
	FlightPerCore int
	// YieldTo, if non-nil, is invoked by FlexTM threads when a transaction
	// aborts, before retrying (the multiprogramming experiment's
	// user-level yield).
	YieldTo func(th tmapi.Thread)
	// Faults, when any rate is non-zero, attaches a deterministic fault
	// injector to the machine. The schedule is a pure function of
	// (Faults.Seed, class, per-class sequence index), so identical configs
	// replay identical fault campaigns.
	Faults fault.Config
	// Liveness, if non-nil, overrides the FlexTM watchdog budgets (other
	// runtimes ignore it).
	Liveness *core.Liveness
	// Oracle attaches the serializability oracle (FlexTM systems only): the
	// run's operation log is checked offline and the verdict returned in
	// Result.OracleReport. Off by default — recording grows with the run.
	Oracle bool
	// Observe, if non-nil, attaches the observation plane: a snapshot pump
	// runs as its own simulated thread, sampling telemetry and the flight
	// recorder every pump interval of virtual time and publishing frames to
	// the pump's bus. Forces Metrics and Flight on — the pump has nothing to
	// observe without them. Observation never perturbs the workload threads'
	// schedule, so observed and unobserved runs produce identical results.
	Observe *observatory.Pump
	// Govern, if non-nil, attaches the resilience governor (FlexTM systems
	// only): it runs as its own simulated thread right behind the pump,
	// consuming each published frame and walking its mitigation ladder.
	// Forces observation on — a pump (and bus) are created when Observe is
	// nil. The governor's transitions are available on it after the run.
	Govern *governor.Governor
}

// DefaultOps is the per-thread operation count used by the paper-replica
// sweeps; it balances statistical stability with run time.
const DefaultOps = 300

// DefaultWarmup is the total untimed operation count (divided among the
// threads) run before the measured region. The paper warms the data
// structure before timing; a fixed *total* keeps cache warmth comparable
// across thread counts, so the timed region measures steady state at every
// point of a sweep.
const DefaultWarmup = 1024

// Result is the outcome of one run.
type Result struct {
	System   SystemName
	Workload string
	Threads  int

	Commits uint64
	Aborts  uint64
	Cycles  sim.Time
	// Throughput is transactions per million cycles (Figure 4's y-axis
	// before normalization).
	Throughput float64
	// MedianConflicts and MaxConflicts summarize the CST degree per
	// committed transaction (Figure 4's table; FlexTM only).
	MedianConflicts int
	MaxConflicts    int

	Machine tmesi.Stats

	// Telemetry is the run's per-mechanism counter snapshot; nil unless
	// RunConfig.Metrics was set.
	Telemetry *telemetry.Snapshot

	// Flight is the run's flight recorder, rings intact; nil unless
	// RunConfig.Flight was set. Snapshot + conflictgraph.Analyze turn it
	// into a contention profile.
	Flight *flight.Recorder

	// Escalations counts Atomic sections finished in serialized-irrevocable
	// fallback mode (FlexTM only).
	Escalations uint64
	// FaultReport summarizes injected faults; nil unless RunConfig.Faults
	// enabled any class.
	FaultReport *fault.Report

	// OracleReport is the serializability verdict over the run's operation
	// log; nil unless RunConfig.Oracle was set on a FlexTM system. A run
	// with violations is returned (not errored) so callers can print the
	// witness histories before deciding to fail.
	OracleReport *oracle.Report
}

// Run executes one configuration and returns its result.
func Run(rc RunConfig) (Result, error) {
	if rc.Threads <= 0 || rc.Threads > rc.Machine.Cores {
		return Result{}, fmt.Errorf("harness: %d threads on %d cores", rc.Threads, rc.Machine.Cores)
	}
	ops := rc.OpsPerThread
	if ops == 0 {
		ops = DefaultOps
	}
	warmupTotal := rc.WarmupOps
	if warmupTotal == 0 {
		warmupTotal = DefaultWarmup
	}
	warmup := (warmupTotal + rc.Threads - 1) / rc.Threads
	if rc.Govern != nil && rc.Observe == nil {
		// The governor feeds on published frames; give it a private
		// observation plane when the caller did not attach one.
		rc.Observe = observatory.NewPump(observatory.Config{Bus: observatory.NewBus()})
	}
	if rc.Govern != nil && rc.Observe.Bus() == nil {
		return Result{}, fmt.Errorf("harness: governor requires a pump with a bus")
	}
	if rc.Observe != nil {
		rc.Metrics = true
		rc.Flight = true
	}
	sys := tmesi.New(rc.Machine)
	if rc.Metrics {
		// Attach before NewRuntime: the runtime captures the registry (and
		// the signatures switch into audit mode) at construction.
		sys.SetTelemetry(telemetry.New(rc.Machine.Cores))
	}
	if rc.Flight {
		// Attach before NewRuntime for the same reason as telemetry.
		sys.SetFlight(flight.New(rc.Machine.Cores, rc.FlightPerCore))
	}
	var inj *fault.Injector
	if rc.Faults.Any() {
		inj = fault.NewInjector(rc.Faults)
		sys.SetFaultInjector(inj)
	}
	rt, err := NewRuntime(rc.System, sys)
	if err != nil {
		return Result{}, err
	}
	var orc *oracle.Recorder
	if fx, ok := rt.(*core.Runtime); ok {
		if rc.YieldTo != nil {
			fx.OnAbortYield = func(th *core.Thread) { rc.YieldTo(th) }
		}
		fx.Tracer = rc.Tracer
		if rc.Liveness != nil {
			fx.SetLiveness(*rc.Liveness)
		}
		if rc.Oracle {
			orc = oracle.NewRecorder()
			fx.SetOracle(orc)
		}
		if rc.Govern != nil {
			rc.Govern.Bind(fx, rc.Threads)
			rc.Observe.SetAnnotator(rc.Govern.Annotate)
		}
	} else if rc.Govern != nil {
		return Result{}, fmt.Errorf("harness: governor requires a FlexTM runtime, not %s", rc.System)
	}
	env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
	w := rc.Workload.New()
	w.Setup(env)

	e := sim.NewEngine()
	var workers []*sim.Ctx
	starts := make([]sim.Time, rc.Threads)
	ends := make([]sim.Time, rc.Threads)
	for i := 0; i < rc.Threads; i++ {
		coreID := i
		workers = append(workers, e.Spawn(fmt.Sprintf("%s-%d", w.Name(), i), 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, coreID)
			for j := 0; j < warmup; j++ {
				w.Op(th)
			}
			starts[coreID] = ctx.Now()
			for j := 0; j < ops; j++ {
				w.Op(th)
			}
			ends[coreID] = ctx.Now()
		}))
	}
	if rc.Observe != nil {
		rc.Observe.Bind(sys.Telemetry(), sys.Flight(), observatory.Meta{
			System:   string(rc.System),
			Workload: w.Name(),
			Threads:  rc.Threads,
			Cores:    rc.Machine.Cores,
		})
		// The pump is an ordinary simulated thread that advances in
		// interval-sized steps and samples whenever it holds the virtual
		// CPU, so sampling is deterministic and cannot perturb the workload
		// threads' schedule. It stops as soon as every worker has finished
		// (or blocked — a wedged run must not keep the engine alive).
		iv := rc.Observe.Interval()
		e.Spawn("observatory", 0, func(ctx *sim.Ctx) {
			for {
				live := false
				for _, wc := range workers {
					if !wc.Done() {
						live = true
						break
					}
				}
				if !live {
					break
				}
				ctx.Advance(iv)
				ctx.Sync()
				rc.Observe.Tick(ctx.Now())
			}
			rc.Observe.Finish(ctx.Now())
		})
	}
	if rc.Govern != nil {
		// The governor paces itself by the pump's interval and is spawned
		// after it: at every shared virtual instant the engine resumes
		// equal-time threads in spawn order, so the pump publishes frame k
		// before the governor reads it. Observe consumes no randomness and
		// issues no simulated traffic — every mitigation is a Go-side flip —
		// so a governed run's schedule diverges from the ungoverned one only
		// through the mitigations themselves.
		bus := rc.Observe.Bus()
		iv := rc.Observe.Interval()
		e.Spawn("governor", 0, func(ctx *sim.Ctx) {
			for {
				live := false
				for _, wc := range workers {
					if !wc.Done() {
						live = true
						break
					}
				}
				if !live {
					break
				}
				ctx.Advance(iv)
				ctx.Sync()
				rc.Govern.Observe(bus.Latest())
			}
		})
	}
	if blocked := e.Run(); blocked != 0 {
		return Result{}, fmt.Errorf("harness: %d threads blocked", blocked)
	}
	if rc.Verify {
		if err := w.Verify(env); err != nil {
			return Result{}, fmt.Errorf("harness: %s on %s failed verification: %w",
				w.Name(), rc.System, err)
		}
	}

	st := rt.Stats()
	// Makespan over the workload threads only: the observatory pump's clock
	// can overshoot the last worker by up to one interval, and observation
	// must not change the reported run length.
	var makespan sim.Time
	for _, wc := range workers {
		if wc.Now() > makespan {
			makespan = wc.Now()
		}
	}
	res := Result{
		System:   rc.System,
		Workload: w.Name(),
		Threads:  rc.Threads,
		Commits:  st.Commits,
		Aborts:   st.Aborts,
		Cycles:   makespan,
		Machine:  sys.Stats(),
	}
	res.Escalations = st.Escalations
	res.Flight = sys.Flight()
	if inj != nil {
		rep := inj.Report()
		res.FaultReport = &rep
	}
	if orc != nil {
		res.OracleReport = oracle.Check(orc.History(), oracle.Options{})
	}
	// System throughput: all timed transactions over the global window in
	// which they executed (first thread's timed start to last thread's
	// end). A fully serialized workload yields ~1x regardless of thread
	// count; a perfectly parallel one yields ~Nx.
	windowStart, windowEnd := starts[0], ends[0]
	for i := 1; i < rc.Threads; i++ {
		if starts[i] < windowStart {
			windowStart = starts[i]
		}
		if ends[i] > windowEnd {
			windowEnd = ends[i]
		}
	}
	if windowEnd > windowStart {
		res.Throughput = float64(rc.Threads*ops) / float64(windowEnd-windowStart) * 1e6
	}
	res.MedianConflicts, res.MaxConflicts = st.MedianMaxConflicts()
	if tel := sys.Telemetry(); tel != nil {
		snap := tel.Snapshot()
		res.Telemetry = &snap
	}
	return res, nil
}

// Baseline runs single-thread CGL for the workload and returns its
// throughput, the normalization basis of every plot.
func Baseline(w workloads.Factory, machine tmesi.Config, ops int) (float64, error) {
	res, err := Run(RunConfig{
		System: CGL, Workload: w, Threads: 1, OpsPerThread: ops,
		Machine: machine, Verify: true,
	})
	if err != nil {
		return 0, err
	}
	if res.Throughput == 0 {
		return 0, fmt.Errorf("harness: zero baseline throughput for %s", w.Name)
	}
	return res.Throughput, nil
}
