package harness

import (
	"reflect"
	"testing"

	"flextm/internal/conflictgraph"
	"flextm/internal/flightql"
)

// TestLivelockProbeDetectsAbortCycle is the profiler's acceptance test: a
// deliberately induced dueling livelock must (a) terminate through the
// watchdog's serialized fallback, (b) produce a watchdog flight dump, and
// (c) have its dump classified as an abort cycle by the conflict-graph
// analyzer.
func TestLivelockProbeDetectsAbortCycle(t *testing.T) {
	rep, out, err := LivelockProbe(1)
	if err != nil {
		t.Fatalf("LivelockProbe: %v", err)
	}
	if out.Commits == 0 {
		t.Fatal("probe made no progress")
	}
	// The duel must have happened: the watchdog dump necessarily contains
	// the consecutive aborts that tripped it.
	flightql.Assert(t, out.Recs, "filter kind == abort | expect count > 0")
	flightql.Assert(t, out.Recs, "filter kind == watchdog-trip | expect count >= 1")
	if out.Escalations == 0 {
		t.Fatal("probe never escalated — the duel resolved optimistically, watchdog untested")
	}
	if !out.Dumped {
		t.Fatal("watchdog trip did not produce a flight dump")
	}
	if !rep.Has(conflictgraph.AbortCycle) {
		t.Fatalf("dueling livelock not classified as abort cycle; pathologies: %+v\nper-core: %+v\nabort edges: %+v",
			rep.Pathologies, rep.PerCore, rep.AbortEdges)
	}
	// The cycle must name both duelists.
	for _, p := range rep.Pathologies {
		if p.Kind == conflictgraph.AbortCycle {
			if len(p.Cores) != 2 || p.Cores[0] != 0 || p.Cores[1] != 1 {
				t.Fatalf("cycle cores = %v, want [0 1]", p.Cores)
			}
		}
	}
}

// TestLivelockProbeIsDeterministic: same seed, same outcome — the probe is
// usable as a CI regression gate.
func TestLivelockProbeIsDeterministic(t *testing.T) {
	r1, o1, err1 := LivelockProbe(7)
	r2, o2, err2 := LivelockProbe(7)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("outcomes differ: %+v vs %+v", o1, o2)
	}
	if r1.Commits != r2.Commits || r1.Aborts != r2.Aborts || len(r1.Pathologies) != len(r2.Pathologies) {
		t.Fatalf("reports differ: %+v vs %+v", r1, r2)
	}
}
