package harness

import (
	"fmt"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/conflictgraph"
	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/oracle"
	"flextm/internal/osmodel"
	"flextm/internal/sim"
	"flextm/internal/sweepexec"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// ChaosSpec parameterizes a fault-injection campaign: each (class, rate,
// mode) cell runs the conservation workload on a tiny machine with that
// fault class injected, under a tight liveness policy, and checks the
// chaos invariants. The whole campaign is a pure function of the spec:
// identical specs produce bit-identical ChaosResults.
type ChaosSpec struct {
	Classes []fault.Class
	Rates   []float64
	Modes   []core.Mode
	// Threads is both the software thread count and the core count.
	Threads int
	// Accounts is the number of shared cells; Initial their starting value.
	Accounts int
	Initial  uint64
	// Rounds is the per-thread operation count.
	Rounds int
	Seed   uint64
	// Liveness is the watchdog policy under test (tight enough that fault
	// storms actually trip it).
	Liveness core.Liveness
	// Quantum is the preemption-storm tick: every Quantum cycles the storm
	// driver rolls the Preempt class and, on a hit, suspends a victim core
	// for an injector-chosen hold time.
	Quantum sim.Time
	// Oracle runs every cell with the serializability oracle attached and
	// counts history violations alongside the chaos invariants. On by
	// default (DefaultChaosSpec): the fault campaign is exactly where
	// serializability violations would hide.
	Oracle bool
	// Parallel is the campaign's worker count (0 or 1 serial, < 0
	// GOMAXPROCS). Cells build their own machine and derive their own fault
	// schedule, so sharding them cannot change any cell's outcome, and
	// results are gathered in the serial cell order.
	Parallel int
}

// DefaultChaosSpec covers every fault class at a low and at the acceptance
// (10%) rate, in both conflict-management modes.
func DefaultChaosSpec() ChaosSpec {
	return ChaosSpec{
		Classes:  fault.Classes(),
		Rates:    []float64{0.02, 0.10},
		Modes:    []core.Mode{core.Eager, core.Lazy},
		Threads:  7,
		Accounts: 10,
		Initial:  100,
		Rounds:   40,
		Seed:     1,
		Liveness: core.Liveness{MaxConsecAborts: 8, MaxStallCycles: 2_000_000, MaxCommitRetries: 16},
		Quantum:  3000,
		Oracle:   true,
	}
}

// ChaosCell is the outcome of one (class, rate, mode) run.
type ChaosCell struct {
	Class string  `json:"class"`
	Rate  float64 `json:"rate"`
	Mode  string  `json:"mode"`

	Commits       uint64 `json:"commits"`
	Aborts        uint64 `json:"aborts"`
	Escalations   uint64 `json:"escalations"`
	WatchdogTrips uint64 `json:"watchdog_trips"`
	Injected      uint64 `json:"faults_injected"`

	Cycles sim.Time `json:"cycles"`
	// Violations lists every invariant the cell broke; empty means the
	// protocol's backstops held.
	Violations []string `json:"violations,omitempty"`
	// Pathologies counts contention pathologies detected by the
	// conflict-graph analysis of the cell's flight-recorder history;
	// present only for cells that tripped the watchdog or broke an
	// invariant (the interesting post-mortems).
	Pathologies map[string]uint64 `json:"pathologies,omitempty"`
}

// ChaosResult is a whole campaign.
type ChaosResult struct {
	Cells      []ChaosCell `json:"cells"`
	Violations int         `json:"violations"`
}

// Ok reports whether every cell held every invariant.
func (r ChaosResult) Ok() bool { return r.Violations == 0 }

// ChaosCampaign runs the full sweep.
func ChaosCampaign(spec ChaosSpec) ChaosResult {
	type cell struct {
		class fault.Class
		rate  float64
		mode  core.Mode
	}
	var cells []cell
	for _, class := range spec.Classes {
		for _, rate := range spec.Rates {
			for _, mode := range spec.Modes {
				cells = append(cells, cell{class, rate, mode})
			}
		}
	}
	var res ChaosResult
	// No fn errors and no stop channel, so Map cannot fail.
	_ = sweepexec.Map(sweepexec.Exec{Workers: chaosWorkers(spec.Parallel)}, len(cells),
		func(i int) (ChaosCell, error) {
			return runChaosCell(spec, cells[i].class, cells[i].rate, cells[i].mode), nil
		},
		func(i int, c ChaosCell) error {
			res.Violations += len(c.Violations)
			res.Cells = append(res.Cells, c)
			return nil
		})
	return res
}

// chaosWorkers maps the spec's Parallel knob onto the executor's
// convention (0 means serial here, GOMAXPROCS there).
func chaosWorkers(parallel int) int {
	if parallel == 0 {
		return 1
	}
	return parallel
}

// runChaosCell executes one cell of the campaign.
func runChaosCell(spec ChaosSpec, class fault.Class, rate float64, mode core.Mode) ChaosCell {
	cell := ChaosCell{Class: class.String(), Rate: rate, Mode: mode.String()}
	fail := func(format string, args ...interface{}) {
		cell.Violations = append(cell.Violations, fmt.Sprintf(format, args...))
	}

	cfg := tmesi.DefaultConfig()
	cfg.Cores = spec.Threads
	// Tiny L1: forces evictions, alert-line pressure, and OT walks, so
	// every injection site sees traffic.
	cfg.L1 = cache.Config{Sets: 4, Ways: 2, VictimSize: 2}
	sys := tmesi.New(cfg)
	tel := telemetry.New(spec.Threads)
	sys.SetTelemetry(tel)
	sys.SetFlight(flight.New(spec.Threads, 0))
	rt := core.New(sys, mode, cm.NewPolka())
	rt.SetLiveness(spec.Liveness)
	var orc *oracle.Recorder
	if spec.Oracle {
		orc = oracle.NewRecorder()
		rt.SetOracle(orc)
	}
	// Mix the class into the seed so cells draw independent schedules even
	// for the same spec seed.
	inj := fault.NewInjector(fault.Config{Seed: spec.Seed*0x9E37 + uint64(class) + 1}.WithRate(class, rate))
	sys.SetFaultInjector(inj)

	cells := spec.Accounts
	base := sys.Alloc().Alloc(cells * memory.LineWords)
	cellAddr := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
	for i := 0; i < cells; i++ {
		sys.Image().WriteWord(cellAddr(i), spec.Initial)
		orc.SetInitial(cellAddr(i), spec.Initial)
	}
	private := sys.Alloc().Alloc(spec.Threads * memory.LineWords)
	for id := 0; id < spec.Threads; id++ {
		orc.SetInitial(private+memory.Addr(id*memory.LineWords), 0)
	}

	e := sim.NewEngine()
	var badSum bool
	privWrites := make([]uint64, spec.Threads)
	done := make([]bool, spec.Threads)
	doneCount := 0
	workerCtx := make([]*sim.Ctx, spec.Threads)
	for ti := 0; ti < spec.Threads; ti++ {
		id := ti
		workerCtx[id] = e.Spawn(fmt.Sprintf("chaos-%d", id), 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, id)
			r := sim.NewRand(spec.Seed*1000 + uint64(id))
			for n := 0; n < spec.Rounds; n++ {
				chaosOp(th, r, cells, spec.Initial, cellAddr,
					private+memory.Addr(id*memory.LineWords), &badSum, &privWrites[id])
			}
			done[id] = true
			doneCount++
		})
	}
	if class == fault.Preempt {
		spawnPreemptStorm(e, sys, rt, inj, spec, workerCtx, done, &doneCount)
	}

	if blocked := e.Run(); blocked != 0 {
		fail("%d threads blocked: liveness budget exceeded without escalation", blocked)
	}

	// Invariant 1: conservation of the shared total.
	var total uint64
	for i := 0; i < cells; i++ {
		total += sys.ReadWordRaw(cellAddr(i))
	}
	if want := uint64(cells) * spec.Initial; total != want {
		fail("conservation: total = %d, want %d", total, want)
	}
	// Invariant 2: every committed read-only audit saw a consistent sum.
	if badSum {
		fail("consistency: a committed read-only audit observed a wrong total")
	}
	// Invariant 3: private slots hold exactly their owner's last write.
	for id := 0; id < spec.Threads; id++ {
		p := private + memory.Addr(id*memory.LineWords)
		if got := sys.ReadWordRaw(p); got != privWrites[id] {
			fail("isolation: private slot %d = %d, want %d", id, got, privWrites[id])
		}
	}
	// Invariant 4: the committed history is serializable (oracle verdict).
	if orc != nil {
		rep := oracle.Check(orc.History(), oracle.Options{})
		for _, v := range rep.Violations {
			fail("serializability: [%s] %s", v.Kind, v.Summary)
		}
		if extra := rep.TotalViolations - len(rep.Violations); extra > 0 {
			fail("serializability: %d further violations beyond the witness cap", extra)
		}
	}

	st := rt.Stats()
	snap := tel.Snapshot()
	cell.Commits = st.Commits
	cell.Aborts = st.Aborts
	cell.Escalations = st.Escalations
	cell.WatchdogTrips = snap.Total(telemetry.CtrWatchdogTrip)
	cell.Injected = inj.Injected()
	cell.Cycles = e.MaxTime()
	if cell.WatchdogTrips > 0 || len(cell.Violations) > 0 {
		// The run floundered: explain it. The analysis reads the rings
		// non-destructively and the campaign is deterministic, so the
		// summary is reproducible.
		rep := conflictgraph.Analyze(sys.Flight().Snapshot(),
			conflictgraph.Options{Cores: spec.Threads})
		if counts := rep.PathologyCounts(); len(counts) > 0 {
			cell.Pathologies = counts
		}
	}
	return cell
}

// chaosOp performs one operation of the conservation workload: transfers,
// read-only audits, nested transfers with user aborts, plain private
// accesses, wide net-zero updates that overflow the L1, and compute.
func chaosOp(th tmapi.Thread, r *sim.Rand, cells int, initial uint64,
	cellAddr func(int) memory.Addr, priv memory.Addr, badSum *bool, privWrites *uint64) {
	switch r.Intn(6) {
	case 0: // transfer
		from, to := r.Intn(cells), r.Intn(cells)
		amt := uint64(r.Intn(5))
		th.Atomic(func(tx tmapi.Txn) {
			f := tx.Load(cellAddr(from))
			if f < amt {
				return
			}
			tx.Store(cellAddr(from), f-amt)
			tx.Store(cellAddr(to), tx.Load(cellAddr(to))+amt)
		})
	case 1: // read-only audit
		var total uint64
		th.Atomic(func(tx tmapi.Txn) {
			total = 0
			for i := 0; i < cells; i++ {
				total += tx.Load(cellAddr(i))
			}
		})
		if total != uint64(cells)*initial {
			*badSum = true
		}
	case 2: // nested transfer with occasional user abort
		from, to := r.Intn(cells), r.Intn(cells)
		skip := r.Intn(4) == 0
		th.Atomic(func(tx tmapi.Txn) {
			f := tx.Load(cellAddr(from))
			if f == 0 {
				return
			}
			tx.Store(cellAddr(from), f-1)
			th.Atomic(func(inner tmapi.Txn) {
				if skip {
					skip = false
					inner.Abort()
				}
				inner.Store(cellAddr(to), inner.Load(cellAddr(to))+1)
			})
		})
	case 3: // plain private access (strong isolation side)
		th.Store(priv, th.Load(priv)+1)
		*privWrites++
	case 4: // wide net-zero ripple: overflows the tiny L1 into the OT
		th.Atomic(func(tx tmapi.Txn) {
			for i := 0; i < cells; i++ {
				tx.Store(cellAddr(i), tx.Load(cellAddr(i))+1)
			}
			for i := 0; i < cells; i++ {
				tx.Store(cellAddr(i), tx.Load(cellAddr(i))-1)
			}
		})
	default: // compute
		th.Work(sim.Time(r.Intn(500)))
	}
}

// spawnPreemptStorm adds the Preempt-class driver: every Quantum cycles it
// rolls the injector and, on a hit, context-switches a victim core out
// (saving and summarizing its transactional state via the OS model) for an
// injector-chosen hold time, then resumes it. Transactions must survive the
// storm: suspended-transaction conflicts are caught by the summary
// signatures and arbitration of Section 5.
func spawnPreemptStorm(e *sim.Engine, sys *tmesi.System, rt *core.Runtime,
	inj *fault.Injector, spec ChaosSpec, workerCtx []*sim.Ctx, done []bool, doneCount *int) {
	m := osmodel.New(sys, rt)
	e.Spawn("preempt-storm", 0, func(ctx *sim.Ctx) {
		for *doneCount < spec.Threads {
			ctx.Advance(spec.Quantum)
			ctx.Sync()
			if !inj.Fire(-1, fault.Preempt) {
				continue
			}
			victim := int(inj.Amount(fault.Preempt, uint64(spec.Threads))) - 1
			if done[victim] {
				continue
			}
			var susp *osmodel.Suspended
			parked := false
			e.RequestPark(workerCtx[victim], func(v *sim.Ctx) {
				susp = m.Suspend(v, victim)
				parked = true
			})
			// Wait in virtual time for the victim to actually park; it may
			// finish its run instead, which is just as good.
			for !parked && !done[victim] {
				ctx.Advance(50)
				ctx.Sync()
			}
			if !parked {
				continue
			}
			hold := sim.Time(inj.Amount(fault.Preempt, 4*uint64(spec.Quantum)))
			ctx.Advance(hold)
			ctx.Sync()
			if susp != nil { // nil when the victim had no live transaction
				m.Resume(ctx, victim, susp)
			}
			e.Unblock(workerCtx[victim], ctx.Now())
		}
	})
}
