package harness

import (
	"reflect"
	"strings"
	"testing"

	"flextm/internal/flightql"
	"flextm/internal/governor"
)

// TestGovernedLivelockProbeResolvesViaLadder is the tentpole acceptance
// test: the same symmetric duel that trips the ungoverned probe's watchdog
// must, under the governor, be resolved by a ladder step — a CM swap or
// admission control, never the serialize rung or the watchdog — and then
// fully de-escalate once the duel ends.
func TestGovernedLivelockProbeResolvesViaLadder(t *testing.T) {
	g := governor.New(GovernedLivelockConfig())
	_, out, err := GovernedLivelockProbe(1, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The probe's invariants, stated as queries over the end-of-run flight
	// stream (the rings are deep enough that nothing wrapped): no watchdog
	// trip, no serialize-rung escalation, and both duelists complete every
	// round — 2 threads x 40 rounds.
	flightql.Assert(t, out.Recs, "filter kind == watchdog-trip | expect count == 0")
	flightql.Assert(t, out.Recs, "filter kind == escalate | expect count == 0")
	flightql.Assert(t, out.Recs, "filter kind == commit | expect count == 80")
	trs := g.Transitions()
	if len(trs) < 2 {
		t.Fatalf("governor recorded %d transitions, want at least a raise and a lower", len(trs))
	}
	resolved := false
	for _, tr := range trs {
		if tr.To > tr.From && (strings.HasPrefix(tr.Action, "cm:") || strings.HasPrefix(tr.Action, "admit:")) {
			resolved = true
		}
	}
	if !resolved {
		t.Fatalf("no raise applied a CM swap or admission control:\n%s", g.TransitionLog())
	}
	if g.Level() != 0 {
		t.Fatalf("final ladder level = %d, want 0 (full de-escalation)\n%s", g.Level(), g.TransitionLog())
	}
	if g.LastState() != governor.Healthy {
		t.Fatalf("final state = %v, want healthy", g.LastState())
	}
}

// TestGovernedLivelockTransitionLogIsDeterministic: a governed run is a
// pure function of (seed, config) — two runs with the same seed must emit
// bit-identical transition logs and outcomes, fault injection included.
func TestGovernedLivelockTransitionLogIsDeterministic(t *testing.T) {
	run := func() (string, LivelockOutcome) {
		g := governor.New(GovernedLivelockConfig())
		_, out, err := GovernedLivelockProbe(1, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		return g.TransitionLog(), out
	}
	log1, out1 := run()
	log2, out2 := run()
	if log1 == "" {
		t.Fatal("governor never transitioned (probe misconfigured?)")
	}
	if log1 != log2 {
		t.Fatalf("same seed produced different transition logs:\n--- run 1\n%s--- run 2\n%s", log1, log2)
	}
	if !reflect.DeepEqual(out1.Recs, out2.Recs) {
		t.Fatalf("same seed produced different flight-record streams (%d vs %d records)", len(out1.Recs), len(out2.Recs))
	}
	out1.Recs, out2.Recs = nil, nil
	if !reflect.DeepEqual(out1, out2) {
		t.Fatalf("same seed produced different outcomes: %+v vs %+v", out1, out2)
	}
}

// TestUngovernedLivelockStillTrips pins the contrast: without the governor
// the tight-watchdog probe resolves the duel only by tripping into the
// serialized fallback.
func TestUngovernedLivelockStillTrips(t *testing.T) {
	_, out, err := LivelockProbe(1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trips == 0 || out.Escalations == 0 {
		t.Fatalf("ungoverned probe: trips=%d escalations=%d, want both > 0", out.Trips, out.Escalations)
	}
}
