package harness

// This file wires the harness sweeps to the parallel sweep engine
// (internal/sweepexec) and the content-addressed cell cache
// (internal/sweepexec/cache). Every figure is a grid of independent
// deterministic cells; the figure functions flatten their grids and hand
// them to sweepexec.Map, which executes cells on SweepConfig.Parallel
// workers but emits results — and therefore OnResult callbacks and plot
// folds — in exactly the serial order. The cache sits underneath: a
// cacheable cell's full Result round-trips through JSON (telemetry
// snapshot and flight records included), so a warm store replays a sweep
// without running a single simulation.

import (
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/sim"
	"flextm/internal/sweepexec"
	cellcache "flextm/internal/sweepexec/cache"
	"flextm/internal/telemetry"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// CellCacheSchema is the cell cache's code schema version. Bump it on ANY
// change that alters simulation results — machine timing, protocol logic,
// workload generation, metric derivation — so stale entries miss instead
// of resurrecting the old behavior. The version participates in both the
// key hash and the stored envelope.
const CellCacheSchema = "flextm-cell/v1"

// cellSchema namespaces the schema per cell kind, so a "run" entry can
// never decode as a "baseline" entry even under a hash collision.
func cellSchema(kind string) string { return CellCacheSchema + "/" + kind }

// exec resolves the sweep's executor. Observation forces serial: the
// shared pump is re-bound per run and its subscribers contract to see one
// run stream at a time.
func (sc SweepConfig) exec() sweepexec.Exec {
	w := sc.Parallel
	if w == 0 {
		w = 1
	}
	if sc.Observe != nil {
		w = 1
	}
	return sweepexec.Exec{Workers: w, Stop: sc.Stop}
}

// Exec is the exported form of exec, for commands (cmd/paperbench) that
// flatten their own grids over sweepexec.Map with this sweep's worker
// count, stop channel, and observation constraint.
func (sc SweepConfig) Exec() sweepexec.Exec { return sc.exec() }

// ensureCache opens CacheDir into Cache when the caller wired a directory
// but no store. Called once at the top of each figure function, on its
// local copy, so the store flows to every cell of that figure.
func (sc *SweepConfig) ensureCache() error {
	if sc.Cache != nil || sc.CacheDir == "" {
		return nil
	}
	s, err := cellcache.Open(sc.CacheDir)
	if err != nil {
		return err
	}
	sc.Cache = s
	return nil
}

// cacheableRun reports whether rc's Result is a pure serializable function
// of its serializable fields. Runs carrying live hooks (tracer, yield,
// observation, governor), a liveness override, or the oracle are executed
// live: their value is in the side effects and reports the cache cannot
// replay.
func cacheableRun(rc RunConfig) bool {
	return rc.Tracer == nil && rc.YieldTo == nil && rc.Liveness == nil &&
		!rc.Oracle && rc.Observe == nil && rc.Govern == nil
}

// runKey is the canonical cacheable identity of one Run: every RunConfig
// field that can influence the Result of a cacheable run. json.Marshal
// emits struct fields in declaration order, so the encoding is canonical
// and equal configs always produce equal keys.
type runKey struct {
	System        SystemName   `json:"system"`
	Workload      string       `json:"workload"`
	Threads       int          `json:"threads"`
	Ops           int          `json:"ops"`
	Warmup        int          `json:"warmup"`
	Machine       tmesi.Config `json:"machine"`
	Verify        bool         `json:"verify"`
	Metrics       bool         `json:"metrics"`
	Flight        bool         `json:"flight"`
	FlightPerCore int          `json:"flightPerCore"`
	Faults        fault.Config `json:"faults"`
}

// cachedResult is Result's serializable mirror. The flight recorder is
// flattened to its live records and rebuilt with flight.Restore on a hit;
// everything else round-trips through encoding/json exactly (integers, and
// float64 via its shortest-representation encoding).
type cachedResult struct {
	System          SystemName          `json:"system"`
	Workload        string              `json:"workload"`
	Threads         int                 `json:"threads"`
	Commits         uint64              `json:"commits"`
	Aborts          uint64              `json:"aborts"`
	Cycles          sim.Time            `json:"cycles"`
	Throughput      float64             `json:"throughput"`
	MedianConflicts int                 `json:"medianConflicts"`
	MaxConflicts    int                 `json:"maxConflicts"`
	Machine         tmesi.Stats         `json:"machine"`
	Telemetry       *telemetry.Snapshot `json:"telemetry,omitempty"`
	FlightRecs      []flight.Rec        `json:"flightRecs,omitempty"`
	HasFlight       bool                `json:"hasFlight,omitempty"`
	Escalations     uint64              `json:"escalations"`
	FaultReport     *fault.Report       `json:"faultReport,omitempty"`
}

func mirrorResult(res Result) cachedResult {
	cv := cachedResult{
		System:          res.System,
		Workload:        res.Workload,
		Threads:         res.Threads,
		Commits:         res.Commits,
		Aborts:          res.Aborts,
		Cycles:          res.Cycles,
		Throughput:      res.Throughput,
		MedianConflicts: res.MedianConflicts,
		MaxConflicts:    res.MaxConflicts,
		Machine:         res.Machine,
		Telemetry:       res.Telemetry,
		Escalations:     res.Escalations,
		FaultReport:     res.FaultReport,
	}
	if res.Flight != nil {
		cv.HasFlight = true
		cv.FlightRecs = res.Flight.Snapshot()
	}
	return cv
}

func (cv cachedResult) result(cores int) Result {
	res := Result{
		System:          cv.System,
		Workload:        cv.Workload,
		Threads:         cv.Threads,
		Commits:         cv.Commits,
		Aborts:          cv.Aborts,
		Cycles:          cv.Cycles,
		Throughput:      cv.Throughput,
		MedianConflicts: cv.MedianConflicts,
		MaxConflicts:    cv.MaxConflicts,
		Machine:         cv.Machine,
		Telemetry:       cv.Telemetry,
		Escalations:     cv.Escalations,
		FaultReport:     cv.FaultReport,
	}
	if cv.HasFlight {
		res.Flight = flight.Restore(cores, cv.FlightRecs)
	}
	return res
}

// RunCell executes one sweep cell through the cell cache: a clean hit
// replays the stored Result without simulating; a miss (or an uncacheable
// configuration, or no cache) runs live and, on success, stores the
// mirror. The nil-cache path falls straight through to Run with no key
// hashing and no allocation — caching off costs nothing.
func (sc SweepConfig) RunCell(rc RunConfig) (Result, error) {
	if sc.Cache == nil || !cacheableRun(rc) {
		return Run(rc)
	}
	schema := cellSchema("run")
	key, err := cellcache.Key(schema, runKey{
		System: rc.System, Workload: rc.Workload.Name, Threads: rc.Threads,
		Ops: rc.OpsPerThread, Warmup: rc.WarmupOps, Machine: rc.Machine,
		Verify: rc.Verify, Metrics: rc.Metrics, Flight: rc.Flight,
		FlightPerCore: rc.FlightPerCore, Faults: rc.Faults,
	})
	if err != nil {
		return Run(rc)
	}
	var cv cachedResult
	if sc.Cache.Get(key, schema, &cv) {
		return cv.result(rc.Machine.Cores), nil
	}
	res, err := Run(rc)
	if err != nil {
		return res, err
	}
	// A failed Put only costs a future miss; the result is already good.
	_ = sc.Cache.Put(key, schema, mirrorResult(res))
	return res, nil
}

// cellValue caches an arbitrary plain-data cell value (a baseline
// throughput, a multiprogram point, a manager-ablation row) under the
// canonical encoding of cfg. miss runs the cell live; its error is never
// cached.
func cellValue[T any](store *cellcache.Store, kind string, cfg any, miss func() (T, error)) (T, error) {
	if store == nil {
		return miss()
	}
	schema := cellSchema(kind)
	key, err := cellcache.Key(schema, cfg)
	if err != nil {
		return miss()
	}
	var v T
	if store.Get(key, schema, &v) {
		return v, nil
	}
	v, err = miss()
	if err != nil {
		return v, err
	}
	_ = store.Put(key, schema, v)
	return v, nil
}

// baseline is Baseline through the cell cache.
func (sc SweepConfig) baseline(f workloads.Factory) (float64, error) {
	type key struct {
		Workload string       `json:"workload"`
		Machine  tmesi.Config `json:"machine"`
		Ops      int          `json:"ops"`
	}
	return cellValue(sc.Cache, "baseline", key{f.Name, sc.Machine, sc.Ops}, func() (float64, error) {
		return Baseline(f, sc.Machine, sc.Ops)
	})
}

// BaselineCell is the exported form of baseline: the 1-thread CGL
// normalization constant for f, through the cell cache.
func (sc SweepConfig) BaselineCell(f workloads.Factory) (float64, error) {
	return sc.baseline(f)
}
