package harness

import (
	"fmt"

	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/sim"
	"flextm/internal/stress"
	"flextm/internal/sweepexec"
)

// SoakConfig parameterizes a governed chaos soak: Cells seed-derived stress
// schedules, each with a randomized fault cocktail, run twice — once
// governed, once as an ungoverned twin — all oracle- and
// conservation-checked. The campaign asserts the governor's convergence
// guarantee: every governed cell must end back at ladder level 0. The whole
// soak is a pure function of the config; running it twice yields identical
// results, transition logs included.
type SoakConfig struct {
	// Seed is the campaign's base seed; cell i derives its schedule from
	// Seed+i.
	Seed uint64
	// Cells is how many randomized schedules to run (<=0 selects 6).
	Cells int
	// Threads and Rounds size each cell (<=0 selects 4 and 30).
	Threads int
	Rounds  int
	// Parallel is the campaign's worker count (0 or 1 serial, < 0
	// GOMAXPROCS). Each cell derives its whole schedule from Seed+i, so
	// sharding cells cannot change any cell's outcome — transition logs
	// included — and results are gathered in serial cell order.
	Parallel int
}

// SoakCell is one (governed, ungoverned) pair's outcome.
type SoakCell struct {
	// Schedule replays the governed run: `flextm -oracle -schedule <s>`.
	Schedule string `json:"schedule"`

	Commits        uint64 `json:"commits"`
	Aborts         uint64 `json:"aborts"`
	Escalations    uint64 `json:"escalations"`
	Injected       uint64 `json:"faults_injected"`
	GovTransitions int    `json:"gov_transitions"`
	GovFinalLevel  int    `json:"gov_final_level"`
	GovLog         string `json:"gov_log"`

	// The ungoverned twin's A/B numbers.
	TwinCommits     uint64 `json:"twin_commits"`
	TwinAborts      uint64 `json:"twin_aborts"`
	TwinEscalations uint64 `json:"twin_escalations"`

	// Failures lists everything this cell broke; empty means the cell held
	// every invariant and the governor converged.
	Failures []string `json:"failures,omitempty"`
}

// SoakResult is a whole soak campaign.
type SoakResult struct {
	Cells    []SoakCell `json:"cells"`
	Failures int        `json:"failures"`
}

// Ok reports whether every cell held every invariant and converged.
func (r SoakResult) Ok() bool { return r.Failures == 0 }

// TransitionLog concatenates every cell's governor transition log, with a
// schedule header per cell — the artifact CI uploads.
func (r SoakResult) TransitionLog() string {
	var b []byte
	for _, c := range r.Cells {
		b = append(b, fmt.Sprintf("# %s (transitions=%d final-level=%d)\n",
			c.Schedule, c.GovTransitions, c.GovFinalLevel)...)
		b = append(b, c.GovLog...)
	}
	return string(b)
}

// soakFaultClasses is the cocktail pool: every machine-level class. Preempt
// is included — the preemption storm and the governor's mitigations then
// interleave in one deterministic schedule.
var soakFaultClasses = []fault.Class{
	fault.SpuriousAlert, fault.AlertLoss, fault.SigFalsePos,
	fault.OTStall, fault.CoherenceDelay, fault.CommitRace, fault.Preempt,
}

// Soak runs the campaign.
func Soak(sc SoakConfig) SoakResult {
	if sc.Cells <= 0 {
		sc.Cells = 6
	}
	if sc.Threads <= 0 {
		sc.Threads = 4
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 30
	}
	var res SoakResult
	// No fn errors and no stop channel, so Map cannot fail.
	_ = sweepexec.Map(sweepexec.Exec{Workers: chaosWorkers(sc.Parallel)}, sc.Cells,
		func(i int) (SoakCell, error) { return runSoakCell(sc, uint64(i)), nil },
		func(i int, cell SoakCell) error {
			res.Failures += len(cell.Failures)
			res.Cells = append(res.Cells, cell)
			return nil
		})
	return res
}

// runSoakCell draws one randomized schedule and runs the governed run plus
// its ungoverned twin.
func runSoakCell(sc SoakConfig, i uint64) SoakCell {
	// The cell's schedule is drawn from its own deterministic stream; the
	// stress seed is drawn from the same stream, so cells are independent.
	r := sim.NewRand(sc.Seed*0x9E3779B97F4A7C15 + i*0x2545F491 + 0x5A17)
	cfg := stress.Config{
		Seed:      r.Uint64(),
		Threads:   sc.Threads,
		Rounds:    sc.Rounds,
		OpsPerTxn: 1 + r.Intn(3),
		Accounts:  4 + r.Intn(5),
		Mode:      core.Mode(r.Intn(2)),
		TinyCache: r.Intn(2) == 0,
		Governed:  true,
	}
	// Two or three fault classes at 2-30% each: heavy enough that ladder
	// raises actually happen across the campaign, light enough that cells
	// stay CI-sized.
	for _, k := range []int{0, 1, 2}[:2+r.Intn(2)] {
		_ = k
		class := soakFaultClasses[r.Intn(len(soakFaultClasses))]
		rate := 0.02 + float64(r.Intn(29))/100
		cfg.Faults = cfg.Faults.WithRate(class, rate)
	}

	out := stress.Run(cfg)
	cell := SoakCell{
		Schedule:       out.Schedule,
		Commits:        out.Commits,
		Aborts:         out.Aborts,
		Escalations:    out.Escalations,
		Injected:       out.Injected,
		GovTransitions: out.GovTransitions,
		GovFinalLevel:  out.GovFinalLevel,
		GovLog:         out.GovLog,
	}
	fail := func(format string, args ...interface{}) {
		cell.Failures = append(cell.Failures, fmt.Sprintf(format, args...))
	}
	if out.Failed() {
		fail("governed: %s", runFailure(out))
	}
	if out.GovFinalLevel != 0 {
		fail("governor did not converge: final level %d", out.GovFinalLevel)
	}

	twinCfg := cfg
	twinCfg.Governed = false
	twin := stress.Run(twinCfg)
	cell.TwinCommits = twin.Commits
	cell.TwinAborts = twin.Aborts
	cell.TwinEscalations = twin.Escalations
	if twin.Failed() {
		fail("ungoverned twin: %s", runFailure(twin))
	}
	return cell
}

// runFailure renders a failed stress outcome's first cause.
func runFailure(o stress.Outcome) string {
	if o.RunErr != "" {
		return o.RunErr
	}
	if o.Report != nil && !o.Report.Ok() {
		return fmt.Sprintf("%d serializability violations", o.Report.TotalViolations)
	}
	return "unknown failure"
}
