package harness

import (
	"fmt"

	"flextm/internal/cm"
	"flextm/internal/conflictgraph"
	"flextm/internal/core"
	"flextm/internal/fault"
	"flextm/internal/flight"
	"flextm/internal/governor"
	"flextm/internal/memory"
	"flextm/internal/observatory"
	"flextm/internal/oracle"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// LivelockOutcome summarizes a LivelockProbe run.
type LivelockOutcome struct {
	Commits     uint64
	Aborts      uint64
	Escalations uint64
	// Dumped is true when the report came from the watchdog's flight dump
	// (taken the moment the pathology was detected) rather than the
	// end-of-run rings.
	Dumped bool
	// Trips counts liveness-watchdog trips (telemetry; 0 when the run had
	// no registry attached).
	Trips uint64
	// Recs is the record window the report was computed over (the watchdog
	// dump when Dumped, else the end-of-run rings) — the input for causal
	// post-mortems on the probe.
	Recs []flight.Rec
	// LineA, LineB are the duel's two contended lines, so acceptance tests
	// can check blame attribution against ground truth.
	LineA, LineB memory.LineAddr
}

// LivelockProbe runs a deliberately pathological cell and profiles it: two
// threads under the Aggressive contention manager (always abort the enemy)
// write the same two lines in opposite order, with injected Bloom false
// positives keeping the conflict pressure on even between genuine overlaps.
// The symmetric kill-retry-kill exchange is the classic dueling livelock;
// FlexTM's obstruction-free optimistic path cannot break it, so the run
// makes progress only through the watchdog's serialized fallback.
//
// The probe attaches a flight recorder, captures the watchdog-triggered
// dump, and returns its conflict-graph analysis — which must classify the
// exchange as an abort cycle. It is both the acceptance test for the
// profiler ("does the analyzer detect a real livelock?") and a regression
// probe for the escalation path ("does the run terminate at all?").
func LivelockProbe(seed uint64) (*conflictgraph.Report, LivelockOutcome, error) {
	return ObservedLivelockProbe(seed, nil)
}

// ObservedLivelockProbe is LivelockProbe with the observation plane
// attached: pump, if non-nil, samples the duel as it runs, so a watcher
// (or the -watch acceptance test) sees the abort-cycle pathology flagged
// live — before the watchdog trips.
func ObservedLivelockProbe(seed uint64, pump *observatory.Pump) (*conflictgraph.Report, LivelockOutcome, error) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	fl := flight.New(cfg.Cores, 0)
	sys.SetFlight(fl)
	// Telemetry is always attached: the live classifier needs the registry
	// when a pump is bound, and the outcome's Trips count must not depend on
	// whether the run was observed. Counters are passive, so the schedule is
	// unchanged either way.
	sys.SetTelemetry(telemetry.New(cfg.Cores))
	inj := fault.NewInjector(fault.Config{Seed: seed}.WithRate(fault.SigFalsePos, 0.25))
	sys.SetFaultInjector(inj)

	rt := core.New(sys, core.Eager, cm.Aggressive{})
	// The probe runs oracle-checked: a livelock broken only by escalation is
	// exactly the kind of run where a serialization bug would hide.
	orc := oracle.NewRecorder()
	rt.SetOracle(orc)
	// Tight watchdog: the duel must trip it quickly, and escalation bounds
	// the run. Commit retries stay bounded too in case the duel shifts to
	// commit-time refusals.
	// Tight watchdog: Aggressive's randomized exponential backoff breaks the
	// duel after ~10 exchanges, so the consecutive-abort threshold must sit
	// below that for the trip (and hence the flight dump) to be reliable
	// across seeds.
	rt.SetLiveness(core.Liveness{MaxConsecAborts: 5, MaxStallCycles: 500_000, MaxCommitRetries: 32})

	var dumped []flight.Rec
	rt.OnFlightDump = func(c int, recs []flight.Rec) { dumped = recs }

	lineA := sys.Alloc().Alloc(memory.LineWords)
	lineB := sys.Alloc().Alloc(memory.LineWords)
	orc.SetInitial(lineA, 0)
	orc.SetInitial(lineB, 0)

	const rounds = 40
	e := sim.NewEngine()
	var duelists []*sim.Ctx
	for t := 0; t < 2; t++ {
		id := t
		duelists = append(duelists, e.Spawn(fmt.Sprintf("duel-%d", id), 0, func(ctx *sim.Ctx) {
			th := rt.BindThread(ctx, id)
			first, second := lineA, lineB
			if id == 1 {
				first, second = lineB, lineA
			}
			for n := 0; n < rounds; n++ {
				th.Atomic(func(tx tmapi.Txn) {
					tx.Store(first, tx.Load(first)+1)
					th.Work(200) // hold the first line long enough to overlap
					tx.Store(second, tx.Load(second)+1)
					// Vulnerability window: keep the transaction open after
					// the second store so the freshly killed enemy has time
					// to restart and retaliate before we reach CAS-Commit.
					// This is what turns a one-sided kill into a duel.
					th.Work(200)
				})
			}
		}))
	}
	if pump != nil {
		pump.Bind(sys.Telemetry(), fl, observatory.Meta{
			System: string(FlexTMEager), Workload: "LivelockDuel",
			Threads: 2, Cores: cfg.Cores,
		})
		iv := pump.Interval()
		e.Spawn("observatory", 0, func(ctx *sim.Ctx) {
			for {
				live := false
				for _, d := range duelists {
					if !d.Done() {
						live = true
						break
					}
				}
				if !live {
					break
				}
				ctx.Advance(iv)
				ctx.Sync()
				pump.Tick(ctx.Now())
			}
			pump.Finish(ctx.Now())
		})
	}
	if blocked := e.Run(); blocked != 0 {
		return nil, LivelockOutcome{}, fmt.Errorf("livelock probe: %d threads blocked (escalation failed)", blocked)
	}

	st := rt.Stats()
	out := LivelockOutcome{
		Commits:     st.Commits,
		Aborts:      st.Aborts,
		Escalations: st.Escalations,
		Dumped:      dumped != nil,
	}
	if tel := sys.Telemetry(); tel != nil {
		snap := tel.Snapshot()
		out.Trips = snap.Total(telemetry.CtrWatchdogTrip)
	}
	recs := dumped
	if recs == nil {
		recs = fl.Snapshot()
	}
	out.Recs = recs
	out.LineA, out.LineB = lineA.Line(), lineB.Line()
	rep := conflictgraph.Analyze(recs, conflictgraph.Options{Cores: cfg.Cores})
	if got, want := sys.ReadWordRaw(lineA)+sys.ReadWordRaw(lineB), uint64(2*2*rounds); got != want {
		return rep, out, fmt.Errorf("livelock probe: line sum = %d, want %d", got, want)
	}
	if orep := oracle.Check(orc.History(), oracle.Options{}); !orep.Ok() {
		return rep, out, fmt.Errorf("livelock probe: %d serializability violations ([%s] %s)",
			orep.TotalViolations, orep.Violations[0].Kind, orep.Violations[0].Summary)
	}
	return rep, out, nil
}

// GovernedLivelockInterval is the sampling/reaction period the governed
// probe runs at: fine enough that the governor reacts while the duel is
// still within the (loosened) watchdog budget.
const GovernedLivelockInterval sim.Time = 2000

// GovernedLivelockConfig is the governor configuration the governed probe
// (and flextm -livelock -govern) uses: a short ladder ending in forced
// serialization, reacting after a single unhealthy interval, with enough
// cooldown that each rung gets to prove itself before the next.
func GovernedLivelockConfig() governor.Config {
	return governor.Config{
		Ladder: []governor.Action{
			{Kind: governor.ActCM, CM: "Polka"},
			{Kind: governor.ActAdmit, Limit: 1},
			{Kind: governor.ActSerialize},
		},
		RaiseAfter: 1,
		LowerAfter: 2,
		Cooldown:   2,
	}
}

// GovernedLivelockProbe runs the dueling-livelock cell under the resilience
// governor: the same symmetric Aggressive duel with injected signature
// false positives, but with the watchdog budget loosened (24 consecutive
// aborts instead of 5) so the governor — reacting from the observation
// plane — gets to break the cycle first via its ladder (CM swap, then an
// admission cap of one). After the duel the observers keep sampling a calm
// tail of empty intervals long enough for the governor to walk fully back
// down to level 0, proving de-escalation.
//
// g must be a fresh, unbound governor (GovernedLivelockConfig is the tested
// configuration); pump may be nil, in which case a private pump and bus are
// created at GovernedLivelockInterval. The run is oracle-checked and
// conservation-checked like the ungoverned probe.
func GovernedLivelockProbe(seed uint64, g *governor.Governor, pump *observatory.Pump) (*conflictgraph.Report, LivelockOutcome, error) {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 2
	sys := tmesi.New(cfg)
	fl := flight.New(cfg.Cores, 0)
	sys.SetFlight(fl)
	sys.SetTelemetry(telemetry.New(cfg.Cores))
	inj := fault.NewInjector(fault.Config{Seed: seed}.WithRate(fault.SigFalsePos, 0.25))
	sys.SetFaultInjector(inj)

	rt := core.New(sys, core.Eager, cm.Aggressive{})
	orc := oracle.NewRecorder()
	rt.SetOracle(orc)
	// Loose watchdog: the governor must win the race. The duel produces
	// roughly one abort every ~700 cycles, and the governor's first rung
	// lands within one interval (2000 cycles), so a 24-abort budget leaves
	// the watchdog as a genuine backstop rather than the resolution path.
	rt.SetLiveness(core.Liveness{MaxConsecAborts: 24, MaxStallCycles: 2_000_000, MaxCommitRetries: 64})

	var dumped []flight.Rec
	rt.OnFlightDump = func(c int, recs []flight.Rec) { dumped = recs }

	if pump == nil {
		pump = observatory.NewPump(observatory.Config{
			Interval: GovernedLivelockInterval, Bus: observatory.NewBus(),
		})
	}
	g.Bind(rt, 2)
	pump.SetAnnotator(g.Annotate)

	lineA := sys.Alloc().Alloc(memory.LineWords)
	lineB := sys.Alloc().Alloc(memory.LineWords)
	orc.SetInitial(lineA, 0)
	orc.SetInitial(lineB, 0)

	const rounds = 40
	e := sim.NewEngine()
	var duelists []*sim.Ctx
	for t := 0; t < 2; t++ {
		id := t
		duelists = append(duelists, e.Spawn(fmt.Sprintf("duel-%d", id), 0, func(ctx *sim.Ctx) {
			th := rt.BindThread(ctx, id)
			first, second := lineA, lineB
			if id == 1 {
				first, second = lineB, lineA
			}
			for n := 0; n < rounds; n++ {
				th.Atomic(func(tx tmapi.Txn) {
					tx.Store(first, tx.Load(first)+1)
					th.Work(200)
					tx.Store(second, tx.Load(second)+1)
					th.Work(200)
				})
			}
		}))
	}
	pump.Bind(sys.Telemetry(), fl, observatory.Meta{
		System: string(FlexTMEager), Workload: "GovernedLivelockDuel",
		Threads: 2, Cores: cfg.Cores,
	})
	// Both observers run a calm tail of empty intervals past the duel's
	// end: those classify healthy, so every rung still raised when the
	// duel finishes is guaranteed to unwind before the run ends (structural
	// de-escalation, not an accident of the duel schedule). 24 intervals
	// covers the probe ladder's three rungs at LowerAfter 2 + cooldown 2,
	// with slack.
	const calmTail = 24
	iv := pump.Interval()
	duelDone := func() bool {
		for _, d := range duelists {
			if !d.Done() {
				return false
			}
		}
		return true
	}
	e.Spawn("observatory", 0, func(ctx *sim.Ctx) {
		for tail := calmTail; tail > 0; {
			if duelDone() {
				tail--
			}
			ctx.Advance(iv)
			ctx.Sync()
			pump.Tick(ctx.Now())
		}
		pump.Finish(ctx.Now())
	})
	// Spawned after the pump: equal-time threads resume in spawn order, so
	// at each tick the pump publishes frame k before the governor reads it.
	bus := pump.Bus()
	e.Spawn("governor", 0, func(ctx *sim.Ctx) {
		for tail := calmTail; tail > 0; {
			if duelDone() {
				tail--
			}
			ctx.Advance(iv)
			ctx.Sync()
			g.Observe(bus.Latest())
		}
	})
	if blocked := e.Run(); blocked != 0 {
		return nil, LivelockOutcome{}, fmt.Errorf("governed livelock probe: %d threads blocked", blocked)
	}

	st := rt.Stats()
	snap := sys.Telemetry().Snapshot()
	out := LivelockOutcome{
		Commits:     st.Commits,
		Aborts:      st.Aborts,
		Escalations: st.Escalations,
		Dumped:      dumped != nil,
		Trips:       snap.Total(telemetry.CtrWatchdogTrip),
	}
	out.Recs = fl.Snapshot()
	out.LineA, out.LineB = lineA.Line(), lineB.Line()
	rep := conflictgraph.Analyze(out.Recs, conflictgraph.Options{Cores: cfg.Cores})
	if got, want := sys.ReadWordRaw(lineA)+sys.ReadWordRaw(lineB), uint64(2*2*rounds); got != want {
		return rep, out, fmt.Errorf("governed livelock probe: line sum = %d, want %d", got, want)
	}
	if orep := oracle.Check(orc.History(), oracle.Options{}); !orep.Ok() {
		return rep, out, fmt.Errorf("governed livelock probe: %d serializability violations ([%s] %s)",
			orep.TotalViolations, orep.Violations[0].Kind, orep.Violations[0].Summary)
	}
	return rep, out, nil
}
