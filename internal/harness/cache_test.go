package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	cellcache "flextm/internal/sweepexec/cache"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// cachedSweep is quickSweep with a cell cache in dir.
func cachedSweep(t *testing.T, dir string) SweepConfig {
	t.Helper()
	sc := quickSweep()
	store, err := cellcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc.Cache = store
	return sc
}

// encodeResult canonicalizes a Result — flight records flattened — for
// byte comparison between live and replayed runs.
func encodeResult(t *testing.T, res Result) []byte {
	t.Helper()
	b, err := json.Marshal(mirrorResult(res))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunCellWarmCacheReplaysWithoutSimulating: the second identical sweep
// must be pure cache hits — zero misses, zero puts — and byte-identical to
// the live one, telemetry and flight records included.
func TestRunCellWarmCacheReplaysWithoutSimulating(t *testing.T) {
	sc := cachedSweep(t, t.TempDir())
	sc.Metrics = true
	f, _ := workloads.ByName("HashTable")
	rc := RunConfig{
		System: FlexTMEager, Workload: f, Threads: 4, OpsPerThread: 40,
		Machine: sc.Machine, Verify: true, Metrics: true, Flight: true,
	}
	live, err := sc.RunCell(rc)
	if err != nil {
		t.Fatal(err)
	}
	cold := sc.Cache.Stats()
	if cold.Misses != 1 || cold.Puts != 1 || cold.Hits != 0 {
		t.Fatalf("cold stats = %+v", cold)
	}
	replay, err := sc.RunCell(rc)
	if err != nil {
		t.Fatal(err)
	}
	warm := sc.Cache.Stats()
	if warm.Hits != 1 || warm.Misses != 1 || warm.Puts != 1 {
		t.Fatalf("warm stats = %+v (the second run simulated)", warm)
	}
	if !bytes.Equal(encodeResult(t, live), encodeResult(t, replay)) {
		t.Fatal("replayed result differs from the live run")
	}
	if replay.Flight == nil || len(replay.Flight.Snapshot()) == 0 {
		t.Fatal("flight recorder not rehydrated from the cache")
	}
	if replay.Telemetry == nil {
		t.Fatal("telemetry not rehydrated from the cache")
	}
}

// TestFigureWarmCacheIsPureReplay: a full figure sweep over a warm store
// executes zero simulations and reproduces the plots byte for byte.
func TestFigureWarmCacheIsPureReplay(t *testing.T) {
	sc := cachedSweep(t, t.TempDir())
	f, _ := workloads.ByName("HashTable")
	cold, err := sweep(sc, f, []SystemName{FlexTMEager, RSTM})
	if err != nil {
		t.Fatal(err)
	}
	coldStats := sc.Cache.Stats()
	if coldStats.Hits != 0 || coldStats.Puts == 0 {
		t.Fatalf("cold stats = %+v", coldStats)
	}
	warm, err := sweep(sc, f, []SystemName{FlexTMEager, RSTM})
	if err != nil {
		t.Fatal(err)
	}
	warmStats := sc.Cache.Stats()
	if warmStats.Misses != coldStats.Misses || warmStats.Puts != coldStats.Puts {
		t.Fatalf("warm sweep simulated: cold %+v, warm %+v", coldStats, warmStats)
	}
	if warmStats.Hits == 0 {
		t.Fatal("warm sweep hit nothing")
	}
	cb, _ := json.Marshal(cold)
	wb, _ := json.Marshal(warm)
	if !bytes.Equal(cb, wb) {
		t.Fatal("warm plot differs from cold plot")
	}
}

// TestFigureParallelSharedCacheIdentity: -parallel combined with -cache —
// every worker goroutine Getting and Putting one shared store — must be
// byte-identical to the serial cached run, cold (concurrent Puts plus
// evict) and warm (concurrent Gets), and the warm parallel sweep must
// execute zero simulations. Running under -race in the CI test job, this
// is also the store's concurrency regression test in situ: the exact
// flag combination paperbench supports.
func TestFigureParallelSharedCacheIdentity(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	systems := []SystemName{FlexTMEager, RSTM}
	ref := cachedSweep(t, t.TempDir())
	refPlot, err := sweep(ref, f, systems)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := json.Marshal(refPlot)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		sc := cachedSweep(t, t.TempDir())
		sc.Parallel = w
		cold, err := sweep(sc, f, systems)
		if err != nil {
			t.Fatal(err)
		}
		coldStats := sc.Cache.Stats()
		if coldStats.Puts == 0 {
			t.Fatalf("parallel=%d cold sweep put nothing: %+v", w, coldStats)
		}
		warm, err := sweep(sc, f, systems)
		if err != nil {
			t.Fatal(err)
		}
		warmStats := sc.Cache.Stats()
		cb, _ := json.Marshal(cold)
		wb, _ := json.Marshal(warm)
		if !bytes.Equal(cb, refBytes) {
			t.Errorf("parallel=%d cold cached plot differs from the serial cached plot", w)
		}
		if !bytes.Equal(wb, refBytes) {
			t.Errorf("parallel=%d warm cached plot differs from the serial cached plot", w)
		}
		if warmStats.Misses != coldStats.Misses || warmStats.Puts != coldStats.Puts {
			t.Errorf("parallel=%d warm sweep simulated: cold %+v, warm %+v", w, coldStats, warmStats)
		}
		if warmStats.Hits == 0 {
			t.Errorf("parallel=%d warm sweep hit nothing", w)
		}
	}
}

// TestRunCellCorruptedEntryRerunsLive: a damaged cache entry silently
// falls back to a live simulation with the correct result.
func TestRunCellCorruptedEntryRerunsLive(t *testing.T) {
	dir := t.TempDir()
	sc := cachedSweep(t, dir)
	f, _ := workloads.ByName("RBTree")
	rc := RunConfig{
		System: FlexTMLazy, Workload: f, Threads: 4, OpsPerThread: 40,
		Machine: sc.Machine, Verify: true,
	}
	live, err := sc.RunCell(rc)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the single stored entry.
	var corrupted int
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0x01
		corrupted++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != 1 {
		t.Fatalf("corrupted %d entries, want 1", corrupted)
	}
	rerun, err := sc.RunCell(rc)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cache.Stats().Corrupt == 0 {
		t.Fatal("corruption not detected")
	}
	if !bytes.Equal(encodeResult(t, live), encodeResult(t, rerun)) {
		t.Fatal("fallback run differs from the original live run")
	}
	// The overwrite repaired the entry: next call is a clean hit.
	before := sc.Cache.Stats()
	if _, err := sc.RunCell(rc); err != nil {
		t.Fatal(err)
	}
	if after := sc.Cache.Stats(); after.Hits != before.Hits+1 {
		t.Fatalf("entry not repaired: before %+v after %+v", before, after)
	}
}

// TestUncacheableRunsBypassStore: runs with live hooks (observation,
// tracing, oracle, ...) never read or write the cache.
func TestUncacheableRunsBypassStore(t *testing.T) {
	sc := cachedSweep(t, t.TempDir())
	f, _ := workloads.ByName("HashTable")
	rc := RunConfig{
		System: FlexTMEager, Workload: f, Threads: 2, OpsPerThread: 40,
		Machine: sc.Machine, Verify: true, Oracle: true,
	}
	if _, err := sc.RunCell(rc); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunCell(rc); err != nil {
		t.Fatal(err)
	}
	if st := sc.Cache.Stats(); st != (cellcache.Stats{}) {
		t.Fatalf("oracle run touched the cache: %+v", st)
	}
}

// TestRunCellCacheOffAddsNoAllocations: with no cache attached, RunCell
// must be exactly Run — no key hashing, no mirror building, no extra
// allocation on the dispatch path.
func TestRunCellCacheOffAddsNoAllocations(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	// Threads=0 fails Run's first validation check, isolating the
	// dispatch overhead from the (allocation-heavy) simulation itself.
	rc := RunConfig{System: FlexTMEager, Workload: f, Threads: 0, Machine: tmesi.DefaultConfig()}
	sc := SweepConfig{}
	direct := testing.AllocsPerRun(100, func() { _, _ = Run(rc) })
	viaCell := testing.AllocsPerRun(100, func() { _, _ = sc.RunCell(rc) })
	if viaCell > direct {
		t.Fatalf("RunCell with caching off allocates more than Run: %.1f > %.1f", viaCell, direct)
	}
}

// TestCellSchemaNamespacesKinds: entries of different cell kinds can never
// decode as one another even if their configs coincide.
func TestCellSchemaNamespacesKinds(t *testing.T) {
	store, err := cellcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type cfg struct {
		Workload string `json:"workload"`
	}
	runs := 0
	v1, err := cellValue(store, "run", cfg{"X"}, func() (float64, error) { runs++; return 1.5, nil })
	if err != nil || v1 != 1.5 {
		t.Fatalf("v1 = %v, %v", v1, err)
	}
	v2, err := cellValue(store, "baseline", cfg{"X"}, func() (float64, error) { runs++; return 2.5, nil })
	if err != nil || v2 != 2.5 {
		t.Fatalf("kind collision: v2 = %v, %v", v2, err)
	}
	if runs != 2 {
		t.Fatalf("miss funcs ran %d times, want 2", runs)
	}
	// Second pass: both replay from their own entries.
	v1b, _ := cellValue(store, "run", cfg{"X"}, func() (float64, error) { runs++; return -1, nil })
	v2b, _ := cellValue(store, "baseline", cfg{"X"}, func() (float64, error) { runs++; return -1, nil })
	if runs != 2 || v1b != 1.5 || v2b != 2.5 {
		t.Fatalf("replay wrong: runs=%d v1=%v v2=%v", runs, v1b, v2b)
	}
}
