package harness

import (
	"fmt"
	"io"
	"sort"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/observatory"
	"flextm/internal/signature"
	"flextm/internal/sim"
	"flextm/internal/sweepexec"
	cellcache "flextm/internal/sweepexec/cache"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// Series is one curve of a plot: normalized throughput by thread count.
type Series struct {
	System SystemName
	Points map[int]float64
}

// Plot is one panel of Figure 4 or 5.
type Plot struct {
	Workload string
	Series   []Series
	// Conflict degree stats from the FlexTM runs (Figure 4's table).
	Md8, Mx8, Md16, Mx16 int
}

// SweepConfig parameterizes a figure regeneration.
type SweepConfig struct {
	Machine tmesi.Config
	Threads []int
	Ops     int
	Verify  bool
	// Metrics attaches a telemetry registry to every run of the sweep; each
	// Result then carries a counter snapshot.
	Metrics bool
	// Flight attaches a flight recorder to every run of the sweep; each
	// Result then carries the recorder for conflict-graph analysis.
	Flight bool
	// Observe, if non-nil, attaches the observation plane to every run of
	// the sweep (see RunConfig.Observe). The pump is re-bound per run, so a
	// subscriber sees the sweep as a sequence of runs, each ending in a
	// Final frame.
	Observe *observatory.Pump
	// OnResult, if non-nil, observes every data point as it completes
	// (paperbench uses it for machine-readable output). It is always called
	// from the sweeping goroutine, in the serial cell order, whatever
	// Parallel is set to.
	OnResult func(Result)
	// Parallel is the sweep's worker count: 0 or 1 runs cells serially on
	// the calling goroutine, > 1 shards them across that many goroutines,
	// < 0 selects GOMAXPROCS. Cells are independent deterministic
	// simulations and results are delivered in serial order, so every
	// artifact is byte-identical at any setting. Forced serial while
	// Observe is attached (the pump is re-bound per run).
	Parallel int
	// CacheDir, when non-empty and Cache is nil, opens a content-addressed
	// cell cache rooted there: cacheable cells replay from the store
	// instead of simulating. See internal/sweepexec/cache.
	CacheDir string
	// Cache is the cell store consulted for every cacheable cell; nil (and
	// an empty CacheDir) disables caching. Callers wanting hit/miss stats
	// open the store themselves and set this field.
	Cache *cellcache.Store
	// Stop, when non-nil and closed, cancels the sweep between cells: the
	// figure function returns an error wrapping sweepexec.ErrStopped, with
	// every already-emitted result still delivered (the SIGINT
	// partial-artifact path).
	Stop <-chan struct{}
}

// observe forwards a finished data point to the sweep's observer.
func (sc SweepConfig) observe(res Result) {
	if sc.OnResult != nil {
		sc.OnResult(res)
	}
}

// DefaultSweep is the paper's sweep: 1..16 threads on the Table 3(a)
// machine.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Machine: tmesi.DefaultConfig(),
		Threads: []int{1, 2, 4, 8, 16},
		Ops:     DefaultOps,
		Verify:  true,
	}
}

// ws1Systems are the runtimes compared on Workload-Set 1 (Figure 4a-e);
// all perform eager conflict management, as in the paper.
func ws1Systems() []SystemName { return []SystemName{CGL, FlexTMEager, RTMF, RSTM} }

// ws2Systems are the runtimes compared on Vacation (Figure 4f-g).
func ws2Systems() []SystemName { return []SystemName{CGL, FlexTMEager, TL2} }

// Figure4 regenerates the throughput/scalability study: every workload of
// Table 3(b) against its system set, normalized to 1-thread CGL. The
// baselines run as their own parallel phase, then the whole
// workload × system × threads grid is flattened into one sweep so every
// core stays busy across workload boundaries.
func Figure4(sc SweepConfig) ([]Plot, error) {
	if err := sc.ensureCache(); err != nil {
		return nil, err
	}
	fs := workloads.All()
	systems := make([][]SystemName, len(fs))
	for i, f := range fs {
		systems[i] = ws1Systems()
		if f.Name == "Vacation-Low" || f.Name == "Vacation-High" {
			systems[i] = ws2Systems()
		}
	}
	bases := make([]float64, len(fs))
	err := sweepexec.Map(sc.exec(), len(fs),
		func(i int) (float64, error) {
			b, err := sc.baseline(fs[i])
			if err != nil {
				return 0, fmt.Errorf("figure 4 (%s): %w", fs[i].Name, err)
			}
			return b, nil
		},
		func(i int, b float64) error { bases[i] = b; return nil })
	if err != nil {
		return nil, err
	}
	return sweepGrid(sc, "figure 4", fs, systems, bases)
}

// Figure5 regenerates the eager-vs-lazy study on the four contended
// workloads (Figure 5a-d), normalized to 1-thread FlexTM(Eager).
func Figure5(sc SweepConfig) ([]Plot, error) {
	if err := sc.ensureCache(); err != nil {
		return nil, err
	}
	var fs []workloads.Factory
	for _, name := range []string{"RBTree", "Vacation-High", "LFUCache", "RandomGraph"} {
		f, _ := workloads.ByName(name)
		fs = append(fs, f)
	}
	systems := make([][]SystemName, len(fs))
	bases := make([]float64, len(fs))
	err := sweepexec.Map(sc.exec(), len(fs),
		func(i int) (float64, error) {
			systems[i] = []SystemName{FlexTMEager, FlexTMLazy}
			res, err := sc.RunCell(RunConfig{
				System: FlexTMEager, Workload: fs[i], Threads: 1, OpsPerThread: sc.Ops,
				Machine: sc.Machine, Verify: sc.Verify,
			})
			if err != nil {
				return 0, fmt.Errorf("figure 5 (%s): %w", fs[i].Name, err)
			}
			return res.Throughput, nil
		},
		func(i int, b float64) error { bases[i] = b; return nil })
	if err != nil {
		return nil, err
	}
	return sweepGrid(sc, "figure 5", fs, systems, bases)
}

// gridCell addresses one point of a flattened multi-workload sweep.
type gridCell struct {
	w   int // workload index
	s   int // series index within the workload's plot
	sys SystemName
	th  int
}

// sweepGrid runs the flattened workload × system × threads grid through
// the sweep executor. The fold — OnResult, normalized points, the
// conflict-degree table — happens in the emit callback, which sweepexec
// serializes in cell-index order, so the output is the serial loop's
// output regardless of Parallel.
func sweepGrid(sc SweepConfig, figure string, fs []workloads.Factory, systems [][]SystemName, bases []float64) ([]Plot, error) {
	plots := make([]Plot, len(fs))
	var cells []gridCell
	for wi, f := range fs {
		plots[wi] = Plot{Workload: f.Name}
		for si, sysName := range systems[wi] {
			plots[wi].Series = append(plots[wi].Series, Series{System: sysName, Points: map[int]float64{}})
			for _, th := range sc.Threads {
				cells = append(cells, gridCell{wi, si, sysName, th})
			}
		}
	}
	err := sweepexec.Map(sc.exec(), len(cells),
		func(i int) (Result, error) {
			c := cells[i]
			res, err := sc.RunCell(RunConfig{
				System: c.sys, Workload: fs[c.w], Threads: c.th, OpsPerThread: sc.Ops,
				Machine: sc.Machine, Verify: sc.Verify, Metrics: sc.Metrics,
				Flight: sc.Flight, Observe: sc.Observe,
			})
			if err != nil {
				return Result{}, fmt.Errorf("%s (%s): %s@%d: %w", figure, fs[c.w].Name, c.sys, c.th, err)
			}
			return res, nil
		},
		func(i int, res Result) error {
			c := cells[i]
			sc.observe(res)
			plot := &plots[c.w]
			plot.Series[c.s].Points[c.th] = res.Throughput / bases[c.w]
			if c.sys == FlexTMEager || c.sys == FlexTMLazy {
				switch c.th {
				case 8:
					plot.Md8, plot.Mx8 = res.MedianConflicts, res.MaxConflicts
				case 16:
					plot.Md16, plot.Mx16 = res.MedianConflicts, res.MaxConflicts
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return plots, nil
}

// sweep runs the systems across the thread counts, normalized to 1-thread
// CGL on the same workload and machine.
func sweep(sc SweepConfig, f workloads.Factory, systems []SystemName) (Plot, error) {
	if err := sc.ensureCache(); err != nil {
		return Plot{}, err
	}
	base, err := sc.baseline(f)
	if err != nil {
		return Plot{}, err
	}
	return sweepWithBase(sc, f, systems, base)
}

// sweepNormalizedTo normalizes to the 1-thread run of the given system.
func sweepNormalizedTo(sc SweepConfig, f workloads.Factory, systems []SystemName, norm SystemName) (Plot, error) {
	if err := sc.ensureCache(); err != nil {
		return Plot{}, err
	}
	res, err := sc.RunCell(RunConfig{
		System: norm, Workload: f, Threads: 1, OpsPerThread: sc.Ops,
		Machine: sc.Machine, Verify: sc.Verify,
	})
	if err != nil {
		return Plot{}, err
	}
	return sweepWithBase(sc, f, systems, res.Throughput)
}

// sweepWithBase is the single-workload grid (the harness tests drive it
// directly); the error text deliberately omits the figure/workload prefix
// the multi-workload entry points add.
func sweepWithBase(sc SweepConfig, f workloads.Factory, systems []SystemName, base float64) (Plot, error) {
	plot := Plot{Workload: f.Name}
	type cell struct {
		s   int
		sys SystemName
		th  int
	}
	var cells []cell
	for si, sysName := range systems {
		plot.Series = append(plot.Series, Series{System: sysName, Points: map[int]float64{}})
		for _, th := range sc.Threads {
			cells = append(cells, cell{si, sysName, th})
		}
	}
	err := sweepexec.Map(sc.exec(), len(cells),
		func(i int) (Result, error) {
			c := cells[i]
			res, err := sc.RunCell(RunConfig{
				System: c.sys, Workload: f, Threads: c.th, OpsPerThread: sc.Ops,
				Machine: sc.Machine, Verify: sc.Verify, Metrics: sc.Metrics,
				Flight: sc.Flight, Observe: sc.Observe,
			})
			if err != nil {
				return Result{}, fmt.Errorf("%s@%d: %w", c.sys, c.th, err)
			}
			return res, nil
		},
		func(i int, res Result) error {
			c := cells[i]
			sc.observe(res)
			plot.Series[c.s].Points[c.th] = res.Throughput / base
			if c.sys == FlexTMEager || c.sys == FlexTMLazy {
				switch c.th {
				case 8:
					plot.Md8, plot.Mx8 = res.MedianConflicts, res.MaxConflicts
				case 16:
					plot.Md16, plot.Mx16 = res.MedianConflicts, res.MaxConflicts
				}
			}
			return nil
		})
	if err != nil {
		return Plot{}, err
	}
	return plot, nil
}

// MultiprogramPoint is one x-position of Figure 5(e)/(f): appThreads
// transactional threads share the machine with prime threads on the
// remaining cores; aborted transactions yield the CPU to prime chunks.
type MultiprogramPoint struct {
	AppThreads int
	Mode       SystemName
	// AppNorm is the app's throughput normalized to its 1-thread isolated
	// run; PrimeNorm likewise for the prime factorizer.
	AppNorm   float64
	PrimeNorm float64
}

// Multiprogram runs Figure 5(e)/(f) for the given transactional workload.
func Multiprogram(sc SweepConfig, f workloads.Factory, appThreads []int) ([]MultiprogramPoint, error) {
	if err := sc.ensureCache(); err != nil {
		return nil, err
	}
	// Isolated baselines: two independent cells, run as their own phase.
	type baseCell struct {
		system SystemName
		f      workloads.Factory
	}
	baseCells := []baseCell{
		{FlexTMEager, f},
		{CGL, primeFactory()},
	}
	bases := make([]float64, len(baseCells))
	err := sweepexec.Map(sc.exec(), len(baseCells),
		func(i int) (float64, error) {
			return isolatedThroughput(sc, baseCells[i].system, baseCells[i].f)
		},
		func(i int, b float64) error { bases[i] = b; return nil })
	if err != nil {
		return nil, err
	}
	appBase, primeBase := bases[0], bases[1]

	type cell struct {
		mode SystemName
		at   int
	}
	var cells []cell
	for _, mode := range []SystemName{FlexTMEager, FlexTMLazy} {
		for _, at := range appThreads {
			cells = append(cells, cell{mode, at})
		}
	}
	points := make([]MultiprogramPoint, 0, len(cells))
	err = sweepexec.Map(sc.exec(), len(cells),
		func(i int) (MultiprogramPoint, error) {
			c := cells[i]
			return multiprogramRun(sc, f, c.mode, c.at, appBase, primeBase)
		},
		func(i int, p MultiprogramPoint) error { points = append(points, p); return nil })
	if err != nil {
		return nil, err
	}
	return points, nil
}

// primeFactory wraps the prime factorizer (the multiprogramming
// experiment's background job) as a workload factory.
func primeFactory() workloads.Factory {
	return workloads.Factory{Name: "Prime", New: func() workloads.Workload { return workloads.NewPrime() }}
}

// isolatedThroughput runs one thread of the workload alone on the machine
// (through the cell cache).
func isolatedThroughput(sc SweepConfig, system SystemName, f workloads.Factory) (float64, error) {
	type key struct {
		System   SystemName   `json:"system"`
		Workload string       `json:"workload"`
		Machine  tmesi.Config `json:"machine"`
		Ops      int          `json:"ops"`
	}
	return cellValue(sc.Cache, "isolated", key{system, f.Name, sc.Machine, sc.Ops}, func() (float64, error) {
		sys := tmesi.New(sc.Machine)
		rt, err := NewRuntime(system, sys)
		if err != nil {
			return 0, err
		}
		w := f.New()
		env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
		w.Setup(env)
		e := sim.NewEngine()
		e.Spawn(w.Name(), 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, 0)
			for j := 0; j < sc.Ops; j++ {
				w.Op(th)
			}
		})
		if blocked := e.Run(); blocked != 0 {
			return 0, fmt.Errorf("harness: isolated run blocked")
		}
		return float64(sc.Ops) / float64(e.MaxTime()) * 1e6, nil
	})
}

// multiprogramRun runs one (mode, appThreads) point through the cell
// cache; the shared-machine contention run itself is deterministic, so the
// point is a pure function of the key.
func multiprogramRun(sc SweepConfig, f workloads.Factory, mode SystemName, appThreads int,
	appBase, primeBase float64) (MultiprogramPoint, error) {
	type key struct {
		Workload   string       `json:"workload"`
		Mode       SystemName   `json:"mode"`
		AppThreads int          `json:"appThreads"`
		Machine    tmesi.Config `json:"machine"`
		Ops        int          `json:"ops"`
		AppBase    float64      `json:"appBase"`
		PrimeBase  float64      `json:"primeBase"`
	}
	return cellValue(sc.Cache, "multiprogram",
		key{f.Name, mode, appThreads, sc.Machine, sc.Ops, appBase, primeBase},
		func() (MultiprogramPoint, error) {
			return multiprogramRunLive(sc, f, mode, appThreads, appBase, primeBase)
		})
}

func multiprogramRunLive(sc SweepConfig, f workloads.Factory, mode SystemName, appThreads int,
	appBase, primeBase float64) (MultiprogramPoint, error) {

	cores := sc.Machine.Cores
	primeThreads := cores - appThreads
	sys := tmesi.New(sc.Machine)
	env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}

	app := f.New()
	app.Setup(env)
	prime := workloads.NewPrime()
	prime.Setup(env)

	rt, err := NewRuntime(mode, sys)
	if err != nil {
		return MultiprogramPoint{}, err
	}
	// Yield-on-abort: a doomed transaction donates a prime chunk before
	// retrying (the paper's user-level schedule control). Eager management
	// detects doomed transactions earlier, so the chunk displaces fewer
	// wasted cycles and more total prime work fits in the same wall clock.
	if fx, ok := rt.(*core.Runtime); ok {
		fx.OnAbortYield = func(th *core.Thread) { prime.Chunk(th) }
	}
	primeRT, err := NewRuntime(CGL, sys)
	if err != nil {
		return MultiprogramPoint{}, err
	}

	// Fixed wall clock: every thread loops until the deadline, so the
	// metric is work completed per unit time, as in the paper's plots.
	deadline := sim.Time(sc.Ops) * multiprogramCyclesPerOp
	e := sim.NewEngine()
	for i := 0; i < appThreads; i++ {
		id := i
		e.Spawn("app", 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, id)
			for ctx.Now() < deadline {
				app.Op(th)
			}
		})
	}
	for i := 0; i < primeThreads; i++ {
		id := i
		e.Spawn("prime", 0, func(ctx *sim.Ctx) {
			th := primeRT.Bind(ctx, appThreads+id)
			for ctx.Now() < deadline {
				prime.Op(th)
			}
		})
	}
	if blocked := e.Run(); blocked != 0 {
		return MultiprogramPoint{}, fmt.Errorf("harness: multiprogram run blocked")
	}

	pt := MultiprogramPoint{AppThreads: appThreads, Mode: mode}
	elapsed := float64(e.MaxTime())
	if elapsed > 0 {
		pt.AppNorm = float64(rt.Stats().Commits) / elapsed * 1e6 / appBase
		pt.PrimeNorm = float64(prime.Completed(env)) / elapsed * 1e6 / primeBase
	}
	return pt, nil
}

// multiprogramCyclesPerOp scales the multiprogramming deadline from the
// sweep's per-thread op budget.
const multiprogramCyclesPerOp = 2000

// OverflowAblation compares bounded (32-entry victim buffer) against
// unbounded victim buffering, reproducing the Section 7.3 experiment: the
// redo-log/OT path should cost a few percent on workloads that overflow.
type OverflowResult struct {
	Workload  string
	Overflows uint64
	// Slowdown is unbounded-buffer throughput divided by bounded (>= 1
	// means the OT path costs something).
	Slowdown float64
}

// OverflowAblation runs the comparison on the given workloads with an L1
// small enough to force set-conflict evictions of speculative lines. Each
// workload contributes two grid cells (bounded, then ideal), emitted in
// that order.
func OverflowAblation(sc SweepConfig, names []string, threads int) ([]OverflowResult, error) {
	if err := sc.ensureCache(); err != nil {
		return nil, err
	}
	small := sc.Machine
	small.L1 = cache.Config{Sets: 16, Ways: 2, VictimSize: 8}
	unbounded := small
	unbounded.L1.UnboundedTMIVictim = true // ideal: infinite speculative buffer

	fs := make([]workloads.Factory, len(names))
	for i, name := range names {
		f, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		fs[i] = f
	}
	out := make([]OverflowResult, 0, len(names))
	bounded := make([]Result, len(names))
	err := sweepexec.Map(sc.exec(), 2*len(names),
		func(i int) (Result, error) {
			machine := small
			if i%2 == 1 {
				machine = unbounded
			}
			return sc.RunCell(RunConfig{
				System: FlexTMLazy, Workload: fs[i/2], Threads: threads,
				OpsPerThread: sc.Ops, Machine: machine, Verify: sc.Verify,
				Metrics: sc.Metrics, Flight: sc.Flight, Observe: sc.Observe,
			})
		},
		func(i int, res Result) error {
			sc.observe(res)
			if i%2 == 0 {
				bounded[i/2] = res
				return nil
			}
			b := bounded[i/2]
			r := OverflowResult{Workload: names[i/2], Overflows: b.Machine.Overflows}
			if b.Throughput > 0 {
				r.Slowdown = res.Throughput / b.Throughput
			}
			out = append(out, r)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PrintPlots writes plots as aligned text tables.
func PrintPlots(w io.Writer, title string, plots []Plot, threads []int) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, p := range plots {
		fmt.Fprintf(w, "\n[%s] normalized throughput (x = threads)\n", p.Workload)
		fmt.Fprintf(w, "%-16s", "system")
		for _, th := range threads {
			fmt.Fprintf(w, "%8d", th)
		}
		fmt.Fprintln(w)
		for _, s := range p.Series {
			fmt.Fprintf(w, "%-16s", s.System)
			ths := make([]int, 0, len(s.Points))
			for th := range s.Points {
				ths = append(ths, th)
			}
			sort.Ints(ths)
			for _, th := range threads {
				fmt.Fprintf(w, "%8.2f", s.Points[th])
			}
			fmt.Fprintln(w)
		}
		if p.Mx8 != 0 || p.Mx16 != 0 || p.Md8 != 0 || p.Md16 != 0 {
			fmt.Fprintf(w, "conflicting txns: 8T md=%d mx=%d  16T md=%d mx=%d\n",
				p.Md8, p.Mx8, p.Md16, p.Mx16)
		}
	}
}

// SigResult is one point of the signature-width ablation: narrower Bloom
// filters alias more lines, producing false conflicts and extra aborts.
type SigResult struct {
	Bits       int
	Throughput float64
	AbortRate  float64
	// ObservedFP is the run's empirical false-positive rate over all
	// membership tests whose ground truth was negative; PredictedFP is the
	// analytic signature.FalsePositiveRate averaged over the same tests.
	ObservedFP  float64
	PredictedFP float64
}

// SignatureAblation sweeps the signature width for FlexTM(Lazy) on the
// given workload (a DESIGN.md extension experiment; the paper fixes the
// width at 2048 bits after Sanchez et al.). Telemetry is always on here:
// the audit-mode signatures provide the ground truth that splits probe
// hits into true conflicts and Bloom aliasing.
func SignatureAblation(sc SweepConfig, name string, threads int, widths []int) ([]SigResult, error) {
	f, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	if err := sc.ensureCache(); err != nil {
		return nil, err
	}
	out := make([]SigResult, 0, len(widths))
	err := sweepexec.Map(sc.exec(), len(widths),
		func(i int) (Result, error) {
			machine := sc.Machine
			machine.Sig = signature.Config{Bits: widths[i], Banks: 4}
			res, err := sc.RunCell(RunConfig{
				System: FlexTMLazy, Workload: f, Threads: threads,
				OpsPerThread: sc.Ops, Machine: machine, Verify: sc.Verify,
				Metrics: true, Flight: sc.Flight, Observe: sc.Observe,
			})
			if err != nil {
				return Result{}, fmt.Errorf("sig width %d: %w", widths[i], err)
			}
			return res, nil
		},
		func(i int, res Result) error {
			sc.observe(res)
			r := SigResult{
				Bits:       widths[i],
				Throughput: res.Throughput,
				AbortRate:  float64(res.Aborts) / float64(res.Commits),
			}
			if res.Telemetry != nil {
				r.ObservedFP, r.PredictedFP = res.Telemetry.SigFPRates()
			}
			out = append(out, r)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ManagerResult is one point of the contention-manager ablation.
type ManagerResult struct {
	Manager    string
	Mode       string
	Throughput float64
	AbortRate  float64
}

// newManager constructs one of the ablation's contention managers by
// name. Fresh construction per cell (managers are stateless parameter
// structs) keeps cells independent, so they shard and cache cleanly.
func newManager(name string) (cm.Manager, error) {
	switch name {
	case "Polka":
		return cm.NewPolka(), nil
	case "Karma":
		return cm.NewKarma(), nil
	case "Greedy":
		return cm.NewGreedy(), nil
	case "Timestamp":
		return cm.NewTimestamp(), nil
	case "Timid":
		return cm.Timid{}, nil
	case "Aggressive":
		return cm.Aggressive{}, nil
	}
	return nil, fmt.Errorf("harness: unknown contention manager %q", name)
}

// managerNames is the ablation's roster, in table order.
func managerNames() []string {
	return []string{"Polka", "Karma", "Greedy", "Timestamp", "Timid", "Aggressive"}
}

// ManagerAblation compares contention managers on a contended workload in
// eager mode, where arbitration policy matters most.
func ManagerAblation(sc SweepConfig, name string, threads int) ([]ManagerResult, error) {
	if err := sc.ensureCache(); err != nil {
		return nil, err
	}
	f, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	type cell struct {
		mode core.Mode
		mgr  string
	}
	var cells []cell
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		for _, mgr := range managerNames() {
			cells = append(cells, cell{mode, mgr})
		}
	}
	out := make([]ManagerResult, 0, len(cells))
	err := sweepexec.Map(sc.exec(), len(cells),
		func(i int) (ManagerResult, error) {
			return runManagerCell(sc, f, cells[i].mode, cells[i].mgr, threads)
		},
		func(i int, r ManagerResult) error { out = append(out, r); return nil })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runManagerCell runs one (mode, manager) cell through the cell cache.
func runManagerCell(sc SweepConfig, f workloads.Factory, mode core.Mode, mgrName string, threads int) (ManagerResult, error) {
	type key struct {
		Workload string       `json:"workload"`
		Mode     string       `json:"mode"`
		Manager  string       `json:"manager"`
		Threads  int          `json:"threads"`
		Machine  tmesi.Config `json:"machine"`
		Ops      int          `json:"ops"`
	}
	return cellValue(sc.Cache, "manager",
		key{f.Name, mode.String(), mgrName, threads, sc.Machine, sc.Ops},
		func() (ManagerResult, error) {
			mgr, err := newManager(mgrName)
			if err != nil {
				return ManagerResult{}, err
			}
			sys := tmesi.New(sc.Machine)
			rt := core.New(sys, mode, mgr)
			env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
			w := f.New()
			w.Setup(env)
			e := sim.NewEngine()
			spans := make([]sim.Time, threads)
			for i := 0; i < threads; i++ {
				id := i
				e.Spawn("w", 0, func(ctx *sim.Ctx) {
					th := rt.Bind(ctx, id)
					for j := 0; j < DefaultWarmup; j++ {
						w.Op(th)
					}
					start := ctx.Now()
					for j := 0; j < sc.Ops; j++ {
						w.Op(th)
					}
					spans[id] = ctx.Now() - start
				})
			}
			if blocked := e.Run(); blocked != 0 {
				return ManagerResult{}, fmt.Errorf("manager ablation: %d threads blocked", blocked)
			}
			if err := w.Verify(env); err != nil {
				return ManagerResult{}, fmt.Errorf("%s/%s: %w", mode, mgr.Name(), err)
			}
			r := ManagerResult{Manager: mgr.Name(), Mode: mode.String()}
			for _, d := range spans {
				if d > 0 {
					r.Throughput += float64(sc.Ops) / float64(d) * 1e6
				}
			}
			st := rt.Stats()
			r.AbortRate = float64(st.Aborts) / float64(st.Commits)
			return r, nil
		})
}
