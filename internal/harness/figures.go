package harness

import (
	"fmt"
	"io"
	"sort"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/core"
	"flextm/internal/observatory"
	"flextm/internal/signature"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// Series is one curve of a plot: normalized throughput by thread count.
type Series struct {
	System SystemName
	Points map[int]float64
}

// Plot is one panel of Figure 4 or 5.
type Plot struct {
	Workload string
	Series   []Series
	// Conflict degree stats from the FlexTM runs (Figure 4's table).
	Md8, Mx8, Md16, Mx16 int
}

// SweepConfig parameterizes a figure regeneration.
type SweepConfig struct {
	Machine tmesi.Config
	Threads []int
	Ops     int
	Verify  bool
	// Metrics attaches a telemetry registry to every run of the sweep; each
	// Result then carries a counter snapshot.
	Metrics bool
	// Flight attaches a flight recorder to every run of the sweep; each
	// Result then carries the recorder for conflict-graph analysis.
	Flight bool
	// Observe, if non-nil, attaches the observation plane to every run of
	// the sweep (see RunConfig.Observe). The pump is re-bound per run, so a
	// subscriber sees the sweep as a sequence of runs, each ending in a
	// Final frame.
	Observe *observatory.Pump
	// OnResult, if non-nil, observes every data point as it completes
	// (paperbench uses it for machine-readable output).
	OnResult func(Result)
}

// observe forwards a finished data point to the sweep's observer.
func (sc SweepConfig) observe(res Result) {
	if sc.OnResult != nil {
		sc.OnResult(res)
	}
}

// DefaultSweep is the paper's sweep: 1..16 threads on the Table 3(a)
// machine.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Machine: tmesi.DefaultConfig(),
		Threads: []int{1, 2, 4, 8, 16},
		Ops:     DefaultOps,
		Verify:  true,
	}
}

// ws1Systems are the runtimes compared on Workload-Set 1 (Figure 4a-e);
// all perform eager conflict management, as in the paper.
func ws1Systems() []SystemName { return []SystemName{CGL, FlexTMEager, RTMF, RSTM} }

// ws2Systems are the runtimes compared on Vacation (Figure 4f-g).
func ws2Systems() []SystemName { return []SystemName{CGL, FlexTMEager, TL2} }

// Figure4 regenerates the throughput/scalability study: every workload of
// Table 3(b) against its system set, normalized to 1-thread CGL.
func Figure4(sc SweepConfig) ([]Plot, error) {
	var plots []Plot
	for _, f := range workloads.All() {
		systems := ws1Systems()
		if f.Name == "Vacation-Low" || f.Name == "Vacation-High" {
			systems = ws2Systems()
		}
		plot, err := sweep(sc, f, systems)
		if err != nil {
			return nil, fmt.Errorf("figure 4 (%s): %w", f.Name, err)
		}
		plots = append(plots, plot)
	}
	return plots, nil
}

// Figure5 regenerates the eager-vs-lazy study on the four contended
// workloads (Figure 5a-d), normalized to 1-thread FlexTM(Eager).
func Figure5(sc SweepConfig) ([]Plot, error) {
	var plots []Plot
	for _, name := range []string{"RBTree", "Vacation-High", "LFUCache", "RandomGraph"} {
		f, _ := workloads.ByName(name)
		plot, err := sweepNormalizedTo(sc, f, []SystemName{FlexTMEager, FlexTMLazy}, FlexTMEager)
		if err != nil {
			return nil, fmt.Errorf("figure 5 (%s): %w", name, err)
		}
		plots = append(plots, plot)
	}
	return plots, nil
}

// sweep runs the systems across the thread counts, normalized to 1-thread
// CGL on the same workload and machine.
func sweep(sc SweepConfig, f workloads.Factory, systems []SystemName) (Plot, error) {
	base, err := Baseline(f, sc.Machine, sc.Ops)
	if err != nil {
		return Plot{}, err
	}
	return sweepWithBase(sc, f, systems, base)
}

// sweepNormalizedTo normalizes to the 1-thread run of the given system.
func sweepNormalizedTo(sc SweepConfig, f workloads.Factory, systems []SystemName, norm SystemName) (Plot, error) {
	res, err := Run(RunConfig{
		System: norm, Workload: f, Threads: 1, OpsPerThread: sc.Ops,
		Machine: sc.Machine, Verify: sc.Verify,
	})
	if err != nil {
		return Plot{}, err
	}
	return sweepWithBase(sc, f, systems, res.Throughput)
}

func sweepWithBase(sc SweepConfig, f workloads.Factory, systems []SystemName, base float64) (Plot, error) {
	plot := Plot{Workload: f.Name}
	for _, sysName := range systems {
		s := Series{System: sysName, Points: map[int]float64{}}
		for _, th := range sc.Threads {
			res, err := Run(RunConfig{
				System: sysName, Workload: f, Threads: th, OpsPerThread: sc.Ops,
				Machine: sc.Machine, Verify: sc.Verify, Metrics: sc.Metrics,
				Flight: sc.Flight, Observe: sc.Observe,
			})
			if err != nil {
				return Plot{}, fmt.Errorf("%s@%d: %w", sysName, th, err)
			}
			sc.observe(res)
			s.Points[th] = res.Throughput / base
			if sysName == FlexTMEager || sysName == FlexTMLazy {
				switch th {
				case 8:
					plot.Md8, plot.Mx8 = res.MedianConflicts, res.MaxConflicts
				case 16:
					plot.Md16, plot.Mx16 = res.MedianConflicts, res.MaxConflicts
				}
			}
		}
		plot.Series = append(plot.Series, s)
	}
	return plot, nil
}

// MultiprogramPoint is one x-position of Figure 5(e)/(f): appThreads
// transactional threads share the machine with prime threads on the
// remaining cores; aborted transactions yield the CPU to prime chunks.
type MultiprogramPoint struct {
	AppThreads int
	Mode       SystemName
	// AppNorm is the app's throughput normalized to its 1-thread isolated
	// run; PrimeNorm likewise for the prime factorizer.
	AppNorm   float64
	PrimeNorm float64
}

// Multiprogram runs Figure 5(e)/(f) for the given transactional workload.
func Multiprogram(sc SweepConfig, f workloads.Factory, appThreads []int) ([]MultiprogramPoint, error) {
	// Isolated baselines.
	appBase, err := isolatedThroughput(sc, func(sys *tmesi.System) (tmapi.Runtime, workloads.Workload, error) {
		rt, err := NewRuntime(FlexTMEager, sys)
		return rt, f.New(), err
	})
	if err != nil {
		return nil, err
	}
	primeBase, err := isolatedThroughput(sc, func(sys *tmesi.System) (tmapi.Runtime, workloads.Workload, error) {
		rt, err := NewRuntime(CGL, sys)
		return rt, workloads.NewPrime(), err
	})
	if err != nil {
		return nil, err
	}

	var points []MultiprogramPoint
	for _, mode := range []SystemName{FlexTMEager, FlexTMLazy} {
		for _, at := range appThreads {
			p, err := multiprogramRun(sc, f, mode, at, appBase, primeBase)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

func isolatedThroughput(sc SweepConfig, mk func(*tmesi.System) (tmapi.Runtime, workloads.Workload, error)) (float64, error) {
	sys := tmesi.New(sc.Machine)
	rt, w, err := mk(sys)
	if err != nil {
		return 0, err
	}
	env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
	w.Setup(env)
	e := sim.NewEngine()
	e.Spawn(w.Name(), 0, func(ctx *sim.Ctx) {
		th := rt.Bind(ctx, 0)
		for j := 0; j < sc.Ops; j++ {
			w.Op(th)
		}
	})
	if blocked := e.Run(); blocked != 0 {
		return 0, fmt.Errorf("harness: isolated run blocked")
	}
	return float64(sc.Ops) / float64(e.MaxTime()) * 1e6, nil
}

func multiprogramRun(sc SweepConfig, f workloads.Factory, mode SystemName, appThreads int,
	appBase, primeBase float64) (MultiprogramPoint, error) {

	cores := sc.Machine.Cores
	primeThreads := cores - appThreads
	sys := tmesi.New(sc.Machine)
	env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}

	app := f.New()
	app.Setup(env)
	prime := workloads.NewPrime()
	prime.Setup(env)

	rt, err := NewRuntime(mode, sys)
	if err != nil {
		return MultiprogramPoint{}, err
	}
	// Yield-on-abort: a doomed transaction donates a prime chunk before
	// retrying (the paper's user-level schedule control). Eager management
	// detects doomed transactions earlier, so the chunk displaces fewer
	// wasted cycles and more total prime work fits in the same wall clock.
	if fx, ok := rt.(*core.Runtime); ok {
		fx.OnAbortYield = func(th *core.Thread) { prime.Chunk(th) }
	}
	primeRT, err := NewRuntime(CGL, sys)
	if err != nil {
		return MultiprogramPoint{}, err
	}

	// Fixed wall clock: every thread loops until the deadline, so the
	// metric is work completed per unit time, as in the paper's plots.
	deadline := sim.Time(sc.Ops) * multiprogramCyclesPerOp
	e := sim.NewEngine()
	for i := 0; i < appThreads; i++ {
		id := i
		e.Spawn("app", 0, func(ctx *sim.Ctx) {
			th := rt.Bind(ctx, id)
			for ctx.Now() < deadline {
				app.Op(th)
			}
		})
	}
	for i := 0; i < primeThreads; i++ {
		id := i
		e.Spawn("prime", 0, func(ctx *sim.Ctx) {
			th := primeRT.Bind(ctx, appThreads+id)
			for ctx.Now() < deadline {
				prime.Op(th)
			}
		})
	}
	if blocked := e.Run(); blocked != 0 {
		return MultiprogramPoint{}, fmt.Errorf("harness: multiprogram run blocked")
	}

	pt := MultiprogramPoint{AppThreads: appThreads, Mode: mode}
	elapsed := float64(e.MaxTime())
	if elapsed > 0 {
		pt.AppNorm = float64(rt.Stats().Commits) / elapsed * 1e6 / appBase
		pt.PrimeNorm = float64(prime.Completed(env)) / elapsed * 1e6 / primeBase
	}
	return pt, nil
}

// multiprogramCyclesPerOp scales the multiprogramming deadline from the
// sweep's per-thread op budget.
const multiprogramCyclesPerOp = 2000

// OverflowAblation compares bounded (32-entry victim buffer) against
// unbounded victim buffering, reproducing the Section 7.3 experiment: the
// redo-log/OT path should cost a few percent on workloads that overflow.
type OverflowResult struct {
	Workload  string
	Overflows uint64
	// Slowdown is unbounded-buffer throughput divided by bounded (>= 1
	// means the OT path costs something).
	Slowdown float64
}

// OverflowAblation runs the comparison on the given workloads with an L1
// small enough to force set-conflict evictions of speculative lines.
func OverflowAblation(sc SweepConfig, names []string, threads int) ([]OverflowResult, error) {
	small := sc.Machine
	small.L1 = cache.Config{Sets: 16, Ways: 2, VictimSize: 8}
	unbounded := small
	unbounded.L1.UnboundedTMIVictim = true // ideal: infinite speculative buffer

	var out []OverflowResult
	for _, name := range names {
		f, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		bounded, err := Run(RunConfig{
			System: FlexTMLazy, Workload: f, Threads: threads,
			OpsPerThread: sc.Ops, Machine: small, Verify: sc.Verify,
			Metrics: sc.Metrics, Flight: sc.Flight, Observe: sc.Observe,
		})
		if err != nil {
			return nil, err
		}
		sc.observe(bounded)
		ideal, err := Run(RunConfig{
			System: FlexTMLazy, Workload: f, Threads: threads,
			OpsPerThread: sc.Ops, Machine: unbounded, Verify: sc.Verify,
			Metrics: sc.Metrics, Flight: sc.Flight, Observe: sc.Observe,
		})
		if err != nil {
			return nil, err
		}
		sc.observe(ideal)
		r := OverflowResult{Workload: name, Overflows: bounded.Machine.Overflows}
		if bounded.Throughput > 0 {
			r.Slowdown = ideal.Throughput / bounded.Throughput
		}
		out = append(out, r)
	}
	return out, nil
}

// PrintPlots writes plots as aligned text tables.
func PrintPlots(w io.Writer, title string, plots []Plot, threads []int) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, p := range plots {
		fmt.Fprintf(w, "\n[%s] normalized throughput (x = threads)\n", p.Workload)
		fmt.Fprintf(w, "%-16s", "system")
		for _, th := range threads {
			fmt.Fprintf(w, "%8d", th)
		}
		fmt.Fprintln(w)
		for _, s := range p.Series {
			fmt.Fprintf(w, "%-16s", s.System)
			ths := make([]int, 0, len(s.Points))
			for th := range s.Points {
				ths = append(ths, th)
			}
			sort.Ints(ths)
			for _, th := range threads {
				fmt.Fprintf(w, "%8.2f", s.Points[th])
			}
			fmt.Fprintln(w)
		}
		if p.Mx8 != 0 || p.Mx16 != 0 || p.Md8 != 0 || p.Md16 != 0 {
			fmt.Fprintf(w, "conflicting txns: 8T md=%d mx=%d  16T md=%d mx=%d\n",
				p.Md8, p.Mx8, p.Md16, p.Mx16)
		}
	}
}

// SigResult is one point of the signature-width ablation: narrower Bloom
// filters alias more lines, producing false conflicts and extra aborts.
type SigResult struct {
	Bits       int
	Throughput float64
	AbortRate  float64
	// ObservedFP is the run's empirical false-positive rate over all
	// membership tests whose ground truth was negative; PredictedFP is the
	// analytic signature.FalsePositiveRate averaged over the same tests.
	ObservedFP  float64
	PredictedFP float64
}

// SignatureAblation sweeps the signature width for FlexTM(Lazy) on the
// given workload (a DESIGN.md extension experiment; the paper fixes the
// width at 2048 bits after Sanchez et al.). Telemetry is always on here:
// the audit-mode signatures provide the ground truth that splits probe
// hits into true conflicts and Bloom aliasing.
func SignatureAblation(sc SweepConfig, name string, threads int, widths []int) ([]SigResult, error) {
	f, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	var out []SigResult
	for _, bits := range widths {
		machine := sc.Machine
		machine.Sig = signature.Config{Bits: bits, Banks: 4}
		res, err := Run(RunConfig{
			System: FlexTMLazy, Workload: f, Threads: threads,
			OpsPerThread: sc.Ops, Machine: machine, Verify: sc.Verify,
			Metrics: true, Flight: sc.Flight, Observe: sc.Observe,
		})
		if err != nil {
			return nil, fmt.Errorf("sig width %d: %w", bits, err)
		}
		sc.observe(res)
		r := SigResult{
			Bits:       bits,
			Throughput: res.Throughput,
			AbortRate:  float64(res.Aborts) / float64(res.Commits),
		}
		if res.Telemetry != nil {
			r.ObservedFP, r.PredictedFP = res.Telemetry.SigFPRates()
		}
		out = append(out, r)
	}
	return out, nil
}

// ManagerResult is one point of the contention-manager ablation.
type ManagerResult struct {
	Manager    string
	Mode       string
	Throughput float64
	AbortRate  float64
}

// ManagerAblation compares contention managers on a contended workload in
// eager mode, where arbitration policy matters most.
func ManagerAblation(sc SweepConfig, name string, threads int) ([]ManagerResult, error) {
	f, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	managers := []cm.Manager{cm.NewPolka(), cm.NewKarma(), cm.NewGreedy(), cm.NewTimestamp(), cm.Timid{}, cm.Aggressive{}}
	var out []ManagerResult
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		for _, mgr := range managers {
			sys := tmesi.New(sc.Machine)
			rt := core.New(sys, mode, mgr)
			env := &workloads.Env{Image: sys.Image(), Alloc: sys.Alloc(), Raw: sys.ReadWordRaw}
			w := f.New()
			w.Setup(env)
			e := sim.NewEngine()
			spans := make([]sim.Time, threads)
			for i := 0; i < threads; i++ {
				id := i
				e.Spawn("w", 0, func(ctx *sim.Ctx) {
					th := rt.Bind(ctx, id)
					for j := 0; j < DefaultWarmup; j++ {
						w.Op(th)
					}
					start := ctx.Now()
					for j := 0; j < sc.Ops; j++ {
						w.Op(th)
					}
					spans[id] = ctx.Now() - start
				})
			}
			if blocked := e.Run(); blocked != 0 {
				return nil, fmt.Errorf("manager ablation: %d threads blocked", blocked)
			}
			if err := w.Verify(env); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", mode, mgr.Name(), err)
			}
			r := ManagerResult{Manager: mgr.Name(), Mode: mode.String()}
			for _, d := range spans {
				if d > 0 {
					r.Throughput += float64(sc.Ops) / float64(d) * 1e6
				}
			}
			st := rt.Stats()
			r.AbortRate = float64(st.Aborts) / float64(st.Commits)
			out = append(out, r)
		}
	}
	return out, nil
}
