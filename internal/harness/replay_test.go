package harness

import (
	"testing"

	"flextm/internal/fault"
	"flextm/internal/flightql"
	"flextm/internal/governor"
	"flextm/internal/replay"
	"flextm/internal/telemetry"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// TestReplayIdentityWithLiveTelemetry is the replay acceptance test:
// folding the full end-of-run flight stream must land on exactly the live
// telemetry registry's values for every mirrored counter, per core, across
// seeds and both FlexTM modes. Any drift — a flight record without its
// counter, a counter without its record, a fold rule that miscounts —
// breaks the field-for-field identity. Runs under -race in CI's test job.
func TestReplayIdentityWithLiveTelemetry(t *testing.T) {
	f, ok := workloads.ByName("RBTree")
	if !ok {
		t.Fatal("RBTree workload missing")
	}
	for _, system := range []SystemName{FlexTMEager, FlexTMLazy} {
		for _, seed := range []uint64{1, 5, 9} {
			res, err := Run(RunConfig{
				System:       system,
				Workload:     f,
				Threads:      4,
				OpsPerThread: 60,
				Machine:      tmesi.DefaultConfig(),
				Metrics:      true,
				Flight:       true,
				// Deep rings: the identity only holds over the complete
				// stream, so wrap-around must be impossible for this run.
				FlightPerCore: 1 << 17,
				// A sprinkle of injected Bloom aliasing varies the conflict
				// schedule per seed and exercises the FP-bit paths.
				Faults: fault.Config{Seed: seed}.WithRate(fault.SigFalsePos, 0.02),
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", system, seed, err)
			}
			if n := res.Flight.Overwritten(); n != 0 {
				t.Fatalf("%s seed %d: %d records lost to wrap-around; deepen FlightPerCore", system, seed, n)
			}
			recs := res.Flight.Snapshot()
			st := replay.Final(recs, tmesi.DefaultConfig().Cores)
			if err := st.VerifyTelemetry(*res.Telemetry); err != nil {
				t.Fatalf("%s seed %d: %v", system, seed, err)
			}
			// Cross-check the replayed headline numbers against the
			// harness's own accounting.
			if got := st.CounterTotal(telemetry.CtrTxnCommits); got != res.Commits {
				t.Fatalf("%s seed %d: replayed commits %d, harness %d", system, seed, got, res.Commits)
			}
			if got := st.CounterTotal(telemetry.CtrTxnAborts); got != res.Aborts {
				t.Fatalf("%s seed %d: replayed aborts %d, harness %d", system, seed, got, res.Aborts)
			}
		}
	}
}

// TestReplayGovernorLevelMatchesGovernor: replaying a governed run's
// GovStep records reproduces the governor's own read-side view — final
// ladder level and transition count.
func TestReplayGovernorLevelMatchesGovernor(t *testing.T) {
	g := governor.New(GovernedLivelockConfig())
	_, out, err := GovernedLivelockProbe(1, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := replay.Final(out.Recs, 2)
	if st.GovLevel != g.Level() {
		t.Fatalf("replayed gov level %d, governor reports %d", st.GovLevel, g.Level())
	}
	if got, want := st.CounterTotal(telemetry.CtrGovStep), uint64(len(g.Transitions())); got != want {
		t.Fatalf("replayed %d governor steps, governor logged %d", got, want)
	}
	// The same invariants, stated as queries.
	flightql.Assert(t, out.Recs, "filter kind == governor-step | expect count >= 2")
}
