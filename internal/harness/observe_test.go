package harness

import (
	"reflect"
	"testing"

	"flextm/internal/conflictgraph"
	"flextm/internal/flight"
	"flextm/internal/observatory"
	"flextm/internal/telemetry"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// The observation plane must be a pure reader: attaching a pump cannot
// change what the run computes or how long it takes. This is the
// determinism half of the observatory acceptance criteria.
func TestObservationDoesNotPerturbResults(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	rc := RunConfig{
		System: FlexTMLazy, Workload: f, Threads: 4, OpsPerThread: 50,
		WarmupOps: 40, Machine: tmesi.DefaultConfig(), Verify: true,
	}
	plain, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	bus := observatory.NewBus()
	pump := observatory.NewPump(observatory.Config{Interval: 5_000, Bus: bus, Retain: true})
	rc.Observe = pump
	observed, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Commits != plain.Commits || observed.Aborts != plain.Aborts {
		t.Fatalf("observation changed the run: commits %d->%d aborts %d->%d",
			plain.Commits, observed.Commits, plain.Aborts, observed.Aborts)
	}
	if observed.Cycles != plain.Cycles {
		t.Fatalf("observation changed the makespan: %d -> %d cycles (pump overshoot leaked into Result)",
			plain.Cycles, observed.Cycles)
	}

	// The pump actually sampled: several interval frames plus a final one,
	// all published to the bus.
	frames := pump.Frames()
	if len(frames) < 2 {
		t.Fatalf("pump retained %d frames, want interval samples plus a final", len(frames))
	}
	last := frames[len(frames)-1]
	if !last.Final {
		t.Fatal("last retained frame is not Final")
	}
	if bus.Published() != uint64(len(frames)) {
		t.Fatalf("bus published %d, retained %d", bus.Published(), len(frames))
	}
	// Interval deltas must sum to the cumulative totals: the stream is a
	// partition of the run, not an approximation of it.
	var sum uint64
	for _, fr := range frames {
		sum += fr.Delta.Total(telemetry.CtrTxnCommits)
	}
	if cum := last.Cum.Total(telemetry.CtrTxnCommits); sum != cum {
		t.Fatalf("interval deltas sum to %d, cumulative is %d", sum, cum)
	}
	// Observe forces instrumentation on, so the result carries telemetry.
	if observed.Telemetry == nil {
		t.Fatal("Observe did not force Metrics on")
	}
}

// The live-detection half of the acceptance criteria: watching
// LivelockProbe must surface the abort-cycle pathology in a frame that
// closes before the watchdog trips — the watcher sees the livelock while
// it is still in progress, not in the post-mortem.
func TestObservedLivelockFlagsAbortCycleBeforeWatchdog(t *testing.T) {
	pump := observatory.NewPump(observatory.Config{Interval: 1_000, Retain: true})
	rep, out, err := ObservedLivelockProbe(1, pump)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Has(conflictgraph.AbortCycle) {
		t.Fatal("probe's own post-mortem found no abort cycle")
	}

	frames := pump.Frames()
	if len(frames) == 0 {
		t.Fatal("pump retained no frames")
	}
	var detectedAt uint64
	found := false
	for _, fr := range frames {
		if fr.Report != nil && fr.Report.Has(conflictgraph.AbortCycle) {
			detectedAt = uint64(fr.End)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no frame's windowed report flagged the abort cycle")
	}

	// First watchdog trip in the flight stream: scan the last frame's
	// window (the probe is short; nothing has been overwritten).
	var tripAt uint64
	tripped := false
	for _, rec := range frames[len(frames)-1].Recent {
		if rec.Kind == flight.WatchdogTrip {
			tripAt = uint64(rec.At)
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("duel never tripped the watchdog (probe misconfigured?)")
	}
	if detectedAt >= tripAt {
		t.Fatalf("live detection at t=%d is not before the watchdog trip at t=%d", detectedAt, tripAt)
	}
	// The unobserved probe still behaves identically.
	_, plain, err := LivelockProbe(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, out) {
		t.Fatalf("observation changed the probe outcome: %+v vs %+v", plain, out)
	}
}

// Sweeps re-bind the same pump run after run; a subscriber sees each run
// end with a Final frame.
func TestSweepRebindsObservePerRun(t *testing.T) {
	sc := quickSweep()
	pump := observatory.NewPump(observatory.Config{Interval: 10_000, Retain: true})
	sc.Observe = pump
	f, _ := workloads.ByName("HashTable")
	if _, err := sweep(sc, f, []SystemName{FlexTMEager}); err != nil {
		t.Fatal(err)
	}
	finals := 0
	for _, fr := range pump.Frames() {
		if fr.Final {
			finals++
		}
	}
	if want := len(sc.Threads); finals != want {
		t.Fatalf("saw %d final frames, want one per run (%d)", finals, want)
	}
}
