package harness

import (
	"bytes"
	"testing"

	"flextm/internal/telemetry"
	"flextm/internal/tmesi"
	"flextm/internal/workloads"
)

// quickSweep is QuickSweep (internal/harness/testsweep.go), the one
// canonical small test sweep.
func quickSweep() SweepConfig { return QuickSweep() }

func TestRunProducesThroughput(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	res, err := Run(RunConfig{
		System: FlexTMLazy, Workload: f, Threads: 4, OpsPerThread: 50,
		WarmupOps: 40, Machine: tmesi.DefaultConfig(), Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 240 { // (40/4 warmup + 50 timed) x 4 threads
		t.Fatalf("commits = %d, want 240", res.Commits)
	}
	if res.Throughput <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	if _, err := Run(RunConfig{System: FlexTMLazy, Workload: f, Threads: 99,
		Machine: tmesi.DefaultConfig()}); err == nil {
		t.Fatal("oversubscribed run accepted")
	}
	if _, err := Run(RunConfig{System: "bogus", Workload: f, Threads: 1,
		Machine: tmesi.DefaultConfig()}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestEverySystemConstructs(t *testing.T) {
	for _, n := range []SystemName{CGL, FlexTMEager, FlexTMLazy, RTMF, RSTM, TL2} {
		if _, err := NewRuntime(n, tmesi.New(tmesi.DefaultConfig())); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

func TestHashTableScalesAndFlexTMBeatsSTM(t *testing.T) {
	sc := quickSweep()
	f, _ := workloads.ByName("HashTable")
	plot, err := sweep(sc, f, []SystemName{FlexTMEager, RSTM})
	if err != nil {
		t.Fatal(err)
	}
	var flex, rstmS Series
	for _, s := range plot.Series {
		switch s.System {
		case FlexTMEager:
			flex = s
		case RSTM:
			rstmS = s
		}
	}
	if flex.Points[4] <= flex.Points[1] {
		t.Errorf("HashTable on FlexTM does not scale: 1T=%.2f 4T=%.2f",
			flex.Points[1], flex.Points[4])
	}
	if flex.Points[4] <= rstmS.Points[4] {
		t.Errorf("FlexTM (%.2f) not faster than RSTM (%.2f) at 4 threads",
			flex.Points[4], rstmS.Points[4])
	}
}

func TestFigure5LazyHelpsContendedWorkloads(t *testing.T) {
	// At paper scale (16 threads, enough operations) lazy conflict
	// management must beat eager on the contended workloads (Figure 5a-d).
	sc := quickSweep()
	sc.Threads = []int{16}
	sc.Ops = 400
	// RBTree shows a solid lazy win; RandomGraph's is narrower in this
	// model (our eager contention manager avoids the worst mid-flight
	// abort cascades), so assert lazy is at least competitive there.
	minRatio := map[string]float64{"RBTree": 1.0, "RandomGraph": 0.95}
	for _, name := range []string{"RandomGraph", "RBTree"} {
		f, _ := workloads.ByName(name)
		plot, err := sweepNormalizedTo(sc, f, []SystemName{FlexTMEager, FlexTMLazy}, FlexTMEager)
		if err != nil {
			t.Fatal(err)
		}
		var eager, lazy Series
		for _, s := range plot.Series {
			if s.System == FlexTMEager {
				eager = s
			} else {
				lazy = s
			}
		}
		if lazy.Points[16] < minRatio[name]*eager.Points[16] {
			t.Errorf("%s: lazy (%.2f) below %.2fx eager (%.2f) at 16T",
				name, lazy.Points[16], minRatio[name], eager.Points[16])
		}
	}
}

func TestMultiprogramEagerDonatesMoreToPrime(t *testing.T) {
	sc := quickSweep()
	sc.Ops = 60
	f, _ := workloads.ByName("RandomGraph")
	pts, err := Multiprogram(sc, f, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	var eagerP, lazyP float64
	for _, p := range pts {
		if p.Mode == FlexTMEager {
			eagerP = p.PrimeNorm
		} else {
			lazyP = p.PrimeNorm
		}
	}
	if eagerP <= 0 || lazyP <= 0 {
		t.Fatalf("prime made no progress: eager=%.2f lazy=%.2f", eagerP, lazyP)
	}
}

func TestOverflowAblationMeasuresCost(t *testing.T) {
	sc := quickSweep()
	sc.Ops = 60
	res, err := OverflowAblation(sc, []string{"RandomGraph"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Overflows == 0 {
		t.Fatal("small-L1 ablation produced no overflows")
	}
	if res[0].Slowdown <= 0 {
		t.Fatal("no slowdown computed")
	}
}

func TestPrintPlots(t *testing.T) {
	var buf bytes.Buffer
	PrintPlots(&buf, "test", []Plot{{
		Workload: "X",
		Series:   []Series{{System: CGL, Points: map[int]float64{1: 1, 4: 2}}},
	}}, []int{1, 4})
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestSignatureAblationNarrowHurts(t *testing.T) {
	sc := quickSweep()
	sc.Ops = 100
	res, err := SignatureAblation(sc, "RBTree", 8, []int{256, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("res = %+v", res)
	}
	narrow, wide := res[0], res[1]
	if narrow.AbortRate < wide.AbortRate {
		t.Errorf("narrow signature (%d bits, %.2f aborts/commit) should alias more than wide (%d, %.2f)",
			narrow.Bits, narrow.AbortRate, wide.Bits, wide.AbortRate)
	}
}

func TestManagerAblationRuns(t *testing.T) {
	sc := quickSweep()
	sc.Ops = 60
	res, err := ManagerAblation(sc, "RandomGraph", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 12 {
		t.Fatalf("want 12 rows (6 managers x 2 modes), got %d", len(res))
	}
	for _, r := range res {
		if r.Throughput <= 0 {
			t.Errorf("%s/%s: zero throughput", r.Mode, r.Manager)
		}
	}
}

func TestRunWithMetricsAttachesTelemetry(t *testing.T) {
	f, _ := workloads.ByName("HashTable")
	rc := RunConfig{
		System: FlexTMEager, Workload: f, Threads: 4, OpsPerThread: 50,
		WarmupOps: 40, Machine: tmesi.DefaultConfig(), Verify: true,
	}
	plain, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("telemetry present without Metrics")
	}
	rc.Metrics = true
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("Metrics run returned no telemetry snapshot")
	}
	snap := *res.Telemetry
	if snap.Empty() {
		t.Fatal("telemetry snapshot is empty")
	}
	// The attribution layer and the runtime's own stats must agree.
	a := snap.Attribution()
	if a.Commits != res.Commits {
		t.Fatalf("attributed commits = %d, stats commits = %d", a.Commits, res.Commits)
	}
	if a.Aborts != res.Aborts {
		t.Fatalf("attributed aborts = %d, stats aborts = %d", a.Aborts, res.Aborts)
	}
	// The protocol layer counted the same CAS-Commit successes.
	if ok := snap.Total(telemetry.CtrCommitOK); ok != res.Commits {
		t.Fatalf("cas-commit-ok = %d, commits = %d", ok, res.Commits)
	}
	// Every committed transaction spent some cycles; most of them useful.
	if a.Useful == 0 || a.Total() == 0 {
		t.Fatalf("degenerate attribution %+v", a)
	}
	// Commit-cycle histogram saw every commit.
	if h := snap.Hist(telemetry.HistCommitCycles); h.Count != res.Commits {
		t.Fatalf("commit histogram n=%d, commits=%d", h.Count, res.Commits)
	}
	// Signature accounting is consistent: with audit mode on, observed and
	// predicted FP rates are both probabilities.
	obs, pred := snap.SigFPRates()
	if obs < 0 || obs > 1 || pred < 0 || pred > 1 {
		t.Fatalf("FP rates out of range: observed=%f predicted=%f", obs, pred)
	}
}

func TestMetricsOverheadStaysDisabled(t *testing.T) {
	// Without Metrics, the machine's registry must stay nil so the
	// instrumentation sites take only their nil-check branch.
	sys := tmesi.New(tmesi.DefaultConfig())
	if sys.Telemetry() != nil {
		t.Fatal("fresh system has telemetry attached")
	}
}

func TestSignatureAblationReportsFPRates(t *testing.T) {
	sc := quickSweep()
	res, err := SignatureAblation(sc, "HashTable", 4, []int{256, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("points = %d", len(res))
	}
	// A 64-bit signature aliases far more than a 2048-bit one.
	if res[0].ObservedFP < res[1].ObservedFP {
		t.Fatalf("narrow FP %f < wide FP %f", res[0].ObservedFP, res[1].ObservedFP)
	}
	for _, r := range res {
		if r.ObservedFP < 0 || r.ObservedFP > 1 || r.PredictedFP < 0 || r.PredictedFP > 1 {
			t.Fatalf("FP rates out of range: %+v", r)
		}
	}
}

func TestSweepOnResultObservesEveryPoint(t *testing.T) {
	sc := quickSweep()
	sc.Metrics = true
	var seen int
	sc.OnResult = func(res Result) {
		seen++
		if res.Telemetry == nil {
			t.Errorf("%s@%d: no telemetry under Metrics sweep", res.System, res.Threads)
		}
	}
	f, _ := workloads.ByName("HashTable")
	if _, err := sweep(sc, f, []SystemName{FlexTMEager}); err != nil {
		t.Fatal(err)
	}
	if want := len(sc.Threads); seen != want {
		t.Fatalf("OnResult fired %d times, want %d", seen, want)
	}
}
