package harness

import (
	"reflect"
	"strings"
	"testing"

	"flextm/internal/stress"
)

// TestSoakCampaignConvergesClean is the tentpole soak guarantee: a
// randomized governed chaos campaign holds the oracle and conservation in
// every cell, at least one cell actually exercises the mitigation ladder,
// and every governed run ends back at level 0.
func TestSoakCampaignConvergesClean(t *testing.T) {
	sc := SoakConfig{Seed: 1}
	if testing.Short() {
		sc.Cells = 3
	}
	res := Soak(sc)
	for _, c := range res.Cells {
		for _, f := range c.Failures {
			t.Errorf("cell %s: %s", c.Schedule, f)
		}
		if c.Commits == 0 {
			t.Errorf("cell %s committed nothing", c.Schedule)
		}
	}
	if !res.Ok() {
		t.Fatalf("soak failed %d checks", res.Failures)
	}
	mitigated := 0
	for _, c := range res.Cells {
		if c.GovTransitions > 0 {
			mitigated++
		}
	}
	if mitigated == 0 {
		t.Fatalf("no cell exercised the ladder:\n%s", res.TransitionLog())
	}
	t.Logf("%d/%d cells mitigated", mitigated, len(res.Cells))
}

// TestSoakIsDeterministic: the campaign is a pure function of its config —
// cells, outcomes, and transition logs are bit-identical across runs.
func TestSoakIsDeterministic(t *testing.T) {
	sc := SoakConfig{Seed: 2, Cells: 2, Rounds: 20}
	a, b := Soak(sc), Soak(sc)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("soak diverged:\n--- a\n%s\n--- b\n%s", a.TransitionLog(), b.TransitionLog())
	}
}

// TestSoakCellsReplayFromSchedule: each cell's schedule string replays the
// governed run, closed loop included.
func TestSoakCellsReplayFromSchedule(t *testing.T) {
	res := Soak(SoakConfig{Seed: 3, Cells: 2, Rounds: 20})
	for _, c := range res.Cells {
		if !strings.Contains(c.Schedule, "gov") {
			t.Fatalf("governed cell schedule %q lacks gov token", c.Schedule)
		}
		cfg, err := stress.ParseSchedule(c.Schedule)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", c.Schedule, err)
		}
		out := stress.Run(cfg)
		if out.Commits != c.Commits || out.Aborts != c.Aborts ||
			out.GovTransitions != c.GovTransitions || out.GovLog != c.GovLog {
			t.Fatalf("replay of %q diverged: commits %d/%d aborts %d/%d govT %d/%d",
				c.Schedule, out.Commits, c.Commits, out.Aborts, c.Aborts,
				out.GovTransitions, c.GovTransitions)
		}
	}
}
