package harness

import "flextm/internal/tmesi"

// QuickSweep is the one canonical small sweep shared by the harness tests,
// the observation-plane tests, and the root benchmarks: the default
// machine, two thread counts, and an op budget just large enough to
// exercise contention. Tests that need a variation take a copy and
// override fields rather than re-deriving the configuration, so "the quick
// test sweep" means one thing across the tree.
func QuickSweep() SweepConfig {
	return SweepConfig{
		Machine: tmesi.DefaultConfig(),
		Threads: []int{1, 4},
		Ops:     40,
		Verify:  true,
	}
}
