// Package telemetry is the observability layer of the FlexTM stack: a
// registry of per-core counters and cycle histograms covering every
// decoupled mechanism the paper argues for separately — signatures
// (true-conflict vs Bloom false-positive hits), conflict summary tables,
// programmable data isolation (TMI/TI churn, CAS-Commit outcomes), overflow
// tables, alert-on-update, and contention-manager decisions — plus the
// per-transaction cycle attribution (useful work / stall-wait / aborted
// work / commit overhead) the paper uses to explain its eager-vs-lazy
// results.
//
// A nil *Registry is the disabled state: every method has a nil check at
// the top, so instrumentation sites call unconditionally and pay only a
// predictable branch when telemetry is off. No method allocates on the
// update path; snapshotting and printing are the only allocating
// operations.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"flextm/internal/sim"
)

// Counter identifies one per-core event counter.
type Counter int

// Per-mechanism counters. Cycle-valued counters (suffix Cycles or Ppm) are
// accumulated with Add; the rest are unit counts.
const (
	// TMESI protocol / programmable data isolation.
	CtrTMIEnter         Counter = iota // lines entering the TMI state via TStore
	CtrTIEnter                         // threatened loads filled in the TI state
	CtrProbes                          // forwarding rounds issued for this core's misses
	CtrThreatened                      // Threatened responses received
	CtrExposedRead                     // Exposed-Read responses received
	CtrStrongIsoAbort                  // transactions doomed by non-txn accesses (victim side)
	CtrSummaryTrap                     // L2 summary-signature traps taken
	CtrCommitOK                        // CAS-Commit: success
	CtrCommitAborted                   // CAS-Commit: status word already aborted
	CtrCommitCSTFail                   // CAS-Commit: refused on non-empty W-R/W-W
	CtrFlashCommitLines                // TMI lines flash-committed to M
	CtrFlashAbortLines                 // speculative lines dropped by flash abort

	// Access signatures.
	CtrSigTruePos  // membership hits confirmed by the precise shadow set
	CtrSigFalsePos // membership hits that were Bloom aliasing
	CtrSigTrueNeg  // membership misses (provably absent)
	CtrSigPredFPpm // accumulated analytic FP probability, parts-per-million

	// Conflict summary tables.
	CtrCSTSet       // conflict bits set by the protocol
	CtrCSTClear     // bits cleared by software (conflict resolution, W-R scrub)
	CtrCSTCopyClear // copy-and-clear reads in the commit routine

	// Overflow table.
	CtrOTAlloc     // first-overflow allocation traps
	CtrOTSpill     // TMI lines spilled to the OT
	CtrOTWalkHit   // OT walks that found the line
	CtrOTWalkFalse // OT walks provoked by an Osig false positive
	CtrOTExpand    // way-overflow expansion traps
	CtrOTDrainLine // lines streamed back during committed copy-back

	// Alert-on-update.
	CtrALoad // ALoad instructions issued
	CtrAlert // alerts delivered (invalidation, eviction, or synthetic)

	// Contention-manager decisions.
	CtrCMWait          // decisions: wait and re-examine
	CtrCMAbortEnemy    // decisions: abort the enemy
	CtrCMAbortSelf     // decisions: abort self
	CtrCMWaitCycles    // cycles spent in decision back-off
	CtrCMBackoffCycles // cycles spent in post-abort retry back-off

	// Per-transaction cycle attribution.
	CtrTxnCommits  // committed transactions attributed
	CtrTxnAborts   // aborted attempts attributed
	CtrCycUseful   // cycles of committed work outside stalls and commit
	CtrCycStall    // cycles waiting (CM back-off, retry back-off)
	CtrCycAborted  // cycles of work discarded by aborts
	CtrCycCommitOv // cycles inside the commit routine of committed attempts

	// Fault injection and liveness hardening.
	CtrFaultInjected   // injected hardware faults that hit this core
	CtrWatchdogTrip    // liveness watchdog trips (abort/stall budget exhausted)
	CtrEscalation      // entries into the serialized fallback mode
	CtrEscalatedCommit // commits completed inside the fallback

	// Resilience governor (internal/governor).
	CtrGovStep           // mitigation-ladder transitions (raises and lowers)
	CtrGovAdmitWaitCycles // cycles threads spent parked at the admission gate
	CtrGovSigWiden       // live signature widen/rehash operations

	NumCounters
)

var counterNames = [NumCounters]string{
	CtrTMIEnter:         "tmi-enter",
	CtrTIEnter:          "ti-enter",
	CtrProbes:           "probes",
	CtrThreatened:       "threatened",
	CtrExposedRead:      "exposed-read",
	CtrStrongIsoAbort:   "strong-iso-abort",
	CtrSummaryTrap:      "summary-trap",
	CtrCommitOK:         "cas-commit-ok",
	CtrCommitAborted:    "cas-commit-aborted",
	CtrCommitCSTFail:    "cas-commit-cst-fail",
	CtrFlashCommitLines: "flash-commit-lines",
	CtrFlashAbortLines:  "flash-abort-lines",
	CtrSigTruePos:       "sig-true-pos",
	CtrSigFalsePos:      "sig-false-pos",
	CtrSigTrueNeg:       "sig-true-neg",
	CtrSigPredFPpm:      "sig-pred-fp-ppm",
	CtrCSTSet:           "cst-set",
	CtrCSTClear:         "cst-clear",
	CtrCSTCopyClear:     "cst-copy-clear",
	CtrOTAlloc:          "ot-alloc",
	CtrOTSpill:          "ot-spill",
	CtrOTWalkHit:        "ot-walk-hit",
	CtrOTWalkFalse:      "ot-walk-false",
	CtrOTExpand:         "ot-expand",
	CtrOTDrainLine:      "ot-drain-line",
	CtrALoad:            "aou-aload",
	CtrAlert:            "aou-alert",
	CtrCMWait:           "cm-wait",
	CtrCMAbortEnemy:     "cm-abort-enemy",
	CtrCMAbortSelf:      "cm-abort-self",
	CtrCMWaitCycles:     "cm-wait-cycles",
	CtrCMBackoffCycles:  "cm-backoff-cycles",
	CtrTxnCommits:       "txn-commits",
	CtrTxnAborts:        "txn-aborts",
	CtrCycUseful:        "cyc-useful",
	CtrCycStall:         "cyc-stall",
	CtrCycAborted:       "cyc-aborted",
	CtrCycCommitOv:      "cyc-commit-overhead",
	CtrFaultInjected:    "fault-injected",
	CtrWatchdogTrip:     "watchdog-trip",
	CtrEscalation:       "escalation",
	CtrEscalatedCommit:  "escalated-commit",

	CtrGovStep:            "gov-step",
	CtrGovAdmitWaitCycles: "gov-admit-wait-cycles",
	CtrGovSigWiden:        "gov-sig-widen",
}

// String returns the counter's stable snake-case name.
func (c Counter) String() string {
	if c >= 0 && c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", int(c))
}

// groups partitions the counters by mechanism for printing.
var groups = []struct {
	Name     string
	Counters []Counter
}{
	{"protocol (TMESI/PDI)", []Counter{CtrTMIEnter, CtrTIEnter, CtrProbes, CtrThreatened,
		CtrExposedRead, CtrStrongIsoAbort, CtrSummaryTrap, CtrCommitOK, CtrCommitAborted,
		CtrCommitCSTFail, CtrFlashCommitLines, CtrFlashAbortLines}},
	{"signatures", []Counter{CtrSigTruePos, CtrSigFalsePos, CtrSigTrueNeg}},
	{"conflict summary tables", []Counter{CtrCSTSet, CtrCSTClear, CtrCSTCopyClear}},
	{"overflow table", []Counter{CtrOTAlloc, CtrOTSpill, CtrOTWalkHit, CtrOTWalkFalse,
		CtrOTExpand, CtrOTDrainLine}},
	{"alert-on-update", []Counter{CtrALoad, CtrAlert}},
	{"contention manager", []Counter{CtrCMWait, CtrCMAbortEnemy, CtrCMAbortSelf,
		CtrCMWaitCycles, CtrCMBackoffCycles}},
	{"faults & liveness", []Counter{CtrFaultInjected, CtrWatchdogTrip, CtrEscalation,
		CtrEscalatedCommit}},
	{"governor", []Counter{CtrGovStep, CtrGovAdmitWaitCycles, CtrGovSigWiden}},
}

// HistID identifies one per-core cycle histogram.
type HistID int

// Histograms. Buckets are powers of two: bucket i holds values whose bit
// length is i (i.e. v in [2^(i-1), 2^i)), bucket 0 holds zero.
const (
	HistCommitCycles HistID = iota // duration of committed attempts
	HistAbortCycles                // duration of aborted attempts
	HistCMWaitCycles               // individual CM back-off waits
	NumHists
)

var histNames = [NumHists]string{
	HistCommitCycles: "commit-cycles",
	HistAbortCycles:  "abort-cycles",
	HistCMWaitCycles: "cm-wait-cycles",
}

// String returns the histogram's stable name.
func (h HistID) String() string {
	if h >= 0 && h < NumHists {
		return histNames[h]
	}
	return fmt.Sprintf("HistID(%d)", int(h))
}

// HistBuckets is the fixed bucket count (enough for 2^63-cycle values).
const HistBuckets = 64

// Hist is a power-of-two-bucketed histogram of cycle values.
type Hist struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
}

func (h *Hist) observe(v uint64) {
	h.Buckets[bits.Len64(v)]++
	h.Count++
	h.Sum += v
}

// Merge adds other's observations into h.
func (h *Hist) Merge(other *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
}

// Mean returns the average observed value.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-th quantile (q in [0,1]),
// resolved to the containing power-of-two bucket. q outside [0,1] clamps:
// converting a negative float to uint64 is implementation-defined, so an
// out-of-range q must never reach the index computation.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 || q != q { // NaN compares false against everything
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if cum > target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<63 - 1
}

// Event is one structured occurrence recorded by the event sink, for
// post-mortem inspection of mechanism behavior at finer grain than
// counters (e.g. each contention-manager verdict with its enemy).
type Event struct {
	At   sim.Time
	Core int
	Mech string // mechanism tag: "cm", "ot", ...
	What string // event name within the mechanism
	Arg  int64  // event-specific operand (enemy core, line count, ...)
}

// coreSlot holds one core's counters and histograms.
type coreSlot struct {
	ctr  [NumCounters]uint64
	hist [NumHists]Hist
}

// Registry is the telemetry store for one simulated machine. A nil
// *Registry is valid and means "disabled": all update methods return
// immediately.
type Registry struct {
	cores    []coreSlot
	events   []Event
	eventCap int
	// eventsDropped counts Emit calls refused because the sink was full —
	// the consumer's signal that Events() is a truncated prefix, not the
	// whole story.
	eventsDropped uint64
}

// New returns an enabled registry sized for the given core count.
func New(cores int) *Registry {
	return &Registry{cores: make([]coreSlot, cores)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Inc adds 1 to counter c on core.
func (r *Registry) Inc(core int, c Counter) {
	if r == nil {
		return
	}
	r.cores[core].ctr[c]++
}

// Add adds n to counter c on core.
func (r *Registry) Add(core int, c Counter, n uint64) {
	if r == nil {
		return
	}
	r.cores[core].ctr[c] += n
}

// Observe records v in histogram h on core.
func (r *Registry) Observe(core int, h HistID, v uint64) {
	if r == nil {
		return
	}
	r.cores[core].hist[h].observe(v)
}

// EnableEvents switches the structured event sink on with the given
// capacity (further events are dropped once full; 0 disables).
func (r *Registry) EnableEvents(capacity int) {
	if r == nil {
		return
	}
	r.eventCap = capacity
	if r.events == nil && capacity > 0 {
		r.events = make([]Event, 0, min(capacity, 4096))
	}
}

// Emit records a structured event if the sink is enabled and has room.
// Events arriving at a full sink are counted in DroppedEvents rather than
// silently discarded.
func (r *Registry) Emit(e Event) {
	if r == nil || r.eventCap == 0 {
		return
	}
	if len(r.events) >= r.eventCap {
		r.eventsDropped++
		return
	}
	r.events = append(r.events, e)
}

// DroppedEvents returns how many events were refused by a full sink.
func (r *Registry) DroppedEvents() uint64 {
	if r == nil {
		return 0
	}
	return r.eventsDropped
}

// Events returns the recorded structured events in order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Reset zeroes all counters, histograms, and events.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for i := range r.cores {
		r.cores[i] = coreSlot{}
	}
	r.events = r.events[:0]
	r.eventsDropped = 0
}

// CoreSnapshot is one core's frozen telemetry state.
type CoreSnapshot struct {
	Counters [NumCounters]uint64
	Hists    [NumHists]Hist
}

// Snapshot is a frozen copy of a registry's state. Snapshots from the same
// machine are diff-able, which is how callers meter individual phases of a
// longer run.
type Snapshot struct {
	Cores []CoreSnapshot
	// DroppedEvents is the event sink's refusal count at snapshot time.
	DroppedEvents uint64
}

// Snapshot returns a deep copy of the registry's current state (empty for a
// nil registry).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{Cores: make([]CoreSnapshot, len(r.cores)), DroppedEvents: r.eventsDropped}
	for i := range r.cores {
		s.Cores[i].Counters = r.cores[i].ctr
		s.Cores[i].Hists = r.cores[i].hist
	}
	return s
}

// Diff returns s - prev, element-wise. prev must be from the same machine
// (same core count) or empty; counts are assumed monotone, and any
// underflow clamps to zero so a mismatched pair cannot produce garbage
// deltas.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Cores:         make([]CoreSnapshot, len(s.Cores)),
		DroppedEvents: sub(s.DroppedEvents, prev.DroppedEvents),
	}
	for i := range s.Cores {
		out.Cores[i] = s.Cores[i]
		if i >= len(prev.Cores) {
			continue
		}
		p := &prev.Cores[i]
		for c := range out.Cores[i].Counters {
			out.Cores[i].Counters[c] = sub(s.Cores[i].Counters[c], p.Counters[c])
		}
		for h := range out.Cores[i].Hists {
			d := &out.Cores[i].Hists[h]
			for b := range d.Buckets {
				d.Buckets[b] = sub(d.Buckets[b], p.Hists[h].Buckets[b])
			}
			d.Count = sub(d.Count, p.Hists[h].Count)
			d.Sum = sub(d.Sum, p.Hists[h].Sum)
		}
	}
	return out
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Empty reports whether the snapshot holds no observations.
func (s Snapshot) Empty() bool {
	for i := range s.Cores {
		for _, v := range s.Cores[i].Counters {
			if v != 0 {
				return false
			}
		}
		for h := range s.Cores[i].Hists {
			if s.Cores[i].Hists[h].Count != 0 {
				return false
			}
		}
	}
	return true
}

// Total sums counter c across cores.
func (s Snapshot) Total(c Counter) uint64 {
	var t uint64
	for i := range s.Cores {
		t += s.Cores[i].Counters[c]
	}
	return t
}

// PerCore returns counter c's per-core values.
func (s Snapshot) PerCore(c Counter) []uint64 {
	out := make([]uint64, len(s.Cores))
	for i := range s.Cores {
		out[i] = s.Cores[i].Counters[c]
	}
	return out
}

// Hist returns histogram h merged across cores.
func (s Snapshot) Hist(h HistID) Hist {
	var out Hist
	for i := range s.Cores {
		out.Merge(&s.Cores[i].Hists[h])
	}
	return out
}

// Totals returns every non-zero counter total keyed by its stable name
// (the machine-readable form used by paperbench -json).
func (s Snapshot) Totals() map[string]uint64 {
	out := map[string]uint64{}
	for c := Counter(0); c < NumCounters; c++ {
		if t := s.Total(c); t != 0 {
			out[c.String()] = t
		}
	}
	return out
}

// SigFPRates returns the empirically observed signature false-positive rate
// (false hits over ground-truth-negative membership tests) and the mean
// analytic prediction accumulated at the same tests, for comparison against
// signature.FalsePositiveRate.
func (s Snapshot) SigFPRates() (observed, predicted float64) {
	fp := s.Total(CtrSigFalsePos)
	tn := s.Total(CtrSigTrueNeg)
	neg := fp + tn
	if neg == 0 {
		return 0, 0
	}
	observed = float64(fp) / float64(neg)
	predicted = float64(s.Total(CtrSigPredFPpm)) / 1e6 / float64(neg)
	return observed, predicted
}

// Attribution is the cycle breakdown of transactional execution (the
// decomposition the paper uses to explain Figure 5): where each core's
// cycles went, summed over the attributed transactions.
type Attribution struct {
	Commits  uint64
	Aborts   uint64
	Useful   uint64 // committed work outside stalls and the commit routine
	Stall    uint64 // CM waits and retry back-off
	Aborted  uint64 // work discarded by aborts
	CommitOv uint64 // commit-routine cycles of committed attempts
}

// Total returns all attributed cycles.
func (a Attribution) Total() uint64 { return a.Useful + a.Stall + a.Aborted + a.CommitOv }

// attributionOf extracts the attribution counters from one counter array.
func attributionOf(ctr *[NumCounters]uint64) Attribution {
	return Attribution{
		Commits:  ctr[CtrTxnCommits],
		Aborts:   ctr[CtrTxnAborts],
		Useful:   ctr[CtrCycUseful],
		Stall:    ctr[CtrCycStall],
		Aborted:  ctr[CtrCycAborted],
		CommitOv: ctr[CtrCycCommitOv],
	}
}

// Attribution returns the machine-wide cycle attribution.
func (s Snapshot) Attribution() Attribution {
	var a Attribution
	for i := range s.Cores {
		ca := attributionOf(&s.Cores[i].Counters)
		a.Commits += ca.Commits
		a.Aborts += ca.Aborts
		a.Useful += ca.Useful
		a.Stall += ca.Stall
		a.Aborted += ca.Aborted
		a.CommitOv += ca.CommitOv
	}
	return a
}

// AttributionPerCore returns each core's cycle attribution.
func (s Snapshot) AttributionPerCore() []Attribution {
	out := make([]Attribution, len(s.Cores))
	for i := range s.Cores {
		out[i] = attributionOf(&s.Cores[i].Counters)
	}
	return out
}

// Print writes the per-mechanism counter totals, one section per
// mechanism, skipping all-zero groups.
func (s Snapshot) Print(w io.Writer) {
	for _, g := range groups {
		any := false
		for _, c := range g.Counters {
			if s.Total(c) != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "[%s]\n", g.Name)
		for _, c := range g.Counters {
			fmt.Fprintf(w, "  %-22s %12d\n", c, s.Total(c))
		}
		if g.Name == "signatures" {
			if obs, pred := s.SigFPRates(); obs > 0 || pred > 0 {
				fmt.Fprintf(w, "  %-22s %12.5f (analytic %.5f)\n", "false-positive rate", obs, pred)
			}
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		m := s.Hist(h)
		if m.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "[hist %s] n=%d mean=%.0f p50<=%d p90<=%d p99<=%d\n",
			h, m.Count, m.Mean(), m.Quantile(0.50), m.Quantile(0.90), m.Quantile(0.99))
	}
	if s.DroppedEvents > 0 {
		fmt.Fprintf(w, "[events] dropped-events %d (sink capacity exceeded; event log is truncated)\n",
			s.DroppedEvents)
	}
}

// PrintAttribution writes the cycle-attribution table: the machine-wide
// split plus a per-core breakdown for cores that committed work.
func (s Snapshot) PrintAttribution(w io.Writer) {
	a := s.Attribution()
	total := a.Total()
	if total == 0 {
		fmt.Fprintln(w, "cycle attribution: no attributed transactions")
		return
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
	fmt.Fprintf(w, "cycle attribution over %d commits, %d aborted attempts:\n", a.Commits, a.Aborts)
	fmt.Fprintf(w, "  %-16s %14s %7s %16s\n", "component", "cycles", "share", "cycles/commit")
	perCommit := func(v uint64) float64 {
		if a.Commits == 0 {
			return 0
		}
		return float64(v) / float64(a.Commits)
	}
	rows := []struct {
		name string
		v    uint64
	}{
		{"useful work", a.Useful},
		{"stall-wait", a.Stall},
		{"aborted work", a.Aborted},
		{"commit overhead", a.CommitOv},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "  %-16s %14d %6.1f%% %16.1f\n", row.name, row.v, pct(row.v), perCommit(row.v))
	}
	fmt.Fprintf(w, "  per-core: core commits useful%% stall%% aborted%% commit%%\n")
	for i, ca := range s.AttributionPerCore() {
		ct := ca.Total()
		if ct == 0 {
			continue
		}
		p := func(v uint64) float64 { return 100 * float64(v) / float64(ct) }
		fmt.Fprintf(w, "    %4d %8d %7.1f %6.1f %8.1f %7.1f\n",
			i, ca.Commits, p(ca.Useful), p(ca.Stall), p(ca.Aborted), p(ca.CommitOv))
	}
}

// Compact returns a one-line digest of the snapshot, used by sweep modes
// that print one data point per line.
func Compact(s Snapshot) string {
	obs, pred := s.SigFPRates()
	a := s.Attribution()
	total := a.Total()
	pct := func(v uint64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	return fmt.Sprintf(
		"sig tp/fp=%d/%d (fpr %.4f~%.4f) cst s/c=%d/%d ot spill/walk=%d/%d alerts=%d cm w/e/s=%d/%d/%d cyc u/s/a/c=%.0f/%.0f/%.0f/%.0f%%",
		s.Total(CtrSigTruePos), s.Total(CtrSigFalsePos), obs, pred,
		s.Total(CtrCSTSet), s.Total(CtrCSTClear),
		s.Total(CtrOTSpill), s.Total(CtrOTWalkHit)+s.Total(CtrOTWalkFalse),
		s.Total(CtrAlert),
		s.Total(CtrCMWait), s.Total(CtrCMAbortEnemy), s.Total(CtrCMAbortSelf),
		pct(a.Useful), pct(a.Stall), pct(a.Aborted), pct(a.CommitOv))
}

// SortedCounterNames returns every counter name in display order (stable
// across runs; useful for machine consumers discovering the schema).
func SortedCounterNames() []string {
	out := make([]string, 0, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		out = append(out, c.String())
	}
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
