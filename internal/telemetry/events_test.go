package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEmitCountsDropsAtCapacity(t *testing.T) {
	r := New(2)
	r.EnableEvents(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Core: 0, Mech: "cm", What: "x", Arg: int64(i)})
	}
	if got := len(r.Events()); got != 3 {
		t.Fatalf("events stored = %d, want 3", got)
	}
	if got := r.DroppedEvents(); got != 2 {
		t.Fatalf("DroppedEvents = %d, want 2", got)
	}
	snap := r.Snapshot()
	if snap.DroppedEvents != 2 {
		t.Fatalf("Snapshot.DroppedEvents = %d, want 2", snap.DroppedEvents)
	}

	var buf bytes.Buffer
	snap.Print(&buf)
	if !strings.Contains(buf.String(), "dropped-events 2") {
		t.Fatalf("Print does not surface dropped events:\n%s", buf.String())
	}

	// A disabled sink refuses silently: nothing was ever admitted, so
	// nothing is "dropped".
	r2 := New(1)
	r2.Emit(Event{Core: 0, Mech: "cm", What: "x"})
	if got := r2.DroppedEvents(); got != 0 {
		t.Fatalf("disabled sink DroppedEvents = %d, want 0", got)
	}

	// Reset clears the drop count with everything else.
	r.Reset()
	if got := r.DroppedEvents(); got != 0 {
		t.Fatalf("DroppedEvents after Reset = %d, want 0", got)
	}
}

func TestSnapshotDiffDroppedEvents(t *testing.T) {
	r := New(1)
	r.EnableEvents(1)
	r.Emit(Event{What: "a"})
	r.Emit(Event{What: "b"})
	first := r.Snapshot()
	r.Emit(Event{What: "c"})
	r.Emit(Event{What: "d"})
	second := r.Snapshot()
	if d := second.Diff(first); d.DroppedEvents != 2 {
		t.Fatalf("Diff.DroppedEvents = %d, want 2", d.DroppedEvents)
	}
	// Mismatched (or reset) pairs clamp to zero rather than underflowing.
	if d := first.Diff(second); d.DroppedEvents != 0 {
		t.Fatalf("reversed Diff.DroppedEvents = %d, want 0", d.DroppedEvents)
	}
}

func TestEmptyHistIsGuarded(t *testing.T) {
	var h Hist
	if m := h.Mean(); m != 0 || math.IsNaN(m) {
		t.Fatalf("empty Mean = %v, want 0", m)
	}
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
	// An empty snapshot histogram (the Print path) must also be zero-safe.
	s := New(1).Snapshot()
	m := s.Hist(HistID(0))
	if v := m.Mean(); v != 0 {
		t.Fatalf("snapshot empty Mean = %v", v)
	}
}

func TestQuantileClampsOutOfRange(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.observe(uint64(i))
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	if got := h.Quantile(-5); got != lo {
		t.Fatalf("Quantile(-5) = %d, want clamp to Quantile(0) = %d", got, lo)
	}
	if got := h.Quantile(7); got != hi {
		t.Fatalf("Quantile(7) = %d, want clamp to Quantile(1) = %d", got, hi)
	}
	if got := h.Quantile(math.NaN()); got != lo {
		t.Fatalf("Quantile(NaN) = %d, want clamp to Quantile(0) = %d", got, lo)
	}
	if q50 := h.Quantile(0.5); q50 < lo || q50 > hi {
		t.Fatalf("Quantile(0.5) = %d outside [%d, %d]", q50, lo, hi)
	}
}
