package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if strings.HasPrefix(c.String(), "Counter(") {
			t.Errorf("counter %d has no name", c)
		}
	}
	for h := HistID(0); h < NumHists; h++ {
		if strings.HasPrefix(h.String(), "HistID(") {
			t.Errorf("hist %d has no name", h)
		}
	}
	if n := len(SortedCounterNames()); n != int(NumCounters) {
		t.Fatalf("SortedCounterNames returned %d names, want %d", n, NumCounters)
	}
}

func TestNilRegistryIsSafeAndEmpty(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry claims enabled")
	}
	r.Inc(0, CtrProbes)
	r.Add(3, CtrCycStall, 100)
	r.Observe(1, HistCommitCycles, 42)
	r.EnableEvents(10)
	r.Emit(Event{Core: 0, Mech: "cm", What: "x"})
	r.Reset()
	if got := r.Events(); got != nil {
		t.Fatalf("nil registry events = %v", got)
	}
	if s := r.Snapshot(); !s.Empty() {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New(4)
	r.Inc(0, CtrProbes)
	r.Inc(0, CtrProbes)
	r.Add(2, CtrCSTSet, 5)
	r.Observe(1, HistCommitCycles, 100)
	prev := r.Snapshot()

	r.Inc(0, CtrProbes)
	r.Add(2, CtrCSTSet, 3)
	r.Observe(1, HistCommitCycles, 200)
	r.Observe(1, HistCommitCycles, 50)
	cur := r.Snapshot()

	d := cur.Diff(prev)
	if got := d.Total(CtrProbes); got != 1 {
		t.Fatalf("diff probes = %d, want 1", got)
	}
	if got := d.Total(CtrCSTSet); got != 3 {
		t.Fatalf("diff cst-set = %d, want 3", got)
	}
	h := d.Hist(HistCommitCycles)
	if h.Count != 2 || h.Sum != 250 {
		t.Fatalf("diff hist count=%d sum=%d, want 2/250", h.Count, h.Sum)
	}
	// The snapshots are frozen copies: mutating the registry afterwards
	// must not change them.
	r.Add(0, CtrProbes, 100)
	if cur.Total(CtrProbes) != 3 {
		t.Fatal("snapshot aliases live registry state")
	}
	// Diff against an empty snapshot is the identity.
	if id := cur.Diff(Snapshot{}); id.Total(CtrCSTSet) != cur.Total(CtrCSTSet) {
		t.Fatal("diff against empty snapshot changed totals")
	}
	// Mismatched (reversed) diff clamps to zero rather than underflowing.
	rev := prev.Diff(cur)
	if got := rev.Total(CtrProbes); got != 0 {
		t.Fatalf("reversed diff probes = %d, want clamp to 0", got)
	}
}

func TestResetAndEmpty(t *testing.T) {
	r := New(2)
	if !r.Snapshot().Empty() {
		t.Fatal("fresh registry not empty")
	}
	r.Inc(1, CtrAlert)
	r.Observe(0, HistAbortCycles, 7)
	if r.Snapshot().Empty() {
		t.Fatal("populated registry reported empty")
	}
	r.Reset()
	if !r.Snapshot().Empty() {
		t.Fatal("reset registry not empty")
	}
}

func TestEventSink(t *testing.T) {
	r := New(2)
	r.Emit(Event{Mech: "cm"}) // sink disabled: dropped
	if len(r.Events()) != 0 {
		t.Fatal("events recorded before EnableEvents")
	}
	r.EnableEvents(2)
	r.Emit(Event{At: 1, Mech: "cm", What: "wait"})
	r.Emit(Event{At: 2, Mech: "cm", What: "abort-enemy"})
	r.Emit(Event{At: 3, Mech: "cm", What: "overflow"}) // over capacity
	ev := r.Events()
	if len(ev) != 2 || ev[1].What != "abort-enemy" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestHistBucketsAndQuantiles(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.observe(v)
	}
	if h.Count != 6 || h.Sum != 1010 {
		t.Fatalf("count=%d sum=%d", h.Count, h.Sum)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[3] != 1 || h.Buckets[10] != 1 {
		t.Fatalf("buckets = %v", h.Buckets[:12])
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %d", q)
	}
	// p99 lands in the 1000 bucket: bound is 2^10-1.
	if q := h.Quantile(0.99); q != 1023 {
		t.Fatalf("q99 = %d, want 1023", q)
	}
	if m := h.Mean(); m < 168 || m > 169 {
		t.Fatalf("mean = %f", m)
	}
}

func TestSigFPRates(t *testing.T) {
	r := New(1)
	// 1 false positive over 4 ground-truth negatives; the analytic model
	// predicted 0.2 at each test.
	r.Inc(0, CtrSigFalsePos)
	r.Add(0, CtrSigTrueNeg, 3)
	r.Add(0, CtrSigPredFPpm, 4*200_000)
	obs, pred := r.Snapshot().SigFPRates()
	if obs != 0.25 {
		t.Fatalf("observed = %f, want 0.25", obs)
	}
	if pred < 0.199 || pred > 0.201 {
		t.Fatalf("predicted = %f, want ~0.2", pred)
	}
}

func TestAttribution(t *testing.T) {
	r := New(2)
	r.Inc(0, CtrTxnCommits)
	r.Add(0, CtrCycUseful, 700)
	r.Add(0, CtrCycCommitOv, 100)
	r.Inc(1, CtrTxnAborts)
	r.Add(1, CtrCycAborted, 150)
	r.Add(1, CtrCycStall, 50)
	s := r.Snapshot()
	a := s.Attribution()
	if a.Commits != 1 || a.Aborts != 1 || a.Total() != 1000 {
		t.Fatalf("attribution = %+v", a)
	}
	per := s.AttributionPerCore()
	if per[0].Useful != 700 || per[1].Aborted != 150 {
		t.Fatalf("per-core attribution = %+v", per)
	}
	var buf bytes.Buffer
	s.PrintAttribution(&buf)
	for _, want := range []string{"useful work", "stall-wait", "aborted work", "commit overhead"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("attribution table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestPrintAndCompact(t *testing.T) {
	r := New(2)
	r.Inc(0, CtrTMIEnter)
	r.Inc(1, CtrSigTruePos)
	r.Observe(0, HistCommitCycles, 500)
	s := r.Snapshot()
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	for _, want := range []string{"protocol (TMESI/PDI)", "tmi-enter", "signatures", "hist commit-cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("print missing %q:\n%s", want, out)
		}
	}
	// All-zero groups are skipped.
	if strings.Contains(out, "overflow table") {
		t.Fatalf("all-zero group printed:\n%s", out)
	}
	if c := Compact(s); !strings.Contains(c, "sig tp/fp=1/0") {
		t.Fatalf("compact digest = %q", c)
	}
}

// TestHotPathDoesNotAllocate pins the zero-cost-when-disabled contract: the
// counter/histogram update path allocates nothing, whether the registry is
// nil (disabled) or live.
func TestHotPathDoesNotAllocate(t *testing.T) {
	var nilReg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		nilReg.Inc(0, CtrProbes)
		nilReg.Add(0, CtrCycStall, 7)
		nilReg.Observe(0, HistCommitCycles, 7)
		nilReg.Emit(Event{})
	}); n != 0 {
		t.Fatalf("disabled path allocates %v per op", n)
	}
	r := New(16)
	if n := testing.AllocsPerRun(1000, func() {
		r.Inc(3, CtrProbes)
		r.Add(3, CtrCycStall, 7)
		r.Observe(3, HistCommitCycles, 7)
	}); n != 0 {
		t.Fatalf("enabled path allocates %v per op", n)
	}
}

func BenchmarkDisabledInc(b *testing.B) {
	var r *Registry
	for i := 0; i < b.N; i++ {
		r.Inc(0, CtrProbes)
	}
}

func BenchmarkEnabledInc(b *testing.B) {
	r := New(16)
	for i := 0; i < b.N; i++ {
		r.Inc(i&15, CtrProbes)
	}
}
