package telemetry

import "testing"

// The observatory pump diffs successive snapshots every interval, so Diff
// must stay sane under the degenerate inputs a live system can hand it:
// registry resets between samples, mismatched core counts after a re-bind,
// and values near the uint64 wraparound boundary.

func TestDiffOrdinary(t *testing.T) {
	r := New(2)
	r.Add(0, CtrTxnCommits, 10)
	prev := r.Snapshot()
	r.Add(0, CtrTxnCommits, 7)
	r.Add(1, CtrTxnAborts, 3)
	d := r.Snapshot().Diff(prev)
	if got := d.Total(CtrTxnCommits); got != 7 {
		t.Fatalf("commit delta = %d, want 7", got)
	}
	if got := d.Total(CtrTxnAborts); got != 3 {
		t.Fatalf("abort delta = %d, want 3", got)
	}
}

func TestDiffClampsOnCounterReset(t *testing.T) {
	// A Reset between samples makes the current value smaller than the
	// previous one. The delta must clamp to zero, not underflow to ~2^64.
	r := New(1)
	r.Add(0, CtrTxnCommits, 100)
	prev := r.Snapshot()
	r.Reset()
	r.Add(0, CtrTxnCommits, 5)
	d := r.Snapshot().Diff(prev)
	if got := d.Total(CtrTxnCommits); got != 0 {
		t.Fatalf("post-reset delta = %d, want clamp to 0", got)
	}
}

func TestDiffNearWraparound(t *testing.T) {
	// Explicit boundary values: a huge previous count against a small
	// current one (reset-like) and max-uint64 growth both stay in range.
	var prev, cur Snapshot
	prev.Cores = make([]CoreSnapshot, 1)
	cur.Cores = make([]CoreSnapshot, 1)
	prev.Cores[0].Counters[CtrProbes] = ^uint64(0) // 2^64-1
	cur.Cores[0].Counters[CtrProbes] = 1
	if got := cur.Diff(prev).Total(CtrProbes); got != 0 {
		t.Fatalf("wrapped counter delta = %d, want clamp to 0", got)
	}
	prev.Cores[0].Counters[CtrProbes] = 1
	cur.Cores[0].Counters[CtrProbes] = ^uint64(0)
	if got := cur.Diff(prev).Total(CtrProbes); got != ^uint64(0)-1 {
		t.Fatalf("max growth delta = %d, want 2^64-2", got)
	}
}

func TestDiffClampsHistograms(t *testing.T) {
	r := New(1)
	r.Observe(0, HistCommitCycles, 100)
	r.Observe(0, HistCommitCycles, 5000)
	prev := r.Snapshot()
	r.Reset()
	r.Observe(0, HistCommitCycles, 100)
	d := r.Snapshot().Diff(prev)
	h := d.Hist(HistCommitCycles)
	if h.Count != 0 || h.Sum != 0 {
		t.Fatalf("post-reset hist delta count=%d sum=%d, want clamp to 0", h.Count, h.Sum)
	}
	for i, b := range h.Buckets {
		if b != 0 {
			t.Fatalf("bucket %d = %d after clamped diff", i, b)
		}
	}
	// And a normal hist diff yields exactly the new observations.
	prev2 := r.Snapshot()
	r.Observe(0, HistCommitCycles, 200)
	h2 := r.Snapshot().Diff(prev2).Hist(HistCommitCycles)
	if h2.Count != 1 || h2.Sum != 200 {
		t.Fatalf("hist delta count=%d sum=%d, want 1/200", h2.Count, h2.Sum)
	}
}

func TestDiffMismatchedCoreCounts(t *testing.T) {
	// A re-bind can pair snapshots from machines of different widths; the
	// extra cores pass through as absolute values, never a panic.
	big := New(4)
	big.Add(3, CtrTxnCommits, 9)
	small := New(2)
	small.Add(0, CtrTxnCommits, 2)
	d := big.Snapshot().Diff(small.Snapshot())
	if got := d.Total(CtrTxnCommits); got != 9 {
		t.Fatalf("mismatched-width delta = %d, want 9 (extra core passes through)", got)
	}
	// The narrow direction just drops the prev cores that no longer exist.
	d2 := small.Snapshot().Diff(big.Snapshot())
	if got := d2.Total(CtrTxnCommits); got != 2 {
		t.Fatalf("narrowing delta = %d, want 2", got)
	}
}

func TestDiffAgainstEmptyPrevIsIdentity(t *testing.T) {
	r := New(2)
	r.Add(1, CtrCSTSet, 42)
	s := r.Snapshot()
	d := s.Diff(Snapshot{})
	if got := d.Total(CtrCSTSet); got != 42 {
		t.Fatalf("identity diff = %d, want 42", got)
	}
	if d.Empty() != s.Empty() {
		t.Fatal("identity diff changed emptiness")
	}
}

func TestDiffDroppedEvents(t *testing.T) {
	prev := Snapshot{DroppedEvents: 10}
	cur := Snapshot{DroppedEvents: 3}
	if got := cur.Diff(prev).DroppedEvents; got != 0 {
		t.Fatalf("dropped-events delta = %d, want clamp to 0", got)
	}
	cur.DroppedEvents = 15
	if got := cur.Diff(prev).DroppedEvents; got != 5 {
		t.Fatalf("dropped-events delta = %d, want 5", got)
	}
}
