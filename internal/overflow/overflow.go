// Package overflow implements FlexTM's per-thread Overflow Table (OT,
// Section 4.1 of the paper): a set-associative structure in thread-private
// virtual memory that buffers speculatively-written (TMI) cache lines
// evicted from the L1, so transactions are unbounded in space.
//
// The table is filled by the L1 cache controller in hardware: on a TMI
// eviction the controller indexes by physical address, claims an empty way,
// tags the entry with both physical and logical addresses (the logical tag
// accommodates page-in at commit time), adds the address to the overflow
// signature Osig, and bumps the overflow count. L1 misses consult Osig; on a
// hit the entry is fetched back and invalidated. A CAS-Commit sets the
// Committed flag and triggers a copy-back of every entry to its natural
// location, in any order — unlike an undo log, which must unwind in reverse.
package overflow

import (
	"flextm/internal/memory"
	"flextm/internal/signature"
)

// DefaultSets and DefaultWays give the initial OT geometry allocated by the
// first-overflow trap handler. The OS doubles the ways when a set fills.
const (
	DefaultSets = 64
	DefaultWays = 4
)

type entry struct {
	valid   bool
	phys    memory.LineAddr
	logical memory.LineAddr
	data    memory.LineData
}

// Table is one thread's overflow table together with the controller
// registers that describe it (Figure 2: Osig, overflow count,
// committed/speculative flag, geometry).
type Table struct {
	sets       [][]entry
	ways       int
	osig       *signature.Sig
	count      int
	committed  bool
	expansions int
}

// New returns an empty overflow table. In the machine this corresponds to
// the OS allocating the OT region and filling the controller registers on
// the first TMI eviction.
func New(sets, ways int, sigCfg signature.Config) *Table {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("overflow: invalid geometry")
	}
	s := make([][]entry, sets)
	for i := range s {
		s[i] = make([]entry, ways)
	}
	return &Table{sets: s, ways: ways, osig: signature.New(sigCfg)}
}

// NewDefault returns an overflow table with the default geometry and the
// paper's signature configuration.
func NewDefault() *Table {
	return New(DefaultSets, DefaultWays, signature.DefaultConfig())
}

func (t *Table) set(phys memory.LineAddr) []entry {
	return t.sets[uint64(phys)&uint64(len(t.sets)-1)]
}

// Insert stores an evicted TMI line. It returns true if the set was full
// and the OS had to expand the table (a trap in hardware, so the caller
// should charge extra latency).
func (t *Table) Insert(phys, logical memory.LineAddr, data memory.LineData) (expanded bool) {
	set := t.set(phys)
	for i := range set {
		if set[i].valid && set[i].phys == phys {
			// Re-overflow of a line previously fetched back: overwrite.
			set[i].data = data
			set[i].logical = logical
			return false
		}
	}
	for i := range set {
		if !set[i].valid {
			set[i] = entry{valid: true, phys: phys, logical: logical, data: data}
			t.osig.Insert(phys)
			t.count++
			return false
		}
	}
	// Way overflow: the OS doubles the ways and retries (Section 4.1).
	t.expand()
	t.Insert(phys, logical, data)
	return true
}

func (t *Table) expand() {
	t.ways *= 2
	for i := range t.sets {
		grown := make([]entry, t.ways)
		copy(grown, t.sets[i])
		t.sets[i] = grown
	}
	t.expansions++
}

// MayContain is the Osig lookaside check performed on every L1 miss while
// the count is non-zero. False positives are possible.
func (t *Table) MayContain(phys memory.LineAddr) bool {
	return t.count > 0 && t.osig.Member(phys)
}

// LookupInvalidate fetches the entry for phys and invalidates it (the
// controller's behavior for local misses that hit the OT). The Osig keeps
// the address — Bloom filters cannot delete — so later probes may false-hit
// and miss in the table, exactly as in hardware.
func (t *Table) LookupInvalidate(phys memory.LineAddr) (memory.LineData, bool) {
	set := t.set(phys)
	for i := range set {
		if set[i].valid && set[i].phys == phys {
			d := set[i].data
			set[i].valid = false
			t.count--
			return d, true
		}
	}
	return memory.LineData{}, false
}

// Lookup returns the entry for phys without invalidating it (used by remote
// requests that probe a committed OT during copy-back, and by the OS
// virtualization handler).
func (t *Table) Lookup(phys memory.LineAddr) (memory.LineData, bool) {
	set := t.set(phys)
	for i := range set {
		if set[i].valid && set[i].phys == phys {
			return set[i].data, true
		}
	}
	return memory.LineData{}, false
}

// Count returns the number of live entries (the controller's overflow
// count register).
func (t *Table) Count() int { return t.count }

// Expansions returns how many times the OS expanded the table.
func (t *Table) Expansions() int { return t.expansions }

// SetCommitted marks the OT contents as committed state: remote requests
// must now see (or be NACKed for) its lines until copy-back finishes.
func (t *Table) SetCommitted() { t.committed = true }

// Committed reports the committed/speculative flag.
func (t *Table) Committed() bool { return t.committed }

// Drain invokes f for every live entry in arbitrary order and empties the
// table: the controller's micro-coded copy-back. The paper notes this order
// freedom as an advantage over time-ordered logs.
func (t *Table) Drain(f func(phys, logical memory.LineAddr, data memory.LineData)) {
	for si := range t.sets {
		for wi := range t.sets[si] {
			e := &t.sets[si][wi]
			if e.valid {
				f(e.phys, e.logical, e.data)
				e.valid = false
				t.count--
			}
		}
	}
	t.osig.Clear()
	t.committed = false
}

// Discard empties the table without copy-back (abort path: the OT is
// returned to the OS).
func (t *Table) Discard() {
	t.Drain(func(memory.LineAddr, memory.LineAddr, memory.LineData) {})
}

// RetagPhysical updates the physical tag of the entry for old, if present,
// to new, and refreshes the Osig. The OS uses this when a logical page is
// remapped to a different physical frame (Section 4.1, "Virtual Memory
// Paging").
func (t *Table) RetagPhysical(old, new memory.LineAddr) bool {
	data, ok := t.LookupInvalidate(old)
	if !ok {
		return false
	}
	// Keep the logical tag: only the physical frame moved.
	t.Insert(new, old, data)
	return true
}
