package overflow

import (
	"testing"

	"flextm/internal/memory"
	"flextm/internal/signature"
)

// FuzzOverflowWalk drives a small-geometry overflow table with an arbitrary
// op stream and cross-checks it against a plain map model. The properties
// under test are the ones the TMESI controller depends on:
//
//   - Count() always equals the number of live entries,
//   - a present line is never a false negative: MayContain is true and
//     Lookup returns exactly the inserted data,
//   - LookupInvalidate removes exactly the requested entry,
//   - Drain yields each live entry exactly once and leaves the table empty
//     with MayContain false for every address,
//   - RetagPhysical moves an entry without changing its data.
//
// The address space is 32 lines over 8 sets x 2 ways, so way overflow and
// OS expansion are constantly exercised; the 128-bit signature keeps Osig
// false positives (which are legal) in play.
func FuzzOverflowWalk(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x10, 0x22, 0x83, 0xc4})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x60, 0x60})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tab := New(8, 2, signature.Config{Bits: 128, Banks: 2})
		mirror := map[memory.LineAddr]memory.LineData{}
		check := func(when string) {
			if tab.Count() != len(mirror) {
				t.Fatalf("%s: Count() = %d, model has %d", when, tab.Count(), len(mirror))
			}
			for a, want := range mirror {
				if !tab.MayContain(a) {
					t.Fatalf("%s: false negative: MayContain(%d) = false for a live entry", when, a)
				}
				got, ok := tab.Lookup(a)
				if !ok || got != want {
					t.Fatalf("%s: Lookup(%d) = %v,%v, want %v", when, a, got, ok, want)
				}
			}
		}
		for pc := 0; pc+1 < len(ops); pc += 2 {
			op, arg := ops[pc]>>5, ops[pc]&0x1f
			addr := memory.LineAddr(arg)
			switch op {
			case 0, 1, 2: // insert (weighted: fills drive expansion)
				var data memory.LineData
				data[0] = uint64(ops[pc+1])
				data[memory.LineWords-1] = uint64(arg) ^ 0xa5
				tab.Insert(addr, addr, data)
				mirror[addr] = data
			case 3: // fetch-back
				got, ok := tab.LookupInvalidate(addr)
				want, live := mirror[addr]
				if ok != live {
					t.Fatalf("LookupInvalidate(%d) = %v, model live=%v", addr, ok, live)
				}
				if ok && got != want {
					t.Fatalf("LookupInvalidate(%d) data %v, want %v", addr, got, want)
				}
				delete(mirror, addr)
			case 4: // remote probe (no invalidate)
				got, ok := tab.Lookup(addr)
				want, live := mirror[addr]
				if ok != live || (ok && got != want) {
					t.Fatalf("Lookup(%d) = %v,%v, model %v,%v", addr, got, ok, want, live)
				}
			case 5: // page remap: move entry to a different frame
				dst := memory.LineAddr(ops[pc+1] & 0x1f)
				moved := tab.RetagPhysical(addr, dst)
				data, live := mirror[addr]
				if moved != live {
					t.Fatalf("RetagPhysical(%d,%d) = %v, model live=%v", addr, dst, moved, live)
				}
				if moved {
					delete(mirror, addr)
					mirror[dst] = data
				}
			case 6: // commit copy-back
				tab.SetCommitted()
				seen := map[memory.LineAddr]int{}
				tab.Drain(func(phys, _ memory.LineAddr, data memory.LineData) {
					seen[phys]++
					if want, live := mirror[phys]; !live || data != want {
						t.Fatalf("Drain yielded %d/%v, model %v", phys, data, want)
					}
				})
				for a, n := range seen {
					if n != 1 {
						t.Fatalf("Drain yielded %d %d times", a, n)
					}
				}
				if len(seen) != len(mirror) {
					t.Fatalf("Drain yielded %d entries, model has %d", len(seen), len(mirror))
				}
				clear(mirror)
				if tab.Committed() {
					t.Fatal("Committed flag survives Drain")
				}
				for a := memory.LineAddr(0); a < 32; a++ {
					if tab.MayContain(a) {
						t.Fatalf("MayContain(%d) after Drain", a)
					}
				}
			default: // abort
				tab.Discard()
				clear(mirror)
			}
			check("after op")
		}
	})
}
