package overflow

import (
	"testing"
	"testing/quick"

	"flextm/internal/memory"
	"flextm/internal/signature"
)

func tiny() *Table { return New(4, 2, signature.Config{Bits: 512, Banks: 4}) }

func TestInsertLookupInvalidate(t *testing.T) {
	ot := tiny()
	ot.Insert(10, 110, memory.LineData{1, 2, 3})
	if ot.Count() != 1 {
		t.Fatalf("Count = %d, want 1", ot.Count())
	}
	if !ot.MayContain(10) {
		t.Fatal("Osig missed an inserted line (false negative)")
	}
	d, ok := ot.LookupInvalidate(10)
	if !ok || d[2] != 3 {
		t.Fatal("LookupInvalidate lost data")
	}
	if ot.Count() != 0 {
		t.Fatal("count not decremented")
	}
	if _, ok := ot.LookupInvalidate(10); ok {
		t.Fatal("entry not invalidated")
	}
}

func TestOsigRetainsAfterInvalidate(t *testing.T) {
	ot := tiny()
	ot.Insert(10, 10, memory.LineData{})
	ot.LookupInvalidate(10)
	// Bloom filters cannot delete: MayContain is allowed to answer either
	// way once count is 0; with count==0 the fast path must say no.
	if ot.MayContain(10) {
		t.Fatal("MayContain with zero count should short-circuit to false")
	}
}

func TestWayOverflowExpands(t *testing.T) {
	ot := tiny() // 4 sets, 2 ways
	// Lines 0,4,8 map to set 0; third insert into the set must expand.
	ot.Insert(0, 0, memory.LineData{})
	ot.Insert(4, 4, memory.LineData{})
	expanded := ot.Insert(8, 8, memory.LineData{})
	if !expanded {
		t.Fatal("way overflow did not report expansion")
	}
	if ot.Expansions() != 1 {
		t.Fatalf("Expansions = %d, want 1", ot.Expansions())
	}
	for _, l := range []memory.LineAddr{0, 4, 8} {
		if _, ok := ot.Lookup(l); !ok {
			t.Fatalf("line %d lost during expansion", l)
		}
	}
}

func TestReinsertOverwrites(t *testing.T) {
	ot := tiny()
	ot.Insert(5, 5, memory.LineData{1})
	ot.Insert(5, 5, memory.LineData{2})
	if ot.Count() != 1 {
		t.Fatalf("Count = %d, want 1 after overwrite", ot.Count())
	}
	d, _ := ot.Lookup(5)
	if d[0] != 2 {
		t.Fatal("overwrite did not take")
	}
}

func TestDrainVisitsEverythingOnce(t *testing.T) {
	ot := tiny()
	want := map[memory.LineAddr]uint64{}
	for i := 0; i < 8; i++ {
		l := memory.LineAddr(i)
		ot.Insert(l, l+100, memory.LineData{uint64(i) * 7})
		want[l] = uint64(i) * 7
	}
	got := map[memory.LineAddr]uint64{}
	ot.Drain(func(phys, logical memory.LineAddr, d memory.LineData) {
		if logical != phys+100 {
			t.Errorf("logical tag lost for %d", phys)
		}
		got[phys] = d[0]
	})
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for l, v := range want {
		if got[l] != v {
			t.Fatalf("line %d drained value %d, want %d", l, got[l], v)
		}
	}
	if ot.Count() != 0 || ot.Committed() {
		t.Fatal("Drain did not reset the table")
	}
}

func TestDiscard(t *testing.T) {
	ot := tiny()
	ot.Insert(1, 1, memory.LineData{9})
	ot.Discard()
	if ot.Count() != 0 {
		t.Fatal("Discard left entries")
	}
	if _, ok := ot.Lookup(1); ok {
		t.Fatal("entry survived Discard")
	}
}

func TestCommittedFlag(t *testing.T) {
	ot := tiny()
	if ot.Committed() {
		t.Fatal("fresh table committed")
	}
	ot.SetCommitted()
	if !ot.Committed() {
		t.Fatal("SetCommitted did not stick")
	}
	ot.Drain(func(memory.LineAddr, memory.LineAddr, memory.LineData) {})
	if ot.Committed() {
		t.Fatal("Drain must clear committed flag")
	}
}

func TestRetagPhysical(t *testing.T) {
	ot := tiny()
	ot.Insert(3, 30, memory.LineData{5})
	if !ot.RetagPhysical(3, 7) {
		t.Fatal("RetagPhysical failed")
	}
	if _, ok := ot.Lookup(3); ok {
		t.Fatal("old physical tag still present")
	}
	d, ok := ot.Lookup(7)
	if !ok || d[0] != 5 {
		t.Fatal("retagged entry lost data")
	}
	if !ot.MayContain(7) {
		t.Fatal("Osig not refreshed for new frame")
	}
	if ot.RetagPhysical(99, 100) {
		t.Fatal("RetagPhysical of absent line reported success")
	}
}

func TestNoEntryEverLost(t *testing.T) {
	// Property: inserted lines remain retrievable until invalidated,
	// regardless of set collisions and expansions.
	f := func(tags []uint16) bool {
		ot := New(2, 1, signature.Config{Bits: 256, Banks: 4})
		live := map[memory.LineAddr]uint64{}
		for i, tg := range tags {
			l := memory.LineAddr(tg % 64)
			ot.Insert(l, l, memory.LineData{uint64(i)})
			live[l] = uint64(i)
		}
		if ot.Count() != len(live) {
			return false
		}
		for l, v := range live {
			d, ok := ot.Lookup(l)
			if !ok || d[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry accepted")
		}
	}()
	New(3, 1, signature.DefaultConfig())
}
