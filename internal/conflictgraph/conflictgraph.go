// Package conflictgraph turns a flight-recorder dump (internal/flight)
// into an explanation of contention: the directed conflict graph between
// cores over the recorded interval, the abort graph (who killed whom), a
// hot-line ranking weighted by the aborts each line contributed to, and a
// classification of the contention pathologies the TM literature uses to
// explain eager-vs-lazy behavior:
//
//   - Starvation chains: one core aborts many times in a row while the
//     cores killing it make progress.
//   - Livelock / dueling-abort cycles: a cycle in the abort graph (A keeps
//     aborting B while B keeps aborting A, possibly through intermediates),
//     the classic eager-mode pathology on RandomGraph-like workloads.
//   - Friendly fire: a committer (lazy mode) or eager winner aborts a
//     transaction whose current attempt never conflicted with it — the
//     CST bit named a conflicting *predecessor* on the same core, and an
//     innocent successor was killed. FlexTM's signature screen exists
//     precisely to suppress these.
//
// The analyzer is offline and allocation-relaxed: it runs on demand
// (`flextm -profile`), on a watchdog trip, or after a chaos-campaign
// violation, never on the simulated fast path.
package conflictgraph

import (
	"fmt"
	"io"
	"sort"

	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/sim"
)

// Options tune the analysis thresholds.
type Options struct {
	// Cores is the machine's core count; 0 infers it from the records.
	Cores int
	// StarvationRun is the consecutive-abort run length on one core that
	// qualifies as starvation. <=0 selects 8.
	StarvationRun int
	// CycleMinKills is the per-edge kill count below which an abort edge is
	// ignored when searching for dueling cycles. <=0 selects 2.
	CycleMinKills uint64
	// TopLines caps the hot-line ranking. <=0 selects 10.
	TopLines int
}

func (o Options) withDefaults(recs []flight.Rec) Options {
	if o.Cores <= 0 {
		for _, r := range recs {
			if int(r.Core) >= o.Cores {
				o.Cores = int(r.Core) + 1
			}
			if int(r.Peer) >= o.Cores {
				o.Cores = int(r.Peer) + 1
			}
		}
		if o.Cores == 0 {
			o.Cores = 1
		}
	}
	if o.StarvationRun <= 0 {
		o.StarvationRun = 8
	}
	if o.CycleMinKills == 0 {
		o.CycleMinKills = 2
	}
	if o.TopLines <= 0 {
		o.TopLines = 10
	}
	return o
}

// ConflictEdge is one directed edge of the conflict graph: requestor ->
// responder, with per-CST-kind counts (the kind as set in the requestor's
// table: R-W means "my read hit their write", etc.).
type ConflictEdge struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	RW   uint64 `json:"rw"`
	WR   uint64 `json:"wr"`
	WW   uint64 `json:"ww"`
}

// Total returns the edge's conflict count across kinds.
func (e ConflictEdge) Total() uint64 { return e.RW + e.WR + e.WW }

// AbortEdge is one directed edge of the abort graph: killer -> victim.
type AbortEdge struct {
	Killer int    `json:"killer"`
	Victim int    `json:"victim"`
	Kills  uint64 `json:"kills"`
}

// HotLine is one cache line ranked by the contention it caused. Spilled
// marks lines that left the L1 through the overflow table, attributing the
// conflict through Wsig/OT provenance rather than cache residency.
type HotLine struct {
	Line        uint64 `json:"line"`
	Conflicts   uint64 `json:"conflicts"`
	AbortWeight uint64 `json:"abortWeight"`
	Spilled     bool   `json:"spilled,omitempty"`
}

// PathologyKind names one detected contention pathology.
type PathologyKind string

// The detected pathology classes.
const (
	StarvationChain PathologyKind = "starvation-chain"
	AbortCycle      PathologyKind = "abort-cycle"
	FriendlyFire    PathologyKind = "friendly-fire"
)

// Pathology is one detected instance.
type Pathology struct {
	Kind   PathologyKind `json:"kind"`
	Cores  []int         `json:"cores"`
	Count  uint64        `json:"count"`
	Detail string        `json:"detail"`
}

// CoreStats summarizes one core's recorded activity.
type CoreStats struct {
	Core         int    `json:"core"`
	Commits      uint64 `json:"commits"`
	Aborts       uint64 `json:"aborts"`
	Kills        uint64 `json:"kills"` // enemies this core aborted
	Alerts       uint64 `json:"alerts"`
	Spills       uint64 `json:"spills"`
	Refusals     uint64 `json:"commitRefusals"`
	MaxAbortRun  int    `json:"maxAbortRun"`
	WatchdogTrip uint64 `json:"watchdogTrips"`
	Escalations  uint64 `json:"escalations"`
}

// Report is the full analysis of one recorded interval.
type Report struct {
	Start       sim.Time       `json:"start"`
	End         sim.Time       `json:"end"`
	Records     int            `json:"records"`
	Overwritten uint64         `json:"overwritten,omitempty"`
	Commits     uint64         `json:"commits"`
	Aborts      uint64         `json:"aborts"`
	PerCore     []CoreStats    `json:"perCore"`
	Edges       []ConflictEdge `json:"conflictEdges"`
	AbortEdges  []AbortEdge    `json:"abortEdges"`
	HotLines    []HotLine      `json:"hotLines"`
	Pathologies []Pathology    `json:"pathologies"`
}

// PathologyCounts returns the per-kind instance totals (the bench-artifact
// summary form).
func (r *Report) PathologyCounts() map[string]uint64 {
	out := map[string]uint64{}
	for _, p := range r.Pathologies {
		out[string(p.Kind)] += p.Count
	}
	return out
}

// Has reports whether any pathology of the given kind was detected.
func (r *Report) Has(k PathologyKind) bool {
	for _, p := range r.Pathologies {
		if p.Kind == k {
			return true
		}
	}
	return false
}

// Analyze reconstructs the conflict graph from a record stream (as returned
// by Recorder.Snapshot: ordered by Seq) and classifies its pathologies.
func Analyze(recs []flight.Rec, opts Options) *Report {
	opts = opts.withDefaults(recs)
	n := opts.Cores
	rep := &Report{Records: len(recs)}
	if len(recs) > 0 {
		rep.Start, rep.End = recs[0].At, recs[0].At
		for _, r := range recs {
			if r.At < rep.Start {
				rep.Start = r.At
			}
			if r.At > rep.End {
				rep.End = r.At
			}
		}
	}

	stats := make([]CoreStats, n)
	for i := range stats {
		stats[i].Core = i
	}

	type lineInfo struct {
		conflicts   uint64
		abortWeight uint64
		spilled     bool
	}
	lines := map[uint64]*lineInfo{}
	lineOf := func(l uint64) *lineInfo {
		li := lines[l]
		if li == nil {
			li = &lineInfo{}
			lines[l] = li
		}
		return li
	}

	edges := map[[2]int]*ConflictEdge{}
	kills := map[[2]int]uint64{}
	friendly := map[[2]int]uint64{}

	// Per-core attempt state. conflicted[c] is the bitmask of peers core c
	// has a recorded conflict with in its *current* attempt; touched[c] the
	// conflicting lines of that attempt (each charged one abort-weight if
	// the attempt dies). begun tracks whether the window saw c's TxnBegin,
	// so truncated streams do not produce false friendly-fire verdicts.
	conflicted := make([]uint64, n)
	touched := make([][]uint64, n)
	begun := make([]bool, n)
	abortRun := make([]int, n)
	runKillers := make([]uint64, n) // killers seen during the current abort run
	killedBy := make([]uint64, n)   // killers that already hit the current victim attempt
	starved := map[int]*Pathology{}

	for _, r := range recs {
		c := int(r.Core)
		if c < 0 || c >= n {
			continue
		}
		switch r.Kind {
		case flight.TxnBegin:
			begun[c] = true
			conflicted[c] = 0
			killedBy[c] = 0
			touched[c] = touched[c][:0]
		case flight.TxnCommit:
			stats[c].Commits++
			rep.Commits++
			abortRun[c] = 0
			runKillers[c] = 0
			conflicted[c] = 0
			killedBy[c] = 0
			touched[c] = touched[c][:0]
		case flight.TxnAbort:
			stats[c].Aborts++
			rep.Aborts++
			for _, l := range touched[c] {
				lineOf(l).abortWeight++
			}
			touched[c] = touched[c][:0]
			conflicted[c] = 0
			killedBy[c] = 0
			abortRun[c]++
			if abortRun[c] >= opts.StarvationRun {
				p := starved[c]
				if p == nil {
					p = &Pathology{Kind: StarvationChain, Cores: []int{c}}
					starved[c] = p
				}
				p.Count = uint64(abortRun[c])
			}
		case flight.AbortEnemy:
			v := int(r.Peer)
			if v < 0 || v >= n {
				continue
			}
			stats[c].Kills++
			// Only the first CAS on a victim attempt lands; later parallel
			// kills of the same pair in the same attempt are no-ops and must
			// not inflate the abort edge (and with it Tarjan's cycle weight).
			if killedBy[v]&(1<<uint(c)) == 0 {
				killedBy[v] |= 1 << uint(c)
				kills[[2]int{c, v}]++
			}
			runKillers[v] |= 1 << uint(c)
			// Friendly fire: the victim's current attempt has no recorded
			// conflict with the killer — the CST bit that motivated this
			// kill belonged to a finished predecessor on the same core.
			if begun[v] && conflicted[v]&(1<<uint(c)) == 0 {
				friendly[[2]int{c, v}]++
			}
		case flight.AbortSelf:
			// The abort itself arrives as a TxnAbort; nothing extra here.
		case flight.CSTSet:
			p := int(r.Peer)
			if p < 0 || p >= n {
				continue
			}
			e := edges[[2]int{c, p}]
			if e == nil {
				e = &ConflictEdge{From: c, To: p}
				edges[[2]int{c, p}] = e
			}
			switch cst.Kind(r.Aux & flight.AuxMask) {
			case cst.RW:
				e.RW++
			case cst.WR:
				e.WR++
			case cst.WW:
				e.WW++
			}
			conflicted[c] |= 1 << uint(p)
			conflicted[p] |= 1 << uint(c)
			li := lineOf(uint64(r.Line))
			li.conflicts++
			touched[c] = append(touched[c], uint64(r.Line))
			touched[p] = append(touched[p], uint64(r.Line))
		case flight.AOUAlert:
			stats[c].Alerts++
		case flight.OTSpill:
			stats[c].Spills++
			lineOf(uint64(r.Line)).spilled = true
		case flight.CommitRefused:
			stats[c].Refusals++
		case flight.WatchdogTrip:
			stats[c].WatchdogTrip++
		case flight.Escalate:
			stats[c].Escalations++
		}
		if abortRun[c] > stats[c].MaxAbortRun {
			stats[c].MaxAbortRun = abortRun[c]
		}
	}
	rep.PerCore = stats

	// Freeze the graphs in deterministic order.
	for _, e := range edges {
		rep.Edges = append(rep.Edges, *e)
	}
	sort.Slice(rep.Edges, func(i, j int) bool {
		a, b := rep.Edges[i], rep.Edges[j]
		if a.Total() != b.Total() {
			return a.Total() > b.Total()
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	for k, c := range kills {
		rep.AbortEdges = append(rep.AbortEdges, AbortEdge{Killer: k[0], Victim: k[1], Kills: c})
	}
	sort.Slice(rep.AbortEdges, func(i, j int) bool {
		a, b := rep.AbortEdges[i], rep.AbortEdges[j]
		if a.Kills != b.Kills {
			return a.Kills > b.Kills
		}
		if a.Killer != b.Killer {
			return a.Killer < b.Killer
		}
		return a.Victim < b.Victim
	})

	// Hot lines: rank by abort-weight, then conflict count.
	for l, li := range lines {
		if li.conflicts == 0 && li.abortWeight == 0 {
			continue
		}
		rep.HotLines = append(rep.HotLines, HotLine{
			Line: l, Conflicts: li.conflicts, AbortWeight: li.abortWeight, Spilled: li.spilled,
		})
	}
	sort.Slice(rep.HotLines, func(i, j int) bool {
		a, b := rep.HotLines[i], rep.HotLines[j]
		if a.AbortWeight != b.AbortWeight {
			return a.AbortWeight > b.AbortWeight
		}
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		return a.Line < b.Line
	})
	if len(rep.HotLines) > opts.TopLines {
		rep.HotLines = rep.HotLines[:opts.TopLines]
	}

	rep.Pathologies = append(rep.Pathologies, cyclePathologies(rep.AbortEdges, n, opts.CycleMinKills)...)
	// Starvation: report each starved core with its dominant killers.
	var starvedCores []int
	for c := range starved {
		starvedCores = append(starvedCores, c)
	}
	sort.Ints(starvedCores)
	for _, c := range starvedCores {
		p := starved[c]
		var killers []int
		for k := 0; k < n; k++ {
			if runKillers[c]&(1<<uint(k)) != 0 {
				killers = append(killers, k)
			}
		}
		p.Detail = fmt.Sprintf("core %d aborted %d times in a row (killers %v, %d commits while starved)",
			c, p.Count, killers, stats[c].Commits)
		p.Cores = append(p.Cores, killers...)
		rep.Pathologies = append(rep.Pathologies, *p)
	}
	// Friendly fire, per killer->victim pair.
	var ffPairs [][2]int
	for k := range friendly {
		ffPairs = append(ffPairs, k)
	}
	sort.Slice(ffPairs, func(i, j int) bool {
		if ffPairs[i][0] != ffPairs[j][0] {
			return ffPairs[i][0] < ffPairs[j][0]
		}
		return ffPairs[i][1] < ffPairs[j][1]
	})
	for _, k := range ffPairs {
		rep.Pathologies = append(rep.Pathologies, Pathology{
			Kind: FriendlyFire, Cores: []int{k[0], k[1]}, Count: friendly[k],
			Detail: fmt.Sprintf("core %d aborted core %d %d time(s) with no conflict in the victim's current attempt",
				k[0], k[1], friendly[k]),
		})
	}
	return rep
}

// cyclePathologies finds strongly connected components of the abort graph
// restricted to edges with at least minKills kills; every non-trivial SCC
// (or reciprocal pair) is a dueling-abort cycle.
func cyclePathologies(edges []AbortEdge, n int, minKills uint64) []Pathology {
	adj := make([][]int, n)
	weight := map[[2]int]uint64{}
	for _, e := range edges {
		if e.Kills < minKills {
			continue
		}
		adj[e.Killer] = append(adj[e.Killer], e.Victim)
		weight[[2]int{e.Killer, e.Victim}] = e.Kills
	}

	// Tarjan's SCC (recursion depth is bounded by the core count, <= 64).
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []int
	next := 0
	var sccs [][]int

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v], low[v] = next, next
		next++
		sccStack = append(sccStack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := sccStack[len(sccStack)-1]
				sccStack = sccStack[:len(sccStack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 && len(adj[v]) > 0 {
			strongconnect(v)
		}
	}

	var out []Pathology
	for _, comp := range sccs {
		if len(comp) < 2 {
			continue
		}
		sort.Ints(comp)
		in := map[int]bool{}
		for _, c := range comp {
			in[c] = true
		}
		var total uint64
		for k, w := range weight {
			if in[k[0]] && in[k[1]] {
				total += w
			}
		}
		out = append(out, Pathology{
			Kind: AbortCycle, Cores: comp, Count: total,
			Detail: fmt.Sprintf("cores %v abort each other in a cycle (%d kills inside the cycle)", comp, total),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Print writes the human-readable profile (the body of `flextm -profile`).
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "interval [%d, %d] cycles, %d records", r.Start, r.End, r.Records)
	if r.Overwritten > 0 {
		fmt.Fprintf(w, " (+%d overwritten: oldest history lost)", r.Overwritten)
	}
	fmt.Fprintf(w, "\ncommits %d, aborts %d\n", r.Commits, r.Aborts)

	any := false
	for _, cs := range r.PerCore {
		if cs.Commits+cs.Aborts+cs.Kills+cs.Alerts+cs.Spills+cs.Refusals+cs.WatchdogTrip == 0 {
			continue
		}
		if !any {
			fmt.Fprintf(w, "%4s %8s %7s %6s %7s %7s %8s %7s\n",
				"core", "commits", "aborts", "kills", "alerts", "spills", "refusals", "maxrun")
			any = true
		}
		fmt.Fprintf(w, "%4d %8d %7d %6d %7d %7d %8d %7d\n",
			cs.Core, cs.Commits, cs.Aborts, cs.Kills, cs.Alerts, cs.Spills, cs.Refusals, cs.MaxAbortRun)
	}

	if len(r.Edges) > 0 {
		fmt.Fprintln(w, "conflict edges (requestor -> responder, by CST kind):")
		for _, e := range r.Edges {
			fmt.Fprintf(w, "  %2d -> %-2d  R-W=%-5d W-R=%-5d W-W=%-5d\n", e.From, e.To, e.RW, e.WR, e.WW)
		}
	}
	if len(r.AbortEdges) > 0 {
		fmt.Fprintln(w, "abort edges (killer -> victim):")
		for _, e := range r.AbortEdges {
			fmt.Fprintf(w, "  %2d -> %-2d  kills=%d\n", e.Killer, e.Victim, e.Kills)
		}
	}
	if len(r.HotLines) > 0 {
		fmt.Fprintln(w, "hot lines (by abort-weight):")
		for _, h := range r.HotLines {
			tag := ""
			if h.Spilled {
				tag = "  [OT-spilled]"
			}
			fmt.Fprintf(w, "  line %#x  conflicts=%-5d abort-weight=%d%s\n",
				h.Line, h.Conflicts, h.AbortWeight, tag)
		}
	}
	if len(r.Pathologies) == 0 {
		fmt.Fprintln(w, "pathologies: none detected")
		return
	}
	fmt.Fprintln(w, "pathologies:")
	for _, p := range r.Pathologies {
		fmt.Fprintf(w, "  [%s] %s\n", p.Kind, p.Detail)
	}
}

// WriteDOT renders the graphs in Graphviz DOT: gray edges are CST
// conflicts (labeled with per-kind counts), red edges are kills. Cores in a
// detected abort cycle are drawn red; starved cores orange.
func (r *Report) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph conflicts {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=circle];")
	inCycle := map[int]bool{}
	starved := map[int]bool{}
	for _, p := range r.Pathologies {
		switch p.Kind {
		case AbortCycle:
			for _, c := range p.Cores {
				inCycle[c] = true
			}
		case StarvationChain:
			if len(p.Cores) > 0 {
				starved[p.Cores[0]] = true
			}
		}
	}
	for _, cs := range r.PerCore {
		if cs.Commits+cs.Aborts+cs.Kills == 0 {
			continue
		}
		attr := ""
		switch {
		case inCycle[cs.Core]:
			attr = ", color=red, penwidth=2"
		case starved[cs.Core]:
			attr = ", color=orange, penwidth=2"
		}
		fmt.Fprintf(w, "  c%d [label=\"core %d\\n%dc/%da\"%s];\n",
			cs.Core, cs.Core, cs.Commits, cs.Aborts, attr)
	}
	for _, e := range r.Edges {
		fmt.Fprintf(w, "  c%d -> c%d [color=gray, label=\"rw%d wr%d ww%d\"];\n",
			e.From, e.To, e.RW, e.WR, e.WW)
	}
	for _, e := range r.AbortEdges {
		fmt.Fprintf(w, "  c%d -> c%d [color=red, label=\"%d kills\"];\n",
			e.Killer, e.Victim, e.Kills)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
