package conflictgraph

import (
	"bytes"
	"strings"
	"testing"

	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/sim"
)

// stream builds a record slice with sequential Seq numbers, mirroring what
// Recorder.Snapshot returns.
type stream struct {
	recs []flight.Rec
	at   sim.Time
}

func (s *stream) add(core int, k flight.Kind, peer int, aux uint8, line memory.LineAddr) {
	s.at++
	s.recs = append(s.recs, flight.Rec{
		At: s.at, Line: line, Seq: uint64(len(s.recs) + 1),
		Core: int16(core), Peer: int16(peer), Kind: k, Aux: aux,
	})
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil, Options{})
	if rep.Records != 0 || rep.Commits != 0 || rep.Aborts != 0 {
		t.Fatalf("empty analysis not empty: %+v", rep)
	}
	if len(rep.Pathologies) != 0 {
		t.Fatalf("pathologies on empty input: %+v", rep.Pathologies)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "none detected") {
		t.Fatalf("empty Print:\n%s", buf.String())
	}
}

// TestAbortCycleDetected models a classic dueling pair: cores 0 and 1
// repeatedly conflict on the same two lines and abort each other.
func TestAbortCycleDetected(t *testing.T) {
	var s stream
	for round := 0; round < 3; round++ {
		s.add(0, flight.TxnBegin, -1, 0, 0)
		s.add(1, flight.TxnBegin, -1, 0, 0)
		s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
		s.add(1, flight.CSTSet, 0, uint8(cst.WW), 0x80)
		s.add(0, flight.AbortEnemy, 1, 0, 0)
		s.add(1, flight.TxnAbort, -1, 0, 0)
		s.add(1, flight.AbortEnemy, 0, 0, 0)
		s.add(0, flight.TxnAbort, -1, 0, 0)
	}
	rep := Analyze(s.recs, Options{Cores: 4})
	if !rep.Has(AbortCycle) {
		t.Fatalf("abort cycle not detected: %+v", rep.Pathologies)
	}
	var cyc *Pathology
	for i := range rep.Pathologies {
		if rep.Pathologies[i].Kind == AbortCycle {
			cyc = &rep.Pathologies[i]
		}
	}
	if len(cyc.Cores) != 2 || cyc.Cores[0] != 0 || cyc.Cores[1] != 1 {
		t.Fatalf("cycle cores = %v, want [0 1]", cyc.Cores)
	}
	if cyc.Count != 6 {
		t.Fatalf("cycle kill count = %d, want 6", cyc.Count)
	}
	if got := rep.PathologyCounts()[string(AbortCycle)]; got != 6 {
		t.Fatalf("PathologyCounts[abort-cycle] = %d, want 6", got)
	}
	// Both abort edges must be present.
	if len(rep.AbortEdges) != 2 {
		t.Fatalf("abort edges = %+v, want 2", rep.AbortEdges)
	}
	// No kill happened against a conflict-free attempt, so no friendly fire.
	if rep.Has(FriendlyFire) {
		t.Fatalf("spurious friendly fire: %+v", rep.Pathologies)
	}
}

// TestParallelKillEdgesDeduplicated: a duel whose kill CASes land twice
// against the same victim attempt (the second CAS finds the victim already
// dead — common when both lines of a two-line duel conflict in one window)
// must contribute ONE abort edge per attempt, not two, so the Tarjan cycle
// weight counts attempts killed rather than CAS attempts. A fresh attempt
// by the same victim makes the next kill count again.
func TestParallelKillEdgesDeduplicated(t *testing.T) {
	var s stream
	for round := 0; round < 3; round++ {
		s.add(0, flight.TxnBegin, -1, 0, 0)
		s.add(1, flight.TxnBegin, -1, 0, 0)
		s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
		s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x80)
		// Both contended lines raise a kill against the same attempt.
		s.add(0, flight.AbortEnemy, 1, 0, 0x40)
		s.add(0, flight.AbortEnemy, 1, 0, 0x80)
		s.add(1, flight.TxnAbort, -1, 0, 0)
		s.add(1, flight.CSTSet, 0, uint8(cst.WW), 0x40)
		s.add(1, flight.AbortEnemy, 0, 0, 0x40)
		s.add(0, flight.TxnAbort, -1, 0, 0)
	}
	rep := Analyze(s.recs, Options{Cores: 4})
	if len(rep.AbortEdges) != 2 {
		t.Fatalf("abort edges = %+v, want 2", rep.AbortEdges)
	}
	for _, e := range rep.AbortEdges {
		if e.Kills != 3 {
			t.Fatalf("edge %d->%d kills = %d, want 3 (one per killed attempt, duplicates dropped): %+v",
				e.Killer, e.Victim, e.Kills, rep.AbortEdges)
		}
	}
	// The raw per-core kill counter still sees every CAS.
	if rep.PerCore[0].Kills != 6 {
		t.Fatalf("core 0 raw kills = %d, want 6", rep.PerCore[0].Kills)
	}
	// 3 deduplicated kills each way crosses the cycle threshold.
	if !rep.Has(AbortCycle) {
		t.Fatalf("abort cycle not detected after dedup: %+v", rep.Pathologies)
	}
	if got := rep.PathologyCounts()[string(AbortCycle)]; got != 6 {
		t.Fatalf("cycle kill count = %d, want 6 (deduplicated)", got)
	}
}

// TestCycleRequiresMinKills: a single reciprocal kill is contention, not
// livelock — it must stay below the CycleMinKills default of 2.
func TestCycleRequiresMinKills(t *testing.T) {
	var s stream
	s.add(0, flight.TxnBegin, -1, 0, 0)
	s.add(1, flight.TxnBegin, -1, 0, 0)
	s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
	s.add(0, flight.AbortEnemy, 1, 0, 0)
	s.add(1, flight.TxnAbort, -1, 0, 0)
	s.add(1, flight.TxnBegin, -1, 0, 0)
	s.add(1, flight.CSTSet, 0, uint8(cst.WW), 0x40)
	s.add(1, flight.AbortEnemy, 0, 0, 0)
	s.add(0, flight.TxnAbort, -1, 0, 0)
	rep := Analyze(s.recs, Options{})
	if rep.Has(AbortCycle) {
		t.Fatalf("one reciprocal kill flagged as cycle: %+v", rep.Pathologies)
	}
	// Lowering the threshold to 1 must expose it.
	rep = Analyze(s.recs, Options{CycleMinKills: 1})
	if !rep.Has(AbortCycle) {
		t.Fatalf("cycle not found at CycleMinKills=1: %+v", rep.Pathologies)
	}
}

// TestStarvationChainDetected: core 2 keeps getting killed by cores 0 and 1
// while they commit.
func TestStarvationChainDetected(t *testing.T) {
	var s stream
	const runLen = 8
	for i := 0; i < runLen; i++ {
		killer := i % 2
		s.add(2, flight.TxnBegin, -1, 0, 0)
		s.add(killer, flight.TxnBegin, -1, 0, 0)
		s.add(2, flight.CSTSet, killer, uint8(cst.WR), 0x100)
		s.add(killer, flight.AbortEnemy, 2, 0, 0)
		s.add(2, flight.TxnAbort, -1, 0, 0)
		s.add(killer, flight.TxnCommit, -1, 0, 0)
	}
	rep := Analyze(s.recs, Options{Cores: 4})
	if !rep.Has(StarvationChain) {
		t.Fatalf("starvation not detected: %+v", rep.Pathologies)
	}
	var p *Pathology
	for i := range rep.Pathologies {
		if rep.Pathologies[i].Kind == StarvationChain {
			p = &rep.Pathologies[i]
		}
	}
	if p.Cores[0] != 2 {
		t.Fatalf("starved core = %v, want victim 2 first", p.Cores)
	}
	if p.Count != runLen {
		t.Fatalf("starvation run = %d, want %d", p.Count, runLen)
	}
	// Both killers appear in the detail.
	if !strings.Contains(p.Detail, "[0 1]") {
		t.Fatalf("killers missing from detail: %q", p.Detail)
	}
	if rep.PerCore[2].MaxAbortRun != runLen {
		t.Fatalf("MaxAbortRun = %d, want %d", rep.PerCore[2].MaxAbortRun, runLen)
	}
	// A commit interrupting the run resets the streak: no starvation when the
	// victim commits halfway.
	var s2 stream
	for i := 0; i < runLen; i++ {
		s2.add(2, flight.TxnBegin, -1, 0, 0)
		s2.add(2, flight.TxnAbort, -1, 0, 0)
		if i == runLen/2 {
			s2.add(2, flight.TxnBegin, -1, 0, 0)
			s2.add(2, flight.TxnCommit, -1, 0, 0)
		}
	}
	if rep := Analyze(s2.recs, Options{Cores: 4}); rep.Has(StarvationChain) {
		t.Fatalf("interrupted run flagged as starvation: %+v", rep.Pathologies)
	}
}

// TestFriendlyFireDetected: core 0 kills core 1 *after* core 1 began a fresh
// attempt with no recorded conflict — the CST bit named a predecessor.
func TestFriendlyFireDetected(t *testing.T) {
	var s stream
	// Attempt 1: a real conflict, killed legitimately.
	s.add(1, flight.TxnBegin, -1, 0, 0)
	s.add(1, flight.CSTSet, 0, uint8(cst.WR), 0x40)
	s.add(0, flight.AbortEnemy, 1, 0, 0)
	s.add(1, flight.TxnAbort, -1, 0, 0)
	// Attempt 2: no conflict recorded, yet core 0 kills again (stale CST).
	s.add(1, flight.TxnBegin, -1, 0, 0)
	s.add(0, flight.AbortEnemy, 1, 0, 0)
	s.add(1, flight.TxnAbort, -1, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})
	if !rep.Has(FriendlyFire) {
		t.Fatalf("friendly fire not detected: %+v", rep.Pathologies)
	}
	var p *Pathology
	for i := range rep.Pathologies {
		if rep.Pathologies[i].Kind == FriendlyFire {
			p = &rep.Pathologies[i]
		}
	}
	if p.Count != 1 {
		t.Fatalf("friendly-fire count = %d, want 1 (first kill was legitimate)", p.Count)
	}
	if len(p.Cores) != 2 || p.Cores[0] != 0 || p.Cores[1] != 1 {
		t.Fatalf("friendly-fire cores = %v, want [0 1]", p.Cores)
	}
}

// TestFriendlyFireNeedsBegin: on a truncated stream where the victim's Begin
// was overwritten, a kill without a recorded conflict must NOT be classified
// as friendly fire.
func TestFriendlyFireNeedsBegin(t *testing.T) {
	var s stream
	s.add(0, flight.AbortEnemy, 1, 0, 0)
	s.add(1, flight.TxnAbort, -1, 0, 0)
	rep := Analyze(s.recs, Options{Cores: 2})
	if rep.Has(FriendlyFire) {
		t.Fatalf("truncated stream produced friendly fire: %+v", rep.Pathologies)
	}
}

func TestHotLinesRankedByAbortWeight(t *testing.T) {
	var s stream
	// Line 0x40 conflicts twice and both attempts die; 0x80 conflicts three
	// times but every attempt commits.
	for i := 0; i < 2; i++ {
		s.add(0, flight.TxnBegin, -1, 0, 0)
		s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
		s.add(0, flight.TxnAbort, -1, 0, 0)
	}
	for i := 0; i < 3; i++ {
		s.add(2, flight.TxnBegin, -1, 0, 0)
		s.add(2, flight.CSTSet, 3, uint8(cst.RW), 0x80)
		s.add(2, flight.TxnCommit, -1, 0, 0)
	}
	s.add(0, flight.OTSpill, -1, 0, 0x40)
	rep := Analyze(s.recs, Options{Cores: 4})
	if len(rep.HotLines) != 2 {
		t.Fatalf("hot lines = %+v, want 2", rep.HotLines)
	}
	top := rep.HotLines[0]
	if top.Line != 0x40 || top.AbortWeight == 0 || !top.Spilled {
		t.Fatalf("top hot line = %+v, want spilled 0x40 with abort weight", top)
	}
	if rep.HotLines[1].Line != 0x80 || rep.HotLines[1].AbortWeight != 0 {
		t.Fatalf("second hot line = %+v, want 0x80 with zero abort weight", rep.HotLines[1])
	}
	if rep.HotLines[1].Conflicts != 3 {
		t.Fatalf("0x80 conflicts = %d, want 3", rep.HotLines[1].Conflicts)
	}
}

func TestConflictEdgeKinds(t *testing.T) {
	var s stream
	s.add(0, flight.CSTSet, 1, uint8(cst.RW), 0x40)
	s.add(0, flight.CSTSet, 1, uint8(cst.WR), 0x40)
	s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
	s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
	rep := Analyze(s.recs, Options{Cores: 2})
	if len(rep.Edges) != 1 {
		t.Fatalf("edges = %+v, want 1", rep.Edges)
	}
	e := rep.Edges[0]
	if e.From != 0 || e.To != 1 || e.RW != 1 || e.WR != 1 || e.WW != 2 || e.Total() != 4 {
		t.Fatalf("edge = %+v, want 0->1 rw1 wr1 ww2", e)
	}
}

func TestAnalyzeIsDeterministic(t *testing.T) {
	var s stream
	for i := 0; i < 50; i++ {
		c := i % 4
		s.add(c, flight.TxnBegin, -1, 0, 0)
		s.add(c, flight.CSTSet, (c+1)%4, uint8(cst.WW), memory.LineAddr(0x40*(i%5)))
		s.add((c+1)%4, flight.AbortEnemy, c, 0, 0)
		s.add(c, flight.TxnAbort, -1, 0, 0)
	}
	var a, b bytes.Buffer
	Analyze(s.recs, Options{Cores: 4}).Print(&a)
	Analyze(s.recs, Options{Cores: 4}).Print(&b)
	if a.String() != b.String() {
		t.Fatal("repeated analysis differs")
	}
}

func TestCoresInferredFromRecords(t *testing.T) {
	var s stream
	s.add(5, flight.TxnBegin, -1, 0, 0)
	s.add(5, flight.CSTSet, 7, uint8(cst.WW), 0x40)
	rep := Analyze(s.recs, Options{})
	if len(rep.PerCore) != 8 {
		t.Fatalf("inferred cores = %d, want 8 (max peer 7)", len(rep.PerCore))
	}
}

func TestWriteDOTMarksPathologies(t *testing.T) {
	var s stream
	for round := 0; round < 3; round++ {
		s.add(0, flight.TxnBegin, -1, 0, 0)
		s.add(1, flight.TxnBegin, -1, 0, 0)
		s.add(0, flight.CSTSet, 1, uint8(cst.WW), 0x40)
		s.add(0, flight.AbortEnemy, 1, 0, 0)
		s.add(1, flight.TxnAbort, -1, 0, 0)
		s.add(1, flight.AbortEnemy, 0, 0, 0)
		s.add(0, flight.TxnAbort, -1, 0, 0)
	}
	rep := Analyze(s.recs, Options{Cores: 2})
	var buf bytes.Buffer
	if err := rep.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph conflicts {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	if !strings.Contains(dot, "color=red, penwidth=2") {
		t.Fatalf("cycle cores not highlighted:\n%s", dot)
	}
	if !strings.Contains(dot, "color=gray") || !strings.Contains(dot, "kills") {
		t.Fatalf("edges missing:\n%s", dot)
	}
}
