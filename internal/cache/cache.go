// Package cache models the private L1 data cache of a FlexTM core: a
// set-associative array whose lines carry the TMESI state machine of
// Figure 1 plus the A (alert) bit, backed by a small victim buffer, exactly
// as configured in Table 3(a) of the paper (32 KB, 2-way, 64-byte blocks,
// 32-entry victim buffer).
//
// The package holds state and data; the coherence protocol that drives
// transitions lives in internal/tmesi.
package cache

import (
	"fmt"

	"flextm/internal/memory"
)

// State is a TMESI cache-line state. The encoding follows Figure 1 of the
// paper: TMI is M-bit+T-bit ("transactional store buffered here"); TI is
// T-bit in the invalid state ("read a threatened line's committed value").
type State uint8

const (
	// Invalid: no valid copy.
	Invalid State = iota
	// Shared: clean, possibly multiple sharers.
	Shared
	// Exclusive: clean, sole copy.
	Exclusive
	// Modified: dirty, sole copy, non-speculative.
	Modified
	// TMI: speculatively written (TStore); invisible to remote readers
	// until commit. Reverts to Modified on commit, Invalid on abort.
	TMI
	// TI: holds the committed value of a line that some remote processor
	// has in TMI. Reverts to Invalid on commit or abort.
	TI
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case TMI:
		return "TMI"
	case TI:
		return "TI"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state holds usable data for local reads.
func (s State) Valid() bool { return s != Invalid }

// Speculative reports whether the state is one of the PDI states that flash
// commit/abort must touch.
func (s State) Speculative() bool { return s == TMI || s == TI }

// Line is one cache line.
type Line struct {
	Tag   memory.LineAddr
	State State
	Alert bool // the AOU 'A' bit
	Data  memory.LineData
	lru   uint64
}

// Config fixes a cache's geometry.
type Config struct {
	Sets       int // number of sets (power of two)
	Ways       int
	VictimSize int // entries in the victim buffer; <0 means unbounded
	// UnboundedTMIVictim lets speculative (TMI) lines stay in the victim
	// buffer without bound while non-speculative lines obey VictimSize:
	// the "ideal infinite speculative buffer" of the Section 7.3 ablation.
	UnboundedTMIVictim bool
}

// DefaultL1Config is the paper's L1: 32 KB, 2-way, 64 B lines -> 256 sets,
// with a 32-entry victim buffer.
func DefaultL1Config() Config { return Config{Sets: 256, Ways: 2, VictimSize: 32} }

// Cache is a set-associative cache with a victim buffer. The zero value is
// not usable; call New.
type Cache struct {
	cfg    Config
	sets   [][]Line
	victim []Line // FIFO order: victim[0] is oldest
	clock  uint64
}

// New returns an empty cache with the given geometry.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 || cfg.Ways <= 0 {
		panic("cache: invalid geometry")
	}
	sets := make([][]Line, cfg.Sets)
	for i := range sets {
		sets[i] = make([]Line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}
}

func (c *Cache) setOf(l memory.LineAddr) []Line {
	return c.sets[uint64(l)&uint64(c.cfg.Sets-1)]
}

// Lookup returns the line holding l, or nil. A hit in the victim buffer
// counts; the line is not moved (the victim buffer is searched in parallel
// with the set in hardware).
func (c *Cache) Lookup(l memory.LineAddr) *Line {
	set := c.setOf(l)
	for i := range set {
		if set[i].State != Invalid && set[i].Tag == l {
			c.clock++
			set[i].lru = c.clock
			return &set[i]
		}
	}
	for i := range c.victim {
		if c.victim[i].State != Invalid && c.victim[i].Tag == l {
			return &c.victim[i]
		}
	}
	return nil
}

// Victimized is a line pushed out of the victim buffer by an Insert; the
// caller must write back Modified data and spill TMI lines to the overflow
// table.
type Victimized struct {
	Line Line
}

// Insert places a new line into the cache, evicting as needed. The evicted
// set line (if any) moves to the victim buffer; anything that falls off the
// victim buffer is returned for the caller to handle. Insert panics if the
// line is already present (use Lookup first).
func (c *Cache) Insert(ln Line) []Victimized {
	if c.Lookup(ln.Tag) != nil {
		panic(fmt.Sprintf("cache: Insert of resident line %d", ln.Tag))
	}
	c.clock++
	ln.lru = c.clock
	set := c.setOf(ln.Tag)
	// Empty way?
	for i := range set {
		if set[i].State == Invalid {
			set[i] = ln
			return nil
		}
	}
	// Evict the LRU way to the victim buffer.
	vi := 0
	for i := range set {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	evicted := set[vi]
	set[vi] = ln
	return c.pushVictim(evicted)
}

func (c *Cache) pushVictim(ln Line) []Victimized {
	if c.cfg.VictimSize == 0 && !(c.cfg.UnboundedTMIVictim && ln.State == TMI) {
		return []Victimized{{Line: ln}}
	}
	c.victim = append(c.victim, ln)
	var out []Victimized
	if c.cfg.VictimSize >= 0 {
		over := func() int {
			n := len(c.victim)
			if c.cfg.UnboundedTMIVictim {
				n = 0
				for _, v := range c.victim {
					if v.State != TMI {
						n++
					}
				}
			}
			return n
		}
		for over() > c.cfg.VictimSize {
			// Spill the oldest evictable entry.
			for i, v := range c.victim {
				if !c.cfg.UnboundedTMIVictim || v.State != TMI {
					out = append(out, Victimized{Line: v})
					c.victim = append(c.victim[:i], c.victim[i+1:]...)
					break
				}
			}
		}
	}
	return out
}

// Invalidate drops the line holding l, if present, and returns its prior
// contents (for writeback decisions).
func (c *Cache) Invalidate(l memory.LineAddr) (Line, bool) {
	if ln := c.Lookup(l); ln != nil {
		old := *ln
		ln.State = Invalid
		ln.Alert = false
		return old, true
	}
	return Line{}, false
}

// FlashCommit applies the CAS-Commit success transition to every line:
// TMI -> M (speculative data becomes the committed copy) and TI -> I.
// It returns the lines that were TMI (now M) so the protocol layer can fix
// up directory ownership.
func (c *Cache) FlashCommit() []memory.LineAddr {
	var committed []memory.LineAddr
	c.forEach(func(ln *Line) {
		switch ln.State {
		case TMI:
			ln.State = Modified
			committed = append(committed, ln.Tag)
		case TI:
			ln.State = Invalid
		}
	})
	return committed
}

// FlashAbort applies the abort transition to every line: TMI -> I
// (speculative data discarded) and TI -> I. It returns the number of lines
// dropped.
func (c *Cache) FlashAbort() int {
	n := 0
	c.forEach(func(ln *Line) {
		if ln.State.Speculative() {
			ln.State = Invalid
			n++
		}
	})
	return n
}

// TMILines returns the addresses of all TMI lines (used when the OS saves a
// descheduled transaction's speculative state into its overflow table).
func (c *Cache) TMILines() []memory.LineAddr {
	var out []memory.LineAddr
	c.forEach(func(ln *Line) {
		if ln.State == TMI {
			out = append(out, ln.Tag)
		}
	})
	return out
}

// ClearAlerts drops every A bit (used on abort/commit of the watched word's
// owner context).
func (c *Cache) ClearAlerts() {
	c.forEach(func(ln *Line) { ln.Alert = false })
}

// Resident returns the number of valid lines (set array + victim buffer).
func (c *Cache) Resident() int {
	n := 0
	c.forEach(func(ln *Line) {
		if ln.State != Invalid {
			n++
		}
	})
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) forEach(f func(*Line)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			f(&c.sets[si][wi])
		}
	}
	// Compact the victim buffer while visiting it.
	live := c.victim[:0]
	for i := range c.victim {
		f(&c.victim[i])
		if c.victim[i].State != Invalid {
			live = append(live, c.victim[i])
		}
	}
	c.victim = live
}

// TagCache is a tag-only set-associative cache used for the shared L2
// timing model: it answers hit/miss and tracks evictions but holds no data
// (data lives in the committed memory image).
type TagCache struct {
	sets  [][]tagEntry
	mask  uint64
	clock uint64
}

type tagEntry struct {
	tag   memory.LineAddr
	valid bool
	lru   uint64
}

// NewTagCache returns a tag cache with the given geometry.
func NewTagCache(sets, ways int) *TagCache {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("cache: invalid tag cache geometry")
	}
	s := make([][]tagEntry, sets)
	for i := range s {
		s[i] = make([]tagEntry, ways)
	}
	return &TagCache{sets: s, mask: uint64(sets - 1)}
}

// Touch records an access to line l and reports whether it hit, along with
// any line evicted to make room.
func (t *TagCache) Touch(l memory.LineAddr) (hit bool, evicted memory.LineAddr, hasEvicted bool) {
	t.clock++
	set := t.sets[uint64(l)&t.mask]
	for i := range set {
		if set[i].valid && set[i].tag == l {
			set[i].lru = t.clock
			return true, 0, false
		}
	}
	for i := range set {
		if !set[i].valid {
			set[i] = tagEntry{tag: l, valid: true, lru: t.clock}
			return false, 0, false
		}
	}
	vi := 0
	for i := range set {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	old := set[vi].tag
	set[vi] = tagEntry{tag: l, valid: true, lru: t.clock}
	return false, old, true
}
