package cache

import (
	"testing"
	"testing/quick"

	"flextm/internal/memory"
)

func small() *Cache { return New(Config{Sets: 4, Ways: 2, VictimSize: 2}) }

func TestInsertLookup(t *testing.T) {
	c := small()
	c.Insert(Line{Tag: 17, State: Shared})
	ln := c.Lookup(17)
	if ln == nil || ln.State != Shared {
		t.Fatal("inserted line not found")
	}
	if c.Lookup(18) != nil {
		t.Fatal("phantom hit")
	}
}

func TestInsertResidentPanics(t *testing.T) {
	c := small()
	c.Insert(Line{Tag: 1, State: Shared})
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(Line{Tag: 1, State: Exclusive})
}

func TestLRUEvictionGoesToVictimBuffer(t *testing.T) {
	c := small()
	// Lines 0, 4, 8 all map to set 0 (4 sets).
	c.Insert(Line{Tag: 0, State: Shared})
	c.Insert(Line{Tag: 4, State: Shared})
	c.Lookup(0) // make 4 the LRU
	if spilled := c.Insert(Line{Tag: 8, State: Shared}); spilled != nil {
		t.Fatal("victim buffer should have absorbed the eviction")
	}
	// 4 must still be findable (victim buffer hit).
	if c.Lookup(4) == nil {
		t.Fatal("evicted line lost; victim buffer not searched")
	}
}

func TestVictimBufferOverflowSpills(t *testing.T) {
	c := small()
	var spilled []Victimized
	// Fill set 0 and overflow the 2-entry victim buffer.
	for i := 0; i < 6; i++ {
		spilled = append(spilled, c.Insert(Line{Tag: memory.LineAddr(i * 4), State: TMI})...)
	}
	if len(spilled) != 2 {
		t.Fatalf("spilled %d lines, want 2", len(spilled))
	}
	for _, v := range spilled {
		if v.Line.State != TMI {
			t.Fatalf("spilled line in state %v", v.Line.State)
		}
	}
}

func TestUnboundedVictimBufferNeverSpills(t *testing.T) {
	c := New(Config{Sets: 2, Ways: 1, VictimSize: -1})
	for i := 0; i < 100; i++ {
		if sp := c.Insert(Line{Tag: memory.LineAddr(i * 2), State: TMI}); sp != nil {
			t.Fatal("unbounded victim buffer spilled")
		}
	}
	// Everything remains findable.
	for i := 0; i < 100; i++ {
		if c.Lookup(memory.LineAddr(i*2)) == nil {
			t.Fatalf("line %d lost", i*2)
		}
	}
}

func TestZeroVictimBufferSpillsImmediately(t *testing.T) {
	c := New(Config{Sets: 1, Ways: 1, VictimSize: 0})
	c.Insert(Line{Tag: 1, State: Modified})
	sp := c.Insert(Line{Tag: 2, State: Shared})
	if len(sp) != 1 || sp[0].Line.Tag != 1 {
		t.Fatalf("spill = %+v, want line 1", sp)
	}
}

func TestFlashCommit(t *testing.T) {
	c := small()
	c.Insert(Line{Tag: 1, State: TMI, Data: memory.LineData{42}})
	c.Insert(Line{Tag: 2, State: TI})
	c.Insert(Line{Tag: 3, State: Shared})
	committed := c.FlashCommit()
	if len(committed) != 1 || committed[0] != 1 {
		t.Fatalf("committed = %v, want [1]", committed)
	}
	if ln := c.Lookup(1); ln == nil || ln.State != Modified || ln.Data[0] != 42 {
		t.Fatal("TMI line did not become M with data intact")
	}
	if c.Lookup(2) != nil {
		t.Fatal("TI line survived commit")
	}
	if ln := c.Lookup(3); ln == nil || ln.State != Shared {
		t.Fatal("S line disturbed by flash commit")
	}
}

func TestFlashAbort(t *testing.T) {
	c := small()
	c.Insert(Line{Tag: 1, State: TMI})
	c.Insert(Line{Tag: 2, State: TI})
	c.Insert(Line{Tag: 3, State: Modified, Data: memory.LineData{7}})
	if n := c.FlashAbort(); n != 2 {
		t.Fatalf("FlashAbort dropped %d, want 2", n)
	}
	if c.Lookup(1) != nil || c.Lookup(2) != nil {
		t.Fatal("speculative lines survived abort")
	}
	if ln := c.Lookup(3); ln == nil || ln.State != Modified || ln.Data[0] != 7 {
		t.Fatal("non-speculative M line lost on abort")
	}
}

func TestFlashOpsReachVictimBuffer(t *testing.T) {
	c := New(Config{Sets: 1, Ways: 1, VictimSize: 4})
	c.Insert(Line{Tag: 1, State: TMI})
	c.Insert(Line{Tag: 2, State: Shared}) // pushes 1 into the victim buffer
	if c.Lookup(1) == nil {
		t.Fatal("line 1 should be in victim buffer")
	}
	if n := c.FlashAbort(); n != 1 {
		t.Fatalf("FlashAbort dropped %d, want 1 (victim buffer line)", n)
	}
	if c.Lookup(1) != nil {
		t.Fatal("victim-buffer TMI line survived abort")
	}
}

func TestTMILines(t *testing.T) {
	c := small()
	c.Insert(Line{Tag: 1, State: TMI})
	c.Insert(Line{Tag: 5, State: TMI})
	c.Insert(Line{Tag: 2, State: Modified})
	got := c.TMILines()
	if len(got) != 2 {
		t.Fatalf("TMILines = %v, want 2 entries", got)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Insert(Line{Tag: 9, State: Modified, Data: memory.LineData{1, 2}})
	old, ok := c.Invalidate(9)
	if !ok || old.State != Modified || old.Data[1] != 2 {
		t.Fatal("Invalidate did not return prior contents")
	}
	if c.Lookup(9) != nil {
		t.Fatal("line still resident after Invalidate")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("Invalidate of absent line reported ok")
	}
}

func TestResidentCount(t *testing.T) {
	c := small()
	if c.Resident() != 0 {
		t.Fatal("fresh cache not empty")
	}
	c.Insert(Line{Tag: 1, State: Shared})
	c.Insert(Line{Tag: 2, State: Exclusive})
	if c.Resident() != 2 {
		t.Fatalf("Resident = %d, want 2", c.Resident())
	}
}

func TestStateStringAndPredicates(t *testing.T) {
	if Modified.String() != "M" || TMI.String() != "TMI" || TI.String() != "TI" {
		t.Fatal("state names wrong")
	}
	if !TMI.Speculative() || !TI.Speculative() || Modified.Speculative() {
		t.Fatal("Speculative predicate wrong")
	}
	if Invalid.Valid() || !Shared.Valid() {
		t.Fatal("Valid predicate wrong")
	}
}

func TestCacheNeverLosesTrackedLines(t *testing.T) {
	// Property: with an unbounded victim buffer, every inserted line is
	// either resident or was explicitly invalidated.
	f := func(tags []uint16) bool {
		c := New(Config{Sets: 8, Ways: 2, VictimSize: -1})
		inserted := map[memory.LineAddr]bool{}
		for _, tg := range tags {
			l := memory.LineAddr(tg % 512)
			if c.Lookup(l) == nil {
				c.Insert(Line{Tag: l, State: Shared})
				inserted[l] = true
			}
		}
		for l := range inserted {
			if c.Lookup(l) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTagCacheHitMissEvict(t *testing.T) {
	tc := NewTagCache(2, 2)
	if hit, _, _ := tc.Touch(0); hit {
		t.Fatal("cold miss reported as hit")
	}
	if hit, _, _ := tc.Touch(0); !hit {
		t.Fatal("warm access reported as miss")
	}
	tc.Touch(2) // set 0 now has {0, 2}
	tc.Touch(0) // make 2 LRU
	_, ev, has := tc.Touch(4)
	if !has || ev != 2 {
		t.Fatalf("evicted %v (has=%v), want 2", ev, has)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{{Sets: 0, Ways: 1}, {Sets: 3, Ways: 1}, {Sets: 4, Ways: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestUnboundedTMIVictimKeepsSpeculativeOnly(t *testing.T) {
	c := New(Config{Sets: 1, Ways: 1, VictimSize: 1, UnboundedTMIVictim: true})
	var spilled []Victimized
	// Alternate TMI and Shared lines through the single set.
	for i := 0; i < 10; i++ {
		st := TMI
		if i%2 == 1 {
			st = Shared
		}
		spilled = append(spilled, c.Insert(Line{Tag: memory.LineAddr(i), State: st})...)
	}
	for _, v := range spilled {
		if v.Line.State == TMI {
			t.Fatalf("TMI line %d spilled despite unbounded TMI victim buffer", v.Line.Tag)
		}
	}
	// All TMI lines must still be resident.
	for i := 0; i < 9; i += 2 {
		ln := c.Lookup(memory.LineAddr(i))
		if i == 8 {
			continue // line 8 is in the set itself
		}
		if ln == nil || ln.State != TMI {
			t.Fatalf("TMI line %d lost", i)
		}
	}
}
