package core

import (
	"testing"

	"flextm/internal/cm"
	"flextm/internal/fault"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// TestGovernorKnobsOffAreAllocationFree pins the zero-cost-when-disabled
// guarantee: with no governor bound, every knob the governor could turn is a
// zero value, and the per-section checks (admission gate, serialize branch,
// knob reads) allocate nothing.
func TestGovernorKnobsOffAreAllocationFree(t *testing.T) {
	sys := tmesi.New(tmesi.DefaultConfig())
	rt := New(sys, Eager, cm.Aggressive{})
	th := &Thread{rt: rt}
	if n := testing.AllocsPerRun(1000, func() {
		th.admitGate()
		th.admitRelease()
		_ = rt.ForceSerial()
		_ = rt.BackoffBoost()
		_ = rt.AdmitLimit()
		_ = rt.CM()
	}); n != 0 {
		t.Fatalf("disabled governor knobs allocate %.1f per section, want 0", n)
	}
}

// TestRuntimeKnobSettersClampAndSwap covers the governor's runtime hooks
// directly: live CM swap, boost clamping, and limit floor.
func TestRuntimeKnobSettersClampAndSwap(t *testing.T) {
	sys := tmesi.New(tmesi.DefaultConfig())
	rt := New(sys, Eager, cm.Aggressive{})
	rt.SetCM(nil) // nil is ignored, not installed
	if _, ok := rt.CM().(cm.Aggressive); !ok {
		t.Fatalf("SetCM(nil) replaced the manager: %T", rt.CM())
	}
	rt.SetCM(cm.NewPolka())
	if _, ok := rt.CM().(*cm.Polka); !ok {
		t.Fatalf("SetCM did not install Polka: %T", rt.CM())
	}
	rt.SetBackoffBoost(99)
	if got := rt.BackoffBoost(); got != backoffBoostCap {
		t.Fatalf("boost = %d, want clamped to %d", got, backoffBoostCap)
	}
	rt.SetAdmitLimit(-3)
	if rt.AdmitLimit() != 0 {
		t.Fatalf("negative admit limit = %d, want 0", rt.AdmitLimit())
	}
}

// TestConcurrentEscalationSerializes: with CAS-Commit refused outright and a
// budget of 2, both duelling threads hit the liveness budget in the same
// interval. The fallback lock must funnel them through one irrevocable owner
// at a time — a monitor thread samples escActive at every tick and must
// never see two.
func TestConcurrentEscalationSerializes(t *testing.T) {
	const cells, initial, threads, ops = 2, 1000, 2, 12
	b := newChaosBoard(Eager, cm.Aggressive{}, cells, threads, initial)
	b.rt.SetLiveness(Liveness{MaxConsecAborts: 2, MaxStallCycles: 0, MaxCommitRetries: 2})
	inj := fault.NewInjector(fault.Config{Seed: 5}.WithRate(fault.CommitRace, 1.0))
	b.sys.SetFaultInjector(inj)

	e := sim.NewEngine()
	var workers []*sim.Ctx
	for ti := 0; ti < threads; ti++ {
		id := ti
		workers = append(workers, e.Spawn("duel", 0, func(ctx *sim.Ctx) {
			th := b.rt.Bind(ctx, id)
			from, to := id%cells, (id+1)%cells
			for n := 0; n < ops; n++ {
				th.Atomic(func(tx tmapi.Txn) {
					f := tx.Load(b.cell(from))
					if f == 0 {
						return
					}
					tx.Store(b.cell(from), f-1)
					tx.Store(b.cell(to), tx.Load(b.cell(to))+1)
				})
			}
		}))
	}
	maxActive := 0
	e.Spawn("monitor", 0, func(ctx *sim.Ctx) {
		for {
			live := false
			for _, w := range workers {
				if !w.Done() {
					live = true
					break
				}
			}
			if !live {
				break
			}
			ctx.Advance(64)
			ctx.Sync()
			if b.rt.escActive > maxActive {
				maxActive = b.rt.escActive
			}
		}
	})
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked", blocked)
	}
	if maxActive != 1 {
		t.Fatalf("max concurrent irrevocable owners observed = %d, want exactly 1", maxActive)
	}
	perCore := b.tel.Snapshot().PerCore(telemetry.CtrEscalation)
	for c, n := range perCore {
		if n == 0 {
			t.Errorf("core %d never escalated under CommitRace 1.0 (budget should force it)", c)
		}
	}
	var total uint64
	for i := 0; i < cells; i++ {
		total += b.sys.ReadWordRaw(b.cell(i))
	}
	if want := uint64(cells) * initial; total != want {
		t.Fatalf("total = %d, want %d (conservation broken)", total, want)
	}
}
