package core

import (
	"bytes"
	"fmt"
	"testing"

	"flextm/internal/cm"
	"flextm/internal/memory"
	"flextm/internal/oracle"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// TestOracleCleanRuns attaches the serializability oracle to a contended
// transfer workload in both modes and requires a clean verdict: the
// unmodified protocol must produce serializable histories.
func TestOracleCleanRuns(t *testing.T) {
	for _, mode := range []Mode{Eager, Lazy} {
		t.Run(mode.String(), func(t *testing.T) {
			sys := tmesi.New(testCfg())
			rt := New(sys, mode, cm.NewPolka())
			orc := oracle.NewRecorder()
			rt.SetOracle(orc)

			const accounts, threads, rounds = 6, 4, 25
			lines := make([]memory.Addr, accounts)
			for i := range lines {
				lines[i] = sys.Alloc().Alloc(memory.LineWords)
				orc.SetInitial(lines[i], 0)
			}
			bodies := make([]func(th tmapi.Thread), threads)
			for i := 0; i < threads; i++ {
				id := i
				bodies[i] = func(th tmapi.Thread) {
					for n := 0; n < rounds; n++ {
						from := lines[(id+n)%accounts]
						to := lines[(id*3+n*5+1)%accounts]
						if from == to {
							to = lines[(id*3+n*5+2)%accounts]
						}
						th.Atomic(func(tx tmapi.Txn) {
							v := tx.Load(from)
							th.Work(50)
							tx.Store(from, v-1)
							tx.Store(to, tx.Load(to)+1)
						})
					}
				}
			}
			runThreads(t, rt, bodies...)

			var sum int64
			for _, a := range lines {
				sum += int64(sys.ReadWordRaw(a))
			}
			if sum != 0 {
				t.Fatalf("conservation broken: sum = %d", sum)
			}
			rep := oracle.Check(orc.History(), oracle.Options{})
			if !rep.Ok() {
				var buf bytes.Buffer
				rep.Print(&buf)
				t.Fatalf("oracle flagged a clean %s run:\n%s", mode, buf.String())
			}
			if rep.Txns == 0 || rep.Reads == 0 || rep.Writes == 0 {
				t.Fatalf("oracle recorded nothing: %+v", rep)
			}
			if len(rep.Malformed) != 0 {
				t.Fatalf("malformed log from a live run: %v", rep.Malformed)
			}
		})
	}
}

// TestOracleCatchesDisabledWRAborts is the acceptance probe for the broken
// protocol variant: with SetWRAborts(false), a lazy committer spares the
// transactions that read its old values (skipping Figure 3, line 2), so a
// write-skew pair both commit against the initial snapshot. The oracle must
// flag the run; the stock protocol on the identical program must not.
func TestOracleCatchesDisabledWRAborts(t *testing.T) {
	run := func(broken bool) *oracle.Report {
		sys := tmesi.New(testCfg())
		rt := New(sys, Lazy, cm.NewPolka())
		rt.SetWRAborts(!broken)
		orc := oracle.NewRecorder()
		rt.SetOracle(orc)

		a := sys.Alloc().Alloc(memory.LineWords)
		b := sys.Alloc().Alloc(memory.LineWords)
		orc.SetInitial(a, 0)
		orc.SetInitial(b, 0)
		// Write skew: each thread reads the other's line, holds the
		// snapshot across a delay, then writes its own line from it.
		mk := func(rd, wr memory.Addr, hold sim.Time) func(th tmapi.Thread) {
			return func(th tmapi.Thread) {
				th.Atomic(func(tx tmapi.Txn) {
					v := tx.Load(rd)
					th.Work(hold)
					tx.Store(wr, v+1)
					th.Work(hold)
				})
			}
		}
		e := sim.NewEngine()
		for i, body := range []func(th tmapi.Thread){mk(a, b, 400), mk(b, a, 400)} {
			coreID, f := i, body
			e.Spawn(fmt.Sprintf("skew-%d", i), 0, func(ctx *sim.Ctx) { f(rt.Bind(ctx, coreID)) })
		}
		if blocked := e.Run(); blocked != 0 {
			t.Fatalf("%d threads blocked", blocked)
		}
		return oracle.Check(orc.History(), oracle.Options{})
	}

	if rep := run(false); !rep.Ok() {
		var buf bytes.Buffer
		rep.Print(&buf)
		t.Fatalf("stock protocol flagged:\n%s", buf.String())
	}
	rep := run(true)
	if rep.Ok() {
		t.Fatal("oracle missed the disabled W-R abort protocol break")
	}
	var cyc *oracle.Violation
	for i := range rep.Violations {
		if rep.Violations[i].Kind == oracle.VCycle {
			cyc = &rep.Violations[i]
		}
	}
	if cyc == nil {
		t.Fatalf("no dsr-cycle among violations: %+v", rep.Violations)
	}
	if len(cyc.Witness) < 2 || len(cyc.Edges) < 2 {
		t.Fatalf("cycle witness too thin: %d txns, %d edges", len(cyc.Witness), len(cyc.Edges))
	}
	for _, e := range cyc.Edges {
		if e.CST == "" {
			t.Fatalf("edge %+v lacks a CST hint", e)
		}
	}
}
