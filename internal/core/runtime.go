// Package core implements the FlexTM runtime: the software side of the
// paper's contribution. It drives the decoupled hardware primitives of
// internal/tmesi — signatures, conflict summary tables, programmable data
// isolation, alert-on-update, and overflow tables — under software-chosen
// policy: eager or lazy conflict management with a pluggable contention
// manager.
//
// Each transaction is represented by a descriptor (Table 1 of the paper)
// whose transaction status word (TSW) lives in simulated memory, is ALoaded
// for abort notification, and is advertised in a per-processor table so
// enemies can abort it with an ordinary CAS. Commit follows Figure 3: in
// lazy mode the committer copy-and-clears its W-R and W-W CSTs, aborts
// exactly those processors, and CAS-Commits its own TSW — an entirely local
// protocol with no tokens, broadcasts, or ticket serialization.
package core

import (
	"fmt"

	"flextm/internal/baselines/cgl"
	"flextm/internal/cm"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/oracle"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
)

// TSW values. A fresh slot is zero (invalid), so stale CAS attempts from
// old conflicts fail harmlessly.
const (
	TSWInvalid   = 0
	TSWActive    = 1
	TSWCommitted = 2
	TSWAborted   = 3
)

// Mode selects when conflicts are managed (Section 3.6).
type Mode int

const (
	// Eager: the conflict manager runs as soon as a Threatened or
	// Exposed-Read response arrives.
	Eager Mode = iota
	// Lazy: conflicts accumulate in the CSTs and are resolved locally at
	// commit time (Figure 3).
	Lazy
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Eager {
		return "Eager"
	}
	return "Lazy"
}

// Costs are the software overheads charged by the runtime, in cycles.
type Costs struct {
	Begin     sim.Time // register checkpoint + descriptor setup
	CMInvoke  sim.Time // conflict-manager handler entry
	AbortWork sim.Time // abort handler software path
	CSTWrite  sim.Time // software write of a remote CST register
}

// DefaultCosts reflect the paper's observation that FlexTM's main software
// overhead is register checkpointing (spilling locals to the stack).
func DefaultCosts() Costs {
	return Costs{Begin: 40, CMInvoke: 20, AbortWork: 30, CSTWrite: 6}
}

// tswSlots is the number of status-word lines in each thread's arena.
// Fresh TSWs per transaction make stale enemy CASes miss by construction.
const tswSlots = 64

// backoffBoostCap bounds the governor's retry-back-off shift: beyond 2^16x
// a stretched window is indistinguishable from admission control, and an
// uncapped shift could overflow the (already capped) manager window.
const backoffBoostCap = 16

// admitPollTick is how long a thread parked at the admission gate waits
// between polls. Fixed and random-free, so gated schedules stay
// deterministic.
const admitPollTick sim.Time = 256

// Liveness bounds how long one Atomic section may flounder before the
// runtime escalates it to serialized-irrevocable mode. FlexTM's optimistic
// path guarantees only obstruction-freedom; under pathological contention —
// or under injected faults (spurious CST refusals, lost alerts) — a thread
// can abort indefinitely. The watchdog converts "retry forever" into
// "retry a bounded number of times, then take the global fallback lock and
// finish alone". A zero field disables that particular budget.
type Liveness struct {
	// MaxConsecAborts escalates after this many consecutive failed attempts
	// of a single Atomic section.
	MaxConsecAborts int
	// MaxStallCycles escalates once a single Atomic section has burned this
	// many cycles (attempts, back-off, and aborts included) without
	// committing.
	MaxStallCycles sim.Time
	// MaxCommitRetries bounds the Figure 3 commit loop: after this many
	// consecutive CommitCSTFail refusals within one attempt, the attempt is
	// converted into an abort so the watchdog above can observe it.
	MaxCommitRetries int
}

// DefaultLiveness is permissive enough that fault-free runs of the paper's
// workloads never escalate (contended lazy commits can legitimately refuse
// a few dozen times), while still bounding every injected-fault storm.
func DefaultLiveness() Liveness {
	return Liveness{MaxConsecAborts: 64, MaxStallCycles: 10_000_000, MaxCommitRetries: 512}
}

// desc is a transaction descriptor (Table 1). Policy-relevant fields are
// mirrored in Go for speed; the TSW itself lives in simulated memory.
type desc struct {
	tsw   memory.Addr
	karma int    // accesses so far (contention-manager priority)
	stamp uint64 // age: assigned at the transaction's first attempt
	live  bool
}

// Runtime is a FlexTM instance over one simulated machine.
type Runtime struct {
	sys       *tmesi.System
	mode      Mode
	mgr       cm.Manager
	costs     Costs
	cleanWR   bool // scrub own bit from enemies' W-R after commit (Section 3.6)
	sigScreen bool // verify enemy signatures still intersect before aborting

	tswTable memory.Addr // per-core line holding the current TSW address
	arenas   [][]memory.Addr
	arenaIdx []int
	current  []*desc
	stats    []tmapi.Stats
	ageClock uint64

	// live bounds per-Atomic floundering; fallback is the global
	// serialized-irrevocable lock an escalated thread runs under. It is
	// allocated on first escalation so fault-free runs keep the exact
	// memory layout (and therefore cycle-exact behavior) of a runtime
	// without the escalation path. escActive counts threads currently
	// holding (or releasing) the lock; the fallback gate consults this
	// Go-side flag first — modeling the lock line resident shared in every
	// cache — so the un-escalated fast path costs nothing in simulated
	// time. The sim runs one goroutine at a time, so the counter is
	// deterministic and race-free.
	live      Liveness
	fallback  *cgl.Spinlock
	escActive int

	// Governor-controlled knobs (internal/governor). All default to the
	// neutral value, and every consult on the hot path is a single branch on
	// a Go-side field, so an ungoverned run pays nothing — in simulated time
	// or in allocations — for their existence.
	//
	// backoffBoost left-shifts every retry back-off the contention manager
	// returns (mitigation rung "scale the backoff"); admitLimit caps how many
	// threads may be inside an Atomic section at once (0 = unlimited), with
	// admitActive counting current holders; forceSerial routes every new
	// Atomic section straight through the serialized-irrevocable path (the
	// ladder's last rung, reusing the watchdog's escalation machinery).
	backoffBoost uint
	admitLimit   int
	admitActive  int
	forceSerial  bool

	// OnAbortYield, if set, runs in the aborted thread before its retry
	// back-off; the multiprogramming experiment (Figure 5e,f) uses it to
	// donate the CPU to background work.
	OnAbortYield func(th *Thread)

	// Tracer, if set, records transaction-level events for post-mortem
	// analysis (see internal/trace).
	Tracer *trace.Recorder

	// tel mirrors the machine's telemetry registry (captured at New; nil
	// when telemetry is off). The runtime charges contention-manager
	// decisions and per-transaction cycle attribution to it.
	tel *telemetry.Registry

	// fl mirrors the machine's flight recorder (captured at New; nil when
	// recording is off). The runtime records transaction-lifecycle and
	// contention-manager events alongside the protocol-level records the
	// machine writes itself.
	fl *flight.Recorder

	// orc is the serializability oracle's operation-log recorder (nil when
	// the oracle is off; every call site is nil-safe). It logs the values
	// application code actually observed and stored, so the offline checker
	// can reconstruct the direct serialization graph of the run.
	orc *oracle.Recorder

	// wrAborts gates the commit-time abort of W-R-named enemies (Figure 3,
	// line 2). Always true in a correct protocol; the oracle's stress suite
	// turns it off to prove the checker detects the resulting lost updates.
	wrAborts bool

	// OnFlightDump, if set, receives a snapshot of the flight recorder the
	// first time any core's liveness watchdog trips — the moment the run is
	// known to be pathological — so the contention history leading up to the
	// trip can be analyzed before escalation scrambles it. Invoked at most
	// once per runtime.
	OnFlightDump func(core int, recs []flight.Rec)
	flightDumped bool

	onAbortEnemy func(th *Thread, enemy int)
}

// New returns a FlexTM runtime in the given mode using manager mgr.
func New(sys *tmesi.System, mode Mode, mgr cm.Manager) *Runtime {
	cores := sys.Config().Cores
	rt := &Runtime{
		sys:       sys,
		mode:      mode,
		mgr:       mgr,
		costs:     DefaultCosts(),
		cleanWR:   true,
		sigScreen: true,
		arenas:    make([][]memory.Addr, cores),
		arenaIdx:  make([]int, cores),
		current:   make([]*desc, cores),
		stats:     make([]tmapi.Stats, cores),
		live:      DefaultLiveness(),
		tel:       sys.Telemetry(),
		fl:        sys.Flight(),
		wrAborts:  true,
	}
	rt.tswTable = sys.Alloc().Alloc(cores * memory.LineWords)
	for c := 0; c < cores; c++ {
		slots := make([]memory.Addr, tswSlots)
		for i := range slots {
			slots[i] = sys.Alloc().Alloc(memory.LineWords)
		}
		rt.arenas[c] = slots
	}
	sys.SetStrongIsolationHook(func(victim int) {
		d := rt.current[victim]
		if d != nil && d.live && sys.TxnActive(victim) {
			sys.ForceWord(d.tsw, TSWAborted)
		}
	})
	return rt
}

// Name implements tmapi.Runtime.
func (rt *Runtime) Name() string {
	return fmt.Sprintf("FlexTM(%s)", rt.mode)
}

// Mode returns the conflict-management mode.
func (rt *Runtime) Mode() Mode { return rt.mode }

// System returns the underlying memory system.
func (rt *Runtime) System() *tmesi.System { return rt.sys }

// SetCosts overrides the software cost model.
func (rt *Runtime) SetCosts(c Costs) { rt.costs = c }

// SetCleanWR toggles the paper's spurious-abort avoidance (a committer
// scrubs its bit from the W-R register of everyone in its R-W).
func (rt *Runtime) SetCleanWR(on bool) { rt.cleanWR = on }

// SetLiveness overrides the watchdog budgets. Zero fields disable the
// corresponding budget.
func (rt *Runtime) SetLiveness(l Liveness) { rt.live = l }

// Liveness returns the current watchdog budgets.
func (rt *Runtime) Liveness() Liveness { return rt.live }

// SetOracle attaches (or detaches, with nil) a serializability-oracle
// recorder. The runtime then logs every transactional operation with the
// value observed or stored; see internal/oracle.
func (rt *Runtime) SetOracle(r *oracle.Recorder) { rt.orc = r }

// Oracle returns the attached oracle recorder (nil when the oracle is off).
func (rt *Runtime) Oracle() *oracle.Recorder { return rt.orc }

// SetWRAborts toggles the commit-time abort of enemies named by the
// committer's W-R CST (Figure 3, line 2). Disabling it deliberately breaks
// the protocol — committers spare transactions that read their old values,
// which then commit on stale data. It exists solely as the intentionally
// broken variant the serializability oracle must catch; see internal/stress.
func (rt *Runtime) SetWRAborts(on bool) { rt.wrAborts = on }

// SetCM swaps the contention manager live. Threads consult rt.mgr on every
// decision, so the new policy takes effect at the next conflict or retry;
// in-flight back-offs already charged are not revisited. The simulation runs
// one goroutine at a time, so the swap is race-free and deterministic.
func (rt *Runtime) SetCM(m cm.Manager) {
	if m != nil {
		rt.mgr = m
	}
}

// CM returns the contention manager currently in force.
func (rt *Runtime) CM() cm.Manager { return rt.mgr }

// SetBackoffBoost left-shifts every contention-manager retry back-off by
// shift (0 = neutral). The governor uses it to stretch retry windows without
// swapping the policy itself.
func (rt *Runtime) SetBackoffBoost(shift uint) {
	if shift > backoffBoostCap {
		shift = backoffBoostCap
	}
	rt.backoffBoost = shift
}

// BackoffBoost returns the current retry back-off shift.
func (rt *Runtime) BackoffBoost() uint { return rt.backoffBoost }

// SetAdmitLimit caps how many threads may run Atomic sections concurrently
// (0 = unlimited). Lowering the limit sheds load gradually: sections already
// admitted run to completion; new sections wait at the gate until a token
// frees up. Raising it re-admits waiters on their next poll.
func (rt *Runtime) SetAdmitLimit(n int) {
	if n < 0 {
		n = 0
	}
	rt.admitLimit = n
}

// AdmitLimit returns the admission-control cap (0 = unlimited).
func (rt *Runtime) AdmitLimit() int { return rt.admitLimit }

// AdmitActive returns how many threads currently hold admission tokens.
func (rt *Runtime) AdmitActive() int { return rt.admitActive }

// SetForceSerial routes every new Atomic section through the
// serialized-irrevocable fallback (the mitigation ladder's last rung).
// Sections already running optimistically finish or drain at the fallback
// gate as usual.
func (rt *Runtime) SetForceSerial(on bool) { rt.forceSerial = on }

// ForceSerial reports whether new sections are being serialized.
func (rt *Runtime) ForceSerial() bool { return rt.forceSerial }

// SetSigScreen toggles the commit-time signature screen: before aborting an
// enemy processor, verify its current (software-visible) signatures still
// intersect our write set; a provably-disjoint enemy is a successor of the
// transaction that actually conflicted and is spared. Sound because the
// CAS-Commit CST check catches any conflict that arrives after the screen.
func (rt *Runtime) SetSigScreen(on bool) { rt.sigScreen = on }

// Bind implements tmapi.Runtime.
func (rt *Runtime) Bind(ctx *sim.Ctx, core int) tmapi.Thread {
	return rt.BindThread(ctx, core)
}

// BindThread is Bind with a concrete return type, for callers that need
// FlexTM-specific controls.
func (rt *Runtime) BindThread(ctx *sim.Ctx, core int) *Thread {
	return &Thread{
		rt:   rt,
		ctx:  ctx,
		core: core,
		rnd:  sim.NewRand(uint64(core)*0x9E3779B9 + 0x1234567),
	}
}

// Stats implements tmapi.Runtime.
func (rt *Runtime) Stats() tmapi.Stats {
	var total tmapi.Stats
	for i := range rt.stats {
		total.Commits += rt.stats[i].Commits
		total.Aborts += rt.stats[i].Aborts
		total.Escalations += rt.stats[i].Escalations
		total.ConflictDegrees = append(total.ConflictDegrees, rt.stats[i].ConflictDegrees...)
	}
	return total
}

// dumpFlight hands the flight-recorder snapshot to OnFlightDump, once.
func (rt *Runtime) dumpFlight(core int) {
	if rt.flightDumped || rt.OnFlightDump == nil || rt.fl == nil {
		return
	}
	rt.flightDumped = true
	rt.OnFlightDump(core, rt.fl.Snapshot())
}

// tswEntry returns the address of core's slot in the TSW table.
func (rt *Runtime) tswEntry(core int) memory.Addr {
	return rt.tswTable + memory.Addr(core*memory.LineWords)
}

// nextTSW returns a fresh status-word address for core.
func (rt *Runtime) nextTSW(core int) memory.Addr {
	i := rt.arenaIdx[core]
	rt.arenaIdx[core] = (i + 1) % tswSlots
	return rt.arenas[core][i]
}

// karmaOf returns the contention-manager priority of the transaction
// currently on core (0 if none).
func (rt *Runtime) karmaOf(core int) int {
	if d := rt.current[core]; d != nil && d.live {
		return d.karma
	}
	return 0
}

// stampOf returns the age stamp of the transaction on core (0 if none).
func (rt *Runtime) stampOf(core int) uint64 {
	if d := rt.current[core]; d != nil && d.live {
		return d.stamp
	}
	return 0
}

// OnAbortEnemy, if set, runs whenever a thread aborts the transaction on an
// enemy core (eager arbitration or the lazy commit loop). The OS model uses
// it to peruse its conflict management table and also abort *suspended*
// transactions that were executing on that core (Section 5).
func (rt *Runtime) SetOnAbortEnemy(h func(th *Thread, enemy int)) { rt.onAbortEnemy = h }

// CurrentTSW returns the status-word address of the transaction currently
// live on core, or 0 when the core is between transactions. The OS uses it
// when suspending a thread.
func (rt *Runtime) CurrentTSW(core int) memory.Addr {
	if d := rt.current[core]; d != nil && d.live {
		return d.tsw
	}
	return 0
}

// TxnHandle is an opaque reference to a live transaction's descriptor, used
// by the OS model to detach a suspended transaction from its core and
// re-attach it on resume (another thread may run transactions on the core
// in between).
type TxnHandle struct {
	d *desc
}

// Valid reports whether the handle references a live transaction.
func (h TxnHandle) Valid() bool { return h.d != nil && h.d.live }

// DetachTxn captures the live transaction on core (without clearing it);
// returns an invalid handle if none.
func (rt *Runtime) DetachTxn(core int) TxnHandle {
	if d := rt.current[core]; d != nil && d.live {
		return TxnHandle{d: d}
	}
	return TxnHandle{}
}

// AttachTxn re-advertises a detached transaction as the one running on
// core: the per-processor descriptor table again names its TSW, so enemies
// can abort it. ctx is charged for the table update.
func (rt *Runtime) AttachTxn(ctx *sim.Ctx, core int, h TxnHandle) {
	if !h.Valid() {
		return
	}
	rt.current[core] = h.d
	rt.sys.Store(ctx, core, rt.tswEntry(core), uint64(h.d.tsw))
}
