package core

import (
	"reflect"
	"testing"

	"flextm/internal/cm"
	"flextm/internal/fault"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
)

// escalateRun drives a transfer workload under an injector and returns the
// board for inspection. Every thread performs ops transfers between two hot
// cells, so the run both contends and conserves.
func escalateRun(t *testing.T, mode Mode, cfg fault.Config, live Liveness, threads, ops int) (*chaosBoard, *fault.Injector, *telemetry.Registry) {
	t.Helper()
	const cells, initial = 4, 1000
	b := newChaosBoard(mode, cm.NewPolka(), cells, threads, initial)
	b.rt.SetLiveness(live)
	inj := fault.NewInjector(cfg)
	b.sys.SetFaultInjector(inj)

	e := sim.NewEngine()
	for ti := 0; ti < threads; ti++ {
		id := ti
		e.Spawn("esc", 0, func(ctx *sim.Ctx) {
			th := b.rt.Bind(ctx, id)
			r := sim.NewRand(uint64(id)*31 + 7)
			for n := 0; n < ops; n++ {
				from, to := r.Intn(cells), r.Intn(cells)
				th.Atomic(func(tx tmapi.Txn) {
					f := tx.Load(b.cell(from))
					if f == 0 {
						return
					}
					tx.Store(b.cell(from), f-1)
					tx.Store(b.cell(to), tx.Load(b.cell(to))+1)
				})
			}
		})
	}
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked (liveness failure)", blocked)
	}
	var total uint64
	for i := 0; i < cells; i++ {
		total += b.sys.ReadWordRaw(b.cell(i))
	}
	if want := uint64(cells) * initial; total != want {
		t.Fatalf("total = %d, want %d (conservation broken)", total, want)
	}
	return b, inj, b.tel
}

// TestWatchdogEscalatesAndCommits: under a heavy injected CAS-Commit race
// storm and a tight budget, threads must trip the watchdog, escalate, and
// still finish the run with conservation intact.
func TestWatchdogEscalatesAndCommits(t *testing.T) {
	live := Liveness{MaxConsecAborts: 4, MaxStallCycles: 500_000, MaxCommitRetries: 4}
	cfg := fault.Config{Seed: 42}.WithRate(fault.CommitRace, 0.9)
	for _, mode := range []Mode{Eager, Lazy} {
		b, _, tel := escalateRun(t, mode, cfg, live, 4, 30)
		st := b.rt.Stats()
		if st.Escalations == 0 {
			t.Fatalf("%v: no escalations under a 90%% CommitRace storm", mode)
		}
		snap := tel.Snapshot()
		for _, ctr := range []telemetry.Counter{
			telemetry.CtrWatchdogTrip, telemetry.CtrEscalation, telemetry.CtrEscalatedCommit,
		} {
			if snap.Total(ctr) == 0 {
				t.Errorf("%v: counter %s is zero", mode, ctr)
			}
		}
		if snap.Total(telemetry.CtrEscalation) != st.Escalations {
			t.Errorf("%v: telemetry escalations %d != stats %d",
				mode, snap.Total(telemetry.CtrEscalation), st.Escalations)
		}
	}
}

// TestCommitRaceRateOneForwardProgress: at rate 1.0 every non-immune
// CAS-Commit with a CST check is refused, so no optimistic commit can ever
// succeed. Forward progress then rests entirely on the commit-retry budget
// converting the spin into aborts, the watchdog tripping, and escalated
// (fault-immune) execution — the run must still complete and conserve.
func TestCommitRaceRateOneForwardProgress(t *testing.T) {
	live := Liveness{MaxConsecAborts: 3, MaxStallCycles: 0, MaxCommitRetries: 3}
	cfg := fault.Config{Seed: 7}.WithRate(fault.CommitRace, 1.0)
	const threads, ops = 3, 10
	b, _, _ := escalateRun(t, Lazy, cfg, live, threads, ops)
	st := b.rt.Stats()
	if st.Escalations == 0 {
		t.Fatal("no escalations at CommitRace rate 1.0")
	}
	if st.Commits < threads*ops {
		t.Fatalf("commits = %d, want >= %d", st.Commits, threads*ops)
	}
}

// TestAlertLossRateOneBackstop: with every eviction/invalidation alert
// dropped, a doomed transaction never hears it was aborted — the CAS-Commit
// status-word check is the backstop that must keep the invariants intact.
func TestAlertLossRateOneBackstop(t *testing.T) {
	cfg := fault.Config{Seed: 11}.WithRate(fault.AlertLoss, 1.0)
	for _, mode := range []Mode{Eager, Lazy} {
		escalateRun(t, mode, cfg, DefaultLiveness(), 4, 30)
	}
}

// TestEscalationDeterminism: the same seed and config must yield the exact
// same commits, aborts, escalations, and fault schedule across two runs.
func TestEscalationDeterminism(t *testing.T) {
	live := Liveness{MaxConsecAborts: 4, MaxStallCycles: 500_000, MaxCommitRetries: 4}
	cfg := fault.Config{Seed: 99}.
		WithRate(fault.CommitRace, 0.4).
		WithRate(fault.SpuriousAlert, 0.1).
		WithRate(fault.AlertLoss, 0.2)
	type outcome struct {
		Stats  tmapi.Stats
		Report fault.Report
	}
	run := func() outcome {
		b, inj, _ := escalateRun(t, Lazy, cfg, live, 4, 25)
		st := b.rt.Stats()
		st.ConflictDegrees = nil // order varies by aggregation, counts do not
		return outcome{Stats: st, Report: inj.Report()}
	}
	a, bb := run(), run()
	if !reflect.DeepEqual(a, bb) {
		t.Fatalf("two identical runs diverged:\n  run1 = %+v\n  run2 = %+v", a, bb)
	}
}
