package core

import (
	"testing"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
)

func testCfg() tmesi.Config {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = 8
	return cfg
}

// tinyCacheCfg forces TMI evictions into the overflow table.
func tinyCacheCfg() tmesi.Config {
	cfg := testCfg()
	cfg.L1 = cache.Config{Sets: 4, Ways: 2, VictimSize: 2}
	return cfg
}

// runThreads spawns one FlexTM thread per body and runs to completion.
func runThreads(t *testing.T, rt *Runtime, bodies ...func(th tmapi.Thread)) {
	t.Helper()
	e := sim.NewEngine()
	for i, b := range bodies {
		core, body := i, b
		e.Spawn("worker", 0, func(ctx *sim.Ctx) {
			body(rt.Bind(ctx, core))
		})
	}
	if blocked := e.Run(); blocked != 0 {
		t.Fatalf("%d threads blocked (deadlock)", blocked)
	}
}

func TestSingleThreadCommit(t *testing.T) {
	for _, mode := range []Mode{Eager, Lazy} {
		sys := tmesi.New(testCfg())
		rt := New(sys, mode, cm.NewPolka())
		x := sys.Alloc().Alloc(1)
		runThreads(t, rt, func(th tmapi.Thread) {
			th.Atomic(func(tx tmapi.Txn) {
				tx.Store(x, tx.Load(x)+5)
			})
		})
		if v := sys.ReadWordRaw(x); v != 5 {
			t.Errorf("%v: x = %d, want 5", mode, v)
		}
		if s := rt.Stats(); s.Commits != 1 || s.Aborts != 0 {
			t.Errorf("%v: stats = %+v", mode, s)
		}
	}
}

func TestUserAbortRollsBack(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		first := true
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 99)
			if first {
				first = false
				tx.Abort()
			}
			tx.Store(x, 7)
		})
	})
	if v := sys.ReadWordRaw(x); v != 7 {
		t.Fatalf("x = %d, want 7", v)
	}
	if s := rt.Stats(); s.Commits != 1 || s.Aborts != 1 {
		t.Fatalf("stats = %+v, want 1 commit / 1 abort", s)
	}
}

func TestContendedCounterSerializes(t *testing.T) {
	const threads, incs = 6, 40
	for _, mode := range []Mode{Eager, Lazy} {
		sys := tmesi.New(testCfg())
		rt := New(sys, mode, cm.NewPolka())
		x := sys.Alloc().Alloc(1)
		bodies := make([]func(tmapi.Thread), threads)
		for i := range bodies {
			bodies[i] = func(th tmapi.Thread) {
				for j := 0; j < incs; j++ {
					th.Atomic(func(tx tmapi.Txn) {
						tx.Store(x, tx.Load(x)+1)
					})
					th.Work(50)
				}
			}
		}
		runThreads(t, rt, bodies...)
		if v := sys.ReadWordRaw(x); v != threads*incs {
			t.Errorf("%v: counter = %d, want %d (lost/duplicated updates)",
				mode, v, threads*incs)
		}
		if s := rt.Stats(); s.Commits != threads*incs {
			t.Errorf("%v: commits = %d, want %d", mode, s.Commits, threads*incs)
		}
	}
}

func TestBankTransfersConserveTotal(t *testing.T) {
	const accounts, threads, transfers, initial = 16, 6, 30, 1000
	for _, mode := range []Mode{Eager, Lazy} {
		for _, cfg := range []tmesi.Config{testCfg(), tinyCacheCfg()} {
			sys := tmesi.New(cfg)
			rt := New(sys, mode, cm.NewPolka())
			base := sys.Alloc().Alloc(accounts * memory.LineWords)
			acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
			for i := 0; i < accounts; i++ {
				sys.Image().WriteWord(acct(i), initial)
			}
			bodies := make([]func(tmapi.Thread), threads)
			for i := range bodies {
				bodies[i] = func(th tmapi.Thread) {
					r := th.Rand()
					for j := 0; j < transfers; j++ {
						from, to := r.Intn(accounts), r.Intn(accounts)
						amt := uint64(r.Intn(10))
						th.Atomic(func(tx tmapi.Txn) {
							f := tx.Load(acct(from))
							if f < amt {
								return
							}
							tx.Store(acct(from), f-amt)
							tx.Store(acct(to), tx.Load(acct(to))+amt)
						})
					}
				}
			}
			runThreads(t, rt, bodies...)
			var total uint64
			for i := 0; i < accounts; i++ {
				total += sys.ReadWordRaw(acct(i))
			}
			if total != accounts*initial {
				t.Errorf("%v/%d-set L1: total = %d, want %d",
					mode, cfg.L1.Sets, total, accounts*initial)
			}
		}
	}
}

func TestOverflowingTransactionCommits(t *testing.T) {
	sys := tmesi.New(tinyCacheCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	base := sys.Alloc().Alloc(32 * memory.LineWords)
	runThreads(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			for i := 0; i < 32; i++ {
				tx.Store(base+memory.Addr(i*memory.LineWords), uint64(i+1))
			}
		})
	})
	for i := 0; i < 32; i++ {
		if v := sys.ReadWordRaw(base + memory.Addr(i*memory.LineWords)); v != uint64(i+1) {
			t.Fatalf("word %d = %d after overflowing commit", i, v)
		}
	}
	if sys.Stats().Overflows == 0 {
		t.Fatal("test did not exercise the overflow path")
	}
}

func TestStrongIsolationAbortsReader(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Eager, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Load(x)
			th.Work(3000) // window for the conflicting plain store
			tx.Store(y, tx.Load(x))
		})
	}, func(th tmapi.Thread) {
		th.Work(1000)
		th.Store(x, 42) // non-transactional write into the reader's read set
	})
	if s := rt.Stats(); s.Aborts == 0 {
		t.Fatal("strong isolation did not abort the conflicting transaction")
	}
	if v := sys.ReadWordRaw(y); v != 42 {
		t.Fatalf("y = %d, want 42 (retried txn must see the plain store)", v)
	}
}

func TestLazyWritersOneWinsOneRetries(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	mark := sys.Alloc().Alloc(2)
	body := func(id int) func(th tmapi.Thread) {
		return func(th tmapi.Thread) {
			th.Work(sim.Time(id) * 10)
			th.Atomic(func(tx tmapi.Txn) {
				v := tx.Load(x)
				th.Work(2000) // force overlap
				tx.Store(x, v+1)
			})
			th.Store(mark+memory.Addr(id), 1)
		}
	}
	runThreads(t, rt, body(0), body(1))
	if v := sys.ReadWordRaw(x); v != 2 {
		t.Fatalf("x = %d, want 2", v)
	}
	s := rt.Stats()
	if s.Commits != 2 {
		t.Fatalf("commits = %d, want 2", s.Commits)
	}
	if s.Aborts == 0 {
		t.Fatal("overlapping writers should have produced at least one abort")
	}
}

func TestConflictDegreesRecorded(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	bodies := make([]func(tmapi.Thread), 4)
	for i := range bodies {
		bodies[i] = func(th tmapi.Thread) {
			th.Atomic(func(tx tmapi.Txn) {
				v := tx.Load(x)
				th.Work(2000)
				tx.Store(x, v+1)
			})
		}
	}
	runThreads(t, rt, bodies...)
	s := rt.Stats()
	if len(s.ConflictDegrees) != int(s.Commits) {
		t.Fatalf("%d degree samples for %d commits", len(s.ConflictDegrees), s.Commits)
	}
	_, mx := s.MedianMaxConflicts()
	if mx == 0 {
		t.Fatal("fully-overlapping writers recorded no conflicts")
	}
}

func TestNestedAtomicSubsumed(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 1)
			th.Atomic(func(inner tmapi.Txn) {
				inner.Store(x, inner.Load(x)+1)
			})
		})
	})
	if v := sys.ReadWordRaw(x); v != 2 {
		t.Fatalf("x = %d, want 2", v)
	}
	if s := rt.Stats(); s.Commits != 1 {
		t.Fatalf("commits = %d, want 1 (inner txn must be subsumed)", s.Commits)
	}
}

func TestNestedAbortUnwindsWholeTxn(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		first := true
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 10)
			th.Atomic(func(inner tmapi.Txn) {
				if first {
					first = false
					inner.Abort()
				}
				inner.Store(x, 20)
			})
		})
	})
	if v := sys.ReadWordRaw(x); v != 20 {
		t.Fatalf("x = %d, want 20", v)
	}
	if s := rt.Stats(); s.Aborts != 1 || s.Commits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEagerManagersAllMakeProgress(t *testing.T) {
	for _, mgr := range []cm.Manager{cm.NewPolka(), cm.Timid{}, cm.Aggressive{}, cm.NewKarma(), cm.NewGreedy(), cm.NewTimestamp()} {
		sys := tmesi.New(testCfg())
		rt := New(sys, Eager, mgr)
		x := sys.Alloc().Alloc(1)
		bodies := make([]func(tmapi.Thread), 4)
		for i := range bodies {
			bodies[i] = func(th tmapi.Thread) {
				for j := 0; j < 10; j++ {
					th.Atomic(func(tx tmapi.Txn) {
						tx.Store(x, tx.Load(x)+1)
					})
					th.Work(100)
				}
			}
		}
		runThreads(t, rt, bodies...)
		if v := sys.ReadWordRaw(x); v != 40 {
			t.Errorf("%s: counter = %d, want 40", mgr.Name(), v)
		}
	}
}

func TestDeterministicRun(t *testing.T) {
	mk := func() (uint64, uint64, sim.Time) {
		sys := tmesi.New(testCfg())
		rt := New(sys, Lazy, cm.NewPolka())
		x := sys.Alloc().Alloc(1)
		e := sim.NewEngine()
		for i := 0; i < 4; i++ {
			core := i
			e.Spawn("w", 0, func(ctx *sim.Ctx) {
				th := rt.Bind(ctx, core)
				for j := 0; j < 20; j++ {
					th.Atomic(func(tx tmapi.Txn) {
						tx.Store(x, tx.Load(x)+1)
					})
				}
			})
		}
		e.Run()
		s := rt.Stats()
		return s.Commits, s.Aborts, e.MaxTime()
	}
	c1, a1, t1 := mk()
	c2, a2, t2 := mk()
	if c1 != c2 || a1 != a2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, a1, t1, c2, a2, t2)
	}
}

func TestCleanWRPreventsSpuriousAbort(t *testing.T) {
	// The writer TStores x first; the reader's TLoad is then Threatened, so
	// the conflict appears in the reader's R-W. When the reader commits
	// first, cleanWR scrubs its bit from the writer's W-R (Section 3.6),
	// and the writer's later commit must not abort the reader's next,
	// unrelated transaction.
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	run := func(clean bool) tmapi.Stats {
		sys := tmesi.New(testCfg())
		rt := New(sys, Lazy, cm.NewPolka())
		rt.SetCleanWR(clean)
		rt.SetSigScreen(false) // isolate the cleanWR mechanism
		x = sys.Alloc().Alloc(1)
		y = sys.Alloc().Alloc(1)
		runThreads(t, rt, func(th tmapi.Thread) {
			// Writer: long txn writing x; commits around t=5000.
			th.Atomic(func(tx tmapi.Txn) {
				tx.Store(x, 1)
				th.Work(5000)
			})
		}, func(th tmapi.Thread) {
			// Reader: threatened read of x, quick commit, then an
			// unrelated txn on y that is live when the writer commits.
			th.Work(1000)
			th.Atomic(func(tx tmapi.Txn) { tx.Load(x) })
			th.Atomic(func(tx tmapi.Txn) {
				tx.Store(y, tx.Load(y)+1)
				th.Work(6000)
			})
		})
		return rt.Stats()
	}
	withClean := run(true)
	if withClean.Commits != 3 {
		t.Fatalf("commits = %d, want 3", withClean.Commits)
	}
	if withClean.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0 (cleanWR should prevent the spurious abort)", withClean.Aborts)
	}
	withoutClean := run(false)
	if withoutClean.Aborts == 0 {
		t.Fatal("without cleanWR the stale W-R bit should spuriously abort the reader")
	}
	if withoutClean.Commits != 3 {
		t.Fatalf("without cleanWR commits = %d, want 3 (spurious abort is retried)", withoutClean.Commits)
	}
	_ = rt
}

func TestClosedNestedPartialRollback(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	z := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		fth := th.(*Thread)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 1) // outer write must survive the inner abort
			first := true
			fth.ClosedNested(func(inner tmapi.Txn) {
				inner.Store(y, 99)
				inner.Store(x, 77) // overwrites the outer value, then rolls back
				if first {
					first = false
					inner.Abort()
				}
				inner.Store(y, 2)
			})
			tx.Store(z, tx.Load(x)+tx.Load(y)) // sees x=77 (retry rewrote), y=2
		})
	})
	if v := sys.ReadWordRaw(x); v != 77 {
		t.Fatalf("x = %d, want 77", v)
	}
	if v := sys.ReadWordRaw(y); v != 2 {
		t.Fatalf("y = %d, want 2", v)
	}
	if v := sys.ReadWordRaw(z); v != 79 {
		t.Fatalf("z = %d, want 79", v)
	}
	if s := rt.Stats(); s.Commits != 1 || s.Aborts != 0 {
		t.Fatalf("stats = %+v: inner abort must not abort the outer txn", s)
	}
}

func TestClosedNestedRollbackRestoresOuterValue(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		fth := th.(*Thread)
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 10)
			tries := 0
			fth.ClosedNested(func(inner tmapi.Txn) {
				tries++
				if tries == 1 {
					inner.Store(x, 20)
					inner.Abort()
				}
				// Second attempt: the outer value must be restored.
				if got := inner.Load(x); got != 10 {
					t.Errorf("inner retry sees x = %d, want outer 10", got)
				}
			})
		})
	})
	if v := sys.ReadWordRaw(x); v != 10 {
		t.Fatalf("x = %d, want 10", v)
	}
}

func TestClosedNestedOutsideTxnActsLikeAtomic(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		th.(*Thread).ClosedNested(func(tx tmapi.Txn) { tx.Store(x, 5) })
	})
	if v := sys.ReadWordRaw(x); v != 5 {
		t.Fatalf("x = %d, want 5", v)
	}
	if s := rt.Stats(); s.Commits != 1 {
		t.Fatalf("commits = %d", s.Commits)
	}
}

func TestEscapeActionsViaThreadOps(t *testing.T) {
	// The paper's "transactional pause": ordinary loads/stores inside a
	// transaction bypass transactional semantics. Thread.Load/Store are
	// exactly that; a paused write survives even if the transaction aborts.
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	x := sys.Alloc().Alloc(1)
	logAddr := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		first := true
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 1)
			th.Store(logAddr, th.Load(logAddr)+1) // paused: non-transactional
			if first {
				first = false
				tx.Abort()
			}
		})
	})
	if v := sys.ReadWordRaw(logAddr); v != 2 {
		t.Fatalf("paused log counter = %d, want 2 (one per attempt)", v)
	}
	if v := sys.ReadWordRaw(x); v != 1 {
		t.Fatalf("x = %d, want 1", v)
	}
}

func TestTracerRecordsLifecycle(t *testing.T) {
	sys := tmesi.New(testCfg())
	rt := New(sys, Eager, cm.NewPolka())
	rec := trace.NewRecorder()
	rt.Tracer = rec
	x := sys.Alloc().Alloc(1)
	bodies := make([]func(tmapi.Thread), 4)
	for i := range bodies {
		bodies[i] = func(th tmapi.Thread) {
			for j := 0; j < 10; j++ {
				th.Atomic(func(tx tmapi.Txn) {
					tx.Store(x, tx.Load(x)+1)
				})
			}
		}
	}
	runThreads(t, rt, bodies...)
	s := rec.Summarize()
	if s.Commits != 40 {
		t.Fatalf("traced commits = %d, want 40", s.Commits)
	}
	if uint64(s.Aborts) != rt.Stats().Aborts {
		t.Fatalf("traced aborts %d != runtime aborts %d", s.Aborts, rt.Stats().Aborts)
	}
	if len(s.AttemptCycles) == 0 || s.Percentile(50) == 0 {
		t.Fatal("no attempt latency samples recorded")
	}
}

func TestSigScreenSparesInnocentSuccessor(t *testing.T) {
	// Same interleaving as the cleanWR test, but with cleanWR off and the
	// signature screen on: the writer's stale W-R bit names the reader's
	// core, yet the reader's new transaction touches a disjoint line, so
	// the screen must spare it.
	sys := tmesi.New(testCfg())
	rt := New(sys, Lazy, cm.NewPolka())
	rt.SetCleanWR(false)
	x := sys.Alloc().Alloc(1)
	y := sys.Alloc().Alloc(1)
	runThreads(t, rt, func(th tmapi.Thread) {
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(x, 1)
			th.Work(5000)
		})
	}, func(th tmapi.Thread) {
		th.Work(1000)
		th.Atomic(func(tx tmapi.Txn) { tx.Load(x) })
		th.Atomic(func(tx tmapi.Txn) {
			tx.Store(y, tx.Load(y)+1)
			th.Work(6000)
		})
	})
	s := rt.Stats()
	if s.Commits != 3 || s.Aborts != 0 {
		t.Fatalf("stats = %+v, want 3 commits / 0 aborts (screen spares the successor)", s)
	}
}
