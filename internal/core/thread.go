package core

import (
	"flextm/internal/baselines/cgl"
	"flextm/internal/cm"
	"flextm/internal/cst"
	"flextm/internal/flight"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
	"flextm/internal/trace"
)

// Thread is one application thread under the FlexTM runtime.
type Thread struct {
	rt    *Runtime
	ctx   *sim.Ctx
	core  int
	rnd   *sim.Rand
	depth int
	d     *desc

	consecAborts int
	// inFallback marks that this thread holds the runtime's fallback lock
	// and is finishing its section in serialized-irrevocable mode.
	inFallback bool
	// admitHeld marks that this thread holds an admission token (governor
	// admission control); released when its Atomic section ends.
	admitHeld bool

	// Cycle-attribution bookkeeping for the current attempt (telemetry):
	// when the attempt started and how many of its cycles were spent
	// stalled in contention-manager back-off.
	attemptStart sim.Time
	stallCycles  sim.Time
}

// Core implements tmapi.Thread.
func (th *Thread) Core() int { return th.core }

// Ctx implements tmapi.Thread.
func (th *Thread) Ctx() *sim.Ctx { return th.ctx }

// Rand implements tmapi.Thread.
func (th *Thread) Rand() *sim.Rand { return th.rnd }

// Work implements tmapi.Thread.
func (th *Thread) Work(d sim.Time) { th.ctx.Advance(d) }

// Load implements tmapi.Thread: an ordinary, non-transactional load.
func (th *Thread) Load(a memory.Addr) uint64 {
	v := th.rt.sys.Load(th.ctx, th.core, a).Val
	th.rt.orc.NTRead(th.core, th.ctx.Now(), a, v)
	th.checkAlert()
	return v
}

// Store implements tmapi.Thread: an ordinary, non-transactional store.
func (th *Thread) Store(a memory.Addr, v uint64) {
	th.rt.sys.Store(th.ctx, th.core, a, v)
	th.rt.orc.NTWrite(th.core, th.ctx.Now(), a, v)
	th.checkAlert()
}

// Atomic implements tmapi.Thread. It retries body until a commit succeeds,
// backing off between attempts per the contention manager. Nested calls
// are subsumed into the outermost transaction.
func (th *Thread) Atomic(body func(tmapi.Txn)) {
	if th.depth > 0 {
		th.depth++
		defer func() { th.depth-- }()
		body(txnView{th})
		return
	}
	stamp := uint64(0)
	sectionStart := th.ctx.Now()
	// Admission gate (governor): with a token cap in force, wait for a free
	// token before entering the section, and hold it across retries so the
	// cap bounds *sections* in flight, not attempts. One branch when off.
	th.admitGate()
	defer th.admitRelease()
	for {
		if stamp == 0 {
			th.rt.ageClock++
			stamp = th.rt.ageClock
		}
		// Fallback gate: if some thread escalated, drain behind it before
		// (re)trying optimistically, so the irrevocable section runs alone.
		// The un-contended check is one load of a shared line and consumes
		// no randomness, leaving fault-free schedules untouched.
		th.fallbackGate()
		// Forced serialization (the ladder's last rung): skip the optimistic
		// path entirely and finish under the fallback lock.
		if th.rt.forceSerial {
			th.escalate(stamp, body)
			th.consecAborts = 0
			return
		}
		if th.attempt(stamp, body) {
			th.consecAborts = 0
			return
		}
		th.rt.stats[th.core].Aborts++
		th.consecAborts++
		if th.watchdogTripped(sectionStart) {
			th.escalate(stamp, body)
			th.consecAborts = 0
			return
		}
		if y := th.rt.OnAbortYield; y != nil {
			y(th)
		}
		backoff := th.rt.mgr.RetryBackoff(th.consecAborts, th.rnd)
		if b := th.rt.backoffBoost; b != 0 && backoff != 0 {
			boosted := backoff << b
			if boosted>>b != backoff {
				boosted = 1 << 62 // cannot occur with capped windows; belt and braces
			}
			backoff = boosted
		}
		th.ctx.Advance(backoff)
		// Retry back-off is stall-wait: the thread sits between attempts.
		th.rt.tel.Add(th.core, telemetry.CtrCMBackoffCycles, backoff)
		th.rt.tel.Add(th.core, telemetry.CtrCycStall, backoff)
		th.rt.fl.RecDur(th.core, th.ctx.Now(), flight.Backoff, -1, clamp8(th.consecAborts), 0, backoff)
	}
}

// admitGate blocks until the governor's admission cap has a free token,
// then takes one. Free (a single predicted branch) when no cap is in force.
// The poll consumes no randomness and advances in fixed ticks, so gated
// schedules are deterministic.
func (th *Thread) admitGate() {
	rt := th.rt
	if rt.admitLimit == 0 || th.inFallback {
		return
	}
	for rt.admitLimit != 0 && rt.admitActive >= rt.admitLimit {
		th.ctx.Advance(admitPollTick)
		th.ctx.Sync() // Advance alone never yields; let token holders run
		rt.tel.Add(th.core, telemetry.CtrGovAdmitWaitCycles, admitPollTick)
		rt.tel.Add(th.core, telemetry.CtrCycStall, admitPollTick)
	}
	rt.admitActive++
	th.admitHeld = true
}

// admitRelease returns this thread's admission token, if it holds one. The
// token is also released when the cap is lifted mid-section, keeping
// admitActive consistent with a limit that came and went.
func (th *Thread) admitRelease() {
	if th.admitHeld {
		th.rt.admitActive--
		th.admitHeld = false
	}
}

// fallbackGate waits until no escalated thread holds the fallback lock.
// With no escalation active the gate is free (no simulated traffic): the
// lock line sits shared in every cache and the check folds into Begin.
func (th *Thread) fallbackGate() {
	if th.inFallback || th.rt.escActive == 0 {
		return
	}
	th.rt.fallback.SpinWhileHeld(th.ctx, th.core, th.rnd)
}

// watchdogTripped evaluates the liveness budgets after a failed attempt.
func (th *Thread) watchdogTripped(sectionStart sim.Time) bool {
	live := th.rt.live
	tripped := (live.MaxConsecAborts > 0 && th.consecAborts >= live.MaxConsecAborts) ||
		(live.MaxStallCycles > 0 && th.ctx.Now()-sectionStart >= live.MaxStallCycles)
	if tripped {
		th.rt.tel.Inc(th.core, telemetry.CtrWatchdogTrip)
		th.rt.tel.Emit(telemetry.Event{At: th.ctx.Now(), Core: th.core, Mech: "watchdog",
			What: "trip", Arg: int64(th.consecAborts)})
		th.rt.fl.Rec(th.core, th.ctx.Now(), flight.WatchdogTrip, -1, clamp8(th.consecAborts), 0)
		th.rt.dumpFlight(th.core)
	}
	return tripped
}

// escalate finishes the section in serialized-irrevocable mode: take the
// global fallback lock (new optimistic attempts drain at fallbackGate), shut
// off fault injection for this core, and re-run the body transactionally
// until it commits. Running transactionally (rather than with raw stores)
// preserves isolation against optimistic attempts still in flight when the
// lock was acquired, and preserves Txn.Abort retry semantics; those stragglers
// either finish or abort, so the escalated attempt loop terminates.
func (th *Thread) escalate(stamp uint64, body func(tmapi.Txn)) {
	rt := th.rt
	rt.stats[th.core].Escalations++
	rt.tel.Inc(th.core, telemetry.CtrEscalation)
	rt.tel.Emit(telemetry.Event{At: th.ctx.Now(), Core: th.core, Mech: "watchdog", What: "escalate"})
	rt.fl.Rec(th.core, th.ctx.Now(), flight.Escalate, -1, 0, 0)
	debugf("t=%d c=%d ESCALATE after %d aborts", th.ctx.Now(), th.core, th.consecAborts)
	if rt.fallback == nil {
		rt.fallback = cgl.NewSpinlock(rt.sys)
	}
	rt.fallback.Acquire(th.ctx, th.core, th.rnd)
	rt.escActive++
	rt.sys.SetFaultImmunity(th.core, true)
	th.inFallback = true
	defer func() {
		th.inFallback = false
		rt.sys.SetFaultImmunity(th.core, false)
		rt.escActive--
		rt.fallback.Release(th.ctx, th.core)
	}()
	for {
		if th.attempt(stamp, body) {
			rt.tel.Inc(th.core, telemetry.CtrEscalatedCommit)
			return
		}
		rt.stats[th.core].Aborts++
		// Brief fixed pause: the only way to get here is a straggler enemy
		// or a user-requested retry, both of which need a little time.
		th.ctx.Advance(rt.costs.AbortWork + 64)
	}
}

// attempt begins a transaction and runs body once, converting abort panics
// into a false return. begin itself runs inside the recovered region: an
// enemy (or the OS, across a context switch) can abort us before the first
// body operation.
func (th *Thread) attempt(stamp uint64, body func(tmapi.Txn)) (committed bool) {
	th.depth = 1
	defer func() {
		th.depth = 0
		if r := recover(); r != nil {
			if _, ok := r.(tmapi.AbortError); !ok {
				panic(r)
			}
			th.onAbort()
		}
	}()
	th.begin(stamp)
	body(txnView{th})
	th.commit()
	return true
}

// begin implements BEGIN_TRANSACTION: fresh descriptor, TSW set to active
// and advertised, TSW ALoaded for abort notification, hardware transaction
// mode on, registers checkpointed.
func (th *Thread) begin(stamp uint64) {
	rt, sys := th.rt, th.rt.sys
	th.attemptStart = th.ctx.Now()
	th.stallCycles = 0
	d := &desc{tsw: rt.nextTSW(th.core), stamp: stamp, live: true}
	th.d = d
	debugf("t=%d c=%d BEGIN tsw=%d", th.ctx.Now(), th.core, d.tsw)
	sys.Store(th.ctx, th.core, d.tsw, TSWActive)
	sys.ALoad(th.ctx, th.core, d.tsw)
	rt.current[th.core] = d
	sys.BeginTxn(th.core)
	// Advertise the descriptor last: each step above can be interrupted by
	// a context switch, and once this registration is visible the OS's
	// suspend/resume (DetachTxn/AttachTxn) keeps it coherent. Publishing it
	// earlier risks another thread's transactions on this core overwriting
	// the entry while we are parked mid-begin, leaving enemies to CAS a
	// stale status word that can never read "active".
	sys.Store(th.ctx, th.core, rt.tswEntry(th.core), uint64(d.tsw))
	th.ctx.Advance(rt.costs.Begin)
	th.emit(trace.Begin, -1)
	rt.fl.Rec(th.core, th.ctx.Now(), flight.TxnBegin, -1, 0, 0)
	// Record the begin before the alert poll below: if the poll aborts us,
	// the oracle must still see a begin/abort pair, not an orphan abort.
	rt.orc.Begin(th.core, th.ctx.Now())
	// A strong-isolation abort can race with begin; surface it now.
	th.checkAlert()
}

// onAbort is the abort handler: it flash-discards speculative state (if the
// CAS-Commit failure path has not already) and clears the descriptor.
func (th *Thread) onAbort() {
	sys := th.rt.sys
	th.emit(trace.Abort, -1)
	th.rt.fl.Rec(th.core, th.ctx.Now(), flight.TxnAbort, -1, 0, 0)
	th.rt.orc.Abort(th.core, th.ctx.Now())
	debugf("t=%d c=%d ABORT", th.ctx.Now(), th.core)
	th.d.live = false
	if sys.TxnActive(th.core) {
		sys.AbortFlash(th.ctx, th.core)
	}
	th.ctx.Advance(th.rt.costs.AbortWork)
	if tel := th.rt.tel; tel != nil {
		// The whole attempt (including the abort handler) is discarded
		// work, except the cycles already classified as stall-wait.
		total := th.ctx.Now() - th.attemptStart
		tel.Inc(th.core, telemetry.CtrTxnAborts)
		tel.Add(th.core, telemetry.CtrCycAborted, clampSub(total, th.stallCycles))
		tel.Add(th.core, telemetry.CtrCycStall, th.stallCycles)
		tel.Observe(th.core, telemetry.HistAbortCycles, total)
	}
}

// clampSub returns a-b, clamped at zero.
func clampSub(a, b sim.Time) sim.Time {
	if a < b {
		return 0
	}
	return a - b
}

// clamp8 saturates a non-negative count into a flight-record Aux byte.
func clamp8(n int) uint8 {
	if n > 255 {
		return 255
	}
	return uint8(n)
}

// fpAux maps a conflict's false-positive verdict onto the flight Aux bit.
func fpAux(fp bool) uint8 {
	if fp {
		return flight.AuxFP
	}
	return 0
}

// abortPanic unwinds the current transaction body.
func abortPanic() { panic(tmapi.AbortError{}) }

// checkAlert polls for AOU alerts at an operation boundary. An alert on the
// TSW line means an enemy (or a strong-isolation access) wrote our status
// word: if it says aborted, unwind. Other alerts (line eviction) re-ALoad.
func (th *Thread) checkAlert() {
	sys := th.rt.sys
	line, ok := sys.TakeAlert(th.core)
	if !ok {
		return
	}
	if th.d == nil || !th.d.live {
		return
	}
	if sys.ReadWordRaw(th.d.tsw) == TSWAborted {
		abortPanic()
	}
	if line == th.d.tsw.Line() {
		// Spurious (capacity) alert: re-arm without recursing into the
		// alert check.
		sys.ALoad(th.ctx, th.core, th.d.tsw)
	}
}

// txnView adapts a Thread to tmapi.Txn with transactional semantics.
type txnView struct{ th *Thread }

// Load implements tmapi.Txn.
func (t txnView) Load(a memory.Addr) uint64 {
	th := t.th
	res := th.rt.sys.TLoad(th.ctx, th.core, a)
	debugf("t=%d c=%d TLoad %d = %d conf=%v", th.ctx.Now(), th.core, a, res.Val, res.Conflicts)
	// Record before the alert poll: the observed value belongs to this
	// attempt even if the poll aborts it (aborted reads are discarded by
	// the checker but keep the log structurally complete).
	th.rt.orc.Read(th.core, th.ctx.Now(), a, res.Val)
	th.d.karma++
	th.checkAlert()
	if th.rt.mode == Eager && len(res.Conflicts) > 0 {
		th.manageEager(res.Conflicts)
	}
	return res.Val
}

// Store implements tmapi.Txn.
func (t txnView) Store(a memory.Addr, v uint64) {
	th := t.th
	res := th.rt.sys.TStore(th.ctx, th.core, a, v)
	debugf("t=%d c=%d TStore %d <- %d conf=%v", th.ctx.Now(), th.core, a, v, res.Conflicts)
	th.rt.orc.Write(th.core, th.ctx.Now(), a, v)
	th.d.karma++
	th.checkAlert()
	if th.rt.mode == Eager && len(res.Conflicts) > 0 {
		th.manageEager(res.Conflicts)
	}
}

// Abort implements tmapi.Txn.
func (t txnView) Abort() { panic(tmapi.AbortError{UserRequested: true}) }

// manageEager resolves freshly-reported conflicts immediately: the
// processor has effected a subroutine call to the CMPC handler.
func (th *Thread) manageEager(conflicts []tmesi.Conflict) {
	for _, c := range conflicts {
		th.resolveConflict(c)
	}
}

// resolveConflict runs the contention manager on one conflict until the
// enemy is gone (aborted, committed, or we abort ourselves).
func (th *Thread) resolveConflict(c tmesi.Conflict) {
	rt := th.rt
	th.ctx.Advance(rt.costs.CMInvoke)
	if c.Suspended {
		// Conflict with a descheduled transaction, surfaced by the summary
		// signatures; the OS-level handler (internal/osmodel) has already
		// arbitrated it. Nothing to do at user level.
		return
	}
	for attempt := 0; ; attempt++ {
		dec, wait := rt.mgr.OnConflict(cm.Conflict{
			Me:         th.core,
			Enemy:      c.Responder,
			MyKarma:    th.d.karma,
			EnemyKarma: rt.karmaOf(c.Responder),
			MyStamp:    th.d.stamp,
			EnemyStamp: rt.stampOf(c.Responder),
			Attempt:    attempt,
		}, th.rnd)
		switch dec {
		case cm.AbortSelf:
			rt.tel.Inc(th.core, telemetry.CtrCMAbortSelf)
			rt.tel.Emit(telemetry.Event{At: th.ctx.Now(), Core: th.core, Mech: "cm", What: "abort-self", Arg: int64(c.Responder)})
			th.emit(trace.ConflictAbortSelf, c.Responder)
			rt.fl.Rec(th.core, th.ctx.Now(), flight.AbortSelf, c.Responder, fpAux(c.FP), c.Line)
			abortPanic()
		case cm.AbortEnemy:
			rt.tel.Inc(th.core, telemetry.CtrCMAbortEnemy)
			rt.tel.Emit(telemetry.Event{At: th.ctx.Now(), Core: th.core, Mech: "cm", What: "abort-enemy", Arg: int64(c.Responder)})
			th.emit(trace.ConflictAbortEnemy, c.Responder)
			rt.fl.Rec(th.core, th.ctx.Now(), flight.AbortEnemy, c.Responder, fpAux(c.FP), c.Line)
			debugf("t=%d c=%d CM abort-enemy %d", th.ctx.Now(), th.core, c.Responder)
			th.abortRemote(c.Responder)
			if h := rt.onAbortEnemy; h != nil {
				h(th, c.Responder)
			}
			th.clearLocalCST(c.Responder)
			return
		case cm.Wait:
			rt.tel.Inc(th.core, telemetry.CtrCMWait)
			rt.tel.Add(th.core, telemetry.CtrCMWaitCycles, wait)
			rt.tel.Observe(th.core, telemetry.HistCMWaitCycles, wait)
			th.stallCycles += wait
			th.ctx.Advance(wait)
			rt.fl.RecDur(th.core, th.ctx.Now(), flight.CMStall, c.Responder, fpAux(c.FP), c.Line, wait)
			status := th.enemyStatus(c.Responder)
			switch status {
			case TSWActive:
				// Still there: loop for another round.
			case TSWCommitted:
				if c.Msg == tmesi.Threatened {
					// The enemy's speculative write of a line we accessed
					// just committed: our copy is stale, we must restart.
					abortPanic()
				}
				// Exposed-Read enemy committed having read the old value:
				// it serialized before us; we may proceed.
				th.clearLocalCST(c.Responder)
				return
			default: // aborted or gone
				th.clearLocalCST(c.Responder)
				return
			}
		}
	}
}

// enemyStatus reads the status word of the transaction currently on core
// enemy via the per-processor descriptor table (ordinary loads).
func (th *Thread) enemyStatus(enemy int) uint64 {
	rt, sys := th.rt, th.rt.sys
	tswAddr := sys.Load(th.ctx, th.core, rt.tswEntry(enemy)).Val
	th.checkAlert()
	if tswAddr == 0 {
		return TSWInvalid
	}
	v := sys.Load(th.ctx, th.core, memory.Addr(tswAddr)).Val
	th.checkAlert()
	return v
}

// abortRemote aborts the transaction running on core enemy by CASing its
// TSW from active to aborted (Figure 3, line 3). Coherence serializes this
// against the enemy's own CAS-Commit.
func (th *Thread) abortRemote(enemy int) {
	rt, sys := th.rt, th.rt.sys
	tswAddr := sys.Load(th.ctx, th.core, rt.tswEntry(enemy)).Val
	th.checkAlert()
	if tswAddr == 0 {
		return
	}
	res, ok := sys.CAS(th.ctx, th.core, memory.Addr(tswAddr), TSWActive, TSWAborted)
	debugf("t=%d c=%d abortRemote(%d) tsw=%d ok=%v cur=%d", th.ctx.Now(), th.core, enemy, tswAddr, ok, res.Val)
	th.checkAlert()
}

// clearLocalCST drops this core's conflict bits for enemy after the
// conflict has been resolved, so a clean CAS-Commit can proceed.
func (th *Thread) clearLocalCST(enemy int) {
	t := th.rt.sys.CST(th.core)
	t.Get(cst.WR).Clear(enemy)
	t.Get(cst.WW).Clear(enemy)
	t.Get(cst.RW).Clear(enemy)
	th.rt.tel.Add(th.core, telemetry.CtrCSTClear, 3)
	th.rt.fl.Rec(th.core, th.ctx.Now(), flight.CSTClear, enemy, 0, 0)
}

// commit implements END_TRANSACTION via the Commit() routine of Figure 3.
// Eager transactions normally find empty CSTs and just CAS-Commit; lazy
// transactions abort their W-R and W-W sets first. The loop handles
// conflicts that arrive concurrently with committing.
func (th *Thread) commit() {
	rt, sys := th.rt, th.rt.sys
	commitStart := th.ctx.Now()
	var resolved cst.Vec
	for spins := 0; ; {
		table := sys.CST(th.core)
		wr := table.Get(cst.WR).CopyAndClear()
		ww := table.Get(cst.WW).CopyAndClear()
		rt.tel.Add(th.core, telemetry.CtrCSTCopyClear, 2)
		if wr != 0 || ww != 0 {
			rt.fl.Rec(th.core, th.ctx.Now(), flight.CSTClear, -1, 0, 0)
		}
		rw := *table.Get(cst.RW)
		enemies := wr | ww
		if !rt.wrAborts {
			// Broken-protocol variant for the serializability oracle: spare
			// the transactions that read our old values (W-R), aborting only
			// rival writers (W-W). The spared readers commit on stale data.
			enemies = ww
		}
		for _, e := range enemies.Procs() {
			resolved.Set(e)
			// Signature screen: CST bits name processors, so a bit may
			// refer to a transaction that already finished. The enemy's
			// current signatures are software-visible registers; if they
			// provably do not intersect our write set, the conflicting
			// incarnation is gone and the abort would hit an innocent
			// successor. Skipping is sound: if the enemy touches our
			// write set after this check, the hardware re-sets our CST
			// bit and the CAS-Commit below fails, re-running this loop.
			if rt.sigScreen && sys.TxnActive(e) &&
				!sys.Rsig(e).Intersects(sys.Wsig(th.core)) &&
				!sys.Wsig(e).Intersects(sys.Wsig(th.core)) {
				th.ctx.Advance(rt.costs.CSTWrite) // register reads + AND
				continue
			}
			rt.fl.Rec(th.core, th.ctx.Now(), flight.AbortEnemy, e, 0, 0)
			th.abortRemote(e)
			if h := rt.onAbortEnemy; h != nil {
				h(th, e)
			}
		}
		out := sys.CASCommit(th.ctx, th.core, th.d.tsw, TSWActive, TSWCommitted)
		debugf("t=%d c=%d CASCommit -> %d (resolved=%v)", th.ctx.Now(), th.core, out, resolved.Procs())
		switch out {
		case tmesi.CommitOK:
			th.d.live = false
			// Record before any further time advances (the W-R scrub below
			// charges cycles, yielding the engine to other threads): the
			// commit's sequence stamp must precede every operation that can
			// observe its writes.
			rt.orc.Commit(th.core, th.ctx.Now())
			th.emit(trace.Commit, -1)
			var fb uint8
			if th.inFallback {
				fb = 1
			}
			rt.fl.Rec(th.core, th.ctx.Now(), flight.TxnCommit, -1, fb, 0)
			st := &rt.stats[th.core]
			st.Commits++
			st.ConflictDegrees = append(st.ConflictDegrees, resolved.Count())
			if rt.cleanWR {
				// Scrub our bit from the W-R of everyone whose write we
				// read, so their commits do not spuriously abort our next
				// transaction (Section 3.6).
				for _, x := range rw.Procs() {
					sys.CST(x).Get(cst.WR).Clear(th.core)
					rt.tel.Inc(th.core, telemetry.CtrCSTClear)
					rt.fl.Rec(th.core, th.ctx.Now(), flight.CSTClear, x, 0, 0)
					th.ctx.Advance(rt.costs.CSTWrite)
				}
			}
			if tel := rt.tel; tel != nil {
				now := th.ctx.Now()
				total := now - th.attemptStart
				commitOv := now - commitStart
				tel.Inc(th.core, telemetry.CtrTxnCommits)
				tel.Add(th.core, telemetry.CtrCycUseful,
					clampSub(total, commitOv+th.stallCycles))
				tel.Add(th.core, telemetry.CtrCycCommitOv, commitOv)
				tel.Add(th.core, telemetry.CtrCycStall, th.stallCycles)
				tel.Observe(th.core, telemetry.HistCommitCycles, total)
			}
			return
		case tmesi.CommitAborted:
			// Speculative state already flash-discarded by the hardware.
			abortPanic()
		case tmesi.CommitCSTFail:
			// New conflicts arrived between lines 1-3 and the CAS-Commit:
			// go around again (Figure 3, line 5). A streak of refusals —
			// relentless enemies or injected CAS-Commit races — is bounded:
			// past the budget the attempt converts into an abort, which the
			// retry path (and ultimately the watchdog) can see and escalate.
			spins++
			if lim := rt.live.MaxCommitRetries; lim > 0 && spins >= lim {
				rt.tel.Emit(telemetry.Event{At: th.ctx.Now(), Core: th.core,
					Mech: "watchdog", What: "commit-retry-budget", Arg: int64(spins)})
				abortPanic()
			}
		}
	}
}

// TraceFn, when non-nil, receives free-form runtime debug lines.
var TraceFn func(format string, args ...interface{})

func debugf(format string, args ...interface{}) {
	if TraceFn != nil {
		TraceFn(format, args...)
	}
}

// emit records a structured event on the runtime's tracer, if any.
func (th *Thread) emit(k trace.Kind, enemy int) {
	if rec := th.rt.Tracer; rec != nil {
		rec.Add(trace.Event{At: th.ctx.Now(), Core: th.core, Kind: k, Enemy: enemy})
	}
}

// ClosedNested runs body as a closed-nested transaction inside the current
// one (an extension beyond the paper's subsumption model, which it lists as
// future work). The runtime value-logs the inner transaction's writes (old
// speculative values via TLoad) and, when body calls Abort, rolls back only
// those writes and retries body alone. Conflict-induced aborts still unwind
// the whole (flattened) transaction: the hardware has a single checkpoint.
// Calling ClosedNested outside a transaction is equivalent to Atomic.
func (th *Thread) ClosedNested(body func(tx tmapi.Txn)) {
	if th.depth == 0 {
		th.Atomic(body)
		return
	}
	th.depth++
	defer func() { th.depth-- }()
	for {
		inner := &nestedTxn{th: th, old: make(map[memory.Addr]uint64)}
		if th.runNested(inner, body) {
			return
		}
		// Inner-only rollback: restore the old speculative values in
		// reverse write order, then retry the inner body. The restores are
		// real speculative stores (they bypass txnView), so the oracle must
		// see them or the committed final values would look wrong.
		for i := len(inner.order) - 1; i >= 0; i-- {
			a := inner.order[i]
			th.rt.sys.TStore(th.ctx, th.core, a, inner.old[a])
			th.rt.orc.Write(th.core, th.ctx.Now(), a, inner.old[a])
		}
		th.ctx.Advance(th.rt.costs.AbortWork)
	}
}

// runNested executes body once, catching only user-requested aborts.
func (th *Thread) runNested(inner *nestedTxn, body func(tx tmapi.Txn)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ae, isAbort := r.(tmapi.AbortError)
			if !isAbort || !ae.UserRequested {
				panic(r) // conflict aborts unwind the outer transaction
			}
		}
	}()
	body(inner)
	return true
}

// nestedTxn is the inner transaction's view: reads pass through; writes are
// value-logged on first touch so they can be undone individually.
type nestedTxn struct {
	th    *Thread
	old   map[memory.Addr]uint64
	order []memory.Addr
}

// Load implements tmapi.Txn.
func (n *nestedTxn) Load(a memory.Addr) uint64 { return txnView{n.th}.Load(a) }

// Store implements tmapi.Txn.
func (n *nestedTxn) Store(a memory.Addr, v uint64) {
	if _, seen := n.old[a]; !seen {
		// First inner write: remember the outer speculative value.
		n.old[a] = n.th.rt.sys.TLoad(n.th.ctx, n.th.core, a).Val
		n.order = append(n.order, a)
	}
	txnView{n.th}.Store(a, v)
}

// Abort implements tmapi.Txn: abort and retry only the inner transaction.
func (n *nestedTxn) Abort() { panic(tmapi.AbortError{UserRequested: true}) }
