package core

import (
	"fmt"
	"testing"

	"flextm/internal/cm"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// TestEagerAuditConsistency is a regression test for a sticky-sharer bug:
// a read miss on a line held only in a remote transaction's *signature*
// (its cached copy silently dropped) must not be granted Exclusive, or a
// later silent E->TMI upgrade skips conflict detection and a read-only
// audit can commit an inconsistent snapshot.
func TestEagerAuditConsistency(t *testing.T) {
	const accounts, initial = 16, 1000
	for seed := 0; seed < 30; seed++ {
		sys := tmesi.New(testCfg())
		rt := New(sys, Eager, cm.NewPolka())
		base := sys.Alloc().Alloc(accounts * memory.LineWords)
		acct := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
		for i := 0; i < accounts; i++ {
			sys.Image().WriteWord(acct(i), initial)
		}
		e := sim.NewEngine()
		var bad []string
		for tid := 0; tid < 6; tid++ {
			id := tid
			e.Spawn("w", 0, func(ctx *sim.Ctx) {
				th := rt.Bind(ctx, id)
				r := sim.NewRand(uint64(seed*100 + id + 1))
				for n := 0; n < 60; n++ {
					if id == 0 {
						var total uint64
						th.Atomic(func(tx tmapi.Txn) {
							total = 0
							for i := 0; i < accounts; i++ {
								total += tx.Load(acct(i))
							}
						})
						if total != accounts*initial {
							bad = append(bad, fmt.Sprintf("seed=%d n=%d total=%d", seed, n, total))
						}
					} else {
						from, to := r.Intn(accounts), r.Intn(accounts)
						amt := uint64(1 + r.Intn(50))
						th.Atomic(func(tx tmapi.Txn) {
							f := tx.Load(acct(from))
							if f < amt {
								return
							}
							tx.Store(acct(from), f-amt)
							tx.Store(acct(to), tx.Load(acct(to))+amt)
						})
					}
				}
			})
		}
		e.Run()
		if len(bad) > 0 {
			t.Fatalf("inconsistent audits: %v", bad[:1])
		}
	}
}
