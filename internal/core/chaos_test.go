package core

import (
	"fmt"
	"testing"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// TestChaosConservation is a randomized stress test: threads run a mix of
// transfer transactions, read-only sum checks, nested transactions, plain
// (non-transactional) accesses to private slots, and user aborts, across
// eager/lazy modes, several contention managers, and a tiny cache that
// forces overflow. The invariants:
//
//  1. the shared-account total is conserved,
//  2. every read-only sum observed inside a transaction is consistent,
//  3. private slots are exactly what their owner last wrote.
func TestChaosConservation(t *testing.T) {
	const cells, threads, rounds, initial = 10, 7, 60, 100
	managers := []cm.Manager{cm.NewPolka(), cm.Timid{}, cm.Aggressive{}}
	for _, mode := range []Mode{Eager, Lazy} {
		for mi, mgr := range managers {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", mode, mgr.Name(), seed)
				cfg := tmesi.DefaultConfig()
				cfg.Cores = threads
				cfg.L1 = cache.Config{Sets: 8, Ways: 2, VictimSize: 4}
				sys := tmesi.New(cfg)
				rt := New(sys, mode, mgr)
				base := sys.Alloc().Alloc(cells * memory.LineWords)
				cell := func(i int) memory.Addr { return base + memory.Addr(i*memory.LineWords) }
				for i := 0; i < cells; i++ {
					sys.Image().WriteWord(cell(i), initial)
				}
				private := sys.Alloc().Alloc(threads * memory.LineWords)

				e := sim.NewEngine()
				var badSum bool
				for ti := 0; ti < threads; ti++ {
					id := ti
					e.Spawn("chaos", 0, func(ctx *sim.Ctx) {
						th := rt.Bind(ctx, id)
						r := sim.NewRand(seed*1000 + uint64(mi*100+id))
						for n := 0; n < rounds; n++ {
							switch r.Intn(5) {
							case 0: // transfer
								from, to := r.Intn(cells), r.Intn(cells)
								amt := uint64(r.Intn(5))
								th.Atomic(func(tx tmapi.Txn) {
									f := tx.Load(cell(from))
									if f < amt {
										return
									}
									tx.Store(cell(from), f-amt)
									tx.Store(cell(to), tx.Load(cell(to))+amt)
								})
							case 1: // read-only audit
								var total uint64
								th.Atomic(func(tx tmapi.Txn) {
									total = 0
									for i := 0; i < cells; i++ {
										total += tx.Load(cell(i))
									}
								})
								if total != cells*initial {
									badSum = true
								}
							case 2: // nested transfer with occasional user abort
								from, to := r.Intn(cells), r.Intn(cells)
								skip := r.Intn(4) == 0
								th.Atomic(func(tx tmapi.Txn) {
									f := tx.Load(cell(from))
									if f == 0 {
										return
									}
									tx.Store(cell(from), f-1)
									th.Atomic(func(inner tmapi.Txn) {
										if skip {
											skip = false
											inner.Abort()
										}
										inner.Store(cell(to), inner.Load(cell(to))+1)
									})
								})
							case 3: // plain private access (strong isolation side)
								p := private + memory.Addr(id*memory.LineWords)
								th.Store(p, th.Load(p)+1)
							default: // compute
								th.Work(sim.Time(r.Intn(500)))
							}
						}
					})
				}
				if blocked := e.Run(); blocked != 0 {
					t.Fatalf("%s: %d threads blocked", name, blocked)
				}
				if badSum {
					t.Fatalf("%s: a read-only audit observed an inconsistent total", name)
				}
				var total uint64
				for i := 0; i < cells; i++ {
					total += sys.ReadWordRaw(cell(i))
				}
				if total != cells*initial {
					t.Fatalf("%s: total = %d, want %d", name, total, cells*initial)
				}
			}
		}
	}
}
