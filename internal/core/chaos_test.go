package core

import (
	"fmt"
	"testing"

	"flextm/internal/cache"
	"flextm/internal/cm"
	"flextm/internal/fault"
	"flextm/internal/memory"
	"flextm/internal/sim"
	"flextm/internal/telemetry"
	"flextm/internal/tmapi"
	"flextm/internal/tmesi"
)

// chaosBoard is the shared state of the conservation stress tests: a row of
// account cells, one private slot per thread, and the runtime under test.
type chaosBoard struct {
	sys     *tmesi.System
	rt      *Runtime
	tel     *telemetry.Registry
	base    memory.Addr
	private memory.Addr
	cells   int
	initial uint64
}

func newChaosBoard(mode Mode, mgr cm.Manager, cells, threads int, initial uint64) *chaosBoard {
	cfg := tmesi.DefaultConfig()
	cfg.Cores = threads
	// Tiny cache: forces signature pressure, evictions, and overflow (the
	// wide-update op's write set cannot fit, so TMI lines spill to the OT
	// and are re-fetched through the table walk).
	cfg.L1 = cache.Config{Sets: 4, Ways: 2, VictimSize: 2}
	sys := tmesi.New(cfg)
	tel := telemetry.New(threads)
	sys.SetTelemetry(tel)
	b := &chaosBoard{
		sys:     sys,
		rt:      New(sys, mode, mgr),
		tel:     tel,
		base:    sys.Alloc().Alloc(cells * memory.LineWords),
		cells:   cells,
		initial: initial,
	}
	for i := 0; i < cells; i++ {
		sys.Image().WriteWord(b.cell(i), initial)
	}
	b.private = sys.Alloc().Alloc(threads * memory.LineWords)
	return b
}

func (b *chaosBoard) cell(i int) memory.Addr {
	return b.base + memory.Addr(i*memory.LineWords)
}

// worker runs one thread's mix of transfers, read-only audits, nested
// transactions with user aborts, plain private accesses, and compute.
// privWrites counts the plain increments so the caller can verify the
// private slot afterwards (invariant 3).
func (b *chaosBoard) worker(ctx *sim.Ctx, id, rounds int, r *sim.Rand, badSum *bool, privWrites *uint64) {
	th := b.rt.Bind(ctx, id)
	cell := b.cell
	for n := 0; n < rounds; n++ {
		switch r.Intn(6) {
		case 0: // transfer
			from, to := r.Intn(b.cells), r.Intn(b.cells)
			amt := uint64(r.Intn(5))
			th.Atomic(func(tx tmapi.Txn) {
				f := tx.Load(cell(from))
				if f < amt {
					return
				}
				tx.Store(cell(from), f-amt)
				tx.Store(cell(to), tx.Load(cell(to))+amt)
			})
		case 1: // read-only audit
			var total uint64
			th.Atomic(func(tx tmapi.Txn) {
				total = 0
				for i := 0; i < b.cells; i++ {
					total += tx.Load(cell(i))
				}
			})
			if total != uint64(b.cells)*b.initial {
				*badSum = true
			}
		case 2: // nested transfer with occasional user abort
			from, to := r.Intn(b.cells), r.Intn(b.cells)
			skip := r.Intn(4) == 0
			th.Atomic(func(tx tmapi.Txn) {
				f := tx.Load(cell(from))
				if f == 0 {
					return
				}
				tx.Store(cell(from), f-1)
				th.Atomic(func(inner tmapi.Txn) {
					if skip {
						skip = false
						inner.Abort()
					}
					inner.Store(cell(to), inner.Load(cell(to))+1)
				})
			})
		case 3: // plain private access (strong isolation side)
			p := b.private + memory.Addr(id*memory.LineWords)
			th.Store(p, th.Load(p)+1)
			*privWrites++
		case 4: // wide net-zero ripple: the write set overflows the tiny L1,
			// spilling TMI lines to the overflow table; the second pass
			// re-touches them through the OT walk path.
			th.Atomic(func(tx tmapi.Txn) {
				for i := 0; i < b.cells; i++ {
					tx.Store(cell(i), tx.Load(cell(i))+1)
				}
				for i := 0; i < b.cells; i++ {
					tx.Store(cell(i), tx.Load(cell(i))-1)
				}
			})
		default: // compute
			th.Work(sim.Time(r.Intn(500)))
		}
	}
}

// check asserts the three chaos invariants after a run.
func (b *chaosBoard) check(t *testing.T, name string, threads int, badSum bool, privWrites []uint64) {
	t.Helper()
	if badSum {
		t.Fatalf("%s: a read-only audit observed an inconsistent total", name)
	}
	var total uint64
	for i := 0; i < b.cells; i++ {
		total += b.sys.ReadWordRaw(b.cell(i))
	}
	if want := uint64(b.cells) * b.initial; total != want {
		t.Fatalf("%s: total = %d, want %d", name, total, want)
	}
	for id := 0; id < threads; id++ {
		p := b.private + memory.Addr(id*memory.LineWords)
		if got := b.sys.ReadWordRaw(p); got != privWrites[id] {
			t.Fatalf("%s: private slot %d = %d, want %d", name, id, got, privWrites[id])
		}
	}
}

// TestChaosConservation is a randomized stress test: threads run a mix of
// transfer transactions, read-only sum checks, nested transactions, plain
// (non-transactional) accesses to private slots, and user aborts, across
// eager/lazy modes, several contention managers, and a tiny cache that
// forces overflow. The invariants:
//
//  1. the shared-account total is conserved,
//  2. every read-only sum observed inside a transaction is consistent,
//  3. private slots are exactly what their owner last wrote.
func TestChaosConservation(t *testing.T) {
	const cells, threads, rounds, initial = 10, 7, 60, 100
	managers := []cm.Manager{cm.NewPolka(), cm.Timid{}, cm.Aggressive{}}
	for _, mode := range []Mode{Eager, Lazy} {
		for mi, mgr := range managers {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", mode, mgr.Name(), seed)
				b := newChaosBoard(mode, mgr, cells, threads, initial)
				e := sim.NewEngine()
				var badSum bool
				privWrites := make([]uint64, threads)
				for ti := 0; ti < threads; ti++ {
					id := ti
					e.Spawn("chaos", 0, func(ctx *sim.Ctx) {
						r := sim.NewRand(seed*1000 + uint64(mi*100+id))
						b.worker(ctx, id, rounds, r, &badSum, &privWrites[id])
					})
				}
				if blocked := e.Run(); blocked != 0 {
					t.Fatalf("%s: %d threads blocked", name, blocked)
				}
				b.check(t, name, threads, badSum, privWrites)
			}
		}
	}
}

// TestChaosConservationUnderFaults re-runs the chaos workload with each
// hardware fault class injected at a 10% rate (the acceptance bar), under a
// tight liveness policy so the watchdog and escalation paths actually
// exercise. All three invariants must survive every class: the protocol's
// backstops (CAS-Commit status check, Bloom over-approximation, watchdog)
// are what make each injected fault safe rather than silent corruption.
// The Preempt class is orchestrated by campaign drivers (internal/harness),
// not the memory system, so it is exercised there instead.
func TestChaosConservationUnderFaults(t *testing.T) {
	const cells, threads, rounds, initial = 10, 7, 60, 100
	classes := []fault.Class{
		fault.SpuriousAlert, fault.AlertLoss, fault.SigFalsePos,
		fault.OTStall, fault.CoherenceDelay, fault.CommitRace,
	}
	for _, mode := range []Mode{Eager, Lazy} {
		for _, class := range classes {
			for seed := uint64(1); seed <= 2; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", mode, class, seed)
				b := newChaosBoard(mode, cm.NewPolka(), cells, threads, initial)
				b.rt.SetLiveness(Liveness{MaxConsecAborts: 8, MaxStallCycles: 2_000_000, MaxCommitRetries: 16})
				inj := fault.NewInjector(fault.Config{Seed: seed*977 + uint64(class)}.WithRate(class, 0.10))
				b.sys.SetFaultInjector(inj)

				e := sim.NewEngine()
				var badSum bool
				privWrites := make([]uint64, threads)
				for ti := 0; ti < threads; ti++ {
					id := ti
					e.Spawn("chaos-fault", 0, func(ctx *sim.Ctx) {
						r := sim.NewRand(seed*1000 + uint64(id))
						b.worker(ctx, id, rounds, r, &badSum, &privWrites[id])
					})
				}
				if blocked := e.Run(); blocked != 0 {
					t.Fatalf("%s: %d threads blocked (liveness failure)", name, blocked)
				}
				b.check(t, name, threads, badSum, privWrites)
				if inj.Injected() == 0 {
					t.Errorf("%s: fault class never fired; the run exercised nothing", name)
				}
			}
		}
	}
}
